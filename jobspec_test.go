package confluence

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParseJobSpecRoundTrip(t *testing.T) {
	seed := uint64(0x901d)
	in := &JobSpec{
		Kind:     KindPoint,
		Workload: "OLTP-DB2",
		Profile:  &ProfileTweak{Functions: 520, RequestTypes: 6, Concurrency: 6, Seed: &seed},
		Design:   "Confluence",
		Cores:    2, WarmupInstr: 30_000, MeasureInstr: 60_000,
		Parallelism: 2, Priority: 3,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseJobSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the spec:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestParseJobSpecStrictness(t *testing.T) {
	cases := map[string]string{
		"unknown top-level field": `{"design":"Base1K","workload":"DSS-Qrys","typo_field":1}`,
		"unknown profile field":   `{"design":"Base1K","workload":"DSS-Qrys","profile":{"seeds":7}}`,
		"trailing data":           `{"design":"Base1K","workload":"DSS-Qrys"} extra`,
		"second JSON object":      `{"design":"Base1K","workload":"DSS-Qrys"}{}`,
		"not an object":           `[1,2,3]`,
	}
	for name, body := range cases {
		if _, err := ParseJobSpec([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

func TestJobSpecValidate(t *testing.T) {
	cases := map[string]JobSpec{
		"unknown workload":      {Workload: "SAP-HANA", Design: "Base1K"},
		"unknown design":        {Workload: "DSS-Qrys", Design: "Base9K"},
		"unknown kind":          {Kind: "batch", Workload: "DSS-Qrys", Design: "Base1K"},
		"point without design":  {Workload: "DSS-Qrys"},
		"point without work":    {Design: "Base1K"},
		"workload and mix":      {Workload: "DSS-Qrys", Mix: []string{"KeyValue"}, Design: "Base1K"},
		"point with sweep axes": {Workload: "DSS-Qrys", Design: "Base1K", Designs: []string{"Ideal"}},
		"sweep without designs": {Kind: KindSweep},
		"sweep with point axes": {Kind: KindSweep, Design: "Base1K", Designs: []string{"Ideal"}},
		"mixstudy without mix":  {Kind: KindMixStudy},
		"mixstudy with trace":   {Kind: KindMixStudy, Mix: []string{"DSS-Qrys"}, TraceDir: "x"},
		"negative cores":        {Workload: "DSS-Qrys", Design: "Base1K", Cores: -1},
		"negative tweak":        {Workload: "DSS-Qrys", Design: "Base1K", Profile: &ProfileTweak{Functions: -5}},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	ok := JobSpec{Workload: "DSS-Qrys", Design: "Base1K"}
	if err := ok.Validate(); err != nil {
		t.Errorf("minimal point spec rejected: %v", err)
	}
	if ok.NormKind() != KindPoint {
		t.Errorf("empty kind normalizes to %q", ok.NormKind())
	}
}

// TestJobSpecConfig checks the spec→Config mapping, including the
// profile tweak and mix workload sharing.
func TestJobSpecConfig(t *testing.T) {
	seed := uint64(7)
	spec := &JobSpec{
		Mix:     []string{"DSS-Qrys", "KeyValue", "DSS-Qrys"},
		Profile: &ProfileTweak{Concurrency: 3, Seed: &seed},
		Design:  "Confluence",
		Cores:   4, NoWarmup: true, MeasureInstr: 9_000,
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Design != Confluence || cfg.Cores != 4 || !cfg.NoWarmup || cfg.MeasureInstr != 9_000 {
		t.Fatalf("config shape = %+v", cfg)
	}
	if len(cfg.Mix) != 3 {
		t.Fatalf("mix expanded to %d workloads", len(cfg.Mix))
	}
	if cfg.Mix[0] != cfg.Mix[2] {
		t.Error("repeated mix names built distinct workloads")
	}
	for _, w := range cfg.Mix {
		if w.Prof.Concurrency != 3 || w.Prof.Seed != 7 {
			t.Errorf("tweak not applied: %+v", w.Prof)
		}
	}
}

// TestJobSpecMixWorkloads checks the mixstudy workload expansion:
// repeated names share one generated workload.
func TestJobSpecMixWorkloads(t *testing.T) {
	spec := &JobSpec{
		Kind: KindMixStudy,
		Mix:  []string{"DSS-Qrys", "KeyValue", "DSS-Qrys"},
	}
	mix, err := spec.MixWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 {
		t.Fatalf("mix expanded to %d workloads", len(mix))
	}
	if mix[0] != mix[2] {
		t.Error("repeated mix names built distinct workloads")
	}
	if mix[0].Prof.Name != "DSS-Qrys" || mix[1].Prof.Name != "KeyValue" {
		t.Errorf("mix order: %s, %s", mix[0].Prof.Name, mix[1].Prof.Name)
	}
	bad := &JobSpec{Kind: KindMixStudy}
	if _, err := bad.MixWorkloads(); err == nil {
		t.Error("mixstudy without a mix expanded")
	}
}

// TestJobSpecConfigsSweep checks sweep expansion: workload-major cross
// product, defaulting to the paper suite.
func TestJobSpecConfigsSweep(t *testing.T) {
	spec := &JobSpec{
		Kind:      KindSweep,
		Workloads: []string{"DSS-Qrys", "KeyValue"},
		Designs:   []string{"Base1K", "Confluence"},
	}
	cfgs, err := spec.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 4 {
		t.Fatalf("sweep expanded to %d cells, want 4", len(cfgs))
	}
	order := make([]string, len(cfgs))
	for i, c := range cfgs {
		order[i] = c.Workload.Prof.Name + "/" + c.Design.String()
	}
	want := "DSS-Qrys/Base1K DSS-Qrys/Confluence KeyValue/Base1K KeyValue/Confluence"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("sweep order %q, want %q (workload-major)", got, want)
	}
	if cfgs[0].Workload != cfgs[1].Workload {
		t.Error("sweep rebuilt the same workload per design")
	}

	defaulted := &JobSpec{Kind: KindSweep, Designs: []string{"Base1K"}}
	cfgs, err = defaulted.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != len(PaperWorkloadNames()) {
		t.Errorf("defaulted sweep has %d cells, want the paper suite's %d", len(cfgs), len(PaperWorkloadNames()))
	}
}

// TestSpecFromConfigRoundTrip checks the Config→JobSpec inverse: the
// reconstructed spec rebuilds bit-identical workloads.
func TestSpecFromConfigRoundTrip(t *testing.T) {
	w, err := BuildWorkload("OLTP-DB2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload: w, Design: Confluence, Cores: 2,
		WarmupInstr: 30_000, MeasureInstr: 60_000,
	}
	spec, err := SpecFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Workload != "OLTP-DB2" || spec.Profile != nil || spec.Design != "Confluence" {
		t.Fatalf("spec = %+v", spec)
	}
	back, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload.Prof != w.Prof {
		t.Errorf("rebuilt workload profile differs: %+v vs %+v", back.Workload.Prof, w.Prof)
	}
	if back.Design != cfg.Design || back.Cores != cfg.Cores ||
		back.WarmupInstr != cfg.WarmupInstr || back.MeasureInstr != cfg.MeasureInstr {
		t.Errorf("round-tripped config shape differs: %+v", back)
	}
}

// TestSpecSamplingRoundTrip pins the sampled-execution plan through the
// full serving path: Config → JobSpec → JSON → JobSpec → Config must
// preserve every Sampling field (a dropped field would silently run a
// different — or exact — plan on a remote worker).
func TestSpecSamplingRoundTrip(t *testing.T) {
	w, err := BuildWorkload("OLTP-DB2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload: w, Design: Confluence, Cores: 2,
		WarmupInstr: 30_000, MeasureInstr: 60_000,
		Sampling: Sampling{
			WindowInstr: 500, PeriodInstr: 6000, Windows: 10,
			WindowWarmupInstr: 250, JitterSeed: 7,
		},
	}
	spec, err := SpecFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sample_window_instr", "sample_period_instr", "sample_windows", "sample_window_warmup_instr", "sample_jitter_seed"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshalled spec missing %q:\n%s", want, data)
		}
	}
	parsed, err := ParseJobSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parsed.Config()
	if err != nil {
		t.Fatal(err)
	}
	if back.Sampling != cfg.Sampling {
		t.Errorf("round-tripped sampling plan differs: %+v vs %+v", back.Sampling, cfg.Sampling)
	}
	// The exact plan must stay exactly representable: no sample_* keys.
	cfg.Sampling = Sampling{}
	spec, err = SpecFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if data, err = json.Marshal(spec); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "sample_") {
		t.Errorf("exact-mode spec leaks sample_* fields:\n%s", data)
	}
}

// TestSpecFromConfigTraceOnly is the regression test for trace-wrapper
// configs: a Workload built by WorkloadFromTrace has a synthetic
// "trace:<dir>" profile that is not a named profile, so SpecFromConfig
// used to reject it even though the capture directory fully describes
// the run. It must map onto a trace-only spec and round-trip.
func TestSpecFromConfigTraceOnly(t *testing.T) {
	src, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := CaptureTrace(src, dir, 1, 20_000); err != nil {
		t.Fatal(err)
	}
	w, err := WorkloadFromTrace(dir)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{Workload: w, Design: Base1K, Cores: 1, NoWarmup: true, MeasureInstr: 10_000}
	spec, err := SpecFromConfig(cfg)
	if err != nil {
		t.Fatalf("SpecFromConfig(trace-only workload): %v", err)
	}
	if spec.TraceDir != dir || spec.Workload != "" || spec.Profile != nil {
		t.Fatalf("spec = %+v, want trace-only with TraceDir %q", spec, dir)
	}

	back, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload == nil || back.Workload.TraceDir != dir || back.Workload.Prof != w.Prof {
		t.Errorf("round-tripped workload = %+v, want the trace wrapper for %q", back.Workload, dir)
	}

	// An explicit Config.TraceDir (replaying a different capture over the
	// wrapper) wins over the wrapper's own directory.
	other := Config{Workload: w, TraceDir: dir, Design: Base1K}
	spec2, err := SpecFromConfig(other)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.TraceDir != dir {
		t.Errorf("spec.TraceDir = %q, want %q", spec2.TraceDir, dir)
	}
}

// TestSpecFromConfigTweaked covers the tweak reconstruction: a profile
// differing from its base in exactly the ProfileTweak fields round-trips.
func TestSpecFromConfigTweaked(t *testing.T) {
	spec := &JobSpec{
		Workload: "OLTP-DB2",
		Profile:  &ProfileTweak{Functions: 520, RequestTypes: 6, Concurrency: 6},
		Design:   "Confluence",
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	back, err := SpecFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back.Profile == nil || *back.Profile != *spec.Profile {
		t.Errorf("tweak not reconstructed: %+v", back.Profile)
	}
	if back.Workload != "OLTP-DB2" {
		t.Errorf("workload name %q", back.Workload)
	}
}

func TestSpecFromConfigRejects(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}

	// Custom Options are not serializable.
	withOpts := Config{Workload: w, Design: Base1K}
	withOpts.Options.Cores = 4
	if _, err := SpecFromConfig(withOpts); err == nil {
		t.Error("config with custom Options accepted")
	}

	// A workload whose profile diverges beyond the tweak fields cannot be
	// named.
	mutant := *w
	mutant.Prof.BackendCPI = w.Prof.BackendCPI + 0.25
	if _, err := SpecFromConfig(Config{Workload: &mutant, Design: Base1K}); err == nil {
		t.Error("workload diverging beyond ProfileTweak accepted")
	}

	// Mix entries with differing tweaks cannot share one spec.
	k, err := BuildWorkload("KeyValue")
	if err != nil {
		t.Fatal(err)
	}
	tweaked := *k
	tweaked.Prof.Concurrency = k.Prof.Concurrency + 1
	if _, err := SpecFromConfig(Config{Mix: []*Workload{w, &tweaked}, Design: Base1K}); err == nil {
		t.Error("mix with divergent tweaks accepted")
	}
}

// TestDesignNameRegistry pins the name↔design mapping the serialized
// specs depend on.
func TestDesignNameRegistry(t *testing.T) {
	names := DesignNames()
	if len(names) < 10 {
		t.Fatalf("DesignNames lists %d designs", len(names))
	}
	for _, n := range names {
		dp, ok := DesignByName(n)
		if !ok {
			t.Errorf("DesignByName(%q) missed", n)
			continue
		}
		if dp.String() != n {
			t.Errorf("DesignByName(%q) = %v", n, dp)
		}
	}
	if _, ok := DesignByName("Base9K"); ok {
		t.Error("unknown design resolved")
	}
}
