package confluence

import (
	"strings"
	"testing"
)

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 5 {
		t.Fatalf("suite lists %d workloads", len(names))
	}
	for _, want := range []string{"OLTP-DB2", "OLTP-Oracle", "DSS-Qrys", "Media-Streaming", "Web-Frontend"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %q missing", want)
		}
	}
}

func TestBuildWorkloadUnknown(t *testing.T) {
	_, err := BuildWorkload("SAP-HANA")
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "OLTP-DB2") {
		t.Errorf("error should list available workloads: %v", err)
	}
}

func TestRunRequiresWorkload(t *testing.T) {
	if _, err := Run(Config{Design: Confluence}); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestRunWithDefaults(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Workload: w, Design: Base1K, Cores: 2,
		WarmupInstr: 20_000, MeasureInstr: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IPC() <= 0 {
		t.Error("no IPC")
	}
	if res.RelativeArea != 1.0 {
		t.Errorf("baseline relative area = %v", res.RelativeArea)
	}
}

func TestCompare(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	// Note: Compare at default instruction counts would be slow; keep the
	// design list short and rely on the library defaults being modest.
	speedups, err := Compare(w, []DesignPoint{Base1K, Ideal}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if speedups[Base1K] != 1.0 {
		t.Errorf("baseline speedup = %v", speedups[Base1K])
	}
	if speedups[Ideal] <= 1.0 {
		t.Errorf("Ideal speedup = %v", speedups[Ideal])
	}
	if _, err := Compare(w, nil, 2); err == nil {
		t.Error("empty design list accepted")
	}
}

func TestExperimentsFactory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full suite")
	}
	r, err := Experiments("small")
	if err != nil {
		t.Fatal(err)
	}
	if r.Scale.Name != "small" {
		t.Errorf("scale = %q", r.Scale.Name)
	}
	r2, err := Experiments("unknown")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Scale.Name != "default" {
		t.Errorf("fallback scale = %q", r2.Scale.Name)
	}
}
