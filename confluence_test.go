package confluence

import (
	"strings"
	"testing"
)

func TestWorkloadNames(t *testing.T) {
	paper := PaperWorkloadNames()
	if len(paper) != 5 {
		t.Fatalf("paper suite lists %d workloads", len(paper))
	}
	names := WorkloadNames()
	if len(names) != 7 {
		t.Fatalf("extended suite lists %d workloads", len(names))
	}
	want := []string{"OLTP-DB2", "OLTP-Oracle", "DSS-Qrys", "Media-Streaming",
		"Web-Frontend", "KeyValue", "Microservices"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %q missing", w)
		}
	}
	// The paper suite is a prefix of the extended listing.
	for i, n := range paper {
		if names[i] != n {
			t.Errorf("extended suite reorders paper workload %d: %q vs %q", i, names[i], n)
		}
	}
}

func TestBuildWorkloadUnknown(t *testing.T) {
	_, err := BuildWorkload("SAP-HANA")
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "OLTP-DB2") {
		t.Errorf("error should list available workloads: %v", err)
	}
}

func TestRunRequiresWorkload(t *testing.T) {
	if _, err := Run(Config{Design: Confluence}); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestRunWithDefaults(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Workload: w, Design: Base1K, Cores: 2,
		WarmupInstr: 20_000, MeasureInstr: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IPC() <= 0 {
		t.Error("no IPC")
	}
	if res.RelativeArea != 1.0 {
		t.Errorf("baseline relative area = %v", res.RelativeArea)
	}
}

func TestCompare(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	// Note: Compare at default instruction counts would be slow; keep the
	// design list short and rely on the library defaults being modest.
	speedups, err := Compare(w, []DesignPoint{Base1K, Ideal}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if speedups[Base1K] != 1.0 {
		t.Errorf("baseline speedup = %v", speedups[Base1K])
	}
	if speedups[Ideal] <= 1.0 {
		t.Errorf("Ideal speedup = %v", speedups[Ideal])
	}
	if _, err := Compare(w, nil, 2); err == nil {
		t.Error("empty design list accepted")
	}
}

func TestExperimentsFactory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full suite")
	}
	r, err := Experiments("small")
	if err != nil {
		t.Fatal(err)
	}
	if r.Scale.Name != "small" {
		t.Errorf("scale = %q", r.Scale.Name)
	}
	r2, err := Experiments("unknown")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Scale.Name != "default" {
		t.Errorf("fallback scale = %q", r2.Scale.Name)
	}
}

func TestRunMany(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	designs := []DesignPoint{Base1K, FDP1K, Confluence}
	cfgs := make([]Config, len(designs))
	for i, dp := range designs {
		cfgs[i] = Config{
			Workload: w, Design: dp, Cores: 2,
			WarmupInstr: 20_000, MeasureInstr: 50_000,
		}
	}
	res, err := RunMany(t.Context(), 4, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(designs) {
		t.Fatalf("got %d results", len(res))
	}
	// Results must come back in input order regardless of completion order.
	for i, dp := range designs {
		if res[i].Config.Design != dp {
			t.Errorf("result %d is %v, want %v", i, res[i].Config.Design, dp)
		}
		if res[i].Stats.IPC() <= 0 {
			t.Errorf("result %d has no IPC", i)
		}
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Workload: w, Design: Base1K, Cores: 2, WarmupInstr: 20_000, MeasureInstr: 50_000},
		{Design: Confluence}, // nil workload: must fail the batch
	}
	if _, err := RunMany(t.Context(), 2, cfgs); err == nil {
		t.Error("nil workload accepted by RunMany")
	}
}

func TestCompareWithParallelism(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Workload: w, Cores: 2, Parallelism: 4,
		WarmupInstr: 20_000, MeasureInstr: 50_000,
	}
	speedups, err := CompareWith(t.Context(), base, []DesignPoint{Base1K, Ideal})
	if err != nil {
		t.Fatal(err)
	}
	if speedups[Base1K] != 1.0 {
		t.Errorf("baseline speedup = %v", speedups[Base1K])
	}
	if speedups[Ideal] <= 1.0 {
		t.Errorf("Ideal speedup = %v", speedups[Ideal])
	}
}

func TestDefaultParallelism(t *testing.T) {
	t.Setenv("REPRO_WORKERS", "5")
	if got := DefaultParallelism(); got != 5 {
		t.Errorf("DefaultParallelism with REPRO_WORKERS=5 = %d", got)
	}
}
