package confluence

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"confluence/internal/core"
	"confluence/internal/synth"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current simulator output")

const goldenPath = "testdata/golden.json"

// goldenMetrics are the headline numbers pinned per design point.
type goldenMetrics struct {
	IPC     float64 `json:"ipc"`
	L1IMPKI float64 `json:"l1i_mpki"`
	BTBMPKI float64 `json:"btb_mpki"`
}

// goldenWorkload is the fixed-seed workload the golden run simulates. It
// must never change: the golden file pins its exact numbers.
func goldenWorkload(t *testing.T) *Workload {
	t.Helper()
	p := synth.OLTPDB2()
	p.Functions = 520
	p.RequestTypes = 6
	p.Concurrency = 6
	p.Seed = 0x901d
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// goldenDesigns lists every design point the golden file covers.
func goldenDesigns() []DesignPoint {
	return []DesignPoint{
		Base1K, FDP1K, PhantomFDP, TwoLevelFDP, TwoLevelSHIFT,
		Base1KSHIFT, PhantomSHIFT, Confluence, IdealBTBSHIFT, Ideal,
		core.AirCapacity, core.AirSpatial, core.AirPrefetch, core.SweepBTB,
	}
}

func goldenRun(t *testing.T) map[string]goldenMetrics {
	return goldenRunWith(t, nil)
}

// goldenRunWith runs the golden grid, letting tweak adjust each config
// before it runs (the K>1 bound-weave golden sets EpochBlocks there).
func goldenRunWith(t *testing.T, tweak func(*Config)) map[string]goldenMetrics {
	t.Helper()
	w := goldenWorkload(t)
	out := make(map[string]goldenMetrics)
	for _, dp := range goldenDesigns() {
		cfg := Config{
			Workload: w, Design: dp, Cores: 2,
			WarmupInstr: 30_000, MeasureInstr: 60_000,
		}
		if dp == core.SweepBTB {
			cfg.Options = core.DefaultOptions()
			cfg.Options.SweepBTBEntries = 2048
		}
		if tweak != nil {
			tweak(&cfg)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", dp, err)
		}
		out[dp.String()] = goldenMetrics{
			IPC:     res.Stats.IPC(),
			L1IMPKI: res.Stats.L1IMPKI(),
			BTBMPKI: res.Stats.BTBMPKI(),
		}
	}
	return out
}

// TestGoldenStats pins IPC, L1-I MPKI, and BTB MPKI for every design point
// on a small fixed-seed workload against testdata/golden.json. The whole
// stack is deterministic, so any drift — a reordered RNG draw, a changed
// replacement decision, an off-by-one in the cycle accounting — fails this
// test. Refactors that intentionally change results regenerate the file
// with `go test -run TestGoldenStats -update ./`.
func TestGoldenStats(t *testing.T) {
	verifyGolden(t, goldenPath, goldenRun(t))
}

// verifyGolden compares got against the pinned file at path, or rewrites
// the file under -update. It is shared by the serial golden and the
// bound-weave K>1 golden (intra_test.go).
func verifyGolden(t *testing.T, path string, got map[string]goldenMetrics) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d design points", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run 'TestGoldenStats|TestIntraKGoldenStats' -update ./` to create it)", err)
	}
	var want map[string]goldenMetrics
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	var names []string
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(got) != len(want) {
		t.Errorf("golden file pins %d designs, run produced %d", len(want), len(got))
	}
	for _, name := range names {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: pinned in golden file but not produced (design removed? update the file)", name)
			continue
		}
		w := want[name]
		check := func(metric string, gv, wv float64) {
			// The run is bit-deterministic; the tolerance only absorbs the
			// float64 JSON round trip.
			if math.Abs(gv-wv) > 1e-9*math.Max(1, math.Abs(wv)) {
				t.Errorf("%s: %s = %.12g, golden %.12g (drift — if intended, re-run with -update)",
					name, metric, gv, wv)
			}
		}
		check("IPC", g.IPC, w.IPC)
		check("L1-I MPKI", g.L1IMPKI, w.L1IMPKI)
		check("BTB MPKI", g.BTBMPKI, w.BTBMPKI)
	}
}
