package confluence

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strings"

	"confluence/internal/synth"
)

// JobSpec is a JSON round-trippable description of a run — the unit of
// work the serving layer (`confluence-serve`) queues and the
// `confluence-sim -job` flag executes. It names everything a Config holds
// by value rather than by pointer: workloads by profile name (plus an
// optional ProfileTweak for seed/sizing overrides), the design point by
// its String form, and the trace capture by directory. Decoding is strict
// (unknown fields are rejected, see ParseJobSpec) so stored specs cannot
// silently rot as the schema evolves.
//
// Kind selects the job shape:
//
//   - "point" (the default): one simulation — Workload or Mix × Design,
//     mapping 1:1 onto a Config (see Config/Configs).
//   - "sweep": the cross product Workloads × Designs, one simulation per
//     cell (Workloads defaults to the paper's five-workload suite).
//   - "mixstudy": the consolidation study over Mix — every design in
//     Designs (default MixStudyDesigns) with the shared-vs-private
//     history ablation and per-workload homogeneous baselines.
type JobSpec struct {
	Kind string `json:"kind,omitempty"`

	// Workload references. Point jobs set Workload (homogeneous) or Mix
	// (consolidated, core i runs Mix[i mod len]); sweep jobs set
	// Workloads (the workload axis); mixstudy jobs set Mix.
	Workload  string   `json:"workload,omitempty"`
	Mix       []string `json:"mix,omitempty"`
	Workloads []string `json:"workloads,omitempty"`

	// Design references, by DesignPoint.String() name (see DesignNames).
	// Point jobs set Design; sweep jobs set Designs; mixstudy jobs may
	// set Designs (default: the study's canonical three).
	Design  string   `json:"design,omitempty"`
	Designs []string `json:"designs,omitempty"`

	// TraceDir, when non-empty, replays the capture in that directory
	// (Config.TraceDir semantics). With no Workload named, the capture
	// runs under default calibration (WorkloadFromTrace).
	TraceDir string `json:"trace_dir,omitempty"`

	// Profile optionally overrides generator parameters of every named
	// workload — most importantly the seed, so one spec can pin a
	// specific generated program.
	Profile *ProfileTweak `json:"profile,omitempty"`

	// Simulation shape (Config semantics, including the zero-means-
	// default sentinels for Cores/WarmupInstr/MeasureInstr).
	Cores        int    `json:"cores,omitempty"`
	WarmupInstr  uint64 `json:"warmup_instr,omitempty"`
	MeasureInstr uint64 `json:"measure_instr,omitempty"`
	NoWarmup     bool   `json:"no_warmup,omitempty"`

	// Parallelism knobs (Config semantics; K = EpochBlocks).
	Parallelism      int `json:"parallelism,omitempty"`
	IntraParallelism int `json:"intra_parallelism,omitempty"`
	EpochBlocks      int `json:"epoch_blocks,omitempty"`

	// Sampled execution (Config.Sampling semantics): the fields map
	// onto the Sampling plan field for field; all zero runs exact.
	SampleWindowInstr       uint64 `json:"sample_window_instr,omitempty"`
	SamplePeriodInstr       uint64 `json:"sample_period_instr,omitempty"`
	SampleWindows           int    `json:"sample_windows,omitempty"`
	SampleWindowWarmupInstr uint64 `json:"sample_window_warmup_instr,omitempty"`
	SampleJitterSeed        uint64 `json:"sample_jitter_seed,omitempty"`

	// Priority orders the serving layer's job queue (higher runs first,
	// FIFO within a priority). Direct execution ignores it.
	Priority int `json:"priority,omitempty"`
}

// ProfileTweak overrides select generator parameters of a named workload
// profile. Zero fields (nil Seed) keep the profile's own value.
type ProfileTweak struct {
	Functions    int     `json:"functions,omitempty"`
	RequestTypes int     `json:"request_types,omitempty"`
	Concurrency  int     `json:"concurrency,omitempty"`
	Seed         *uint64 `json:"seed,omitempty"`
}

// Job kinds (JobSpec.Kind; empty means KindPoint).
const (
	KindPoint    = "point"
	KindSweep    = "sweep"
	KindMixStudy = "mixstudy"
)

// NormKind returns the spec's kind with the empty-string default applied.
func (s *JobSpec) NormKind() string {
	if s.Kind == "" {
		return KindPoint
	}
	return s.Kind
}

// ParseJobSpec decodes and validates a JobSpec from JSON. Decoding is
// strict: unknown fields, trailing garbage, and validation failures are
// all errors, so a spec that decodes is a spec the engine can run.
func ParseJobSpec(data []byte) (*JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("confluence: decoding job spec: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("confluence: job spec has trailing data after the JSON object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's internal consistency: a known kind, known
// workload and design names, the right reference fields for the kind, and
// non-negative knobs. It does not touch the filesystem — TraceDir is
// validated when the job builds its workloads.
func (s *JobSpec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("confluence: invalid job spec: "+format, args...)
	}
	for _, name := range append([]string{s.Workload}, append(append([]string{}, s.Mix...), s.Workloads...)...) {
		if name == "" {
			continue
		}
		if _, ok := synth.ProfileByName(name); !ok {
			return bad("unknown workload %q (have: %s)", name, strings.Join(WorkloadNames(), ", "))
		}
	}
	for _, name := range append([]string{s.Design}, s.Designs...) {
		if name == "" {
			continue
		}
		if _, ok := DesignByName(name); !ok {
			return bad("unknown design %q (have: %s)", name, strings.Join(DesignNames(), ", "))
		}
	}
	if s.Cores < 0 || s.Parallelism < 0 || s.IntraParallelism < 0 || s.EpochBlocks < 0 {
		return bad("cores/parallelism/intra_parallelism/epoch_blocks must be non-negative")
	}
	if s.SampleWindows < 0 {
		return bad("sample_windows must be non-negative")
	}
	if err := s.sampling().Validate(); err != nil {
		return bad("%v", err)
	}
	if s.Profile != nil && (s.Profile.Functions < 0 || s.Profile.RequestTypes < 0 || s.Profile.Concurrency < 0) {
		return bad("profile overrides must be non-negative")
	}
	switch s.NormKind() {
	case KindPoint:
		if len(s.Workloads) > 0 || len(s.Designs) > 0 {
			return bad("point jobs use workload/mix and design, not the plural sweep axes")
		}
		if s.Design == "" {
			return bad("point jobs require a design")
		}
		if s.Workload != "" && len(s.Mix) > 0 {
			return bad("workload and mix are mutually exclusive")
		}
		if s.Workload == "" && len(s.Mix) == 0 && s.TraceDir == "" {
			return bad("point jobs require a workload, a mix, or a trace_dir")
		}
	case KindSweep:
		if s.Workload != "" || len(s.Mix) > 0 || s.Design != "" {
			return bad("sweep jobs use workloads/designs, not the singular point fields")
		}
		if len(s.Designs) == 0 {
			return bad("sweep jobs require designs")
		}
	case KindMixStudy:
		if s.Workload != "" || s.Design != "" || len(s.Workloads) > 0 {
			return bad("mixstudy jobs use mix (and optionally designs)")
		}
		if len(s.Mix) == 0 {
			return bad("mixstudy jobs require a mix")
		}
		if s.TraceDir != "" {
			return bad("mixstudy jobs do not replay traces")
		}
	default:
		return bad("unknown kind %q (have: %s, %s, %s)", s.Kind, KindPoint, KindSweep, KindMixStudy)
	}
	return nil
}

// buildWorkload generates one named workload with the spec's profile
// overrides applied.
func (s *JobSpec) buildWorkload(name string) (*Workload, error) {
	prof, ok := synth.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("confluence: unknown workload %q", name)
	}
	if t := s.Profile; t != nil {
		if t.Functions > 0 {
			prof.Functions = t.Functions
		}
		if t.RequestTypes > 0 {
			prof.RequestTypes = t.RequestTypes
		}
		if t.Concurrency > 0 {
			prof.Concurrency = t.Concurrency
		}
		if t.Seed != nil {
			prof.Seed = *t.Seed
		}
	}
	return synth.Build(prof)
}

// sampling assembles the spec's sampled-execution plan (zero = exact).
func (s *JobSpec) sampling() Sampling {
	return Sampling{
		WindowInstr:       s.SampleWindowInstr,
		PeriodInstr:       s.SamplePeriodInstr,
		Windows:           s.SampleWindows,
		WindowWarmupInstr: s.SampleWindowWarmupInstr,
		JitterSeed:        s.SampleJitterSeed,
	}
}

// baseConfig maps the spec's simulation-shape fields onto a Config
// (workloads and design still unset).
func (s *JobSpec) baseConfig() Config {
	return Config{
		Cores:            s.Cores,
		WarmupInstr:      s.WarmupInstr,
		MeasureInstr:     s.MeasureInstr,
		NoWarmup:         s.NoWarmup,
		TraceDir:         s.TraceDir,
		Parallelism:      s.Parallelism,
		IntraParallelism: s.IntraParallelism,
		EpochBlocks:      s.EpochBlocks,
		Sampling:         s.sampling(),
	}
}

// Config maps a point spec onto the Config it describes, generating its
// workloads. Sweep and mixstudy specs expand to more than one simulation
// — use Configs (sweep) or the serving layer's executor (mixstudy).
func (s *JobSpec) Config() (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	if s.NormKind() != KindPoint {
		return Config{}, fmt.Errorf("confluence: %s job spec does not map onto a single Config", s.NormKind())
	}
	cfg := s.baseConfig()
	dp, _ := DesignByName(s.Design)
	cfg.Design = dp
	switch {
	case len(s.Mix) > 0:
		built := make(map[string]*Workload, len(s.Mix))
		for _, name := range s.Mix {
			if built[name] != nil {
				continue
			}
			w, err := s.buildWorkload(name)
			if err != nil {
				return Config{}, err
			}
			built[name] = w
		}
		cfg.Mix = make([]*Workload, len(s.Mix))
		for i, name := range s.Mix {
			cfg.Mix[i] = built[name]
		}
	case s.Workload != "":
		w, err := s.buildWorkload(s.Workload)
		if err != nil {
			return Config{}, err
		}
		cfg.Workload = w
	default: // trace-only replay under default calibration
		w, err := WorkloadFromTrace(s.TraceDir)
		if err != nil {
			return Config{}, err
		}
		cfg.Workload = w
	}
	return cfg, nil
}

// MixWorkloads generates the spec's workload mix (core i runs
// mix[i mod len]) with the profile overrides applied — the input a
// mixstudy job hands to the experiments runner. Repeated names share one
// generated workload.
func (s *JobSpec) MixWorkloads() ([]*Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Mix) == 0 {
		return nil, fmt.Errorf("confluence: job spec has no mix")
	}
	built := make(map[string]*Workload, len(s.Mix))
	mix := make([]*Workload, len(s.Mix))
	for i, name := range s.Mix {
		if built[name] == nil {
			w, err := s.buildWorkload(name)
			if err != nil {
				return nil, err
			}
			built[name] = w
		}
		mix[i] = built[name]
	}
	return mix, nil
}

// Configs expands the spec into the ordered list of simulations it
// describes: one Config for a point job, the Workloads × Designs cross
// product (workload-major, matching the figure runners' canonical order)
// for a sweep. Workload generation is shared across cells. Mixstudy specs
// do not expand to plain Configs.
func (s *JobSpec) Configs() ([]Config, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.NormKind() {
	case KindPoint:
		cfg, err := s.Config()
		if err != nil {
			return nil, err
		}
		return []Config{cfg}, nil
	case KindSweep:
		names := s.Workloads
		if len(names) == 0 {
			names = PaperWorkloadNames()
		}
		var cfgs []Config
		for _, name := range names {
			w, err := s.buildWorkload(name)
			if err != nil {
				return nil, err
			}
			for _, dn := range s.Designs {
				dp, _ := DesignByName(dn)
				cfg := s.baseConfig()
				cfg.Workload = w
				cfg.Design = dp
				cfgs = append(cfgs, cfg)
			}
		}
		return cfgs, nil
	default:
		return nil, fmt.Errorf("confluence: %s job spec does not expand to Configs (run it through the serving layer or MixStudyFor)", s.NormKind())
	}
}

// SpecFromConfig maps a Config back onto the point JobSpec that describes
// it — the inverse of JobSpec.Config for configs expressible as specs:
// workloads must be generated from named profiles (with at most the
// ProfileTweak fields changed, uniformly across a mix), and Options must
// be zero (specs carry no Options). The round trip
// SpecFromConfig(cfg).Config() rebuilds bit-identical workloads, since
// generation is deterministic in (profile, seed).
func SpecFromConfig(cfg Config) (*JobSpec, error) {
	// Options holds a func field, so the zero test is DeepEqual (two nil
	// Sources compare equal; any set field or provider does not).
	if !reflect.DeepEqual(cfg.Options, Options{}) {
		return nil, fmt.Errorf("confluence: config with custom Options is not expressible as a JobSpec")
	}
	s := &JobSpec{
		Design:                  cfg.Design.String(),
		TraceDir:                cfg.TraceDir,
		Cores:                   cfg.Cores,
		WarmupInstr:             cfg.WarmupInstr,
		MeasureInstr:            cfg.MeasureInstr,
		NoWarmup:                cfg.NoWarmup,
		Parallelism:             cfg.Parallelism,
		IntraParallelism:        cfg.IntraParallelism,
		EpochBlocks:             cfg.EpochBlocks,
		SampleWindowInstr:       cfg.Sampling.WindowInstr,
		SamplePeriodInstr:       cfg.Sampling.PeriodInstr,
		SampleWindows:           cfg.Sampling.Windows,
		SampleWindowWarmupInstr: cfg.Sampling.WindowWarmupInstr,
		SampleJitterSeed:        cfg.Sampling.JitterSeed,
	}
	describe := func(w *Workload) (string, *ProfileTweak, error) {
		name := w.Prof.Name
		base, ok := synth.ProfileByName(name)
		if !ok {
			return "", nil, fmt.Errorf("confluence: workload %q is not a named profile", name)
		}
		var tweak *ProfileTweak
		if w.Prof != base {
			t := &ProfileTweak{}
			p := base
			if w.Prof.Functions != base.Functions {
				t.Functions, p.Functions = w.Prof.Functions, w.Prof.Functions
			}
			if w.Prof.RequestTypes != base.RequestTypes {
				t.RequestTypes, p.RequestTypes = w.Prof.RequestTypes, w.Prof.RequestTypes
			}
			if w.Prof.Concurrency != base.Concurrency {
				t.Concurrency, p.Concurrency = w.Prof.Concurrency, w.Prof.Concurrency
			}
			if w.Prof.Seed != base.Seed {
				seed := w.Prof.Seed
				t.Seed, p.Seed = &seed, seed
			}
			if p != w.Prof {
				return "", nil, fmt.Errorf("confluence: workload %q diverges from its profile beyond the ProfileTweak fields", name)
			}
			tweak = t
		}
		return name, tweak, nil
	}
	sameTweak := func(a, b *ProfileTweak) bool {
		if (a == nil) != (b == nil) {
			return false
		}
		if a == nil {
			return true
		}
		if (a.Seed == nil) != (b.Seed == nil) || (a.Seed != nil && *a.Seed != *b.Seed) {
			return false
		}
		return a.Functions == b.Functions && a.RequestTypes == b.RequestTypes && a.Concurrency == b.Concurrency
	}
	switch {
	case cfg.Workload != nil && len(cfg.Mix) == 0:
		w := cfg.Workload
		if w.Prog == nil && w.TraceDir != "" && w.Prof == synth.TraceProfile(w.Prof.Name) {
			// A WorkloadFromTrace wrapper: no program, no tuned profile —
			// the capture directory is its whole identity, so the config is
			// expressible as a trace-only spec (JobSpec.Config rebuilds it
			// through WorkloadFromTrace).
			if s.TraceDir == "" {
				s.TraceDir = w.TraceDir
			}
			break
		}
		name, tweak, err := describe(w)
		if err != nil {
			return nil, err
		}
		s.Workload, s.Profile = name, tweak
	case len(cfg.Mix) > 0 && cfg.Workload == nil:
		for i, w := range cfg.Mix {
			name, tweak, err := describe(w)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				s.Profile = tweak
			} else if !sameTweak(s.Profile, tweak) {
				return nil, fmt.Errorf("confluence: mix workloads with differing profile tweaks are not expressible as one JobSpec")
			}
			s.Mix = append(s.Mix, name)
		}
	default:
		return nil, fmt.Errorf("confluence: config needs exactly one of Workload and Mix")
	}
	if _, ok := DesignByName(s.Design); !ok {
		return nil, fmt.Errorf("confluence: design %v has no serialized name", cfg.Design)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
