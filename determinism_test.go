package confluence

import "testing"

// TestRunDeterminism pins the whole stack end to end: identical configs
// must reproduce cycle-exact results (workload generation, execution,
// prediction, prefetching, and timing are all seeded).
func TestRunDeterminism(t *testing.T) {
	run := func() *Result {
		w, err := BuildWorkload("Media-Streaming")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Workload: w, Design: Confluence, Cores: 2,
			WarmupInstr: 50_000, MeasureInstr: 100_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats.Cycles != b.Stats.Cycles {
		t.Errorf("cycles diverged: %v vs %v", a.Stats.Cycles, b.Stats.Cycles)
	}
	if a.Stats.BTBMisses != b.Stats.BTBMisses || a.Stats.L1IMisses != b.Stats.L1IMisses {
		t.Errorf("miss counts diverged")
	}
	if a.Stats.PrefIssued != b.Stats.PrefIssued {
		t.Errorf("prefetch streams diverged")
	}
}

// TestDesignPointsDifferentiate ensures distinct designs actually produce
// distinct machines (a regression guard against wiring mistakes that
// silently fall back to a default design).
func TestDesignPointsDifferentiate(t *testing.T) {
	w, err := BuildWorkload("Media-Streaming")
	if err != nil {
		t.Fatal(err)
	}
	cycles := map[float64]DesignPoint{}
	for _, dp := range []DesignPoint{Base1K, FDP1K, TwoLevelFDP, Confluence} {
		res, err := Run(Config{
			Workload: w, Design: dp, Cores: 2,
			WarmupInstr: 50_000, MeasureInstr: 100_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := cycles[res.Stats.Cycles]; dup {
			t.Errorf("%v and %v produced identical cycle counts (%v)", prev, dp, res.Stats.Cycles)
		}
		cycles[res.Stats.Cycles] = dp
	}
}
