package confluence

import (
	"math"
	"testing"

	"confluence/internal/core"
)

// intraDesigns covers every shared-structure flavor the bound-weave engine
// must handle: SHIFT's shared history + AirBTB (Confluence), PhantomBTB's
// shared group store, plain FDP (no shared prefetcher state), and the
// SHIFT-over-conventional-BTB point.
var intraDesigns = []DesignPoint{Confluence, PhantomSHIFT, FDP1K, Base1KSHIFT}

// statsEqual fails the test if two results differ in any counter, aggregate
// or per core.
func statsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if *a.Stats != *b.Stats {
		t.Errorf("%s: aggregate stats diverged:\n a %+v\n b %+v", label, *a.Stats, *b.Stats)
	}
	if len(a.PerCore) != len(b.PerCore) {
		t.Fatalf("%s: per-core lengths differ: %d vs %d", label, len(a.PerCore), len(b.PerCore))
	}
	for i := range a.PerCore {
		if *a.PerCore[i] != *b.PerCore[i] {
			t.Errorf("%s: core %d stats diverged", label, i)
		}
	}
}

// TestIntraK1BitIdentity is the bound-weave anchor: at K=1 the canonical
// weave order is the serial round-robin, so any in-run worker count must be
// bit-identical to the serial engine — per design, homogeneous and
// consolidated alike.
func TestIntraK1BitIdentity(t *testing.T) {
	w, err := BuildWorkload("OLTP-DB2")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := BuildWorkload("Web-Frontend")
	if err != nil {
		t.Fatal(err)
	}
	run := func(dp DesignPoint, mix []*Workload, intra int) *Result {
		cfg := Config{
			Design: dp, Cores: 4, WarmupInstr: 20_000, MeasureInstr: 40_000,
			IntraParallelism: intra,
		}
		if len(mix) == 1 {
			cfg.Workload = mix[0]
		} else {
			cfg.Mix = mix
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v intra=%d: %v", dp, intra, err)
		}
		return res
	}
	for _, dp := range intraDesigns {
		serial := run(dp, []*Workload{w}, 1)
		for _, intra := range []int{2, 8} {
			statsEqual(t, dp.String(), serial, run(dp, []*Workload{w}, intra))
		}
	}
	// A heterogeneous mix: consolidation shares the history across address
	// spaces and must stay exact too.
	serialMix := run(Confluence, []*Workload{w, wb}, 1)
	for _, intra := range []int{2, 8} {
		statsEqual(t, "Confluence mix", serialMix, run(Confluence, []*Workload{w, wb}, intra))
	}
}

// TestIntraKDeterminism pins the K>1 approximation's own contract: for a
// fixed K the result is a pure function of the configuration — bit-equal
// for any worker count — even though it is not the serial result.
func TestIntraKDeterminism(t *testing.T) {
	w, err := BuildWorkload("OLTP-DB2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(dp DesignPoint, intra int) *Result {
		res, err := Run(Config{
			Workload: w, Design: dp, Cores: 4,
			WarmupInstr: 20_000, MeasureInstr: 40_000,
			IntraParallelism: intra, EpochBlocks: 8,
		})
		if err != nil {
			t.Fatalf("%v intra=%d: %v", dp, intra, err)
		}
		return res
	}
	for _, dp := range intraDesigns {
		one := run(dp, 1)
		for _, intra := range []int{2, 8} {
			statsEqual(t, dp.String(), one, run(dp, intra))
		}
	}
}

// TestIntraKGoldenStats pins the K=8 bound-weave approximation against its
// own golden file, exactly as TestGoldenStats pins the serial engine:
// every design point, byte-for-byte. Regenerate both files together with
// `go test -run 'TestGoldenStats|TestIntraKGoldenStats' -update ./`.
func TestIntraKGoldenStats(t *testing.T) {
	got := goldenRunWith(t, func(cfg *Config) {
		cfg.EpochBlocks = 8
		cfg.IntraParallelism = 2
	})
	verifyGolden(t, "testdata/golden_intra_k8.json", got)
}

// TestIntraKTolerance bounds the K>1 approximation's error: on the paper's
// five workloads, IPC and L1-I MPKI under K=8 must sit within 1% of the
// serial engine. The one-epoch-delayed shared-timing feedback is the only
// difference, so a larger gap means the deferral is leaking into private
// state somewhere.
func TestIntraKTolerance(t *testing.T) {
	within := func(metric string, name string, got, want float64) {
		t.Helper()
		// Guard the zero-valued case (a workload with no misses) with an
		// absolute floor.
		if math.Abs(got-want) > 0.01*math.Max(math.Abs(want), 1e-9) {
			t.Errorf("%s: %s = %.6g vs serial %.6g (>1%%)", name, metric, got, want)
		}
	}
	for _, name := range PaperWorkloadNames() {
		w, err := BuildWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		base := Config{
			Workload: w, Design: Confluence, Cores: 4,
			WarmupInstr: 100_000, MeasureInstr: 200_000,
		}
		serial, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		cfgK := base
		cfgK.EpochBlocks = 8
		cfgK.IntraParallelism = 2
		approx, err := Run(cfgK)
		if err != nil {
			t.Fatal(err)
		}
		within("IPC", name, approx.Stats.IPC(), serial.Stats.IPC())
		within("L1-I MPKI", name, approx.Stats.L1IMPKI(), serial.Stats.L1IMPKI())
	}
}

// TestIntraRaceMix is the -race workout: an 8-core heterogeneous
// consolidation with 4 bound-phase workers at K=8 exercises concurrent
// bound stepping (frozen shared reads from every core while the generator
// cores log history records) under the race detector in CI.
func TestIntraRaceMix(t *testing.T) {
	names := []string{"OLTP-DB2", "Web-Frontend", "DSS-Qrys"}
	var mix []*Workload
	for _, n := range names {
		w, err := BuildWorkload(n)
		if err != nil {
			t.Fatal(err)
		}
		mix = append(mix, w)
	}
	res, err := Run(Config{
		Mix: mix, Design: Confluence, Cores: 8,
		WarmupInstr: 20_000, MeasureInstr: 40_000,
		IntraParallelism: 4, EpochBlocks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions == 0 || res.Stats.IPC() <= 0 {
		t.Fatal("race mix run produced no work")
	}
	// And the same mix through Options plumbing (core.Options rather than
	// Config), as experiments wire it.
	opt := core.DefaultOptions()
	opt.Cores = 8
	opt.IntraWorkers = 4
	opt.EpochBlocks = 8
	res2, err := Run(Config{
		Mix: mix, Design: PhantomSHIFT, Cores: 8,
		WarmupInstr: 20_000, MeasureInstr: 40_000, Options: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Instructions == 0 {
		t.Fatal("options-plumbed race run produced no work")
	}
}
