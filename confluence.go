// Package confluence is a simulation library reproducing "Confluence:
// Unified Instruction Supply for Scale-Out Servers" (Kaynak, Grot, Falsafi,
// MICRO-48, 2015).
//
// Confluence is a server-processor frontend that fills both the L1
// instruction cache and the branch target buffer from a single stream-based
// prefetcher (SHIFT) whose block-grain control-flow history is shared
// across cores and virtualized into the LLC. Its BTB, AirBTB, mirrors L1-I
// content: every block filled into the L1-I is predecoded and its branch
// targets eagerly installed; evictions stay synchronized.
//
// The library bundles everything needed to study the design: a synthetic
// server-workload generator standing in for the paper's commercial traces,
// a trace-driven multi-core frontend timing model, all competing designs
// from the paper's evaluation (conventional/two-level/Phantom BTBs, FDP),
// an area model, and experiment runners that regenerate every table and
// figure (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start:
//
//	w, _ := confluence.BuildWorkload("OLTP-DB2")
//	res, _ := confluence.Run(confluence.Config{
//		Workload: w,
//		Design:   confluence.Confluence,
//		Cores:    8,
//	})
//	fmt.Println(res.Stats.IPC())
package confluence

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"confluence/internal/core"
	"confluence/internal/experiments"
	"confluence/internal/frontend"
	"confluence/internal/parallel"
	"confluence/internal/stats"
	"confluence/internal/store"
	"confluence/internal/synth"
	"confluence/internal/trace"
)

// DesignPoint selects a frontend configuration from the paper's evaluation.
type DesignPoint = core.DesignPoint

// The design points (see the paper's Figures 2, 6 and 7).
const (
	Base1K        = core.Base1K
	FDP1K         = core.FDP1K
	PhantomFDP    = core.PhantomFDP
	TwoLevelFDP   = core.TwoLevelFDP
	TwoLevelSHIFT = core.TwoLevelSHIFT
	Base1KSHIFT   = core.Base1KSHIFT
	PhantomSHIFT  = core.PhantomSHIFT
	Confluence    = core.Confluence
	IdealBTBSHIFT = core.IdealBTBSHIFT
	Ideal         = core.Ideal
)

// DesignByName resolves a design point from its String form (the names
// printed in tables and pinned in golden files) — the vocabulary
// serialized JobSpecs use.
func DesignByName(name string) (DesignPoint, bool) { return core.DesignByName(name) }

// DesignNames lists every design point's name in design-point order.
func DesignNames() []string { return core.DesignNames() }

// Workload is a generated synthetic server workload.
type Workload = synth.Workload

// Stats is the measured outcome of a simulation.
type Stats = frontend.Stats

// Options fine-tunes system assembly (AirBTB geometry, SHIFT sizing, ...).
type Options = core.Options

// Sampling configures SMARTS-style sampled execution (see Config.Sampling):
// Windows detailed measurement windows of WindowInstr instructions, one per
// PeriodInstr of forward progress, the gaps and the warm-up covered by
// functional fast-forward. The zero value is exact mode.
type Sampling = core.Sampling

// SampledReport is a sampled run's statistical summary: per-window
// aggregates, mean ± 95% confidence intervals, and cost accounting (see
// Result.Sampled).
type SampledReport = experiments.SampledReport

// AutoSampling derives a sampling plan for a measure region — eight
// windows, 1/10 of the region in detail — the plan behind the CLIs'
// -sample flag.
func AutoSampling(measure uint64) Sampling { return core.AutoSampling(measure) }

// WorkloadNames lists every available synthetic workload: the paper's
// five-workload suite first (the set the experiment runners reproduce
// figures over), then the extended scale-out scenarios.
func WorkloadNames() []string {
	var names []string
	for _, p := range synth.ExtendedProfiles() {
		names = append(names, p.Name)
	}
	return names
}

// PaperWorkloadNames lists only the paper's five-workload suite.
func PaperWorkloadNames() []string {
	var names []string
	for _, p := range synth.Profiles() {
		names = append(names, p.Name)
	}
	return names
}

// BuildWorkload generates the named workload (see WorkloadNames).
// Generation is deterministic; building the same name twice yields
// identical programs.
func BuildWorkload(name string) (*Workload, error) {
	prof, ok := synth.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("confluence: unknown workload %q (have: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
	return synth.Build(prof)
}

// BuildAllWorkloads generates the full suite.
func BuildAllWorkloads() ([]*Workload, error) {
	var ws []*Workload
	for _, name := range WorkloadNames() {
		w, err := BuildWorkload(name)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// WorkloadFromTrace wraps a capture directory (one CFLTRC01 file per
// captured core, as written by CaptureTrace or `tracegen -cores`) as a
// Workload: running it replays the capture through the timing model. The
// returned workload carries default timing calibration and no program
// image, so predecode-dependent mechanisms see no static metadata; to
// replay a capture of a known synthetic workload at full fidelity, pass
// that workload in Config.Workload and the capture in Config.TraceDir
// instead.
func WorkloadFromTrace(path string) (*Workload, error) {
	files, err := trace.TraceFiles(path)
	if err != nil {
		return nil, fmt.Errorf("confluence: %w", err)
	}
	// Validate every capture eagerly so a corrupt file — any file, since
	// cores stripe across all of them — fails here, not mid-simulation.
	for _, f := range files {
		src, err := trace.OpenFileSource(f, 0)
		if err != nil {
			return nil, fmt.Errorf("confluence: %w", err)
		}
		var rec trace.Record
		rerr := src.Next(&rec)
		src.Close()
		if rerr != nil {
			return nil, fmt.Errorf("confluence: validating %s: %w", f, rerr)
		}
	}
	prof := synth.TraceProfile("trace:" + filepath.Base(path))
	return &Workload{Prof: prof, TraceDir: path}, nil
}

// CaptureTrace writes a capture of w to dir: one trace file per core
// (core-000.trace, core-001.trace, ...), each at least instrPerCore
// instructions long, seeded exactly as a live Run seeds its cores — so a
// replay of the capture with up to `cores` cores is record-identical to
// the live simulation it stands in for. It is CaptureTraceCtx with a
// background context.
func CaptureTrace(w *Workload, dir string, cores int, instrPerCore uint64) error {
	return CaptureTraceCtx(context.Background(), w, dir, cores, instrPerCore)
}

// CaptureTraceCtx is CaptureTrace honoring mid-capture cancellation: the
// per-core capture loop polls ctx every few thousand records, removes the
// truncated (unusable) file it was writing, and returns ctx's error. A
// capture that completes is byte-identical whether or not a context is
// attached.
func CaptureTraceCtx(ctx context.Context, w *Workload, dir string, cores int, instrPerCore uint64) error {
	if w == nil || w.Prog == nil {
		return fmt.Errorf("confluence: CaptureTrace needs a generated workload")
	}
	if cores < 1 {
		return fmt.Errorf("confluence: CaptureTrace needs at least one core")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < cores; i++ {
		path := filepath.Join(dir, fmt.Sprintf("core-%03d.trace", i))
		if err := captureCore(ctx, w, path, trace.CoreSeed(w.Prof.Seed, i), instrPerCore); err != nil {
			os.Remove(path) // a truncated capture must not look replayable
			return err
		}
	}
	return nil
}

func captureCore(ctx context.Context, w *Workload, path string, seed, instr uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, _, err := trace.CaptureCtx(ctx, f, trace.NewExecutor(w, seed), instr); err != nil {
		return err
	}
	return f.Close()
}

// Config describes one simulation.
type Config struct {
	// Workload runs on every core — the paper's homogeneous configuration.
	// Exactly one of Workload and Mix must be set.
	Workload *Workload
	// Mix consolidates heterogeneous workloads onto one CMP: core i runs
	// Mix[i mod len(Mix)], with its own program image, predecode metadata,
	// and timing calibration. Each mix slot occupies a distinct address
	// space, so shared structures (the LLC, SHIFT's history, PhantomBTB's
	// group store) are stressed by the combined footprint without false
	// aliasing between programs. A mix of N copies of one workload (same
	// pointer or rebuilt from the same profile) is bit-identical to the
	// homogeneous run of that workload.
	Mix []*Workload
	// Design selects the frontend configuration.
	Design DesignPoint
	// Cores is the CMP width (default 16, the paper's configuration).
	Cores int
	// WarmupInstr/MeasureInstr are per-core instruction counts. Zero is a
	// sentinel selecting the default (1.5M each) — it does NOT request a
	// zero-length warmup; set NoWarmup to measure from cold state.
	WarmupInstr  uint64
	MeasureInstr uint64
	// NoWarmup skips the warmup phase entirely (WarmupInstr is ignored),
	// measuring from cold caches, predictors, and history — the escape
	// hatch from WarmupInstr's zero-means-default sentinel.
	NoWarmup bool
	// TraceDir, when non-empty, replays the capture in that directory
	// through the timing model instead of executing the workload live: core
	// i replays file i mod F (sorted by name) with a deterministic record
	// offset when cores outnumber files. It overrides any TraceDir carried
	// by the Workload itself (see WorkloadFromTrace), while an explicit
	// Options.Sources overrides both. The Workload is still
	// required — it supplies timing calibration, and (when it is the
	// workload the capture was taken from) the program image for predecode.
	TraceDir string
	// StoreDir, when non-empty, consults and feeds the durable
	// content-addressed result store rooted at that directory: a run whose
	// key (workloads, design, options, instruction counts, code version —
	// see experiments.CellStoreKey) is already stored returns the persisted
	// result without simulating, and a completed run persists its result
	// for future processes. Stored results are byte-identical to live runs
	// (exact float64 JSON round trip), so resuming an interrupted grid
	// against the same store reproduces the uninterrupted output exactly.
	// Empty preserves today's in-memory-only behavior exactly. Runs with an
	// Options.Sources override bypass the store (their inputs are not
	// serializable); the CONFLUENCE_STORE_MAX_BYTES environment variable
	// caps the directory (LRU eviction).
	StoreDir string
	// Sampling, when enabled, replaces exact execution with SMARTS-style
	// sampled measurement: warm-up runs through functional fast-forward
	// (only history-relevant state evolves — branch predictors, BTBs,
	// caches, SHIFT history — at a fraction of detailed cost), then the
	// measure region is covered by periodic detailed windows whose
	// statistics aggregate into Result.Stats plus a Result.Sampled report
	// with 95% confidence intervals. With StoreDir set, the warm-up state
	// at the first window boundary is checkpointed into the store and
	// reused by later runs sharing the workload prefix (bit-identical to a
	// live fast-forward warm-up). The zero value is exact mode, unchanged.
	Sampling Sampling
	// Tuning, optional: zero value uses the paper's configuration.
	Options Options
	// Parallelism bounds concurrent simulations when this Config seeds a
	// multi-cell API (CompareWith, or RunMany when its explicit parallelism
	// parameter is zero — RunMany reads the first config's value). Zero
	// resolves through the REPRO_WORKERS environment variable, then
	// GOMAXPROCS. A single Run is one simulation and ignores it.
	Parallelism int
	// IntraParallelism bounds the worker goroutines stepping cores inside
	// this single simulation (bound-weave epochs; see internal/cmp). The
	// default (0 or 1) is the serial engine — today's behavior. At
	// EpochBlocks=1 (the default) results are bit-identical to serial for
	// any IntraParallelism, so the knob is pure wall-clock.
	IntraParallelism int
	// EpochBlocks is K, the per-core epoch depth in basic blocks for
	// bound-weave stepping. 0/1 (the default) is the exact mode; K>1 is a
	// documented approximation — cross-core shared-timing feedback (LLC
	// fills, SHIFT history records) arrives one epoch late — that remains
	// bit-deterministic across worker counts for a given K.
	EpochBlocks int
}

// Result is a completed simulation.
type Result struct {
	Config Config
	Stats  *Stats
	// PerCore is each core's measured stats, in core order (core i ran
	// Config.Mix[i mod len(Mix)], or the single Workload). Stats is the
	// in-order sum of these.
	PerCore []*Stats
	// OverheadMM2 and RelativeArea place the design on the paper's
	// performance/area plane.
	OverheadMM2  float64
	RelativeArea float64
	// Sampled is the sampling report of a Config.Sampling run (nil in
	// exact mode): per-window aggregates, mean ± 95% CI estimates, and
	// the detailed-instruction reduction achieved.
	Sampled *SampledReport
}

// Run assembles and simulates one design point. It is RunCtx with a
// background context.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// resolveConfig applies RunCtx's defaulting rules — mix vs. single
// workload, CMP width, intra-parallelism knobs, the warmup/measure
// instruction sentinels — and returns the resolved mix, engine options,
// and config. It exists so ConfigStoreKey and RunCtx derive store keys
// from one resolution path: a coordinator that computed keys with its own
// copy of these rules would silently diverge the moment a default
// changed.
func resolveConfig(cfg Config) ([]*Workload, core.Options, Config, error) {
	mix := cfg.Mix
	switch {
	case len(mix) == 0 && cfg.Workload == nil:
		return nil, core.Options{}, cfg, fmt.Errorf("confluence: Config.Workload or Config.Mix is required")
	case len(mix) > 0 && cfg.Workload != nil:
		return nil, core.Options{}, cfg, fmt.Errorf("confluence: Config.Workload and Config.Mix are mutually exclusive")
	case len(mix) == 0:
		mix = []*Workload{cfg.Workload}
	}
	for _, w := range mix {
		if w == nil {
			return nil, core.Options{}, cfg, fmt.Errorf("confluence: nil workload in Config.Mix")
		}
	}
	opt := cfg.Options
	if opt.Cores == 0 {
		// Only the CMP width needs defaulting here: core.NewMixSystem
		// field-defaults the remaining tuning, so a caller's
		// partially-specified Options (custom AirBTB geometry, private
		// histories, ...) survives intact.
		opt.Cores = core.DefaultOptions().Cores
	}
	if cfg.Cores > 0 {
		opt.Cores = cfg.Cores
	}
	// Like Cores above, the Config knobs win over Options when both are set.
	if cfg.IntraParallelism > 0 {
		opt.IntraWorkers = cfg.IntraParallelism
	}
	if cfg.EpochBlocks > 0 {
		opt.EpochBlocks = cfg.EpochBlocks
	}
	switch {
	case cfg.NoWarmup:
		cfg.WarmupInstr = 0
	case cfg.WarmupInstr == 0:
		cfg.WarmupInstr = 1_500_000
	}
	if cfg.MeasureInstr == 0 {
		cfg.MeasureInstr = 1_500_000
	}
	return mix, opt, cfg, nil
}

// ConfigStoreKey returns the durable store key RunCtx will read and write
// for cfg, after applying the same defaulting rules. ok is false when the
// config is invalid or contains opaque key material (an Options.Sources
// closure) that keeps it out of the store. Fleet coordinators use this to
// name grid cells without running anything.
func ConfigStoreKey(cfg Config) (string, bool) {
	mix, opt, cfg, err := resolveConfig(cfg)
	if err != nil {
		return "", false
	}
	return experiments.CellStoreKeySampled(cfg.WarmupInstr, cfg.MeasureInstr, mix, cfg.TraceDir, cfg.Design, opt, cfg.Sampling)
}

// RunCtx assembles and simulates one design point, honoring cancellation
// mid-run: the epoch engine polls ctx at every epoch barrier, so a
// cancelled simulation returns ctx.Err() within a few dozen basic blocks
// per core instead of running to its instruction target. A run that
// completes is bit-identical to Run — the poll feeds nothing back into
// the timing model.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	mix, opt, cfg, err := resolveConfig(cfg)
	if err != nil {
		return nil, err
	}
	if err := cfg.Sampling.Validate(); err != nil {
		return nil, err
	}
	// The store key must be derived before TraceDir is folded into an
	// opt.Sources closure below: a closure is opaque (CellStoreKey skips
	// the store for it), while the (mix, TraceDir) pair is canonical key
	// material.
	var resultStore *store.Store
	var storeKey string
	if cfg.StoreDir != "" {
		if key, ok := experiments.CellStoreKeySampled(cfg.WarmupInstr, cfg.MeasureInstr, mix, cfg.TraceDir, cfg.Design, opt, cfg.Sampling); ok {
			resultStore = store.Open(cfg.StoreDir)
			storeKey = key
			if payload, hit := resultStore.Get(storeKey); hit {
				if e, ok := experiments.DecodeStoreEntry(payload); ok {
					return &Result{
						Config:       cfg,
						Stats:        e.Stats,
						PerCore:      e.PerCore,
						OverheadMM2:  e.OverheadMM2,
						RelativeArea: e.RelativeArea,
						Sampled:      e.Sampled,
					}, nil
				}
			}
		}
	}
	// The warm-snapshot key is likewise canonical (mix, TraceDir)
	// material; it only exists for sampled runs against a store.
	var snapKey string
	if resultStore != nil && cfg.Sampling.Enabled() {
		snapKey, _ = experiments.SnapshotStoreKey(cfg.WarmupInstr, mix, cfg.TraceDir, cfg.Design, opt)
	}
	// Options.Sources is the most specific override and wins everywhere
	// (core.NewMixSystem resolves it first too); TraceDir then beats the
	// workloads' own supply.
	if cfg.TraceDir != "" && opt.Sources == nil {
		dir := cfg.TraceDir
		opt.Sources = func(i int) (trace.Source, error) { return trace.OpenDirSource(dir, i) }
	}
	sys, err := core.NewMixSystem(mix, cfg.Design, opt)
	if err != nil {
		return nil, err
	}
	// The deferred Close releases file-backed trace sources on every exit
	// path, success and error alike (the assembly above closes its own
	// partial opens; see TestRunErrorClosesSources).
	defer sys.Close()
	var st *Stats
	var perCore []*Stats
	var sampled *SampledReport
	if cfg.Sampling.Enabled() {
		st, perCore, sampled, err = experiments.RunSampledSystem(ctx, sys, cfg.WarmupInstr, cfg.Sampling, resultStore, snapKey)
	} else {
		st, err = sys.RunCtx(ctx, cfg.WarmupInstr, cfg.MeasureInstr)
		if err == nil {
			perCore = sys.PerCoreSnapshot()
		}
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		Config:       cfg,
		Stats:        st,
		PerCore:      perCore,
		OverheadMM2:  sys.OverheadMM2,
		RelativeArea: sys.RelativeArea,
		Sampled:      sampled,
	}
	if resultStore != nil {
		if payload, err := experiments.EncodeStoreEntry(experiments.StoreEntry{
			Stats: res.Stats, PerCore: res.PerCore, Sampled: res.Sampled,
			OverheadMM2: res.OverheadMM2, RelativeArea: res.RelativeArea,
		}); err == nil {
			resultStore.Put(storeKey, payload) // best-effort persistence
		}
	}
	return res, nil
}

// HarmonicMeanIPC returns the harmonic mean of the cores' IPCs — the
// multi-programmed throughput metric that weights every core's progress
// equally (a stalled core drags the mean toward zero).
func HarmonicMeanIPC(per []*Stats) float64 {
	ipc := make([]float64, len(per))
	for i, st := range per {
		ipc[i] = st.IPC()
	}
	return stats.HarmonicMean(ipc)
}

// WeightedSpeedup returns the mean of per-core IPC ratios mix[i]/alone[i]:
// each core's progress under consolidation relative to the same core
// running its workload homogeneously. Both slices are in core order and
// must have equal length.
func WeightedSpeedup(mix, alone []*Stats) (float64, error) {
	if len(mix) != len(alone) {
		return 0, fmt.Errorf("confluence: WeightedSpeedup: %d mix cores vs %d baseline cores", len(mix), len(alone))
	}
	m := make([]float64, len(mix))
	a := make([]float64, len(alone))
	for i := range mix {
		m[i] = mix[i].IPC()
		a[i] = alone[i].IPC()
	}
	return stats.WeightedSpeedup(m, a), nil
}

// DefaultParallelism returns the simulation fan-out used when a Config's
// Parallelism is zero: REPRO_WORKERS if set, otherwise GOMAXPROCS.
func DefaultParallelism() int { return parallel.Workers(0) }

// RunMany executes the configs concurrently on a bounded worker pool and
// returns results in input order — never completion order, so output is
// deterministic for any worker count. A zero parallelism falls back to the
// first config's Parallelism, then REPRO_WORKERS, then GOMAXPROCS. The
// first error cancels the remaining runs, including simulations already
// in flight (RunCtx polls the context mid-run).
func RunMany(ctx context.Context, parallelism int, cfgs []Config) ([]*Result, error) {
	if parallelism <= 0 && len(cfgs) > 0 {
		parallelism = cfgs[0].Parallelism
	}
	res := make([]*Result, len(cfgs))
	err := parallel.ForEach(ctx, parallelism, len(cfgs),
		func(ctx context.Context, i int) error {
			r, err := RunCtx(ctx, cfgs[i])
			res[i] = r
			return err
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Compare runs several design points on one workload and returns speedups
// relative to the first design in the list.
//
// Deprecated: use CompareWith, which takes a context (cancellation reaches
// simulations mid-run) and a full base Config (cores, warmup/measure,
// trace replay, parallelism). Compare(w, designs, cores) is exactly
// CompareWith(context.Background(), Config{Workload: w, Cores: cores},
// designs) and is kept as a thin wrapper for existing callers.
func Compare(w *Workload, designs []DesignPoint, cores int) (map[DesignPoint]float64, error) {
	return CompareWith(context.Background(), Config{Workload: w, Cores: cores}, designs)
}

// CompareWith is Compare with an explicit base configuration: every design
// is simulated under base (Design ignored), fanning out across
// base.Parallelism workers, and speedups are normalized to the first
// design in the list.
func CompareWith(ctx context.Context, base Config, designs []DesignPoint) (map[DesignPoint]float64, error) {
	if len(designs) == 0 {
		return nil, fmt.Errorf("confluence: no designs to compare")
	}
	cfgs := make([]Config, len(designs))
	for i, dp := range designs {
		cfgs[i] = base
		cfgs[i].Design = dp
	}
	res, err := RunMany(ctx, base.Parallelism, cfgs)
	if err != nil {
		return nil, err
	}
	speedups := make(map[DesignPoint]float64, len(designs))
	baseIPC := res[0].Stats.IPC()
	for i, dp := range designs {
		speedups[dp] = res[i].Stats.IPC() / baseIPC
	}
	return speedups, nil
}

// Experiments exposes the paper's table/figure runners at a given scale
// name ("small", "default", "paper"); see package
// confluence/internal/experiments for the individual runners. The runner's
// grid scheduler fans simulations out across DefaultParallelism workers;
// set Runner.Workers to override.
func Experiments(scale string) (*experiments.Runner, error) {
	sc, ok := experiments.ScaleByName(scale)
	if !ok {
		sc = experiments.Default
	}
	return experiments.NewRunner(sc, 0)
}
