package confluence

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"confluence/internal/trace"
)

// trackedSource wraps a real executor and records Close calls, so the
// leak-check tests can audit that every opened source is released on
// every error path.
type trackedSource struct {
	trace.Source
	mu     *sync.Mutex
	closed *[]int
	id     int
}

func (s *trackedSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	*s.closed = append(*s.closed, s.id)
	return nil
}

// trackingProvider opens tracked sources for w, failing at core failAt
// (-1 never fails). It returns the provider plus accessors for how many
// sources were opened and which were closed.
func trackingProvider(w *Workload, failAt int) (prov func(int) (trace.Source, error), opened func() int, closed func() []int) {
	var mu sync.Mutex
	var openedIDs []int
	var closedIDs []int
	prov = func(i int) (trace.Source, error) {
		if i == failAt {
			return nil, fmt.Errorf("injected open failure for core %d", i)
		}
		mu.Lock()
		openedIDs = append(openedIDs, i)
		mu.Unlock()
		return &trackedSource{
			Source: trace.NewExecutor(w, trace.CoreSeed(w.Prof.Seed, i)),
			mu:     &mu, closed: &closedIDs, id: i,
		}, nil
	}
	opened = func() int { mu.Lock(); defer mu.Unlock(); return len(openedIDs) }
	closed = func() []int { mu.Lock(); defer mu.Unlock(); return append([]int(nil), closedIDs...) }
	return prov, opened, closed
}

// TestAssemblyErrorClosesSources audits core.NewMixSystem's early
// returns: when assembly fails partway through the per-core loop, the
// sources already opened for earlier cores must be closed.
func TestAssemblyErrorClosesSources(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	prov, opened, closed := trackingProvider(w, 2)
	cfg := Config{
		Workload: w, Design: Base1K, Cores: 4,
		NoWarmup: true, MeasureInstr: 1000,
	}
	cfg.Options.Sources = prov
	if _, err := Run(cfg); err == nil {
		t.Fatal("assembly with a failing source provider succeeded")
	}
	if opened() != 2 {
		t.Fatalf("provider opened %d sources before the injected failure, want 2", opened())
	}
	if got := closed(); len(got) != 2 {
		t.Errorf("assembly failure closed sources %v, want both already-opened sources", got)
	}
}

// TestRunErrorClosesSources audits Run's own error paths: once assembly
// succeeds, a failed (here: cancelled) simulation must still release
// every source on the way out.
func TestRunErrorClosesSources(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	prov, opened, closed := trackingProvider(w, -1)
	cfg := Config{
		Workload: w, Design: Base1K, Cores: 2,
		NoWarmup: true, MeasureInstr: 1000,
	}
	cfg.Options.Sources = prov
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx under a cancelled context returned %v", err)
	}
	if opened() != 2 {
		t.Fatalf("provider opened %d sources, want 2", opened())
	}
	if got := closed(); len(got) != 2 {
		t.Errorf("failed run closed sources %v, want all %d", got, opened())
	}
}

// TestRunCtxCancelMidRun cancels a simulation that would otherwise run
// for hours and expects the epoch engine to notice within epochs, not
// instruction targets.
func TestRunCtxCancelMidRun(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	time.AfterFunc(20*time.Millisecond, cancel)

	done := make(chan error, 1)
	go func() {
		_, err := RunCtx(ctx, Config{
			Workload: w, Design: Confluence, Cores: 2,
			NoWarmup: true, MeasureInstr: 4_000_000_000,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled simulation did not stop")
	}
}

// TestRunCtxCompletedRunMatchesRun pins the other half of the contract:
// attaching a context must not perturb a run that completes.
func TestRunCtxCompletedRunMatchesRun(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workload: w, Design: Confluence, Cores: 2,
		WarmupInstr: 20_000, MeasureInstr: 50_000,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := RunCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *plain.Stats != *withCtx.Stats {
		t.Errorf("RunCtx perturbed a completed run:\nRun:    %+v\nRunCtx: %+v", plain.Stats, withCtx.Stats)
	}
}

// TestCaptureTraceCtxCancel cancels a capture and checks both the error
// and that no truncated (unreplayable) trace file is left behind.
func TestCaptureTraceCtxCancel(t *testing.T) {
	w, err := BuildWorkload("DSS-Qrys")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := CaptureTraceCtx(ctx, w, dir, 2, 100_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled capture returned %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("cancelled capture left %s behind", e.Name())
	}
}
