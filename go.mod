module confluence

go 1.24
