package confluence

import (
	"testing"

	"confluence/internal/store"
)

// TestGoldenStatsThroughStore pins the durable store's bit-identity
// contract against the same golden file the live simulator answers to: a
// grid run with Config.StoreDir populates the store and matches
// testdata/golden.json, and a second pass — served entirely from disk —
// reproduces every metric bit-for-bit. This is the K=1 anchor across
// process boundaries: stored bytes are the simulation's bytes.
func TestGoldenStatsThroughStore(t *testing.T) {
	dir := t.TempDir()
	withStore := func(cfg *Config) { cfg.StoreDir = dir }

	first := goldenRunWith(t, withStore)
	verifyGolden(t, goldenPath, first)

	s := store.Open(dir)
	hitsBefore, _, _ := s.Counters()
	second := goldenRunWith(t, withStore)
	hitsAfter, _, _ := s.Counters()
	if got, want := int(hitsAfter-hitsBefore), len(goldenDesigns()); got != want {
		t.Errorf("second pass hit the store %d times, want %d (every cell)", got, want)
	}
	for name, a := range first {
		b, ok := second[name]
		if !ok {
			t.Errorf("%s missing from the store-served pass", name)
			continue
		}
		// Exact float equality, not the golden file's JSON round-trip
		// tolerance: a stored result IS the live result.
		if a != b {
			t.Errorf("%s: store-served metrics diverge from live: %+v vs %+v", name, b, a)
		}
	}
	verifyGolden(t, goldenPath, second)
}

// TestStoreServedResultComplete pins that a store hit reconstructs the
// full Result — per-core stats and the area-model outputs included, not
// just the aggregate.
func TestStoreServedResultComplete(t *testing.T) {
	w := goldenWorkload(t)
	cfg := Config{
		Workload: w, Design: Confluence, Cores: 2,
		WarmupInstr: 30_000, MeasureInstr: 60_000,
		StoreDir: t.TempDir(),
	}
	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	served, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if served.OverheadMM2 != live.OverheadMM2 || served.RelativeArea != live.RelativeArea {
		t.Errorf("area outputs diverge: served (%v, %v) vs live (%v, %v)",
			served.OverheadMM2, served.RelativeArea, live.OverheadMM2, live.RelativeArea)
	}
	if len(served.PerCore) != len(live.PerCore) {
		t.Fatalf("per-core count: %d vs %d", len(served.PerCore), len(live.PerCore))
	}
	for i := range live.PerCore {
		if *served.PerCore[i] != *live.PerCore[i] {
			t.Errorf("core %d stats diverge through the store", i)
		}
	}
	if *served.Stats != *live.Stats {
		t.Error("aggregate stats diverge through the store")
	}
}
