package cliutil

import (
	"os"
	"testing"
	"time"
)

// TestInterruptContextCancelsOnSIGINT pins the seam the linter exempts:
// the one goroutine cliutil owns exists to turn the first SIGINT into a
// context cancellation and then restore the default disposition.
func TestInterruptContextCancelsOnSIGINT(t *testing.T) {
	ctx, stop := InterruptContext()
	defer stop()
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled by SIGINT")
	}
}

// TestInterruptContextStop pins that the stop function cancels the
// context without any signal and is safe to call more than once (the
// internal goroutine also calls it when the context ends).
func TestInterruptContextStop(t *testing.T) {
	ctx, stop := InterruptContext()
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not cancel the context")
	}
	stop() // idempotent
}
