// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"context"
	"os"
	"os/signal"
)

// InterruptContext returns a context cancelled by the first SIGINT. The
// signal handler is unregistered as soon as the context ends, restoring
// the default disposition so a second Ctrl-C force-kills immediately —
// simulation cells are not interruptible mid-run, and the first Ctrl-C
// only cancels between cells. The returned stop function releases the
// handler early (call it via defer).
func InterruptContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}
