package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"confluence/internal/core"
	"confluence/internal/frontend"
	"confluence/internal/stats"
	"confluence/internal/store"
	"confluence/internal/synth"
)

// SMARTS-style sampled execution over assembled systems: functional
// fast-forward warm-up (optionally restored from a durable snapshot),
// periodic detailed measurement windows, and per-window statistics
// aggregated into mean ± 95% confidence intervals. This file is the
// shared orchestration every entry point (the public Run API, the
// Runner's grid cells, the CLIs) routes through, so sampled results are
// bit-identical no matter which layer asked for them.

// WarmVersion pins the warm-snapshot semantics (what state is captured
// and how fast-forward evolves it). It is part of every snapshot's store
// key; bump it whenever the fast-forward path or the snapshot layout
// changes.
const WarmVersion = "confluence-warm-v1"

// warmKeyMaterial is the canonical serialization a warm-up snapshot's
// store key is hashed from: everything that determines the warm state at
// the first window boundary, and nothing that cannot change it. Design
// points collapse to their WarmClass — Base1K and FDP1K, differing only
// in timing machinery that fast-forward never touches, share snapshots —
// and pure timing knobs (prefetcher lookahead, epoch depth, worker
// counts) are absent: fast-forward always runs the exact serial
// schedule.
type warmKeyMaterial struct {
	Version        string          `json:"version"`
	Warmup         uint64          `json:"warmup"`
	Cores          int             `json:"cores"`
	Class          string          `json:"class"`
	Profiles       []synth.Profile `json:"profiles"`
	TraceDirs      []traceDirKey   `json:"trace_dirs,omitempty"`
	HistoryEntries int             `json:"history_entries,omitempty"` // shared SHIFT history size (LLC reservation + contents)
}

// SnapshotStoreKey derives the durable store key for the warm-up
// snapshot a sampled run of this cell would capture and reuse. ok is
// false when snapshots do not apply: no warm-up, an Options.Sources
// override (opaque streams), per-core private histories (state the
// system cannot export), or an unreadable capture directory.
func SnapshotStoreKey(warmup uint64, mix []*synth.Workload, traceDir string, dp core.DesignPoint, opt core.Options) (string, bool) {
	if warmup == 0 || opt.Sources != nil || opt.HistoryPerCore {
		return "", false
	}
	opt = opt.Normalized()
	m := warmKeyMaterial{
		Version:  WarmVersion,
		Warmup:   warmup,
		Cores:    opt.Cores,
		Class:    dp.WarmClass(opt),
		Profiles: make([]synth.Profile, len(mix)),
	}
	if dp.UsesSHIFT() {
		m.HistoryEntries = opt.Shift.HistoryEntries
	}
	for i, w := range mix {
		m.Profiles[i] = w.Prof
		dir := w.TraceDir
		if traceDir != "" {
			dir = traceDir
		}
		if dir == "" {
			continue
		}
		tk, ok := traceDirIdentity(i, dir)
		if !ok {
			return "", false
		}
		m.TraceDirs = append(m.TraceDirs, tk)
	}
	material, err := json.Marshal(m)
	if err != nil {
		return "", false
	}
	return store.Key(material), true
}

// SampledReport carries everything a sampled run measured beyond the
// aggregate stats: the plan, per-window aggregates, the mean ± 95% CI
// estimates the windows induce, and the cost accounting against exact
// mode. Instruction counts are per core.
type SampledReport struct {
	Sampling    core.Sampling `json:"sampling"`
	WarmupInstr uint64        `json:"warmup_instr"`
	// DetailedInstructions is the per-core detailed-simulation budget the
	// plan spent (measured windows plus detailed per-window warm-up);
	// FastForwardInstructions what the functional path covered instead.
	// Exact mode would have detailed their sum.
	DetailedInstructions    uint64 `json:"detailed_instructions"`
	FastForwardInstructions uint64 `json:"fast_forward_instructions"`
	// SnapshotReused reports that warm-up state came from the durable
	// store rather than a live fast-forward pass.
	SnapshotReused bool `json:"snapshot_reused"`

	// Windows holds each measurement window's aggregate stats in window
	// order; the run's Stats is their in-order sum.
	Windows []frontend.Stats `json:"windows"`

	// Per-window means with 95% confidence intervals (normal
	// approximation). The point estimates deliberately differ from the
	// aggregate ratios (mean-of-ratios vs ratio-of-sums); the aggregate is
	// the comparable number, the estimate bounds its sampling error.
	IPC     stats.Estimate `json:"ipc"`
	L1IMPKI stats.Estimate `json:"l1i_mpki"`
	BTBMPKI stats.Estimate `json:"btb_mpki"`

	// Coverage is the full-region L1-I/BTB probe accounting (windows,
	// window warm-ups, and fast-forwarded gaps together). When
	// Coverage.Exact — no prefetcher wired, as in the Figure 1 BTB
	// capacity sweep — its MPKI ratios are exact rather than sampled, and
	// BestL1IMPKI/BestBTBMPKI prefer them.
	Coverage *core.Coverage `json:"coverage,omitempty"`
}

// BestL1IMPKI returns the most accurate sampled L1-I MPKI estimate: the
// exact full-coverage ratio when available, else the window aggregate.
func (r *SampledReport) BestL1IMPKI(agg *frontend.Stats) float64 {
	if r.Coverage != nil && r.Coverage.Exact {
		return r.Coverage.L1IMPKI()
	}
	return agg.L1IMPKI()
}

// BestBTBMPKI returns the most accurate sampled BTB MPKI estimate: the
// exact full-coverage ratio when available, else the window aggregate.
func (r *SampledReport) BestBTBMPKI(agg *frontend.Stats) float64 {
	if r.Coverage != nil && r.Coverage.Exact {
		return r.Coverage.BTBMPKI()
	}
	return agg.BTBMPKI()
}

// DetailReduction returns the factor by which detailed simulation
// shrank against exact mode (exact details warm-up plus the whole
// measure region).
func (r *SampledReport) DetailReduction() float64 {
	if r.DetailedInstructions == 0 {
		return 0
	}
	return float64(r.WarmupInstr+r.FastForwardInstructions+r.DetailedInstructions) /
		float64(r.DetailedInstructions)
}

// buildSampledReport derives the estimate columns from the window list.
func buildSampledReport(sp core.Sampling, warmup uint64, reused bool, windows []frontend.Stats, cov *core.Coverage) *SampledReport {
	rep := &SampledReport{
		Sampling:             sp,
		WarmupInstr:          warmup,
		DetailedInstructions: sp.DetailedInstr(),
		SnapshotReused:       reused,
		Windows:              windows,
		Coverage:             cov,
	}
	// Fast-forwarded instructions within the measure region only; the
	// warm-up phase is accounted separately in WarmupInstr so
	// DetailReduction does not count it twice.
	rep.FastForwardInstructions = sp.TotalInstr() - sp.DetailedInstr()
	ipc := make([]float64, len(windows))
	l1i := make([]float64, len(windows))
	btb := make([]float64, len(windows))
	for i := range windows {
		ipc[i] = windows[i].IPC()
		l1i[i] = windows[i].L1IMPKI()
		btb[i] = windows[i].BTBMPKI()
	}
	rep.IPC = stats.NewEstimate(ipc)
	rep.L1IMPKI = stats.NewEstimate(l1i)
	rep.BTBMPKI = stats.NewEstimate(btb)
	return rep
}

// RunSampledSystem executes sampled measurement on a freshly assembled
// system: warm-up by snapshot restore when snapStore holds snapKey,
// otherwise by functional fast-forward (capturing and storing the
// snapshot for the next run sharing the key), then windowed measurement
// per sp. Pass a nil snapStore or empty snapKey to skip snapshotting.
// The returned aggregate is the in-order sum of window deltas — the
// sampled estimate of what exact mode's measure region would report.
func RunSampledSystem(ctx context.Context, sys *core.System, warmup uint64, sp core.Sampling, snapStore *store.Store, snapKey string) (*frontend.Stats, []*frontend.Stats, *SampledReport, error) {
	if err := sp.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if !sp.Enabled() {
		return nil, nil, nil, fmt.Errorf("experiments: RunSampledSystem with zero Sampling")
	}
	useSnap := snapStore != nil && snapKey != "" && warmup > 0 && sys.SnapshotSupported()
	reused := false
	if useSnap {
		if payload, hit := snapStore.Get(snapKey); hit {
			// A restore error is fatal, not a miss: restore mutates the
			// system in place, so falling back to live warm-up after a
			// partial restore would measure a chimera.
			if err := sys.RestoreWarmSnapshot(ctx, payload); err != nil {
				return nil, nil, nil, err
			}
			reused = true
		}
	}
	if !reused && warmup > 0 {
		if err := sys.FastForward(ctx, warmup); err != nil {
			return nil, nil, nil, err
		}
		if useSnap {
			if payload, err := sys.WarmSnapshot(); err == nil {
				snapStore.Put(snapKey, payload) // best-effort: warm-up is in hand
			}
		}
	}
	agg, windows, perCore, cov, err := sys.RunSampled(ctx, sp)
	if err != nil {
		return nil, nil, nil, err
	}
	return agg, perCore, buildSampledReport(sp, warmup, reused, windows, cov), nil
}

// SampledComparison is one cell run both ways: the exact measurement
// (the golden anchor) against the sampled estimate of the same region,
// with relative errors and the detailed-instruction reduction factor.
type SampledComparison struct {
	Mix    string
	Design string

	Exact   *frontend.Stats
	Sampled *frontend.Stats
	Report  *SampledReport

	IPCErrPct float64
	L1IErrPct float64
	BTBErrPct float64
}

// errPct is the relative error in percent, degrading gracefully at an
// exact value of zero (both zero agree perfectly; otherwise the error is
// unbounded and pinned at 100).
func errPct(sampled, exact float64) float64 {
	if exact == 0 {
		if sampled == 0 {
			return 0
		}
		return 100
	}
	d := (sampled - exact) / exact * 100
	if d < 0 {
		d = -d
	}
	return d
}

// CompareSampled runs one (mix, design, options) cell exact and sampled
// on two independently assembled systems and reports the sampling error.
// This is the primitive behind the tolerance tests and the sample-smoke
// CI gate.
func CompareSampled(ctx context.Context, mix []*synth.Workload, dp core.DesignPoint, opt core.Options, warmup, measure uint64, sp core.Sampling) (*SampledComparison, error) {
	exactSys, err := core.NewMixSystem(mix, dp, opt)
	if err != nil {
		return nil, err
	}
	exact, err := exactSys.RunCtx(ctx, warmup, measure)
	exactSys.Close()
	if err != nil {
		return nil, err
	}
	sampSys, err := core.NewMixSystem(mix, dp, opt)
	if err != nil {
		return nil, err
	}
	defer sampSys.Close()
	sampled, _, rep, err := RunSampledSystem(ctx, sampSys, warmup, sp, nil, "")
	if err != nil {
		return nil, err
	}
	// MPKI errors judge the estimate sampled mode would report: the exact
	// full-coverage ratio for prefetcherless designs, the window aggregate
	// otherwise.
	return &SampledComparison{
		Mix:       MixName(mix),
		Design:    dp.String(),
		Exact:     exact,
		Sampled:   sampled,
		Report:    rep,
		IPCErrPct: errPct(sampled.IPC(), exact.IPC()),
		L1IErrPct: errPct(rep.BestL1IMPKI(sampled), exact.L1IMPKI()),
		BTBErrPct: errPct(rep.BestBTBMPKI(sampled), exact.BTBMPKI()),
	}, nil
}

// SampledTable formats sampled estimates with their confidence
// intervals next to the exact anchors — the "reported alongside exact
// numbers" artifact of sampled mode.
func SampledTable(comps []*SampledComparison) *stats.Table {
	t := stats.NewTable("Sampled vs exact (mean ±95% CI)",
		"Mix", "Design", "exactIPC", "sampledIPC", "errIPC%", "exactL1I", "sampledL1I", "errL1I%", "detailx")
	for _, c := range comps {
		t.Row(c.Mix, c.Design,
			fmt.Sprintf("%.3f", c.Exact.IPC()),
			c.Report.IPC.String(),
			fmt.Sprintf("%.2f", c.IPCErrPct),
			fmt.Sprintf("%.2f", c.Exact.L1IMPKI()),
			c.Report.L1IMPKI.String(),
			fmt.Sprintf("%.2f", c.L1IErrPct),
			fmt.Sprintf("%.1f", c.Report.DetailReduction()))
	}
	return t
}
