package experiments

import (
	"context"

	"confluence/internal/core"
	"confluence/internal/frontend"
	"confluence/internal/parallel"
	"confluence/internal/synth"
)

// Cell is one point of the evaluation grid: a workload mix simulated on a
// design point under specific options (a homogeneous cell is a one-slot
// mix). Cells are self-contained and individually seeded, so any subset can
// run concurrently.
type Cell struct {
	Mix    []*synth.Workload
	Design core.DesignPoint
	Opt    core.Options
}

// Plan collects the cells a figure or table needs, deduplicating them
// through the runner's cache key, and executes them on a bounded worker
// pool. Execution only warms the runner's memo cache; callers then read
// results back (Runner.Run / Plan.Stats) in whatever canonical order their
// output demands, so tables never depend on completion order.
type Plan struct {
	r     *Runner
	cells []Cell
	seen  map[string]struct{}
}

// NewPlan starts an empty plan on the runner.
func (r *Runner) NewPlan() *Plan {
	return &Plan{r: r, seen: make(map[string]struct{})}
}

// Grid returns a plan covering the full cross product of the runner's
// workloads and the given design points at default options — the common
// shape of the paper's figures.
func (r *Runner) Grid(designs []core.DesignPoint) *Plan {
	p := r.NewPlan()
	for _, w := range r.Workloads {
		for _, dp := range designs {
			p.AddDefault(w, dp)
		}
	}
	return p
}

// Add schedules one homogeneous cell, dropping duplicates of cells already
// planned.
func (p *Plan) Add(w *synth.Workload, dp core.DesignPoint, opt core.Options) {
	p.AddMix([]*synth.Workload{w}, dp, opt)
}

// AddMix schedules one consolidated cell (core i runs mix[i mod len(mix)]),
// dropping duplicates of cells already planned.
func (p *Plan) AddMix(mix []*synth.Workload, dp core.DesignPoint, opt core.Options) {
	key := cellKey(mix, dp, opt)
	if _, dup := p.seen[key]; dup {
		return
	}
	p.seen[key] = struct{}{}
	p.cells = append(p.cells, Cell{Mix: mix, Design: dp, Opt: opt})
}

// AddDefault schedules a cell with the runner's default options.
func (p *Plan) AddDefault(w *synth.Workload, dp core.DesignPoint) {
	p.Add(w, dp, p.r.options())
}

// Len returns the number of distinct cells planned.
func (p *Plan) Len() int { return len(p.cells) }

// Execute simulates every planned cell on at most Runner.Workers
// goroutines, populating the runner's memo cache. The first simulation
// error cancels the remaining cells and is returned.
func (p *Plan) Execute(ctx context.Context) error {
	return parallel.ForEach(ctx, p.r.workers(), len(p.cells),
		func(ctx context.Context, i int) error {
			c := p.cells[i]
			_, _, err := p.r.RunMixCtx(ctx, c.Mix, c.Design, c.Opt)
			return err
		})
}

// Stats executes the plan and returns results in cell insertion order —
// the deterministic, completion-order-independent view of the grid.
func (p *Plan) Stats(ctx context.Context) ([]*frontend.Stats, error) {
	if err := p.Execute(ctx); err != nil {
		return nil, err
	}
	out := make([]*frontend.Stats, len(p.cells))
	for i, c := range p.cells {
		st, _, err := p.r.RunMixCtx(ctx, c.Mix, c.Design, c.Opt)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}
