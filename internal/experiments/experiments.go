// Package experiments regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its modules). Each runner returns
// typed results plus a formatted table whose rows match what the paper
// reports; absolute values differ from the paper (our substrate is a
// synthetic-workload simulator), but the shapes — orderings, rough factors,
// crossovers — are the reproduction target (EXPERIMENTS.md tracks both).
package experiments

import (
	"fmt"
	"os"

	"confluence/internal/core"
	"confluence/internal/frontend"
	"confluence/internal/synth"
)

// Scale sets the simulation effort: CMP width and per-core warmup/measure
// instruction counts.
type Scale struct {
	Name    string
	Cores   int
	Warmup  uint64
	Measure uint64
}

// Predefined scales. Small keeps unit tests fast; Default balances fidelity
// and runtime for benches and the CLI; Paper approximates the paper's
// 16-core setup.
var (
	Small   = Scale{Name: "small", Cores: 4, Warmup: 800_000, Measure: 800_000}
	Default = Scale{Name: "default", Cores: 8, Warmup: 1_500_000, Measure: 1_500_000}
	Paper   = Scale{Name: "paper", Cores: 16, Warmup: 3_000_000, Measure: 3_000_000}
)

// ScaleByName returns a predefined scale.
func ScaleByName(name string) (Scale, bool) {
	for _, s := range []Scale{Small, Default, Paper} {
		if s.Name == name {
			return s, true
		}
	}
	return Scale{}, false
}

// ScaleFromEnv reads REPRO_SCALE (small|default|paper), defaulting to
// Default.
func ScaleFromEnv() Scale {
	if s, ok := ScaleByName(os.Getenv("REPRO_SCALE")); ok {
		return s
	}
	return Default
}

// Runner executes design points over the workload suite, caching results so
// figures that share runs (e.g. the Base1K baseline) pay for them once.
type Runner struct {
	Scale     Scale
	Workloads []*synth.Workload
	// Progress, if set, receives a line per completed run.
	Progress func(string)

	cache map[string]*frontend.Stats
}

// NewRunner builds the five-workload suite at the given scale.
func NewRunner(sc Scale) (*Runner, error) {
	r := &Runner{Scale: sc, cache: make(map[string]*frontend.Stats)}
	for _, prof := range synth.Profiles() {
		w, err := synth.Build(prof)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", prof.Name, err)
		}
		r.Workloads = append(r.Workloads, w)
	}
	return r, nil
}

// NewRunnerFor builds a runner over an explicit workload list (tests).
func NewRunnerFor(sc Scale, ws []*synth.Workload) *Runner {
	return &Runner{Scale: sc, Workloads: ws, cache: make(map[string]*frontend.Stats)}
}

func optKey(opt core.Options) string {
	return fmt.Sprintf("c%d-air%d.%d.%d-sw%d-la%d-priv%v",
		opt.Cores, opt.Air.Bundles, opt.Air.EntriesPerBundle, opt.Air.OverflowEntries,
		opt.SweepBTBEntries, opt.Shift.Lookahead, opt.HistoryPerCore)
}

// Run simulates one (workload, design point, options) cell, with caching.
func (r *Runner) Run(w *synth.Workload, dp core.DesignPoint, opt core.Options) (*frontend.Stats, error) {
	key := w.Prof.Name + "|" + dp.String() + "|" + optKey(opt)
	if st, ok := r.cache[key]; ok {
		return st, nil
	}
	sys, err := core.NewSystem(w, dp, opt)
	if err != nil {
		return nil, err
	}
	st := sys.Run(r.Scale.Warmup, r.Scale.Measure)
	r.cache[key] = st
	if r.Progress != nil {
		r.Progress(fmt.Sprintf("%-16s %-18s IPC=%.3f btbMPKI=%5.1f l1iMPKI=%5.1f",
			w.Prof.Name, dp, st.IPC(), st.BTBMPKI(), st.L1IMPKI()))
	}
	return st, nil
}

// options returns the default options at the runner's scale.
func (r *Runner) options() core.Options {
	opt := core.DefaultOptions()
	opt.Cores = r.Scale.Cores
	return opt
}

// RunDefault runs a design point with default options.
func (r *Runner) RunDefault(w *synth.Workload, dp core.DesignPoint) (*frontend.Stats, error) {
	return r.Run(w, dp, r.options())
}
