// Package experiments regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its modules). Each runner returns
// typed results plus a formatted table whose rows match what the paper
// reports; absolute values differ from the paper (our substrate is a
// synthetic-workload simulator), but the shapes — orderings, rough factors,
// crossovers — are the reproduction target (EXPERIMENTS.md tracks both).
//
// The evaluation grid is embarrassingly parallel: every (workload, design
// point, options) cell is a self-contained, individually seeded simulation.
// Figures collect their cells into a Plan, which executes them on a bounded
// worker pool and memoizes results by cell key; tables are then assembled
// from the memo in canonical cell order, so output is bit-identical
// regardless of worker count.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"confluence/internal/core"
	"confluence/internal/frontend"
	"confluence/internal/parallel"
	"confluence/internal/store"
	"confluence/internal/synth"
)

// Scale sets the simulation effort: CMP width and per-core warmup/measure
// instruction counts.
type Scale struct {
	Name    string
	Cores   int
	Warmup  uint64
	Measure uint64
}

// Predefined scales. Small keeps unit tests fast; Default balances fidelity
// and runtime for benches and the CLI; Paper approximates the paper's
// 16-core setup.
var (
	Small   = Scale{Name: "small", Cores: 4, Warmup: 800_000, Measure: 800_000}
	Default = Scale{Name: "default", Cores: 8, Warmup: 1_500_000, Measure: 1_500_000}
	Paper   = Scale{Name: "paper", Cores: 16, Warmup: 3_000_000, Measure: 3_000_000}
)

// ScaleByName returns a predefined scale.
func ScaleByName(name string) (Scale, bool) {
	for _, s := range []Scale{Small, Default, Paper} {
		if s.Name == name {
			return s, true
		}
	}
	return Scale{}, false
}

// ScaleFromEnv reads REPRO_SCALE (small|default|paper), defaulting to
// Default.
func ScaleFromEnv() Scale {
	if s, ok := ScaleByName(os.Getenv("REPRO_SCALE")); ok {
		return s
	}
	return Default
}

// Runner executes design points over the workload suite, caching results so
// figures that share runs (e.g. the Base1K baseline) pay for them once. A
// Runner is safe for concurrent use: the memo cache is singleflight per
// cell key and Progress callbacks are serialized, even when Workers is 1.
type Runner struct {
	Scale     Scale
	Workloads []*synth.Workload
	// Workers bounds concurrent simulations when a Plan executes. Zero
	// resolves through REPRO_WORKERS, then GOMAXPROCS (see parallel.Workers).
	Workers int
	// IntraWorkers enables bound-weave parallelism inside each simulation
	// (core.Options.IntraWorkers). The runner's goroutine budget is shared:
	// with IntraWorkers > 1 the grid fan-out shrinks to
	// max(1, Workers/IntraWorkers), so grid-level times in-run parallelism
	// stays bounded by the configured worker count.
	IntraWorkers int
	// EpochBlocks is the bound-weave epoch depth K forwarded to every cell
	// (core.Options.EpochBlocks); 0/1 is the exact mode.
	EpochBlocks int
	// Sampling, when enabled, runs every cell in SMARTS-style sampled
	// mode: warm-up by functional fast-forward (reusing durable warm
	// snapshots when Store is set), then windowed detailed measurement
	// per the plan (see core.Sampling). Sampled cells occupy their own
	// memo and store namespace — the zero value (exact mode) remains the
	// default and the golden anchor.
	Sampling core.Sampling
	// Store, if set, is the durable result store consulted before and
	// written after every simulation: a cell whose key (CellStoreKey —
	// workloads, design, options, instruction counts, ResultVersion) is
	// already stored returns the persisted result without simulating, which
	// is what makes an interrupted grid resumable across processes. Nil
	// keeps the in-memory memo cache as the only caching layer, exactly the
	// pre-store behavior. Cells the store cannot identify (an
	// Options.Sources override) bypass it silently.
	Store *store.Store
	// Progress, if set, receives a line per completed run. Calls are
	// serialized; the callback needs no locking of its own.
	Progress func(string)
	// OnProgress, if set, receives the structured form of the same
	// per-completed-run event (the wire format the serving layer streams
	// over SSE). Calls are serialized with Progress under one lock, and
	// when both callbacks are set each completed run reaches OnProgress
	// first, then Progress with the formatted line of the same event.
	OnProgress func(ProgressEvent)

	mu         sync.Mutex // guards cache
	cache      map[string]*cacheEntry
	progressMu sync.Mutex
}

// cacheEntry is a singleflight slot: the first goroutine to claim a cell
// key simulates it and closes done; later arrivals block on done and share
// the result.
type cacheEntry struct {
	done    chan struct{}
	stats   *frontend.Stats
	perCore []*frontend.Stats
	sampled *SampledReport // non-nil only for sampled cells
	err     error
}

// NewRunner builds the five-workload suite at the given scale, fanning
// workload generation out across the same bound the returned runner will
// simulate with (workers resolves like Runner.Workers; pass 0 for the
// REPRO_WORKERS/GOMAXPROCS default).
func NewRunner(sc Scale, workers int) (*Runner, error) {
	r := &Runner{Scale: sc, Workers: workers, cache: make(map[string]*cacheEntry)}
	profiles := synth.Profiles()
	ws := make([]*synth.Workload, len(profiles))
	err := parallel.ForEach(context.Background(), r.workers(), len(profiles),
		func(_ context.Context, i int) error {
			w, err := synth.Build(profiles[i])
			if err != nil {
				return fmt.Errorf("experiments: building %s: %w", profiles[i].Name, err)
			}
			ws[i] = w
			return nil
		})
	if err != nil {
		return nil, err
	}
	r.Workloads = ws
	return r, nil
}

// NewRunnerFor builds a runner over an explicit workload list (tests).
func NewRunnerFor(sc Scale, ws []*synth.Workload) *Runner {
	return &Runner{Scale: sc, Workloads: ws, cache: make(map[string]*cacheEntry)}
}

func optKey(opt core.Options) string {
	// IntraWorkers is deliberately absent: worker count cannot change
	// results (the determinism contract), so cells differing only in it
	// share a memo slot. EpochBlocks changes results for K>1 and is part of
	// the identity.
	return fmt.Sprintf("c%d-air%d.%d.%d-sw%d-la%d-priv%v-k%d",
		opt.Cores, opt.Air.Bundles, opt.Air.EntriesPerBundle, opt.Air.OverflowEntries,
		opt.SweepBTBEntries, opt.Shift.Lookahead, opt.HistoryPerCore, max(opt.EpochBlocks, 1))
}

// samplingMemoKey suffixes the memo key of a sampled cell so it never
// shares a slot with the exact run of the same configuration.
func samplingMemoKey(sp core.Sampling) string {
	if !sp.Enabled() {
		return ""
	}
	return fmt.Sprintf("|sampled:w%d-p%d-n%d-wu%d",
		sp.WindowInstr, sp.PeriodInstr, sp.Windows, sp.WindowWarmupInstr)
}

// MixName labels a workload mix: the single workload's name, or the slot
// names joined with "+" (the order is the core assignment, so it is part of
// the cell identity).
func MixName(mix []*synth.Workload) string {
	if len(mix) == 1 {
		return mix[0].Prof.Name
	}
	names := make([]string, len(mix))
	for i, w := range mix {
		names[i] = w.Prof.Name
	}
	return strings.Join(names, "+")
}

func cellKey(mix []*synth.Workload, dp core.DesignPoint, opt core.Options) string {
	key := MixName(mix) + "|" + dp.String() + "|" + optKey(opt)
	// A trace-replaying workload is a different cell than a live one with
	// the same profile name.
	for _, w := range mix {
		if w.TraceDir != "" {
			key += "|trace:" + w.TraceDir
		}
	}
	return key
}

// SplitWorkers resolves a goroutine budget shared between grid-level and
// in-run parallelism: workers (0 = REPRO_WORKERS, then GOMAXPROCS) divided
// by the per-simulation stepping workers, floor 1 — so grid fan-out times
// intra workers stays ≈ the budget. It is the single definition behind
// Runner.workers() and the CLIs' replay paths.
func SplitWorkers(workers, intraWorkers int) int {
	g := parallel.Workers(workers)
	if intraWorkers > 1 {
		g /= intraWorkers
		if g < 1 {
			g = 1
		}
	}
	return g
}

// workers resolves the runner's effective grid-level worker count (see
// SplitWorkers).
func (r *Runner) workers() int { return SplitWorkers(r.Workers, r.IntraWorkers) }

// Run simulates one (workload, design point, options) cell, with caching.
// It is shorthand for RunCtx with a background context.
func (r *Runner) Run(w *synth.Workload, dp core.DesignPoint, opt core.Options) (*frontend.Stats, error) {
	return r.RunCtx(context.Background(), w, dp, opt)
}

// RunCtx simulates one cell, memoizing by cell key. Concurrent calls for
// the same key simulate once and share the result (singleflight); a failed
// or cancelled computation is evicted so later calls can retry. A waiter
// whose own context is still live does not inherit a leader's cancellation
// — it retries the (evicted) key, so cancelling one plan never fails a
// concurrent plan sharing cells on the same runner.
func (r *Runner) RunCtx(ctx context.Context, w *synth.Workload, dp core.DesignPoint, opt core.Options) (*frontend.Stats, error) {
	st, _, err := r.RunMixCtx(ctx, []*synth.Workload{w}, dp, opt)
	return st, err
}

// RunMixCtx simulates one consolidated cell — core i of the CMP runs
// mix[i mod len(mix)] — returning the aggregate stats and each core's
// stats in core order. Memoization and singleflight behave exactly as in
// RunCtx; a single-workload mix shares its cache cell with the
// homogeneous RunCtx of the same workload.
func (r *Runner) RunMixCtx(ctx context.Context, mix []*synth.Workload, dp core.DesignPoint, opt core.Options) (*frontend.Stats, []*frontend.Stats, error) {
	st, perCore, _, err := r.RunMixSampledCtx(ctx, mix, dp, opt)
	return st, perCore, err
}

// RunMixSampledCtx is RunMixCtx additionally returning the cell's
// sampling report: non-nil exactly when the runner's Sampling is enabled
// (a stored sampled cell round-trips its report through the store
// entry). Exact runners get nil — there is nothing to report beyond the
// stats.
func (r *Runner) RunMixSampledCtx(ctx context.Context, mix []*synth.Workload, dp core.DesignPoint, opt core.Options) (*frontend.Stats, []*frontend.Stats, *SampledReport, error) {
	key := cellKey(mix, dp, opt) + samplingMemoKey(r.Sampling)
	for {
		r.mu.Lock()
		e, leader := r.cache[key]
		if !leader {
			e = &cacheEntry{done: make(chan struct{})}
			r.cache[key] = e
			r.mu.Unlock()
			e.stats, e.perCore, e.sampled, e.err = r.simulate(ctx, mix, dp, opt)
			if e.err != nil {
				r.mu.Lock()
				delete(r.cache, key)
				r.mu.Unlock()
			}
			close(e.done)
			return e.stats, e.perCore, e.sampled, e.err
		}
		r.mu.Unlock()
		select {
		case <-e.done:
			if isCancellation(e.err) && ctx.Err() == nil {
				continue // the leader was cancelled, we weren't: retry
			}
			return e.stats, e.perCore, e.sampled, e.err
		case <-ctx.Done():
			return nil, nil, nil, ctx.Err()
		}
	}
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ProgressEvent is the structured form of one completed simulation cell —
// the runner's Progress line with its fields still separate, so the
// serving layer can serialize it (SSE, JSON logs) without re-parsing
// formatted text.
type ProgressEvent struct {
	Mix     string  `json:"mix"`
	Design  string  `json:"design"`
	IPC     float64 `json:"ipc"`
	BTBMPKI float64 `json:"btb_mpki"`
	L1IMPKI float64 `json:"l1i_mpki"`
}

// String formats the event exactly as Runner.Progress lines always read.
func (e ProgressEvent) String() string {
	return fmt.Sprintf("%-16s %-18s IPC=%.3f btbMPKI=%5.1f l1iMPKI=%5.1f",
		e.Mix, e.Design, e.IPC, e.BTBMPKI, e.L1IMPKI)
}

// simulate runs one cell uncached by the memo, consulting the durable
// store on either side when one is configured: a store hit returns the
// persisted result (emitting the same progress event a live run would),
// and a completed run is written back before its progress line is emitted
// — so an observer that has seen a cell reported knows the cell is
// durable. Cancellation reaches a started cell mid-run: the epoch engine
// polls ctx at every epoch barrier.
func (r *Runner) simulate(ctx context.Context, mix []*synth.Workload, dp core.DesignPoint, opt core.Options) (*frontend.Stats, []*frontend.Stats, *SampledReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	var storeKey string
	haveKey := false
	if r.Store != nil {
		storeKey, haveKey = CellStoreKeySampled(r.Scale.Warmup, r.Scale.Measure, mix, "", dp, opt, r.Sampling)
		if haveKey {
			if payload, hit := r.Store.Get(storeKey); hit {
				if e, ok := DecodeStoreEntry(payload); ok {
					r.progress(func() ProgressEvent {
						return ProgressEvent{
							Mix: MixName(mix), Design: dp.String(),
							IPC: e.Stats.IPC(), BTBMPKI: e.Stats.BTBMPKI(), L1IMPKI: e.Stats.L1IMPKI(),
						}
					})
					return e.Stats, e.PerCore, e.Sampled, nil
				}
			}
		}
	}
	sys, err := core.NewMixSystem(mix, dp, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	defer sys.Close()
	var st *frontend.Stats
	var perCore []*frontend.Stats
	var sampled *SampledReport
	if r.Sampling.Enabled() {
		var snapKey string
		if r.Store != nil {
			snapKey, _ = SnapshotStoreKey(r.Scale.Warmup, mix, "", dp, opt)
		}
		st, perCore, sampled, err = RunSampledSystem(ctx, sys, r.Scale.Warmup, r.Sampling, r.Store, snapKey)
	} else {
		st, err = sys.RunCtx(ctx, r.Scale.Warmup, r.Scale.Measure)
		if err == nil {
			perCore = sys.PerCoreSnapshot()
		}
	}
	if err != nil {
		return nil, nil, nil, err
	}
	if haveKey {
		if payload, err := EncodeStoreEntry(StoreEntry{
			Stats: st, PerCore: perCore, Sampled: sampled,
			OverheadMM2: sys.OverheadMM2, RelativeArea: sys.RelativeArea,
		}); err == nil {
			r.Store.Put(storeKey, payload) // best-effort: the result is in hand
		}
	}
	r.progress(func() ProgressEvent {
		return ProgressEvent{
			Mix: MixName(mix), Design: dp.String(),
			IPC: st.IPC(), BTBMPKI: st.BTBMPKI(), L1IMPKI: st.L1IMPKI(),
		}
	})
	return st, perCore, sampled, nil
}

// progress emits one serialized progress event to whichever callbacks are
// installed; the event is only built when at least one is.
func (r *Runner) progress(build func() ProgressEvent) {
	if r.Progress == nil && r.OnProgress == nil {
		return
	}
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	e := build()
	if r.OnProgress != nil {
		r.OnProgress(e)
	}
	if r.Progress != nil {
		r.Progress(e.String())
	}
}

// options returns the default options at the runner's scale.
func (r *Runner) options() core.Options {
	opt := core.DefaultOptions()
	opt.Cores = r.Scale.Cores
	opt.IntraWorkers = r.IntraWorkers
	opt.EpochBlocks = r.EpochBlocks
	return opt
}

// RunDefault runs a design point with default options.
func (r *Runner) RunDefault(w *synth.Workload, dp core.DesignPoint) (*frontend.Stats, error) {
	return r.Run(w, dp, r.options())
}
