package experiments

import (
	"context"
	"sync"
	"testing"

	"confluence/internal/core"
	"confluence/internal/frontend"
	"confluence/internal/synth"
)

// detWorkload builds the small-but-thrashing workload used by the
// determinism tests (same shape as tinyRunner's).
func detWorkload(t *testing.T) *synth.Workload {
	t.Helper()
	p := synth.OLTPDB2()
	p.Functions = 1100
	p.RequestTypes = 8
	p.Concurrency = 8
	p.Seed = 12
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// detWorkloadB is a second, genuinely different program for heterogeneous
// mix cells.
func detWorkloadB(t *testing.T) *synth.Workload {
	t.Helper()
	p := synth.WebFrontend()
	p.Functions = 900
	p.RequestTypes = 6
	p.Concurrency = 8
	p.Seed = 34
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

var detDesigns = []core.DesignPoint{
	core.Base1K, core.FDP1K, core.TwoLevelSHIFT, core.Confluence, core.Ideal,
}

// TestParallelDeterminism is the scheduler's core contract: every cell of a
// grid must produce bit-identical frontend.Stats whether it ran on one
// worker or eight. Runs under -race in CI, which also exercises the
// singleflight cache and serialized progress for data races.
func TestParallelDeterminism(t *testing.T) {
	sc := Scale{Name: "tiny", Cores: 2, Warmup: 100_000, Measure: 150_000}
	wB := detWorkloadB(t)
	runGrid := func(workers, intraWorkers int) []*frontend.Stats {
		r := NewRunnerFor(sc, []*synth.Workload{detWorkload(t)})
		r.Workers = workers
		r.IntraWorkers = intraWorkers
		r.Progress = func(string) {} // exercise the serialized callback path
		plan := r.Grid(detDesigns)
		// A non-default-options cell too, so optKey dispatch is covered.
		plan.Add(r.Workloads[0], core.SweepBTB, r.sweepOptions(4096))
		// Heterogeneous mix cells: consolidation must be just as
		// worker-count-independent, shared history and private alike.
		mix := []*synth.Workload{r.Workloads[0], wB}
		plan.AddMix(mix, core.Confluence, r.options())
		priv := r.options()
		priv.HistoryPerCore = true
		plan.AddMix(mix, core.Confluence, priv)
		stats, err := plan.Stats(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	serial := runGrid(1, 0)
	for _, mode := range []struct {
		name                  string
		workers, intraWorkers int
	}{
		// Grid-level fan-out alone, in-run bound-weave workers alone, and
		// both at once: every combination must reproduce the serial grid
		// bit-exactly (the runner splits its goroutine budget between the
		// two levels, so 8×2 runs ~4 concurrent cells of 2 stepping workers).
		{"Workers=8", 8, 0},
		{"IntraWorkers=2", 1, 2},
		{"Workers=8+IntraWorkers=2", 8, 2},
	} {
		got := runGrid(mode.workers, mode.intraWorkers)
		if len(serial) != len(got) {
			t.Fatalf("%s: cell counts differ: %d vs %d", mode.name, len(serial), len(got))
		}
		for i := range serial {
			if *serial[i] != *got[i] {
				t.Errorf("cell %d diverged between Workers=1 and %s:\n  %+v\nvs\n  %+v",
					i, mode.name, *serial[i], *got[i])
			}
		}
	}
}

// TestWorkerBudgetSplit pins the grid/in-run goroutine budget arithmetic:
// IntraWorkers divides the grid fan-out so total concurrency stays bounded.
func TestWorkerBudgetSplit(t *testing.T) {
	r := NewRunnerFor(Small, nil)
	r.Workers = 8
	if got := r.workers(); got != 8 {
		t.Errorf("no intra: grid workers = %d, want 8", got)
	}
	r.IntraWorkers = 2
	if got := r.workers(); got != 4 {
		t.Errorf("intra=2: grid workers = %d, want 4", got)
	}
	r.IntraWorkers = 16
	if got := r.workers(); got != 1 {
		t.Errorf("intra=16: grid workers = %d, want 1 (floor)", got)
	}
}

// TestFigureDeterminismAcrossWorkers pins a full figure pipeline (plan,
// execute, assemble) to worker-count independence, including row order.
func TestFigureDeterminismAcrossWorkers(t *testing.T) {
	sc := Scale{Name: "tiny", Cores: 2, Warmup: 100_000, Measure: 150_000}
	run := func(workers int) []Fig1Row {
		r := NewRunnerFor(sc, []*synth.Workload{detWorkload(t)})
		r.Workers = workers
		rows, err := r.Figure1(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(1), run(8)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Workload != b[i].Workload {
			t.Fatalf("row %d workload order diverged: %q vs %q", i, a[i].Workload, b[i].Workload)
		}
		for j := range a[i].MPKI {
			if a[i].MPKI[j] != b[i].MPKI[j] {
				t.Errorf("row %d col %d: %v vs %v", i, j, a[i].MPKI[j], b[i].MPKI[j])
			}
		}
	}
}

// TestSingleflightSharesOneSimulation hammers one cell key from many
// goroutines: all callers must get the same *Stats pointer (one
// simulation), with no races on the cache.
func TestSingleflightSharesOneSimulation(t *testing.T) {
	r := tinyRunner(t)
	w := r.Workloads[0]
	const callers = 16
	got := make([]*frontend.Stats, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := r.RunDefault(w, core.Base1K)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = st
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different result pointer: duplicate simulation", i)
		}
	}
}

func TestPlanDedupesCells(t *testing.T) {
	r := tinyRunner(t)
	w := r.Workloads[0]
	plan := r.NewPlan()
	plan.AddDefault(w, core.Base1K)
	plan.AddDefault(w, core.Base1K)
	plan.AddDefault(w, core.Confluence)
	plan.Add(w, core.SweepBTB, r.sweepOptions(2048))
	plan.Add(w, core.SweepBTB, r.sweepOptions(2048))
	plan.Add(w, core.SweepBTB, r.sweepOptions(4096))
	if plan.Len() != 4 {
		t.Errorf("plan has %d cells, want 4 after dedupe", plan.Len())
	}
}

func TestPlanExecuteCancelled(t *testing.T) {
	r := tinyRunner(t)
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if err := r.Grid(detDesigns).Execute(ctx); err == nil {
		t.Error("cancelled plan executed without error")
	}
	// The runner stays usable: a fresh context must succeed (failed cells
	// were evicted, not poisoned).
	if _, err := r.RunDefault(r.Workloads[0], core.Base1K); err != nil {
		t.Errorf("runner poisoned after cancellation: %v", err)
	}
}

func TestProgressSerializedUnderConcurrency(t *testing.T) {
	r := tinyRunner(t)
	r.Workers = 8
	var mu sync.Mutex
	var lines int
	r.Progress = func(string) {
		// The callback contract says calls are serialized; the mutex makes
		// any violation visible to the race detector as well.
		mu.Lock()
		lines++
		mu.Unlock()
	}
	if err := r.Grid(detDesigns[:3]).Execute(t.Context()); err != nil {
		t.Fatal(err)
	}
	if lines != 3 {
		t.Errorf("progress reported %d lines, want 3", lines)
	}
}

// TestCancellationDoesNotPoisonOtherCallers pins the reviewer-facing
// singleflight contract: one caller's cancellation must never surface as
// an error to a caller whose own context is live, whatever the
// interleaving (waiter retries the evicted key; fresh callers re-simulate).
func TestCancellationDoesNotPoisonOtherCallers(t *testing.T) {
	r := tinyRunner(t)
	w := r.Workloads[0]

	cancelled, cancel := context.WithCancel(t.Context())
	cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Leader racing with a dead context: fails with ctx.Err and evicts.
		_, _ = r.RunCtx(cancelled, w, core.Base1K, r.options())
	}()
	go func() {
		defer wg.Done()
		// Live caller on the same key: must always succeed, whether it
		// became leader itself, waited out the cancelled leader and
		// retried, or found a clean cache entry.
		if _, err := r.RunDefault(w, core.Base1K); err != nil {
			t.Errorf("live caller inherited cancellation: %v", err)
		}
	}()
	wg.Wait()

	if _, err := r.RunDefault(w, core.Base1K); err != nil {
		t.Errorf("runner poisoned after cancellation: %v", err)
	}
}
