package experiments

import (
	"context"
	"fmt"

	"confluence/internal/airbtb"
	"confluence/internal/core"
	"confluence/internal/stats"
	"confluence/internal/synth"
)

// Every figure follows the same two-phase shape: collect all needed cells
// into a Plan (baselines included), execute the plan across the worker
// pool, then assemble rows in canonical order from the memo cache — so row
// and column order never depend on which worker finished first.

// Figure1Sizes are the BTB capacities swept by the paper's Figure 1.
var Figure1Sizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}

// Fig1Row is one workload's BTB MPKI curve.
type Fig1Row struct {
	Workload string
	MPKI     []float64 // parallel to Figure1Sizes
}

// sweepOptions returns default options with the conventional BTB sized to
// entries (Figure 1 / Figure 9's 16K reference point).
func (r *Runner) sweepOptions(entries int) core.Options {
	opt := r.options()
	opt.SweepBTBEntries = entries
	return opt
}

// Figure1 reproduces "BTB MPKI as a function of BTB capacity": a
// conventional BTB swept from 1K to 32K entries, no prefetching. The
// paper's shape: most workloads flatten by 16K entries; OLTP-Oracle still
// gains at 32K.
func (r *Runner) Figure1(ctx context.Context) ([]Fig1Row, error) {
	plan := r.NewPlan()
	for _, w := range r.Workloads {
		for _, e := range Figure1Sizes {
			plan.Add(w, core.SweepBTB, r.sweepOptions(e))
		}
	}
	if err := plan.Execute(ctx); err != nil {
		return nil, err
	}
	var rows []Fig1Row
	for _, w := range r.Workloads {
		row := Fig1Row{Workload: w.Prof.Name}
		for _, e := range Figure1Sizes {
			st, _, rep, err := r.RunMixSampledCtx(ctx, []*synth.Workload{w}, core.SweepBTB, r.sweepOptions(e))
			if err != nil {
				return nil, err
			}
			mpki := st.BTBMPKI()
			if rep != nil {
				// Sweep BTBs have no prefetcher, so a sampled cell's
				// full-coverage ratio is exact — the figure loses nothing.
				mpki = rep.BestBTBMPKI(st)
			}
			row.MPKI = append(row.MPKI, mpki)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure1Table formats Figure1 results.
func Figure1Table(rows []Fig1Row) *stats.Table {
	t := stats.NewTable("Figure 1: BTB MPKI vs BTB capacity (entries)",
		"Workload", "1K", "2K", "4K", "8K", "16K", "32K")
	for _, r := range rows {
		cells := []any{r.Workload}
		for _, m := range r.MPKI {
			cells = append(cells, m)
		}
		t.Row(cells...)
	}
	avg := []any{"Average"}
	for i := range Figure1Sizes {
		var col []float64
		for _, r := range rows {
			col = append(col, r.MPKI[i])
		}
		avg = append(avg, stats.Mean(col))
	}
	t.Row(avg...)
	return t
}

// Figure2Designs are the conventional frontends of the paper's Figure 2.
var Figure2Designs = []core.DesignPoint{
	core.Base1K, core.FDP1K, core.PhantomFDP, core.TwoLevelFDP,
	core.TwoLevelSHIFT, core.Ideal,
}

// Figure6Designs add Confluence (the paper's Figure 6 = Figure 2 + Confluence).
var Figure6Designs = []core.DesignPoint{
	core.Base1K, core.FDP1K, core.PhantomFDP, core.TwoLevelFDP,
	core.TwoLevelSHIFT, core.Confluence, core.Ideal,
}

// PerfAreaPoint is one design's position on the performance/area plane,
// normalized to the Base1K core (paper Figs 2 and 6).
type PerfAreaPoint struct {
	Design      core.DesignPoint
	RelPerf     float64 // geomean speedup over Base1K across workloads
	RelArea     float64
	PerWorkload map[string]float64 // speedup per workload
	FracOfIdeal float64            // share of Ideal's improvement delivered
}

// perfArea runs a design list and computes normalized points.
func (r *Runner) perfArea(ctx context.Context, designs []core.DesignPoint) ([]PerfAreaPoint, error) {
	plan := r.Grid(append([]core.DesignPoint{core.Base1K}, designs...))
	if err := plan.Execute(ctx); err != nil {
		return nil, err
	}
	base := make(map[string]float64)
	for _, w := range r.Workloads {
		st, err := r.RunCtx(ctx, w, core.Base1K, r.options())
		if err != nil {
			return nil, err
		}
		base[w.Prof.Name] = st.IPC()
	}
	var points []PerfAreaPoint
	for _, dp := range designs {
		p := PerfAreaPoint{Design: dp, PerWorkload: make(map[string]float64)}
		var speedups []float64
		for _, w := range r.Workloads {
			st, err := r.RunCtx(ctx, w, dp, r.options())
			if err != nil {
				return nil, err
			}
			s := st.IPC() / base[w.Prof.Name]
			p.PerWorkload[w.Prof.Name] = s
			speedups = append(speedups, s)
		}
		p.RelPerf = stats.Geomean(speedups)
		sys, err := core.NewSystem(r.Workloads[0], dp, r.options())
		if err != nil {
			return nil, err
		}
		p.RelArea = sys.RelativeArea
		points = append(points, p)
	}
	// Fraction of Ideal's improvement.
	var ideal float64
	for _, p := range points {
		if p.Design == core.Ideal {
			ideal = p.RelPerf - 1
		}
	}
	for i := range points {
		if ideal > 0 {
			points[i].FracOfIdeal = (points[i].RelPerf - 1) / ideal
		}
	}
	return points, nil
}

// Figure2 reproduces "relative performance & area overhead of conventional
// instruction-supply mechanisms".
func (r *Runner) Figure2(ctx context.Context) ([]PerfAreaPoint, error) {
	return r.perfArea(ctx, Figure2Designs)
}

// Figure6 reproduces Figure 2 plus Confluence: the paper's headline result
// (Confluence ≈ 85% of Ideal's improvement at ~1% area overhead, vs
// 2LevelBTB+SHIFT at 62% with ~8%).
func (r *Runner) Figure6(ctx context.Context) ([]PerfAreaPoint, error) {
	return r.perfArea(ctx, Figure6Designs)
}

// PerfAreaTable formats Figure 2/6 results.
func PerfAreaTable(title string, points []PerfAreaPoint) *stats.Table {
	t := stats.NewTable(title, "Design", "RelPerf", "RelArea", "FracOfIdeal")
	for _, p := range points {
		t.Row(p.Design.String(), p.RelPerf, fmt.Sprintf("%.4f", p.RelArea), p.FracOfIdeal)
	}
	return t
}

// Figure7Designs are the SHIFT-coupled BTB designs of the paper's Figure 7,
// normalized to Base1K+SHIFT.
var Figure7Designs = []core.DesignPoint{
	core.PhantomSHIFT, core.TwoLevelSHIFT, core.Confluence, core.IdealBTBSHIFT,
}

// Fig7Row is one workload's speedups.
type Fig7Row struct {
	Workload string
	Speedup  map[core.DesignPoint]float64
}

// Figure7 reproduces "speedup of various BTB designs over 1K-entry
// conventional BTB when coupled with SHIFT": the paper's shape has
// PhantomBTB lowest, 2LevelBTB at ~51% of IdealBTB's speedup (stalled by L2
// bubbles despite matching hit rate), and Confluence at ~90% of IdealBTB.
func (r *Runner) Figure7(ctx context.Context) ([]Fig7Row, error) {
	plan := r.Grid(append([]core.DesignPoint{core.Base1KSHIFT}, Figure7Designs...))
	if err := plan.Execute(ctx); err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, w := range r.Workloads {
		base, err := r.RunCtx(ctx, w, core.Base1KSHIFT, r.options())
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Workload: w.Prof.Name, Speedup: make(map[core.DesignPoint]float64)}
		for _, dp := range Figure7Designs {
			st, err := r.RunCtx(ctx, w, dp, r.options())
			if err != nil {
				return nil, err
			}
			row.Speedup[dp] = st.IPC() / base.IPC()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure7Table formats Figure 7 results.
func Figure7Table(rows []Fig7Row) *stats.Table {
	t := stats.NewTable("Figure 7: speedup over Base1K+SHIFT",
		"Workload", "PhantomBTB+SHIFT", "2LevelBTB+SHIFT", "Confluence", "IdealBTB+SHIFT")
	add := func(name string, get func(core.DesignPoint) float64) {
		t.Row(name, get(core.PhantomSHIFT), get(core.TwoLevelSHIFT),
			get(core.Confluence), get(core.IdealBTBSHIFT))
	}
	sums := make(map[core.DesignPoint][]float64)
	for _, r := range rows {
		add(r.Workload, func(dp core.DesignPoint) float64 {
			sums[dp] = append(sums[dp], r.Speedup[dp])
			return r.Speedup[dp]
		})
	}
	add("Geomean", func(dp core.DesignPoint) float64 { return stats.Geomean(sums[dp]) })
	return t
}

// Fig8Row decomposes AirBTB's miss coverage over Base1K into the paper's
// four cumulative mechanisms (Figure 8): Capacity (block-organization's
// denser storage), Spatial Locality (eager whole-block insertion on demand
// fills), Prefetching (SHIFT-driven fills feed the BTB), Block-Based
// Organization (bundles synchronized with the L1-I).
type Fig8Row struct {
	Workload string
	Capacity float64
	Spatial  float64
	Prefetch float64
	BlockOrg float64
	Total    float64
}

// Figure8 reproduces the AirBTB benefit breakdown.
func (r *Runner) Figure8(ctx context.Context) ([]Fig8Row, error) {
	steps := []core.DesignPoint{core.AirCapacity, core.AirSpatial, core.AirPrefetch, core.Confluence}
	plan := r.Grid(append([]core.DesignPoint{core.Base1K}, steps...))
	if err := plan.Execute(ctx); err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, w := range r.Workloads {
		base, err := r.RunCtx(ctx, w, core.Base1K, r.options())
		if err != nil {
			return nil, err
		}
		var cov [4]float64
		for i, dp := range steps {
			st, err := r.RunCtx(ctx, w, dp, r.options())
			if err != nil {
				return nil, err
			}
			cov[i] = stats.Coverage(base.BTBMPKI(), st.BTBMPKI())
		}
		rows = append(rows, Fig8Row{
			Workload: w.Prof.Name,
			Capacity: cov[0],
			Spatial:  cov[1] - cov[0],
			Prefetch: cov[2] - cov[1],
			BlockOrg: cov[3] - cov[2],
			Total:    cov[3],
		})
	}
	return rows, nil
}

// Figure8Table formats Figure 8 results.
func Figure8Table(rows []Fig8Row) *stats.Table {
	t := stats.NewTable("Figure 8: AirBTB miss-coverage breakdown over Base1K (%)",
		"Workload", "Capacity", "+SpatialLocality", "+Prefetching", "+BlockBasedOrg", "Total")
	var a, b, c, d, e []float64
	for _, r := range rows {
		t.Row(r.Workload, r.Capacity, r.Spatial, r.Prefetch, r.BlockOrg, r.Total)
		a, b, c, d, e = append(a, r.Capacity), append(b, r.Spatial), append(c, r.Prefetch), append(d, r.BlockOrg), append(e, r.Total)
	}
	t.Row("Average", stats.Mean(a), stats.Mean(b), stats.Mean(c), stats.Mean(d), stats.Mean(e))
	return t
}

// Fig9Row compares BTB miss coverage over Base1K (Figure 9): PhantomBTB
// (61% in the paper), AirBTB within Confluence (93%), and a 16K-entry
// conventional BTB (95%).
type Fig9Row struct {
	Workload string
	Phantom  float64
	AirBTB   float64
	Conv16K  float64
}

// Figure9 reproduces the coverage comparison.
func (r *Runner) Figure9(ctx context.Context) ([]Fig9Row, error) {
	plan := r.Grid([]core.DesignPoint{core.Base1K, core.PhantomFDP, core.Confluence})
	for _, w := range r.Workloads {
		plan.Add(w, core.SweepBTB, r.sweepOptions(16<<10))
	}
	if err := plan.Execute(ctx); err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, w := range r.Workloads {
		base, err := r.RunCtx(ctx, w, core.Base1K, r.options())
		if err != nil {
			return nil, err
		}
		phantom, err := r.RunCtx(ctx, w, core.PhantomFDP, r.options())
		if err != nil {
			return nil, err
		}
		air, err := r.RunCtx(ctx, w, core.Confluence, r.options())
		if err != nil {
			return nil, err
		}
		conv, err := r.RunCtx(ctx, w, core.SweepBTB, r.sweepOptions(16<<10))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{
			Workload: w.Prof.Name,
			Phantom:  stats.Coverage(base.BTBMPKI(), phantom.BTBMPKI()),
			AirBTB:   stats.Coverage(base.BTBMPKI(), air.BTBMPKI()),
			Conv16K:  stats.Coverage(base.BTBMPKI(), conv.BTBMPKI()),
		})
	}
	return rows, nil
}

// Figure9Table formats Figure 9 results.
func Figure9Table(rows []Fig9Row) *stats.Table {
	t := stats.NewTable("Figure 9: BTB misses eliminated over Base1K (%)",
		"Workload", "PhantomBTB", "AirBTB", "16K BTB")
	var a, b, c []float64
	for _, r := range rows {
		t.Row(r.Workload, r.Phantom, r.AirBTB, r.Conv16K)
		a, b, c = append(a, r.Phantom), append(b, r.AirBTB), append(c, r.Conv16K)
	}
	t.Row("Average", stats.Mean(a), stats.Mean(b), stats.Mean(c))
	return t
}

// Figure10Configs are the AirBTB sensitivity points (bundle entries B,
// overflow buffer OB).
var Figure10Configs = []airbtb.Config{
	{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 0},
	{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 32},
	{Bundles: 512, EntriesPerBundle: 4, OverflowEntries: 0},
	{Bundles: 512, EntriesPerBundle: 4, OverflowEntries: 32},
}

// airOptions returns default options with the AirBTB geometry replaced.
func (r *Runner) airOptions(ac airbtb.Config) core.Options {
	opt := r.options()
	opt.Air = ac
	return opt
}

// Figure10 reproduces the AirBTB design-parameter sensitivity: without an
// overflow buffer the 3-entry bundle configuration can be *worse* than the
// 1K baseline on some workloads (negative coverage), and B:3/OB:32 is the
// chosen design.
func (r *Runner) Figure10(ctx context.Context) ([]Fig10Row, error) {
	plan := r.Grid([]core.DesignPoint{core.Base1K})
	for _, w := range r.Workloads {
		for _, ac := range Figure10Configs {
			plan.Add(w, core.Confluence, r.airOptions(ac))
		}
	}
	if err := plan.Execute(ctx); err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, w := range r.Workloads {
		base, err := r.RunCtx(ctx, w, core.Base1K, r.options())
		if err != nil {
			return nil, err
		}
		row := Fig10Row{Workload: w.Prof.Name}
		for _, ac := range Figure10Configs {
			st, err := r.RunCtx(ctx, w, core.Confluence, r.airOptions(ac))
			if err != nil {
				return nil, err
			}
			row.Coverage = append(row.Coverage, stats.Coverage(base.BTBMPKI(), st.BTBMPKI()))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10Row is one workload's coverage per AirBTB configuration.
type Fig10Row struct {
	Workload string
	Coverage []float64 // parallel to Figure10Configs
}

// Figure10Table formats Figure 10 results.
func Figure10Table(rows []Fig10Row) *stats.Table {
	t := stats.NewTable("Figure 10: AirBTB sensitivity (coverage %, B=bundle entries, OB=overflow)",
		"Workload", "B:3,OB:0", "B:3,OB:32", "B:4,OB:0", "B:4,OB:32")
	for _, r := range rows {
		t.Row(r.Workload, r.Coverage[0], r.Coverage[1], r.Coverage[2], r.Coverage[3])
	}
	return t
}
