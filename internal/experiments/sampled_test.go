package experiments

import (
	"reflect"
	"strings"
	"testing"

	"confluence/internal/core"
	"confluence/internal/store"
	"confluence/internal/synth"
)

// paperWorkloads builds the paper's five profiles at full footprint —
// the regime the auto plan is tuned for.
func paperWorkloads(t *testing.T) []*synth.Workload {
	t.Helper()
	ws := make([]*synth.Workload, 0, 5)
	for _, p := range synth.Profiles() {
		w, err := synth.Build(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestSampledTolerance is the acceptance bound of sampled mode, run at
// the scale the auto plan is tuned for (a fast-forwarded warm-up phase
// of at least half the measure region). On every paper workload:
//
//   - IPC lands within 1% of exact for all three design families —
//     pinned by the jittered window estimates;
//   - L1-I and BTB MPKI land within 1% of exact on the prefetcherless
//     baseline (Base1K) — pinned by the full-coverage probe tallies,
//     which are event-exact there (the residual is ratio-denominator
//     skew, observed ≤0.02%);
//   - every run details at least 10× fewer instructions than exact;
//   - the confidence intervals are non-degenerate.
//
// Window-estimate MPKI on prefetching designs is intentionally NOT
// bounded at 1%: miss events are too rare for that at a ≥10× detail
// reduction (hundreds of events per budget, percent-scale noise floor),
// which is exactly why the full-coverage path exists. Those estimates
// ship with confidence intervals instead.
func TestSampledTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every paper workload exact and sampled")
	}
	const warmup, measure = 3_200_000, 6_000_000
	sp := core.AutoSampling(measure)
	opt := core.DefaultOptions()
	opt.Cores = 2
	var comps []*SampledComparison
	for _, w := range paperWorkloads(t) {
		for _, dp := range []core.DesignPoint{core.Confluence, core.PhantomFDP, core.Base1K} {
			c, err := CompareSampled(t.Context(), []*synth.Workload{w}, dp, opt, warmup, measure, sp)
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Prof.Name, dp, err)
			}
			comps = append(comps, c)
			if c.IPCErrPct >= 1.0 {
				t.Errorf("%s/%v: IPC error %.3f%% (exact %.4f, sampled %.4f), want <1%%",
					c.Mix, c.Design, c.IPCErrPct, c.Exact.IPC(), c.Sampled.IPC())
			}
			if dp == core.Base1K {
				if cov := c.Report.Coverage; cov == nil || !cov.Exact {
					t.Errorf("%s/%v: prefetcherless design did not get exact coverage: %+v", c.Mix, c.Design, c.Report.Coverage)
				}
				if c.L1IErrPct >= 1.0 {
					t.Errorf("%s/%v: L1-I MPKI error %.3f%% (exact %.3f), want <1%%",
						c.Mix, c.Design, c.L1IErrPct, c.Exact.L1IMPKI())
				}
				if c.BTBErrPct >= 1.0 {
					t.Errorf("%s/%v: BTB MPKI error %.3f%% (exact %.3f), want <1%%",
						c.Mix, c.Design, c.BTBErrPct, c.Exact.BTBMPKI())
				}
			}
			if red := c.Report.DetailReduction(); red < 10 {
				t.Errorf("%s/%v: detail reduction %.1fx, want >=10x", c.Mix, c.Design, red)
			}
			if c.Report.IPC.CI95 <= 0 {
				t.Errorf("%s/%v: degenerate IPC confidence interval: %+v", c.Mix, c.Design, c.Report.IPC)
			}
		}
	}
	table := SampledTable(comps).String()
	for _, want := range []string{"Confluence", "PhantomBTB+FDP", "±", "detailx"} {
		if !strings.Contains(table, want) {
			t.Errorf("sampled table missing %q:\n%s", want, table)
		}
	}
}

// TestSampledDeterministicAcrossWorkers: sampled execution always weaves
// shared state on the exact serial schedule, so the worker count must not
// change a single bit of the result.
func TestSampledDeterministicAcrossWorkers(t *testing.T) {
	w := detWorkload(t)
	sp := core.AutoSampling(150_000)
	run := func(intraWorkers int) any {
		opt := core.DefaultOptions()
		opt.Cores = 2
		opt.IntraWorkers = intraWorkers
		sys, err := core.NewMixSystem([]*synth.Workload{w}, core.Confluence, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		agg, perCore, rep, err := RunSampledSystem(t.Context(), sys, 80_000, sp, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		return []any{agg, perCore, rep}
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Error("sampled run diverged between IntraWorkers=1 and IntraWorkers=4")
	}
}

// TestSampledSnapshotReuse: a second sampled run of a cell sharing the
// warm snapshot must report the reuse and measure bit-identically to the
// cold run that captured it.
func TestSampledSnapshotReuse(t *testing.T) {
	w := detWorkload(t)
	mix := []*synth.Workload{w}
	opt := core.DefaultOptions()
	opt.Cores = 2
	const warmup = 80_000
	sp := core.AutoSampling(150_000)
	st := store.Open(t.TempDir())
	key, ok := SnapshotStoreKey(warmup, mix, "", core.Confluence, opt)
	if !ok {
		t.Fatal("SnapshotStoreKey not applicable to a plain live cell")
	}

	run := func() ([]any, *SampledReport) {
		sys, err := core.NewMixSystem(mix, core.Confluence, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		agg, perCore, rep, err := RunSampledSystem(t.Context(), sys, warmup, sp, st, key)
		if err != nil {
			t.Fatal(err)
		}
		return []any{agg, perCore, rep.Windows}, rep
	}
	cold, coldRep := run()
	if coldRep.SnapshotReused {
		t.Error("cold run claims snapshot reuse")
	}
	warm, warmRep := run()
	if !warmRep.SnapshotReused {
		t.Fatal("second run did not reuse the stored warm snapshot")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("snapshot-restored run diverged from live warm-up run")
	}
}

func TestSnapshotStoreKeyEquivalence(t *testing.T) {
	w := detWorkload(t)
	mix := []*synth.Workload{w}
	opt := core.DefaultOptions()
	opt.Cores = 2
	keyOf := func(warmup uint64, dp core.DesignPoint, o core.Options) string {
		t.Helper()
		k, ok := SnapshotStoreKey(warmup, mix, "", dp, o)
		if !ok {
			t.Fatalf("SnapshotStoreKey(%v) not applicable", dp)
		}
		return k
	}

	// Designs differing only in timing machinery share warm snapshots.
	if keyOf(50_000, core.Base1K, opt) != keyOf(50_000, core.FDP1K, opt) {
		t.Error("Base1K and FDP1K warm keys differ; fast-forward state is identical")
	}
	// A recording SHIFT history is warm state.
	if keyOf(50_000, core.Base1K, opt) == keyOf(50_000, core.Base1KSHIFT, opt) {
		t.Error("Base1K and Base1KSHIFT share a warm key")
	}
	// Warm-up length, core count, and history size are all key material.
	if keyOf(50_000, core.Confluence, opt) == keyOf(60_000, core.Confluence, opt) {
		t.Error("warm key ignores warm-up length")
	}
	opt4 := opt
	opt4.Cores = 4
	if keyOf(50_000, core.Confluence, opt) == keyOf(50_000, core.Confluence, opt4) {
		t.Error("warm key ignores core count")
	}
	optH := opt
	optH.Shift.HistoryEntries = 4096
	if keyOf(50_000, core.Confluence, opt) == keyOf(50_000, core.Confluence, optH) {
		t.Error("warm key ignores SHIFT history size")
	}
	// ...but a pure timing knob is not.
	optL := opt
	optL.Shift.Lookahead = 7
	if keyOf(50_000, core.Confluence, opt) != keyOf(50_000, core.Confluence, optL) {
		t.Error("warm key varies with prefetcher lookahead (timing-only)")
	}

	// Inapplicable cells: no warm-up, or per-core private histories.
	if _, ok := SnapshotStoreKey(0, mix, "", core.Confluence, opt); ok {
		t.Error("warm key offered for a zero-length warm-up")
	}
	optP := opt
	optP.HistoryPerCore = true
	if _, ok := SnapshotStoreKey(50_000, mix, "", core.Confluence, optP); ok {
		t.Error("warm key offered for per-core histories")
	}
}

// TestRunnerSampledCells: the grid runner threads its Sampling plan into
// each cell — sampled cells carry a report, memoize separately from exact
// cells, and stay deterministic across repeated lookups.
func TestRunnerSampledCells(t *testing.T) {
	r := tinyRunner(t)
	w := r.Workloads[0]
	exact, err := r.RunDefault(w, core.Confluence)
	if err != nil {
		t.Fatal(err)
	}

	rs := tinyRunner(t)
	rs.Sampling = core.AutoSampling(rs.Scale.Measure)
	stA, _, repA, err := rs.RunMixSampledCtx(t.Context(), []*synth.Workload{rs.Workloads[0]}, core.Confluence, rs.options())
	if err != nil {
		t.Fatal(err)
	}
	if repA == nil {
		t.Fatal("sampled cell returned no report")
	}
	if stA.Instructions >= exact.Instructions {
		t.Errorf("sampled cell measured %d instructions, exact %d", stA.Instructions, exact.Instructions)
	}
	stB, _, repB, err := rs.RunMixSampledCtx(t.Context(), []*synth.Workload{rs.Workloads[0]}, core.Confluence, rs.options())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stA, stB) || !reflect.DeepEqual(repA, repB) {
		t.Error("memoized sampled cell differs from first run")
	}
}
