package experiments

import (
	"testing"

	"confluence/internal/core"
	"confluence/internal/synth"
)

// tinyRunner builds a single-workload runner at a very small scale so the
// full figure machinery can be exercised in unit tests.
func tinyRunner(t *testing.T) *Runner {
	t.Helper()
	// Big enough to thrash a 32KB L1-I and a 1K-entry BTB (the paper's
	// operating regime), small enough for unit tests.
	p := synth.OLTPDB2()
	p.Functions = 1100
	p.RequestTypes = 8
	p.Concurrency = 8
	p.Seed = 12
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scale{Name: "tiny", Cores: 2, Warmup: 200_000, Measure: 300_000}
	return NewRunnerFor(sc, []*synth.Workload{w})
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "default", "paper"} {
		if _, ok := ScaleByName(name); !ok {
			t.Errorf("scale %q missing", name)
		}
	}
	if _, ok := ScaleByName("galactic"); ok {
		t.Error("unknown scale resolved")
	}
}

func TestScaleFromEnv(t *testing.T) {
	t.Setenv("REPRO_SCALE", "small")
	if got := ScaleFromEnv(); got.Name != "small" {
		t.Errorf("ScaleFromEnv = %q", got.Name)
	}
	t.Setenv("REPRO_SCALE", "bogus")
	if got := ScaleFromEnv(); got.Name != "default" {
		t.Errorf("fallback = %q", got.Name)
	}
}

func TestRunCaching(t *testing.T) {
	r := tinyRunner(t)
	w := r.Workloads[0]
	a, err := r.RunDefault(w, core.Base1K)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunDefault(w, core.Base1K)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs not served from cache")
	}
	// Different options must not collide in the cache.
	opt := r.options()
	opt.SweepBTBEntries = 2048
	c1, err := r.Run(w, core.SweepBTB, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.SweepBTBEntries = 4096
	c2, err := r.Run(w, core.SweepBTB, opt)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Error("different sweep sizes collided in the cache")
	}
}

func TestFigure1ShapeDecreasing(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Figure1(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].MPKI) != len(Figure1Sizes) {
		t.Fatalf("rows shape wrong: %+v", rows)
	}
	m := rows[0].MPKI
	// The curve must decrease substantially from 1K to 32K (Fig 1's shape).
	if m[len(m)-1] > m[0]*0.6 {
		t.Errorf("BTB MPKI barely decreases: %v", m)
	}
	for i := 1; i < len(m); i++ {
		if m[i] > m[i-1]*1.15 { // allow small noise, forbid real increases
			t.Errorf("MPKI increased with capacity: %v", m)
		}
	}
	if tab := Figure1Table(rows).String(); len(tab) == 0 {
		t.Error("empty table")
	}
}

func TestTable2PlausibleDensity(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Table2(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.Static < 1.5 || row.Static > 6 {
		t.Errorf("static density %.2f implausible", row.Static)
	}
	if row.Dynamic <= 0 || row.Dynamic > row.Static {
		t.Errorf("dynamic density %.2f vs static %.2f: dynamic must be lower",
			row.Dynamic, row.Static)
	}
	if tab := Table2Table(rows).String(); len(tab) == 0 {
		t.Error("empty table")
	}
}

func TestFigure6Ordering(t *testing.T) {
	r := tinyRunner(t)
	points, err := r.Figure6(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	perf := map[core.DesignPoint]float64{}
	areaOf := map[core.DesignPoint]float64{}
	for _, p := range points {
		perf[p.Design] = p.RelPerf
		areaOf[p.Design] = p.RelArea
	}
	// The paper's qualitative ordering.
	if perf[core.Ideal] < perf[core.Confluence] {
		t.Errorf("Ideal (%.3f) below Confluence (%.3f)", perf[core.Ideal], perf[core.Confluence])
	}
	if perf[core.Confluence] < perf[core.TwoLevelSHIFT]*0.99 {
		t.Errorf("Confluence (%.3f) below 2LevelBTB+SHIFT (%.3f)",
			perf[core.Confluence], perf[core.TwoLevelSHIFT])
	}
	if perf[core.TwoLevelSHIFT] < perf[core.FDP1K]*0.99 {
		t.Errorf("2LevelBTB+SHIFT (%.3f) below FDP (%.3f)",
			perf[core.TwoLevelSHIFT], perf[core.FDP1K])
	}
	// Confluence achieves its performance at a fraction of the two-level
	// area (the paper's headline).
	if areaOf[core.Confluence] >= areaOf[core.TwoLevelSHIFT] {
		t.Error("Confluence not cheaper than 2LevelBTB+SHIFT")
	}
	if tab := PerfAreaTable("t", points).String(); len(tab) == 0 {
		t.Error("empty table")
	}
}

func TestFigure7ConfluenceNearIdealBTB(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Figure7(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	sp := rows[0].Speedup
	if sp[core.Confluence] < sp[core.PhantomSHIFT]*0.98 {
		t.Errorf("Confluence (%.3f) below PhantomBTB (%.3f)",
			sp[core.Confluence], sp[core.PhantomSHIFT])
	}
	if sp[core.IdealBTBSHIFT] < 1.0 {
		t.Errorf("IdealBTB+SHIFT slower than 1K BTB+SHIFT: %.3f", sp[core.IdealBTBSHIFT])
	}
	if tab := Figure7Table(rows).String(); len(tab) == 0 {
		t.Error("empty table")
	}
}

func TestFigure8CoverageDecomposes(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Figure8(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	sum := row.Capacity + row.Spatial + row.Prefetch + row.BlockOrg
	if diff := sum - row.Total; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("increments (%.1f) don't sum to total (%.1f)", sum, row.Total)
	}
	if row.Total < 20 {
		t.Errorf("total AirBTB coverage only %.1f%%", row.Total)
	}
	if tab := Figure8Table(rows).String(); len(tab) == 0 {
		t.Error("empty table")
	}
}

func TestFigure9Ordering(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Figure9(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	// 16K conventional is the coverage ceiling; AirBTB approaches it;
	// PhantomBTB trails (the paper's Fig 9 ordering).
	if row.Conv16K < row.AirBTB-8 {
		t.Errorf("AirBTB (%.1f) implausibly above 16K BTB (%.1f)", row.AirBTB, row.Conv16K)
	}
	if row.AirBTB <= row.Phantom {
		t.Errorf("AirBTB (%.1f) below PhantomBTB (%.1f)", row.AirBTB, row.Phantom)
	}
	if tab := Figure9Table(rows).String(); len(tab) == 0 {
		t.Error("empty table")
	}
}

func TestFigure10OverflowBufferMatters(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.Figure10(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	cov := rows[0].Coverage
	// B:3+OB:32 must beat B:3+OB:0 (the paper's reason for the buffer).
	if cov[1] <= cov[0] {
		t.Errorf("overflow buffer did not help: OB0=%.1f OB32=%.1f", cov[0], cov[1])
	}
	// B:4+OB:32 is the best configuration.
	if cov[3] < cov[1]-5 {
		t.Errorf("B:4,OB:32 (%.1f) well below B:3,OB:32 (%.1f)", cov[3], cov[1])
	}
	if tab := Figure10Table(rows).String(); len(tab) == 0 {
		t.Error("empty table")
	}
}

func TestAblations(t *testing.T) {
	r := tinyRunner(t)
	rows, err := r.LookaheadSweep(t.Context(), []int{4, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	shared, err := r.SharedVsPrivateHistory(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) != 2 {
		t.Fatalf("shared-vs-private rows = %d", len(shared))
	}
	if tab := AblationTable("t", rows).String(); len(tab) == 0 {
		t.Error("empty table")
	}
}

func TestNewRunnerBuildsSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload suite build in -short mode")
	}
	r, err := NewRunner(Small, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 5 {
		t.Errorf("suite has %d workloads", len(r.Workloads))
	}
}
