package experiments

import (
	"context"

	"confluence/internal/cache"
	"confluence/internal/isa"
	"confluence/internal/parallel"
	"confluence/internal/stats"
	"confluence/internal/synth"
	"confluence/internal/trace"
)

// Table2Row reports branch density per 64B instruction block, matching the
// paper's Table 2: Static is the average number of branch instructions in
// demand-fetched blocks; Dynamic the average number of branches executed
// during a block's L1-I residency (paper averages: static 3.5, dynamic 1.5).
type Table2Row struct {
	Workload string
	Static   float64
	Dynamic  float64
}

// Table2 measures branch density with a standalone L1-I residency probe
// (one core, the paper's 32KB/4-way geometry). The probes are independent
// per workload and fan out across the runner's worker pool; rows are
// indexed by workload position, so ordering is deterministic.
func (r *Runner) Table2(ctx context.Context) ([]Table2Row, error) {
	rows := make([]Table2Row, len(r.Workloads))
	err := parallel.ForEach(ctx, r.workers(), len(r.Workloads),
		func(_ context.Context, i int) error {
			rows[i] = table2One(r.Workloads[i], r.Scale.Warmup+r.Scale.Measure)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func table2One(w *synth.Workload, instructions uint64) Table2Row {
	const sets, ways = 128, 4 // 32KB / 64B blocks
	l1i := cache.New(sets, ways)
	exec := trace.NewExecutor(w, 0x7ab1e2)
	// executed[block] is the bitmap of branch sites exercised during the
	// block's current L1-I residency; the paper's "dynamic" column is how
	// many of a block's static branches are actually used while resident —
	// the number AirBTB's 3-entry bundles are provisioned against.
	executed := make(map[uint64]uint16)

	var residencies, staticBranches, dynamicSum uint64
	var rec trace.Record
	key := func(b isa.Addr) uint64 { return uint64(b) >> isa.BlockShift }
	popcount := func(x uint16) uint64 {
		var n uint64
		for ; x != 0; x &= x - 1 {
			n++
		}
		return n
	}

	for exec.Instructions < instructions {
		exec.Next(&rec)
		first := isa.BlockOf(rec.Start)
		last := isa.BlockOf(rec.Start + isa.Addr((rec.N-1)*isa.InstrBytes))
		for b := first; b <= last; b += isa.BlockBytes {
			if !l1i.Lookup(key(b)) {
				if ev, ok := l1i.Insert(key(b)); ok {
					dynamicSum += popcount(executed[ev])
					residencies++
					delete(executed, ev)
				}
				staticBranches += uint64(len(w.Prog.PredecodeBlock(b)))
			}
		}
		if rec.Br.Kind.IsBranch() {
			executed[key(isa.BlockOf(rec.Br.PC))] |= 1 << uint(isa.BlockIndex(rec.Br.PC))
		}
	}
	// Flush still-resident blocks' residencies.
	for _, k := range l1i.Keys(nil) {
		dynamicSum += popcount(executed[k])
		residencies++
	}
	row := Table2Row{Workload: w.Prof.Name}
	if residencies > 0 {
		row.Static = float64(staticBranches) / float64(residencies)
		row.Dynamic = float64(dynamicSum) / float64(residencies)
	}
	return row
}

// Table2Table formats Table 2 results.
func Table2Table(rows []Table2Row) *stats.Table {
	t := stats.NewTable("Table 2: branch density in demand-fetched 64B blocks",
		"Workload", "Static", "Dynamic")
	var s, d []float64
	for _, r := range rows {
		t.Row(r.Workload, r.Static, r.Dynamic)
		s, d = append(s, r.Static), append(d, r.Dynamic)
	}
	t.Row("Average", stats.Mean(s), stats.Mean(d))
	return t
}
