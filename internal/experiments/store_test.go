package experiments

import (
	"context"
	"sync"
	"testing"

	"confluence/internal/core"
	"confluence/internal/frontend"
	"confluence/internal/store"
	"confluence/internal/synth"
	"confluence/internal/trace"
)

var storeTestScale = Scale{Name: "tiny", Cores: 2, Warmup: 100_000, Measure: 150_000}

func storeTestRunner(t *testing.T, s *store.Store) *Runner {
	t.Helper()
	r := NewRunnerFor(storeTestScale, []*synth.Workload{detWorkload(t)})
	r.Store = s
	return r
}

// TestStoreResumeDeterminism is the tentpole contract: a grid killed
// mid-sweep and re-run against the same store resumes from the completed
// cells and produces results bit-identical to an uninterrupted run. Each
// Runner here stands in for one process (fresh memo cache); only the
// store directory is shared.
func TestStoreResumeDeterminism(t *testing.T) {
	s := store.Open(t.TempDir())
	designs := []core.DesignPoint{core.Base1K, core.TwoLevelSHIFT, core.Confluence, core.Ideal}

	// "Process" 1: start the grid, get killed after the first completed
	// cell. The context is cancelled from the progress callback, which
	// fires after the cell's store write — exactly the window a SIGKILL
	// between cells hits.
	interrupted := storeTestRunner(t, s)
	ctx, cancel := context.WithCancel(t.Context())
	interrupted.Progress = func(string) { cancel() }
	if err := interrupted.Grid(designs).Execute(ctx); err == nil {
		t.Fatal("interrupted grid ran to completion; cancellation never landed")
	}
	if _, _, writes := s.Counters(); writes == 0 {
		t.Fatal("no cell was persisted before the interruption")
	}

	// "Process" 2: re-run the whole grid against the same store.
	resumed := storeTestRunner(t, s)
	got, err := resumed.Grid(designs).Stats(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _ := s.Counters()
	if hits == 0 {
		t.Error("resumed grid never hit the store: completed cells re-simulated")
	}

	// Reference: the same grid with no store at all.
	fresh := NewRunnerFor(storeTestScale, []*synth.Workload{detWorkload(t)})
	want, err := fresh.Grid(designs).Stats(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cell counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if *got[i] != *want[i] {
			t.Errorf("cell %d diverged between resumed and uninterrupted runs:\n  %+v\nvs\n  %+v",
				i, *got[i], *want[i])
		}
	}
}

// TestStoreHitEmitsProgress pins the observability contract: a cell served
// from the store reports the same progress line a live simulation would,
// so resumed sweeps show every cell.
func TestStoreHitEmitsProgress(t *testing.T) {
	s := store.Open(t.TempDir())
	warm := storeTestRunner(t, s)
	if _, err := warm.RunDefault(warm.Workloads[0], core.Base1K); err != nil {
		t.Fatal(err)
	}

	var liveLines, storedLines []string
	warm2 := storeTestRunner(t, s)
	warm2.Progress = func(line string) { storedLines = append(storedLines, line) }
	if _, err := warm2.RunDefault(warm2.Workloads[0], core.Base1K); err != nil {
		t.Fatal(err)
	}
	live := NewRunnerFor(storeTestScale, []*synth.Workload{detWorkload(t)})
	live.Progress = func(line string) { liveLines = append(liveLines, line) }
	if _, err := live.RunDefault(live.Workloads[0], core.Base1K); err != nil {
		t.Fatal(err)
	}
	if len(storedLines) != 1 || len(liveLines) != 1 || storedLines[0] != liveLines[0] {
		t.Errorf("store-hit progress diverges from live progress:\n  stored: %q\n  live:   %q", storedLines, liveLines)
	}
}

// TestConcurrentRunnersConverge races two independent Runners (two
// "processes") over the same grid and store: both must succeed, and the
// store must end with exactly one valid entry per cell.
func TestConcurrentRunnersConverge(t *testing.T) {
	s := store.Open(t.TempDir())
	designs := []core.DesignPoint{core.Base1K, core.Confluence}
	results := make([][]*frontend.Stats, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		r := storeTestRunner(t, s)
		wg.Add(1)
		go func(i int, r *Runner) {
			defer wg.Done()
			stats, err := r.Grid(designs).Stats(context.Background())
			if err != nil {
				t.Errorf("runner %d: %v", i, err)
				return
			}
			results[i] = stats
		}(i, r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := range results[0] {
		if *results[0][i] != *results[1][i] {
			t.Errorf("cell %d diverged between racing runners", i)
		}
	}
	if n := s.Len(); n != len(designs) {
		t.Errorf("store holds %d entries after convergence, want %d", n, len(designs))
	}
	// A third runner must serve the whole grid from the store.
	replay := storeTestRunner(t, s)
	h0, _, _ := s.Counters()
	if _, err := replay.Grid(designs).Stats(t.Context()); err != nil {
		t.Fatal(err)
	}
	h1, _, _ := s.Counters()
	if int(h1-h0) != len(designs) {
		t.Errorf("replay hit the store %d times, want %d", h1-h0, len(designs))
	}
}

// TestCellStoreKeyIdentity pins what is — and is not — part of a cell's
// durable identity.
func TestCellStoreKeyIdentity(t *testing.T) {
	w := detWorkload(t)
	mix := []*synth.Workload{w}
	base := core.DefaultOptions()
	base.Cores = 2
	key := func(opt core.Options, dp core.DesignPoint) string {
		k, ok := CellStoreKey(100_000, 150_000, mix, "", dp, opt)
		if !ok {
			t.Fatalf("unexpectedly unkeyable: %+v", opt)
		}
		return k
	}

	ref := key(base, core.Base1K)

	// Worker counts must not change the key (determinism contract).
	intra := base
	intra.IntraWorkers = 8
	if key(intra, core.Base1K) != ref {
		t.Error("IntraWorkers changed the store key")
	}
	// EpochBlocks 0 and 1 are the same exact mode; K=2 is a different model.
	k1 := base
	k1.EpochBlocks = 1
	if key(k1, core.Base1K) != ref {
		t.Error("EpochBlocks=1 diverged from the 0 default")
	}
	k2 := base
	k2.EpochBlocks = 2
	if key(k2, core.Base1K) == ref {
		t.Error("EpochBlocks=2 shares the exact mode's key")
	}
	// Zero-valued sentinels and their explicit defaults are one cell.
	sparse := core.Options{Cores: 2}
	if key(sparse, core.Base1K) != ref {
		t.Error("zero-valued options and explicit defaults hash to different keys")
	}
	// Results-changing knobs must change the key.
	for name, opt := range map[string]core.Options{
		"Cores":          {Cores: 4},
		"HistoryPerCore": func() core.Options { o := base; o.HistoryPerCore = true; return o }(),
		"Shift.Lookahead": func() core.Options {
			o := base
			o.Shift.Lookahead = base.Shift.Lookahead + 1
			return o
		}(),
	} {
		if key(opt, core.Base1K) == ref {
			t.Errorf("%s change kept the same store key", name)
		}
	}
	if key(base, core.Confluence) == ref {
		t.Error("design point not part of the store key")
	}
	if k, _ := CellStoreKey(100_000, 200_000, mix, "", core.Base1K, base); k == ref {
		t.Error("measure count not part of the store key")
	}
}

// TestCellStoreKeySkipsSources pins the escape hatch: an arbitrary source
// provider is opaque code, so such cells bypass the store entirely.
func TestCellStoreKeySkipsSources(t *testing.T) {
	mix := []*synth.Workload{detWorkload(t)}
	opt := core.DefaultOptions()
	opt.Cores = 2
	opt.Sources = func(int) (trace.Source, error) { return nil, nil }
	if _, ok := CellStoreKey(100_000, 150_000, mix, "", core.Base1K, opt); ok {
		t.Error("a cell with an Options.Sources override got a store key")
	}
}

// TestDecodeStoreEntryRejectsGarbage: a payload that is not a complete
// entry (schema drift, hand-edited file) must read as a miss, not a
// partially-populated result.
func TestDecodeStoreEntryRejectsGarbage(t *testing.T) {
	for _, payload := range []string{"", "not json", "{}", `{"per_core": []}`} {
		if _, ok := DecodeStoreEntry([]byte(payload)); ok {
			t.Errorf("DecodeStoreEntry(%q) accepted", payload)
		}
	}
}
