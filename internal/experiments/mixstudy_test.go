package experiments

import (
	"strings"
	"testing"

	"confluence/internal/core"
	"confluence/internal/synth"
)

// mixRunner builds a two-workload runner at the determinism tests' scale.
func mixRunner(t *testing.T) *Runner {
	t.Helper()
	sc := Scale{Name: "tiny", Cores: 4, Warmup: 100_000, Measure: 150_000}
	return NewRunnerFor(sc, []*synth.Workload{detWorkload(t), detWorkloadB(t)})
}

func TestMixStudy(t *testing.T) {
	r := mixRunner(t)
	rows, err := r.MixStudy(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	// One 2-workload mix over {Confluence: shared+private, PhantomFDP:
	// shared, Base1KSHIFT: shared+private}.
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5: %+v", len(rows), rows)
	}
	var sharedRow, privateRow *MixRow
	for i := range rows {
		row := &rows[i]
		if row.IPC <= 0 || row.HMeanIPC <= 0 || row.WeightedSpeedup <= 0 {
			t.Errorf("row %d has degenerate metrics: %+v", i, row)
		}
		if row.HMeanIPC > row.IPC*1.01 {
			t.Errorf("row %d: harmonic mean %v above aggregate IPC %v", i, row.HMeanIPC, row.IPC)
		}
		if row.Design == core.Confluence {
			if row.Private {
				privateRow = row
			} else {
				sharedRow = row
			}
		}
	}
	if sharedRow == nil || privateRow == nil {
		t.Fatal("missing Confluence shared/private rows")
	}
	// The ablation must be non-degenerate: sharing one history across a
	// heterogeneous mix and giving every core its own are different
	// machines, and the study must resolve the difference.
	if sharedRow.IPC == privateRow.IPC && sharedRow.L1IMPKI == privateRow.L1IMPKI {
		t.Errorf("shared vs private history is degenerate: %+v vs %+v", sharedRow, privateRow)
	}

	table := MixStudyTable(rows).String()
	for _, want := range []string{"shared", "private", "Confluence", rows[0].Mix} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestMixStudyDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []MixRow {
		r := mixRunner(t)
		r.Workers = workers
		rows, err := r.MixStudy(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(1), run(8)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d diverged between Workers=1 and Workers=8:\n  %+v\nvs\n  %+v", i, a[i], b[i])
		}
	}
}

func TestDefaultMixes(t *testing.T) {
	// With two workloads only the pair mix exists.
	r := mixRunner(t)
	mixes := r.DefaultMixes()
	if len(mixes) != 1 || len(mixes[0]) != 2 {
		t.Fatalf("two-workload suite produced mixes %v", mixes)
	}
	if mixes[0][0] != r.Workloads[0] || mixes[0][1] != r.Workloads[1] {
		t.Error("pair mix should span the first and last workloads")
	}
	// A five-workload suite yields the 2-, 4-, and 5-way consolidations on
	// a wide-enough CMP...
	ws := make([]*synth.Workload, 5)
	for i := range ws {
		ws[i] = r.Workloads[i%2]
	}
	sizesAt := func(cores int) []int {
		rr := NewRunnerFor(Scale{Name: "t", Cores: cores, Warmup: 1, Measure: 1}, ws)
		var sizes []int
		for _, m := range rr.DefaultMixes() {
			sizes = append(sizes, len(m))
		}
		return sizes
	}
	if sizes := sizesAt(8); len(sizes) != 3 || sizes[0] != 2 || sizes[1] != 4 || sizes[2] != 5 {
		t.Errorf("five-workload mixes at 8 cores have sizes %v, want [2 4 5]", sizes)
	}
	// ...while mixes wider than the CMP are omitted (a workload without a
	// core is not a consolidation).
	if sizes := sizesAt(4); len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 4 {
		t.Errorf("five-workload mixes at 4 cores have sizes %v, want [2 4]", sizes)
	}
}
