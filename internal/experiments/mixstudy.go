package experiments

import (
	"context"

	"confluence/internal/core"
	"confluence/internal/frontend"
	"confluence/internal/stats"
	"confluence/internal/synth"
)

// The consolidation study goes beyond the paper's homogeneous evaluation:
// every scale-out deployment consolidates heterogeneous services onto one
// CMP, so the headline claim — a single LLC-virtualized SHIFT history
// serving every core — must hold when the cores' control-flow footprints
// compete instead of coincide. The study sweeps 2-, 4-, and 5-workload
// mixes over the history-sharing design points and ablates the shared
// history against per-core private instances, reporting the
// multi-programmed metrics (harmonic-mean IPC, weighted speedup vs running
// alone) alongside the aggregate ones.

// MixRow is one (mix, design, history-configuration) outcome.
type MixRow struct {
	Mix     string
	Design  core.DesignPoint
	Private bool // per-core SHIFT history (ablation); false = the paper's shared history

	IPC      float64 // aggregate IPC across the CMP
	HMeanIPC float64 // harmonic mean of per-core IPCs
	// WeightedSpeedup is the mean of per-core IPC ratios against the same
	// core running its workload homogeneously on the same design (shared
	// history): 1.0 means consolidation cost nothing.
	WeightedSpeedup float64
	BTBMPKI         float64
	L1IMPKI         float64
}

// MixStudyDesigns are the design points the consolidation study covers: the
// paper's contribution plus the two strongest history-virtualizing
// competitors (PhantomBTB's shared group store, and SHIFT on a conventional
// BTB, which isolates the history from AirBTB effects).
func MixStudyDesigns() []core.DesignPoint {
	return []core.DesignPoint{core.Confluence, core.PhantomFDP, core.Base1KSHIFT}
}

// DefaultMixes returns the study's consolidations drawn from the runner's
// suite: a 2-way OLTP+Web mix, a 4-way mix, and the full 5-workload
// consolidation (with smaller suites, whatever prefixes exist). Mixes
// wider than the scale's CMP are omitted — a workload without a core is
// not a consolidation.
func (r *Runner) DefaultMixes() [][]*synth.Workload {
	ws := r.Workloads
	var mixes [][]*synth.Workload
	if len(ws) >= 2 {
		// The most contrasting pair in the paper suite: the largest OLTP
		// footprint against the branchiest web frontend.
		mixes = append(mixes, []*synth.Workload{ws[0], ws[len(ws)-1]})
	}
	if len(ws) >= 4 {
		mixes = append(mixes, ws[:4])
	}
	if len(ws) >= 5 {
		mixes = append(mixes, ws[:5])
	}
	kept := mixes[:0]
	for _, m := range mixes {
		if len(m) <= r.Scale.Cores {
			kept = append(kept, m)
		}
	}
	return kept
}

// mixVariants returns the history configurations studied for a design:
// shared (the paper's), plus the private-per-core ablation where the design
// has a SHIFT history to ablate.
func mixVariants(dp core.DesignPoint) []bool {
	if dp.UsesSHIFT() {
		return []bool{false, true}
	}
	return []bool{false}
}

// MixStudy runs the default consolidation study (DefaultMixes x
// MixStudyDesigns).
func (r *Runner) MixStudy(ctx context.Context) ([]MixRow, error) {
	return r.MixStudyFor(ctx, r.DefaultMixes(), MixStudyDesigns())
}

// MixStudyFor plans every (mix, design, history-variant) cell plus the
// homogeneous baselines the weighted-speedup metric needs, executes them
// across the worker pool, and assembles rows in canonical (mix, design,
// variant) order.
func (r *Runner) MixStudyFor(ctx context.Context, mixes [][]*synth.Workload, designs []core.DesignPoint) ([]MixRow, error) {
	plan := r.NewPlan()
	for _, mix := range mixes {
		for _, dp := range designs {
			for _, priv := range mixVariants(dp) {
				opt := r.options()
				opt.HistoryPerCore = priv
				plan.AddMix(mix, dp, opt)
			}
			for _, w := range mix {
				plan.Add(w, dp, r.options())
			}
		}
	}
	if err := plan.Execute(ctx); err != nil {
		return nil, err
	}

	var rows []MixRow
	for _, mix := range mixes {
		for _, dp := range designs {
			// Core i's "alone" IPC is core i of the homogeneous run of its
			// workload on the same design — same tile, same NOC distances.
			alone := make([][]*frontend.Stats, len(mix))
			for j, w := range mix {
				_, per, err := r.RunMixCtx(ctx, []*synth.Workload{w}, dp, r.options())
				if err != nil {
					return nil, err
				}
				alone[j] = per
			}
			for _, priv := range mixVariants(dp) {
				opt := r.options()
				opt.HistoryPerCore = priv
				agg, per, err := r.RunMixCtx(ctx, mix, dp, opt)
				if err != nil {
					return nil, err
				}
				mixIPC := make([]float64, len(per))
				aloneIPC := make([]float64, len(per))
				for i, st := range per {
					mixIPC[i] = st.IPC()
					aloneIPC[i] = alone[i%len(mix)][i].IPC()
				}
				rows = append(rows, MixRow{
					Mix:             MixName(mix),
					Design:          dp,
					Private:         priv,
					IPC:             agg.IPC(),
					HMeanIPC:        stats.HarmonicMean(mixIPC),
					WeightedSpeedup: stats.WeightedSpeedup(mixIPC, aloneIPC),
					BTBMPKI:         agg.BTBMPKI(),
					L1IMPKI:         agg.L1IMPKI(),
				})
			}
		}
	}
	return rows, nil
}

// MixStudyTable formats consolidation-study rows.
func MixStudyTable(rows []MixRow) *stats.Table {
	t := stats.NewTable("Consolidation study: workload mixes vs the shared SHIFT history",
		"Mix", "Design", "History", "IPC", "HMean IPC", "W.Speedup", "BTB MPKI", "L1-I MPKI")
	for _, r := range rows {
		hist := "shared"
		if r.Private {
			hist = "private"
		}
		t.Row(r.Mix, r.Design.String(), hist, r.IPC, r.HMeanIPC, r.WeightedSpeedup, r.BTBMPKI, r.L1IMPKI)
	}
	return t
}
