package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"

	"confluence/internal/airbtb"
	"confluence/internal/core"
	"confluence/internal/fdp"
	"confluence/internal/frontend"
	"confluence/internal/shift"
	"confluence/internal/store"
	"confluence/internal/synth"
	"confluence/internal/trace"
)

// ResultVersion pins the simulation semantics a stored result was computed
// under. It is part of every cell's store key, so bumping it invalidates the
// whole store at once. Bump it exactly when testdata/golden.json is
// regenerated: the golden file and the store make the same promise (these
// bytes are what this code computes), so they version together.
const ResultVersion = "confluence-results-v1"

// cellKeyMaterial is the canonical serialization a cell's store key is
// hashed from: everything that determines the cell's result, and nothing
// that cannot change it. In particular worker counts (Runner.Workers,
// Options.IntraWorkers) are absent — the determinism contract guarantees
// they never change results — while EpochBlocks is present because K>1
// changes timing feedback.
//
// Workloads appear as their full synth.Profile: generation is deterministic
// in the profile (synth.Build), so the profile is the workload's complete
// identity. A trace-replaying slot additionally carries its capture
// directory's file listing (names and sizes) — a cheap proxy for content;
// replacing a capture with a same-name same-size file is out of scope.
type cellKeyMaterial struct {
	Version   string          `json:"version"`
	Warmup    uint64          `json:"warmup"`
	Measure   uint64          `json:"measure"`
	Design    string          `json:"design"`
	Profiles  []synth.Profile `json:"profiles"`
	TraceDirs []traceDirKey   `json:"trace_dirs,omitempty"`
	Options   optionsKey      `json:"options"`
	// Sampling is nil for exact runs, so every pre-sampling key is
	// byte-stable; a sampled run is a different cell than the exact run
	// of the same configuration.
	Sampling *samplingKey `json:"sampling,omitempty"`
}

// samplingKey is the sampled-execution plan as key material.
type samplingKey struct {
	WindowInstr       uint64 `json:"window_instr"`
	PeriodInstr       uint64 `json:"period_instr"`
	Windows           int    `json:"windows"`
	WindowWarmupInstr uint64 `json:"window_warmup_instr,omitempty"`
	JitterSeed        uint64 `json:"jitter_seed,omitempty"`
}

// traceDirKey identifies one mix slot's replay capture.
type traceDirKey struct {
	Slot  int            `json:"slot"`
	Dir   string         `json:"dir"`
	Files []traceFileKey `json:"files"`
}

type traceFileKey struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// optionsKey is core.Options restricted to the result-determining fields
// (no IntraWorkers, no Sources), normalized so explicit defaults and
// zero-value sentinels hash identically.
type optionsKey struct {
	Cores           int           `json:"cores"`
	Air             airbtb.Config `json:"air"`
	Shift           shift.Config  `json:"shift"`
	FDP             fdp.Config    `json:"fdp"`
	SweepBTBEntries int           `json:"sweep_btb_entries"`
	HistoryPerCore  bool          `json:"history_per_core"`
	EpochBlocks     int           `json:"epoch_blocks"`
}

// CellStoreKey derives the durable store key for one simulation cell:
// per-core warmup/measure instruction counts, the workload mix (with
// traceDir overriding every slot's own capture, as Config.TraceDir does),
// the design point, and the options. The second return is false when the
// cell is not expressible as canonical key material — an Options.Sources
// override (arbitrary code feeds the cores) or an unreadable capture
// directory — in which case the caller skips the store entirely.
func CellStoreKey(warmup, measure uint64, mix []*synth.Workload, traceDir string, dp core.DesignPoint, opt core.Options) (string, bool) {
	return CellStoreKeySampled(warmup, measure, mix, traceDir, dp, opt, core.Sampling{})
}

// CellStoreKeySampled is CellStoreKey for a sampled cell: the sampling
// plan joins the key material (a zero plan reproduces CellStoreKey's
// exact-mode keys byte for byte).
func CellStoreKeySampled(warmup, measure uint64, mix []*synth.Workload, traceDir string, dp core.DesignPoint, opt core.Options, sp core.Sampling) (string, bool) {
	if opt.Sources != nil {
		return "", false
	}
	opt = opt.Normalized()
	m := cellKeyMaterial{
		Version:  ResultVersion,
		Warmup:   warmup,
		Measure:  measure,
		Design:   dp.String(),
		Profiles: make([]synth.Profile, len(mix)),
		Options: optionsKey{
			Cores:           opt.Cores,
			Air:             opt.Air,
			Shift:           opt.Shift,
			FDP:             opt.FDP,
			SweepBTBEntries: opt.SweepBTBEntries,
			HistoryPerCore:  opt.HistoryPerCore,
			EpochBlocks:     max(opt.EpochBlocks, 1),
		},
	}
	if sp.Enabled() {
		m.Sampling = &samplingKey{
			WindowInstr:       sp.WindowInstr,
			PeriodInstr:       sp.PeriodInstr,
			Windows:           sp.Windows,
			WindowWarmupInstr: sp.WindowWarmupInstr,
			JitterSeed:        sp.JitterSeed,
		}
	}
	for i, w := range mix {
		m.Profiles[i] = w.Prof
		dir := w.TraceDir
		if traceDir != "" {
			dir = traceDir
		}
		if dir == "" {
			continue
		}
		tk, ok := traceDirIdentity(i, dir)
		if !ok {
			return "", false
		}
		m.TraceDirs = append(m.TraceDirs, tk)
	}
	material, err := json.Marshal(m)
	if err != nil {
		return "", false
	}
	return store.Key(material), true
}

// traceDirIdentity lists a capture directory's trace files as key material.
func traceDirIdentity(slot int, dir string) (traceDirKey, bool) {
	files, err := trace.TraceFiles(dir)
	if err != nil {
		return traceDirKey{}, false
	}
	tk := traceDirKey{Slot: slot, Dir: dir, Files: make([]traceFileKey, 0, len(files))}
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			return traceDirKey{}, false
		}
		tk.Files = append(tk.Files, traceFileKey{Name: filepath.Base(f), Size: info.Size()})
	}
	return tk, true
}

// StoreEntry is the payload stored per cell: the measured stats plus the
// area-model outputs, everything a Result needs beyond its Config. All
// fields are plain exported numbers, and Go's float64 JSON round trip is
// exact (shortest-representation encoding), so a decoded entry formats
// byte-identically to the live run it replaced.
type StoreEntry struct {
	Stats        *frontend.Stats   `json:"stats"`
	PerCore      []*frontend.Stats `json:"per_core"`
	OverheadMM2  float64           `json:"overhead_mm2"`
	RelativeArea float64           `json:"relative_area"`
	// Sampled carries the sampling report of a sampled cell (nil for
	// exact runs, and absent from their serialized form).
	Sampled *SampledReport `json:"sampled,omitempty"`
}

// EncodeStoreEntry serializes a cell result for Store.Put.
func EncodeStoreEntry(e StoreEntry) ([]byte, error) { return json.Marshal(e) }

// DecodeStoreEntry parses a stored payload. Malformed or incomplete
// payloads (a schema change without a ResultVersion bump, say) report ok =
// false, which callers treat as a store miss.
func DecodeStoreEntry(payload []byte) (StoreEntry, bool) {
	var e StoreEntry
	if err := json.Unmarshal(payload, &e); err != nil || e.Stats == nil {
		return StoreEntry{}, false
	}
	return e, true
}
