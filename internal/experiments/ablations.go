package experiments

import (
	"context"
	"strconv"

	"confluence/internal/core"
	"confluence/internal/stats"
)

// The ablations go beyond the paper's figures, probing the design choices
// DESIGN.md calls out: SHIFT's lookahead depth (timeliness vs waste),
// shared vs private history (the paper's inter-core redundancy argument),
// and AirBTB bundle count versus the L1-I block count (the strict-sync
// choice). Like the figures, each sweep plans its whole grid first,
// executes it across the worker pool, then assembles rows in canonical
// (workload, config) order.

// AblationRow is one configuration's outcome on one workload.
type AblationRow struct {
	Workload string
	Config   string
	IPC      float64
	BTBMPKI  float64
	L1IMPKI  float64
}

// sweep plans Confluence over every (workload, option variant) pair and
// assembles one AblationRow per cell. configs yields the variant's label
// and options by index.
func (r *Runner) sweep(ctx context.Context, n int, configs func(int) (string, core.Options)) ([]AblationRow, error) {
	plan := r.NewPlan()
	for _, w := range r.Workloads {
		for i := 0; i < n; i++ {
			_, opt := configs(i)
			plan.Add(w, core.Confluence, opt)
		}
	}
	if err := plan.Execute(ctx); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, w := range r.Workloads {
		for i := 0; i < n; i++ {
			name, opt := configs(i)
			st, err := r.RunCtx(ctx, w, core.Confluence, opt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Workload: w.Prof.Name, Config: name,
				IPC: st.IPC(), BTBMPKI: st.BTBMPKI(), L1IMPKI: st.L1IMPKI(),
			})
		}
	}
	return rows, nil
}

// LookaheadSweep measures Confluence across SHIFT lookahead depths.
func (r *Runner) LookaheadSweep(ctx context.Context, depths []int) ([]AblationRow, error) {
	return r.sweep(ctx, len(depths), func(i int) (string, core.Options) {
		opt := r.options()
		opt.Shift.Lookahead = depths[i]
		return formatInt("lookahead=", depths[i]), opt
	})
}

// SharedVsPrivateHistory compares the paper's shared SHIFT history against
// per-core private instances (the sharing is an area play; performance
// should be close — the paper reports the same for PhantomBTB's shared
// variant).
func (r *Runner) SharedVsPrivateHistory(ctx context.Context) ([]AblationRow, error) {
	return r.sweep(ctx, 2, func(i int) (string, core.Options) {
		opt := r.options()
		opt.HistoryPerCore = i == 1
		if opt.HistoryPerCore {
			return "private-history", opt
		}
		return "shared-history", opt
	})
}

// BundleCountSweep varies AirBTB's bundle count relative to the 512 L1-I
// blocks. Fewer bundles than blocks breaks strict content synchronization
// (bundles for resident blocks get dropped early); more wastes storage.
func (r *Runner) BundleCountSweep(ctx context.Context, bundles []int) ([]AblationRow, error) {
	return r.sweep(ctx, len(bundles), func(i int) (string, core.Options) {
		opt := r.options()
		opt.Air.Bundles = bundles[i]
		return formatInt("bundles=", bundles[i]), opt
	})
}

// AblationTable formats ablation rows.
func AblationTable(title string, rows []AblationRow) *stats.Table {
	t := stats.NewTable(title, "Workload", "Config", "IPC", "BTB MPKI", "L1-I MPKI")
	for _, r := range rows {
		t.Row(r.Workload, r.Config, r.IPC, r.BTBMPKI, r.L1IMPKI)
	}
	return t
}

func formatInt(prefix string, v int) string {
	return prefix + strconv.Itoa(v)
}
