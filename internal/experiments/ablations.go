package experiments

import (
	"strconv"

	"confluence/internal/core"
	"confluence/internal/stats"
)

// The ablations go beyond the paper's figures, probing the design choices
// DESIGN.md calls out: SHIFT's lookahead depth (timeliness vs waste),
// shared vs private history (the paper's inter-core redundancy argument),
// and AirBTB bundle count versus the L1-I block count (the strict-sync
// choice).

// AblationRow is one configuration's outcome on one workload.
type AblationRow struct {
	Workload string
	Config   string
	IPC      float64
	BTBMPKI  float64
	L1IMPKI  float64
}

// LookaheadSweep measures Confluence across SHIFT lookahead depths.
func (r *Runner) LookaheadSweep(depths []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, w := range r.Workloads {
		for _, d := range depths {
			opt := r.options()
			opt.Shift.Lookahead = d
			st, err := r.Run(w, core.Confluence, opt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Workload: w.Prof.Name, Config: formatInt("lookahead=", d),
				IPC: st.IPC(), BTBMPKI: st.BTBMPKI(), L1IMPKI: st.L1IMPKI(),
			})
		}
	}
	return rows, nil
}

// SharedVsPrivateHistory compares the paper's shared SHIFT history against
// per-core private instances (the sharing is an area play; performance
// should be close — the paper reports the same for PhantomBTB's shared
// variant).
func (r *Runner) SharedVsPrivateHistory() ([]AblationRow, error) {
	var rows []AblationRow
	for _, w := range r.Workloads {
		for _, private := range []bool{false, true} {
			opt := r.options()
			opt.HistoryPerCore = private
			st, err := r.Run(w, core.Confluence, opt)
			if err != nil {
				return nil, err
			}
			name := "shared-history"
			if private {
				name = "private-history"
			}
			rows = append(rows, AblationRow{
				Workload: w.Prof.Name, Config: name,
				IPC: st.IPC(), BTBMPKI: st.BTBMPKI(), L1IMPKI: st.L1IMPKI(),
			})
		}
	}
	return rows, nil
}

// BundleCountSweep varies AirBTB's bundle count relative to the 512 L1-I
// blocks. Fewer bundles than blocks breaks strict content synchronization
// (bundles for resident blocks get dropped early); more wastes storage.
func (r *Runner) BundleCountSweep(bundles []int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, w := range r.Workloads {
		for _, n := range bundles {
			opt := r.options()
			opt.Air.Bundles = n
			st, err := r.Run(w, core.Confluence, opt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Workload: w.Prof.Name, Config: formatInt("bundles=", n),
				IPC: st.IPC(), BTBMPKI: st.BTBMPKI(), L1IMPKI: st.L1IMPKI(),
			})
		}
	}
	return rows, nil
}

// AblationTable formats ablation rows.
func AblationTable(title string, rows []AblationRow) *stats.Table {
	t := stats.NewTable(title, "Workload", "Config", "IPC", "BTB MPKI", "L1-I MPKI")
	for _, r := range rows {
		t.Row(r.Workload, r.Config, r.IPC, r.BTBMPKI, r.L1IMPKI)
	}
	return t
}

func formatInt(prefix string, v int) string {
	return prefix + strconv.Itoa(v)
}
