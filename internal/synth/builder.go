package synth

import (
	"fmt"
	"math"
	"math/rand/v2"

	"confluence/internal/isa"
	"confluence/internal/program"
)

// mathPow is a local alias keeping the generator arithmetic greppable.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }

// Workload couples a generated program with its request-execution model:
// per-request-type entry functions and the request mix. A workload may
// instead stand for a captured trace: TraceDir names a directory of
// per-core trace files replacing live execution, and Prog may be nil when
// the capture's program image is unavailable (external traces).
type Workload struct {
	Prof    Profile
	Prog    *program.Program
	Entries []*program.Function // Entries[r] is the entry of request type r
	mixCum  []float64           // cumulative Zipf mix over request types

	// TraceDir, when non-empty, replays the capture in that directory
	// through the timing model instead of walking Prog with executors
	// (see trace.OpenDirSource for the per-core striping semantics).
	TraceDir string
}

// PickRequest samples a request type from the workload mix.
func (w *Workload) PickRequest(rng *rand.Rand) int {
	x := rng.Float64()
	for i, c := range w.mixCum {
		if x < c {
			return i
		}
	}
	return len(w.mixCum) - 1
}

// NumRequestTypes returns the number of request types.
func (w *Workload) NumRequestTypes() int { return len(w.Entries) }

// IndirectStability exposes the profile's indirect-dispatch stability to the
// executor.
func (w *Workload) IndirectStability() float64 { return w.Prof.IndirectStability }

const (
	maxBlockLen   = 15 // fits the conventional BTB's 4-bit fall-through field
	imageBase     = isa.Addr(0x40_0000)
	sharedCluster = -1
)

// Build generates the program and workload for a profile. Generation is
// fully deterministic in Profile.Seed.
func Build(prof Profile) (*Workload, error) {
	if prof.Layers < 3 {
		return nil, fmt.Errorf("synth: need >=3 layers, got %d", prof.Layers)
	}
	if prof.RequestTypes < 1 || prof.Functions < prof.RequestTypes+prof.Layers {
		return nil, fmt.Errorf("synth: bad sizing (functions=%d requests=%d)", prof.Functions, prof.RequestTypes)
	}
	b := &builder{
		prof: prof,
		rng:  rand.New(rand.NewPCG(prof.Seed, 0x5eed)),
	}
	b.makeShells()
	// Generate bodies bottom-up so call sites always target existing bodies.
	for l := prof.Layers - 1; l >= 0; l-- {
		for _, f := range b.layers[l] {
			b.genFunction(f)
		}
	}
	b.layout()
	prog := &program.Program{Name: prof.Name, Base: imageBase, Funcs: b.funcs}
	if err := prog.Finalize(); err != nil {
		return nil, fmt.Errorf("synth: %s: %w", prof.Name, err)
	}
	w := &Workload{Prof: prof, Prog: prog}
	for _, f := range b.layers[0] {
		w.Entries = append(w.Entries, f)
	}
	w.mixCum = zipfCum(len(w.Entries), prof.ZipfTheta)
	return w, nil
}

type builder struct {
	prof   Profile
	rng    *rand.Rand
	funcs  []*program.Function
	layers [][]*program.Function
	// cluster[f.ID] is the request-type cluster of a mid-layer function
	// (sharedCluster for functions visible to all request types).
	cluster []int
	// calleePool[l][c] lists layer-l functions callable from cluster c
	// (cluster-c functions plus shared ones); poolCursor rotates through
	// each pool so every function is actually reachable — uniform random
	// draws would leave most of the program dead code.
	calleePool [][][]*program.Function
	poolCursor [][]int
	leafCum    []float64 // Zipf over leaf functions (hot shared primitives)
}

func (b *builder) makeShells() {
	p := b.prof
	nLeaf := int(float64(p.Functions) * p.LeafFrac)
	if nLeaf < p.Layers {
		nLeaf = p.Layers
	}
	nMidLayers := p.Layers - 2
	nMid := p.Functions - p.RequestTypes - nLeaf
	if nMid < nMidLayers*p.RequestTypes {
		nMid = nMidLayers * p.RequestTypes
	}
	perMid := nMid / nMidLayers

	b.layers = make([][]*program.Function, p.Layers)
	b.cluster = make([]int, 0, p.Functions+16)
	id := 0
	add := func(layer, cluster int) *program.Function {
		f := &program.Function{ID: id, Name: fmt.Sprintf("fn%d_L%d", id, layer), Layer: layer}
		id++
		b.funcs = append(b.funcs, f)
		b.layers[layer] = append(b.layers[layer], f)
		b.cluster = append(b.cluster, cluster)
		return f
	}
	for r := 0; r < p.RequestTypes; r++ {
		add(0, r)
	}
	for l := 1; l <= nMidLayers; l++ {
		nShared := int(float64(perMid) * p.SharedMidFrac)
		for i := 0; i < perMid; i++ {
			c := sharedCluster
			if i >= nShared {
				c = (i - nShared) % p.RequestTypes
			}
			add(l, c)
		}
	}
	for i := 0; i < nLeaf; i++ {
		add(p.Layers-1, sharedCluster)
	}

	// Precompute callee pools per (layer, cluster).
	b.calleePool = make([][][]*program.Function, p.Layers)
	b.poolCursor = make([][]int, p.Layers)
	for l := 1; l < p.Layers; l++ {
		pools := make([][]*program.Function, p.RequestTypes)
		cursors := make([]int, p.RequestTypes)
		var shared []*program.Function
		for _, f := range b.layers[l] {
			if b.cluster[f.ID] == sharedCluster {
				shared = append(shared, f)
			}
		}
		for c := 0; c < p.RequestTypes; c++ {
			var pool []*program.Function
			for _, f := range b.layers[l] {
				if b.cluster[f.ID] == c {
					pool = append(pool, f)
				}
			}
			pools[c] = append(pool, shared...)
			cursors[c] = b.rng.IntN(len(pools[c]) + 1)
		}
		b.calleePool[l] = pools
		b.poolCursor[l] = cursors
	}
	// Leaf popularity is Zipf but not extreme: a too-hot leaf set would sit
	// permanently in the L1-I and mask the workload's instruction-supply
	// pressure.
	b.leafCum = zipfCum(len(b.layers[p.Layers-1]), 0.5)
}

// zipfCum returns the cumulative Zipf(theta) distribution over n items.
func zipfCum(n int, theta float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1.0 / math.Pow(float64(i+1), theta)
		sum += w[i]
	}
	cum := make([]float64, n)
	acc := 0.0
	for i := range w {
		acc += w[i] / sum
		cum[i] = acc
	}
	return cum
}

func (b *builder) pickLeaf() *program.Function {
	x := b.rng.Float64()
	leaves := b.layers[b.prof.Layers-1]
	for i, c := range b.leafCum {
		if x < c {
			return leaves[i]
		}
	}
	return leaves[len(leaves)-1]
}

// pickCallee selects a static call target for a function in the given
// layer and cluster, rotating through the cluster's pool so the whole
// program is reachable.
func (b *builder) pickCallee(layer, cluster int) *program.Function {
	p := b.prof
	if layer >= p.Layers-2 || b.rng.Float64() < p.CallsToLeafFrac {
		return b.pickLeaf()
	}
	if cluster == sharedCluster {
		cluster = b.rng.IntN(p.RequestTypes)
	}
	pool := b.calleePool[layer+1][cluster]
	if len(pool) == 0 {
		pool = b.layers[layer+1]
		return pool[b.rng.IntN(len(pool))]
	}
	cur := &b.poolCursor[layer+1][cluster]
	f := pool[*cur%len(pool)]
	*cur++
	return f
}

// fnGen builds one function's structured CFG.
type fnGen struct {
	b         *builder
	f         *program.Function
	cur       *program.BasicBlock // open (unterminated) block, or nil
	loopDepth int                 // >0 while generating a loop body
}

func (b *builder) genFunction(f *program.Function) {
	g := &fnGen{b: b, f: f}
	budget := b.blocksBudget(f.Layer)
	g.open()
	g.genBody(budget, 0)
	// Epilogue: close with a return.
	g.ensureOpen()
	g.emit(1 + b.rng.IntN(2))
	g.close(&program.BranchSite{Kind: isa.BrRet})
}

func (b *builder) blocksBudget(layer int) int {
	m := b.prof.MeanBlocksPerFn
	// Request entry points are large dispatchers (parse, validate, lock,
	// plan, execute, log, commit, ...) fanning out into many subsystem
	// calls; the first service layer is wide too. This is what gives each
	// request a code footprint far beyond the L1-I.
	switch layer {
	case 0:
		m *= 8
	case 1:
		m *= 2
	case 2:
		m = m * 3 / 2
	case b.prof.Layers - 1:
		// Leaf primitives (copy, hash, latch, compare) are small and tight;
		// oversized leaves would soak up most dynamic instructions in a few
		// KB of permanently L1-I-resident code.
		m = max(3, m/3)
	}
	// Geometric-ish around the mean, min 3.
	n := 3 + geometric(b.rng, float64(m-3))
	if n > 4*m {
		n = 4 * m
	}
	return n
}

// geometric samples a geometric variate with the given mean (>=0).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1.0 / (mean + 1.0)
	n := 0
	for rng.Float64() >= p && n < 1024 {
		n++
	}
	return n
}

func (g *fnGen) open() *program.BasicBlock {
	blk := &program.BasicBlock{NInstr: 0}
	g.f.Blocks = append(g.f.Blocks, blk)
	g.cur = blk
	return blk
}

func (g *fnGen) ensureOpen() {
	if g.cur == nil {
		g.open()
	}
}

// emit appends n instructions to the open block, splitting at maxBlockLen.
func (g *fnGen) emit(n int) {
	g.ensureOpen()
	for n > 0 {
		room := maxBlockLen - g.cur.NInstr
		if room == 0 {
			g.open() // previous block falls through
			room = maxBlockLen
		}
		take := n
		if take > room {
			take = room
		}
		g.cur.NInstr += take
		n -= take
	}
}

// close terminates the open block with the branch site. The branch occupies
// one instruction slot.
func (g *fnGen) close(site *program.BranchSite) *program.BasicBlock {
	g.ensureOpen()
	if g.cur.NInstr >= maxBlockLen {
		g.open()
	}
	g.cur.NInstr++
	g.cur.Branch = site
	blk := g.cur
	g.cur = nil
	return blk
}

// genBody emits constructs until the block budget is spent. Control always
// falls out of the generator with an open block.
func (g *fnGen) genBody(budget, depth int) {
	p := g.b.prof
	isLeaf := g.f.Layer == p.Layers-1
	for budget > 0 {
		w := g.constructWeights(isLeaf, depth)
		switch pickWeighted(g.b.rng, w) {
		case cPlain:
			g.emit(g.blockLen())
			budget--
		case cIf:
			budget -= g.genIf(budget, depth)
		case cIfElse:
			budget -= g.genIfElse(budget, depth)
		case cLoop:
			budget -= g.genLoop(budget, depth)
		case cCall:
			budget -= g.genCall()
		case cSwitch:
			budget -= g.genSwitch(budget)
		}
	}
	g.ensureOpen()
}

type construct int

const (
	cPlain construct = iota
	cIf
	cIfElse
	cLoop
	cCall
	cSwitch
	numConstructs
)

func (g *fnGen) constructWeights(isLeaf bool, depth int) [numConstructs]float64 {
	p := g.b.prof
	w := [numConstructs]float64{
		cPlain: p.WPlain, cIf: p.WIf, cIfElse: p.WIfElse,
		cLoop: p.WLoop, cCall: p.WCall, cSwitch: p.WSwitch,
	}
	if isLeaf {
		w[cCall], w[cSwitch] = 0, 0 // leaves call nothing: terminates the graph
		w[cPlain] += p.WCall
		w[cLoop] *= 0.5 // primitive loops exist but don't dominate
	}
	if g.loopDepth > 0 {
		// Inner loops rarely fan out into deep call trees: per-iteration
		// work is mostly straight-line code plus hot primitives. Without
		// damping, loop trip counts compound multiplicatively through the
		// call graph and request lengths explode. DSS-style profiles relax
		// the damping for *driver* loops (layers 0-1): a TPC-H scan loop
		// re-walks a whole operator stack per tuple batch.
		scale := 0.2
		if g.f.Layer <= 1 {
			scale = p.LoopCallScale
		}
		w[cCall] *= scale
		w[cLoop] *= 0.3
		w[cSwitch] = 0
	}
	// Deep layers fan out less (utility code calls few things); this keeps
	// per-request call trees wide at the top but bounded overall.
	switch {
	case g.f.Layer >= 4:
		w[cCall] *= 0.35
	case g.f.Layer >= 3:
		w[cCall] *= 0.55
	}
	if depth >= 3 { // bound nesting
		w[cIf], w[cIfElse], w[cLoop], w[cSwitch] = 0, 0, 0, 0
	}
	return w
}

func pickWeighted(rng *rand.Rand, w [numConstructs]float64) construct {
	var sum float64
	for _, x := range w {
		sum += x
	}
	t := rng.Float64() * sum
	for i, x := range w {
		if t < x {
			return construct(i)
		}
		t -= x
	}
	return cPlain
}

func (g *fnGen) blockLen() int {
	n := 1 + geometric(g.b.rng, g.b.prof.MeanBlockLen-1)
	if n > maxBlockLen-1 {
		n = maxBlockLen - 1
	}
	return n
}

// genIf: test; cond-branch over body to join.
func (g *fnGen) genIf(budget, depth int) int {
	g.emit(g.blockLen())
	site := &program.BranchSite{Kind: isa.BrCond}
	if g.b.rng.Float64() < g.b.prof.ErrorCheckFrac {
		// Error check: the guarded body is skipped almost always.
		site.TakenBias = 0.985 + 0.014*g.b.rng.Float64()
	} else {
		// Common work: the body almost always runs.
		site.TakenBias = 0.002 + 0.018*g.b.rng.Float64()
	}
	g.close(site)
	inner := g.bodyBudget(budget - 2)
	g.open()
	g.genBody(inner, depth+1)
	join := g.joinBlock()
	site.TargetBlock = join
	return 2 + inner
}

// genIfElse: cond to else; then-body; jump to join; else-body; join.
func (g *fnGen) genIfElse(budget, depth int) int {
	g.emit(g.blockLen())
	cond := &program.BranchSite{Kind: isa.BrCond}
	if g.b.rng.Float64() < g.b.prof.MixedBiasFrac {
		cond.TakenBias = 0.3 + 0.4*g.b.rng.Float64() // data-dependent
	} else if g.b.rng.Float64() < 0.5 {
		cond.TakenBias = 0.95 + 0.04*g.b.rng.Float64() // else-side dominant
	} else {
		cond.TakenBias = 0.01 + 0.04*g.b.rng.Float64() // then-side dominant
	}
	g.close(cond)
	thenBudget := g.bodyBudget((budget - 4) / 2)
	elseBudget := g.bodyBudget((budget - 4) / 2)
	g.open()
	g.genBody(thenBudget, depth+1)
	g.emit(1)
	jmp := &program.BranchSite{Kind: isa.BrUncond}
	g.close(jmp)
	elseEntry := g.open()
	cond.TargetBlock = elseEntry
	g.genBody(elseBudget, depth+1)
	join := g.joinBlock()
	jmp.TargetBlock = join
	return 4 + thenBudget + elseBudget
}

// loopTrips draws a per-site characteristic trip count, log-uniform in
// [LoopTripMin, LoopTripMax].
func (g *fnGen) loopTrips() int {
	p := g.b.prof
	lo, hi := float64(p.LoopTripMin), float64(p.LoopTripMax)
	if hi <= lo {
		return p.LoopTripMin
	}
	t := lo * mathPow(hi/lo, g.b.rng.Float64())
	return int(t + 0.5)
}

// genLoop emits either a while-style loop (header cond exits forward, body
// jumps back) or a do-while (body, conditional back edge). The controlling
// conditional carries the site's characteristic trip count; the executor
// runs it quasi-deterministically, so trip counts — like real loop bounds —
// recur across requests.
func (g *fnGen) genLoop(budget, depth int) int {
	inner := g.bodyBudget(budget - 3)
	trips := g.loopTrips()
	g.loopDepth++
	if g.b.rng.Float64() < 0.5 {
		// while: header cond -> exit (taken = leave loop).
		header := g.joinBlock() // loop header begins a fresh block
		g.emit(1 + g.b.rng.IntN(3))
		exit := &program.BranchSite{
			Kind: isa.BrCond, Loop: program.LoopExitHeader, TripMean: trips,
			TakenBias: 1 / float64(trips+1),
		}
		g.close(exit)
		g.open()
		g.genBody(inner, depth+1)
		g.emit(1)
		back := &program.BranchSite{Kind: isa.BrUncond, TargetBlock: header}
		g.close(back)
		join := g.open()
		exit.TargetBlock = join
	} else {
		// do-while: body; cond back edge (taken = continue).
		entry := g.joinBlock()
		g.genBody(inner, depth+1)
		g.emit(1)
		back := &program.BranchSite{
			Kind: isa.BrCond, Loop: program.LoopBackEdge, TripMean: trips,
			TakenBias:   float64(trips) / float64(trips+1),
			TargetBlock: entry,
		}
		g.close(back)
		g.open()
	}
	g.loopDepth--
	return 3 + inner
}

// genCall closes the open block with a (possibly indirect) call site.
// Calls inside loop bodies go to hot leaf primitives only (per-tuple /
// per-byte work), bounding dynamic request size.
func (g *fnGen) genCall() int {
	p := g.b.prof
	g.emit(g.blockLen())
	cluster := g.b.cluster[g.f.ID]
	if g.loopDepth > 0 && (p.LoopCallLeafOnly || g.f.Layer > 1) {
		g.close(&program.BranchSite{Kind: isa.BrCall, TargetBlock: g.b.pickLeaf().Entry()})
		g.open()
		return 2
	}
	if g.b.rng.Float64() < p.IndirectCallFrac && g.f.Layer < p.Layers-2 {
		site := &program.BranchSite{Kind: isa.BrIndCall}
		k := 2 + g.b.rng.IntN(p.IndirectFanout)
		seen := map[*program.Function]bool{}
		for len(site.TargetBlocks) < k {
			callee := g.b.pickCallee(g.f.Layer, cluster)
			if seen[callee] {
				if len(seen) >= k { // pool exhausted
					break
				}
				continue
			}
			seen[callee] = true
			site.TargetBlocks = append(site.TargetBlocks, callee.Entry())
		}
		g.close(site)
	} else {
		callee := g.b.pickCallee(g.f.Layer, cluster)
		g.close(&program.BranchSite{Kind: isa.BrCall, TargetBlock: callee.Entry()})
	}
	g.open()
	return 2
}

// genSwitch: indirect jump to one of k case bodies, each jumping to a join.
func (g *fnGen) genSwitch(budget int) int {
	g.emit(g.blockLen())
	sw := &program.BranchSite{Kind: isa.BrIndirect}
	g.close(sw)
	k := 3 + g.b.rng.IntN(4)
	if k > budget-1 {
		k = max(2, budget-1)
	}
	var jumps []*program.BranchSite
	for i := 0; i < k; i++ {
		caseEntry := g.open()
		sw.TargetBlocks = append(sw.TargetBlocks, caseEntry)
		g.emit(g.blockLen())
		j := &program.BranchSite{Kind: isa.BrUncond}
		g.close(j)
		jumps = append(jumps, j)
	}
	join := g.open()
	for _, j := range jumps {
		j.TargetBlock = join
	}
	return 1 + k
}

// joinBlock returns the current open block if it is still empty (making it a
// valid branch target) or opens a fresh one.
func (g *fnGen) joinBlock() *program.BasicBlock {
	if g.cur != nil && g.cur.NInstr == 0 {
		return g.cur
	}
	return g.open()
}

func (g *fnGen) bodyBudget(remaining int) int {
	if remaining < 1 {
		return 1
	}
	n := 1 + g.b.rng.IntN(min(remaining, 6))
	return n
}

// layout assigns addresses: functions sequential in ID order, each aligned
// to 16B, blocks contiguous within a function; then resolves symbolic
// targets to addresses.
func (b *builder) layout() {
	addr := imageBase
	for _, f := range b.funcs {
		if addr%16 != 0 {
			addr += 16 - addr%16
		}
		for _, blk := range f.Blocks {
			blk.Addr = addr
			addr += isa.Addr(blk.NInstr * isa.InstrBytes)
		}
	}
	for _, f := range b.funcs {
		for _, blk := range f.Blocks {
			br := blk.Branch
			if br == nil {
				continue
			}
			if br.TargetBlock != nil {
				br.Target = br.TargetBlock.Addr
			}
			for _, tb := range br.TargetBlocks {
				br.Targets = append(br.Targets, tb.Addr)
			}
		}
	}
	// Drop zero-length trailing open blocks (created by joins at function
	// end that never received content — the epilogue guarantees the real
	// final block is a return, so empties can only appear mid-stream where
	// a join was immediately followed by another join).
	for _, f := range b.funcs {
		kept := f.Blocks[:0]
		for _, blk := range f.Blocks {
			if blk.NInstr > 0 {
				kept = append(kept, blk)
			}
		}
		f.Blocks = kept
	}
}
