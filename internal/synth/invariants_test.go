package synth

import (
	"testing"

	"confluence/internal/isa"
)

// TestImagePredecodeMatchesStaticSites is the invariant Confluence's fill
// path stands on: predecoding the binary image of any block recovers
// exactly the static branch sites laid out there — same offsets, kinds,
// and (for direct branches) targets. It cross-checks the whole generator →
// layout → encoder → predecoder chain.
func TestImagePredecodeMatchesStaticSites(t *testing.T) {
	w := buildTest(t)
	prog := w.Prog

	// Collect static truth per cache block.
	type site struct {
		kind   isa.BranchKind
		target isa.Addr
		direct bool
	}
	want := map[isa.Addr]site{}
	for _, b := range prog.Blocks() {
		if b.Branch == nil {
			continue
		}
		want[b.Branch.PC] = site{
			kind:   b.Branch.Kind,
			target: b.Branch.Target,
			direct: b.Branch.Kind.IsDirect(),
		}
	}

	img, base := prog.Image()
	found := 0
	for off := 0; off < len(img); off += isa.BlockBytes {
		block := base + isa.Addr(off)
		for _, pb := range prog.PredecodeBlock(block) {
			pc := pb.PC(block)
			s, ok := want[pc]
			if !ok {
				t.Fatalf("predecoder found a branch at %#x that the CFG does not have", pc)
			}
			if pb.Kind != s.kind {
				t.Fatalf("branch at %#x: predecoded %v, static %v", pc, pb.Kind, s.kind)
			}
			if s.direct && pb.Target != s.target {
				t.Fatalf("branch at %#x: predecoded target %#x, static %#x", pc, pb.Target, s.target)
			}
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("predecoder recovered %d of %d static branches", found, len(want))
	}
}

// TestExecutedPathStaysInImage walks a long trace and checks every fetched
// byte range lies inside the program image (no wild fetch regions).
func TestExecutedPathStaysInImage(t *testing.T) {
	w := buildTest(t)
	img, base := w.Prog.Image()
	end := base + isa.Addr(len(img))
	for _, b := range w.Prog.Blocks() {
		if b.Addr < base || b.End() > end {
			t.Fatalf("block [%#x,%#x) outside image [%#x,%#x)", b.Addr, b.End(), base, end)
		}
	}
}

// TestDispatcherTablesWithinCluster verifies indirect dispatch tables only
// name callable functions (no dangling dispatch).
func TestDispatcherTablesWithinCluster(t *testing.T) {
	w := buildTest(t)
	for _, f := range w.Prog.Funcs {
		for _, b := range f.Blocks {
			br := b.Branch
			if br == nil || (br.Kind != isa.BrIndCall && br.Kind != isa.BrIndirect) {
				continue
			}
			if len(br.TargetBlocks) < 2 && br.Kind == isa.BrIndCall {
				t.Errorf("dispatch at %#x has %d targets", br.PC, len(br.TargetBlocks))
			}
			for _, tb := range br.TargetBlocks {
				if tb.Func == nil {
					t.Fatalf("dispatch target without function at %#x", br.PC)
				}
				if br.Kind == isa.BrIndCall && tb != tb.Func.Entry() {
					t.Errorf("indirect call at %#x targets mid-function %#x", br.PC, tb.Addr)
				}
			}
		}
	}
}
