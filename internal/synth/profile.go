// Package synth generates synthetic server workloads: layered call graphs
// (deep software stacks), structured per-function control flow (if/else,
// loops, switches, calls, indirect dispatch), and a request-type-driven
// execution model.
//
// It substitutes for the commercial workload traces used by the paper
// (TPC-C on DB2/Oracle, TPC-H, Darwin streaming, Apache). The generator is
// calibrated against the workload properties the paper actually measures:
// instruction-footprint / BTB-entry working sets (Fig 1), static and
// dynamic branch density per 64B block (Table 2), multi-hundred-KB
// instruction footprints that defy a 32KB L1-I, highly predictable branch
// directions, and recurring request-level control flow — the temporal
// streams SHIFT exploits.
package synth

// Profile parameterizes one synthetic workload.
type Profile struct {
	Name string
	Seed uint64

	// Static structure.
	Layers          int     // call-graph depth (layer 0 = request entries)
	Functions       int     // total functions across all layers
	LeafFrac        float64 // fraction of functions in the shared leaf layer
	MeanBlocksPerFn int     // mean basic-block budget per function
	MeanBlockLen    float64 // mean non-branch instructions per basic block

	// Construct mix (relative weights while generating a function body).
	WPlain, WIf, WIfElse, WLoop, WCall, WSwitch float64

	// Branch behaviour. Non-loop conditionals are strongly biased (server
	// branch directions are highly predictable); loops get per-site
	// quasi-deterministic trip counts drawn log-uniformly from
	// [LoopTripMin, LoopTripMax].
	ErrorCheckFrac  float64 // if-sites that are rarely-taken error checks
	MixedBiasFrac   float64 // if/else sites with data-dependent 30-70% bias
	LoopTripMin     int
	LoopTripMax     int
	CallsToLeafFrac float64 // call sites that target the shared leaf layer
	// Loop bodies normally call only hot leaf primitives (bounding dynamic
	// request size); DSS-style per-tuple operator stacks relax that.
	LoopCallLeafOnly  bool
	LoopCallScale     float64 // call-weight multiplier inside loop bodies
	IndirectCallFrac  float64 // call sites using indirect dispatch
	IndirectFanout    int     // dispatch-table width
	IndirectStability float64 // P(indirect site resolves to its per-request target)

	// Request structure.
	RequestTypes  int
	SharedMidFrac float64 // mid-layer functions shared across request types
	ZipfTheta     float64 // request-mix skew (low = flat mix, large active set)
	// Concurrency is how many in-flight requests (connections) the core
	// time-slices; QuantumInstr the mean scheduling quantum. Interleaving
	// concurrent requests' code paths is what makes server instruction
	// working sets defy the L1-I.
	Concurrency  int
	QuantumInstr int

	// Timing calibration consumed by the frontend model. BackendCPI is the
	// constant data-side CPI adder (OoO backend, constant across frontend
	// configs); Exposure scales raw L1-I miss latency to the fraction the
	// core actually stalls (ROB/MSHR hiding).
	BackendCPI float64
	Exposure   float64
}

// Profiles returns the five server workload profiles evaluated in the
// paper, calibrated (see DESIGN.md §2) so that:
//
//   - BTB MPKI curves flatten around 16K entries (32K for OLTP-Oracle), Fig 1;
//   - static branches per 64B block ≈ Table 2 (DB2 3.6, Oracle 2.5, DSS 3.4,
//     Media 3.5, Web 4.3);
//   - instruction footprints span several hundred KB to ~1MB, far beyond a
//     32KB L1-I.
func Profiles() []Profile {
	return []Profile{
		OLTPDB2(), OLTPOracle(), DSS(), MediaStreaming(), WebFrontend(),
	}
}

// ExtendedProfiles returns every available workload profile: the paper's
// five plus the post-paper scale-out scenarios (KeyValue, Microservices).
// Experiment runners that reproduce the paper's figures use Profiles; the
// CLIs and the library accept any extended profile by name.
func ExtendedProfiles() []Profile {
	return append(Profiles(), KeyValue(), Microservices())
}

// ProfileByName returns the named profile (searching the extended suite)
// and whether it exists.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range ExtendedProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// TraceProfile returns the calibration profile used when a workload is a
// replayed capture rather than a generated program: the timing knobs the
// frontend consumes (BackendCPI, Exposure) at their suite-typical values,
// with no generator parameters. Callers replaying a capture of a known
// synthetic workload should prefer that workload's own profile.
func TraceProfile(name string) Profile {
	p := base()
	p.Name = name
	return p
}

func base() Profile {
	return Profile{
		Layers:            6,
		LeafFrac:          0.2,
		WPlain:            0.14,
		WIf:               0.16,
		WIfElse:           0.1,
		WLoop:             0.05,
		WCall:             0.48,
		WSwitch:           0.03,
		ErrorCheckFrac:    0.5,
		MixedBiasFrac:     0.08,
		LoopTripMin:       4,
		LoopTripMax:       20,
		CallsToLeafFrac:   0.15,
		LoopCallLeafOnly:  true,
		LoopCallScale:     0.2,
		IndirectCallFrac:  0.06,
		IndirectFanout:    6,
		IndirectStability: 0.94,
		SharedMidFrac:     0.2,
		ZipfTheta:         0.4,
		Concurrency:       16,
		QuantumInstr:      4500,
		BackendCPI:        0.62,
		Exposure:          0.95,
	}
}

// OLTPDB2 models TPC-C on IBM DB2: large footprint, dense branches.
func OLTPDB2() Profile {
	p := base()
	p.Name = "OLTP-DB2"
	p.Seed = 0x1db2
	p.Functions = 3600
	p.MeanBlocksPerFn = 11
	p.MeanBlockLen = 3.0
	p.RequestTypes = 20
	return p
}

// OLTPOracle models TPC-C on Oracle: the largest instruction working set in
// the suite (the one workload that benefits from >16K BTB entries), with
// longer basic blocks (lower branch density, Table 2: 2.5/block).
func OLTPOracle() Profile {
	p := base()
	p.Name = "OLTP-Oracle"
	p.Seed = 0x9acf
	p.Functions = 7000
	p.MeanBlocksPerFn = 11
	p.MeanBlockLen = 5.0
	p.RequestTypes = 26
	p.BackendCPI = 0.72
	return p
}

// DSS models TPC-H decision-support queries: smaller code footprint, heavy
// scan loops (long trip counts), few request types (the queries).
func DSS() Profile {
	p := base()
	p.Name = "DSS-Qrys"
	p.Seed = 0xd55
	p.Functions = 3000
	p.MeanBlocksPerFn = 10
	p.MeanBlockLen = 3.3
	p.RequestTypes = 6
	p.WLoop = 0.1
	p.WCall = 0.42
	p.LoopTripMin = 4
	p.LoopTripMax = 48
	p.Concurrency = 8
	p.QuantumInstr = 2500
	p.LoopCallLeafOnly = false // per-tuple operator stacks
	p.LoopCallScale = 1.0
	p.BackendCPI = 0.55
	return p
}

// MediaStreaming models the Darwin streaming server: moderate footprint,
// packet-pump loops.
func MediaStreaming() Profile {
	p := base()
	p.Name = "Media-Streaming"
	p.Seed = 0x3d1a
	p.Functions = 3400
	p.MeanBlocksPerFn = 10
	p.MeanBlockLen = 3.2
	p.RequestTypes = 14
	p.WLoop = 0.09
	p.WCall = 0.44
	p.LoopTripMax = 40
	p.Concurrency = 16
	p.QuantumInstr = 2500
	p.LoopCallLeafOnly = false // per-packet codec/IO stacks
	p.LoopCallScale = 0.8
	return p
}

// WebFrontend models Apache + fastCGI: the densest branch population in the
// suite (Table 2: 4.3/block) with many small handler functions.
func WebFrontend() Profile {
	p := base()
	p.Name = "Web-Frontend"
	p.Seed = 0x3eb
	p.Functions = 3200
	p.MeanBlocksPerFn = 11
	p.MeanBlockLen = 2.3
	p.RequestTypes = 16
	p.ErrorCheckFrac = 0.55
	return p
}

// KeyValue models a memcached/redis-style in-memory store: a moderate code
// footprint dominated by a few hot operations over a highly skewed mix,
// very many cheap concurrent connections with short scheduling quanta, and
// a low-CPI backend (requests barely touch memory). The interesting regime
// is the opposite corner from OLTP: the per-request path is short, so the
// interleaving of connections — not any single request — is what builds
// the instruction working set.
func KeyValue() Profile {
	p := base()
	p.Name = "KeyValue"
	p.Seed = 0x6b76 // "kv"
	p.Functions = 2600
	p.MeanBlocksPerFn = 9
	p.MeanBlockLen = 2.8
	p.RequestTypes = 8 // GET/SET/DEL/INCR/... op mix
	p.ZipfTheta = 0.8  // hot ops dominate
	p.ErrorCheckFrac = 0.6
	p.Concurrency = 32
	p.QuantumInstr = 1200
	p.LoopTripMax = 12 // short key/value copy loops
	p.BackendCPI = 0.45
	return p
}

// Microservices models an RPC-heavy service mesh node: deep software
// stacks (serialization, transport, middleware layers), many distinct
// endpoint handlers with a flat request mix, and heavy indirect dispatch
// through interface/vtable-style call sites — the branch population that
// stresses the ITC and BTB hardest.
func Microservices() Profile {
	p := base()
	p.Name = "Microservices"
	p.Seed = 0x757c // "usvc"
	p.Layers = 7
	p.Functions = 4200
	p.MeanBlocksPerFn = 10
	p.MeanBlockLen = 2.6
	p.RequestTypes = 24
	p.ZipfTheta = 0.25 // flat endpoint mix: large active code set
	p.IndirectCallFrac = 0.12
	p.IndirectFanout = 8
	p.IndirectStability = 0.9
	p.SharedMidFrac = 0.35 // shared RPC/serialization middleware
	p.Concurrency = 24
	p.QuantumInstr = 3000
	p.BackendCPI = 0.68
	return p
}
