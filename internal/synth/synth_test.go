package synth

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"confluence/internal/isa"
	"confluence/internal/program"
)

// testProfile is a small, fast-to-build workload for tests.
func testProfile() Profile {
	p := base()
	p.Name = "test"
	p.Seed = 42
	p.Functions = 320
	p.MeanBlocksPerFn = 9
	p.MeanBlockLen = 3.0
	p.RequestTypes = 4
	p.Concurrency = 4
	p.QuantumInstr = 800
	return p
}

func buildTest(t *testing.T) *Workload {
	t.Helper()
	w, err := Build(testProfile())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return w
}

func TestBuildAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size workload builds in -short mode")
	}
	for _, prof := range ExtendedProfiles() {
		w, err := Build(prof)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if w.Prog.FootprintBytes() < 200<<10 {
			t.Errorf("%s: footprint %d KB is too small to stress a 32KB L1-I",
				prof.Name, w.Prog.FootprintBytes()>>10)
		}
		if got := w.NumRequestTypes(); got != prof.RequestTypes {
			t.Errorf("%s: %d request types, want %d", prof.Name, got, prof.RequestTypes)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range ExtendedProfiles() {
		got, ok := ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("ProfileByName(%q) failed", p.Name)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	ai, _ := a.Prog.Image()
	bi, _ := b.Prog.Image()
	if !bytes.Equal(ai, bi) {
		t.Error("same seed produced different programs")
	}
}

func TestBuildSeedChangesProgram(t *testing.T) {
	p1 := testProfile()
	p2 := testProfile()
	p2.Seed = 43
	a, _ := Build(p1)
	b, _ := Build(p2)
	ai, _ := a.Prog.Image()
	bi, _ := b.Prog.Image()
	if bytes.Equal(ai, bi) {
		t.Error("different seeds produced identical programs")
	}
}

func TestBranchDensityNearTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size workload builds in -short mode")
	}
	targets := map[string]float64{
		"OLTP-DB2": 3.6, "OLTP-Oracle": 2.5, "DSS-Qrys": 3.4,
		"Media-Streaming": 3.5, "Web-Frontend": 4.3,
	}
	for _, prof := range Profiles() {
		w, err := Build(prof)
		if err != nil {
			t.Fatal(err)
		}
		got := w.Prog.StaticStats().PerBlock
		want := targets[prof.Name]
		if math.Abs(got-want) > 0.45 {
			t.Errorf("%s: static branches/block = %.2f, want ≈ %.1f (Table 2)",
				prof.Name, got, want)
		}
	}
}

func TestLayeringIsAcyclic(t *testing.T) {
	w := buildTest(t)
	// Direct calls and dispatch targets must always go to a strictly deeper
	// layer — this is what bounds the call stack and forbids recursion.
	for _, f := range w.Prog.Funcs {
		for _, b := range f.Blocks {
			br := b.Branch
			if br == nil {
				continue
			}
			check := func(tb *program.BasicBlock) {
				if tb.Func.Layer <= f.Layer && br.Kind.IsCall() {
					t.Fatalf("call from layer %d (%s) to layer %d (%s)",
						f.Layer, f.Name, tb.Func.Layer, tb.Func.Name)
				}
			}
			if br.Kind.IsCall() {
				if br.TargetBlock != nil {
					check(br.TargetBlock)
				}
				for _, tb := range br.TargetBlocks {
					check(tb)
				}
			}
		}
	}
}

func TestLeafFunctionsDoNotCall(t *testing.T) {
	w := buildTest(t)
	last := w.Prof.Layers - 1
	for _, f := range w.Prog.Funcs {
		if f.Layer != last {
			continue
		}
		for _, b := range f.Blocks {
			if b.Branch != nil && b.Branch.Kind.IsCall() {
				t.Fatalf("leaf function %s contains a call", f.Name)
			}
		}
	}
}

func TestBlockLengthBounded(t *testing.T) {
	w := buildTest(t)
	for _, b := range w.Prog.Blocks() {
		if b.NInstr < 1 || b.NInstr > maxBlockLen+1 {
			t.Fatalf("block at %#x has %d instructions", b.Addr, b.NInstr)
		}
	}
}

func TestEveryFunctionEndsInReturn(t *testing.T) {
	w := buildTest(t)
	for _, f := range w.Prog.Funcs {
		lastBlock := f.Blocks[len(f.Blocks)-1]
		if lastBlock.Branch == nil || lastBlock.Branch.Kind != isa.BrRet {
			t.Fatalf("function %s does not end in ret", f.Name)
		}
	}
}

func TestLoopSitesHaveTripMeans(t *testing.T) {
	w := buildTest(t)
	prof := w.Prof
	loops := 0
	for _, b := range w.Prog.Blocks() {
		br := b.Branch
		if br == nil || br.Loop == program.NotLoop {
			continue
		}
		loops++
		if br.Kind != isa.BrCond {
			t.Fatalf("loop site at %#x is %v, want cond", br.PC, br.Kind)
		}
		if br.TripMean < prof.LoopTripMin-1 || br.TripMean > prof.LoopTripMax+1 {
			t.Fatalf("loop at %#x: trip mean %d outside [%d,%d]",
				br.PC, br.TripMean, prof.LoopTripMin, prof.LoopTripMax)
		}
	}
	if loops == 0 {
		t.Fatal("no loops generated")
	}
}

func TestMostFunctionsReachable(t *testing.T) {
	w := buildTest(t)
	// Walk the static call graph from all entries; the cursor-based callee
	// selection exists precisely so generated code is not dead.
	seen := map[*program.Function]bool{}
	var walk func(f *program.Function)
	walk = func(f *program.Function) {
		if seen[f] {
			return
		}
		seen[f] = true
		for _, b := range f.Blocks {
			br := b.Branch
			if br == nil || !br.Kind.IsCall() {
				continue
			}
			if br.TargetBlock != nil {
				walk(br.TargetBlock.Func)
			}
			for _, tb := range br.TargetBlocks {
				walk(tb.Func)
			}
		}
	}
	for _, e := range w.Entries {
		walk(e)
	}
	frac := float64(len(seen)) / float64(len(w.Prog.Funcs))
	if frac < 0.7 {
		t.Errorf("only %.0f%% of functions reachable from request entries", 100*frac)
	}
}

func TestRequestMixIsNormalized(t *testing.T) {
	w := buildTest(t)
	rng := rand.New(rand.NewPCG(1, 1))
	counts := make([]int, w.NumRequestTypes())
	for i := 0; i < 20000; i++ {
		counts[w.PickRequest(rng)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("request type %d never picked", i)
		}
	}
	// Zipf: type 0 must be the most common.
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[0]*2 {
			t.Errorf("mix not Zipf-shaped: counts=%v", counts)
		}
	}
}

func TestBuildRejectsBadConfigs(t *testing.T) {
	p := testProfile()
	p.Layers = 2
	if _, err := Build(p); err == nil {
		t.Error("too few layers: want error")
	}
	p = testProfile()
	p.Functions = 3
	if _, err := Build(p); err == nil {
		t.Error("too few functions: want error")
	}
}

func TestZipfCum(t *testing.T) {
	cum := zipfCum(5, 1.0)
	if len(cum) != 5 {
		t.Fatal("wrong length")
	}
	if math.Abs(cum[4]-1.0) > 1e-9 {
		t.Errorf("cumulative distribution must end at 1, got %v", cum[4])
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] <= cum[i-1] {
			t.Error("cumulative distribution must be increasing")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	const mean = 6.0
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(geometric(rng, mean))
	}
	got := sum / n
	if math.Abs(got-mean) > 0.3 {
		t.Errorf("geometric mean = %.2f, want ≈ %.1f", got, mean)
	}
}

func TestAirBundleFitsMostBlocks(t *testing.T) {
	// The paper sizes 3-entry bundles because ~50% of blocks hold ≤3
	// branches; our generator must reproduce that rough property or the
	// Figure 10 sensitivity loses its meaning.
	w := buildTest(t)
	img, base := w.Prog.Image()
	within := 0
	total := 0
	for off := 0; off < len(img); off += isa.BlockBytes {
		n := len(w.Prog.PredecodeBlock(base + isa.Addr(off)))
		if n == 0 {
			continue
		}
		total++
		if n <= 3 {
			within++
		}
	}
	frac := float64(within) / float64(total)
	if frac < 0.3 || frac > 0.95 {
		t.Errorf("%.0f%% of blocks hold ≤3 branches; want a middling fraction", 100*frac)
	}
}
