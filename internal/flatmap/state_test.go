package flatmap

import (
	"reflect"
	"testing"
)

func TestStateRoundTrip(t *testing.T) {
	m := New[uint64](64)
	for k := uint64(1); k <= 40; k++ {
		m.Put(k*7, k)
	}
	for k := uint64(1); k <= 10; k++ {
		m.Delete(k * 7)
	}
	st, vals := m.ExportState()

	fresh := New[uint64](64)
	if err := fresh.RestoreState(st, vals); err != nil {
		t.Fatal(err)
	}
	st2, vals2 := fresh.ExportState()
	if !reflect.DeepEqual(st, st2) || !reflect.DeepEqual(vals, vals2) {
		t.Error("re-exported state differs from the snapshot")
	}
	if fresh.Len() != m.Len() {
		t.Errorf("restored Len = %d, want %d", fresh.Len(), m.Len())
	}
	for k := uint64(11); k <= 40; k++ {
		if v, ok := fresh.Get(k * 7); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v after restore, want %d", k*7, v, ok, k)
		}
	}
	// Probe layout restores verbatim: the deterministic Keys walk must
	// visit entries in the same order as the live table.
	if !reflect.DeepEqual(m.Keys(nil), fresh.Keys(nil)) {
		t.Error("Keys order differs after restore")
	}
}

func TestStateRestoreRejectsMismatch(t *testing.T) {
	m := New[uint64](64)
	m.Put(1, 1)
	st, vals := m.ExportState()

	if err := New[uint64](1024).RestoreState(st, vals); err == nil {
		t.Error("restore into a differently sized table succeeded")
	}
	if err := New[uint64](64).RestoreState(st, vals[:len(vals)-1]); err == nil {
		t.Error("restore with a short values slice succeeded")
	}
}
