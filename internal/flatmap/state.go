package flatmap

import "fmt"

// MapState is the serializable fixed-shape state of a Map, captured for
// warm-up snapshots. The raw arrays are exported verbatim rather than
// rebuilt by re-insertion: slot layout depends on insertion order (probe
// chains), and a bit-identical restore must preserve it so later
// Keys/Slot walks visit entries in the same order as the live table.
// The parallel values slice travels separately (see ExportState), so
// owners of unexported value types can convert them for serialization.
type MapState struct {
	Keys []uint64
	Live []uint64
	N    int
	Mask uint64
}

// ExportState deep-copies the table's state; the returned values slice
// is parallel to State.Keys (one entry per slot, live per State.Live).
func (m *Map[V]) ExportState() (MapState, []V) {
	return MapState{
		Keys: append([]uint64(nil), m.keys...),
		Live: append([]uint64(nil), m.live...),
		N:    m.n,
		Mask: m.mask,
	}, append([]V(nil), m.vals...)
}

// RestoreState overwrites the table's contents from a snapshot. The
// snapshot's slot count must match the table's (both are fixed by the
// construction-time capacity hint, which the snapshot key pins).
func (m *Map[V]) RestoreState(st MapState, vals []V) error {
	if len(st.Keys) != len(m.keys) || st.Mask != m.mask {
		return fmt.Errorf("flatmap: snapshot has %d slots, table has %d", len(st.Keys), len(m.keys))
	}
	if len(vals) != len(m.vals) || len(st.Live) != len(m.live) {
		return fmt.Errorf("flatmap: snapshot arrays malformed")
	}
	copy(m.keys, st.Keys)
	copy(m.vals, vals)
	copy(m.live, st.Live)
	m.n = st.N
	m.lastOK = false
	return nil
}
