package flatmap

import (
	"math/rand"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	m := New[int](4)
	if _, ok := m.Get(7); ok {
		t.Fatal("empty map found a key")
	}
	m.Put(7, 70)
	m.Put(8, 80)
	if v, ok := m.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = %d, %v", v, ok)
	}
	m.Put(7, 71)
	if v, _ := m.Get(7); v != 71 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Delete(7) || m.Delete(7) {
		t.Fatal("Delete semantics wrong")
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := m.Get(8); !ok || v != 80 {
		t.Fatalf("sibling key lost after delete: %d, %v", v, ok)
	}
}

func TestUpsertInPlace(t *testing.T) {
	m := New[float64](4)
	p, existed := m.Upsert(42)
	if existed || *p != 0 {
		t.Fatalf("first upsert: existed=%v val=%v", existed, *p)
	}
	*p = 3.5
	p2, existed := m.Upsert(42)
	if !existed || *p2 != 3.5 {
		t.Fatalf("second upsert: existed=%v val=%v", existed, *p2)
	}
}

func TestZeroKeyIsValid(t *testing.T) {
	m := New[string](2)
	m.Put(0, "zero")
	if v, ok := m.Get(0); !ok || v != "zero" {
		t.Fatalf("key 0 unsupported: %q, %v", v, ok)
	}
	m.Delete(0)
	if m.Contains(0) {
		t.Fatal("key 0 not deleted")
	}
}

// TestAgainstGoMap drives the table through a long random op sequence and
// checks every observable against a reference Go map, exercising growth,
// collision chains, and backward-shift deletion.
func TestAgainstGoMap(t *testing.T) {
	m := New[uint64](0)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	// A narrow key space forces constant collisions and delete-churn.
	for op := 0; op < 200_000; op++ {
		k := uint64(rng.Intn(512))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			m.Put(k, v)
			ref[k] = v
		case 1:
			got, ok := m.Get(k)
			want, wok := ref[k]
			if ok != wok || got != want {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, got, ok, want, wok)
			}
		case 2:
			if m.Delete(k) != (func() bool { _, ok := ref[k]; return ok })() {
				t.Fatalf("op %d: Delete(%d) disagreed", op, k)
			}
			delete(ref, k)
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
	keys := m.Keys(nil)
	if len(keys) != len(ref) {
		t.Fatalf("Keys returned %d, want %d", len(keys), len(ref))
	}
	for _, k := range keys {
		if _, ok := ref[k]; !ok {
			t.Fatalf("Keys yielded phantom %d", k)
		}
	}
}

// TestKeysOrderDeterministic pins that two tables built by the same
// insertion history walk keys identically — the property the simulator's
// determinism contract relies on.
func TestKeysOrderDeterministic(t *testing.T) {
	build := func() []uint64 {
		m := New[int](0)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			k := rng.Uint64() % 997
			if i%3 == 2 {
				m.Delete(k)
			} else {
				m.Put(k, i)
			}
		}
		return m.Keys(nil)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPresizedNeverGrows(t *testing.T) {
	m := New[int](1000)
	slots := m.Slots()
	for i := 0; i < 1000; i++ {
		m.Put(uint64(i), i)
	}
	if m.Slots() != slots {
		t.Fatalf("pre-sized table grew: %d -> %d", slots, m.Slots())
	}
}

func TestClear(t *testing.T) {
	m := New[int](4)
	for i := 0; i < 10; i++ {
		m.Put(uint64(i), i)
	}
	m.Clear()
	if m.Len() != 0 || m.Contains(3) {
		t.Fatal("Clear left entries")
	}
	m.Put(3, 33)
	if v, _ := m.Get(3); v != 33 {
		t.Fatal("map unusable after Clear")
	}
}

func BenchmarkMapPutGetDelete(b *testing.B) {
	m := New[float64](4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i) % 4096
		m.Put(k, float64(i))
		m.Get(k)
		m.Delete(k)
	}
}
