// Package flatmap provides a flat, open-addressed hash table used by the
// simulator's per-instruction hot paths in place of Go maps.
//
// The design goals, in order:
//
//  1. Determinism: slot assignment depends only on the keys inserted (via a
//     fixed splitmix64 finalizer), and every whole-table walk (Keys) visits
//     slots in ascending order — no Go-map iteration randomness can leak
//     into simulated statistics.
//  2. Zero steady-state allocation: Get/Ptr/Upsert/Delete never allocate;
//     the backing arrays grow only when occupancy crosses the load factor,
//     which sized-on-construction tables never do.
//  3. Tombstone-free deletion: Delete uses backward-shift compaction, so
//     long-lived tables do not degrade under churn the way tombstone
//     schemes do.
//
// The table is linear-probed and power-of-two sized with a 3/4 maximum load
// factor. Values are stored inline; Ptr/Upsert expose the slot's value in
// place for read-modify-write without a second probe. Slot pointers are
// invalidated by any subsequent Put/Upsert/Delete/Clear.
package flatmap

// Map is an open-addressed uint64-keyed hash table with inline values.
// The zero value is not usable; call New.
type Map[V any] struct {
	keys []uint64
	vals []V
	live []uint64 // occupancy bitset: 64 slots per word, stays L1-resident
	n    int
	mask uint64

	// last/lastOK cache the most recently probed key's slot. Linear-probe
	// insertion writes only into empty slots — live entries never move on
	// Put/Upsert — so the cached slot stays valid until a Delete
	// (backward-shift moves entries), grow, or Clear. Back-to-back
	// operations on one key (the dominant pattern on simulator hot paths:
	// lookup-then-train on the same block) skip the hash and probe chain.
	last   uint64
	lastS  uint64
	lastOK bool
}

const minSlots = 8

// Hash is the splitmix64 finalizer: a fixed, well-mixed, invertible hash for
// uint64 keys. Exported so sibling flat structures (cache.InFlight) share
// the exact same slot assignment function.
func Hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// New creates a table pre-sized to hold capacityHint entries without
// growing (the backing array is the next power of two ≥ 4/3·capacityHint).
func New[V any](capacityHint int) *Map[V] {
	slots := minSlots
	for 3*slots < 4*capacityHint {
		slots *= 2
	}
	m := &Map[V]{}
	m.init(slots)
	return m
}

func (m *Map[V]) init(slots int) {
	m.keys = make([]uint64, slots)
	m.vals = make([]V, slots)
	m.live = make([]uint64, (slots+63)/64)
	m.mask = uint64(slots - 1)
	m.n = 0
}

func (m *Map[V]) isLive(i uint64) bool { return m.live[i>>6]&(1<<(i&63)) != 0 }
func (m *Map[V]) setLive(i uint64)     { m.live[i>>6] |= 1 << (i & 63) }
func (m *Map[V]) clearLive(i uint64)   { m.live[i>>6] &^= 1 << (i & 63) }

// Len returns the number of entries.
func (m *Map[V]) Len() int { return m.n }

// Slots returns the backing array size (tests and sizing diagnostics).
func (m *Map[V]) Slots() int { return len(m.keys) }

// probe returns the slot holding key, or the empty slot where it would be
// inserted, and whether it was found.
func (m *Map[V]) probe(key uint64) (uint64, bool) {
	if m.lastOK && key == m.last {
		return m.lastS, true
	}
	i := Hash(key) & m.mask
	for m.isLive(i) {
		if m.keys[i] == key {
			m.last, m.lastS, m.lastOK = key, i, true
			return i, true
		}
		i = (i + 1) & m.mask
	}
	return i, false
}

// Get returns the value for key.
func (m *Map[V]) Get(key uint64) (V, bool) {
	i, ok := m.probe(key)
	if !ok {
		var zero V
		return zero, false
	}
	return m.vals[i], true
}

// Ptr returns a pointer to key's value in place, or nil when absent.
func (m *Map[V]) Ptr(key uint64) *V {
	i, ok := m.probe(key)
	if !ok {
		return nil
	}
	return &m.vals[i]
}

// Contains reports whether key is present.
func (m *Map[V]) Contains(key uint64) bool {
	_, ok := m.probe(key)
	return ok
}

// Put inserts or overwrites key's value.
func (m *Map[V]) Put(key uint64, val V) {
	p, _ := m.Upsert(key)
	*p = val
}

// Upsert returns a pointer to key's value, inserting a zero value first when
// absent, plus whether the key already existed. The single-probe
// read-modify-write primitive (e.g. InFlight's min-completion-time Add).
func (m *Map[V]) Upsert(key uint64) (*V, bool) {
	i, ok := m.probe(key)
	if ok {
		return &m.vals[i], true
	}
	if 4*(m.n+1) > 3*len(m.keys) {
		m.grow()
		i, _ = m.probe(key)
	}
	var zero V
	m.keys[i], m.vals[i] = key, zero
	m.setLive(i)
	m.n++
	m.last, m.lastS, m.lastOK = key, i, true
	return &m.vals[i], false
}

func (m *Map[V]) grow() {
	keys, vals, live := m.keys, m.vals, m.live
	m.init(2 * len(keys))
	m.lastOK = false // cached slot refers to the old arrays
	for i := range keys {
		if live[i>>6]&(1<<(uint(i)&63)) != 0 {
			j, _ := m.probe(keys[i])
			m.keys[j], m.vals[j] = keys[i], vals[i]
			m.setLive(j)
			m.n++
		}
	}
}

// Delete removes key using backward-shift compaction and reports whether it
// was present.
func (m *Map[V]) Delete(key uint64) bool {
	i, ok := m.probe(key)
	if !ok {
		return false
	}
	m.n--
	m.lastOK = false // backward-shift may move any entry of the chain
	// Backward-shift: close the hole at i by sliding displaced entries of
	// the same probe chain back toward their home slots.
	var zero V
	for {
		m.clearLive(i)
		m.vals[i] = zero // drop references held by pointer-bearing values
		j := i
		for {
			j = (j + 1) & m.mask
			if !m.isLive(j) {
				return true
			}
			// The entry at j may fill the hole at i iff its home slot is
			// cyclically outside (i, j] — otherwise moving it would break
			// its own probe chain.
			home := Hash(m.keys[j]) & m.mask
			if (j-home)&m.mask >= (j-i)&m.mask {
				break
			}
		}
		m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
		m.setLive(i)
		i = j
	}
}

// Clear removes all entries, keeping capacity.
func (m *Map[V]) Clear() {
	clear(m.live)
	clear(m.vals)
	m.n = 0
	m.lastOK = false
}

// Slot exposes slot i for closure-free ordered scans (see InFlight.Expire):
// ok reports whether the slot is live, and val points at its value while it
// remains live. Slot indices cover [0, Slots()); walking them ascending
// yields the same deterministic order as Keys.
func (m *Map[V]) Slot(i int) (key uint64, val *V, ok bool) {
	if !m.isLive(uint64(i)) {
		return 0, nil, false
	}
	return m.keys[i], &m.vals[i], true
}

// Keys appends all keys to dst in ascending slot order — a deterministic
// order fixed by the insertion history, independent of Go map semantics —
// and returns the extended slice.
func (m *Map[V]) Keys(dst []uint64) []uint64 {
	for i := range m.keys {
		if m.isLive(uint64(i)) {
			dst = append(dst, m.keys[i])
		}
	}
	return dst
}
