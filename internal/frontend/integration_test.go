package frontend

import (
	"testing"

	"confluence/internal/airbtb"
	"confluence/internal/btb"
	"confluence/internal/fdp"
	"confluence/internal/isa"
	"confluence/internal/trace"
)

func TestTwoLevelBubbleAccounting(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectL1I = true
	cfg.BTB = btb.NewTwoLevel("2L", 1, 1, 64, 4, 3)
	c := NewCore(cfg)
	a := uncondRec(0x1000, 3, 0x2000)
	bb := uncondRec(0x2000, 3, 0x1000)
	c.Step(&a) // cold miss: misfetch
	c.Step(&bb)
	base := c.Stats().BubbleCycles
	// `a` was evicted from the 1-entry L1-BTB by `b`; re-fetching it hits
	// the L2 and exposes the bubble — the paper's central criticism.
	c.Step(&a)
	if got := c.Stats().BubbleCycles - base; got != 3 {
		t.Errorf("L2-BTB bubble = %v cycles, want 3", got)
	}
	// No misfetch though: the L2 supplied the target.
	if c.Stats().BTBMisses != 2 {
		t.Errorf("BTBMisses = %d, want 2 (cold only)", c.Stats().BTBMisses)
	}
}

func TestHistoryRecorderDedupsConsecutive(t *testing.T) {
	var recorded []uint64
	cfg := testConfig()
	cfg.PerfectBTB = true
	cfg.Recorder = recorderFunc(func(b uint64) { recorded = append(recorded, b) })
	c := NewCore(cfg)
	// Three basic blocks in the same 64B cache block: one history record.
	c.Step(&trace.Record{Start: 0x1000, N: 3})
	c.Step(&trace.Record{Start: 0x100C, N: 3})
	c.Step(&trace.Record{Start: 0x1018, N: 3})
	// A different block, then back: two more records (only *consecutive*
	// duplicates collapse at the recorder level).
	c.Step(&trace.Record{Start: 0x2000, N: 3})
	c.Step(&trace.Record{Start: 0x1000, N: 3})
	want := []uint64{0x1000 >> 6, 0x2000 >> 6, 0x1000 >> 6}
	if len(recorded) != len(want) {
		t.Fatalf("recorded %v, want %v", recorded, want)
	}
	for i := range want {
		if recorded[i] != want[i] {
			t.Fatalf("recorded %v, want %v", recorded, want)
		}
	}
}

type recorderFunc func(uint64)

func (f recorderFunc) Record(b uint64) { f(b) }

func TestAirBTBSyncThroughFrontend(t *testing.T) {
	// Wire a real AirBTB through the frontend's fill/evict hooks using a
	// tiny two-block program image and verify the sync hooks fire.
	cfg := testConfig()
	air := airbtb.New(airbtb.DefaultConfig())
	cfg.BTB = air
	c := NewCore(cfg)
	c.Step(&trace.Record{Start: 0x40_0000, N: 3})
	if air.Fills != 1 {
		t.Fatalf("Fills = %d after one block fetch", air.Fills)
	}
	if !air.HasBundle(0x40_0000) {
		t.Fatal("bundle not installed on L1-I fill")
	}
	// No program image wired: the bundle is empty but present (the sync
	// contract is about block identity, not payload).
	if got := c.L1I().Len(); got != air.Resident() {
		t.Errorf("L1-I holds %d blocks, AirBTB %d bundles", got, air.Resident())
	}
}

func TestPredecodePenaltyChargedOnDemandOnly(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectBTB = true
	cfg.PredecodePenalty = 2
	c := NewCore(cfg)
	c.Step(&trace.Record{Start: 0x1000, N: 3})
	st := c.Stats()
	if st.PredecodeCycles != 2 { // exposure 1
		t.Errorf("PredecodeCycles = %v, want 2", st.PredecodeCycles)
	}
	// Demand stall includes the predecode time.
	if st.L1IStallCycles != 108 { // 106 fill + 2 predecode
		t.Errorf("stall = %v, want 108", st.L1IStallCycles)
	}
}

func TestFDPIntegrationCoversSequentialMisses(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectBTB = true
	cfg.Prefetcher = fdp.New(fdp.DefaultConfig())
	c := NewCore(cfg)

	// Walk 64 sequential blocks twice; FDP prefetches each region with its
	// banked lookahead, converting full stalls into partial ones.
	walk := func() {
		for i := 0; i < 64; i++ {
			rec := trace.Record{Start: isa.Addr(0x40_0000 + i*64), N: 16}
			c.Step(&rec)
		}
	}
	walk()
	noFDPStall := 64.0 * 106 // what a prefetch-free cold walk would cost
	if got := c.Stats().L1IStallCycles; got >= noFDPStall {
		t.Errorf("FDP saved nothing: stall=%v", got)
	}
	if c.Stats().PrefIssued == 0 || c.Stats().PrefUseful == 0 {
		t.Error("FDP issued/used no prefetches")
	}
}

func TestRedirectResetsFDP(t *testing.T) {
	cfg := testConfig()
	f := fdp.New(fdp.DefaultConfig())
	cfg.Prefetcher = f
	cfg.PerfectL1I = true
	c := NewCore(cfg)
	// A misfetch (BTB-missed taken branch) must reset FDP's run-ahead.
	rec := uncondRec(0x1000, 3, 0x2000)
	c.Step(&rec)
	if f.Redirects != 1 {
		t.Errorf("Redirects = %d after misfetch", f.Redirects)
	}
}

func TestScrubDiscardsStalePrefetches(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectBTB = true
	stub := &stubPrefetcher{block: 0x9_0000, delay: 0}
	cfg.Prefetcher = stub
	c := NewCore(cfg)
	c.Step(&trace.Record{Start: 0x1000, N: 3}) // fires a never-used prefetch
	// Drive enough steps for the periodic scrub to age the entry out.
	for i := 0; i < (1<<14)+8; i++ {
		c.Step(&trace.Record{Start: 0x1004, N: 3})
	}
	if c.inflight.Len() != 0 {
		t.Errorf("stale prefetch never scrubbed (len=%d)", c.inflight.Len())
	}
	if c.Stats().PrefDiscarded == 0 {
		t.Error("PrefDiscarded not counted")
	}
}

func TestBTBTakenLookupCounting(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectL1I = true
	c := NewCore(cfg)
	c.Step(&trace.Record{Start: 0x1000, N: 3,
		Br: trace.BranchInfo{PC: 0x1008, Kind: isa.BrCond, Taken: true, Target: 0x2000}})
	c.Step(&trace.Record{Start: 0x3000, N: 3,
		Br: trace.BranchInfo{PC: 0x3008, Kind: isa.BrCond, Taken: false, Target: 0x2000}})
	c.Step(&trace.Record{Start: 0x4000, N: 3}) // no branch
	st := c.Stats()
	if st.BTBTakenLookups != 1 {
		t.Errorf("BTBTakenLookups = %d, want 1", st.BTBTakenLookups)
	}
	if st.CondBranches != 2 {
		t.Errorf("CondBranches = %d, want 2", st.CondBranches)
	}
}
