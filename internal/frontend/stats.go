package frontend

// Stats aggregates one core's (or a whole CMP's) measured activity. All
// cycle fields are in core cycles; counters cover the measurement window
// only (warmup resets them).
type Stats struct {
	Instructions uint64
	Records      uint64 // basic blocks executed
	Requests     uint64
	Cycles       float64

	// Cycle decomposition (sums to Cycles).
	IssueCycles     float64 // fetch/issue-limited time
	BackendCycles   float64 // constant data-side CPI adder
	BubbleCycles    float64 // multi-level BTB access bubbles
	MisfetchCycles  float64 // decode-time redirects from BTB misses
	ResolveCycles   float64 // execute-time redirects (direction/RAS/ITC)
	L1IStallCycles  float64 // exposed instruction-fetch stalls
	PredecodeCycles float64 // demand-fill predecode (Confluence)

	// Branch events.
	CondBranches    uint64
	TakenBranches   uint64
	BTBTakenLookups uint64
	BTBMisses       uint64 // taken branch, entry absent (paper's definition)
	DirMispredicts  uint64
	RASMispredicts  uint64
	ITCMispredicts  uint64

	// Instruction-fetch events.
	L1IAccesses uint64
	L1IMisses   uint64 // true misses (not covered by a fill in flight)
	L1IFills    uint64
	DemandFills uint64

	// Prefetching.
	PrefIssued    uint64
	PrefUseful    uint64 // materialized before (or at) demand access
	PrefLate      uint64 // demand access waited on an in-flight fill
	PrefDiscarded uint64 // aged out unused
}

// IPC returns instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / s.Cycles
}

// CPI returns cycles per instruction.
func (s *Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return s.Cycles / float64(s.Instructions)
}

// BTBMPKI returns BTB misses per kilo-instruction.
func (s *Stats) BTBMPKI() float64 { return s.perKilo(s.BTBMisses) }

// L1IMPKI returns L1-I misses per kilo-instruction.
func (s *Stats) L1IMPKI() float64 { return s.perKilo(s.L1IMisses) }

// DirMPKI returns direction mispredictions per kilo-instruction.
func (s *Stats) DirMPKI() float64 { return s.perKilo(s.DirMispredicts) }

func (s *Stats) perKilo(n uint64) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(n) / float64(s.Instructions) * 1000
}

// Sub removes other from s — the mirror image of Add, used by the
// sampled mode to compute one measurement window's delta from two
// cumulative captures. The subtraction is deterministic (same inputs,
// same order, same result); cycle fields may carry ordinary
// floating-point rounding relative to a window simulated in isolation,
// which is far below the sampling error the mode already accepts.
func (s *Stats) Sub(o *Stats) {
	s.Instructions -= o.Instructions
	s.Records -= o.Records
	s.Requests -= o.Requests
	s.Cycles -= o.Cycles
	s.IssueCycles -= o.IssueCycles
	s.BackendCycles -= o.BackendCycles
	s.BubbleCycles -= o.BubbleCycles
	s.MisfetchCycles -= o.MisfetchCycles
	s.ResolveCycles -= o.ResolveCycles
	s.L1IStallCycles -= o.L1IStallCycles
	s.PredecodeCycles -= o.PredecodeCycles
	s.CondBranches -= o.CondBranches
	s.TakenBranches -= o.TakenBranches
	s.BTBTakenLookups -= o.BTBTakenLookups
	s.BTBMisses -= o.BTBMisses
	s.DirMispredicts -= o.DirMispredicts
	s.RASMispredicts -= o.RASMispredicts
	s.ITCMispredicts -= o.ITCMispredicts
	s.L1IAccesses -= o.L1IAccesses
	s.L1IMisses -= o.L1IMisses
	s.L1IFills -= o.L1IFills
	s.DemandFills -= o.DemandFills
	s.PrefIssued -= o.PrefIssued
	s.PrefUseful -= o.PrefUseful
	s.PrefLate -= o.PrefLate
	s.PrefDiscarded -= o.PrefDiscarded
}

// Add accumulates other into s (multi-core aggregation).
func (s *Stats) Add(o *Stats) {
	s.Instructions += o.Instructions
	s.Records += o.Records
	s.Requests += o.Requests
	s.Cycles += o.Cycles
	s.IssueCycles += o.IssueCycles
	s.BackendCycles += o.BackendCycles
	s.BubbleCycles += o.BubbleCycles
	s.MisfetchCycles += o.MisfetchCycles
	s.ResolveCycles += o.ResolveCycles
	s.L1IStallCycles += o.L1IStallCycles
	s.PredecodeCycles += o.PredecodeCycles
	s.CondBranches += o.CondBranches
	s.TakenBranches += o.TakenBranches
	s.BTBTakenLookups += o.BTBTakenLookups
	s.BTBMisses += o.BTBMisses
	s.DirMispredicts += o.DirMispredicts
	s.RASMispredicts += o.RASMispredicts
	s.ITCMispredicts += o.ITCMispredicts
	s.L1IAccesses += o.L1IAccesses
	s.L1IMisses += o.L1IMisses
	s.L1IFills += o.L1IFills
	s.DemandFills += o.DemandFills
	s.PrefIssued += o.PrefIssued
	s.PrefUseful += o.PrefUseful
	s.PrefLate += o.PrefLate
	s.PrefDiscarded += o.PrefDiscarded
}
