// Package frontend is the per-core timing model: it consumes a core's
// retire-order basic-block stream and charges cycles for issue, backend
// data stalls, BTB bubbles, misfetches, mispredict resolutions, and exposed
// L1-I miss latency, while driving the configured BTB design and
// instruction prefetcher (DESIGN.md §5 documents the model and its
// simplifications).
package frontend

import (
	"confluence/internal/bpu"
	"confluence/internal/btb"
	"confluence/internal/cache"
	"confluence/internal/isa"
	"confluence/internal/mem"
	"confluence/internal/prefetch"
	"confluence/internal/program"
	"confluence/internal/trace"
)

// HistoryRecorder receives the L1-I block access stream (consecutive
// duplicates already collapsed); SHIFT's shared history implements it on
// the generator core.
type HistoryRecorder interface {
	Record(blockNumber uint64)
}

// MemPort is the core's window onto the shared memory hierarchy: demand
// misses and prefetch schedules obtain their fill latency through it. The
// default is the wired *mem.Hierarchy directly; the CMP's epoch engine
// swaps in a probe-and-log port (mem.BoundPort) for bound phases, so cores
// can step concurrently against frozen shared state while the real LLC
// mutations are replayed in canonical order at the weave barrier.
type MemPort interface {
	AccessLatency(core int, block isa.Addr) (cycles int, llcHit bool)
}

// Config assembles one core's frontend.
type Config struct {
	CoreID int

	// ASID is the core's address-space slot under workload consolidation
	// (Config.Mix): keys entering structures shared across cores — the LLC
	// and the SHIFT history — are tagged with isa.ASIDBase(ASID) so distinct
	// programs compete on capacity instead of aliasing at identical virtual
	// addresses. Zero (every homogeneous run) is the identity.
	ASID int

	// Pipeline parameters (defaults per the paper's Table 1 core).
	IssueWidth      float64 // 3-way
	MisfetchPenalty float64 // BTB-miss redirect at decode: 4 cycles
	ResolvePenalty  float64 // execute-time redirect: ~14 cycles (15-stage)
	// PredecodePenalty is added to demand-fill latency when the frontend
	// must scan a block before insertion (Confluence, §3.2).
	PredecodePenalty float64

	// L1-I geometry (paper: 32KB, 4-way, 64B blocks).
	L1ISets, L1IWays int

	// Direction/target predictors (paper: 16K-entry hybrid, 64-entry RAS,
	// 1K-entry ITC).
	PredictorEntries int
	RASEntries       int
	ITCEntries       int

	// Idealizations (the paper's "Ideal" frontend).
	PerfectL1I bool
	PerfectBTB bool

	// Workload timing calibration.
	BackendCPI float64
	Exposure   float64

	// Wiring.
	BTB        btb.Design          // nil only with PerfectBTB
	Prefetcher prefetch.Prefetcher // nil means none
	Hier       *mem.Hierarchy      // shared; nil only with PerfectL1I
	Prog       *program.Program    // for block predecode on fills
	Recorder   HistoryRecorder     // non-nil on SHIFT's generator core
}

// DefaultConfig returns the paper's core parameters with the wiring left
// empty.
func DefaultConfig() Config {
	return Config{
		IssueWidth:       3,
		MisfetchPenalty:  4,
		ResolvePenalty:   14,
		L1ISets:          128, // 32KB / 64B / 4 ways
		L1IWays:          4,
		PredictorEntries: 16 << 10,
		RASEntries:       64,
		ITCEntries:       1 << 10,
		BackendCPI:       1.0,
		Exposure:         0.42,
	}
}

// Core is one core's frontend state.
type Core struct {
	cfg Config

	hybrid *bpu.Hybrid
	ras    *bpu.RAS
	itc    *bpu.ITC

	l1i      *cache.Cache
	inflight *cache.InFlight

	cycle     float64
	st        Stats
	lastBlock uint64 // history dedup
	hasLast   bool
	steps     uint64 // for periodic in-flight table scrubbing

	// ffCt holds the fast-forward probe tallies (fast.go); not part of st,
	// and kept out of the hot cluster above — only FastStep touches it.
	ffCt FFCounts

	// Address-space tag forms (from cfg.ASID): asBase ORs into addresses
	// crossing into the shared LLC, keyTag into block keys recorded to the
	// shared history. Both are zero outside heterogeneous mixes.
	asBase isa.Addr
	keyTag uint64

	// halfLLCLat caches half the average LLC latency: an in-flight fill
	// with at least this much residual wait counts as an effective miss.
	halfLLCLat float64

	// reqs is the reusable prefetch-request scratch buffer threaded through
	// OnAccess/OnRegion (append-into-dst), so the per-instruction path
	// issues prefetches without allocating. Requests are consumed by
	// schedule before the next prefetcher call, so one buffer suffices.
	reqs []prefetch.Request

	// issueTab[n] = float64(n)/IssueWidth for small n, precomputed with the
	// same division so results are bit-identical — saves an fdiv per block
	// (basic blocks are short; larger n falls back to dividing).
	issueTab [64]float64

	// port, when non-nil, overrides cfg.Hier for shared-memory latencies
	// (bound phases). Nil keeps the direct, devirtualized hierarchy call on
	// the hot path.
	port MemPort
}

// NewCore builds a core from its config.
func NewCore(cfg Config) *Core {
	c := &Core{
		cfg:    cfg,
		hybrid: bpu.NewHybrid(cfg.PredictorEntries),
		ras:    bpu.NewRAS(cfg.RASEntries),
		itc:    bpu.NewITC(cfg.ITCEntries),
		reqs:   make([]prefetch.Request, 0, 32),
		asBase: isa.ASIDBase(cfg.ASID),
	}
	c.keyTag = uint64(c.asBase) >> isa.BlockShift
	if !cfg.PerfectL1I {
		c.l1i = cache.New(cfg.L1ISets, cfg.L1IWays)
		c.inflight = cache.NewInFlight()
		c.halfLLCLat = 0.5 * cfg.Hier.AvgLLCLatency(cfg.CoreID)
	}
	for n := range c.issueTab {
		c.issueTab[n] = float64(n) / cfg.IssueWidth
	}
	return c
}

// Stats returns the counters accumulated since the last ResetStats.
func (c *Core) Stats() *Stats { return &c.st }

// ResetStats zeroes the measurement counters at the warmup boundary;
// architectural state (caches, predictors, history) is preserved.
func (c *Core) ResetStats() {
	c.st = Stats{}
	c.hybrid.ResetStats()
	if c.l1i != nil {
		c.l1i.ResetStats()
	}
}

// Cycle returns the core's absolute cycle clock.
func (c *Core) Cycle() float64 { return c.cycle }

// L1I exposes the instruction cache (AirBTB synchronization tests).
func (c *Core) L1I() *cache.Cache { return c.l1i }

// Prefetcher exposes the wired prefetcher (diagnostics).
func (c *Core) Prefetcher() prefetch.Prefetcher { return c.cfg.Prefetcher }

// BTB exposes the wired BTB design (diagnostics).
func (c *Core) BTB() btb.Design { return c.cfg.BTB }

// Recorder returns the currently wired history recorder (nil on non-
// generator cores).
func (c *Core) Recorder() HistoryRecorder { return c.cfg.Recorder }

// SetRecorder replaces the history recorder — the epoch engine wraps a
// generator core's recorder in a deferring log for bound-weave runs.
func (c *Core) SetRecorder(r HistoryRecorder) { c.cfg.Recorder = r }

// SetMemPort routes shared-memory latencies through p instead of the wired
// hierarchy; nil restores the direct path. Swapping the port changes where
// LLC state lives in time (probe-and-log vs immediate), not the latency
// function, so a port answering from live state is bit-identical to nil.
func (c *Core) SetMemPort(p MemPort) { c.port = p }

// fillLatency returns the shared-hierarchy latency for a block access
// (demand or prefetch), through the bound port when one is installed.
func (c *Core) fillLatency(b isa.Addr) int {
	if c.port != nil {
		lat, _ := c.port.AccessLatency(c.cfg.CoreID, b)
		return lat
	}
	lat, _ := c.cfg.Hier.AccessLatency(c.cfg.CoreID, b)
	return lat
}

func blockKey(b isa.Addr) uint64 { return uint64(b) >> isa.BlockShift }

// Step processes one executed basic block.
func (c *Core) Step(rec *trace.Record) {
	now := c.cycle
	st := &c.st
	st.Records++
	st.Instructions += uint64(rec.N)
	if rec.ReqBoundary {
		st.Requests++
	}

	first := isa.BlockOf(rec.Start)
	last := first
	if rec.N > 1 {
		last = isa.BlockOf(rec.Start + isa.Addr((rec.N-1)*isa.InstrBytes))
	}

	// Materialize fills that completed before this block's fetch so the
	// BTB lookup below sees state Confluence would have installed already.
	if !c.cfg.PerfectL1I {
		for b := first; b <= last; b += isa.BlockBytes {
			if c.inflight.TakeIfReady(blockKey(b), now) {
				st.PrefUseful++
				c.fill(now, b, false)
			}
		}
	}

	var penalty float64
	redirect := false

	if br := rec.Br; br.Kind.IsBranch() {
		penalty, redirect = c.predict(now, rec)
		if !c.cfg.PerfectBTB {
			c.cfg.BTB.Resolve(now, rec.Start, rec.N, br)
		}
	}

	// BPU emits the fetch region; FDP banks its run-ahead from it.
	if pf := c.cfg.Prefetcher; pf != nil {
		c.reqs = pf.OnRegion(now, rec.Start, rec.N, c.reqs[:0])
		c.schedule(now, c.reqs)
	}

	var stall float64
	if !c.cfg.PerfectL1I {
		for b := first; b <= last; b += isa.BlockBytes {
			stall += c.access(now, b)
		}
	}

	// A redirect penalty for this block overlaps with waiting for the same
	// block's instructions to arrive: the misfetch is discovered while the
	// fill is in progress. Charge the larger of the two, not the sum.
	extra := stall
	if penalty > extra {
		extra = penalty
	}

	if redirect {
		if pf := c.cfg.Prefetcher; pf != nil {
			pf.Redirect(now + extra)
		}
	}

	var issue float64
	if uint(rec.N) < uint(len(c.issueTab)) {
		issue = c.issueTab[rec.N]
	} else {
		issue = float64(rec.N) / c.cfg.IssueWidth
	}
	if issue < 1 {
		issue = 1 // the BPU produces one fetch region per cycle
	}
	backend := float64(rec.N) * c.cfg.BackendCPI
	dt := issue + backend + extra
	c.cycle += dt
	st.Cycles += dt
	st.IssueCycles += issue
	st.BackendCycles += backend

	c.steps++
	if c.steps%(1<<14) == 0 && c.inflight != nil {
		c.scrub(now)
	}
}

// predict runs the BPU for the block's terminating branch, returning the
// penalty cycles and whether the pipeline redirected.
func (c *Core) predict(now float64, rec *trace.Record) (extra float64, redirect bool) {
	st := &c.st
	br := rec.Br

	var res btb.Result
	if c.cfg.PerfectBTB {
		res = btb.Result{Hit: true}
	} else {
		res = c.cfg.BTB.Lookup(now, rec.Start, br.PC)
	}
	extra += res.Bubble
	st.BubbleCycles += res.Bubble

	if br.Taken {
		st.TakenBranches++
		st.BTBTakenLookups++
		if !res.Hit {
			st.BTBMisses++
		}
	}

	// misfetch / resolveFlush outcomes, applied after the kind dispatch.
	// (Plain booleans instead of the previous closures: closures forced the
	// accumulators into addressable stack slots on the hottest branch path.)
	misfetch, resolve := false, false

	switch br.Kind {
	case isa.BrCond:
		st.CondBranches++
		_, correct := c.hybrid.PredictAndUpdate(br.PC, br.Taken)
		switch {
		case res.Hit && !correct:
			st.DirMispredicts++
			resolve = true
		case !res.Hit && br.Taken:
			// BTB miss: the BPU assumed sequential flow. Decode discovers
			// the branch; if the direction predictor agrees "taken" the
			// redirect costs the misfetch penalty, otherwise the branch
			// resolves at execute.
			if correct {
				misfetch = true
			} else {
				st.DirMispredicts++
				resolve = true
			}
		}
		// BTB miss + not taken: the sequential assumption was right.

	case isa.BrUncond, isa.BrCall:
		if !res.Hit {
			misfetch = true
		}
		if br.Kind == isa.BrCall {
			c.ras.Push(br.PC + isa.InstrBytes)
		}

	case isa.BrRet:
		target, ok := c.ras.Pop()
		rasOK := ok && target == br.Target
		switch {
		case !rasOK:
			st.RASMispredicts++
			resolve = true
		case !res.Hit:
			misfetch = true
		}

	case isa.BrIndirect, isa.BrIndCall:
		pt, ok := c.itc.Predict(br.PC)
		itcOK := ok && pt == br.Target
		c.itc.Update(br.PC, br.Target)
		switch {
		case !itcOK:
			st.ITCMispredicts++
			resolve = true
		case !res.Hit:
			misfetch = true
		}
		if br.Kind == isa.BrIndCall {
			c.ras.Push(br.PC + isa.InstrBytes)
		}
	}
	if misfetch {
		extra += c.cfg.MisfetchPenalty
		st.MisfetchCycles += c.cfg.MisfetchPenalty
		redirect = true
	}
	if resolve {
		extra += c.cfg.ResolvePenalty
		st.ResolveCycles += c.cfg.ResolvePenalty
		redirect = true
	}
	return extra, redirect
}

// access performs one demand L1-I block access, returning exposed stall
// cycles.
func (c *Core) access(now float64, b isa.Addr) float64 {
	st := &c.st
	st.L1IAccesses++
	key := blockKey(b)
	hit := c.l1i.Lookup(key)
	var stall float64
	switch {
	case hit:
	default:
		if ready, ok := c.inflight.Take(key); ok {
			// A fill is in flight: wait out the residual latency only. A
			// barely-started fill is still an effective miss for miss
			// accounting (the paper's coverage numbers count misses the
			// prefetcher failed to hide).
			resid := ready - now
			if resid < 0 {
				resid = 0
			}
			stall = resid * c.cfg.Exposure
			st.PrefLate++
			st.PrefUseful++
			if resid >= c.halfLLCLat {
				st.L1IMisses++
			}
			c.fill(now, b, false)
		} else {
			st.L1IMisses++
			raw := float64(c.fillLatency(b | c.asBase))
			if c.cfg.PredecodePenalty > 0 {
				raw += c.cfg.PredecodePenalty
				st.PredecodeCycles += c.cfg.PredecodePenalty * c.cfg.Exposure
			}
			stall = raw * c.cfg.Exposure
			c.fill(now, b, true)
			st.DemandFills++
		}
	}
	st.L1IStallCycles += stall

	if pf := c.cfg.Prefetcher; pf != nil {
		miss := !hit
		c.reqs = pf.OnAccess(now, b, miss, c.reqs[:0])
		c.schedule(now, c.reqs)
	}
	if c.cfg.Recorder != nil {
		if !c.hasLast || key != c.lastBlock {
			c.cfg.Recorder.Record(key | c.keyTag)
			c.lastBlock = key
			c.hasLast = true
		}
	}
	return stall
}

// fill installs a block in the L1-I, mirroring the change into the BTB
// design (Confluence's synchronization; other designs ignore the hooks).
func (c *Core) fill(now float64, b isa.Addr, demand bool) {
	c.fillQuiet(now, b, demand)
	if c.cfg.BTB != nil {
		c.st.L1IFills++
	}
}

// fillQuiet is fill without the stat counter — the shared install path
// FastStep also drives (fast-forward moves no counters).
func (c *Core) fillQuiet(now float64, b isa.Addr, demand bool) {
	evicted, was := c.l1i.Insert(blockKey(b))
	d := c.cfg.BTB
	if d == nil {
		return
	}
	if was {
		d.BlockEvicted(isa.Addr(evicted << isa.BlockShift))
	}
	var branches []isa.PredecodedBranch
	if c.cfg.Prog != nil {
		branches = c.cfg.Prog.PredecodeBlock(b)
	}
	d.BlockFilled(now, b, branches, demand)
}

// schedule registers prefetch requests with the fill pipeline.
func (c *Core) schedule(now float64, reqs []prefetch.Request) {
	if len(reqs) == 0 || c.cfg.PerfectL1I {
		return
	}
	for _, r := range reqs {
		key := blockKey(r.Block)
		if c.l1i.Contains(key) {
			continue
		}
		if _, ok := c.inflight.Ready(key); ok {
			continue
		}
		ready := now + r.ExtraDelay + float64(c.fillLatency(r.Block|c.asBase))
		if ready < now {
			ready = now
		}
		c.inflight.Add(key, ready)
		c.st.PrefIssued++
	}
}

// scrub ages out long-completed, never-demanded fills (bad prefetches) to
// bound the in-flight table. The model does not charge cache pollution for
// them (DESIGN.md §5).
func (c *Core) scrub(now float64) {
	c.st.PrefDiscarded += uint64(c.inflight.Expire(now-2048, nil))
}
