package frontend

import (
	"fmt"

	"confluence/internal/bpu"
	"confluence/internal/cache"
)

// CoreWarmState is the serializable per-core warm-up state: everything a
// functionally fast-forwarded core carries into its first measurement
// window. The BTB field is design-specific (one of the design packages'
// exported state types, gob-registered by internal/core); the system
// snapshot layer fills and restores it because only it knows the wired
// design — the frontend handles the design-independent remainder.
//
// The in-flight fill table is not captured: warm-up runs purely through
// FastStep, which issues no prefetches, so the table is empty at the
// snapshot boundary (restore clears it to match). Stats are not captured
// either — fast-forward moves no counters and the measurement boundary
// resets them regardless.
type CoreWarmState struct {
	Cycle     float64
	Steps     uint64
	LastBlock uint64
	HasLast   bool

	Hybrid bpu.HybridState
	RAS    bpu.RASState
	ITC    bpu.ITCState

	L1I *cache.CacheState // nil under PerfectL1I

	BTB any // design-specific state, managed by internal/core
}

// ExportWarmState captures the core's design-independent warm state.
// The caller (internal/core) fills the BTB field.
func (c *Core) ExportWarmState() CoreWarmState {
	st := CoreWarmState{
		Cycle:     c.cycle,
		Steps:     c.steps,
		LastBlock: c.lastBlock,
		HasLast:   c.hasLast,
		Hybrid:    c.hybrid.ExportState(),
		RAS:       c.ras.ExportState(),
		ITC:       c.itc.ExportState(),
	}
	if c.l1i != nil {
		l1i := c.l1i.ExportState()
		st.L1I = &l1i
	}
	return st
}

// RestoreWarmState overwrites the core's design-independent warm state
// from a snapshot; the caller restores the BTB field into the wired
// design. Configuration geometry must match (snapshot keys pin it).
func (c *Core) RestoreWarmState(st CoreWarmState) error {
	if (c.l1i == nil) != (st.L1I == nil) {
		return fmt.Errorf("frontend: snapshot L1-I presence does not match core config")
	}
	if err := c.hybrid.RestoreState(st.Hybrid); err != nil {
		return err
	}
	if err := c.ras.RestoreState(st.RAS); err != nil {
		return err
	}
	if err := c.itc.RestoreState(st.ITC); err != nil {
		return err
	}
	if c.l1i != nil {
		if err := c.l1i.RestoreState(*st.L1I); err != nil {
			return err
		}
		c.inflight.Clear()
	}
	c.cycle = st.Cycle
	c.steps = st.Steps
	c.lastBlock = st.LastBlock
	c.hasLast = st.HasLast
	return nil
}
