package frontend

import (
	"testing"

	"confluence/internal/airbtb"
	"confluence/internal/btb"
	"confluence/internal/fdp"
	"confluence/internal/isa"
	"confluence/internal/shift"
	"confluence/internal/trace"
)

// benchRecords builds a looping MemSource over a synthetic instruction
// stream: nBlocks distinct 64B blocks visited as basic blocks with a taken
// branch every fourth record — enough structure to exercise the BTB, the
// predictors, the L1-I, and SHIFT's confirm/restart paths.
func benchRecords(nBlocks int) *trace.MemSource {
	recs := make([]trace.Record, 0, nBlocks*2)
	base := isa.Addr(0x10000)
	for i := 0; i < nBlocks; i++ {
		start := base + isa.Addr(i)*isa.BlockBytes
		// Two 8-instruction basic blocks per 64B block.
		recs = append(recs, trace.Record{Start: start, N: 8, Next: start + 32})
		mid := start + 32
		var br trace.BranchInfo
		next := start + isa.BlockBytes
		if i == nBlocks-1 {
			next = base
		}
		if i%4 == 3 {
			br = trace.BranchInfo{
				PC: mid + 7*isa.InstrBytes, Kind: isa.BrUncond,
				Taken: true, Target: next,
			}
		}
		recs = append(recs, trace.Record{Start: mid, N: 8, Br: br, Next: next})
	}
	return trace.NewMemSource(recs, true)
}

// benchCore assembles a single Confluence-style core (AirBTB + SHIFT over a
// shared history) fed by a MemSource.
func benchCore(b *testing.B, nBlocks int) (*Core, *trace.MemSource) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.BackendCPI = 0.6
	cfg.Exposure = 0.42
	cfg.Hier = testHier()
	h := shift.NewHistory(4096)
	cfg.Recorder = h
	cfg.Prefetcher = shift.NewEngine(shift.Config{HistoryEntries: 4096, Lookahead: 20}, h, 10)
	cfg.BTB = airbtb.New(airbtb.DefaultConfig())
	return NewCore(cfg), benchRecords(nBlocks)
}

// BenchmarkCoreStep measures the per-basic-block cost of the frontend hot
// path — Core.Step and everything it calls — for a single core driven from
// a MemSource, with SHIFT and AirBTB wired the way the Confluence design
// point wires them. The resident case stays within the L1-I (all hits);
// the streaming case loops a footprint several times the L1-I, so every
// lap exercises misses, fills, evictions, bundle churn, and SHIFT's
// restart/confirm stream — the traffic the flat structures were built for.
func BenchmarkCoreStep(b *testing.B) {
	for _, bc := range []struct {
		name    string
		nBlocks int
	}{
		{"resident", 256},
		{"streaming", 4096}, // 256KB of code vs the 32KB L1-I
	} {
		b.Run(bc.name, func(b *testing.B) {
			c, src := benchCore(b, bc.nBlocks)
			var rec trace.Record
			// Warm caches, history, and predictors into steady state.
			for i := 0; i < 1<<15; i++ {
				src.Next(&rec)
				c.Step(&rec)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Next(&rec)
				c.Step(&rec)
			}
			st := c.Stats()
			b.ReportMetric(float64(st.Instructions)/float64(st.Records), "instr/block")
		})
	}
}

// TestCoreStepSteadyStateZeroAllocs pins the tentpole property: after
// warmup, the per-instruction path — Core.Step with SHIFT, AirBTB, the
// in-flight fill table, and the shared history all active — performs zero
// heap allocations, so the flat-structure rewrite cannot silently rot back
// into per-step garbage.
func TestCoreStepSteadyStateZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BackendCPI = 0.6
	cfg.Exposure = 0.42
	cfg.Hier = testHier()
	h := shift.NewHistory(4096)
	cfg.Recorder = h
	cfg.Prefetcher = shift.NewEngine(shift.Config{HistoryEntries: 4096, Lookahead: 20}, h, 10)
	cfg.BTB = airbtb.New(airbtb.DefaultConfig())
	c := NewCore(cfg)
	// A footprint several times the L1-I: the measured steps continuously
	// miss, fill, evict, and stream prefetches — the full hot path, not
	// just the hit path, must be allocation-free.
	src := benchRecords(4096)

	var rec trace.Record
	for i := 0; i < 1<<15; i++ {
		src.Next(&rec)
		c.Step(&rec)
	}
	// Cover several scrub periods (1<<14 steps each) so the periodic Expire
	// sweep is included in the allocation budget.
	allocs := testing.AllocsPerRun(4, func() {
		for i := 0; i < 1<<14; i++ {
			src.Next(&rec)
			c.Step(&rec)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Core.Step allocated %v times per 2^14 steps, want 0", allocs)
	}
}

// TestCoreStepZeroAllocsFDP pins the same property for the FDP design
// points, whose OnRegion path appends into the frontend's scratch buffer.
func TestCoreStepZeroAllocsFDP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BackendCPI = 0.6
	cfg.Exposure = 0.42
	cfg.Hier = testHier()
	cfg.BTB = btb.NewConventional("bench", 256, 4, 64)
	cfg.Prefetcher = fdp.New(fdp.DefaultConfig())
	c := NewCore(cfg)
	src := benchRecords(256)

	var rec trace.Record
	for i := 0; i < 1<<15; i++ {
		src.Next(&rec)
		c.Step(&rec)
	}
	allocs := testing.AllocsPerRun(4, func() {
		for i := 0; i < 1<<14; i++ {
			src.Next(&rec)
			c.Step(&rec)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state FDP Core.Step allocated %v times per 2^14 steps, want 0", allocs)
	}
}
