package frontend

import (
	"reflect"
	"testing"

	"confluence/internal/isa"
	"confluence/internal/trace"
)

func TestFFCountsAddSub(t *testing.T) {
	a := FFCounts{Instructions: 10, L1IAccesses: 8, L1IMisses: 3, BTBTakenLookups: 4, BTBMisses: 2}
	b := FFCounts{Instructions: 1, L1IAccesses: 2, L1IMisses: 1, BTBTakenLookups: 1, BTBMisses: 1}
	sum := a
	sum.Add(&b)
	want := FFCounts{Instructions: 11, L1IAccesses: 10, L1IMisses: 4, BTBTakenLookups: 5, BTBMisses: 3}
	if sum != want {
		t.Errorf("Add = %+v, want %+v", sum, want)
	}
	sum.Sub(&b)
	if sum != a {
		t.Errorf("Sub did not invert Add: %+v", sum)
	}
}

// mixedRecords builds a looping source exercising every branch kind the
// fast-forward path handles: conditionals (taken and not), calls paired
// with returns, unconditional jumps, and indirects — across a footprint
// larger than the L1-I so misses, fills, and evictions all occur.
func mixedRecords(nBlocks int) *trace.MemSource {
	var recs []trace.Record
	base := isa.Addr(0x40000)
	const n = int(isa.BlockBytes / isa.InstrBytes) // one full block per record
	for i := 0; i < nBlocks; i++ {
		start := base + isa.Addr(i)*isa.BlockBytes
		next := start + isa.BlockBytes
		if i == nBlocks-1 {
			next = base
		}
		brPC := start + isa.Addr(n-1)*isa.InstrBytes
		var br trace.BranchInfo
		switch i % 5 {
		case 0:
			// Taken and not-taken conditionals; the target equals the
			// fall-through so the stream stays self-consistent either way.
			br = trace.BranchInfo{PC: brPC, Kind: isa.BrCond, Taken: i%2 == 0, Target: next}
		case 1:
			br = trace.BranchInfo{PC: brPC, Kind: isa.BrCall, Taken: true, Target: next}
		case 2:
			br = trace.BranchInfo{PC: brPC, Kind: isa.BrRet, Taken: true, Target: next}
		case 3:
			br = trace.BranchInfo{PC: brPC, Kind: isa.BrIndirect, Taken: true, Target: next}
		case 4:
			br = trace.BranchInfo{PC: brPC, Kind: isa.BrUncond, Taken: true, Target: next}
		}
		recs = append(recs, trace.Record{Start: start, N: n, Br: br, Next: next})
	}
	return trace.NewMemSource(recs, true)
}

// TestFastStepMatchesStepEvents pins the full-coverage contract from the
// sampled mode: on a prefetcherless core, the functional fast-forward
// path issues the exact probe sequence detailed simulation would, so its
// FFCounts tallies equal the detailed path's Stats counters event for
// event — same stream, same contents, same misses.
func TestFastStepMatchesStepEvents(t *testing.T) {
	det := NewCore(testConfig())
	fast := NewCore(testConfig())
	srcD := mixedRecords(1024) // 64KB of code vs the 32KB L1-I
	srcF := mixedRecords(1024)
	var rd, rf trace.Record
	for i := 0; i < 30_000; i++ {
		srcD.Next(&rd)
		det.Step(&rd)
		srcF.Next(&rf)
		fast.FastStep(&rf)
	}
	st := det.Stats()
	ff := fast.FFCounts()
	if ff.Instructions != st.Instructions {
		t.Errorf("instructions: fast %d, detailed %d", ff.Instructions, st.Instructions)
	}
	if ff.L1IAccesses != st.L1IAccesses || ff.L1IMisses != st.L1IMisses {
		t.Errorf("L1-I events diverged: fast %d/%d, detailed %d/%d",
			ff.L1IAccesses, ff.L1IMisses, st.L1IAccesses, st.L1IMisses)
	}
	if ff.BTBTakenLookups != st.BTBTakenLookups || ff.BTBMisses != st.BTBMisses {
		t.Errorf("BTB events diverged: fast %d/%d, detailed %d/%d",
			ff.BTBTakenLookups, ff.BTBMisses, st.BTBTakenLookups, st.BTBMisses)
	}
	if ff.L1IMisses == 0 || ff.BTBMisses == 0 {
		t.Error("stream produced no misses; the comparison is vacuous")
	}
	// Fast-forward moves no measurement counters.
	if got := fast.Stats().Instructions; got != 0 {
		t.Errorf("FastStep moved Stats.Instructions to %d", got)
	}
}

func TestWarmStateRoundTrip(t *testing.T) {
	a := NewCore(testConfig())
	src := mixedRecords(512)
	var rec trace.Record
	for i := 0; i < 5_000; i++ {
		src.Next(&rec)
		a.FastStep(&rec)
	}
	st := a.ExportWarmState()
	if st.L1I == nil || st.Cycle == 0 {
		t.Fatal("warm-up produced an empty snapshot")
	}

	b := NewCore(testConfig())
	if err := b.RestoreWarmState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.ExportWarmState(), st) {
		t.Error("re-exported warm state differs from the snapshot")
	}
	// The restored core must walk on identically: driving both with the
	// same continuation produces identical probe-event deltas (BTB
	// contents are design-managed and cold on both sides here, so the
	// remaining state fully determines the probe stream).
	aBase, bBase := a.FFCounts(), b.FFCounts()
	for i := 0; i < 1_000; i++ {
		src.Next(&rec)
		a.FastStep(&rec)
		b.FastStep(&rec)
	}
	af, bf := a.FFCounts(), b.FFCounts()
	af.Sub(&aBase)
	bf.Sub(&bBase)
	if af != bf {
		t.Errorf("post-restore probe deltas diverged: %+v vs %+v", af, bf)
	}
	if bf.Instructions == 0 {
		t.Error("restored core did not advance")
	}

	// Presence mismatch: a PerfectL1I core carries no L1-I state.
	cfg := testConfig()
	cfg.PerfectL1I = true
	if err := NewCore(cfg).RestoreWarmState(st); err == nil {
		t.Error("restore into a PerfectL1I core succeeded")
	}
}
