package frontend

import (
	"confluence/internal/btb"
	"confluence/internal/isa"
	"confluence/internal/trace"
)

// FFCounts tallies the probe outcomes of the functional fast-forward
// path. FastStep drives the L1-I and the BTB with the exact lookup
// sequence detailed simulation would issue, so these counts are the
// full-coverage complement to the measurement windows' Stats: for a core
// with no prefetcher wired, the miss events on the two paths are
// identical event for event (contents evolve purely from the demand
// stream), making the combined window+gap miss counts exact rather than
// sampled. They live outside Stats — fast-forward moves no measurement
// counter — and accumulate monotonically; consumers take deltas.
type FFCounts struct {
	Instructions    uint64 `json:"instructions"`
	L1IAccesses     uint64 `json:"l1i_accesses"`
	L1IMisses       uint64 `json:"l1i_misses"`
	BTBTakenLookups uint64 `json:"btb_taken_lookups"`
	BTBMisses       uint64 `json:"btb_misses"`
}

// Add accumulates b into a.
func (a *FFCounts) Add(b *FFCounts) {
	a.Instructions += b.Instructions
	a.L1IAccesses += b.L1IAccesses
	a.L1IMisses += b.L1IMisses
	a.BTBTakenLookups += b.BTBTakenLookups
	a.BTBMisses += b.BTBMisses
}

// Sub subtracts b from a (delta of two monotone snapshots).
func (a *FFCounts) Sub(b *FFCounts) {
	a.Instructions -= b.Instructions
	a.L1IAccesses -= b.L1IAccesses
	a.L1IMisses -= b.L1IMisses
	a.BTBTakenLookups -= b.BTBTakenLookups
	a.BTBMisses -= b.BTBMisses
}

// FFCounts returns the core's cumulative fast-forward probe tallies.
func (c *Core) FFCounts() FFCounts { return c.ffCt }

// FastStep advances one executed basic block through the functional
// fast-forward path: architectural and history-relevant state evolves —
// branch predictor tables, RAS, ITC, BTB contents, L1-I and LLC
// contents, and the SHIFT stream history — while timing (stall and
// penalty accounting, prefetcher run-ahead, MSHR tracking) is skipped
// entirely. No Stats counter moves; the engine tracks fast-forwarded
// progress itself.
//
// The structure deliberately mirrors Step stage for stage (materialize
// ready fills, predict + resolve, per-block access, cycle advance) so
// the two walk identical state-update sequences; when Step's order
// changes, change this in lockstep. The cycle clock still advances by
// the issue + backend component of Step's charge — structures coupled
// to time (PhantomBTB's in-flight group fills) must keep maturing at a
// rate comparable to detailed simulation, and the backend component is
// pure workload calibration, so the clock stays design-independent
// enough for snapshots to be shared across design points.
func (c *Core) FastStep(rec *trace.Record) {
	now := c.cycle
	c.ffCt.Instructions += uint64(rec.N)

	first := isa.BlockOf(rec.Start)
	last := first
	if rec.N > 1 {
		last = isa.BlockOf(rec.Start + isa.Addr((rec.N-1)*isa.InstrBytes))
	}

	// Materialize fills that completed before this block's fetch (entries
	// left in flight by a preceding detailed window).
	if !c.cfg.PerfectL1I {
		for b := first; b <= last; b += isa.BlockBytes {
			if c.inflight.TakeIfReady(blockKey(b), now) {
				c.fillQuiet(now, b, false)
			}
		}
	}

	if br := rec.Br; br.Kind.IsBranch() {
		c.fastPredict(now, rec)
		if !c.cfg.PerfectBTB {
			c.cfg.BTB.Resolve(now, rec.Start, rec.N, br)
		}
	}

	if !c.cfg.PerfectL1I {
		for b := first; b <= last; b += isa.BlockBytes {
			key := blockKey(b)
			c.ffCt.L1IAccesses++
			if !c.l1i.Lookup(key) {
				if ready, ok := c.inflight.Take(key); ok {
					// Same effective-miss rule as access(): a fill still at
					// least half an LLC latency away failed to hide the miss.
					if ready-now >= c.halfLLCLat {
						c.ffCt.L1IMisses++
					}
					c.fillQuiet(now, b, false)
				} else {
					c.ffCt.L1IMisses++
					// Functional LLC touch: contents and replacement state
					// evolve as under a demand access, no latency charged.
					c.cfg.Hier.Warm(b | c.asBase)
					c.fillQuiet(now, b, true)
				}
			}
			if c.cfg.Recorder != nil {
				if !c.hasLast || key != c.lastBlock {
					c.cfg.Recorder.Record(key | c.keyTag)
					c.lastBlock = key
					c.hasLast = true
				}
			}
		}
	}

	var issue float64
	if uint(rec.N) < uint(len(c.issueTab)) {
		issue = c.issueTab[rec.N]
	} else {
		issue = float64(rec.N) / c.cfg.IssueWidth
	}
	if issue < 1 {
		issue = 1
	}
	c.cycle += issue + float64(rec.N)*c.cfg.BackendCPI
}

// fastPredict drives the branch predictors and the BTB for the block's
// terminating branch with the exact training calls predict makes —
// hybrid PredictAndUpdate, RAS push/pop, ITC predict/update, BTB lookup
// — minus all penalty and counter accounting. Kept separate from
// predict because the two share no output: predict's value is the
// penalty math this path exists to skip.
func (c *Core) fastPredict(now float64, rec *trace.Record) {
	br := rec.Br
	res := btb.Result{Hit: true}
	if !c.cfg.PerfectBTB {
		res = c.cfg.BTB.Lookup(now, rec.Start, br.PC)
	}
	if br.Taken {
		c.ffCt.BTBTakenLookups++
		if !res.Hit {
			c.ffCt.BTBMisses++
		}
	}
	switch br.Kind {
	case isa.BrCond:
		c.hybrid.PredictAndUpdate(br.PC, br.Taken)
	case isa.BrUncond, isa.BrCall:
		if br.Kind == isa.BrCall {
			c.ras.Push(br.PC + isa.InstrBytes)
		}
	case isa.BrRet:
		c.ras.Pop()
	case isa.BrIndirect, isa.BrIndCall:
		c.itc.Predict(br.PC)
		c.itc.Update(br.PC, br.Target)
		if br.Kind == isa.BrIndCall {
			c.ras.Push(br.PC + isa.InstrBytes)
		}
	}
}
