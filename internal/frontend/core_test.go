package frontend

import (
	"math"
	"testing"

	"confluence/internal/btb"
	"confluence/internal/isa"
	"confluence/internal/mem"
	"confluence/internal/noc"
	"confluence/internal/prefetch"
	"confluence/internal/trace"
)

// testHier builds a single-bank hierarchy with zero network latency so
// LLC hits cost exactly LLCHitCycles and misses add MemCycles.
func testHier() *mem.Hierarchy {
	cfg := mem.Config{
		Banks: 1, LLCBytesPerBank: 512 << 10, LLCWays: 16,
		LLCHitCycles: 6, MemCycles: 100, Mesh: noc.New(1, 1, 0),
	}
	return mem.New(cfg, 0)
}

// testConfig returns a frontend with crisp arithmetic: backend CPI 0,
// exposure 1, 3-wide issue.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BackendCPI = 0
	cfg.Exposure = 1
	cfg.BTB = btb.NewConventional("test", 256, 4, 64)
	cfg.Prefetcher = prefetch.Null{}
	cfg.Hier = testHier()
	return cfg
}

func uncondRec(bb isa.Addr, n int, target isa.Addr) trace.Record {
	return trace.Record{
		Start: bb, N: n,
		Br: trace.BranchInfo{
			PC: bb + isa.Addr((n-1)*isa.InstrBytes), Kind: isa.BrUncond,
			Taken: true, Target: target,
		},
		Next: target,
	}
}

func fallRec(bb isa.Addr, n int) trace.Record {
	return trace.Record{Start: bb, N: n, Next: bb + isa.Addr(n*isa.InstrBytes)}
}

func TestIssueCycleFloor(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectL1I = true
	c := NewCore(cfg)
	// A 2-instruction block takes one full cycle (1 region/cycle BPU),
	// a 9-instruction block takes 3 (3-wide issue).
	c.Step(&trace.Record{Start: 0x1000, N: 2, Next: 0x1008})
	if c.Stats().Cycles != 1 {
		t.Errorf("2-instr block took %v cycles, want 1", c.Stats().Cycles)
	}
	c.Step(&trace.Record{Start: 0x1008, N: 9, Next: 0x102C})
	if got := c.Stats().Cycles; got != 4 {
		t.Errorf("after 9-instr block: %v cycles, want 4", got)
	}
}

func TestBackendCPICharged(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectL1I = true
	cfg.BackendCPI = 0.5
	c := NewCore(cfg)
	c.Step(&trace.Record{Start: 0x1000, N: 6, Next: 0x1018})
	want := 2.0 + 3.0 // issue 6/3 + backend 6*0.5
	if got := c.Stats().Cycles; got != want {
		t.Errorf("cycles = %v, want %v", got, want)
	}
}

func TestMisfetchPenaltyOnBTBMiss(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectL1I = true
	c := NewCore(cfg)
	rec := uncondRec(0x1000, 3, 0x2000)
	c.Step(&rec)
	st := c.Stats()
	if st.BTBMisses != 1 {
		t.Fatalf("BTBMisses = %d", st.BTBMisses)
	}
	if st.MisfetchCycles != cfg.MisfetchPenalty {
		t.Errorf("MisfetchCycles = %v", st.MisfetchCycles)
	}
	if st.Cycles != 1+cfg.MisfetchPenalty {
		t.Errorf("Cycles = %v, want %v", st.Cycles, 1+cfg.MisfetchPenalty)
	}
	// The resolve allocated the entry; repeating the block is penalty-free.
	c.Step(&rec)
	if st.BTBMisses != 1 || st.Cycles != 2+cfg.MisfetchPenalty {
		t.Errorf("second pass: misses=%d cycles=%v", st.BTBMisses, st.Cycles)
	}
}

func TestCondNotTakenMissIsFree(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectL1I = true
	c := NewCore(cfg)
	rec := trace.Record{
		Start: 0x1000, N: 3,
		Br: trace.BranchInfo{PC: 0x1008, Kind: isa.BrCond, Taken: false, Target: 0x2000},
	}
	c.Step(&rec)
	st := c.Stats()
	// BTB missed, but the implicit sequential prediction was correct and
	// the hybrid starts weakly-not-taken: no penalties of any kind.
	if st.MisfetchCycles != 0 || st.ResolveCycles != 0 {
		t.Errorf("penalties charged: misfetch=%v resolve=%v", st.MisfetchCycles, st.ResolveCycles)
	}
	if st.BTBMisses != 0 {
		t.Errorf("not-taken branch counted as BTB miss (paper counts taken only)")
	}
	if st.BTBTakenLookups != 0 {
		t.Errorf("BTBTakenLookups = %d", st.BTBTakenLookups)
	}
}

func TestReturnUsesRAS(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectL1I = true
	c := NewCore(cfg)
	// call at 0x1008 to 0x2000; return to 0x100C.
	call := trace.Record{Start: 0x1000, N: 3,
		Br: trace.BranchInfo{PC: 0x1008, Kind: isa.BrCall, Taken: true, Target: 0x2000}}
	ret := trace.Record{Start: 0x2000, N: 2,
		Br: trace.BranchInfo{PC: 0x2004, Kind: isa.BrRet, Taken: true, Target: 0x100C}}
	// Warm the BTB for both blocks.
	c.Step(&call)
	c.Step(&ret)
	before := c.Stats().RASMispredicts
	c.Step(&call)
	c.Step(&ret)
	if c.Stats().RASMispredicts != before {
		t.Error("matched call/ret mispredicted")
	}
	// A return with no matching call mispredicts.
	c.Step(&ret)
	if c.Stats().RASMispredicts == before {
		t.Error("unmatched return predicted correctly")
	}
}

func TestIndirectUsesITC(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectL1I = true
	c := NewCore(cfg)
	rec := trace.Record{Start: 0x1000, N: 3,
		Br: trace.BranchInfo{PC: 0x1008, Kind: isa.BrIndirect, Taken: true, Target: 0x3000}}
	c.Step(&rec) // cold: BTB miss + ITC miss
	first := c.Stats().ITCMispredicts
	if first == 0 {
		t.Fatal("cold indirect predicted")
	}
	c.Step(&rec) // warm: both hit, stable target
	if c.Stats().ITCMispredicts != first {
		t.Error("stable indirect mispredicted when warm")
	}
	rec.Br.Target = 0x4000
	c.Step(&rec)
	if c.Stats().ITCMispredicts != first+1 {
		t.Error("target change not counted as ITC mispredict")
	}
}

func TestL1IMissStall(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectBTB = true
	c := NewCore(cfg)
	rec := fallRec(0x1000, 3)
	c.Step(&rec)
	st := c.Stats()
	// Cold: LLC miss -> 6 + 100 cycles, exposure 1.
	if st.L1IStallCycles != 106 {
		t.Errorf("cold stall = %v, want 106", st.L1IStallCycles)
	}
	if st.L1IMisses != 1 || st.DemandFills != 1 {
		t.Errorf("misses=%d fills=%d", st.L1IMisses, st.DemandFills)
	}
	// Resident now: no further stall.
	c.Step(&rec)
	if st.L1IStallCycles != 106 {
		t.Errorf("hit stalled: %v", st.L1IStallCycles)
	}
	// A different block in the LLC costs only the hit latency.
	rec2 := fallRec(0x1040, 3)
	c.Step(&rec2) // LLC miss again (cold LLC)
	rec3 := fallRec(0x1080, 3)
	c.Step(&rec3)
	c.l1i.Invalidate(uint64(0x1040) >> isa.BlockShift)
	c.Step(&rec2) // now an LLC hit: 6 cycles only
	if got := st.L1IStallCycles - 106 - 106 - 106; got != 6 {
		t.Errorf("LLC-hit stall = %v, want 6", got)
	}
}

func TestExposureScalesStalls(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectBTB = true
	cfg.Exposure = 0.5
	c := NewCore(cfg)
	rec := fallRec(0x1000, 3)
	c.Step(&rec)
	if got := c.Stats().L1IStallCycles; got != 53 {
		t.Errorf("scaled stall = %v, want 53", got)
	}
}

func TestRegionSpanningTwoBlocks(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectBTB = true
	c := NewCore(cfg)
	// 6 instructions starting 3 before a block boundary.
	rec := fallRec(0x1034, 6)
	c.Step(&rec)
	if got := c.Stats().L1IAccesses; got != 2 {
		t.Errorf("block accesses = %d, want 2", got)
	}
}

// stubPrefetcher issues one fixed request when the region starts.
type stubPrefetcher struct {
	block isa.Addr
	delay float64
	fired bool
}

func (s *stubPrefetcher) Name() string { return "stub" }
func (s *stubPrefetcher) OnAccess(_ float64, _ isa.Addr, _ bool, dst []prefetch.Request) []prefetch.Request {
	return dst
}
func (s *stubPrefetcher) Redirect(float64) {}
func (s *stubPrefetcher) OnRegion(now float64, start isa.Addr, n int, dst []prefetch.Request) []prefetch.Request {
	if s.fired {
		return dst
	}
	s.fired = true
	return append(dst, prefetch.Request{Block: s.block, ExtraDelay: s.delay})
}

func TestPrefetchHidesLatency(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectBTB = true
	stub := &stubPrefetcher{block: 0x2000, delay: 0}
	cfg.Prefetcher = stub
	c := NewCore(cfg)

	// Step 1 fires the prefetch for 0x2000 (LLC miss: ready at 106).
	c.Step(&trace.Record{Start: 0x1000, N: 3})
	if c.Stats().PrefIssued != 1 {
		t.Fatalf("PrefIssued = %d", c.Stats().PrefIssued)
	}
	stallBefore := c.Stats().L1IStallCycles

	// Burn cycles until the fill completes.
	for c.Cycle() < 110 {
		c.Step(&trace.Record{Start: 0x1004, N: 3})
	}
	// Accessing the prefetched block is now free and counted useful.
	c.Step(&trace.Record{Start: 0x2000, N: 3})
	st := c.Stats()
	if st.PrefUseful != 1 {
		t.Errorf("PrefUseful = %d", st.PrefUseful)
	}
	if st.L1IStallCycles != stallBefore {
		t.Errorf("prefetched block stalled: %v -> %v", stallBefore, st.L1IStallCycles)
	}
	if st.L1IMisses != 1 { // only the initial 0x1000 miss
		t.Errorf("L1IMisses = %d", st.L1IMisses)
	}
}

func TestLatePrefetchPartialStall(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectBTB = true
	// Extra delay keeps the fill in flight when the demand arrives: the
	// prefetch fires at cycle 0 and completes at 50+106; the first step
	// itself stalls 106 cycles, so the demand at ~107 waits ~49 more.
	stub := &stubPrefetcher{block: 0x2000, delay: 50}
	cfg.Prefetcher = stub
	c := NewCore(cfg)
	c.Step(&trace.Record{Start: 0x1000, N: 3})
	st := c.Stats()
	before := st.L1IStallCycles
	c.Step(&trace.Record{Start: 0x2000, N: 3})
	resid := st.L1IStallCycles - before
	if resid <= 0 || resid >= 106 {
		t.Errorf("residual stall = %v, want in (0, 106)", resid)
	}
	if st.PrefLate != 1 {
		t.Errorf("PrefLate = %d", st.PrefLate)
	}
}

func TestPenaltyOverlapsStall(t *testing.T) {
	cfg := testConfig()
	c := NewCore(cfg)
	// Cold block AND taken-branch BTB miss in the same step: the 4-cycle
	// misfetch overlaps the 106-cycle fill; total extra is max, not sum.
	rec := uncondRec(0x1000, 3, 0x2000)
	c.Step(&rec)
	st := c.Stats()
	if st.Cycles != 1+106 {
		t.Errorf("Cycles = %v, want 107 (misfetch hidden under fill)", st.Cycles)
	}
	if st.MisfetchCycles != 4 || st.L1IStallCycles != 106 {
		t.Errorf("components: misfetch=%v stall=%v", st.MisfetchCycles, st.L1IStallCycles)
	}
}

func TestPerfectFrontendHasNoStalls(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectL1I = true
	cfg.PerfectBTB = true
	cfg.BTB = nil
	c := NewCore(cfg)
	for i := 0; i < 100; i++ {
		rec := uncondRec(isa.Addr(0x1000+i*64), 3, isa.Addr(0x1000+(i+1)*64))
		c.Step(&rec)
	}
	st := c.Stats()
	if st.MisfetchCycles != 0 || st.L1IStallCycles != 0 || st.BubbleCycles != 0 {
		t.Errorf("perfect frontend stalled: %+v", st)
	}
	if st.Cycles != 100 {
		t.Errorf("Cycles = %v, want 100", st.Cycles)
	}
}

func TestResetStatsPreservesState(t *testing.T) {
	cfg := testConfig()
	c := NewCore(cfg)
	rec := uncondRec(0x1000, 3, 0x2000)
	c.Step(&rec)
	c.ResetStats()
	if c.Stats().Cycles != 0 || c.Stats().Instructions != 0 {
		t.Error("stats not reset")
	}
	// Warm state survives: no new misfetch or L1-I miss.
	c.Step(&rec)
	st := c.Stats()
	if st.BTBMisses != 0 || st.L1IMisses != 0 {
		t.Errorf("warm state lost: btb=%d l1i=%d", st.BTBMisses, st.L1IMisses)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Instructions: 10, Cycles: 20, BTBMisses: 1, L1IMisses: 2}
	b := Stats{Instructions: 30, Cycles: 40, BTBMisses: 3, L1IMisses: 4}
	a.Add(&b)
	if a.Instructions != 40 || a.Cycles != 60 || a.BTBMisses != 4 || a.L1IMisses != 6 {
		t.Errorf("Add: %+v", a)
	}
}

func TestDerivedMetrics(t *testing.T) {
	s := Stats{Instructions: 2000, Cycles: 4000, BTBMisses: 10, L1IMisses: 30, DirMispredicts: 4}
	if s.IPC() != 0.5 || s.CPI() != 2 {
		t.Errorf("IPC/CPI wrong")
	}
	if s.BTBMPKI() != 5 || s.L1IMPKI() != 15 || s.DirMPKI() != 2 {
		t.Errorf("MPKIs: %v %v %v", s.BTBMPKI(), s.L1IMPKI(), s.DirMPKI())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.CPI() != 0 || zero.BTBMPKI() != 0 {
		t.Error("zero stats must not divide by zero")
	}
	if math.IsNaN(zero.IPC()) {
		t.Error("NaN from zero stats")
	}
}
