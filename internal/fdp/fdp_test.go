package fdp

import (
	"testing"

	"confluence/internal/isa"
)

func TestRegionExpandsToBlocks(t *testing.T) {
	f := New(Config{QueueDepth: 6, CyclesPerBB: 1.0})
	// A region spanning a block boundary prefetches both blocks.
	reqs := f.OnRegion(0, 0x1038, 4, nil) // last instr at 0x1044: blocks 0x1000, 0x1040
	if len(reqs) != 2 {
		t.Fatalf("requests = %d, want 2", len(reqs))
	}
	if reqs[0].Block != 0x1000 || reqs[1].Block != 0x1040 {
		t.Errorf("blocks %#x %#x", reqs[0].Block, reqs[1].Block)
	}
}

func TestLookaheadRampsAfterRedirect(t *testing.T) {
	f := New(DefaultConfig())
	f.Redirect(100)
	// First region after the redirect has no banked run-ahead.
	reqs := f.OnRegion(101, 0x1000, 4, nil)
	if reqs[0].ExtraDelay != 0 {
		t.Errorf("first post-redirect region delay = %v, want 0", reqs[0].ExtraDelay)
	}
	// Each subsequent region banks CyclesPerBB more.
	reqs = f.OnRegion(102, 0x2000, 4, nil)
	want := -DefaultConfig().CyclesPerBB
	if reqs[0].ExtraDelay != want {
		t.Errorf("second region delay = %v, want %v", reqs[0].ExtraDelay, want)
	}
}

func TestLookaheadCapsAtQueueDepth(t *testing.T) {
	cfg := Config{QueueDepth: 3, CyclesPerBB: 2.0}
	f := New(cfg)
	f.Redirect(0)
	var last float64
	for i := 0; i < 10; i++ {
		reqs := f.OnRegion(float64(i), isa.Addr(0x1000+i*64), 4, nil)
		last = -reqs[0].ExtraDelay
	}
	if last != 6.0 { // 3 regions * 2 cycles
		t.Errorf("lookahead = %v, want cap 6", last)
	}
}

func TestFreshFDPStartsFull(t *testing.T) {
	f := New(Config{QueueDepth: 4, CyclesPerBB: 1.5})
	reqs := f.OnRegion(0, 0x1000, 4, nil)
	if -reqs[0].ExtraDelay != 6.0 {
		t.Errorf("initial lookahead = %v, want 6", -reqs[0].ExtraDelay)
	}
}

func TestOnAccessIsNoop(t *testing.T) {
	f := New(DefaultConfig())
	if got := f.OnAccess(0, 0x1000, true, nil); got != nil {
		t.Error("FDP reacted to an access")
	}
}

func TestEmptyRegion(t *testing.T) {
	f := New(DefaultConfig())
	if got := f.OnRegion(0, 0x1000, 0, nil); got != nil {
		t.Error("zero-length region produced requests")
	}
}

func TestRedirectCounter(t *testing.T) {
	f := New(DefaultConfig())
	f.Redirect(1)
	f.Redirect(2)
	if f.Redirects != 2 {
		t.Errorf("Redirects = %d", f.Redirects)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero queue depth")
		}
	}()
	New(Config{})
}
