// Package fdp implements fetch-directed prefetching (Reinman, Calder,
// Austin, MICRO'99) as the paper configures it: the branch prediction unit
// is decoupled from the L1-I by a six-basic-block fetch queue and runs
// ahead along the predicted path, issuing prefetches for the instruction
// blocks of enqueued fetch regions.
//
// The timing model expresses FDP's limited lookahead directly: a region's
// blocks are scheduled with a negative delay equal to the run-ahead the BPU
// has accumulated since the last pipeline redirect, capped by the queue
// depth. A redirect (misfetch or misprediction) destroys the run-ahead,
// which then ramps back up — this is FDP's "lookahead is limited and
// geometrically compounding mispredictions" weakness (paper §2.1).
package fdp

import (
	"confluence/internal/isa"
	"confluence/internal/prefetch"
)

// Config sizes FDP.
type Config struct {
	QueueDepth  int     // fetch queue capacity in basic blocks (paper: 6)
	CyclesPerBB float64 // average drain time per queued region
}

// DefaultConfig returns the paper's tuned configuration.
func DefaultConfig() Config {
	return Config{QueueDepth: 6, CyclesPerBB: 1.4}
}

// FDP is a per-core fetch-directed prefetcher.
type FDP struct {
	cfg Config
	// regionsAhead counts fetch regions enqueued since the last redirect:
	// the BPU refills its run-ahead one region per cycle, so a region
	// enqueued k regions after a redirect has banked ~k*CyclesPerBB of
	// lookahead, capped by the queue depth.
	regionsAhead int

	Regions, Requests, Redirects uint64
}

// New creates an FDP instance.
func New(cfg Config) *FDP {
	if cfg.QueueDepth <= 0 {
		panic("fdp: queue depth must be positive")
	}
	return &FDP{cfg: cfg, regionsAhead: cfg.QueueDepth}
}

// Name implements prefetch.Prefetcher.
func (f *FDP) Name() string { return "FDP" }

// lookahead returns the run-ahead banked for the region being enqueued.
func (f *FDP) lookahead() float64 {
	n := f.regionsAhead
	if n > f.cfg.QueueDepth {
		n = f.cfg.QueueDepth
	}
	return float64(n) * f.cfg.CyclesPerBB
}

// OnRegion implements prefetch.Prefetcher: prefetch the blocks of the
// enqueued fetch region with the currently banked lookahead, appending the
// requests to dst.
func (f *FDP) OnRegion(now float64, start isa.Addr, nInstr int, dst []prefetch.Request) []prefetch.Request {
	f.Regions++
	if nInstr <= 0 {
		return dst
	}
	la := f.lookahead()
	f.regionsAhead++
	first := isa.BlockOf(start)
	last := isa.BlockOf(start + isa.Addr((nInstr-1)*isa.InstrBytes))
	for b := first; b <= last; b += isa.BlockBytes {
		dst = append(dst, prefetch.Request{Block: b, ExtraDelay: -la})
		f.Requests++
	}
	return dst
}

// OnAccess implements prefetch.Prefetcher (FDP is region-driven).
func (f *FDP) OnAccess(_ float64, _ isa.Addr, _ bool, dst []prefetch.Request) []prefetch.Request {
	return dst
}

// Redirect implements prefetch.Prefetcher: the BPU's run-ahead is lost and
// must refill region by region.
func (f *FDP) Redirect(now float64) {
	f.Redirects++
	f.regionsAhead = 0
}
