// Package trace turns a synthetic workload into a dynamic control-flow
// stream: a sequence of executed basic blocks with resolved branch outcomes.
// The stream is what every instruction-supply mechanism consumes — it is the
// correct-path retire stream of one core.
//
// Executors are deterministic in their seed, cheap enough to re-run instead
// of storing traces, and may also be serialized to binary trace files for
// offline inspection (cmd/tracegen).
package trace

import (
	"math/rand/v2"

	"confluence/internal/flatmap"
	"confluence/internal/isa"
	"confluence/internal/program"
	"confluence/internal/synth"
)

// BranchInfo describes the resolved control transfer ending a basic block.
type BranchInfo struct {
	PC     isa.Addr       // branch instruction address
	Kind   isa.BranchKind // BrNone for fall-through blocks
	Taken  bool
	Target isa.Addr // actual target when taken; static target otherwise
}

// Record is one executed basic block.
type Record struct {
	Start isa.Addr
	N     int // instruction count, including the branch if any
	Br    BranchInfo
	Next  isa.Addr // start of the next executed block
	// ReqType is the request type being served; ReqBoundary marks the first
	// block of a new request (a natural temporal-stream boundary).
	ReqType     int
	ReqBoundary bool
}

// reqContext is one in-flight request's execution state. A server core
// time-slices many concurrent requests (connections); interleaving their
// code paths is what defies the L1-I — a single request's working set would
// often fit.
type reqContext struct {
	stack []int32 // return points (ExecNode indices)
	cur   int32   // current ExecNode index
	req   int
	// loopRem tracks active loops' remaining iterations, keyed by the
	// controlling branch site's PC. The layered call graph forbids
	// recursion, so a site is active at most once per context; only the
	// loops on the current call path are live at once, so a small flat
	// table beats a Go map on the every-conditional path.
	loopRem *flatmap.Map[int32]
}

// Executor walks a workload's control-flow graph serving an endless stream
// of concurrent requests, producing Records. It models one core's retire
// stream. It implements Source (Next never fails and never reaches EOF;
// Reset replays the identical stream from the construction seed).
//
// The walk runs over the program's execution-compiled flat CFG
// (program.ExecNodes): successor references are array indices rather than
// pointers, the node array follows code layout order, and nodes are
// pointer-free — so the dominant sequential control flow reads memory
// sequentially and the graph costs the garbage collector nothing to scan.
type Executor struct {
	w     *synth.Workload
	nodes []program.ExecNode
	seed  uint64
	rng   *rand.Rand

	ctxs    []*reqContext
	active  int
	quantum int // instructions left in the current scheduling quantum
	newRq   bool

	// Counters.
	Instructions uint64
	Requests     uint64
	Switches     uint64
}

// NewExecutor creates an executor; seed differentiates cores.
func NewExecutor(w *synth.Workload, seed uint64) *Executor {
	e := &Executor{w: w, nodes: w.Prog.ExecNodes(), seed: seed}
	e.init()
	return e
}

// init (re)builds the execution state from the workload and seed.
func (e *Executor) init() {
	e.rng = rand.New(rand.NewPCG(e.seed, 0xfeed^e.w.Prof.Seed))
	e.ctxs = e.ctxs[:0]
	e.active = 0
	e.Instructions, e.Requests, e.Switches = 0, 0, 0
	n := e.w.Prof.Concurrency
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		c := &reqContext{loopRem: flatmap.New[int32](16)}
		e.ctxs = append(e.ctxs, c)
		e.startRequest(c)
	}
	e.newRq = true
	e.quantum = e.drawQuantum()
}

// Reset implements Source: the executor restarts its deterministic walk.
func (e *Executor) Reset() error {
	e.init()
	return nil
}

func (e *Executor) startRequest(c *reqContext) {
	c.req = e.w.PickRequest(e.rng)
	c.cur = e.w.Entries[c.req].Entry().Index()
	c.stack = c.stack[:0]
	e.Requests++
}

func (e *Executor) drawQuantum() int {
	q := e.w.Prof.QuantumInstr
	if q <= 0 {
		q = 500
	}
	// ±50% jitter: I/O waits and lock hand-offs are irregular.
	return q/2 + e.rng.IntN(q)
}

// yield switches to the next runnable context (round-robin).
func (e *Executor) yield() {
	if len(e.ctxs) <= 1 {
		e.quantum = e.drawQuantum()
		return
	}
	e.active = (e.active + 1) % len(e.ctxs)
	e.quantum = e.drawQuantum()
	e.Switches++
}

// Next fills rec with the next executed basic block and advances the walk.
// It implements Source; the returned error is always nil (the synthetic
// walk cannot fail and never ends).
func (e *Executor) Next(rec *Record) error {
	c := e.ctxs[e.active]
	cur := &e.nodes[c.cur]
	rec.Start = cur.Addr
	rec.N = int(cur.NInstr)
	rec.ReqType = c.req
	rec.ReqBoundary = e.newRq
	e.newRq = false
	e.Instructions += uint64(cur.NInstr)
	e.quantum -= int(cur.NInstr)

	kind := cur.BrKind
	if kind == isa.BrNone {
		rec.Br = BranchInfo{Kind: isa.BrNone}
		c.cur = cur.Fall
		rec.Next = e.nodes[c.cur].Addr
		return nil
	}
	info := BranchInfo{PC: cur.BrPC(), Kind: kind, Target: cur.Target}
	var next int32
	switch kind {
	case isa.BrCond:
		info.Taken = e.condOutcome(c, cur)
		if info.Taken {
			next = cur.TargetNode
		} else {
			next = cur.Fall
		}
	case isa.BrUncond:
		info.Taken = true
		next = cur.TargetNode
	case isa.BrCall:
		info.Taken = true
		c.stack = append(c.stack, cur.Fall)
		next = cur.TargetNode
	case isa.BrRet:
		info.Taken = true
		if n := len(c.stack); n > 0 {
			next = c.stack[n-1]
			c.stack = c.stack[:n-1]
			info.Target = e.nodes[next].Addr
		} else {
			// Top of the (implicit) server dispatch loop: the request is
			// complete; this connection picks up its next request, and the
			// scheduler switches to another connection.
			e.startRequest(c)
			e.yield()
			c = e.ctxs[e.active]
			next = c.cur
			info.Target = e.nodes[next].Addr
			e.newRq = true
		}
	case isa.BrIndirect, isa.BrIndCall:
		info.Taken = true
		next = e.pickIndirect(c, cur)
		info.Target = e.nodes[next].Addr
		if kind == isa.BrIndCall {
			c.stack = append(c.stack, cur.Fall)
		}
	}
	rec.Br = info
	c.cur = next
	rec.Next = e.nodes[next].Addr

	// Quantum expiry: switch connections at the next request-safe point
	// (only between basic blocks, and never mid-record).
	if e.quantum <= 0 && kind != isa.BrRet {
		e.yield()
		nc := e.ctxs[e.active]
		if nc != c {
			rec.Next = e.nodes[nc.cur].Addr
			// The architectural redirect to another context's PC looks like
			// an OS scheduling event; mark it as a request boundary for the
			// stream consumers.
			e.newRq = true
		}
	}
	return nil
}

// NextBatch implements Source. The synthetic walk cannot fail, so the batch
// always fills; the win over repeated Next calls is one interface dispatch
// per batch and a devirtualized inner loop.
func (e *Executor) NextBatch(dst []Record) (int, error) {
	for i := range dst {
		e.Next(&dst[i])
	}
	return len(dst), nil
}

// condOutcome resolves a conditional branch. Loop-controlling sites run a
// quasi-deterministic iteration counter (the site's characteristic trip
// count with occasional jitter); other conditionals are biased coin flips.
func (e *Executor) condOutcome(c *reqContext, br *program.ExecNode) bool {
	switch br.Loop {
	case program.LoopExitHeader:
		// Header visited before each iteration and once more to exit;
		// taken means exit.
		p, active := c.loopRem.Upsert(uint64(br.BrPC()))
		rem := *p
		if !active {
			rem = int32(e.drawTrips(br))
		}
		if rem == 0 {
			c.loopRem.Delete(uint64(br.BrPC()))
			return true
		}
		*p = rem - 1
		return false
	case program.LoopBackEdge:
		// Back edge visited after each body pass; taken means continue.
		p, active := c.loopRem.Upsert(uint64(br.BrPC()))
		rem := *p
		if !active {
			rem = int32(e.drawTrips(br)) - 1 // one pass already done
		}
		if rem <= 0 {
			c.loopRem.Delete(uint64(br.BrPC()))
			return false
		}
		*p = rem - 1
		return true
	default:
		return e.rng.Float64() < br.TakenBias
	}
}

// drawTrips samples this execution's trip count: usually exactly the
// site's characteristic count (loop bounds recur across requests, which is
// what makes both the direction predictor and SHIFT's temporal streams
// effective), with occasional ±1 data-dependent jitter.
func (e *Executor) drawTrips(br *program.ExecNode) int {
	t := int(br.TripMean)
	if e.rng.Float64() < 0.05 {
		t += e.rng.IntN(3) - 1
	}
	if t < 1 {
		t = 1
	}
	return t
}

// pickIndirect resolves an indirect site: with probability
// IndirectStability the per-(site,request-type) stable target, otherwise a
// uniformly random table entry (data-dependent dispatch).
func (e *Executor) pickIndirect(c *reqContext, br *program.ExecNode) int32 {
	tb := e.w.Prog.IndirectTargets(br)
	if len(tb) == 1 {
		return tb[0]
	}
	if e.rng.Float64() < e.w.IndirectStability() {
		return tb[stableIndex(uint64(br.BrPC()), uint64(c.req), len(tb))]
	}
	return tb[e.rng.IntN(len(tb))]
}

// stableIndex deterministically maps (site, request type) to a table slot.
func stableIndex(pc, req uint64, n int) int {
	x := pc*0x9e3779b97f4a7c15 ^ req*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return int(x % uint64(n))
}

// Skip advances the executor by at least n instructions (fast-forward for
// de-correlating cores at startup).
func (e *Executor) Skip(n uint64) {
	var rec Record
	target := e.Instructions + n
	for e.Instructions < target {
		e.Next(&rec)
	}
}
