package trace

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"

	"confluence/internal/isa"
)

func randomRecord(rng *rand.Rand) Record {
	kinds := []isa.BranchKind{isa.BrNone, isa.BrCond, isa.BrUncond, isa.BrCall, isa.BrRet, isa.BrIndirect, isa.BrIndCall}
	n := 1 + rng.IntN(15)
	rec := Record{
		Start:       isa.Addr(rng.Uint64()&0xFFFF_FFFF) &^ 3,
		N:           n,
		Next:        isa.Addr(rng.Uint64()&0xFFFF_FFFF) &^ 3,
		ReqType:     rng.IntN(16),
		ReqBoundary: rng.IntN(4) == 0,
	}
	k := kinds[rng.IntN(len(kinds))]
	if k.IsBranch() {
		rec.Br = BranchInfo{
			PC:     rec.Start + isa.Addr((n-1)*isa.InstrBytes),
			Kind:   k,
			Taken:  k.IsUnconditional() || rng.IntN(2) == 0,
			Target: isa.Addr(rng.Uint64()&0xFFFF_FFFF) &^ 3,
		}
	}
	return rec
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	var want []Record
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		rec := randomRecord(rng)
		want = append(want, rec)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5000 {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	for i, wantRec := range want {
		if err := r.Read(&got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		// PC is reconstructed only for branch records.
		cmp := wantRec
		if !cmp.Br.Kind.IsBranch() {
			cmp.Br.PC = 0
			cmp.Br.Taken = got.Br.Taken // taken bit meaningless without branch
			cmp.Br.Target = got.Br.Target
		}
		if got != cmp {
			t.Fatalf("record %d: got %+v, want %+v", i, got, cmp)
		}
	}
	if err := r.Read(&got); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXXXXXXgarbage"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReaderRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := Record{Start: 0x1000, N: 4}
	_ = w.Write(&rec)
	_ = w.Flush()
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := r.Read(&got); err == nil {
		t.Error("truncated record read without error")
	}
}

func TestWriterRoundTripFromExecutor(t *testing.T) {
	w := testWorkload(t)
	e := NewExecutor(w, 99)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	var rec Record
	for i := 0; i < 2000; i++ {
		e.Next(&rec)
		recs = append(recs, rec)
		if err := tw.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	for i := range recs {
		if err := tr.Read(&got); err != nil {
			t.Fatal(err)
		}
		if got.Start != recs[i].Start || got.N != recs[i].N || got.Br.Kind != recs[i].Br.Kind {
			t.Fatalf("record %d corrupted", i)
		}
	}
}
