package trace

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeCapture writes n records from a fresh executor to path and returns
// the records written.
func writeCapture(t *testing.T, path string, seed uint64, n int) []Record {
	t.Helper()
	w := testWorkload(t)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tw, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(w, seed)
	recs := make([]Record, n)
	for i := range recs {
		if err := e.Next(&recs[i]); err != nil {
			t.Fatal(err)
		}
		if err := tw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestExecutorReset(t *testing.T) {
	w := testWorkload(t)
	e := NewExecutor(w, 13)
	var first []Record
	var rec Record
	for i := 0; i < 5_000; i++ {
		if err := e.Next(&rec); err != nil {
			t.Fatal(err)
		}
		first = append(first, rec)
	}
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	if e.Instructions != 0 || e.Switches != 0 {
		t.Fatalf("Reset left counters: instr=%d switches=%d", e.Instructions, e.Switches)
	}
	for i := range first {
		if err := e.Next(&rec); err != nil {
			t.Fatal(err)
		}
		if rec != first[i] {
			t.Fatalf("record %d diverged after Reset", i)
		}
	}
}

func TestMemSource(t *testing.T) {
	recs := []Record{
		{Start: 0x1000, N: 3, Next: 0x100C},
		{Start: 0x100C, N: 2, Next: 0x1000},
	}
	finite := NewMemSource(recs, false)
	var rec Record
	for i := range recs {
		if err := finite.Next(&rec); err != nil {
			t.Fatal(err)
		}
		if rec != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if err := finite.Next(&rec); err != io.EOF {
		t.Fatalf("finite source returned %v after exhaustion, want EOF", err)
	}
	if err := finite.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := finite.Next(&rec); err != nil || rec != recs[0] {
		t.Fatalf("Reset did not rewind: %v %+v", err, rec)
	}

	loop := NewMemSource(recs, true)
	for i := 0; i < 7; i++ {
		if err := loop.Next(&rec); err != nil {
			t.Fatal(err)
		}
		if rec != recs[i%len(recs)] {
			t.Fatalf("looping record %d mismatch", i)
		}
	}
	if loop.Wraps != 3 {
		t.Errorf("Wraps = %d, want 3", loop.Wraps)
	}

	empty := NewMemSource(nil, true)
	if err := empty.Next(&rec); err != io.EOF {
		t.Errorf("empty looping source returned %v, want EOF", err)
	}
}

func TestRecordFrom(t *testing.T) {
	w := testWorkload(t)
	m, err := RecordFrom(NewExecutor(w, 5), 100)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(w, 5)
	var a, b Record
	for i := 0; i < 100; i++ {
		if err := m.Next(&a); err != nil {
			t.Fatal(err)
		}
		if err := e.Next(&b); err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("recorded record %d differs from live", i)
		}
	}
}

func TestFileSourceReplaysAndWraps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "core-000.trace")
	recs := writeCapture(t, path, 42, 500)

	src, err := OpenFileSource(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var rec Record
	for round := 0; round < 2; round++ {
		for i := range recs {
			if err := src.Next(&rec); err != nil {
				t.Fatal(err)
			}
			if rec != canonical(recs[i]) {
				t.Fatalf("round %d record %d diverged", round, i)
			}
		}
	}
	if src.Wraps != 1 {
		t.Errorf("Wraps = %d, want 1", src.Wraps)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if src.Records != 0 || src.Wraps != 0 {
		t.Errorf("Reset left counters: %d records, %d wraps", src.Records, src.Wraps)
	}
	if err := src.Next(&rec); err != nil || rec != canonical(recs[0]) {
		t.Fatalf("Reset did not rewind: %v", err)
	}
}

func TestFileSourceOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "core-000.trace")
	recs := writeCapture(t, path, 43, 300)

	src, err := OpenFileSource(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var rec Record
	if err := src.Next(&rec); err != nil {
		t.Fatal(err)
	}
	if rec != canonical(recs[100]) {
		t.Fatalf("offset 100 started at the wrong record")
	}

	// An offset past the end wraps around the capture.
	wrapped, err := OpenFileSource(path, uint64(len(recs))+7)
	if err != nil {
		t.Fatal(err)
	}
	defer wrapped.Close()
	if err := wrapped.Next(&rec); err != nil {
		t.Fatal(err)
	}
	if rec != canonical(recs[7]) {
		t.Fatalf("wrapping offset started at the wrong record")
	}
}

func TestFileSourceRejectsEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.trace")
	f, err := os.Create(empty)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src, err := OpenFileSource(empty, 0)
	if err == nil {
		var rec Record
		if err := src.Next(&rec); err == nil {
			t.Error("empty trace yielded a record")
		}
		src.Close()
	}
	if _, err := OpenFileSource(empty, 3); err == nil {
		t.Error("empty trace accepted a record offset")
	}
	if _, err := OpenFileSource(filepath.Join(dir, "nope.trace"), 0); err == nil {
		t.Error("missing file opened")
	}
}

func TestOpenDirSourceStriping(t *testing.T) {
	dir := t.TempDir()
	recsA := writeCapture(t, filepath.Join(dir, "core-000.trace"), 1, 200)
	recsB := writeCapture(t, filepath.Join(dir, "core-001.trace"), 2, 200)

	var rec Record
	// Cores 0 and 1 get their own files from record 0.
	for core, recs := range [][]Record{recsA, recsB} {
		src, err := OpenDirSource(dir, core)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Next(&rec); err != nil {
			t.Fatal(err)
		}
		src.Close()
		if rec != canonical(recs[0]) {
			t.Fatalf("core %d did not start its own file", core)
		}
	}

	// Core 2 shares file 0, striped DirStripeRecords in (mod file length).
	src, err := OpenDirSource(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Next(&rec); err != nil {
		t.Fatal(err)
	}
	if rec != canonical(recsA[DirStripeRecords%len(recsA)]) {
		t.Fatalf("striped core 2 started at the wrong record")
	}

	if _, err := OpenDirSource(dir, -1); err == nil {
		t.Error("negative core accepted")
	}
	if _, err := OpenDirSource(t.TempDir(), 0); err == nil {
		t.Error("directory without captures accepted")
	}
}
