package trace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Source is the seam between workload supply and the timing model: anything
// that yields a core's retire-order basic-block stream. The synthetic
// Executor, file-backed trace replay (FileSource), and recorded in-memory
// streams (MemSource) all implement it, so the multi-core simulator is
// agnostic to where its instruction stream comes from.
//
// Next fills rec with the next executed basic block. Sources that model an
// endless server (Executor, looping FileSource) never return io.EOF; finite
// sources return io.EOF exactly once the stream is exhausted. Reset rewinds
// the source to its initial state so that an identical record sequence is
// replayed — a Source is deterministic in its construction parameters
// (seed, file offset), and Reset must restore exactly that determinism.
//
// NextBatch fills dst with up to len(dst) records and returns how many were
// produced; it is Next amortized — one interface dispatch (and, for file
// sources, one bulk decode) per batch instead of per basic block. The
// records NextBatch yields are exactly the records the same number of Next
// calls would have yielded. n < len(dst) only when an error (including
// io.EOF on finite sources) stopped the batch early; the first n records
// are valid either way. An errored source's subsequent behavior is
// implementation-defined (exhausted finite sources keep returning io.EOF;
// a corrupt stream is not resumable) — callers must treat any error as
// final for the stream. Implementations with no batched fast path can
// delegate to DefaultNextBatch.
type Source interface {
	Next(rec *Record) error
	NextBatch(dst []Record) (int, error)
	Reset() error
}

// DefaultNextBatch is the one-record adapter behind Source.NextBatch: it
// fills dst by calling next once per record. Sources without a bulk decode
// path implement NextBatch as DefaultNextBatch(s.Next, dst).
func DefaultNextBatch(next func(*Record) error, dst []Record) (int, error) {
	for i := range dst {
		if err := next(&dst[i]); err != nil {
			return i, err
		}
	}
	return len(dst), nil
}

// CoreSeed derives core i's executor seed from a workload seed. It is the
// single definition shared by the simulator's system assembly and trace
// capture, so a capture written with CoreSeed replays bit-identically
// against the live executors it stands in for.
func CoreSeed(workloadSeed uint64, core int) uint64 {
	return workloadSeed ^ uint64(0x9e3779b9*uint32(core+1))
}

// MemSource replays a recorded in-memory record sequence. With Loop set it
// wraps at the end (an endless source, like the Executor); otherwise Next
// returns io.EOF once exhausted.
type MemSource struct {
	Recs []Record
	Loop bool

	pos   int
	Wraps uint64
}

// NewMemSource builds a source over recs; loop selects endless replay.
func NewMemSource(recs []Record, loop bool) *MemSource {
	return &MemSource{Recs: recs, Loop: loop}
}

// RecordFrom drains n records from src into a new looping MemSource —
// a convenient way to freeze any source's prefix for tests.
func RecordFrom(src Source, n int) (*MemSource, error) {
	recs := make([]Record, n)
	for i := range recs {
		if err := src.Next(&recs[i]); err != nil {
			return nil, err
		}
	}
	return NewMemSource(recs, true), nil
}

// Next implements Source.
func (m *MemSource) Next(rec *Record) error {
	if m.pos >= len(m.Recs) {
		if !m.Loop || len(m.Recs) == 0 {
			return io.EOF
		}
		m.pos = 0
		m.Wraps++
	}
	*rec = m.Recs[m.pos]
	m.pos++
	return nil
}

// NextBatch implements Source with bulk copies: whole runs of the recorded
// sequence land in dst with one copy per wrap instead of one call per
// record.
func (m *MemSource) NextBatch(dst []Record) (int, error) {
	n := 0
	for n < len(dst) {
		if m.pos >= len(m.Recs) {
			if !m.Loop || len(m.Recs) == 0 {
				return n, io.EOF
			}
			m.pos = 0
			m.Wraps++
		}
		c := copy(dst[n:], m.Recs[m.pos:])
		m.pos += c
		n += c
	}
	return n, nil
}

// Reset implements Source.
func (m *MemSource) Reset() error {
	m.pos = 0
	m.Wraps = 0
	return nil
}

// FileSource streams records from a CFLTRC01 trace file. The source skips
// Offset records after the header when opened (and on Reset), which lets
// several cores share one capture at deterministic, de-correlated starting
// points; at end of file it wraps to the first record, modeling the endless
// request stream the capture sampled.
type FileSource struct {
	path   string
	f      *os.File
	r      *Reader
	offset uint64

	first   bool // no record read since (re)open: guards empty files
	Records uint64
	Wraps   uint64
}

// OpenFileSource opens a trace file, skipping offset records.
func OpenFileSource(path string, offset uint64) (*FileSource, error) {
	s := &FileSource{path: path, offset: offset}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s.f = f
	if err := s.rewind(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// rewind validates the header and positions the source at the configured
// record offset (modulo the file's record count). Records are fixed-width,
// so the skip is one Stat and one Seek, not offset decodes.
func (s *FileSource) rewind() error {
	if err := s.seekFirstRecord(); err != nil {
		return err
	}
	s.first = true
	if s.offset == 0 {
		return nil
	}
	fi, err := s.f.Stat()
	if err != nil {
		return err
	}
	nRecs := (fi.Size() - int64(headerBytes)) / recordBytes
	if nRecs <= 0 {
		return fmt.Errorf("trace: %s: empty trace file", s.path)
	}
	s.first = false
	skip := int64(s.offset % uint64(nRecs))
	if skip == 0 {
		return nil
	}
	if _, err := s.f.Seek(int64(headerBytes)+skip*recordBytes, io.SeekStart); err != nil {
		return err
	}
	s.r = newRawReader(s.f)
	return nil
}

// seekFirstRecord repositions the reader just past the header.
func (s *FileSource) seekFirstRecord() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r, err := NewReader(s.f)
	if err != nil {
		return fmt.Errorf("trace: %s: %w", s.path, err)
	}
	s.r = r
	return nil
}

// Next implements Source, wrapping at end of file.
func (s *FileSource) Next(rec *Record) error {
	for {
		err := s.r.Read(rec)
		if err == nil {
			s.first = false
			s.Records++
			return nil
		}
		if !errors.Is(err, io.EOF) {
			return fmt.Errorf("trace: %s: %w", s.path, err)
		}
		if s.first {
			return fmt.Errorf("trace: %s: empty trace file", s.path)
		}
		if err := s.seekFirstRecord(); err != nil {
			return err
		}
		s.first = true
		s.Wraps++
	}
}

// NextBatch implements Source over the Reader's bulk decode path: one
// buffered read and one validation pass per batch, wrapping to the first
// record at end of file exactly as Next does.
func (s *FileSource) NextBatch(dst []Record) (int, error) {
	n := 0
	for n < len(dst) {
		k, err := s.r.ReadBatch(dst[n:])
		if k > 0 {
			s.first = false
			s.Records += uint64(k)
			n += k
		}
		if err == nil {
			continue
		}
		if !errors.Is(err, io.EOF) {
			return n, fmt.Errorf("trace: %s: %w", s.path, err)
		}
		if s.first {
			return n, fmt.Errorf("trace: %s: empty trace file", s.path)
		}
		if err := s.seekFirstRecord(); err != nil {
			return n, err
		}
		s.first = true
		s.Wraps++
	}
	return n, nil
}

// Reset implements Source.
func (s *FileSource) Reset() error {
	s.Records, s.Wraps = 0, 0
	return s.rewind()
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// Path returns the file backing this source.
func (s *FileSource) Path() string { return s.path }

// DirStripeRecords is the per-wrap record offset applied when more cores
// replay a capture directory than it has files: core i reads file i mod F
// starting DirStripeRecords*(i/F) records in, so sharing cores walk the
// same capture from deterministic, well-separated points.
const DirStripeRecords = 4096

// TraceFiles lists the capture files of a directory (sorted by name, the
// order cores are assigned in). A capture directory holds one "*.trace"
// file per captured core (see cmd/tracegen -cores).
func TraceFiles(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("trace: no *.trace files in %s", dir)
	}
	sort.Strings(files)
	return files, nil
}

// OpenDirSource opens core's replay source over a capture directory,
// striping cores across the directory's files: core i reads file i mod F
// with a record offset of DirStripeRecords*(i/F). With at least as many
// files as cores, every core replays its own file from the start — the
// configuration that reproduces a live multi-core run exactly.
func OpenDirSource(dir string, core int) (*FileSource, error) {
	if core < 0 {
		return nil, fmt.Errorf("trace: negative core %d", core)
	}
	files, err := TraceFiles(dir)
	if err != nil {
		return nil, err
	}
	offset := uint64(core/len(files)) * DirStripeRecords
	return OpenFileSource(files[core%len(files)], offset)
}

// Capture streams records from src into dst (header included) until at
// least instr instructions have been written, returning the record and
// instruction counts. It is the single capture loop behind CaptureTrace
// and tracegen, so every capture path writes byte-identical files.
func Capture(dst io.Writer, src Source, instr uint64) (records, instructions uint64, err error) {
	return CaptureCtx(context.Background(), dst, src, instr)
}

// captureCheckRecords is how often the capture loop polls its context: a
// few thousand fixed-width records between polls keeps cancellation
// latency in the microseconds without measurable per-record cost.
const captureCheckRecords = 4096

// CaptureCtx is Capture honoring mid-capture cancellation: the loop polls
// ctx every captureCheckRecords records and abandons the (truncated,
// unusable) file with ctx's error. A capture that completes is
// byte-identical whether or not a context is attached.
func CaptureCtx(ctx context.Context, dst io.Writer, src Source, instr uint64) (records, instructions uint64, err error) {
	tw, err := NewWriter(dst)
	if err != nil {
		return 0, 0, err
	}
	var rec Record
	for instructions < instr {
		if records%captureCheckRecords == 0 {
			if err := ctx.Err(); err != nil {
				return records, instructions, err
			}
		}
		if err := src.Next(&rec); err != nil {
			return records, instructions, err
		}
		if err := tw.Write(&rec); err != nil {
			return records, instructions, err
		}
		records++
		instructions += uint64(rec.N)
	}
	return records, instructions, tw.Flush()
}

// Compile-time interface checks.
var (
	_ Source = (*Executor)(nil)
	_ Source = (*MemSource)(nil)
	_ Source = (*FileSource)(nil)
)
