package trace

import (
	"testing"

	"confluence/internal/synth"
)

func benchWorkload(b *testing.B) *synth.Workload {
	b.Helper()
	p := synth.OLTPDB2()
	p.Functions = 1100
	p.RequestTypes = 8
	p.Concurrency = 8
	p.Seed = 21
	w, err := synth.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkExecutorNext measures raw control-flow walk throughput.
func BenchmarkExecutorNext(b *testing.B) {
	w := benchWorkload(b)
	e := NewExecutor(w, 1)
	var rec Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Next(&rec)
	}
	b.ReportMetric(float64(e.Instructions)/float64(b.N), "instr/record")
}

// BenchmarkBuild measures workload generation cost.
func BenchmarkBuild(b *testing.B) {
	p := synth.OLTPDB2()
	p.Functions = 1100
	p.RequestTypes = 8
	for i := 0; i < b.N; i++ {
		if _, err := synth.Build(p); err != nil {
			b.Fatal(err)
		}
	}
}
