package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"confluence/internal/isa"
)

// canonical returns the on-disk form of rec: the Writer stores branch
// fields only for branch records and the Reader reconstructs Br.PC, so a
// round trip reproduces exactly this.
func canonical(rec Record) Record {
	out := rec
	if rec.Br.Kind.IsBranch() {
		out.Br.PC = rec.Start + isa.Addr((rec.N-1)*isa.InstrBytes)
	} else {
		out.Br = BranchInfo{Kind: rec.Br.Kind}
	}
	return out
}

// FuzzTraceRoundTrip drives arbitrary records through Writer then Reader
// and demands either a clean encode-time rejection or a bit-identical
// decode — no silent mangling in between.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint64(0x40_0000), uint16(4), byte(isa.BrCond), true, false, uint64(0x40_0040), uint64(0x40_0040), uint16(3))
	f.Add(uint64(0x40_1000), uint16(1), byte(isa.BrNone), false, true, uint64(0), uint64(0x40_1004), uint16(0))
	f.Add(uint64(0x7FFF_FFFF_FFFF), uint16(15), byte(isa.BrRet), true, false, uint64(0x1234), uint64(0x1234), uint16(0xFFFF))
	f.Add(uint64(1), uint16(0), byte(200), true, true, ^uint64(0), ^uint64(0), uint16(1))

	f.Fuzz(func(t *testing.T, start uint64, n uint16, kind byte, taken, boundary bool, target, next uint64, reqType uint16) {
		rec := Record{
			Start:       isa.Addr(start),
			N:           int(n),
			Next:        isa.Addr(next),
			ReqType:     int(reqType),
			ReqBoundary: boundary,
			Br: BranchInfo{
				Kind:   isa.BranchKind(kind),
				Taken:  taken,
				Target: isa.Addr(target),
			},
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		err = w.Write(&rec)
		if !rec.Br.Kind.Valid() || rec.N < 1 {
			if err == nil {
				t.Fatalf("Writer accepted invalid record %+v", rec)
			}
			return
		}
		if err != nil {
			t.Fatalf("Writer rejected valid record %+v: %v", rec, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var got Record
		if err := r.Read(&got); err != nil {
			t.Fatalf("Reader failed on Writer output for %+v: %v", rec, err)
		}
		if want := canonical(rec); got != want {
			t.Fatalf("round trip diverged:\n  wrote %+v\n  want  %+v\n  read  %+v", rec, want, got)
		}
		if err := r.Read(&got); err != io.EOF {
			t.Fatalf("expected EOF after one record, got %v", err)
		}
	})
}

// corruptedCorpus returns a valid two-record stream plus targeted
// corruptions of it: header damage, truncation, and bad field bytes.
func corruptedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	recs := []Record{
		{Start: 0x40_0000, N: 3, Next: 0x40_0040, Br: BranchInfo{PC: 0x40_0008, Kind: isa.BrUncond, Taken: true, Target: 0x40_0040}},
		{Start: 0x40_0040, N: 5, Next: 0x40_0054, ReqBoundary: true},
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(pos int, b byte) []byte {
		m := bytes.Clone(valid)
		m[pos] = b
		return m
	}
	const hdr = 8
	return [][]byte{
		valid,
		{},                                 // empty input
		valid[:4],                          // truncated magic
		valid[:hdr],                        // header only
		valid[:hdr+recordBytes/2],          // truncated record
		valid[:len(valid)-1],               // truncated final record
		mutate(0, 'X'),                     // bad magic
		mutate(hdr+10, 0xEE),               // out-of-range branch kind byte
		mutate(hdr+11, 0x80),               // unknown flag bits
		mutate(hdr+8, 0), mutate(hdr+9, 0), // zero instruction count
		mutate(hdr+recordBytes+11, 0x01), // taken flag on a fall-through record
		mutate(hdr+recordBytes+12, 0xDE), // branch target on a fall-through record
	}
}

// FuzzReaderCorrupt feeds arbitrary byte streams to the Reader: it must
// never panic, and every record it does yield must be well-formed.
func FuzzReaderCorrupt(f *testing.F) {
	for _, seed := range corruptedCorpus(f) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // header rejected: fine
		}
		var rec Record
		for i := 0; ; i++ {
			err := r.Read(&rec)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // corruption surfaced as an error: fine
			}
			if !rec.Br.Kind.Valid() {
				t.Fatalf("record %d decoded with invalid branch kind %d", i, uint8(rec.Br.Kind))
			}
			if rec.N < 1 {
				t.Fatalf("record %d decoded with instruction count %d", i, rec.N)
			}
			if !rec.Br.Kind.IsBranch() && (rec.Br.Taken || rec.Br.PC != 0 || rec.Br.Target != 0) {
				t.Fatalf("record %d: fall-through decoded with branch state %+v", i, rec.Br)
			}
			if i > len(data) {
				t.Fatalf("reader yielded more records than the input can hold")
			}
		}
	})
}

// TestReaderRejectsCorruptedCorpus pins the corpus behaviour in a normal
// test run (the fuzz engine only executes seeds under -fuzz).
func TestReaderRejectsCorruptedCorpus(t *testing.T) {
	corpus := corruptedCorpus(t)
	for i, data := range corpus {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		var rec Record
		for {
			if err := r.Read(&rec); err != nil {
				break
			}
			if !rec.Br.Kind.Valid() || rec.N < 1 {
				t.Errorf("corpus %d: invalid record decoded: %+v", i, rec)
				break
			}
		}
	}
	// The two corruptions the original decoder silently accepted must now
	// surface as errors, not records.
	badKind := corpus[7]
	r, err := NewReader(bytes.NewReader(badKind))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := r.Read(&rec); err == nil {
		t.Error("out-of-range branch kind byte decoded without error")
	}
	badFlags := corpus[8]
	r, err = NewReader(bytes.NewReader(badFlags))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Read(&rec); err == nil {
		t.Error("unknown flag bits decoded without error")
	}
}
