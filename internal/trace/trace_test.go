package trace

import (
	"math"
	"testing"

	"confluence/internal/isa"
	"confluence/internal/program"
	"confluence/internal/synth"
)

func testWorkload(t *testing.T) *synth.Workload {
	t.Helper()
	p := synth.OLTPDB2()
	p.Functions = 320
	p.RequestTypes = 4
	p.Concurrency = 4
	p.QuantumInstr = 800
	p.Seed = 77
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestExecutorProducesValidRecords(t *testing.T) {
	w := testWorkload(t)
	e := NewExecutor(w, 1)
	var rec Record
	for i := 0; i < 50_000; i++ {
		e.Next(&rec)
		bb := w.Prog.BlockAt(rec.Start)
		if bb == nil {
			t.Fatalf("record %d: no basic block at %#x", i, rec.Start)
		}
		if rec.N != bb.NInstr {
			t.Fatalf("record %d: N=%d, block has %d", i, rec.N, bb.NInstr)
		}
		if rec.Br.Kind.IsBranch() {
			if rec.Br.PC != bb.LastPC() {
				t.Fatalf("record %d: branch PC %#x, want %#x", i, rec.Br.PC, bb.LastPC())
			}
			if bb.Branch == nil || bb.Branch.Kind != rec.Br.Kind {
				t.Fatalf("record %d: branch kind mismatch", i)
			}
		} else if bb.Branch != nil {
			t.Fatalf("record %d: block has branch but record says none", i)
		}
	}
}

func TestExecutorSuccessorConsistency(t *testing.T) {
	w := testWorkload(t)
	e := NewExecutor(w, 2)
	var rec, next Record
	e.Next(&rec)
	for i := 0; i < 50_000; i++ {
		e.Next(&next)
		// The next executed block must be the one the previous record
		// names — including across context switches, because rec.Next is
		// patched at yield points.
		if next.Start != rec.Next {
			t.Fatalf("step %d: executed %#x, previous record promised %#x",
				i, next.Start, rec.Next)
		}
		// And within a context, a non-boundary record follows its branch.
		if !next.ReqBoundary && rec.Br.Kind.IsBranch() && rec.Br.Taken {
			if rec.Br.Target != next.Start {
				t.Fatalf("step %d: taken target %#x but executed %#x",
					i, rec.Br.Target, next.Start)
			}
		}
		rec = next
	}
}

func TestExecutorDeterminism(t *testing.T) {
	w := testWorkload(t)
	a, b := NewExecutor(w, 7), NewExecutor(w, 7)
	var ra, rb Record
	for i := 0; i < 20_000; i++ {
		a.Next(&ra)
		b.Next(&rb)
		if ra != rb {
			t.Fatalf("step %d: executors with equal seeds diverged", i)
		}
	}
	c := NewExecutor(w, 8)
	diverged := false
	var rc Record
	a2 := NewExecutor(w, 7)
	for i := 0; i < 5_000; i++ {
		a2.Next(&ra)
		c.Next(&rc)
		if ra != rc {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds never diverged")
	}
}

func TestExecutorRequestsProgress(t *testing.T) {
	w := testWorkload(t)
	e := NewExecutor(w, 3)
	var rec Record
	boundaries := 0
	for e.Instructions < 400_000 {
		e.Next(&rec)
		if rec.ReqBoundary {
			boundaries++
		}
	}
	if e.Requests < 5 {
		t.Errorf("only %d requests in 400K instructions", e.Requests)
	}
	if boundaries == 0 {
		t.Error("no request boundaries marked")
	}
}

func TestExecutorContextSwitching(t *testing.T) {
	w := testWorkload(t) // concurrency 4, quantum 800
	e := NewExecutor(w, 4)
	var rec Record
	for e.Instructions < 200_000 {
		e.Next(&rec)
	}
	if e.Switches == 0 {
		t.Fatal("no context switches with concurrency > 1")
	}
	// Rough rate: about one switch per quantum.
	perSwitch := float64(e.Instructions) / float64(e.Switches)
	if perSwitch < 200 || perSwitch > 5000 {
		t.Errorf("switch every %.0f instructions; quantum is %d", perSwitch, w.Prof.QuantumInstr)
	}
}

func TestSingleContextNeverSwitches(t *testing.T) {
	p := synth.OLTPDB2()
	p.Functions = 320
	p.RequestTypes = 4
	p.Concurrency = 1
	p.Seed = 9
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(w, 1)
	var rec Record
	for e.Instructions < 100_000 {
		e.Next(&rec)
	}
	if e.Switches != 0 {
		t.Errorf("%d switches with a single context", e.Switches)
	}
}

func TestLoopTripsQuasiDeterministic(t *testing.T) {
	// Single context: interleaved connections would overlap executions of
	// the same loop site and garble the per-execution counting below.
	p := synth.OLTPDB2()
	p.Functions = 320
	p.RequestTypes = 4
	p.Concurrency = 1
	p.Seed = 77
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find a loop site and count per-execution trips over a long run.
	var site *program.BranchSite
	for _, b := range w.Prog.Blocks() {
		if b.Branch != nil && b.Branch.Loop == program.LoopBackEdge && b.Branch.TripMean >= 4 {
			site = b.Branch
			break
		}
	}
	if site == nil {
		t.Skip("no back-edge loop in test workload")
	}
	e := NewExecutor(w, 5)
	var rec Record
	trips := 0
	var counts []int
	for i := 0; i < 3_000_000 && len(counts) < 50; i++ {
		e.Next(&rec)
		if rec.Br.PC == site.PC {
			if rec.Br.Taken {
				trips++
			} else {
				counts = append(counts, trips+1)
				trips = 0
			}
		}
	}
	if len(counts) < 5 {
		t.Skipf("loop site executed only %d times", len(counts))
	}
	mean := 0.0
	for _, c := range counts {
		mean += float64(c)
	}
	mean /= float64(len(counts))
	if math.Abs(mean-float64(site.TripMean)) > 1.5 {
		t.Errorf("observed mean trips %.1f, site mean %d", mean, site.TripMean)
	}
	for _, c := range counts {
		if c < site.TripMean-1 || c > site.TripMean+1 {
			t.Errorf("trip count %d strays beyond ±1 of %d", c, site.TripMean)
		}
	}
}

func TestStableIndexIsStable(t *testing.T) {
	for pc := uint64(0); pc < 100; pc++ {
		a := stableIndex(pc, 3, 7)
		b := stableIndex(pc, 3, 7)
		if a != b {
			t.Fatal("stableIndex not deterministic")
		}
		if a < 0 || a >= 7 {
			t.Fatalf("stableIndex out of range: %d", a)
		}
	}
	// Different request types should (usually) select different slots.
	diff := 0
	for pc := uint64(0); pc < 100; pc++ {
		if stableIndex(pc*64, 0, 8) != stableIndex(pc*64, 1, 8) {
			diff++
		}
	}
	if diff < 50 {
		t.Errorf("request type barely affects dispatch: %d/100 differ", diff)
	}
}

func TestSkip(t *testing.T) {
	w := testWorkload(t)
	e := NewExecutor(w, 11)
	e.Skip(10_000)
	if e.Instructions < 10_000 {
		t.Errorf("Skip advanced only %d instructions", e.Instructions)
	}
}

func TestCallStackBalance(t *testing.T) {
	w := testWorkload(t)
	e := NewExecutor(w, 6)
	var rec Record
	// Depth per context never exceeds the layer count (no recursion).
	maxDepth := w.Prof.Layers + 1
	for i := 0; i < 200_000; i++ {
		e.Next(&rec)
		for _, c := range e.ctxs {
			if len(c.stack) > maxDepth {
				t.Fatalf("stack depth %d exceeds layers %d", len(c.stack), maxDepth)
			}
		}
	}
}

func TestIndirectTargetsComeFromTable(t *testing.T) {
	w := testWorkload(t)
	e := NewExecutor(w, 12)
	var rec Record
	checked := 0
	for i := 0; i < 300_000 && checked < 500; i++ {
		e.Next(&rec)
		if rec.Br.Kind != isa.BrIndirect && rec.Br.Kind != isa.BrIndCall {
			continue
		}
		bb := w.Prog.BlockAt(rec.Start)
		ok := false
		for _, tgt := range bb.Branch.Targets {
			if tgt == rec.Br.Target {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("indirect at %#x resolved to %#x, not in table %v",
				rec.Br.PC, rec.Br.Target, bb.Branch.Targets)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no indirect branches executed")
	}
}
