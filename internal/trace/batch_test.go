package trace

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"confluence/internal/synth"
)

// batchWorkload builds a small deterministic workload for batch tests.
func batchWorkload(t testing.TB) *synth.Workload {
	t.Helper()
	p := synth.OLTPDB2()
	p.Functions = 200
	p.RequestTypes = 3
	p.Concurrency = 3
	p.Seed = 99
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// drainNext reads n records via Next.
func drainNext(t *testing.T, src Source, n int) []Record {
	t.Helper()
	out := make([]Record, n)
	for i := range out {
		if err := src.Next(&out[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	return out
}

// drainBatch reads n records via NextBatch in uneven chunks, so chunk
// boundaries land mid-stream.
func drainBatch(t *testing.T, src Source, n int) []Record {
	t.Helper()
	out := make([]Record, 0, n)
	sizes := []int{1, 7, 64, 3, 129, 5}
	for i := 0; len(out) < n; i++ {
		want := sizes[i%len(sizes)]
		if rem := n - len(out); want > rem {
			want = rem
		}
		dst := make([]Record, want)
		k, err := src.NextBatch(dst)
		if err != nil {
			t.Fatalf("batch at %d: %v", len(out), err)
		}
		if k != want {
			t.Fatalf("batch at %d: got %d records, want %d", len(out), k, want)
		}
		out = append(out, dst...)
	}
	return out
}

// TestNextBatchMatchesNext pins the batched contract on every Source
// implementation: NextBatch yields exactly the records the same number of
// Next calls would have yielded — executors, wrapping file replay (across
// the wrap boundary), and looping in-memory sources alike.
func TestNextBatchMatchesNext(t *testing.T) {
	w := batchWorkload(t)
	const n = 3000

	dir := t.TempDir()
	path := filepath.Join(dir, "core.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// A short capture, so n records wrap the file several times.
	if _, _, err := Capture(f, NewExecutor(w, 7), 4096); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	mem, err := RecordFrom(NewExecutor(w, 3), 700) // looping, n wraps it
	if err != nil {
		t.Fatal(err)
	}

	sources := []struct {
		name string
		mk   func() Source
	}{
		{"Executor", func() Source { return NewExecutor(w, 42) }},
		{"FileSource", func() Source {
			s, err := OpenFileSource(path, 11)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"MemSource", func() Source {
			if err := mem.Reset(); err != nil {
				t.Fatal(err)
			}
			return NewMemSource(mem.Recs, true)
		}},
	}
	for _, tc := range sources {
		a := drainNext(t, tc.mk(), n)
		b := drainBatch(t, tc.mk(), n)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: record %d differs:\n next  %+v\n batch %+v", tc.name, i, a[i], b[i])
				break
			}
		}
	}
}

// TestNextBatchFiniteEOF: a finite MemSource returns the short batch plus
// io.EOF, and keeps returning io.EOF afterwards.
func TestNextBatchFiniteEOF(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i].N = i + 1
	}
	src := NewMemSource(recs, false)
	dst := make([]Record, 64)
	n, err := src.NextBatch(dst)
	if n != 10 || !errors.Is(err, io.EOF) {
		t.Fatalf("got (%d, %v), want (10, EOF)", n, err)
	}
	for i := 0; i < 10; i++ {
		if dst[i].N != i+1 {
			t.Fatalf("record %d corrupted: %+v", i, dst[i])
		}
	}
	if n, err := src.NextBatch(dst); n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("second batch got (%d, %v), want (0, EOF)", n, err)
	}
}

// TestDefaultNextBatch covers the one-record adapter, including an error
// cut mid-batch.
func TestDefaultNextBatch(t *testing.T) {
	calls := 0
	next := func(rec *Record) error {
		if calls == 5 {
			return io.ErrUnexpectedEOF
		}
		calls++
		rec.N = calls
		return nil
	}
	dst := make([]Record, 8)
	n, err := DefaultNextBatch(next, dst)
	if n != 5 || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got (%d, %v), want (5, ErrUnexpectedEOF)", n, err)
	}
	for i := 0; i < 5; i++ {
		if dst[i].N != i+1 {
			t.Fatalf("record %d corrupted: %+v", i, dst[i])
		}
	}
}

// TestReadBatchRejectsCorruption: ReadBatch must reject exactly what Read
// rejects, with the valid prefix intact.
func TestReadBatchRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := batchWorkload(t)
	if _, _, err := Capture(f, NewExecutor(w, 5), 256); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the branch-kind byte of the 4th record.
	data[headerBytes+3*recordBytes+10] = 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fr, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	r, err := NewReader(fr)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Record, 16)
	n, err := r.ReadBatch(dst)
	if n != 3 || err == nil {
		t.Fatalf("got (%d, %v), want (3, corruption error)", n, err)
	}
}

// BenchmarkFileSourceNextBatch measures the batched file decode against
// the per-record path (the satellite's "one virtual call + bounds checks
// per basic block" claim).
func BenchmarkFileSourceNextBatch(b *testing.B) {
	w := batchWorkload(b)
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.trace")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := Capture(f, NewExecutor(w, 1), 200_000); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	src, err := OpenFileSource(path, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()

	b.Run("Next", func(b *testing.B) {
		var rec Record
		for i := 0; i < b.N; i++ {
			if err := src.Next(&rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NextBatch64", func(b *testing.B) {
		dst := make([]Record, 64)
		for i := 0; i < b.N; i += len(dst) {
			if _, err := src.NextBatch(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}
