package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"confluence/internal/isa"
)

// Binary trace file format: a fixed header followed by fixed-width records.
// The format exists for offline inspection and interchange (cmd/tracegen);
// the simulator itself streams records straight from Executors.

var fileMagic = [8]byte{'C', 'F', 'L', 'T', 'R', 'C', '0', '1'}

const recordBytes = 8 + 2 + 1 + 1 + 8 + 8 + 2 // Start,N,Kind,Taken,Target,Next,ReqType

// Writer serializes records to a stream.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	buf [recordBytes]byte
}

// NewWriter writes the header and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (t *Writer) Write(rec *Record) error {
	b := t.buf[:]
	binary.LittleEndian.PutUint64(b[0:], uint64(rec.Start))
	binary.LittleEndian.PutUint16(b[8:], uint16(rec.N))
	b[10] = byte(rec.Br.Kind)
	b[11] = 0
	if rec.Br.Taken {
		b[11] = 1
	}
	if rec.ReqBoundary {
		b[11] |= 2
	}
	binary.LittleEndian.PutUint64(b[12:], uint64(rec.Br.Target))
	binary.LittleEndian.PutUint64(b[20:], uint64(rec.Next))
	binary.LittleEndian.PutUint16(b[28:], uint16(rec.ReqType))
	if _, err := t.w.Write(b); err != nil {
		return err
	}
	t.n++
	return nil
}

// Flush flushes buffered records; call once when done.
func (t *Writer) Flush() error { return t.w.Flush() }

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.n }

// Reader deserializes records written by Writer.
type Reader struct {
	r   *bufio.Reader
	buf [recordBytes]byte
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != fileMagic {
		return nil, errors.New("trace: bad magic: not a trace file")
	}
	return &Reader{r: br}, nil
}

// Read fills rec with the next record; it returns io.EOF at end of stream.
func (t *Reader) Read(rec *Record) error {
	if _, err := io.ReadFull(t.r, t.buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("trace: truncated record: %w", err)
		}
		return err
	}
	b := t.buf[:]
	rec.Start = isa.Addr(binary.LittleEndian.Uint64(b[0:]))
	rec.N = int(binary.LittleEndian.Uint16(b[8:]))
	rec.Br.Kind = isa.BranchKind(b[10])
	rec.Br.Taken = b[11]&1 != 0
	rec.ReqBoundary = b[11]&2 != 0
	rec.Br.Target = isa.Addr(binary.LittleEndian.Uint64(b[12:]))
	rec.Next = isa.Addr(binary.LittleEndian.Uint64(b[20:]))
	rec.ReqType = int(binary.LittleEndian.Uint16(b[28:]))
	if rec.Br.Kind.IsBranch() {
		rec.Br.PC = rec.Start + isa.Addr((rec.N-1)*isa.InstrBytes)
	} else {
		rec.Br.PC = 0
	}
	return nil
}
