package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"confluence/internal/isa"
)

// Binary trace file format: a fixed header followed by fixed-width records.
// The format exists for offline inspection and interchange (cmd/tracegen);
// the simulator itself streams records straight from Executors.

var fileMagic = [8]byte{'C', 'F', 'L', 'T', 'R', 'C', '0', '1'}

const (
	headerBytes = len(fileMagic)
	recordBytes = 8 + 2 + 1 + 1 + 8 + 8 + 2 // Start,N,Kind,Taken,Target,Next,ReqType
)

// Writer serializes records to a stream.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	buf [recordBytes]byte
}

// NewWriter writes the header and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record. The on-disk form is canonical: branch fields
// (taken flag, target) are stored only for branch records, so any record a
// Writer emits reads back bit-identical through a Reader.
func (t *Writer) Write(rec *Record) error {
	if !rec.Br.Kind.Valid() {
		return fmt.Errorf("trace: cannot encode branch kind %d", uint8(rec.Br.Kind))
	}
	if rec.N < 1 || rec.N > 0xFFFF {
		return fmt.Errorf("trace: record instruction count %d out of range", rec.N)
	}
	if rec.ReqType < 0 || rec.ReqType > 0xFFFF {
		return fmt.Errorf("trace: record request type %d out of range", rec.ReqType)
	}
	b := t.buf[:]
	binary.LittleEndian.PutUint64(b[0:], uint64(rec.Start))
	binary.LittleEndian.PutUint16(b[8:], uint16(rec.N))
	b[10] = byte(rec.Br.Kind)
	b[11] = 0
	target := isa.Addr(0)
	if rec.Br.Kind.IsBranch() {
		target = rec.Br.Target
		if rec.Br.Taken {
			b[11] = 1
		}
	}
	if rec.ReqBoundary {
		b[11] |= 2
	}
	binary.LittleEndian.PutUint64(b[12:], uint64(target))
	binary.LittleEndian.PutUint64(b[20:], uint64(rec.Next))
	binary.LittleEndian.PutUint16(b[28:], uint16(rec.ReqType))
	if _, err := t.w.Write(b); err != nil {
		return err
	}
	t.n++
	return nil
}

// Flush flushes buffered records; call once when done.
func (t *Writer) Flush() error { return t.w.Flush() }

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.n }

// Reader deserializes records written by Writer.
type Reader struct {
	r     *bufio.Reader
	buf   [recordBytes]byte
	batch []byte // bulk-read scratch for ReadBatch, grown on demand
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != fileMagic {
		return nil, errors.New("trace: bad magic: not a trace file")
	}
	return &Reader{r: br}, nil
}

// newRawReader returns a record reader over a stream positioned at a
// record boundary, with the header already consumed or seeked past (the
// FileSource stripe skip).
func newRawReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Read fills rec with the next record; it returns io.EOF at end of stream.
// Corrupted records — an out-of-range branch-kind byte, unknown flag bits,
// a zero instruction count, or a branch-taken flag on a fall-through record
// — are rejected rather than silently decoded into impossible Records.
func (t *Reader) Read(rec *Record) error {
	if _, err := io.ReadFull(t.r, t.buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("trace: truncated record: %w", err)
		}
		return err
	}
	return decodeRecord(t.buf[:], rec)
}

// maxBatchBytes caps ReadBatch's scratch buffer (≈512 records); larger
// batches decode in chunks.
const maxBatchBytes = 512 * recordBytes

// ReadBatch decodes up to len(dst) records in one buffered read and one
// validation pass, returning how many were produced. On error the first n
// records are valid; a clean end of stream at a record boundary returns
// io.EOF, a partial trailing record the same truncation error Read reports.
func (t *Reader) ReadBatch(dst []Record) (int, error) {
	n := 0
	for n < len(dst) {
		want := (len(dst) - n) * recordBytes
		if want > maxBatchBytes {
			want = maxBatchBytes
		}
		if cap(t.batch) < want {
			t.batch = make([]byte, maxBatchBytes)
		}
		buf := t.batch[:want]
		m, err := io.ReadFull(t.r, buf)
		full := m / recordBytes
		for i := 0; i < full; i++ {
			if derr := decodeRecord(buf[i*recordBytes:(i+1)*recordBytes], &dst[n]); derr != nil {
				return n, derr
			}
			n++
		}
		if err != nil {
			if m%recordBytes != 0 {
				return n, fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return n, io.EOF
			}
			return n, err
		}
	}
	return n, nil
}

// decodeRecord validates and decodes one fixed-width record image. It is
// the single decode path behind Read and ReadBatch, so both reject exactly
// the same corruptions.
func decodeRecord(b []byte, rec *Record) error {
	rec.Start = isa.Addr(binary.LittleEndian.Uint64(b[0:]))
	rec.N = int(binary.LittleEndian.Uint16(b[8:]))
	if rec.N == 0 {
		return errors.New("trace: corrupt record: zero instruction count")
	}
	rec.Br.Kind = isa.BranchKind(b[10])
	if !rec.Br.Kind.Valid() {
		return fmt.Errorf("trace: corrupt record: branch kind byte %d out of range", b[10])
	}
	if b[11]&^3 != 0 {
		return fmt.Errorf("trace: corrupt record: unknown flag bits %#x", b[11])
	}
	rec.Br.Taken = b[11]&1 != 0
	rec.ReqBoundary = b[11]&2 != 0
	rec.Br.Target = isa.Addr(binary.LittleEndian.Uint64(b[12:]))
	rec.Next = isa.Addr(binary.LittleEndian.Uint64(b[20:]))
	rec.ReqType = int(binary.LittleEndian.Uint16(b[28:]))
	if rec.Br.Kind.IsBranch() {
		rec.Br.PC = rec.Start + isa.Addr((rec.N-1)*isa.InstrBytes)
	} else {
		if rec.Br.Taken {
			return errors.New("trace: corrupt record: taken flag on a fall-through record")
		}
		if rec.Br.Target != 0 {
			return errors.New("trace: corrupt record: branch target on a fall-through record")
		}
		rec.Br.PC = 0
	}
	return nil
}
