package fleet

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkFleetClaim measures the claim → renew → release hot path: the
// per-cell coordination overhead a fleet pays on top of the simulation
// itself. Three lease-file writes per cell; this is the floor for how
// fine-grained a cell can be before coordination dominates.
func BenchmarkFleetClaim(b *testing.B) {
	o := Options{Dir: b.TempDir(), WorkerID: "bench"}
	ttl := 10 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("c%06d", i%1024)
		claimed, _ := o.tryClaim(id, ttl, time.Now())
		if !claimed {
			b.Fatalf("claim of free cell %s failed", id)
		}
		if !o.renew(id, ttl, time.Now()) {
			b.Fatalf("renew of held lease %s failed", id)
		}
		o.release(id)
	}
}

// BenchmarkFleetSteal measures the reclaim path: detecting an expired
// lease and winning the tombstone rename.
func BenchmarkFleetSteal(b *testing.B) {
	dead := Options{Dir: b.TempDir(), WorkerID: "dead"}
	thief := Options{Dir: dead.Dir, WorkerID: "thief"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("c%06d", i%1024)
		if ok, _ := dead.tryClaim(id, -time.Second, time.Now()); !ok {
			b.Fatalf("seed claim of %s failed", id)
		}
		claimed, stole := thief.tryClaim(id, 10*time.Second, time.Now())
		if !claimed || !stole {
			b.Fatalf("steal of expired %s failed (claimed=%v stole=%v)", id, claimed, stole)
		}
		thief.release(id)
	}
}
