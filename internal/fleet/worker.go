package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"time"

	"confluence/internal/backoff"
)

// Coordinator publishes the grid into o.Dir and then participates in it
// until every cell is resolved (stored or quarantined). The coordinator
// is worker zero: with no external workers attached it executes the whole
// grid inline, so single-process behavior is the zero-worker special case
// of the fleet, not a separate code path. Options.LeaseTTL and
// MaxAttempts are defaulted here and published in the manifest, which is
// where attaching workers inherit them from.
//
// The returned Report is non-nil whenever err is nil; a grid that
// finished with quarantined cells reports them in Report.Poisoned (and
// Report.Failed()), which callers surface as a degraded-but-complete
// grid rather than an error.
func Coordinator(ctx context.Context, o Options, storeDir string, cells []Cell) (*Report, error) {
	if o.Run == nil {
		return nil, fmt.Errorf("fleet: Options.Run is required")
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("fleet: empty grid")
	}
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if c.Key == "" {
			return nil, fmt.Errorf("fleet: cell %q has no store key", c.ID)
		}
		if seen[c.ID] {
			return nil, fmt.Errorf("fleet: duplicate cell ID %q", c.ID)
		}
		seen[c.ID] = true
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = defaultLeaseTTL
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = defaultMaxAttempts
	}
	m := Manifest{
		Version:     ProtocolVersion,
		StoreDir:    storeDir,
		LeaseTTLMS:  o.LeaseTTL.Milliseconds(),
		MaxAttempts: o.MaxAttempts,
		Cells:       cells,
	}
	if err := WriteManifest(o.Dir, m); err != nil {
		return nil, err
	}
	return participate(ctx, o, m)
}

// Worker attaches to an existing (or imminent) fleet directory and works
// cells until the grid is resolved, then returns its Report. Lease TTL
// and the retry budget come from the manifest unless the options override
// them; the store comes from the manifest unless Options.Store is set.
func Worker(ctx context.Context, o Options) (*Report, error) {
	if o.Run == nil {
		return nil, fmt.Errorf("fleet: Options.Run is required")
	}
	m, err := WaitManifest(ctx, o.Dir)
	if err != nil {
		return nil, err
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = time.Duration(m.LeaseTTLMS) * time.Millisecond
		if o.LeaseTTL <= 0 {
			o.LeaseTTL = defaultLeaseTTL
		}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = m.MaxAttempts
		if o.MaxAttempts <= 0 {
			o.MaxAttempts = defaultMaxAttempts
		}
	}
	return participate(ctx, o, m)
}

// participate is the work-stealing loop shared by coordinators and
// workers. Each pass scans the grid from a participant-specific offset
// (spreading concurrent participants across the cell list), resolving
// every cell it can: already stored → done; poison marker → quarantined;
// free or expired lease → claim and run. A pass that makes no progress
// backs off with deterministic jitter before rescanning, so idle
// participants poll the directory gently while others hold leases.
func participate(ctx context.Context, o Options, m Manifest) (*Report, error) {
	if o.WorkerID == "" {
		o.WorkerID = defaultWorkerID()
	}
	if !validCellID(o.WorkerID) {
		return nil, fmt.Errorf("fleet: worker ID %q is not filename-safe", o.WorkerID)
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseTTL / 3
	}
	if o.Backoff == (backoff.Policy{}) {
		o.Backoff = defaultIdleBackoff
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if len(m.Cells) == 0 {
		return nil, fmt.Errorf("fleet: manifest in %s describes an empty grid", o.Dir)
	}
	st, err := o.openStore(m)
	if err != nil {
		return nil, err
	}

	// The scan offset and the idle jitter both derive from the worker ID,
	// so a test fleet with fixed IDs replays identically.
	h := fnv.New64a()
	h.Write([]byte(o.WorkerID))
	rng := rand.New(rand.NewPCG(h.Sum64(), 0xf1ee7))
	offset := int(h.Sum64() % uint64(len(m.Cells)))

	rep := &Report{}
	resolved := make([]bool, len(m.Cells)) // done or quarantined, from our view
	idle := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		progressed := false
		remaining := 0
		for i := range m.Cells {
			idx := (i + offset) % len(m.Cells)
			if resolved[idx] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			switch o.workCell(ctx, st, m.Cells[idx], rep) {
			case cellResolved:
				resolved[idx] = true
				progressed = true
			case cellProgress:
				progressed = true
				remaining++
			case cellBlocked:
				remaining++
			}
		}
		if remaining == 0 {
			rep.Poisoned = o.collectPoisons(m)
			return rep, nil
		}
		if progressed {
			idle = 0
			continue
		}
		idle++
		if !o.Backoff.Sleep(idle-1, rng, ctx.Done()) {
			return nil, ctx.Err()
		}
	}
}

// defaultIdleBackoff paces the no-claimable-cell rescan: quick first
// retry, settling to a fraction of typical lease TTLs so an idle worker
// notices an expired lease promptly without hammering the directory.
var defaultIdleBackoff = backoff.Policy{
	Base: 25 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0.5,
}

// cellOutcome classifies one scan visit to a cell.
type cellOutcome int

const (
	cellResolved cellOutcome = iota // stored or quarantined; never look again
	cellProgress                    // we ran/failed an attempt; rescan immediately
	cellBlocked                     // someone else holds a live lease
)

// workCell resolves one cell as far as this scan can take it.
func (o *Options) workCell(ctx context.Context, st Store, cell Cell, rep *Report) cellOutcome {
	if st.Has(cell.Key) {
		rep.Hits++
		o.emit(Event{Type: EventHit, Cell: cell.ID, Worker: o.WorkerID})
		return cellResolved
	}
	if _, poisoned := o.readPoison(cell.ID); poisoned {
		return cellResolved
	}
	claimed, stole := o.tryClaim(cell.ID, o.LeaseTTL, o.Now())
	if !claimed {
		return cellBlocked
	}
	if stole {
		rep.Steals++
		o.emit(Event{Type: EventSteal, Cell: cell.ID, Worker: o.WorkerID})
	}
	o.emit(Event{Type: EventClaim, Cell: cell.ID, Worker: o.WorkerID})
	o.Chaos.onClaimed() // may SIGKILL the process: the preemption case

	// Between our scan's store check and winning the claim, the previous
	// holder may have finished; re-check before burning an attempt.
	if st.Has(cell.Key) {
		o.release(cell.ID)
		rep.Hits++
		o.emit(Event{Type: EventHit, Cell: cell.ID, Worker: o.WorkerID})
		return cellResolved
	}

	attempt := o.bumpAttempts(cell.ID)
	if attempt > o.MaxAttempts {
		// The budget was consumed by claimants that never reported back —
		// workers that died holding the lease. Quarantine with whatever
		// error the ledger managed to record.
		rec := o.readAttempts(cell.ID)
		o.quarantine(cell.ID, rec.Count-1, rec.LastErr)
		o.release(cell.ID)
		o.emit(Event{Type: EventPoison, Cell: cell.ID, Worker: o.WorkerID, Attempt: rec.Count - 1, Err: rec.LastErr})
		return cellResolved
	}

	runErr := o.runLeased(ctx, st, cell)
	switch {
	case runErr == nil:
		o.cleanupCell(cell.ID)
		o.release(cell.ID)
		rep.Completed++
		o.emit(Event{Type: EventDone, Cell: cell.ID, Worker: o.WorkerID, Attempt: attempt})
		return cellResolved
	case ctx.Err() != nil:
		// Our own shutdown, not the cell's fault: release without
		// charging the failure so another worker retries immediately.
		o.release(cell.ID)
		return cellBlocked
	default:
		o.recordFailure(cell.ID, attempt, runErr)
		o.emit(Event{Type: EventFail, Cell: cell.ID, Worker: o.WorkerID, Attempt: attempt, Err: runErr.Error()})
		if attempt >= o.MaxAttempts {
			o.quarantine(cell.ID, attempt, runErr.Error())
			o.emit(Event{Type: EventPoison, Cell: cell.ID, Worker: o.WorkerID, Attempt: attempt, Err: runErr.Error()})
			o.release(cell.ID)
			return cellResolved
		}
		o.release(cell.ID)
		return cellProgress
	}
}

// runLeased executes the cell under a heartbeat that renews the lease
// every o.Heartbeat (unless chaos stalls it), then persists the payload.
// The heartbeat stopping because the lease was lost does NOT abort the
// run: the result write is idempotent by key, so finishing is strictly
// better than wasting the work.
func (o *Options) runLeased(ctx context.Context, st Store, cell Cell) error {
	stopBeat := make(chan struct{})
	beatDone := make(chan struct{})
	go func() {
		defer close(beatDone)
		t := time.NewTicker(o.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-stopBeat:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				if o.Chaos.stallRenewals() {
					continue
				}
				if !o.renew(cell.ID, o.LeaseTTL, o.Now()) {
					return // lease lost; keep running, stop renewing
				}
			}
		}
	}()
	runErr := o.failRunOr(ctx, st, cell)
	close(stopBeat)
	<-beatDone
	return runErr
}

// failRunOr applies the FailCell chaos gate, then runs the cell and
// persists its payload through the chaos-wrapped store.
func (o *Options) failRunOr(ctx context.Context, st Store, cell Cell) error {
	if err := o.Chaos.failRun(cell.ID); err != nil {
		return err
	}
	payload, err := o.Run(ctx, cell)
	if err != nil {
		return err
	}
	return o.Chaos.put(st, cell.Key, payload)
}

// collectPoisons scans the quarantine markers in manifest order, so every
// participant reports the identical set.
func (o *Options) collectPoisons(m Manifest) []Poison {
	var out []Poison
	for _, c := range m.Cells {
		if p, ok := o.readPoison(c.ID); ok {
			out = append(out, p)
		}
	}
	return out
}

// emit forwards an event to the observer, if any.
func (o *Options) emit(e Event) {
	if o.OnEvent != nil {
		o.OnEvent(e)
	}
}
