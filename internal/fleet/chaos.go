package fleet

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

// Chaos is the fault-injection seam the fleet's robustness claims are
// proven against. Each knob injects one failure mode the protocol must
// absorb:
//
//   - KillAfterClaims: SIGKILL this process immediately after its Nth
//     successful claim — a worker dying mid-cell with a live lease, the
//     spot-preemption case. The cell must be reclaimed and re-run
//     elsewhere with no trace in the final output.
//   - StallRenewals: the heartbeat stops renewing, so a healthy runner's
//     lease silently expires mid-cell and is stolen. Both the stale
//     finisher and the stealer complete; the store's idempotence must
//     absorb the duplicate.
//   - FailPuts: the first N store writes return an injected error, so
//     finished work fails to persist and the cell must retry under its
//     budget.
//   - FailCell: every run of the named cell fails — the poison cell. It
//     must be quarantined after MaxAttempts and the rest of the grid must
//     still complete.
//
// The zero value (and a nil *Chaos) injects nothing. Counters are
// process-wide atomics so a chaotic participant behaves identically
// whether its cells run on one goroutine or several.
type Chaos struct {
	KillAfterClaims int
	StallRenewals   bool
	FailPuts        int
	FailCell        string

	claims atomic.Int32
	puts   atomic.Int32
}

// onClaimed is called after every successful claim; with KillAfterClaims
// set it SIGKILLs the process on the Nth — no deferred cleanup, no lease
// release, exactly like external preemption.
func (c *Chaos) onClaimed() {
	if c == nil || c.KillAfterClaims <= 0 {
		return
	}
	if int(c.claims.Add(1)) >= c.KillAfterClaims {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable; SIGKILL is not deliverable to a handler
	}
}

// stallRenewals reports whether the heartbeat should skip renewing.
func (c *Chaos) stallRenewals() bool { return c != nil && c.StallRenewals }

// put wraps a store write, injecting failures for the first FailPuts
// calls.
func (c *Chaos) put(st Store, key string, payload []byte) error {
	if c != nil && c.FailPuts > 0 && int(c.puts.Add(1)) <= c.FailPuts {
		return fmt.Errorf("fleet: chaos-injected store write error")
	}
	return st.Put(key, payload)
}

// failRun returns the injected run error for a poison cell, nil
// otherwise.
func (c *Chaos) failRun(cellID string) error {
	if c != nil && c.FailCell != "" && c.FailCell == cellID {
		return fmt.Errorf("fleet: chaos-injected crash in cell %s", cellID)
	}
	return nil
}

// ChaosEnv is the environment variable real fleet processes read chaos
// directives from, so the smoke harness can inject faults into unmodified
// binaries: a comma-separated list of
// kill-after-claims=N, stall-renewals, fail-puts=N, fail-cell=ID.
const ChaosEnv = "CONFLUENCE_FLEET_CHAOS"

// ChaosFromEnv parses ChaosEnv. An unset or empty variable returns nil
// (no chaos); a malformed directive is an error, never a silent no-op —
// a smoke test whose fault injection is skipped would pass vacuously.
func ChaosFromEnv() (*Chaos, error) {
	return parseChaos(os.Getenv(ChaosEnv))
}

func parseChaos(s string) (*Chaos, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	c := &Chaos{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		switch key {
		case "kill-after-claims":
			n, err := strconv.Atoi(val)
			if !hasVal || err != nil || n < 1 {
				return nil, fmt.Errorf("fleet: %s: kill-after-claims needs a positive count, got %q", ChaosEnv, part)
			}
			c.KillAfterClaims = n
		case "stall-renewals":
			if hasVal {
				return nil, fmt.Errorf("fleet: %s: stall-renewals takes no value, got %q", ChaosEnv, part)
			}
			c.StallRenewals = true
		case "fail-puts":
			n, err := strconv.Atoi(val)
			if !hasVal || err != nil || n < 1 {
				return nil, fmt.Errorf("fleet: %s: fail-puts needs a positive count, got %q", ChaosEnv, part)
			}
			c.FailPuts = n
		case "fail-cell":
			if !hasVal || val == "" {
				return nil, fmt.Errorf("fleet: %s: fail-cell needs a cell ID, got %q", ChaosEnv, part)
			}
			c.FailCell = val
		default:
			return nil, fmt.Errorf("fleet: %s: unknown directive %q", ChaosEnv, part)
		}
	}
	return c, nil
}
