// Package fleet is the coordinator/worker protocol that shards an
// experiment grid across processes — the ephemeral-compute half of the
// "spot instances + persistent state" pattern whose durable half is
// internal/store. A coordinator writes a manifest (the grid's cells, each
// with its content-addressed result key) into a shared directory; any
// number of worker processes attach to the directory and pull unclaimed
// cells work-stealing style. Cells are claimed through atomic lease files
// with a TTL and heartbeat renewal, so a worker that is SIGKILLed,
// preempted, or wedged mid-cell simply loses its lease: the next scanner
// reclaims the expired lease and re-runs the cell.
//
// The protocol's safety story is deliberately layered:
//
//   - Correctness comes from the store, not the leases. Every cell's
//     result lands in the content-addressed store under a key derived from
//     the cell's full inputs, and simulation is deterministic, so a cell
//     that runs twice (a stalled worker finishing after its lease was
//     stolen) writes the same bytes twice. Duplicate execution wastes
//     work; it can never corrupt a result.
//   - Leases are the anti-duplication optimization: claim is atomic
//     (O_CREATE|O_EXCL), renewal is atomic (temp file + rename), and
//     reclaim of an expired lease is serialized by renaming the lease to a
//     reclaimer-unique tombstone — exactly one of N concurrent reclaimers
//     wins the rename, the rest see ENOENT and move on.
//   - Livelock is bounded by the poison quarantine: every claim increments
//     a durable per-cell attempt counter, so a cell that keeps killing its
//     workers (or keeps failing) is parked with its last recorded error
//     after MaxAttempts runs. The rest of the grid completes and the
//     quarantined cells are reported, instead of the fleet re-running the
//     killer cell forever.
//
// A coordinator participates in its own grid (it is worker zero), so a
// fleet with no external workers degrades to inline execution — single
// process behavior, and liveness, are preserved by construction. The
// Chaos hooks inject the failures the design claims to survive: process
// SIGKILL after a claim (mid-cell death), stalled lease renewals, and
// store write errors.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"confluence/internal/backoff"
	"confluence/internal/store"
)

// ProtocolVersion pins the on-disk coordination schema (manifest, lease,
// attempt, and poison file shapes). A worker refuses a manifest from a
// different protocol generation instead of misreading it.
const ProtocolVersion = "confluence-fleet-v1"

// Cell is one unit of fleet work: an opaque spec (a serialized point
// JobSpec in practice — the fleet does not interpret it) plus the
// content-addressed store key its result must land under. A cell is done
// exactly when the store holds a valid entry for Key.
type Cell struct {
	ID   string          `json:"id"`   // filename-safe, unique within the grid
	Key  string          `json:"key"`  // store key of the cell's result
	Spec json.RawMessage `json:"spec"` // work description handed to the Runner
}

// Manifest is the grid description the coordinator publishes and workers
// poll for: the cells, the store directory results land in, and the lease
// discipline every participant must follow (TTL and retry budget travel
// in the manifest so all processes agree without flag coordination).
type Manifest struct {
	Version     string `json:"version"`
	StoreDir    string `json:"store_dir"`
	LeaseTTLMS  int64  `json:"lease_ttl_ms"`
	MaxAttempts int    `json:"max_attempts"`
	Cells       []Cell `json:"cells"`
}

// Store is the durable result store a fleet runs against. *store.Store
// satisfies it; the Chaos harness wraps it to inject write failures.
type Store interface {
	// Has reports whether a valid entry exists under key, without
	// counting a hit or disturbing LRU state.
	Has(key string) bool
	// Put durably stores a cell result. An error fails the attempt (the
	// cell retries under its budget).
	Put(key string, payload []byte) error
}

// Runner executes one cell and returns the payload to store under
// cell.Key. It must be deterministic in the cell spec: re-running a cell
// on another worker must produce the same bytes, which is what makes
// duplicate execution harmless.
type Runner func(ctx context.Context, cell Cell) ([]byte, error)

// Options configures one fleet participant (coordinator or worker).
type Options struct {
	// Dir is the shared coordination directory: manifest, leases,
	// attempt counters, poison markers. It is not the result store.
	Dir string
	// Store is the durable result store. Nil resolves store.Open on the
	// manifest's StoreDir (workers attach with no flags beyond Dir).
	Store Store
	// Run executes one cell. Required for participants; the coordinator
	// runs cells inline through it too.
	Run Runner
	// WorkerID names this participant in leases and events. Empty
	// derives host-pid.
	WorkerID string
	// LeaseTTL is how long a claim stays valid without renewal; a lease
	// older than this is stolen. Zero: coordinator defaults 10s, worker
	// inherits the manifest.
	LeaseTTL time.Duration
	// Heartbeat is the renewal period while running a cell. Zero means
	// LeaseTTL/3.
	Heartbeat time.Duration
	// MaxAttempts is the per-cell retry budget before quarantine. Zero:
	// coordinator defaults 3, worker inherits the manifest.
	MaxAttempts int
	// Backoff paces the idle rescan loop (no claimable cell found) and
	// is jittered deterministically from WorkerID. Zero-valued uses
	// backoff.Default.
	Backoff backoff.Policy
	// Chaos injects faults; nil injects nothing.
	Chaos *Chaos
	// Now is the clock lease deadlines and expiry judgments read; nil
	// means time.Now. Tests inject a fake clock to exercise expiry
	// without sleeping.
	Now func() time.Time
	// OnEvent observes protocol transitions (claims, steals, poisons).
	// Called from the participant's own goroutine, in order.
	OnEvent func(Event)
}

// Event is one observable protocol transition, for logs and tests.
type Event struct {
	Type    EventType
	Cell    string
	Worker  string
	Attempt int
	Err     string
}

// EventType enumerates protocol transitions.
type EventType string

const (
	EventClaim  EventType = "claim"  // won a cell's lease
	EventSteal  EventType = "steal"  // reclaimed an expired lease first
	EventDone   EventType = "done"   // ran a cell and stored its result
	EventHit    EventType = "hit"    // found a cell already stored
	EventFail   EventType = "fail"   // an attempt failed (will retry or poison)
	EventPoison EventType = "poison" // quarantined a cell past its budget
)

// Poison describes one quarantined cell.
type Poison struct {
	CellID   string `json:"cell_id"`
	Attempts int    `json:"attempts"`
	LastErr  string `json:"last_err"`
}

// Report summarizes one participant's view of a finished grid. Poisoned
// is scanned from the shared directory in manifest order, so every
// participant reports the same quarantine set.
type Report struct {
	Completed int // cells this participant ran to a stored result
	Hits      int // cells it found already stored (by anyone)
	Steals    int // expired leases it reclaimed
	Poisoned  []Poison
}

// Failed reports whether the grid finished with quarantined cells.
func (r *Report) Failed() bool { return len(r.Poisoned) > 0 }

const (
	manifestName  = "manifest.json"
	leaseSuffix   = ".lease"
	attemptSuffix = ".attempts"
	poisonSuffix  = ".poison"

	defaultLeaseTTL    = 10 * time.Second
	defaultMaxAttempts = 3
)

// writeFileAtomic writes data to path via a unique temp file and rename,
// so readers never observe a partial file. The temp file lives in the
// destination directory (rename must not cross filesystems).
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// WriteManifest publishes the grid into dir (creating it), atomically so
// polling workers never read a torn manifest.
func WriteManifest(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	for _, c := range m.Cells {
		if !validCellID(c.ID) {
			return fmt.Errorf("fleet: cell ID %q is not filename-safe", c.ID)
		}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestName), data); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return nil
}

// ReadManifest loads the grid description from dir. A missing manifest is
// os.ErrNotExist (the coordinator has not published yet); a version
// mismatch is a hard error — a skewed worker must not misinterpret the
// directory.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("fleet: manifest in %s: %w", dir, err)
	}
	if m.Version != ProtocolVersion {
		return Manifest{}, fmt.Errorf("fleet: manifest in %s speaks %q, this binary speaks %q", dir, m.Version, ProtocolVersion)
	}
	return m, nil
}

// WaitManifest polls dir until a manifest appears or ctx ends. Workers
// may be started before their coordinator; this is the join point.
func WaitManifest(ctx context.Context, dir string) (Manifest, error) {
	pol := backoff.Policy{Base: 20 * time.Millisecond, Max: 500 * time.Millisecond, Factor: 2}
	for attempt := 0; ; attempt++ {
		m, err := ReadManifest(dir)
		if err == nil {
			return m, nil
		}
		if !os.IsNotExist(err) {
			return Manifest{}, err
		}
		if !pol.Sleep(attempt, nil, ctx.Done()) {
			return Manifest{}, ctx.Err()
		}
	}
}

// validCellID restricts cell IDs to characters that cannot traverse or
// collide with the protocol's own files.
func validCellID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_'
		if !ok {
			return false
		}
	}
	return true
}

// defaultWorkerID derives a host-unique participant name.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// openStore resolves the participant's store handle: an explicit Options
// store (tests, chaos wrappers) or the manifest's directory.
func (o *Options) openStore(m Manifest) (Store, error) {
	if o.Store != nil {
		return o.Store, nil
	}
	if m.StoreDir == "" {
		return nil, fmt.Errorf("fleet: manifest names no store directory and Options.Store is nil")
	}
	return store.Open(m.StoreDir), nil
}
