package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// lease is the claim record for one cell, stored as <id>.lease in the
// fleet directory. Claim creates it exclusively; heartbeat renewal
// rewrites it atomically with a pushed-out expiry; a scanner that finds
// it expired reclaims it (see steal).
type lease struct {
	Owner   string `json:"owner"`
	Attempt int    `json:"attempt"`
	Expires int64  `json:"expires_unix_nano"`
}

// attemptRecord is the durable per-cell retry ledger, <id>.attempts.
// Count is incremented by each claimant *before* running, so a worker
// that dies mid-cell still consumed budget — that is exactly how a cell
// that kills its workers gets quarantined. The file is only ever written
// under the cell's lease, so writers do not race (a stolen-lease stale
// writer can lose an increment; the budget is a bound on useful work, not
// an exact count, and the store's idempotence makes the overlap safe).
type attemptRecord struct {
	Count   int    `json:"count"`
	LastErr string `json:"last_err,omitempty"`
}

func (o *Options) leasePath(id string) string   { return filepath.Join(o.Dir, id+leaseSuffix) }
func (o *Options) attemptPath(id string) string { return filepath.Join(o.Dir, id+attemptSuffix) }
func (o *Options) poisonPath(id string) string  { return filepath.Join(o.Dir, id+poisonSuffix) }

// tryClaim attempts to win cell id's lease: first a fresh exclusive
// create, then — if a lease exists but has expired — a steal. It returns
// whether the claim succeeded and whether it went through a steal.
func (o *Options) tryClaim(id string, ttl time.Duration, now time.Time) (claimed, stole bool) {
	if o.claimExclusive(id, ttl, now) {
		return true, false
	}
	if !o.stealExpired(id, ttl, now) {
		return false, false
	}
	// The tombstone rename was won; the path is free until some other
	// claimant races us to the create. Losing that race is fine — the
	// cell is claimed by someone.
	return o.claimExclusive(id, ttl, now), true
}

// claimExclusive wins a free lease path with O_CREATE|O_EXCL — the
// filesystem's atomic claim primitive. The lease body is written after
// the create; a claimant killed inside that window leaves a torn lease
// file, which scanners age out by mtime (see leaseExpired).
func (o *Options) claimExclusive(id string, ttl time.Duration, now time.Time) bool {
	f, err := os.OpenFile(o.leasePath(id), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	data, _ := json.Marshal(lease{Owner: o.WorkerID, Expires: now.Add(ttl).UnixNano()})
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(o.leasePath(id))
		return false
	}
	return true
}

// stealExpired reclaims an expired lease. Reclaim must be serialized —
// two scanners that both see the lease expired must not both "remove and
// re-create" (the second remove would destroy the first's fresh claim).
// Renaming the lease to a reclaimer-unique tombstone is that serialization:
// exactly one rename succeeds, the loser gets ENOENT and moves on.
func (o *Options) stealExpired(id string, ttl time.Duration, now time.Time) bool {
	path := o.leasePath(id)
	if !leaseExpired(path, ttl, now) {
		return false
	}
	tomb := path + ".reap-" + o.WorkerID
	if err := os.Rename(path, tomb); err != nil {
		return false // someone else reaped it, or the owner released it
	}
	os.Remove(tomb)
	return true
}

// leaseExpired reports whether the lease at path is past its expiry. A
// torn or unparsable lease (a claimant killed mid-write) is judged by
// file age instead, with the same TTL.
func leaseExpired(path string, ttl time.Duration, now time.Time) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false // gone: nothing to steal
	}
	var l lease
	if err := json.Unmarshal(data, &l); err == nil && l.Expires > 0 {
		return now.UnixNano() > l.Expires
	}
	info, err := os.Stat(path)
	if err != nil {
		return false
	}
	return now.Sub(info.ModTime()) > ttl
}

// renew pushes the lease's expiry out, atomically. It reports false when
// the lease is no longer ours (stolen after an expiry, or released) — the
// holder should stop renewing but may finish the cell: the result write
// is idempotent, so a stale finisher is waste, not corruption.
func (o *Options) renew(id string, ttl time.Duration, now time.Time) bool {
	path := o.leasePath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var l lease
	if err := json.Unmarshal(data, &l); err != nil || l.Owner != o.WorkerID {
		return false
	}
	l.Expires = now.Add(ttl).UnixNano()
	out, _ := json.Marshal(l)
	return writeFileAtomic(path, out) == nil
}

// release drops our lease after finishing (or failing) a cell. A missing
// file means the lease was stolen while we ran — already released.
func (o *Options) release(id string) {
	os.Remove(o.leasePath(id))
}

// bumpAttempts charges one run against the cell's budget and returns the
// new count. Called holding the lease. Read errors (first claim, or a
// torn file) start the ledger fresh rather than failing the claim.
func (o *Options) bumpAttempts(id string) int {
	rec := o.readAttempts(id)
	rec.Count++
	data, _ := json.Marshal(rec)
	if err := writeFileAtomic(o.attemptPath(id), data); err != nil {
		// A ledger that cannot be written still lets the cell run; the
		// budget just cannot advance. Poisoning then relies on a later
		// successful write — degraded, not wrong.
		return rec.Count
	}
	return rec.Count
}

// readAttempts loads the cell's retry ledger; absent or torn reads as
// zero attempts.
func (o *Options) readAttempts(id string) attemptRecord {
	var rec attemptRecord
	data, err := os.ReadFile(o.attemptPath(id))
	if err != nil {
		return rec
	}
	json.Unmarshal(data, &rec)
	return rec
}

// recordFailure stores the attempt's error as the cell's last known
// failure, for the quarantine report. Called holding the lease.
func (o *Options) recordFailure(id string, count int, runErr error) {
	rec := attemptRecord{Count: count, LastErr: runErr.Error()}
	data, _ := json.Marshal(rec)
	writeFileAtomic(o.attemptPath(id), data)
}

// quarantine parks the cell: a durable poison marker every participant's
// scan treats as terminal. Called holding the lease, so exactly one
// participant writes it.
func (o *Options) quarantine(id string, attempts int, lastErr string) error {
	if lastErr == "" {
		lastErr = "worker died mid-cell (no error recorded)"
	}
	p := Poison{CellID: id, Attempts: attempts, LastErr: lastErr}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return writeFileAtomic(o.poisonPath(id), data)
}

// readPoison loads a cell's quarantine marker, if present.
func (o *Options) readPoison(id string) (Poison, bool) {
	data, err := os.ReadFile(o.poisonPath(id))
	if err != nil {
		return Poison{}, false
	}
	var p Poison
	if err := json.Unmarshal(data, &p); err != nil {
		// A torn poison file still parks the cell; report what we know.
		return Poison{CellID: id, LastErr: "unreadable poison marker"}, true
	}
	return p, true
}

// cleanupCell removes a completed cell's retry ledger (best effort; a
// concurrent remover hitting ENOENT is fine, and leftover debris is
// harmless — completion is judged by the store, never by these files).
func (o *Options) cleanupCell(id string) {
	os.Remove(o.attemptPath(id))
}
