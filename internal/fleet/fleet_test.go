package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"confluence/internal/store"
)

// testStore is an in-memory Store with injectable behavior — the fleet
// protocol is exercised against it so unit tests stay filesystem-light on
// the result side (the coordination directory is always real files).
type testStore struct {
	mu      sync.Mutex
	entries map[string][]byte
	puts    atomic.Int32
}

func newTestStore() *testStore { return &testStore{entries: map[string][]byte{}} }

func (s *testStore) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

func (s *testStore) Put(key string, payload []byte) error {
	s.puts.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[key] = append([]byte(nil), payload...)
	return nil
}

// grid builds n cells whose runner output is deterministic in the cell ID.
func grid(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		id := fmt.Sprintf("c%03d", i)
		cells[i] = Cell{ID: id, Key: store.Key([]byte("fleet-test|" + id)), Spec: json.RawMessage(`{}`)}
	}
	return cells
}

// echoRunner returns a payload derived from the cell ID, after an
// optional delay per call.
func echoRunner(delay time.Duration) Runner {
	return func(ctx context.Context, cell Cell) ([]byte, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return []byte("result-of-" + cell.ID), nil
	}
}

func baseOptions(t *testing.T, dir string, st Store, id string) Options {
	t.Helper()
	return Options{
		Dir:      dir,
		Store:    st,
		Run:      echoRunner(0),
		WorkerID: id,
		LeaseTTL: 250 * time.Millisecond,
	}
}

// TestCoordinatorInlineFallback: a coordinator with no workers attached
// is plain inline execution — every cell completes, in one process, and
// the stored payloads are the runner's bytes.
func TestCoordinatorInlineFallback(t *testing.T) {
	st := newTestStore()
	cells := grid(5)
	rep, err := Coordinator(context.Background(), baseOptions(t, t.TempDir(), st, "coord"), "", cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 5 || rep.Failed() {
		t.Fatalf("report = %+v, want 5 completed, no poison", rep)
	}
	for _, c := range cells {
		if !st.Has(c.Key) {
			t.Errorf("cell %s not stored", c.ID)
		}
	}
	// Idempotent completion: a second coordinator over the same grid hits
	// every cell without running anything.
	rep2, err := Coordinator(context.Background(), baseOptions(t, t.TempDir(), st, "coord2"), "", cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Completed != 0 || rep2.Hits != 5 {
		t.Fatalf("re-run report = %+v, want 0 completed / 5 hits", rep2)
	}
}

// TestWorkStealingSharesTheGrid: a coordinator plus three workers split
// one grid; every cell is stored, and no cell was run twice (leases held
// by live workers are respected).
func TestWorkStealingSharesTheGrid(t *testing.T) {
	st := newTestStore()
	cells := grid(12)
	dir := t.TempDir()

	var runs atomic.Int32
	counting := func(ctx context.Context, cell Cell) ([]byte, error) {
		runs.Add(1)
		return echoRunner(5*time.Millisecond)(ctx, cell)
	}

	var wg sync.WaitGroup
	reports := make([]*Report, 4)
	errs := make([]error, 4)
	for w := 1; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := baseOptions(t, dir, st, fmt.Sprintf("w%d", w))
			o.Run = counting
			reports[w], errs[w] = Worker(context.Background(), o)
		}(w)
	}
	o := baseOptions(t, dir, st, "coord")
	o.Run = counting
	reports[0], errs[0] = Coordinator(context.Background(), o, "", cells)
	wg.Wait()

	completed := 0
	for i := range reports {
		if errs[i] != nil {
			t.Fatalf("participant %d: %v", i, errs[i])
		}
		if reports[i].Failed() {
			t.Fatalf("participant %d reports poisons: %+v", i, reports[i].Poisoned)
		}
		completed += reports[i].Completed
	}
	if completed != 12 || int(runs.Load()) != 12 {
		t.Fatalf("completed=%d runs=%d, want 12/12 (no duplicate execution)", completed, runs.Load())
	}
	for _, c := range cells {
		if !st.Has(c.Key) {
			t.Errorf("cell %s not stored", c.ID)
		}
	}
}

// TestExpiredLeaseIsStolen: a worker claims a cell and dies (its lease is
// never renewed, its run never happens). The next participant must steal
// the expired lease and complete the cell.
func TestExpiredLeaseIsStolen(t *testing.T) {
	st := newTestStore()
	cells := grid(3)
	dir := t.TempDir()

	// The "dead worker": claim c001 by hand with an already-stale expiry.
	dead := baseOptions(t, dir, st, "dead")
	if ok, _ := dead.tryClaim("c001", -time.Second, time.Now()); !ok {
		t.Fatal("dead worker failed to claim a free cell")
	}

	var steals atomic.Int32
	o := baseOptions(t, dir, st, "live")
	o.OnEvent = func(e Event) {
		if e.Type == EventSteal {
			steals.Add(1)
		}
	}
	rep, err := Coordinator(context.Background(), o, "", cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 || rep.Steals != 1 || steals.Load() != 1 {
		t.Fatalf("report = %+v (steal events %d), want 3 completed / 1 steal", rep, steals.Load())
	}
	if !st.Has(cells[1].Key) {
		t.Error("stolen cell never completed")
	}
}

// TestLiveLeaseIsRespected: a cell claimed with a healthy lease must not
// be stolen or re-run while the lease holder is alive and renewing.
func TestLiveLeaseIsRespected(t *testing.T) {
	st := newTestStore()
	cells := grid(2)
	dir := t.TempDir()

	// A slow holder on c000: claims, runs long, renews properly.
	holderDone := make(chan *Report, 1)
	holder := baseOptions(t, dir, st, "holder")
	holder.LeaseTTL = 300 * time.Millisecond
	holder.Run = func(ctx context.Context, cell Cell) ([]byte, error) {
		d := 10 * time.Millisecond
		if cell.ID == "c000" {
			d = 700 * time.Millisecond // several TTLs, kept alive by heartbeat
		}
		return echoRunner(d)(ctx, cell)
	}
	go func() {
		rep, err := Coordinator(context.Background(), holder, "", cells)
		if err != nil {
			t.Error(err)
		}
		holderDone <- rep
	}()

	o := baseOptions(t, dir, st, "other")
	o.LeaseTTL = 300 * time.Millisecond
	var ran atomic.Int32
	o.Run = func(ctx context.Context, cell Cell) ([]byte, error) {
		ran.Add(1)
		return echoRunner(0)(ctx, cell)
	}
	rep, err := Worker(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	hrep := <-holderDone
	if got := rep.Completed + hrep.Completed; got != 2 {
		t.Fatalf("completed %d cells total, want 2", got)
	}
	if rep.Steals+hrep.Steals != 0 {
		t.Fatalf("healthy lease was stolen: other=%+v holder=%+v", rep, hrep)
	}
}

// TestStalledRenewalDuplicateIsAbsorbed: chaos stalls a runner's
// heartbeat so its lease expires mid-run and the cell is stolen and
// re-run. Both finishers Put; the store must hold the one deterministic
// payload and the grid must complete cleanly.
func TestStalledRenewalDuplicateIsAbsorbed(t *testing.T) {
	st := newTestStore()
	cells := grid(1)
	dir := t.TempDir()

	stalled := baseOptions(t, dir, st, "stalled")
	stalled.LeaseTTL = 100 * time.Millisecond
	stalled.Chaos = &Chaos{StallRenewals: true}
	stalled.Run = echoRunner(400 * time.Millisecond) // outlives its own lease
	stalledDone := make(chan error, 1)
	go func() {
		_, err := Coordinator(context.Background(), stalled, "", cells)
		stalledDone <- err
	}()

	thief := baseOptions(t, dir, st, "thief")
	thief.LeaseTTL = 100 * time.Millisecond
	rep, err := Worker(context.Background(), thief)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-stalledDone; err != nil {
		t.Fatal(err)
	}
	if rep.Steals+rep.Completed+rep.Hits == 0 {
		t.Fatalf("thief did nothing: %+v", rep)
	}
	if !st.Has(cells[0].Key) {
		t.Fatal("cell not stored")
	}
	// Both executions stored the same bytes (puts may be 1 or 2 depending
	// on timing; the entry is the runner's deterministic payload).
	s := st
	s.mu.Lock()
	got := string(s.entries[cells[0].Key])
	s.mu.Unlock()
	if got != "result-of-c000" {
		t.Fatalf("stored payload %q", got)
	}
}

// TestPoisonCellQuarantine: a cell that fails every run is parked after
// MaxAttempts with its last error, and the rest of the grid completes.
func TestPoisonCellQuarantine(t *testing.T) {
	st := newTestStore()
	cells := grid(4)
	o := baseOptions(t, t.TempDir(), st, "coord")
	o.MaxAttempts = 2
	o.Chaos = &Chaos{FailCell: "c002"}
	var fails, poisons atomic.Int32
	o.OnEvent = func(e Event) {
		switch e.Type {
		case EventFail:
			fails.Add(1)
		case EventPoison:
			poisons.Add(1)
		}
	}
	rep, err := Coordinator(context.Background(), o, "", cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("completed %d healthy cells, want 3 (%+v)", rep.Completed, rep)
	}
	if len(rep.Poisoned) != 1 || rep.Poisoned[0].CellID != "c002" {
		t.Fatalf("poisoned = %+v, want exactly c002", rep.Poisoned)
	}
	p := rep.Poisoned[0]
	if p.Attempts != 2 || !strings.Contains(p.LastErr, "chaos-injected crash") {
		t.Fatalf("poison record = %+v, want 2 attempts and the injected error", p)
	}
	if fails.Load() != 2 || poisons.Load() != 1 {
		t.Fatalf("events: %d fails, %d poisons; want 2, 1", fails.Load(), poisons.Load())
	}
	if st.Has(cells[2].Key) {
		t.Fatal("poisoned cell has a stored result")
	}
	// Every later participant reports the same quarantine set without
	// re-running the poison cell.
	o2 := baseOptions(t, o.Dir, st, "late")
	o2.Chaos = &Chaos{FailCell: "c002"}
	rep2, err := Worker(context.Background(), o2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Poisoned) != 1 || rep2.Poisoned[0].CellID != "c002" || rep2.Completed != 0 {
		t.Fatalf("late worker report = %+v", rep2)
	}
}

// TestDeadClaimantsConsumeBudget: claims that never report back (workers
// SIGKILLed mid-cell) still burn the retry budget, so a cell that kills
// every claimant is quarantined with the no-error-recorded message
// instead of livelocking the fleet.
func TestDeadClaimantsConsumeBudget(t *testing.T) {
	st := newTestStore()
	cells := grid(2)
	dir := t.TempDir()

	// Simulate MaxAttempts kills: each "dead" claimant claims c000 with an
	// expired lease and bumps the ledger, exactly the on-disk state a
	// SIGKILLed worker leaves.
	for i := 0; i < 3; i++ {
		dead := baseOptions(t, dir, st, fmt.Sprintf("dead%d", i))
		if ok, _ := dead.tryClaim("c000", -time.Second, time.Now()); !ok {
			t.Fatalf("dead claimant %d could not claim", i)
		}
		dead.bumpAttempts("c000")
	}

	o := baseOptions(t, dir, st, "survivor")
	o.MaxAttempts = 3
	rep, err := Coordinator(context.Background(), o, "", cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 {
		t.Fatalf("healthy cell not completed: %+v", rep)
	}
	if len(rep.Poisoned) != 1 || rep.Poisoned[0].CellID != "c000" {
		t.Fatalf("poisoned = %+v, want c000", rep.Poisoned)
	}
	if !strings.Contains(rep.Poisoned[0].LastErr, "worker died") {
		t.Fatalf("poison error = %q, want the died-mid-cell message", rep.Poisoned[0].LastErr)
	}
}

// TestInjectedPutErrorsRetry: the first two store writes fail; the cell
// must retry under its budget and succeed on the third attempt.
func TestInjectedPutErrorsRetry(t *testing.T) {
	st := newTestStore()
	cells := grid(1)
	o := baseOptions(t, t.TempDir(), st, "coord")
	o.MaxAttempts = 5
	o.Chaos = &Chaos{FailPuts: 2}
	var fails atomic.Int32
	o.OnEvent = func(e Event) {
		if e.Type == EventFail {
			fails.Add(1)
		}
	}
	rep, err := Coordinator(context.Background(), o, "", cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 || rep.Failed() {
		t.Fatalf("report = %+v, want a clean completion after retries", rep)
	}
	if fails.Load() != 2 {
		t.Fatalf("%d failed attempts, want 2", fails.Load())
	}
	if !st.Has(cells[0].Key) {
		t.Fatal("cell not stored after retries")
	}
}

// TestWorkerCancellation: a cancelled worker returns promptly with
// ctx.Err and releases its lease uncharged, so the cell retries
// elsewhere without consuming quarantine budget.
func TestWorkerCancellation(t *testing.T) {
	st := newTestStore()
	cells := grid(1)
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	o := baseOptions(t, dir, st, "cancelme")
	started := make(chan struct{})
	o.Run = func(ctx context.Context, cell Cell) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	done := make(chan error, 1)
	go func() {
		_, err := Coordinator(ctx, o, "", cells)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled coordinator returned %v", err)
	}

	// The cell is free again (lease released) and uncharged.
	o2 := baseOptions(t, dir, st, "after")
	rec := o2.readAttempts("c000")
	if rec.Count != 1 {
		t.Fatalf("attempts after cancellation = %d, want 1 (the cancelled claim), with no failure charged", rec.Count)
	}
	rep, err := Worker(context.Background(), o2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 || rep.Failed() {
		t.Fatalf("post-cancel report = %+v", rep)
	}
}

// TestManifestVersionSkewRejected: a worker must refuse a manifest
// written by a different protocol generation.
func TestManifestVersionSkewRejected(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{Version: "confluence-fleet-v999", Cells: grid(1)}
	data, _ := json.Marshal(m)
	if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOptions(t, dir, newTestStore(), "w")
	if _, err := Worker(context.Background(), o); err == nil || !strings.Contains(err.Error(), "speaks") {
		t.Fatalf("version skew accepted: %v", err)
	}
}

// TestWaitManifestJoinsLateCoordinator: a worker started before its
// coordinator blocks on the manifest and then completes the grid.
func TestWaitManifestJoinsLateCoordinator(t *testing.T) {
	st := newTestStore()
	cells := grid(2)
	dir := t.TempDir()

	done := make(chan error, 1)
	go func() {
		o := baseOptions(t, dir, st, "early")
		_, err := Worker(context.Background(), o)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the worker start polling
	if _, err := Coordinator(context.Background(), baseOptions(t, dir, st, "coord"), "", cells); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if !st.Has(c.Key) {
			t.Errorf("cell %s not stored", c.ID)
		}
	}
}

// TestTornLeaseAgesOutByMtime: a lease file holding garbage (claimant
// killed inside the create-then-write window) is reclaimable once older
// than the TTL, and not before.
func TestTornLeaseAgesOutByMtime(t *testing.T) {
	dir := t.TempDir()
	o := baseOptions(t, dir, newTestStore(), "w")
	path := o.leasePath("c000")
	if err := os.WriteFile(path, []byte("torn{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if leaseExpired(path, time.Minute, time.Now()) {
		t.Fatal("fresh torn lease judged expired")
	}
	old := time.Now().Add(-2 * time.Minute)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	if !leaseExpired(path, time.Minute, time.Now()) {
		t.Fatal("aged torn lease not judged expired")
	}
}

// TestManifestRejectsBadCellIDs: path-traversal or exotic IDs never make
// it into a manifest.
func TestManifestRejectsBadCellIDs(t *testing.T) {
	for _, id := range []string{"", "a/b", "..", "c 0", strings.Repeat("x", 65)} {
		m := Manifest{Version: ProtocolVersion, Cells: []Cell{{ID: id, Key: "k"}}}
		if err := WriteManifest(t.TempDir(), m); err == nil {
			t.Errorf("cell ID %q accepted", id)
		}
	}
}

func TestChaosFromEnvParsing(t *testing.T) {
	type fields struct {
		kill, puts int
		stall      bool
		cell       string
	}
	good := map[string]fields{
		"kill-after-claims=2":                 {kill: 2},
		"stall-renewals":                      {stall: true},
		"fail-puts=3,fail-cell=c007":          {puts: 3, cell: "c007"},
		" kill-after-claims=1 , fail-puts=1 ": {kill: 1, puts: 1},
	}
	for in, want := range good {
		c, err := parseChaos(in)
		if err != nil {
			t.Errorf("parseChaos(%q): %v", in, err)
			continue
		}
		got := fields{kill: c.KillAfterClaims, puts: c.FailPuts, stall: c.StallRenewals, cell: c.FailCell}
		if got != want {
			t.Errorf("parseChaos(%q) = %+v, want %+v", in, got, want)
		}
	}
	if c, err := parseChaos(""); err != nil || c != nil {
		t.Errorf("parseChaos(\"\") = %+v, %v; want nil, nil", c, err)
	}
	for _, in := range []string{"kill-after-claims", "kill-after-claims=0", "kill-after-claims=x",
		"stall-renewals=1", "fail-puts=-1", "fail-cell=", "nonsense=1"} {
		if _, err := parseChaos(in); err == nil {
			t.Errorf("parseChaos(%q) accepted", in)
		}
	}
}

// TestRealStoreSatisfiesInterface pins that *store.Store is a fleet.Store
// and that a real-directory fleet round-trips results through it.
func TestRealStoreSatisfiesInterface(t *testing.T) {
	st := store.Open(filepath.Join(t.TempDir(), "results"))
	cells := grid(3)
	rep, err := Coordinator(context.Background(), baseOptions(t, t.TempDir(), st, "coord"), st.Dir(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("report = %+v", rep)
	}
	for _, c := range cells {
		payload, ok := st.Get(c.Key)
		if !ok || string(payload) != "result-of-"+c.ID {
			t.Errorf("cell %s: stored %q (ok=%v)", c.ID, payload, ok)
		}
	}
}

// TestWorkerResolvesStoreFromManifest: a worker with no Options.Store
// opens the store the manifest names and sees the completed grid.
func TestWorkerResolvesStoreFromManifest(t *testing.T) {
	st := store.Open(filepath.Join(t.TempDir(), "results"))
	cells := grid(2)
	dir := t.TempDir()
	if _, err := Coordinator(context.Background(), baseOptions(t, dir, st, "coord"), st.Dir(), cells); err != nil {
		t.Fatal(err)
	}
	o := Options{Dir: dir, Run: echoRunner(0), WorkerID: "late"}
	rep, err := Worker(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits != 2 || rep.Completed != 0 {
		t.Fatalf("late worker report = %+v, want 2 hits", rep)
	}
}

// TestInjectedClockStampsLeaseDeadline pins the Options.Now seam the
// wallclock linter demands: the lease written for a claim carries a
// deadline derived from the injected clock, not the machine's, so
// expiry-based stealing is testable without sleeping.
func TestInjectedClockStampsLeaseDeadline(t *testing.T) {
	dir := t.TempDir()
	fake := time.Date(2031, 2, 3, 4, 5, 6, 0, time.UTC)
	st := newTestStore()
	var sawDeadline int64
	o := &Options{
		Dir:         dir,
		WorkerID:    "w-clock",
		LeaseTTL:    time.Minute,
		Heartbeat:   time.Hour, // no renewal during this test
		MaxAttempts: 3,
		Now:         func() time.Time { return fake },
		Store:       st,
		Run: func(ctx context.Context, cell Cell) ([]byte, error) {
			// Mid-run the lease file must exist; record its deadline.
			data, err := os.ReadFile(filepath.Join(dir, cell.ID+leaseSuffix))
			if err != nil {
				return nil, err
			}
			var l lease
			if err := json.Unmarshal(data, &l); err != nil {
				return nil, err
			}
			sawDeadline = l.Expires
			return []byte("ok"), nil
		},
	}
	cell := grid(1)[0]
	rep := &Report{}
	if got := o.workCell(context.Background(), st, cell, rep); got != cellResolved {
		t.Fatalf("workCell = %v, want cellResolved", got)
	}
	want := fake.Add(time.Minute).UnixNano()
	if sawDeadline != want {
		t.Errorf("lease deadline %d, want injected-clock deadline %d (%v)", sawDeadline, want, fake.Add(time.Minute))
	}
	if rep.Completed != 1 {
		t.Errorf("Completed = %d, want 1", rep.Completed)
	}
}
