package program

import (
	"testing"

	"confluence/internal/isa"
)

// tinyProgram builds a two-function program by hand:
//
//	f0: b0 [3 instr, cond -> b2]   (falls through to b1)
//	    b1 [2 instr, call -> f1]   (returns to b2)
//	    b2 [2 instr, ret]
//	f1: b3 [4 instr, ret]
func tinyProgram(t *testing.T) (*Program, []*BasicBlock) {
	t.Helper()
	base := isa.Addr(0x10000)
	b0 := &BasicBlock{Addr: base, NInstr: 3}
	b1 := &BasicBlock{Addr: b0.End(), NInstr: 2}
	b2 := &BasicBlock{Addr: b1.End(), NInstr: 2}
	b3 := &BasicBlock{Addr: b2.End(), NInstr: 4}
	b0.Branch = &BranchSite{Kind: isa.BrCond, Target: b2.Addr, TakenBias: 0.5}
	b1.Branch = &BranchSite{Kind: isa.BrCall, Target: b3.Addr}
	b2.Branch = &BranchSite{Kind: isa.BrRet}
	b3.Branch = &BranchSite{Kind: isa.BrRet}
	f0 := &Function{ID: 0, Name: "f0", Blocks: []*BasicBlock{b0, b1, b2}}
	f1 := &Function{ID: 1, Name: "f1", Layer: 1, Blocks: []*BasicBlock{b3}}
	p := &Program{Name: "tiny", Base: base, Funcs: []*Function{f0, f1}}
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return p, []*BasicBlock{b0, b1, b2, b3}
}

func TestFinalizeLinksTargetsAndFallthrough(t *testing.T) {
	p, bs := tinyProgram(t)
	if bs[0].Fall != bs[1] || bs[1].Fall != bs[2] {
		t.Error("adjacent fall-through not linked")
	}
	if bs[0].Branch.TargetBlock != bs[2] {
		t.Error("cond target not resolved")
	}
	if bs[1].Branch.TargetBlock != bs[3] {
		t.Error("call target not resolved")
	}
	if bs[0].Branch.PC != bs[0].LastPC() {
		t.Error("branch PC not set to last instruction")
	}
	if got := p.BlockAt(bs[2].Addr); got != bs[2] {
		t.Error("BlockAt lookup failed")
	}
	if p.BlockAt(bs[2].Addr+4) != nil {
		t.Error("BlockAt mid-block must return nil")
	}
}

func TestImageMatchesStaticBranches(t *testing.T) {
	p, bs := tinyProgram(t)
	img, base := p.Image()
	if len(img)%isa.BlockBytes != 0 {
		t.Fatalf("image length %d not block-aligned", len(img))
	}
	// Every static branch must be recoverable by predecoding the image —
	// the invariant Confluence's fill path depends on.
	found := map[isa.Addr]isa.BranchKind{}
	for off := 0; off < len(img); off += isa.BlockBytes {
		block := base + isa.Addr(off)
		for _, pb := range p.PredecodeBlock(block) {
			found[pb.PC(block)] = pb.Kind
		}
	}
	for _, b := range bs {
		br := b.Branch
		if found[br.PC] != br.Kind {
			t.Errorf("branch at %#x: predecoded %v, want %v", br.PC, found[br.PC], br.Kind)
		}
		delete(found, br.PC)
	}
	if len(found) != 0 {
		t.Errorf("image contains phantom branches: %v", found)
	}
}

func TestPredecodeBlockDirectTargets(t *testing.T) {
	p, bs := tinyProgram(t)
	block := isa.BlockOf(bs[0].Branch.PC)
	for _, pb := range p.PredecodeBlock(block) {
		if pb.PC(block) == bs[0].Branch.PC && pb.Target != bs[0].Branch.Target {
			t.Errorf("predecoded target %#x, want %#x", pb.Target, bs[0].Branch.Target)
		}
	}
}

func TestPredecodeBlockCaches(t *testing.T) {
	p, bs := tinyProgram(t)
	block := isa.BlockOf(bs[0].Addr)
	a := p.PredecodeBlock(block)
	b := p.PredecodeBlock(block)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Error("PredecodeBlock must cache results")
	}
}

func TestPredecodeBlockOutOfImage(t *testing.T) {
	p, _ := tinyProgram(t)
	if got := p.PredecodeBlock(0x9999_0000); got != nil {
		t.Errorf("out-of-image block predecoded %d branches", len(got))
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	base := isa.Addr(0x1000)
	b0 := &BasicBlock{Addr: base, NInstr: 4, Branch: &BranchSite{Kind: isa.BrRet}}
	b1 := &BasicBlock{Addr: base + 8, NInstr: 2, Branch: &BranchSite{Kind: isa.BrRet}} // overlaps b0
	p := &Program{Base: base, Funcs: []*Function{{Blocks: []*BasicBlock{b0, b1}}}}
	if err := p.Finalize(); err == nil {
		t.Error("overlapping blocks: want error")
	}
}

func TestValidateCatchesBadTarget(t *testing.T) {
	base := isa.Addr(0x1000)
	b0 := &BasicBlock{Addr: base, NInstr: 2, Branch: &BranchSite{Kind: isa.BrUncond, Target: 0xdead00}}
	p := &Program{Base: base, Funcs: []*Function{{Blocks: []*BasicBlock{b0}}}}
	if err := p.Finalize(); err == nil {
		t.Error("dangling branch target: want error")
	}
}

func TestValidateCatchesMissingFallthrough(t *testing.T) {
	base := isa.Addr(0x1000)
	// Conditional at the end of the program with no fall-through block.
	b0 := &BasicBlock{Addr: base, NInstr: 2, Branch: &BranchSite{Kind: isa.BrCond, Target: base}}
	p := &Program{Base: base, Funcs: []*Function{{Blocks: []*BasicBlock{b0}}}}
	if err := p.Finalize(); err == nil {
		t.Error("conditional without fall-through: want error")
	}
}

func TestValidateCatchesDuplicateBlocks(t *testing.T) {
	base := isa.Addr(0x1000)
	b0 := &BasicBlock{Addr: base, NInstr: 2, Branch: &BranchSite{Kind: isa.BrRet}}
	b1 := &BasicBlock{Addr: base, NInstr: 2, Branch: &BranchSite{Kind: isa.BrRet}}
	p := &Program{Base: base, Funcs: []*Function{{Blocks: []*BasicBlock{b0, b1}}}}
	if err := p.Finalize(); err == nil {
		t.Error("duplicate block addresses: want error")
	}
}

func TestIndirectTargetsResolved(t *testing.T) {
	base := isa.Addr(0x2000)
	b0 := &BasicBlock{Addr: base, NInstr: 2}
	b1 := &BasicBlock{Addr: b0.End(), NInstr: 2, Branch: &BranchSite{Kind: isa.BrRet}}
	b2 := &BasicBlock{Addr: b1.End(), NInstr: 3, Branch: &BranchSite{Kind: isa.BrRet}}
	b0.Branch = &BranchSite{Kind: isa.BrIndirect, Targets: []isa.Addr{b1.Addr, b2.Addr}}
	p := &Program{Base: base, Funcs: []*Function{{Blocks: []*BasicBlock{b0, b1, b2}}}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(b0.Branch.TargetBlocks) != 2 || b0.Branch.TargetBlocks[1] != b2 {
		t.Error("indirect targets not resolved")
	}
}

func TestIndirectWithoutTargetsFails(t *testing.T) {
	base := isa.Addr(0x2000)
	b0 := &BasicBlock{Addr: base, NInstr: 2, Branch: &BranchSite{Kind: isa.BrIndirect}}
	p := &Program{Base: base, Funcs: []*Function{{Blocks: []*BasicBlock{b0}}}}
	if err := p.Finalize(); err == nil {
		t.Error("indirect branch without targets: want error")
	}
}

func TestStaticStats(t *testing.T) {
	p, bs := tinyProgram(t)
	s := p.StaticStats()
	if s.Branches != len(bs) {
		t.Errorf("Branches = %d, want %d", s.Branches, len(bs))
	}
	if s.Blocks < 1 {
		t.Error("no occupied blocks counted")
	}
	wantCond := 1.0 / 4.0
	if s.CondFrac != wantCond {
		t.Errorf("CondFrac = %v, want %v", s.CondFrac, wantCond)
	}
	if s.PerBlock <= 0 {
		t.Error("PerBlock must be positive")
	}
}

func TestFootprintAndBlockCount(t *testing.T) {
	p, _ := tinyProgram(t)
	if p.FootprintBytes() <= 0 || p.FootprintBytes()%isa.BlockBytes != 0 {
		t.Errorf("footprint %d", p.FootprintBytes())
	}
	if p.NumCacheBlocks() != p.FootprintBytes()/isa.BlockBytes {
		t.Error("NumCacheBlocks inconsistent with footprint")
	}
}

func TestFunctionEntry(t *testing.T) {
	p, bs := tinyProgram(t)
	if p.Funcs[0].Entry() != bs[0] || p.Funcs[1].Entry() != bs[3] {
		t.Error("Entry() wrong")
	}
}
