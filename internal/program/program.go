// Package program models a static program: functions made of basic blocks
// laid out in a flat address space, each block optionally ending in a branch
// site. A program can materialize itself into a binary image using the
// synthetic ISA, which the simulator's predecoder then scans — the same image
// the L1-I notionally caches.
//
// Programs are produced by package synth and executed (walked) by package
// trace; every instruction-supply mechanism in the simulator ultimately
// consumes either the static structure (layout, branch sites) or the dynamic
// walk (the control-flow stream).
package program

import (
	"fmt"
	"sort"
	"sync"

	"confluence/internal/isa"
)

// LoopKind classifies conditional branch sites that control loops; the
// executor gives them quasi-deterministic per-site trip counts (predictable
// control flow, like real loop bounds) instead of per-visit coin flips.
type LoopKind uint8

const (
	// NotLoop: an ordinary conditional, governed by TakenBias.
	NotLoop LoopKind = iota
	// LoopExitHeader: while-style header; taken means *exit* the loop.
	LoopExitHeader
	// LoopBackEdge: do-while-style back edge; taken means *continue*.
	LoopBackEdge
)

// BranchSite is the static description of the control transfer ending a
// basic block.
type BranchSite struct {
	PC   isa.Addr       // address of the branch instruction
	Kind isa.BranchKind // never BrNone

	// Target is the static target for direct branches (cond/uncond/call).
	Target isa.Addr

	// TakenBias is the probability a non-loop conditional branch is taken
	// on a given execution. Unconditional kinds ignore it (always taken).
	TakenBias float64

	// Loop marks loop-controlling conditionals; TripMean is the site's
	// characteristic iteration count (executions jitter slightly around
	// it).
	Loop     LoopKind
	TripMean int

	// Targets lists the candidate targets of indirect branches/calls.
	Targets []isa.Addr

	// Resolved pointers, filled by Program.link.
	TargetBlock  *BasicBlock
	TargetBlocks []*BasicBlock
}

// BasicBlock is a straight-line run of instructions. If Branch is non-nil it
// is the final instruction of the block; otherwise the block falls through
// into Fall.
type BasicBlock struct {
	Addr   isa.Addr
	NInstr int
	Branch *BranchSite // nil => fall-through block

	// Fall is the next block in layout order (the fall-through successor and,
	// for calls, the return point). Nil only for the final block of the
	// program image, which must end in an unconditional transfer.
	Fall *BasicBlock

	// Func is the owning function, filled by link.
	Func *Function

	// idx is the block's position in the program's ascending-address block
	// order (and in the ExecNodes array), filled by Finalize.
	idx int32
}

// Index returns the block's position in Blocks()/ExecNodes() order; valid
// after Finalize.
func (b *BasicBlock) Index() int32 { return b.idx }

// End returns the address one past the last instruction of the block.
func (b *BasicBlock) End() isa.Addr { return b.Addr + isa.Addr(b.NInstr*isa.InstrBytes) }

// LastPC returns the address of the final instruction of the block.
func (b *BasicBlock) LastPC() isa.Addr { return b.Addr + isa.Addr((b.NInstr-1)*isa.InstrBytes) }

// Function is a contiguous sequence of basic blocks with a single entry.
type Function struct {
	ID     int
	Name   string
	Layer  int // depth in the layered call graph (0 = request entry)
	Blocks []*BasicBlock
}

// Entry returns the function's entry block.
func (f *Function) Entry() *BasicBlock { return f.Blocks[0] }

// Program is a complete laid-out program.
type Program struct {
	Name  string
	Base  isa.Addr
	Funcs []*Function

	blocks  []*BasicBlock // all blocks, ascending address
	byAddr  map[isa.Addr]*BasicBlock
	image   []byte
	imgBase isa.Addr

	// predecoded[i] holds the branches of the i-th 64B image block,
	// materialized once in Finalize so concurrent simulations can share a
	// Program without synchronization.
	predecoded [][]isa.PredecodedBranch

	// execNodes is the execution-compiled CFG: one pointer-free, fixed-size
	// node per basic block in ascending address order, with successors as
	// indices. Executors walk this flat array instead of the pointer graph
	// — the layout is contiguous and follows code order, so the dominant
	// fall-through/sequential control flow walks memory sequentially, and
	// the array costs the garbage collector nothing to scan. Compiled
	// lazily on first use (only executed programs pay the footprint) and
	// read-only afterwards, shared by all cores.
	execOnce    sync.Once
	execNodes   []ExecNode
	indirectIdx []int32 // pooled indirect-target indices (ExecNode.TargetsOff/N)
}

// ExecNode is the flat execution form of one basic block. All successor
// references are indices into the same array; indirect target lists live in
// a shared pool addressed by TargetsOff/TargetsN. The struct is pointer-free
// and kept small (48 bytes) so the walk stays cache-dense; the terminating
// branch's PC is not stored — link pins it to the block's last instruction,
// so it is Addr + (NInstr-1)*4 (see BrPC).
type ExecNode struct {
	Addr      isa.Addr // block start
	Target    isa.Addr // static target for direct branches
	TakenBias float64

	Fall       int32 // index of the fall-through successor; -1 if none
	TargetNode int32 // index of the direct-branch target; -1 if none
	TargetsOff int32 // first indirect-candidate index in the pool
	TripMean   int32

	NInstr   uint16
	TargetsN uint16 // number of indirect candidates
	BrKind   isa.BranchKind
	Loop     LoopKind
}

// BrPC returns the terminating branch's PC (the block's last instruction).
func (n *ExecNode) BrPC() isa.Addr {
	return n.Addr + isa.Addr(n.NInstr-1)*isa.InstrBytes
}

// ExecNodes returns the flat compiled CFG, compiling it on first use; valid
// after Finalize. Safe for concurrent use.
func (p *Program) ExecNodes() []ExecNode {
	p.execOnce.Do(p.compileExecNodes)
	return p.execNodes
}

// IndirectTargets returns the pooled indirect-candidate indices for node n.
func (p *Program) IndirectTargets(n *ExecNode) []int32 {
	return p.indirectIdx[n.TargetsOff : n.TargetsOff+int32(n.TargetsN)]
}

// Blocks returns all basic blocks in ascending address order.
func (p *Program) Blocks() []*BasicBlock { return p.blocks }

// BlockAt returns the basic block starting exactly at addr, or nil.
func (p *Program) BlockAt(addr isa.Addr) *BasicBlock { return p.byAddr[addr] }

// Image returns the program's binary image and its base address.
func (p *Program) Image() ([]byte, isa.Addr) { return p.image, p.imgBase }

// FootprintBytes returns the size of the laid-out image in bytes.
func (p *Program) FootprintBytes() int { return len(p.image) }

// NumCacheBlocks returns the number of 64B blocks the image spans.
func (p *Program) NumCacheBlocks() int {
	return (len(p.image) + isa.BlockBytes - 1) / isa.BlockBytes
}

// Finalize indexes blocks, resolves branch-target pointers, and materializes
// the binary image. It must be called once after construction (synth does).
func (p *Program) Finalize() error {
	p.blocks = p.blocks[:0]
	p.byAddr = make(map[isa.Addr]*BasicBlock)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			b.Func = f
			p.blocks = append(p.blocks, b)
		}
	}
	sort.Slice(p.blocks, func(i, j int) bool { return p.blocks[i].Addr < p.blocks[j].Addr })
	for i, b := range p.blocks {
		if _, dup := p.byAddr[b.Addr]; dup {
			return fmt.Errorf("program: duplicate block at %#x", b.Addr)
		}
		b.idx = int32(i)
		p.byAddr[b.Addr] = b
	}
	if err := p.link(); err != nil {
		return err
	}
	if err := p.buildImage(); err != nil {
		return err
	}
	p.predecoded = make([][]isa.PredecodedBranch, p.NumCacheBlocks())
	for i := range p.predecoded {
		off := i * isa.BlockBytes
		p.predecoded[i] = isa.Predecode(nil, p.image[off:off+isa.BlockBytes],
			p.imgBase+isa.Addr(off))
	}
	return p.Validate()
}

// compileExecNodes flattens the linked pointer graph into the pointer-free
// ExecNode array (see ExecNode). Called once via ExecNodes.
func (p *Program) compileExecNodes() {
	p.execNodes = make([]ExecNode, len(p.blocks))
	p.indirectIdx = p.indirectIdx[:0]
	for i, b := range p.blocks {
		if b.NInstr > 1<<16-1 {
			panic(fmt.Sprintf("program: block %#x too long for exec node (%d instr)", b.Addr, b.NInstr))
		}
		n := ExecNode{
			Addr:       b.Addr,
			NInstr:     uint16(b.NInstr),
			Fall:       -1,
			TargetNode: -1,
		}
		if b.Fall != nil {
			n.Fall = b.Fall.idx
		}
		if br := b.Branch; br != nil {
			n.BrKind = br.Kind
			n.Target = br.Target
			n.TakenBias = br.TakenBias
			n.Loop = br.Loop
			n.TripMean = int32(br.TripMean)
			if br.TargetBlock != nil {
				n.TargetNode = br.TargetBlock.idx
			}
			if len(br.TargetBlocks) > 0 {
				if len(br.TargetBlocks) > 1<<16-1 {
					panic(fmt.Sprintf("program: indirect at %#x has too many targets", br.PC))
				}
				n.TargetsOff = int32(len(p.indirectIdx))
				n.TargetsN = uint16(len(br.TargetBlocks))
				for _, tb := range br.TargetBlocks {
					p.indirectIdx = append(p.indirectIdx, tb.idx)
				}
			}
		}
		p.execNodes[i] = n
	}
}

func (p *Program) link() error {
	for i, b := range p.blocks {
		if i+1 < len(p.blocks) && b.Fall == nil {
			// Fall defaults to the adjacent block when layout is contiguous.
			if p.blocks[i+1].Addr == b.End() {
				b.Fall = p.blocks[i+1]
			}
		}
		br := b.Branch
		if br == nil {
			if b.Fall == nil && i+1 < len(p.blocks) {
				return fmt.Errorf("program: fall-through block at %#x has no successor", b.Addr)
			}
			continue
		}
		br.PC = b.LastPC()
		if br.Kind.IsDirect() {
			tb := p.byAddr[br.Target]
			if tb == nil {
				return fmt.Errorf("program: branch at %#x targets %#x: no such block", br.PC, br.Target)
			}
			br.TargetBlock = tb
		}
		if br.Kind == isa.BrIndirect || br.Kind == isa.BrIndCall {
			if len(br.Targets) == 0 {
				return fmt.Errorf("program: indirect branch at %#x has no targets", br.PC)
			}
			br.TargetBlocks = br.TargetBlocks[:0]
			for _, t := range br.Targets {
				tb := p.byAddr[t]
				if tb == nil {
					return fmt.Errorf("program: indirect branch at %#x targets %#x: no such block", br.PC, t)
				}
				br.TargetBlocks = append(br.TargetBlocks, tb)
			}
		}
	}
	return nil
}

func (p *Program) buildImage() error {
	if len(p.blocks) == 0 {
		return fmt.Errorf("program: no blocks")
	}
	first := p.blocks[0].Addr
	last := p.blocks[len(p.blocks)-1].End()
	base := isa.BlockOf(first)
	size := int(last - base)
	if size%isa.BlockBytes != 0 {
		size += isa.BlockBytes - size%isa.BlockBytes
	}
	img := make([]byte, size)
	// Fill padding with NOPs (encoded zero-class words are ALU; good enough:
	// the predecoder only cares about branch classes).
	for _, b := range p.blocks {
		off := int(b.Addr - base)
		n := b.NInstr
		if b.Branch != nil {
			n--
		}
		for i := 0; i < n; i++ {
			putWord(img, off+i*isa.InstrBytes, isa.MustEncode(isa.Instr{}))
		}
		if br := b.Branch; br != nil {
			in := isa.Instr{Kind: br.Kind}
			if br.Kind.IsDirect() {
				d, err := isa.Disp(br.PC, br.Target)
				if err != nil {
					return err
				}
				in.Disp = d
			}
			w, err := isa.Encode(in)
			if err != nil {
				return err
			}
			putWord(img, off+(b.NInstr-1)*isa.InstrBytes, w)
		}
	}
	p.image = img
	p.imgBase = base
	return nil
}

func putWord(img []byte, off int, w isa.Word) {
	img[off] = byte(w)
	img[off+1] = byte(w >> 8)
	img[off+2] = byte(w >> 16)
	img[off+3] = byte(w >> 24)
}

// PredecodeBlock returns the predecoded branches of the 64B block at base
// (which must be block-aligned), or nil outside the image. It is the
// image-side operation Confluence performs on every block filled into the
// L1-I. The table is built in Finalize and read-only afterwards, so it is
// safe for concurrent use.
func (p *Program) PredecodeBlock(block isa.Addr) []isa.PredecodedBranch {
	off := int(block - p.imgBase)
	if off < 0 || off+isa.BlockBytes > len(p.image) {
		return nil
	}
	return p.predecoded[off>>isa.BlockShift]
}

// Validate checks structural invariants: block alignment, no overlap,
// resolved branch targets, and image/branch consistency.
func (p *Program) Validate() error {
	var prevEnd isa.Addr
	for i, b := range p.blocks {
		if !isa.Aligned(b.Addr) {
			return fmt.Errorf("program: block %#x not instruction-aligned", b.Addr)
		}
		if b.NInstr <= 0 {
			return fmt.Errorf("program: block %#x has %d instructions", b.Addr, b.NInstr)
		}
		if i > 0 && b.Addr < prevEnd {
			return fmt.Errorf("program: block %#x overlaps previous (ends %#x)", b.Addr, prevEnd)
		}
		prevEnd = b.End()
		if br := b.Branch; br != nil {
			if !br.Kind.IsBranch() {
				return fmt.Errorf("program: block %#x branch kind none", b.Addr)
			}
			if br.PC != b.LastPC() {
				return fmt.Errorf("program: block %#x branch PC %#x != last instr %#x", b.Addr, br.PC, b.LastPC())
			}
			if br.Kind == isa.BrCond && b.Fall == nil {
				return fmt.Errorf("program: conditional at %#x lacks fall-through", br.PC)
			}
			if br.Kind.IsCall() && b.Fall == nil {
				return fmt.Errorf("program: call at %#x lacks return point", br.PC)
			}
		} else if b.Fall == nil && i != len(p.blocks)-1 {
			return fmt.Errorf("program: block %#x falls off a cliff", b.Addr)
		}
	}
	return nil
}

// StaticBranchStats summarizes the static branch population, matching the
// "static" row of the paper's Table 2 when divided over occupied blocks.
type StaticBranchStats struct {
	Blocks          int     // 64B cache blocks occupied by code
	Branches        int     // total branch sites
	PerBlock        float64 // branches per occupied 64B block
	CondFrac        float64
	TakenSitesUpper int // sites that can ever be taken (uncond + cond)
}

// StaticStats computes the static branch census over the image.
func (p *Program) StaticStats() StaticBranchStats {
	occupied := make(map[isa.Addr]bool)
	var s StaticBranchStats
	var cond int
	for _, b := range p.blocks {
		for a := isa.BlockOf(b.Addr); a < b.End(); a += isa.BlockBytes {
			occupied[a] = true
		}
		if b.Branch != nil {
			s.Branches++
			if b.Branch.Kind == isa.BrCond {
				cond++
			}
			s.TakenSitesUpper++
		}
	}
	s.Blocks = len(occupied)
	if s.Blocks > 0 {
		s.PerBlock = float64(s.Branches) / float64(s.Blocks)
	}
	if s.Branches > 0 {
		s.CondFrac = float64(cond) / float64(s.Branches)
	}
	return s
}
