package program

import (
	"bytes"
	"testing"

	"confluence/internal/isa"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p, _ := tinyProgram(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if q.Name != p.Name || q.Base != p.Base {
		t.Error("metadata lost")
	}
	if len(q.Funcs) != len(p.Funcs) {
		t.Fatalf("functions: %d, want %d", len(q.Funcs), len(p.Funcs))
	}
	pb, qb := p.Blocks(), q.Blocks()
	if len(pb) != len(qb) {
		t.Fatalf("blocks: %d, want %d", len(qb), len(pb))
	}
	for i := range pb {
		if pb[i].Addr != qb[i].Addr || pb[i].NInstr != qb[i].NInstr {
			t.Errorf("block %d shape mismatch", i)
		}
		a, b := pb[i].Branch, qb[i].Branch
		if (a == nil) != (b == nil) {
			t.Fatalf("block %d branch presence mismatch", i)
		}
		if a != nil && (a.Kind != b.Kind || a.Target != b.Target || a.TakenBias != b.TakenBias) {
			t.Errorf("block %d branch payload mismatch", i)
		}
	}
	// Images must be identical byte for byte.
	pi, _ := p.Image()
	qi, _ := q.Image()
	if !bytes.Equal(pi, qi) {
		t.Error("images differ after round trip")
	}
}

func TestSaveLoadPreservesLoopMetadata(t *testing.T) {
	base := isa.Addr(0x3000)
	b0 := &BasicBlock{Addr: base, NInstr: 2}
	b1 := &BasicBlock{Addr: b0.End(), NInstr: 2, Branch: &BranchSite{Kind: isa.BrRet}}
	b0.Branch = &BranchSite{
		Kind: isa.BrCond, Target: base,
		Loop: LoopBackEdge, TripMean: 7, TakenBias: 0.875,
	}
	p := &Program{Base: base, Funcs: []*Function{{Blocks: []*BasicBlock{b0, b1}}}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	br := q.Blocks()[0].Branch
	if br.Loop != LoopBackEdge || br.TripMean != 7 {
		t.Errorf("loop metadata lost: %+v", br)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a program"))); err == nil {
		t.Error("garbage input: want error")
	}
}

func TestSaveLoadNonAdjacentFall(t *testing.T) {
	// A fall edge that adjacency cannot recompute (block gap) must survive.
	base := isa.Addr(0x4000)
	b0 := &BasicBlock{Addr: base, NInstr: 2}
	b1 := &BasicBlock{Addr: base + 64, NInstr: 2, Branch: &BranchSite{Kind: isa.BrRet}}
	b0.Fall = b1
	b0.Branch = &BranchSite{Kind: isa.BrCond, Target: b1.Addr, TakenBias: 0.5}
	p := &Program{Base: base, Funcs: []*Function{{Blocks: []*BasicBlock{b0, b1}}}}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Blocks()[0].Fall != q.Blocks()[1] {
		t.Error("explicit fall edge lost")
	}
}
