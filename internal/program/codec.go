package program

import (
	"encoding/gob"
	"fmt"
	"io"

	"confluence/internal/isa"
)

// Flat serialization: pointers in the in-memory form create cycles (Fall
// edges), which gob cannot encode, so Save/Load round-trip through an
// index-based representation.

type flatBranch struct {
	Kind      isa.BranchKind
	Target    isa.Addr
	TakenBias float64
	Loop      LoopKind
	TripMean  int
	Targets   []isa.Addr
}

type flatBlock struct {
	Addr   isa.Addr
	NInstr int
	Branch *flatBranch
	// FallIdx is the index (into the flat block list) of the explicit
	// fall-through successor, or -1 when adjacency implies it / none.
	FallIdx int
}

type flatFunc struct {
	ID     int
	Name   string
	Layer  int
	Blocks []int // indices into the flat block list
}

type flatProgram struct {
	Name  string
	Base  isa.Addr
	Block []flatBlock
	Func  []flatFunc
}

// Save writes the program in a self-contained binary form.
func (p *Program) Save(w io.Writer) error {
	fp := flatProgram{Name: p.Name, Base: p.Base}
	idx := make(map[*BasicBlock]int, len(p.blocks))
	for i, b := range p.blocks {
		idx[b] = i
	}
	for i, b := range p.blocks {
		fb := flatBlock{Addr: b.Addr, NInstr: b.NInstr, FallIdx: -1}
		if b.Fall != nil {
			// Record only address-adjacent fall edges implicitly; anything
			// else (layout gaps) must be stored explicitly.
			adjacent := i+1 < len(p.blocks) && p.blocks[i+1] == b.Fall && b.Fall.Addr == b.End()
			if !adjacent {
				fb.FallIdx = idx[b.Fall]
			}
		}
		if br := b.Branch; br != nil {
			fb.Branch = &flatBranch{
				Kind: br.Kind, Target: br.Target,
				TakenBias: br.TakenBias, Loop: br.Loop, TripMean: br.TripMean,
				Targets: br.Targets,
			}
		}
		fp.Block = append(fp.Block, fb)
	}
	for _, f := range p.Funcs {
		ff := flatFunc{ID: f.ID, Name: f.Name, Layer: f.Layer}
		for _, b := range f.Blocks {
			ff.Blocks = append(ff.Blocks, idx[b])
		}
		fp.Func = append(fp.Func, ff)
	}
	return gob.NewEncoder(w).Encode(&fp)
}

// Load reads a program written by Save and finalizes it.
func Load(r io.Reader) (*Program, error) {
	var fp flatProgram
	if err := gob.NewDecoder(r).Decode(&fp); err != nil {
		return nil, fmt.Errorf("program: load: %w", err)
	}
	blocks := make([]*BasicBlock, len(fp.Block))
	for i, fb := range fp.Block {
		b := &BasicBlock{Addr: fb.Addr, NInstr: fb.NInstr}
		if fb.Branch != nil {
			b.Branch = &BranchSite{
				Kind: fb.Branch.Kind, Target: fb.Branch.Target,
				TakenBias: fb.Branch.TakenBias, Loop: fb.Branch.Loop, TripMean: fb.Branch.TripMean,
				Targets: fb.Branch.Targets,
			}
		}
		blocks[i] = b
	}
	for i, fb := range fp.Block {
		if fb.FallIdx >= 0 {
			if fb.FallIdx >= len(blocks) {
				return nil, fmt.Errorf("program: load: bad fall index %d", fb.FallIdx)
			}
			blocks[i].Fall = blocks[fb.FallIdx]
		}
	}
	p := &Program{Name: fp.Name, Base: fp.Base}
	for _, ff := range fp.Func {
		f := &Function{ID: ff.ID, Name: ff.Name, Layer: ff.Layer}
		for _, bi := range ff.Blocks {
			if bi >= len(blocks) {
				return nil, fmt.Errorf("program: load: bad block index %d", bi)
			}
			f.Blocks = append(f.Blocks, blocks[bi])
		}
		p.Funcs = append(p.Funcs, f)
	}
	if err := p.Finalize(); err != nil {
		return nil, fmt.Errorf("program: load: %w", err)
	}
	return p, nil
}
