// Package prefetch defines the interface between the frontend timing model
// and instruction prefetchers (SHIFT, FDP), plus a null implementation for
// the no-prefetch baseline.
package prefetch

import "confluence/internal/isa"

// Request asks the frontend to schedule a block fill. The frontend computes
// the fill's completion time as now + ExtraDelay + hierarchy latency;
// negative ExtraDelay models lookahead already banked by the prefetcher
// (FDP's run-ahead), positive models serialized metadata reads (SHIFT's
// index and history accesses in the LLC).
type Request struct {
	Block      isa.Addr
	ExtraDelay float64
}

// Prefetcher is driven by the frontend on every fetch region and L1-I block
// access.
type Prefetcher interface {
	Name() string
	// OnAccess observes a demand block access; miss reports whether the
	// block was absent from the L1-I (in-flight fills count as present).
	OnAccess(now float64, block isa.Addr, miss bool) []Request
	// OnRegion observes a fetch region emitted by the BPU.
	OnRegion(now float64, start isa.Addr, nInstr int) []Request
	// Redirect observes a pipeline redirect (misfetch or misprediction),
	// which destroys any BPU run-ahead.
	Redirect(now float64)
}

// Null is the no-prefetch baseline.
type Null struct{}

// Name implements Prefetcher.
func (Null) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (Null) OnAccess(float64, isa.Addr, bool) []Request { return nil }

// OnRegion implements Prefetcher.
func (Null) OnRegion(float64, isa.Addr, int) []Request { return nil }

// Redirect implements Prefetcher.
func (Null) Redirect(float64) {}
