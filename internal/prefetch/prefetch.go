// Package prefetch defines the interface between the frontend timing model
// and instruction prefetchers (SHIFT, FDP), plus a null implementation for
// the no-prefetch baseline.
package prefetch

import "confluence/internal/isa"

// Request asks the frontend to schedule a block fill. The frontend computes
// the fill's completion time as now + ExtraDelay + hierarchy latency;
// negative ExtraDelay models lookahead already banked by the prefetcher
// (FDP's run-ahead), positive models serialized metadata reads (SHIFT's
// index and history accesses in the LLC).
type Request struct {
	Block      isa.Addr
	ExtraDelay float64
}

// Prefetcher is driven by the frontend on every fetch region and L1-I block
// access.
//
// OnAccess and OnRegion follow the append-into-dst convention (like
// Cache.Keys): the caller passes a request buffer and receives it back with
// any new requests appended. The frontend threads one reusable scratch
// buffer through every call, so prefetchers issue requests without
// allocating on the per-instruction path; implementations must only append
// to dst and must not retain it.
type Prefetcher interface {
	Name() string
	// OnAccess observes a demand block access; miss reports whether the
	// block was absent from the L1-I (in-flight fills count as present).
	// Requests are appended to dst.
	OnAccess(now float64, block isa.Addr, miss bool, dst []Request) []Request
	// OnRegion observes a fetch region emitted by the BPU. Requests are
	// appended to dst.
	OnRegion(now float64, start isa.Addr, nInstr int, dst []Request) []Request
	// Redirect observes a pipeline redirect (misfetch or misprediction),
	// which destroys any BPU run-ahead.
	Redirect(now float64)
}

// Null is the no-prefetch baseline.
type Null struct{}

// Name implements Prefetcher.
func (Null) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (Null) OnAccess(_ float64, _ isa.Addr, _ bool, dst []Request) []Request { return dst }

// OnRegion implements Prefetcher.
func (Null) OnRegion(_ float64, _ isa.Addr, _ int, dst []Request) []Request { return dst }

// Redirect implements Prefetcher.
func (Null) Redirect(float64) {}
