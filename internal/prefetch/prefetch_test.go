package prefetch

import "testing"

func TestNullDoesNothing(t *testing.T) {
	var n Null
	if n.Name() != "none" {
		t.Errorf("Name = %q", n.Name())
	}
	if got := n.OnAccess(0, 0x1000, true); got != nil {
		t.Error("Null issued prefetches on access")
	}
	if got := n.OnRegion(0, 0x1000, 8); got != nil {
		t.Error("Null issued prefetches on region")
	}
	n.Redirect(0) // must not panic
}

// Compile-time check: Null satisfies the interface it documents.
var _ Prefetcher = Null{}
