// Interface-level tests for every Prefetcher implementation. The package
// is external (prefetch_test) so it can exercise the real SHIFT and FDP
// engines through the interface the frontend drives, without an import
// cycle back into their packages.
package prefetch_test

import (
	"testing"

	"confluence/internal/fdp"
	"confluence/internal/isa"
	"confluence/internal/prefetch"
	"confluence/internal/shift"
)

func TestNullDoesNothing(t *testing.T) {
	var n prefetch.Null
	if n.Name() != "none" {
		t.Errorf("Name = %q", n.Name())
	}
	if got := n.OnAccess(0, 0x1000, true, nil); got != nil {
		t.Error("Null issued prefetches on access")
	}
	if got := n.OnRegion(0, 0x1000, 8, nil); got != nil {
		t.Error("Null issued prefetches on region")
	}
	n.Redirect(0) // must not panic
}

// Compile-time checks: every implementation satisfies the interface.
var (
	_ prefetch.Prefetcher = prefetch.Null{}
	_ prefetch.Prefetcher = (*shift.Engine)(nil)
	_ prefetch.Prefetcher = (*fdp.FDP)(nil)
)

// blockAddr turns a block number into the byte address OnAccess receives.
func blockAddr(n uint64) isa.Addr { return isa.Addr(n << isa.BlockShift) }

// shiftEngine builds a history holding the block-number stream hist and an
// engine with the given lookahead over it.
func shiftEngine(hist []uint64, lookahead int, metaLat float64) (*shift.History, *shift.Engine) {
	h := shift.NewHistory(1 << 10)
	for _, b := range hist {
		h.Record(b)
	}
	cfg := shift.Config{HistoryEntries: 1 << 10, Lookahead: lookahead}
	return h, shift.NewEngine(cfg, h, metaLat)
}

// stream returns n distinct block numbers far enough apart to defeat the
// history's recent-duplicate filter.
func stream(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(100 + i*32)
	}
	return out
}

func TestSHIFTRestartStreamsHistory(t *testing.T) {
	hist := stream(12)
	const lookahead, metaLat = 4, 10.0
	_, e := shiftEngine(hist, lookahead, metaLat)

	// An unpredicted miss on hist[0] restarts the stream there: the engine
	// must issue the blocks that followed it, up to the lookahead, with the
	// serialized restart delay (two LLC metadata reads) on the first.
	reqs := e.OnAccess(0, blockAddr(hist[0]), true, nil)
	if len(reqs) != lookahead {
		t.Fatalf("restart issued %d requests, want %d", len(reqs), lookahead)
	}
	for i, r := range reqs {
		if want := blockAddr(hist[1+i]); r.Block != want {
			t.Errorf("request %d prefetches %#x, want %#x", i, r.Block, want)
		}
		if want := 2*metaLat + float64(i); r.ExtraDelay != want {
			t.Errorf("request %d delay %v, want %v (restart + serialized issue)", i, r.ExtraDelay, want)
		}
	}
	if e.StreamRestarts != 1 {
		t.Errorf("StreamRestarts = %d", e.StreamRestarts)
	}
	if e.WindowSize() != lookahead {
		t.Errorf("window holds %d, want %d", e.WindowSize(), lookahead)
	}
}

func TestSHIFTConfirmAdvancesWindow(t *testing.T) {
	hist := stream(12)
	const lookahead = 4
	_, e := shiftEngine(hist, lookahead, 10)
	e.OnAccess(0, blockAddr(hist[0]), true, nil)

	// Demand touching a predicted block confirms it: it leaves the window
	// and the stream advances one block, with no restart penalty.
	reqs := e.OnAccess(1, blockAddr(hist[1]), false, nil)
	if len(reqs) != 1 {
		t.Fatalf("confirm issued %d requests, want 1", len(reqs))
	}
	if want := blockAddr(hist[1+lookahead]); reqs[0].Block != want {
		t.Errorf("advance prefetched %#x, want %#x", reqs[0].Block, want)
	}
	if reqs[0].ExtraDelay != 0 {
		t.Errorf("advance carried delay %v, want 0 (no restart)", reqs[0].ExtraDelay)
	}
	if e.Confirms != 1 || e.StreamRestarts != 1 {
		t.Errorf("Confirms=%d StreamRestarts=%d", e.Confirms, e.StreamRestarts)
	}
	// Confirms count even when the predicted block missed (a late fill):
	// the stream still advances rather than restarting.
	if reqs := e.OnAccess(2, blockAddr(hist[2]), true, nil); len(reqs) != 1 {
		t.Errorf("late-fill confirm issued %d requests, want 1", len(reqs))
	}
	if e.StreamRestarts != 1 {
		t.Errorf("late-fill confirm restarted the stream")
	}
}

func TestSHIFTDuplicateSuppression(t *testing.T) {
	// A history whose continuation revisits a block: A B C B D E. Replaying
	// from A must not hold B in the window twice.
	hist := []uint64{100, 200, 300, 200, 400, 500}
	_, e := shiftEngine(hist, 4, 10)

	reqs := e.OnAccess(0, blockAddr(100), true, nil)
	want := []uint64{200, 300, 400, 500} // the duplicate 200 skipped, window topped up past it
	if len(reqs) != len(want) {
		t.Fatalf("issued %d requests, want %d", len(reqs), len(want))
	}
	for i, r := range reqs {
		if r.Block != blockAddr(want[i]) {
			t.Errorf("request %d prefetches %#x, want %#x", i, r.Block, blockAddr(want[i]))
		}
	}
}

func TestSHIFTStreamBoundary(t *testing.T) {
	// Restarting two blocks before the write frontier: the stream ends
	// there, so the window cannot fill to the full lookahead.
	hist := stream(6)
	_, e := shiftEngine(hist, 8, 10)
	reqs := e.OnAccess(0, blockAddr(hist[3]), true, nil)
	if len(reqs) != 2 {
		t.Fatalf("issued %d requests at the frontier, want 2 (hist[4:])", len(reqs))
	}
	if e.WindowSize() != 2 {
		t.Errorf("window holds %d, want 2", e.WindowSize())
	}
	// Confirming at the boundary cannot issue anything further.
	if reqs := e.OnAccess(1, blockAddr(hist[4]), false, nil); len(reqs) != 0 {
		t.Errorf("advance past the frontier issued %d requests", len(reqs))
	}
}

func TestSHIFTIndexMiss(t *testing.T) {
	hist := stream(8)
	_, e := shiftEngine(hist, 4, 10)
	if reqs := e.OnAccess(0, blockAddr(9999), true, nil); reqs != nil {
		t.Errorf("unknown block issued %d requests", len(reqs))
	}
	if e.IndexMisses != 1 {
		t.Errorf("IndexMisses = %d", e.IndexMisses)
	}
	// A non-miss access to an unpredicted block is ignored entirely.
	if reqs := e.OnAccess(1, blockAddr(hist[0]), false, nil); reqs != nil {
		t.Errorf("L1-I hit restarted the stream")
	}
	if e.StreamRestarts != 1 {
		t.Errorf("StreamRestarts = %d, want 1 (only the true miss)", e.StreamRestarts)
	}
}

func TestSHIFTIgnoresRegionsAndRedirects(t *testing.T) {
	hist := stream(12)
	_, e := shiftEngine(hist, 4, 10)
	if reqs := e.OnRegion(0, blockAddr(hist[0]), 8, nil); reqs != nil {
		t.Error("SHIFT issued on a fetch region")
	}
	e.OnAccess(0, blockAddr(hist[0]), true, nil)
	before := e.WindowSize()
	// SHIFT's run-ahead is autonomous: a pipeline redirect must not destroy
	// the prediction window (the paper's timeliness argument vs FDP).
	e.Redirect(1)
	if e.WindowSize() != before {
		t.Errorf("redirect shrank the window from %d to %d", before, e.WindowSize())
	}
	if reqs := e.OnAccess(2, blockAddr(hist[1]), false, nil); len(reqs) != 1 {
		t.Errorf("stream did not survive the redirect")
	}
}

func TestFDPRegionPrefetchesWithBankedLookahead(t *testing.T) {
	cfg := fdp.Config{QueueDepth: 6, CyclesPerBB: 1.4}
	f := fdp.New(cfg)

	// A fresh FDP has a full queue of run-ahead banked.
	full := float64(cfg.QueueDepth) * cfg.CyclesPerBB
	reqs := f.OnRegion(0, 0x1000, 4, nil) // 4 instructions inside one block
	if len(reqs) != 1 {
		t.Fatalf("single-block region issued %d requests", len(reqs))
	}
	if reqs[0].Block != isa.BlockOf(0x1000) || reqs[0].ExtraDelay != -full {
		t.Errorf("request = %+v, want block %#x delay %v", reqs[0], isa.BlockOf(0x1000), -full)
	}

	// A region spanning a block boundary prefetches both blocks.
	start := isa.Addr(0x2000 + 56) // 2 instructions in this block, rest in the next
	reqs = f.OnRegion(1, start, 6, nil)
	if len(reqs) != 2 {
		t.Fatalf("spanning region issued %d requests, want 2", len(reqs))
	}
	if reqs[0].Block != isa.BlockOf(start) || reqs[1].Block != isa.BlockOf(start)+isa.BlockBytes {
		t.Errorf("spanning blocks = %#x, %#x", reqs[0].Block, reqs[1].Block)
	}

	if reqs := f.OnRegion(2, 0x3000, 0, nil); reqs != nil {
		t.Error("empty region issued prefetches")
	}
	if reqs := f.OnAccess(3, 0x3000, true, nil); reqs != nil {
		t.Error("FDP issued on access (it is region-driven)")
	}
}

func TestFDPRedirectDestroysRunAhead(t *testing.T) {
	cfg := fdp.Config{QueueDepth: 4, CyclesPerBB: 2}
	f := fdp.New(cfg)

	f.Redirect(0)
	// The first region after a redirect has no banked lookahead; each
	// subsequent region banks one more, capped at the queue depth.
	wantLA := []float64{0, 2, 4, 6, 8, 8, 8}
	for i, want := range wantLA {
		reqs := f.OnRegion(float64(i), 0x1000, 4, nil)
		if len(reqs) != 1 {
			t.Fatalf("region %d issued %d requests", i, len(reqs))
		}
		if reqs[0].ExtraDelay != -want {
			t.Errorf("region %d lookahead %v, want %v", i, -reqs[0].ExtraDelay, want)
		}
	}
	if f.Redirects != 1 {
		t.Errorf("Redirects = %d", f.Redirects)
	}

	// A second redirect resets the ramp again.
	f.Redirect(99)
	if reqs := f.OnRegion(100, 0x1000, 4, nil); reqs[0].ExtraDelay != 0 {
		t.Errorf("post-redirect lookahead %v, want 0", -reqs[0].ExtraDelay)
	}
}
