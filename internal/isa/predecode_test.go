package isa

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"
)

// buildBlock assembles a 64B block with branches at the given offsets.
func buildBlock(t *testing.T, base Addr, branches map[int]Instr) []byte {
	t.Helper()
	data := make([]byte, BlockBytes)
	for i := 0; i < InstrPerBlock; i++ {
		in, ok := branches[i]
		if !ok {
			in = Instr{}
		}
		w, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(data[i*InstrBytes:], w)
	}
	return data
}

func TestPredecodeFindsAllBranches(t *testing.T) {
	base := Addr(0x4000)
	branches := map[int]Instr{
		1:  {Kind: BrCond, Disp: 5},
		3:  {Kind: BrUncond, Disp: -2},
		7:  {Kind: BrCall, Disp: 100},
		9:  {Kind: BrRet},
		15: {Kind: BrIndirect},
	}
	data := buildBlock(t, base, branches)
	got := Predecode(nil, data, base)
	if len(got) != len(branches) {
		t.Fatalf("predecode found %d branches, want %d", len(got), len(branches))
	}
	for _, pb := range got {
		want, ok := branches[int(pb.Offset)]
		if !ok {
			t.Fatalf("predecode invented a branch at offset %d", pb.Offset)
		}
		if pb.Kind != want.Kind {
			t.Errorf("offset %d: kind %v, want %v", pb.Offset, pb.Kind, want.Kind)
		}
		if want.Kind.IsDirect() {
			wantTarget := Target(base+Addr(int(pb.Offset)*InstrBytes), want.Disp)
			if pb.Target != wantTarget {
				t.Errorf("offset %d: target %#x, want %#x", pb.Offset, pb.Target, wantTarget)
			}
		}
		if pb.PC(base) != base+Addr(int(pb.Offset)*InstrBytes) {
			t.Errorf("PC() mismatch at offset %d", pb.Offset)
		}
	}
}

func TestPredecodeEmptyBlock(t *testing.T) {
	data := buildBlock(t, 0x4000, nil)
	if got := Predecode(nil, data, 0x4000); len(got) != 0 {
		t.Errorf("branch-free block predecoded %d branches", len(got))
	}
}

func TestPredecodeAppendsToDst(t *testing.T) {
	base := Addr(0x4000)
	data := buildBlock(t, base, map[int]Instr{2: {Kind: BrRet}})
	seed := []PredecodedBranch{{Offset: 9, Kind: BrCall}}
	got := Predecode(seed, data, base)
	if len(got) != 2 || got[0] != seed[0] {
		t.Errorf("Predecode must append to dst; got %+v", got)
	}
}

func TestPredecodeOrder(t *testing.T) {
	base := Addr(0)
	data := buildBlock(t, base, map[int]Instr{
		12: {Kind: BrRet}, 0: {Kind: BrCond, Disp: 1}, 5: {Kind: BrUncond, Disp: 2},
	})
	got := Predecode(nil, data, base)
	for i := 1; i < len(got); i++ {
		if got[i].Offset <= got[i-1].Offset {
			t.Fatalf("predecode out of block order: %+v", got)
		}
	}
}

func TestBranchBitmap(t *testing.T) {
	pbs := []PredecodedBranch{{Offset: 0}, {Offset: 3}, {Offset: 15}}
	want := uint16(1)<<0 | 1<<3 | 1<<15
	if got := BranchBitmap(pbs); got != want {
		t.Errorf("bitmap = %#x, want %#x", got, want)
	}
	if BranchBitmap(nil) != 0 {
		t.Error("empty bitmap should be 0")
	}
}

func TestPredecodeRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	kinds := []BranchKind{BrCond, BrUncond, BrCall, BrRet, BrIndirect, BrIndCall}
	for trial := 0; trial < 200; trial++ {
		base := Addr(rng.Uint64()&0xFFFF_FFFF) &^ (BlockBytes - 1)
		want := map[int]Instr{}
		for i := 0; i < InstrPerBlock; i++ {
			if rng.Float64() < 0.3 {
				k := kinds[rng.IntN(len(kinds))]
				in := Instr{Kind: k}
				if k.IsDirect() {
					in.Disp = int32(rng.IntN(2000) - 1000)
				}
				want[i] = in
			}
		}
		data := buildBlock(t, base, want)
		got := Predecode(nil, data, base)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d branches, want %d", trial, len(got), len(want))
		}
		for _, pb := range got {
			if want[int(pb.Offset)].Kind != pb.Kind {
				t.Fatalf("trial %d: offset %d kind mismatch", trial, pb.Offset)
			}
		}
	}
}
