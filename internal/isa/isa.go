// Package isa defines the synthetic fixed-length RISC instruction set used
// throughout the simulator: addresses, cache-block geometry, branch kinds,
// instruction-word encoding, and the block predecoder that Confluence relies
// on to fill AirBTB.
//
// The encoding is deliberately simple — 32-bit words, a 4-bit opcode class,
// and a 24-bit signed PC-relative displacement for direct branches — but it
// is a real encoding: programs are materialized into byte images and the
// predecoder recovers branch metadata by decoding those bytes, exactly the
// operation Confluence performs on blocks fetched into the L1-I.
package isa

import "fmt"

// Geometry of the machine. These mirror the paper's configuration:
// 64-byte instruction blocks holding 16 fixed-length 4-byte instructions.
const (
	InstrBytes    = 4  // fixed instruction length
	BlockBytes    = 64 // L1-I / LLC block size
	InstrPerBlock = BlockBytes / InstrBytes

	// BlockShift converts a byte address to a block address.
	BlockShift = 6
)

// Addr is a 48-bit virtual address (stored in 64 bits).
type Addr uint64

// ASIDShift positions the address-space tag used when a CMP consolidates
// heterogeneous workloads: mix slot s occupies addresses tagged with
// ASIDBase(s). Program images live far below bit 44, so tagged spaces never
// collide; slot 0 is untagged, keeping homogeneous runs bit-identical to
// the pre-mix simulator.
const ASIDShift = 44

// ASIDBase returns the address-space tag of mix slot s. Shared structures
// keyed by address (the LLC, SHIFT's history, PhantomBTB's group store) OR
// this into their keys so distinct programs compete on capacity instead of
// falsely aliasing at identical virtual addresses.
func ASIDBase(s int) Addr { return Addr(s) << ASIDShift }

// BlockOf returns the address of the 64B block containing a.
func BlockOf(a Addr) Addr { return a &^ (BlockBytes - 1) }

// BlockIndex returns the instruction slot (0..15) of a within its block.
func BlockIndex(a Addr) int { return int(a%BlockBytes) / InstrBytes }

// Align reports whether a is instruction-aligned.
func Aligned(a Addr) bool { return a%InstrBytes == 0 }

// BranchKind classifies control-transfer instructions. BrNone marks a basic
// block that simply falls through into its successor.
type BranchKind uint8

const (
	BrNone     BranchKind = iota // not a branch / fall-through block
	BrCond                       // conditional, PC-relative target
	BrUncond                     // unconditional jump, PC-relative target
	BrCall                       // direct call (pushes return address)
	BrRet                        // return (target from return address stack)
	BrIndirect                   // indirect jump (target from indirect cache)
	BrIndCall                    // indirect call (pushes return address)

	numBranchKinds
)

var branchKindNames = [...]string{
	BrNone:     "none",
	BrCond:     "cond",
	BrUncond:   "uncond",
	BrCall:     "call",
	BrRet:      "ret",
	BrIndirect: "indirect",
	BrIndCall:  "indcall",
}

func (k BranchKind) String() string {
	if int(k) < len(branchKindNames) {
		return branchKindNames[k]
	}
	return fmt.Sprintf("BranchKind(%d)", uint8(k))
}

// IsBranch reports whether k is any control transfer.
func (k BranchKind) IsBranch() bool { return k != BrNone && k < numBranchKinds }

// Valid reports whether k is a defined branch kind (including BrNone).
// Deserializers must check it: a raw byte outside the enum is corruption,
// not a branch kind.
func (k BranchKind) Valid() bool { return k < numBranchKinds }

// IsDirect reports whether the target is encoded in the instruction
// (PC-relative displacement), which is what AirBTB stores.
func (k BranchKind) IsDirect() bool {
	return k == BrCond || k == BrUncond || k == BrCall
}

// IsCall reports whether k pushes a return address.
func (k BranchKind) IsCall() bool { return k == BrCall || k == BrIndCall }

// IsUnconditional reports whether the branch is always taken when executed.
func (k BranchKind) IsUnconditional() bool { return k.IsBranch() && k != BrCond }

// Opcode classes. Branch classes intentionally occupy a contiguous range so
// the predecoder can identify them with a single comparison.
const (
	opALU   = 0x0
	opLoad  = 0x1
	opStore = 0x2
	opNop   = 0x3

	opBrCond   = 0x8
	opBrUncond = 0x9
	opCall     = 0xA
	opRet      = 0xB
	opIndirect = 0xC
	opIndCall  = 0xD
)

// dispBits is the width of the signed PC-relative displacement field,
// measured in instruction words.
const dispBits = 24

// MaxDisp and MinDisp bound the reachable displacement (in instructions).
const (
	MaxDisp = 1<<(dispBits-1) - 1
	MinDisp = -(1 << (dispBits - 1))
)

// Instr is one decoded instruction.
type Instr struct {
	Kind BranchKind // BrNone for non-branches
	Disp int32      // signed displacement in instructions (direct branches)
}

// Word is a raw 32-bit instruction word.
type Word = uint32

var opForKind = map[BranchKind]uint32{
	BrCond:     opBrCond,
	BrUncond:   opBrUncond,
	BrCall:     opCall,
	BrRet:      opRet,
	BrIndirect: opIndirect,
	BrIndCall:  opIndCall,
}

var kindForOp = map[uint32]BranchKind{
	opBrCond:   BrCond,
	opBrUncond: BrUncond,
	opCall:     BrCall,
	opRet:      BrRet,
	opIndirect: BrIndirect,
	opIndCall:  BrIndCall,
}

// Encode packs an instruction into a word. Non-branch instructions encode as
// a plain ALU op; Disp must fit in the displacement field for direct kinds.
func Encode(in Instr) (Word, error) {
	if in.Kind == BrNone {
		return opALU << 28, nil
	}
	op, ok := opForKind[in.Kind]
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode branch kind %v", in.Kind)
	}
	w := op << 28
	if in.Kind.IsDirect() {
		if in.Disp > MaxDisp || in.Disp < MinDisp {
			return 0, fmt.Errorf("isa: displacement %d out of range [%d,%d]", in.Disp, MinDisp, MaxDisp)
		}
		w |= uint32(in.Disp) & (1<<dispBits - 1)
	}
	return w, nil
}

// MustEncode is Encode for callers that construct valid instructions by
// construction (e.g. the program layout engine).
func MustEncode(in Instr) Word {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a word.
func Decode(w Word) Instr {
	op := w >> 28
	kind, ok := kindForOp[op]
	if !ok {
		return Instr{Kind: BrNone}
	}
	in := Instr{Kind: kind}
	if kind.IsDirect() {
		d := w & (1<<dispBits - 1)
		// Sign-extend the 24-bit field.
		if d&(1<<(dispBits-1)) != 0 {
			d |= 0xFF << dispBits
		}
		in.Disp = int32(d)
	}
	return in
}

// Target computes the byte target address of a direct branch at pc.
func Target(pc Addr, disp int32) Addr {
	return Addr(int64(pc) + int64(disp)*InstrBytes)
}

// Disp computes the instruction displacement from pc to target.
// It returns an error when the distance is not representable.
func Disp(pc, target Addr) (int32, error) {
	d := (int64(target) - int64(pc)) / InstrBytes
	if (int64(target)-int64(pc))%InstrBytes != 0 {
		return 0, fmt.Errorf("isa: unaligned branch distance %#x -> %#x", pc, target)
	}
	if d > MaxDisp || d < MinDisp {
		return 0, fmt.Errorf("isa: branch distance %d out of range", d)
	}
	return int32(d), nil
}
