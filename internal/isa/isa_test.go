package isa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBlockGeometry(t *testing.T) {
	if InstrPerBlock != 16 {
		t.Fatalf("InstrPerBlock = %d, want 16", InstrPerBlock)
	}
	cases := []struct {
		addr  Addr
		block Addr
		index int
	}{
		{0x1000, 0x1000, 0},
		{0x1004, 0x1000, 1},
		{0x103C, 0x1000, 15},
		{0x1040, 0x1040, 0},
		{0x0, 0x0, 0},
	}
	for _, c := range cases {
		if got := BlockOf(c.addr); got != c.block {
			t.Errorf("BlockOf(%#x) = %#x, want %#x", c.addr, got, c.block)
		}
		if got := BlockIndex(c.addr); got != c.index {
			t.Errorf("BlockIndex(%#x) = %d, want %d", c.addr, got, c.index)
		}
	}
}

func TestAligned(t *testing.T) {
	if !Aligned(0x1000) || !Aligned(4) {
		t.Error("aligned addresses reported unaligned")
	}
	if Aligned(0x1001) || Aligned(2) {
		t.Error("unaligned addresses reported aligned")
	}
}

func TestBranchKindPredicates(t *testing.T) {
	cases := []struct {
		k                            BranchKind
		branch, direct, call, uncond bool
	}{
		{BrNone, false, false, false, false},
		{BrCond, true, true, false, false},
		{BrUncond, true, true, false, true},
		{BrCall, true, true, true, true},
		{BrRet, true, false, false, true},
		{BrIndirect, true, false, false, true},
		{BrIndCall, true, false, true, true},
	}
	for _, c := range cases {
		if c.k.IsBranch() != c.branch {
			t.Errorf("%v.IsBranch() = %v", c.k, !c.branch)
		}
		if c.k.IsDirect() != c.direct {
			t.Errorf("%v.IsDirect() = %v", c.k, !c.direct)
		}
		if c.k.IsCall() != c.call {
			t.Errorf("%v.IsCall() = %v", c.k, !c.call)
		}
		if c.k.IsUnconditional() != c.uncond {
			t.Errorf("%v.IsUnconditional() = %v", c.k, !c.uncond)
		}
	}
}

func TestBranchKindString(t *testing.T) {
	if BrCond.String() != "cond" || BrRet.String() != "ret" {
		t.Errorf("unexpected names: %v %v", BrCond, BrRet)
	}
	if got := BranchKind(99).String(); got != "BranchKind(99)" {
		t.Errorf("out-of-range name = %q", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	kinds := []BranchKind{BrCond, BrUncond, BrCall, BrRet, BrIndirect, BrIndCall}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 2000; i++ {
		k := kinds[rng.IntN(len(kinds))]
		in := Instr{Kind: k}
		if k.IsDirect() {
			in.Disp = int32(rng.IntN(MaxDisp-MinDisp+1)) + MinDisp
		}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		got := Decode(w)
		if got != in {
			t.Fatalf("round trip: encoded %+v, decoded %+v", in, got)
		}
	}
}

func TestEncodeNonBranch(t *testing.T) {
	w, err := Encode(Instr{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(w); got.Kind != BrNone {
		t.Errorf("non-branch decoded as %v", got.Kind)
	}
}

func TestEncodeDispOutOfRange(t *testing.T) {
	for _, d := range []int32{MaxDisp + 1, MinDisp - 1} {
		if _, err := Encode(Instr{Kind: BrUncond, Disp: d}); err == nil {
			t.Errorf("Encode with disp %d: want error", d)
		}
	}
	// Boundary values must encode.
	for _, d := range []int32{MaxDisp, MinDisp, 0, -1, 1} {
		if _, err := Encode(Instr{Kind: BrCond, Disp: d}); err != nil {
			t.Errorf("Encode with disp %d: %v", d, err)
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode with bad disp did not panic")
		}
	}()
	MustEncode(Instr{Kind: BrCall, Disp: MaxDisp + 1})
}

func TestTargetDispInverse(t *testing.T) {
	f := func(pcRaw uint32, dRaw int32) bool {
		pc := Addr(pcRaw) &^ 3 // aligned
		d := dRaw % (MaxDisp / 2)
		target := Target(pc, d)
		back, err := Disp(pc, target)
		if int64(pc)+int64(d)*InstrBytes < 0 {
			return true // wrapped below zero; not a meaningful program address
		}
		return err == nil && back == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDispErrors(t *testing.T) {
	if _, err := Disp(0x1000, 0x1002); err == nil {
		t.Error("unaligned distance: want error")
	}
	if _, err := Disp(0, Addr(MaxDisp+1)*InstrBytes); err == nil {
		t.Error("distance out of range: want error")
	}
}

func TestDecodeUnknownOpcode(t *testing.T) {
	// Opcode classes 0x4..0x7, 0xE, 0xF are undefined; they decode as
	// non-branches.
	for _, op := range []uint32{0x4, 0x5, 0x6, 0x7, 0xE, 0xF} {
		if got := Decode(op << 28); got.Kind != BrNone {
			t.Errorf("opcode %#x decoded as %v", op, got.Kind)
		}
	}
}

func TestBranchKindValid(t *testing.T) {
	for k := BrNone; k < numBranchKinds; k++ {
		if !k.Valid() {
			t.Errorf("%v not valid", k)
		}
	}
	for _, k := range []BranchKind{numBranchKinds, 42, 255} {
		if k.Valid() {
			t.Errorf("BranchKind(%d) reported valid", uint8(k))
		}
		if k.IsBranch() {
			t.Errorf("BranchKind(%d) reported as a branch", uint8(k))
		}
	}
}
