package isa

import "encoding/binary"

// PredecodedBranch is the metadata Confluence extracts from an instruction
// block as it is filled into the L1-I: the branch's slot within the block,
// its kind, and — for direct branches — its absolute target.
type PredecodedBranch struct {
	Offset uint8      // instruction slot within the block, 0..15
	Kind   BranchKind // never BrNone
	Target Addr       // valid only for direct kinds
}

// PC returns the branch's full instruction address given its block base.
func (b PredecodedBranch) PC(block Addr) Addr {
	return block + Addr(b.Offset)*InstrBytes
}

// Predecode scans one 64-byte instruction block and returns its branches in
// block order. data must hold at least BlockBytes bytes; block is the block's
// base address (used to materialize PC-relative targets).
//
// This models the few-cycle branch scan Confluence performs before a block
// is inserted into the L1-I (paper §3.2). The scan appends results to dst to
// let callers reuse storage.
func Predecode(dst []PredecodedBranch, data []byte, block Addr) []PredecodedBranch {
	_ = data[BlockBytes-1] // bounds hint
	for i := 0; i < InstrPerBlock; i++ {
		w := binary.LittleEndian.Uint32(data[i*InstrBytes:])
		in := Decode(w)
		if in.Kind == BrNone {
			continue
		}
		pb := PredecodedBranch{Offset: uint8(i), Kind: in.Kind}
		if in.Kind.IsDirect() {
			pb.Target = Target(block+Addr(i*InstrBytes), in.Disp)
		}
		dst = append(dst, pb)
	}
	return dst
}

// BranchBitmap returns the 16-bit bitmap marking branch slots in the block,
// the representation AirBTB keeps per bundle.
func BranchBitmap(branches []PredecodedBranch) uint16 {
	var bm uint16
	for _, b := range branches {
		bm |= 1 << b.Offset
	}
	return bm
}
