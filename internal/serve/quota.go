package serve

import (
	"sync"
	"time"
)

// quotaTable implements per-client token-bucket submission quotas: each
// client key owns a bucket of `burst` tokens refilling at `rps` tokens
// per second; one submission consumes one token, and an empty bucket is
// the 429 signal. Buckets are created on first use and pruned once full
// again and idle, so the table stays bounded by the set of recently
// active clients.
type quotaTable struct {
	rps   float64
	burst float64
	now   func() time.Time

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastPrune time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newQuotaTable builds a table allowing rps sustained submissions per
// second with bursts of burst; rps <= 0 disables quotas entirely.
func newQuotaTable(rps float64, burst int, now func() time.Time) *quotaTable {
	if rps <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &quotaTable{rps: rps, burst: float64(burst), now: now, buckets: make(map[string]*bucket)}
}

// allow consumes one token from key's bucket, reporting whether the
// submission is within quota. A nil table allows everything.
func (q *quotaTable) allow(key string) bool {
	if q == nil {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.now()
	q.pruneLocked(t)
	b, ok := q.buckets[key]
	if !ok {
		b = &bucket{tokens: q.burst, last: t}
		q.buckets[key] = b
	}
	b.tokens += t.Sub(b.last).Seconds() * q.rps
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked removes every bucket that has refilled to full as of t. A
// full bucket is indistinguishable from no bucket (first use creates them
// full), so removal never changes any client's quota — it only bounds the
// table by the set of clients still inside their refill window. Fullness
// is judged on clock-computed tokens, not the stored count: a
// partially-drained bucket whose owner never submits again still refills
// on the wall clock, so idle buckets always become prunable (the stored
// count only advances on the owner's own submissions, which for an
// abandoned key is never). Sweeps are throttled to one per second so the
// O(clients) scan amortizes across submissions.
func (q *quotaTable) pruneLocked(t time.Time) {
	if t.Sub(q.lastPrune) < time.Second {
		return
	}
	q.lastPrune = t
	for k, b := range q.buckets {
		if b.tokens+t.Sub(b.last).Seconds()*q.rps >= q.burst {
			delete(q.buckets, k)
		}
	}
}

// retryAfter estimates the seconds until key's next token, for the
// Retry-After header (minimum 1).
func (q *quotaTable) retryAfter(key string) int {
	if q == nil {
		return 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[key]
	if !ok || q.rps <= 0 {
		return 1
	}
	missing := 1 - b.tokens
	if missing <= 0 {
		return 1
	}
	secs := int(missing/q.rps + 0.999)
	if secs < 1 {
		secs = 1
	}
	return secs
}
