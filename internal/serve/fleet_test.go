package serve

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"confluence"
	"confluence/internal/fleet"
)

// tinySweep is a fast two-cell grid: two workloads × one design, one
// core, no warmup, a short measurement window.
func tinySweep() *confluence.JobSpec {
	return &confluence.JobSpec{
		Kind:      confluence.KindSweep,
		Workloads: []string{"DSS-Qrys", "KeyValue"},
		Designs:   []string{"Base1K"},
		Cores:     1, NoWarmup: true, MeasureInstr: 20_000,
	}
}

// TestFleetCellsExpansion: cells follow spec expansion order with
// deterministic IDs, carry the RunCtx store key, and each cell spec
// round-trips to a runnable point config.
func TestFleetCellsExpansion(t *testing.T) {
	cells, err := FleetCells(tinySweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded to %d cells, want 2", len(cells))
	}
	for i, c := range cells {
		if want := []string{"c000", "c001"}[i]; c.ID != want {
			t.Errorf("cell %d ID = %s, want %s", i, c.ID, want)
		}
		spec, err := confluence.ParseJobSpec(c.Spec)
		if err != nil {
			t.Fatalf("cell %s spec does not parse: %v", c.ID, err)
		}
		if spec.NormKind() != confluence.KindPoint || spec.Parallelism != 0 || spec.Priority != 0 {
			t.Errorf("cell %s spec = %+v, want a scheduling-free point spec", c.ID, spec)
		}
		cfg, err := spec.Config()
		if err != nil {
			t.Fatal(err)
		}
		if key, ok := confluence.ConfigStoreKey(cfg); !ok || key != c.Key {
			t.Errorf("cell %s: manifest key %.12s, round-tripped config derives %.12s", c.ID, c.Key, key)
		}
	}
	if cells[0].Key == cells[1].Key {
		t.Error("distinct cells share a store key")
	}

	if _, err := FleetCells(&confluence.JobSpec{Kind: confluence.KindMixStudy, Mix: []string{"DSS-Qrys", "KeyValue"}}); err == nil {
		t.Error("mixstudy spec expanded to fleet cells")
	}
}

// TestExecuteSpecFleetMatchesStorePath: the same sweep through the fleet
// path and the plain store path yields byte-identical results — the
// fleet only changes who computes the cells, never what is served.
func TestExecuteSpecFleetMatchesStorePath(t *testing.T) {
	spec := tinySweep()
	base := t.TempDir()

	serial, err := ExecuteSpecStore(context.Background(), spec, filepath.Join(base, "store-serial"), nil)
	if err != nil {
		t.Fatal(err)
	}

	o := fleet.Options{Dir: filepath.Join(base, "fleet"), WorkerID: "test-coord"}
	fleetRes, rep, err := ExecuteSpecFleet(context.Background(), spec, filepath.Join(base, "store-fleet"), o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Completed != 2 || rep.Failed() {
		t.Fatalf("fleet report = %+v, want 2 completed", rep)
	}

	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(fleetRes)
	if string(a) != string(b) {
		t.Fatalf("fleet result diverges from serial:\nserial: %s\nfleet:  %s", a, b)
	}
}

// TestExecuteSpecFleetReportsPoison: a quarantined cell surfaces as an
// error naming the cell, with the report carrying the poison record.
func TestExecuteSpecFleetReportsPoison(t *testing.T) {
	spec := tinySweep()
	base := t.TempDir()
	o := fleet.Options{
		Dir: filepath.Join(base, "fleet"), WorkerID: "test-coord",
		MaxAttempts: 2, Chaos: &fleet.Chaos{FailCell: "c001"},
	}
	_, rep, err := ExecuteSpecFleet(context.Background(), spec, filepath.Join(base, "store"), o, nil)
	if err == nil {
		t.Fatal("poisoned grid reported success")
	}
	if rep == nil || len(rep.Poisoned) != 1 || rep.Poisoned[0].CellID != "c001" {
		t.Fatalf("report = %+v, want c001 quarantined", rep)
	}
	if rep.Completed != 1 {
		t.Fatalf("healthy cell did not complete: %+v", rep)
	}
}

// TestServerFleetDirRouting: a server configured with FleetDir runs
// point/sweep jobs through per-job fleet directories (manifest on disk)
// and still completes them inline with no workers attached.
func TestServerFleetDirRouting(t *testing.T) {
	base := t.TempDir()
	fleetDir := filepath.Join(base, "fleet")
	s, ts := newTestServer(t, Config{
		Workers: 1, StoreDir: filepath.Join(base, "store"), FleetDir: fleetDir,
	})
	sum := submitted(t, ts, tinySpec())
	waitState(t, s, sum.ID, StateDone)
	if _, err := os.Stat(filepath.Join(fleetDir, "job-1", "manifest.json")); err != nil {
		t.Fatalf("fleet manifest not published: %v", err)
	}
}
