package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"confluence"
	"confluence/internal/experiments"
	"confluence/internal/frontend"
	"confluence/internal/parallel"
	"confluence/internal/store"
)

// State is a job's lifecycle position. Transitions are monotone:
// queued → running → {done, failed, cancelled}, with queued → cancelled
// for jobs cancelled before a worker picked them up.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry of a job's progress stream — the SSE wire format.
// Seq starts at 1 and increases by exactly 1 per event within a job, so a
// client can detect gaps. Cell carries the serialized experiments
// progress event for "cell" events; Error carries the failure message of
// a "failed" event.
type Event struct {
	Seq   int                        `json:"seq"`
	Type  string                     `json:"type"` // queued|started|cell|done|failed|cancelled
	Cell  *experiments.ProgressEvent `json:"cell,omitempty"`
	Error string                     `json:"error,omitempty"`
}

// CellResult is one completed simulation cell of a point or sweep job:
// the full measured stats (aggregate and per core), so a client can
// verify bit-identity against a direct library Run.
type CellResult struct {
	Mix          string            `json:"mix"`
	Design       string            `json:"design"`
	Stats        *frontend.Stats   `json:"stats"`
	PerCore      []*frontend.Stats `json:"per_core,omitempty"`
	OverheadMM2  float64           `json:"overhead_mm2"`
	RelativeArea float64           `json:"relative_area"`
	// Sampled carries the sampling report of a sampled cell (specs with
	// the sample_* fields set); nil in exact mode.
	Sampled *experiments.SampledReport `json:"sampled,omitempty"`
}

// Result is a finished job's payload: Cells for point/sweep jobs, MixRows
// for mixstudy jobs. Row order is canonical (spec expansion order), never
// completion order, so paginated reads are deterministic.
type Result struct {
	Kind    string               `json:"kind"`
	Cells   []CellResult         `json:"cells,omitempty"`
	MixRows []experiments.MixRow `json:"mix_rows,omitempty"`
}

// rowCount returns how many paginatable rows the result holds.
func (r *Result) rowCount() int {
	if r.Kind == confluence.KindMixStudy {
		return len(r.MixRows)
	}
	return len(r.Cells)
}

// rows returns the half-open row range [lo, hi) as a JSON-marshalable
// slice.
func (r *Result) rows(lo, hi int) any {
	if r.Kind == confluence.KindMixStudy {
		return r.MixRows[lo:hi]
	}
	return r.Cells[lo:hi]
}

// Job is one queued/running/finished unit of work.
type Job struct {
	ID       string              `json:"id"`
	Priority int                 `json:"priority"`
	Spec     *confluence.JobSpec `json:"spec"`

	seq       int64  // submission order, tie-break within a priority
	heapIndex int    // position in the queue heap; -1 when not queued
	storeKey  string // durable store key; "" when the job is not storable

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on every event append
	state  State
	events []Event
	cancel context.CancelFunc // set while running
	result *Result
	errMsg string
}

func newJob(id string, seq int64, spec *confluence.JobSpec) *Job {
	j := &Job{ID: id, Priority: spec.Priority, Spec: spec, seq: seq, heapIndex: -1, state: StateQueued}
	j.cond = sync.NewCond(&j.mu)
	j.appendEventLocked(Event{Type: "queued"})
	return j
}

// appendEventLocked appends e with the next sequence number and wakes
// event waiters. Callers hold j.mu or are the constructor.
func (j *Job) appendEventLocked(e Event) {
	e.Seq = len(j.events) + 1
	j.events = append(j.events, e)
	if j.cond != nil {
		j.cond.Broadcast()
	}
}

// emit appends an event.
func (j *Job) emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(e)
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// eventsSince returns the events after cursor (a previous length) and
// whether the job has reached a terminal state. It blocks until at least
// one new event exists, the job is terminal, or wakeup makes the wait
// observable from outside (the SSE handler broadcasts on client
// disconnect).
func (j *Job) eventsSince(cursor int, cancelled func() bool) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	for len(j.events) <= cursor && !j.state.terminal() && !cancelled() {
		j.cond.Wait()
	}
	// A cursor past the end (a caller claiming more events than exist) can
	// leave the wait on terminal state or cancellation; clamp rather than
	// slice negatively.
	if cursor > len(j.events) {
		cursor = len(j.events)
	}
	evs := make([]Event, len(j.events)-cursor)
	copy(evs, j.events[cursor:])
	return evs, j.state.terminal()
}

// wake re-evaluates eventsSince waiters (used on client disconnect).
func (j *Job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// Summary is the list/status view of a job.
type Summary struct {
	ID       string              `json:"id"`
	State    State               `json:"state"`
	Priority int                 `json:"priority"`
	Kind     string              `json:"kind"`
	Error    string              `json:"error,omitempty"`
	Events   int                 `json:"events"`
	Rows     int                 `json:"rows,omitempty"`
	Spec     *confluence.JobSpec `json:"spec,omitempty"`
}

func (j *Job) summary(withSpec bool) Summary {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Summary{
		ID: j.ID, State: j.state, Priority: j.Priority,
		Kind: j.Spec.NormKind(), Error: j.errMsg, Events: len(j.events),
	}
	if j.result != nil {
		s.Rows = j.result.rowCount()
	}
	if withSpec {
		s.Spec = j.Spec
	}
	return s
}

// ExecuteSpec runs a validated job spec to completion, streaming one
// progress event per finished simulation cell to emit (nil for none). It
// is the single execution path shared by the daemon's workers and
// `confluence-sim -job`, so a spec behaves identically under both.
//
// Point and sweep cells run through confluence.RunCtx — the same entry
// point a direct library caller uses — which is what makes the serving
// determinism contract (server result bit-identical to direct Run) hold
// by construction. Within a job, cells fan out across
// max(1, spec.Parallelism) goroutines; the default is serial so one job
// cannot oversubscribe the daemon (the queue's Workers knob governs
// cross-job concurrency).
func ExecuteSpec(ctx context.Context, spec *confluence.JobSpec, emit func(experiments.ProgressEvent)) (*Result, error) {
	return ExecuteSpecStore(ctx, spec, "", emit)
}

// ExecuteSpecStore is ExecuteSpec threading a durable result store: with
// a non-empty storeDir, every point/sweep cell runs with Config.StoreDir
// set (completed cells persist and are served from disk on re-execution)
// and a mixstudy's runner consults the same store per cell. An empty
// storeDir is exactly ExecuteSpec.
func ExecuteSpecStore(ctx context.Context, spec *confluence.JobSpec, storeDir string, emit func(experiments.ProgressEvent)) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if emit == nil {
		emit = func(experiments.ProgressEvent) {}
	}
	var emitMu sync.Mutex
	emitOne := func(e experiments.ProgressEvent) {
		emitMu.Lock()
		defer emitMu.Unlock()
		emit(e)
	}

	kind := spec.NormKind()
	if kind == confluence.KindMixStudy {
		return executeMixStudy(ctx, spec, storeDir, emitOne)
	}

	cfgs, err := spec.Configs()
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: kind, Cells: make([]CellResult, len(cfgs))}
	workers := spec.Parallelism
	if workers <= 0 {
		workers = 1
	}
	err = parallel.ForEach(ctx, workers, len(cfgs), func(ctx context.Context, i int) error {
		cfg := cfgs[i]
		// Within-job fan-out is already bounded by this ForEach; the
		// per-cell config must not fan out again.
		cfg.Parallelism = 0
		cfg.StoreDir = storeDir
		r, err := confluence.RunCtx(ctx, cfg)
		if err != nil {
			return err
		}
		cell := CellResult{
			Mix:          mixName(cfg),
			Design:       cfg.Design.String(),
			Stats:        r.Stats,
			PerCore:      r.PerCore,
			OverheadMM2:  r.OverheadMM2,
			RelativeArea: r.RelativeArea,
			Sampled:      r.Sampled,
		}
		res.Cells[i] = cell
		emitOne(experiments.ProgressEvent{
			Mix: cell.Mix, Design: cell.Design,
			IPC: r.Stats.IPC(), BTBMPKI: r.Stats.BTBMPKI(), L1IMPKI: r.Stats.L1IMPKI(),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// executeMixStudy runs a mixstudy spec through the experiments runner,
// forwarding its serialized progress events; a non-empty storeDir gives
// the runner the durable per-cell store.
func executeMixStudy(ctx context.Context, spec *confluence.JobSpec, storeDir string, emit func(experiments.ProgressEvent)) (*Result, error) {
	mix, err := spec.MixWorkloads()
	if err != nil {
		return nil, err
	}
	designs := experiments.MixStudyDesigns()
	if len(spec.Designs) > 0 {
		designs = designs[:0]
		for _, name := range spec.Designs {
			dp, ok := confluence.DesignByName(name)
			if !ok {
				return nil, fmt.Errorf("serve: unknown design %q", name)
			}
			designs = append(designs, dp)
		}
	}
	r := experiments.NewRunnerFor(jobScale(spec), nil)
	if storeDir != "" {
		r.Store = store.Open(storeDir)
	}
	r.Workers = spec.Parallelism
	if r.Workers <= 0 {
		r.Workers = 1
	}
	r.IntraWorkers = spec.IntraParallelism
	r.EpochBlocks = spec.EpochBlocks
	r.OnProgress = emit
	rows, err := r.MixStudyFor(ctx, [][]*confluence.Workload{mix}, designs)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: confluence.KindMixStudy, MixRows: rows}, nil
}

// jobScale maps a spec's simulation-shape fields onto an experiments
// Scale with the same defaults Config applies (16 cores, 1.5M
// warmup/measure per core, NoWarmup forcing a zero-length warmup).
func jobScale(spec *confluence.JobSpec) experiments.Scale {
	sc := experiments.Scale{Name: "job", Cores: spec.Cores, Warmup: spec.WarmupInstr, Measure: spec.MeasureInstr}
	if sc.Cores <= 0 {
		sc.Cores = 16
	}
	switch {
	case spec.NoWarmup:
		sc.Warmup = 0
	case sc.Warmup == 0:
		sc.Warmup = 1_500_000
	}
	if sc.Measure == 0 {
		sc.Measure = 1_500_000
	}
	return sc
}

// mixName labels a config's workload mix the way the experiments package
// does.
func mixName(cfg confluence.Config) string {
	if len(cfg.Mix) > 0 {
		return experiments.MixName(cfg.Mix)
	}
	if cfg.Workload != nil {
		return cfg.Workload.Prof.Name
	}
	return ""
}

// isCancellation reports whether err is a context cancellation (the job
// outcome is then "cancelled", not "failed").
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
