package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"confluence"
	"confluence/internal/experiments"
	"confluence/internal/fleet"
)

// This file is the bridge between job specs and the fleet protocol: a
// point or sweep spec decomposes into independent cells — each a
// self-contained point spec plus the durable store key RunCtx would use
// for it — which a fleet of preemptible workers completes in any order.
// The final result never comes from the fleet: once every cell is stored,
// the ordinary ExecuteSpecStore path replays the grid from the store in
// canonical order, so fleet output is byte-identical to a serial run by
// construction.

// FleetCells expands a point or sweep spec into the fleet's cell list.
// Cell IDs follow spec expansion order (c000, c001, ...); each cell's
// Spec is the point JobSpec that reproduces exactly that simulation, and
// its Key is the store key the engine will write the result under.
// Mixstudy specs do not decompose (their cells share ablation state) and
// are rejected here.
func FleetCells(spec *confluence.JobSpec) ([]fleet.Cell, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.NormKind() == confluence.KindMixStudy {
		return nil, fmt.Errorf("serve: mixstudy jobs do not decompose into fleet cells")
	}
	cfgs, err := spec.Configs()
	if err != nil {
		return nil, err
	}
	cells := make([]fleet.Cell, len(cfgs))
	for i, cfg := range cfgs {
		key, ok := confluence.ConfigStoreKey(cfg)
		if !ok {
			return nil, fmt.Errorf("serve: grid cell %d has no store key", i)
		}
		cellSpec, err := confluence.SpecFromConfig(cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: grid cell %d is not expressible as a point spec: %w", i, err)
		}
		// Scheduling knobs are each worker's own business; a cell spec
		// carrying the parent job's fan-out would nest parallelism inside
		// the fleet's.
		cellSpec.Parallelism = 0
		cellSpec.Priority = 0
		data, err := json.Marshal(cellSpec)
		if err != nil {
			return nil, fmt.Errorf("serve: grid cell %d: %w", i, err)
		}
		cells[i] = fleet.Cell{ID: fmt.Sprintf("c%03d", i), Key: key, Spec: data}
	}
	return cells, nil
}

// CellRunner returns the standard fleet cell runner: parse the cell's
// point spec, simulate it through the same RunCtx entry point every other
// execution path uses, and return the encoded store entry for the fleet
// to persist. The runner never writes the store itself (Config.StoreDir
// stays empty) — the fleet owns the Put, which is what lets the chaos
// harness intercept it.
func CellRunner() fleet.Runner {
	return func(ctx context.Context, cell fleet.Cell) ([]byte, error) {
		spec, err := confluence.ParseJobSpec(cell.Spec)
		if err != nil {
			return nil, fmt.Errorf("serve: fleet cell %s: %w", cell.ID, err)
		}
		cfg, err := spec.Config()
		if err != nil {
			return nil, fmt.Errorf("serve: fleet cell %s: %w", cell.ID, err)
		}
		// Version-skew guard: a worker whose code derives a different key
		// than the manifest's would store its result where nothing looks
		// for it (or worse, where something else does). Refuse to run — the
		// cell fails loudly instead of completing uselessly.
		if key, ok := confluence.ConfigStoreKey(cfg); !ok || key != cell.Key {
			return nil, fmt.Errorf("serve: fleet cell %s: this worker derives store key %.12s, manifest says %.12s (code version skew between fleet members?)", cell.ID, key, cell.Key)
		}
		cfg.Parallelism = 0
		r, err := confluence.RunCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return experiments.EncodeStoreEntry(experiments.StoreEntry{
			Stats: r.Stats, PerCore: r.PerCore,
			OverheadMM2: r.OverheadMM2, RelativeArea: r.RelativeArea,
		})
	}
}

// ExecuteSpecFleet runs a spec through a fleet coordinator rooted at
// o.Dir: publish the grid, participate until every cell is stored or
// quarantined, then serve the assembled result from the store via
// ExecuteSpecStore — which is why fleet output is byte-identical to a
// serial run of the same spec. o.Run defaults to CellRunner.
//
// A grid that finished with quarantined cells returns the fleet Report
// alongside an error naming them: the healthy cells' results are durably
// stored (a re-run skips them), but the spec's result cannot be
// assembled. Mixstudy specs fall back to inline store-backed execution
// (nil Report).
func ExecuteSpecFleet(ctx context.Context, spec *confluence.JobSpec, storeDir string, o fleet.Options, emit func(experiments.ProgressEvent)) (*Result, *fleet.Report, error) {
	if storeDir == "" {
		return nil, nil, fmt.Errorf("serve: fleet execution requires a store directory")
	}
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if spec.NormKind() == confluence.KindMixStudy {
		res, err := ExecuteSpecStore(ctx, spec, storeDir, emit)
		return res, nil, err
	}
	cells, err := FleetCells(spec)
	if err != nil {
		return nil, nil, err
	}
	if o.Run == nil {
		o.Run = CellRunner()
	}
	rep, err := fleet.Coordinator(ctx, o, storeDir, cells)
	if err != nil {
		return nil, nil, err
	}
	if rep.Failed() {
		descs := make([]string, len(rep.Poisoned))
		for i, p := range rep.Poisoned {
			descs[i] = fmt.Sprintf("%s after %d attempts: %s", p.CellID, p.Attempts, p.LastErr)
		}
		return nil, rep, fmt.Errorf("serve: fleet quarantined %d cell(s): %s", len(descs), strings.Join(descs, "; "))
	}
	res, err := ExecuteSpecStore(ctx, spec, storeDir, emit)
	return res, rep, err
}
