package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"confluence"
	"confluence/internal/experiments"
	"confluence/internal/store"
)

// fetchResult reads a finished job's full result page as raw JSON.
func fetchResult(t *testing.T, ts string, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts + "/jobs/" + id + "/result?limit=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	var buf json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestResubmitIsStoreHit pins the serving tentpole: an identical JobSpec
// re-submitted to a store-backed daemon completes instantly from the
// store — no queue slot, no worker — with the full event sequence and a
// result byte-identical to the live run's.
func TestResubmitIsStoreHit(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, StoreDir: dir})

	first := submitted(t, ts, tinySpec())
	waitState(t, s, first.ID, StateDone)
	liveJob, _ := s.Job(first.ID)
	liveEvents, _ := liveJob.eventsSince(0, func() bool { return true })

	st := store.Open(dir)
	hitsBefore, _, _ := st.Counters()
	second := submitted(t, ts, tinySpec())
	// No waitState: a store-served job must already be done when Submit
	// returns.
	if second.State != StateDone {
		t.Fatalf("re-submitted job state = %s at accept time, want done", second.State)
	}
	if hitsAfter, _, _ := st.Counters(); hitsAfter == hitsBefore {
		t.Error("re-submission did not read the store")
	}

	// Event replay: same sequence shape as the live run (queued, started,
	// one cell, done) with dense seqs.
	servedJob, _ := s.Job(second.ID)
	servedEvents, terminal := servedJob.eventsSince(0, func() bool { return true })
	if !terminal {
		t.Error("store-served job not terminal")
	}
	if len(servedEvents) != len(liveEvents) {
		t.Fatalf("served job has %d events, live had %d", len(servedEvents), len(liveEvents))
	}
	for i := range servedEvents {
		if servedEvents[i].Type != liveEvents[i].Type || servedEvents[i].Seq != i+1 {
			t.Errorf("event %d: served (%s, seq %d) vs live (%s, seq %d)",
				i, servedEvents[i].Type, servedEvents[i].Seq, liveEvents[i].Type, liveEvents[i].Seq)
		}
		if servedEvents[i].Type == "cell" && !reflect.DeepEqual(servedEvents[i].Cell, liveEvents[i].Cell) {
			t.Errorf("cell event %d diverges: %+v vs %+v", i, servedEvents[i].Cell, liveEvents[i].Cell)
		}
	}

	// Result bytes: identical pages modulo the job ID.
	liveRes := fetchResult(t, ts.URL, first.ID)
	servedRes := fetchResult(t, ts.URL, second.ID)
	canon := func(raw []byte) map[string]any {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "id")
		return m
	}
	if !reflect.DeepEqual(canon(liveRes), canon(servedRes)) {
		t.Errorf("store-served result page diverges from live:\n%s\nvs\n%s", servedRes, liveRes)
	}
}

// TestStoreSurvivesDaemonRestart pins persistence across processes: a
// fresh Server on the same StoreDir — a restarted daemon — serves a
// previously-finished spec from the store without re-simulating.
func TestStoreSurvivesDaemonRestart(t *testing.T) {
	dir := t.TempDir()

	s1, ts1 := newTestServer(t, Config{Workers: 1, StoreDir: dir})
	first := submitted(t, ts1, tinySpec())
	waitState(t, s1, first.ID, StateDone)
	liveRes := fetchResult(t, ts1.URL, first.ID)

	s2, ts2 := newTestServer(t, Config{Workers: 1, StoreDir: dir})
	executed := false
	s2.execute = func(ctx context.Context, spec *confluence.JobSpec, emit func(experiments.ProgressEvent)) (*Result, error) {
		executed = true
		return ExecuteSpecStore(ctx, spec, dir, emit)
	}
	again := submitted(t, ts2, tinySpec())
	if again.State != StateDone {
		t.Fatalf("restarted daemon: job state = %s at accept time, want done", again.State)
	}
	if executed {
		t.Error("restarted daemon re-executed a stored spec")
	}
	servedRes := fetchResult(t, ts2.URL, again.ID)

	var a, b map[string]any
	if err := json.Unmarshal(liveRes, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(servedRes, &b); err != nil {
		t.Fatal(err)
	}
	delete(a, "id")
	delete(b, "id")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("restarted daemon's stored result diverges from the original")
	}
}

// TestJobStoreKeyNormalization pins what is — and is not — a distinct job
// in the store's eyes.
func TestJobStoreKeyNormalization(t *testing.T) {
	key := func(s *confluence.JobSpec) string {
		t.Helper()
		k, ok := jobStoreKey(s)
		if !ok {
			t.Fatalf("unexpectedly unkeyable: %+v", s)
		}
		return k
	}
	ref := key(tinySpec())

	// Scheduling knobs are not identity.
	prio := tinySpec()
	prio.Priority = 9
	if key(prio) != ref {
		t.Error("Priority changed the job store key")
	}
	par := tinySpec()
	par.Parallelism, par.IntraParallelism = 8, 4
	if key(par) != ref {
		t.Error("Parallelism knobs changed the job store key")
	}
	// Kind normalization: "" and "point" are the same shape.
	kp := tinySpec()
	kp.Kind = confluence.KindPoint
	if key(kp) != ref {
		t.Error(`Kind "point" diverged from the empty default`)
	}
	// Zero-means-default sentinels resolve.
	meas := tinySpec()
	meas.MeasureInstr = 0
	def := tinySpec()
	def.MeasureInstr = 1_500_000
	if key(meas) != key(def) {
		t.Error("explicit 1.5M measure diverged from the zero default")
	}
	// Result-shaping fields are identity.
	design := tinySpec()
	design.Design = "Confluence"
	if key(design) == ref {
		t.Error("design not part of the job store key")
	}
	k2 := tinySpec()
	k2.EpochBlocks = 2
	if key(k2) == ref {
		t.Error("EpochBlocks not part of the job store key")
	}

	// Trace replays are not job-level cacheable.
	tr := tinySpec()
	tr.TraceDir = t.TempDir()
	if _, ok := jobStoreKey(tr); ok {
		t.Error("trace-replay spec got a job store key")
	}
}

// TestDecodeJobResultRejectsGarbage: corrupt or schema-drifted payloads
// are misses, never half-populated results.
func TestDecodeJobResultRejectsGarbage(t *testing.T) {
	for _, payload := range []string{"", "null", "{}", `{"cells": []}`} {
		if _, ok := decodeJobResult([]byte(payload)); ok {
			t.Errorf("decodeJobResult(%q) accepted", payload)
		}
	}
}

// TestNoStoreDirKeepsLegacyBehavior: without a StoreDir nothing touches
// the filesystem and every submission executes.
func TestNoStoreDirKeepsLegacyBehavior(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	if s.store != nil {
		t.Fatal("store handle created without a StoreDir")
	}
	runs := 0
	s.execute = func(ctx context.Context, spec *confluence.JobSpec, emit func(experiments.ProgressEvent)) (*Result, error) {
		runs++
		return &Result{Kind: spec.NormKind()}, nil
	}
	for i := 0; i < 2; i++ {
		sum := submitted(t, ts, tinySpec())
		waitState(t, s, sum.ID, StateDone)
	}
	if runs != 2 {
		t.Errorf("identical specs executed %d times without a store, want 2", runs)
	}
}
