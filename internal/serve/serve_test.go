package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"confluence"
	"confluence/internal/experiments"
	"confluence/internal/frontend"
	"confluence/internal/synth"
)

// tinySpec is a fast real simulation (~milliseconds): one core, no
// warmup, a short measurement window.
func tinySpec() *confluence.JobSpec {
	return &confluence.JobSpec{
		Workload: "DSS-Qrys", Design: "Base1K",
		Cores: 1, NoWarmup: true, MeasureInstr: 20_000,
	}
}

// newTestServer starts a Server plus an httptest front end, both torn
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// blockUntil installs an execute hook that parks jobs until release is
// closed (or their context is cancelled). Install before any Submit.
func blockUntil(s *Server, release <-chan struct{}) {
	s.execute = func(ctx context.Context, spec *confluence.JobSpec, emit func(experiments.ProgressEvent)) (*Result, error) {
		select {
		case <-release:
			return &Result{Kind: spec.NormKind()}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// postJob submits a spec over HTTP and returns the response.
func postJob(t *testing.T, ts *httptest.Server, spec *confluence.JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeBody decodes a JSON response body into v and closes it.
func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// submitted posts spec expecting 202 and returns the accepted summary.
func submitted(t *testing.T, ts *httptest.Server, spec *confluence.JobSpec) Summary {
	t.Helper()
	resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var sum Summary
	decodeBody(t, resp, &sum)
	return sum
}

// waitState polls until the job reaches want (terminal mismatches fail
// immediately, a stuck job fails at the deadline).
func waitState(t *testing.T, s *Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		st := j.State()
		if st == want {
			return
		}
		if st.terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %s, want %s", id, st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitPollResultLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	sum := submitted(t, ts, tinySpec())
	if sum.Kind != confluence.KindPoint || sum.Spec == nil {
		t.Fatalf("accepted summary = %+v", sum)
	}
	waitState(t, s, sum.ID, StateDone)

	var got Summary
	resp, err := http.Get(ts.URL + "/jobs/" + sum.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &got)
	if got.State != StateDone || got.Rows != 1 {
		t.Fatalf("status = %+v", got)
	}

	resp, err = http.Get(ts.URL + "/jobs/" + sum.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	raw := struct {
		resultPage
		Rows []CellResult `json:"rows"`
	}{}
	decodeBody(t, resp, &raw)
	if raw.Total != 1 || len(raw.Rows) != 1 {
		t.Fatalf("result page: total=%d rows=%d", raw.Total, len(raw.Rows))
	}
	cell := raw.Rows[0]
	if cell.Design != "Base1K" || cell.Mix != "DSS-Qrys" || cell.Stats == nil || cell.Stats.IPC() <= 0 {
		t.Fatalf("cell = %+v", cell)
	}

	// Pagination past the end is empty but well-formed.
	resp, err = http.Get(ts.URL + "/jobs/" + sum.ID + "/result?offset=1")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &raw)
	if raw.Total != 1 || len(raw.Rows) != 0 {
		t.Fatalf("offset past end: total=%d rows=%d", raw.Total, len(raw.Rows))
	}

	// The list shows the one job.
	var list listPage
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &list)
	if list.Total != 1 || len(list.Jobs) != 1 || list.Jobs[0].ID != sum.ID {
		t.Fatalf("list = %+v", list)
	}
	_ = s
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"unknown field":  `{"design":"Base1K","workload":"DSS-Qrys","frobnicate":1}`,
		"unknown design": `{"design":"Base9K","workload":"DSS-Qrys"}`,
		"missing design": `{"workload":"DSS-Qrys"}`,
		"trailing data":  `{"design":"Base1K","workload":"DSS-Qrys"}{}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorBody
		decodeBody(t, resp, &e)
		if resp.StatusCode != http.StatusBadRequest || e.Error == "" {
			t.Errorf("%s: status %d, error %q", name, resp.StatusCode, e.Error)
		}
	}
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result", "/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestSSEOrdering checks the full event stream of a completed job:
// sequence numbers dense from 1, queued → started → cell… → done.
func TestSSEOrdering(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	sum := submitted(t, ts, tinySpec())

	resp, err := http.Get(ts.URL + "/jobs/" + sum.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		events = append(events, e)
		if e.Type == "done" || e.Type == "failed" || e.Type == "cancelled" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) < 4 {
		t.Fatalf("stream had %d events, want at least queued/started/cell/done: %+v", len(events), events)
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Errorf("event %d has seq %d (gaps or reordering)", i, e.Seq)
		}
	}
	if events[0].Type != "queued" || events[1].Type != "started" {
		t.Errorf("stream opens %s,%s; want queued,started", events[0].Type, events[1].Type)
	}
	last := events[len(events)-1]
	if last.Type != "done" {
		t.Errorf("stream ends with %s, want done", last.Type)
	}
	cells := 0
	for _, e := range events {
		if e.Type == "cell" {
			if e.Cell == nil || e.Cell.Design != "Base1K" {
				t.Errorf("cell event without payload: %+v", e)
			}
			cells++
		}
	}
	if cells != 1 {
		t.Errorf("saw %d cell events, want 1", cells)
	}
}

func TestQuota429(t *testing.T) {
	// The fake clock is read from handler goroutines, so guard it.
	var clockMu sync.Mutex
	clock := time.Unix(1000, 0)
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	s, ts := newTestServer(t, Config{Workers: 1, QuotaRPS: 0.5, QuotaBurst: 1, Now: now})
	release := make(chan struct{})
	defer close(release)
	blockUntil(s, release)

	submitted(t, ts, tinySpec()) // burst token spent

	resp := postJob(t, ts, tinySpec())
	var e errorBody
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 without usable Retry-After (%q)", ra)
	}
	decodeBody(t, resp, &e)
	if e.Error == "" {
		t.Error("429 without an error body")
	}

	// A different client has its own bucket.
	body, _ := json.Marshal(tinySpec())
	req, _ := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(body))
	req.Header.Set("X-Client-ID", "other-client")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Errorf("distinct client: status %d, want 202", resp2.StatusCode)
	}

	// After the refill interval the original client is allowed again.
	clockMu.Lock()
	clock = clock.Add(2 * time.Second)
	clockMu.Unlock()
	resp3 := postJob(t, ts, tinySpec())
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusAccepted {
		t.Errorf("post-refill submit: status %d, want 202", resp3.StatusCode)
	}
}

func TestQueueFullSheds503(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	blockUntil(s, release)

	running := submitted(t, ts, tinySpec())
	waitState(t, s, running.ID, StateRunning) // worker busy, queue empty
	queued := submitted(t, ts, tinySpec())    // fills the queue

	resp := postJob(t, ts, tinySpec())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var e errorBody
	decodeBody(t, resp, &e)
	if !strings.Contains(e.Error, "full") {
		t.Errorf("503 body = %q", e.Error)
	}

	// healthz reflects the saturated queue: one running, one queued.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h health
	decodeBody(t, hresp, &h)
	if h.Running != 1 || h.Queued != 1 || h.Jobs != 2 || h.Draining {
		t.Errorf("healthz = %+v", h)
	}

	// Cancelling the queued job frees its slot immediately.
	cresp, err := http.Post(ts.URL+"/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	waitState(t, s, queued.ID, StateCancelled)
	again := postJob(t, ts, tinySpec())
	again.Body.Close()
	if again.StatusCode != http.StatusAccepted {
		t.Errorf("submit after cancel: status %d, want 202", again.StatusCode)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	defer close(release)
	blockUntil(s, release)

	sum := submitted(t, ts, tinySpec())
	waitState(t, s, sum.ID, StateRunning)

	resp, err := http.Post(ts.URL+"/jobs/"+sum.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, s, sum.ID, StateCancelled)

	// Terminal event is "cancelled"; result stays unavailable (409).
	j, _ := s.Job(sum.ID)
	evs, terminal := j.eventsSince(0, func() bool { return false })
	if !terminal || evs[len(evs)-1].Type != "cancelled" {
		t.Errorf("events = %+v, terminal=%v", evs, terminal)
	}
	rresp, err := http.Get(ts.URL + "/jobs/" + sum.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Errorf("result of cancelled job: status %d, want 409", rresp.StatusCode)
	}

	// Cancelling again is a harmless no-op.
	resp, err = http.Post(ts.URL+"/jobs/"+sum.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("re-cancel: status %d", resp.StatusCode)
	}
}

// TestCancelMidSimulation cancels a real running simulation (huge
// instruction target) and expects the epoch engine to stop early.
func TestCancelMidSimulation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	spec := tinySpec()
	spec.MeasureInstr = 2_000_000_000 // hours if not cancelled
	sum := submitted(t, ts, spec)
	waitState(t, s, sum.ID, StateRunning)

	resp, err := http.Post(ts.URL+"/jobs/"+sum.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, s, sum.ID, StateCancelled)
}

func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	blockUntil(s, release)

	a := submitted(t, ts, tinySpec())
	b := submitted(t, ts, tinySpec())
	waitState(t, s, a.ID, StateRunning)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Draining rejects new submissions with 503…
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := postJob(t, ts, tinySpec())
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions still accepted while draining (status %d)", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// …but already-accepted jobs run to completion.
	select {
	case err := <-drained:
		t.Fatalf("drain returned before jobs finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain never returned")
	}
	waitState(t, s, a.ID, StateDone)
	waitState(t, s, b.ID, StateDone)
}

func TestDrainTimeout(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	defer close(release)
	blockUntil(s, release)
	if _, err := s.Submit(tinySpec()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain of a stuck job returned nil under an expired context")
	}
}

// TestServerMatchesDirectRun is the serving determinism contract: the
// golden design point submitted as a JobSpec over HTTP returns stats
// byte-identical to the same Config run directly through the library,
// and both match the pinned golden file.
func TestServerMatchesDirectRun(t *testing.T) {
	// The spec form of golden_test.go's goldenWorkload + Confluence cell.
	seed := uint64(0x901d)
	spec := &confluence.JobSpec{
		Workload: "OLTP-DB2",
		Profile:  &confluence.ProfileTweak{Functions: 520, RequestTypes: 6, Concurrency: 6, Seed: &seed},
		Design:   "Confluence",
		Cores:    2, WarmupInstr: 30_000, MeasureInstr: 60_000,
	}

	s, ts := newTestServer(t, Config{Workers: 1})
	sum := submitted(t, ts, spec)
	waitState(t, s, sum.ID, StateDone)
	resp, err := http.Get(ts.URL + "/jobs/" + sum.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw := struct {
		Rows []CellResult `json:"rows"`
	}{}
	decodeBody(t, resp, &raw)
	if len(raw.Rows) != 1 {
		t.Fatalf("result rows = %d", len(raw.Rows))
	}
	served := raw.Rows[0]

	// The same cell, run directly — workload built by hand, not via the
	// spec, so the comparison covers the whole name→profile→build path.
	p := synth.OLTPDB2()
	p.Functions = 520
	p.RequestTypes = 6
	p.Concurrency = 6
	p.Seed = seed
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := confluence.Run(confluence.Config{
		Workload: w, Design: confluence.Confluence, Cores: 2,
		WarmupInstr: 30_000, MeasureInstr: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantJSON := mustJSON(t, direct.Stats)
	gotJSON := mustJSON(t, served.Stats)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("served stats differ from direct run:\nserver: %s\ndirect: %s", gotJSON, wantJSON)
	}
	if served.OverheadMM2 != direct.OverheadMM2 || served.RelativeArea != direct.RelativeArea {
		t.Errorf("area: served (%v, %v) vs direct (%v, %v)",
			served.OverheadMM2, served.RelativeArea, direct.OverheadMM2, direct.RelativeArea)
	}
	if len(served.PerCore) != len(direct.PerCore) {
		t.Fatalf("per-core stats: %d vs %d", len(served.PerCore), len(direct.PerCore))
	}
	for i := range served.PerCore {
		if !bytes.Equal(mustJSON(t, served.PerCore[i]), mustJSON(t, direct.PerCore[i])) {
			t.Errorf("core %d stats differ between server and direct run", i)
		}
	}

	// And both agree with the committed golden file.
	var golden map[string]struct {
		IPC     float64 `json:"ipc"`
		L1IMPKI float64 `json:"l1i_mpki"`
		BTBMPKI float64 `json:"btb_mpki"`
	}
	data, err := os.ReadFile("../../testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	pin, ok := golden["Confluence"]
	if !ok {
		t.Fatal("golden file lacks the Confluence design")
	}
	checkClose(t, "IPC", served.Stats.IPC(), pin.IPC)
	checkClose(t, "L1IMPKI", served.Stats.L1IMPKI(), pin.L1IMPKI)
	checkClose(t, "BTBMPKI", served.Stats.BTBMPKI(), pin.BTBMPKI)
}

func mustJSON(t *testing.T, s *frontend.Stats) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// checkClose applies the golden file's 1e-9 relative tolerance.
func checkClose(t *testing.T, what string, got, want float64) {
	t.Helper()
	if diff := math.Abs(got - want); diff > 1e-9*math.Max(math.Abs(want), 1) {
		t.Errorf("%s = %.12g, golden pins %.12g", what, got, want)
	}
}

// TestExecuteSpecMixStudy exercises the mixstudy path end to end at a
// tiny scale, checking canonical row order and progress delivery.
func TestExecuteSpecMixStudy(t *testing.T) {
	spec := &confluence.JobSpec{
		Kind:  confluence.KindMixStudy,
		Mix:   []string{"DSS-Qrys", "KeyValue"},
		Cores: 2, NoWarmup: true, MeasureInstr: 20_000,
		Designs: []string{"Confluence"},
	}
	var events []experiments.ProgressEvent
	res, err := ExecuteSpec(context.Background(), spec, func(e experiments.ProgressEvent) {
		events = append(events, e)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != confluence.KindMixStudy || len(res.MixRows) == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.rowCount() != len(res.MixRows) {
		t.Errorf("rowCount %d != %d mix rows", res.rowCount(), len(res.MixRows))
	}
	if len(events) == 0 {
		t.Error("mixstudy produced no progress events")
	}
}

// TestQueuePriorityOrder checks that queued jobs start highest-priority
// first, FIFO within a priority.
func TestQueuePriorityOrder(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []int // submission indexes, in start order
	s.execute = func(ctx context.Context, spec *confluence.JobSpec, emit func(experiments.ProgressEvent)) (*Result, error) {
		if spec.Workload == "OLTP-Oracle" { // the gate job holding the worker
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Result{Kind: spec.NormKind()}, nil
		}
		mu.Lock()
		order = append(order, int(spec.MeasureInstr)) // index smuggled in MeasureInstr
		mu.Unlock()
		return &Result{Kind: spec.NormKind()}, nil
	}

	gateSpec := tinySpec()
	gateSpec.Workload = "OLTP-Oracle"
	g, err := s.Submit(gateSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, g.ID, StateRunning) // worker busy; everything below queues

	var ids []string
	for i, p := range []int{0, 5, 5, 1} {
		spec := tinySpec()
		spec.Priority = p
		spec.MeasureInstr = uint64(i)
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	close(gate)
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []int{1, 2, 3, 0} // priority 5 (FIFO among equals), then 1, then 0
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("start order %v, want %v", order, want)
	}
}
