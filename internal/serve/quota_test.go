package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a hand-advanced quota clock for single-goroutine tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func newFakeTable(rps float64, burst int) (*quotaTable, *fakeClock) {
	c := newFakeClock()
	return newQuotaTable(rps, burst, c.now), c
}

// TestQuotaPrunesIdlePartialBuckets is the regression test for the prune
// leak: a bucket drained below full and then abandoned never updates its
// stored token count again, so the old prune condition (stored tokens >=
// burst) could never fire for it and the table grew by one entry per
// abandoned client forever. Pruning must judge fullness on clock-computed
// tokens.
func TestQuotaPrunesIdlePartialBuckets(t *testing.T) {
	q, clock := newFakeTable(1, 2)

	// The client drains one token, leaving a stored count of burst-1, and
	// never returns.
	if !q.allow("abandoned") {
		t.Fatal("first submission denied")
	}

	// Long after the bucket has refilled on the wall clock, other clients'
	// submissions must sweep it out.
	clock.advance(10 * time.Second)
	q.allow("someone-else")
	q.mu.Lock()
	_, stillThere := q.buckets["abandoned"]
	q.mu.Unlock()
	if stillThere {
		t.Error("idle partially-drained bucket survived pruning")
	}
}

// TestQuotaTableBoundedUnderChurn hammers the table with a stream of
// distinct client keys — each submitting once and vanishing — and pins
// the table size to the refill window, not the key count.
func TestQuotaTableBoundedUnderChurn(t *testing.T) {
	q, clock := newFakeTable(1, 2)
	const churn = 1000
	for i := 0; i < churn; i++ {
		clock.advance(1100 * time.Millisecond)
		if !q.allow(fmt.Sprintf("client-%d", i)) {
			t.Fatalf("fresh client %d denied", i)
		}
	}
	q.mu.Lock()
	size := len(q.buckets)
	q.mu.Unlock()
	// At 1 rps, burst 2, each bucket is full again 1s after its single
	// submission; with 1.1s between submissions and 1s prune throttling,
	// only the last couple of clients can still be inside their window.
	if size > 4 {
		t.Errorf("table holds %d buckets after %d churned clients, want <= 4", size, churn)
	}
}

// TestQuotaPruneInvisibleToClients pins the prune's semantic no-op
// contract: a pruned client re-appearing gets exactly the full bucket it
// would have refilled to anyway.
func TestQuotaPruneInvisibleToClients(t *testing.T) {
	q, clock := newFakeTable(1, 2)
	if !q.allow("a") || !q.allow("a") {
		t.Fatal("burst submissions denied")
	}
	if q.allow("a") {
		t.Fatal("over-burst submission allowed")
	}
	// Refill fully; another client's traffic prunes "a".
	clock.advance(5 * time.Second)
	q.allow("b")
	// "a" returns: full burst available, exactly as if never pruned.
	if !q.allow("a") || !q.allow("a") {
		t.Error("pruned client lost refilled tokens")
	}
	if q.allow("a") {
		t.Error("pruned client gained extra tokens")
	}
}

// TestQuotaPruneThrottled: sweeps run at most once per second, so a burst
// of submissions inside one second pays for one scan.
func TestQuotaPruneThrottled(t *testing.T) {
	q, clock := newFakeTable(1, 1)
	q.allow("a")
	clock.advance(5 * time.Second) // "a" fully refilled, prunable
	q.allow("b")                   // sweeps (removes "a"), stamps lastPrune
	clock.advance(100 * time.Millisecond)
	q.allow("c")
	clock.advance(5 * time.Second) // "b" and "c" now refilled...
	clock.advance(0)
	q.mu.Lock()
	size := len(q.buckets)
	q.mu.Unlock()
	// ...but no submission has arrived since, so they are still resident:
	// pruning happens on traffic, not on a timer.
	if size != 2 {
		t.Errorf("table holds %d buckets, want 2 (b and c resident until next sweep)", size)
	}
	q.allow("d")
	q.mu.Lock()
	size = len(q.buckets)
	q.mu.Unlock()
	if size != 1 {
		t.Errorf("table holds %d buckets after sweeping traffic, want 1 (just d)", size)
	}
}

// TestRetryAfterUnknownKey pins the audited edge: a key with no bucket
// (never submitted, or pruned) gets the 1-second floor, not a panic or a
// zero.
func TestRetryAfterUnknownKey(t *testing.T) {
	q, _ := newFakeTable(0.5, 1)
	if got := q.retryAfter("never-seen"); got != 1 {
		t.Errorf("retryAfter(unknown) = %d, want 1", got)
	}
	var nilTable *quotaTable
	if got := nilTable.retryAfter("x"); got != 1 {
		t.Errorf("nil table retryAfter = %d, want 1", got)
	}
}

// TestRetryAfterReflectsDeficit: a drained bucket's Retry-After covers the
// time to its next whole token.
func TestRetryAfterReflectsDeficit(t *testing.T) {
	q, _ := newFakeTable(0.5, 1) // 1 token per 2 seconds
	if !q.allow("a") {
		t.Fatal("first submission denied")
	}
	if q.allow("a") {
		t.Fatal("drained bucket allowed")
	}
	if got := q.retryAfter("a"); got != 2 {
		t.Errorf("retryAfter(drained at 0.5 rps) = %d, want 2", got)
	}
}
