package serve

import (
	"encoding/json"

	"confluence"
	"confluence/internal/experiments"
	"confluence/internal/store"
)

// jobKeyMaterial is the canonical serialization a job's store key is
// hashed from: the result-determining JobSpec fields, normalized, plus the
// code version. Scheduling knobs are absent — Priority orders the queue
// and Parallelism/IntraParallelism split goroutines, none of which can
// change results (EpochBlocks can, and stays).
type jobKeyMaterial struct {
	Version string             `json:"version"`
	Spec    confluence.JobSpec `json:"spec"`
}

// jobStoreKey derives the durable store key for a validated spec. The
// second return is false for specs the job level does not cache: trace
// replays (their identity includes file contents the spec does not carry;
// the per-cell store still caches those runs by capture listing).
func jobStoreKey(spec *confluence.JobSpec) (string, bool) {
	if spec.TraceDir != "" {
		return "", false
	}
	norm := *spec
	norm.Kind = spec.NormKind()
	norm.Priority = 0
	norm.Parallelism = 0
	norm.IntraParallelism = 0
	// Resolve the zero-means-default sentinels so an explicit default and
	// an omitted field address the same entry (Config semantics: 16 cores,
	// 1.5M instructions per phase, NoWarmup forcing a zero-length warmup).
	if norm.Cores <= 0 {
		norm.Cores = 16
	}
	switch {
	case norm.NoWarmup:
		norm.WarmupInstr = 0
	case norm.WarmupInstr == 0:
		norm.WarmupInstr = 1_500_000
	}
	if norm.MeasureInstr == 0 {
		norm.MeasureInstr = 1_500_000
	}
	material, err := json.Marshal(jobKeyMaterial{Version: experiments.ResultVersion, Spec: norm})
	if err != nil {
		return "", false
	}
	return store.Key(material), true
}

// encodeJobResult serializes a finished job's result for Store.Put.
func encodeJobResult(res *Result) ([]byte, error) { return json.Marshal(res) }

// decodeJobResult parses a stored payload; malformed or empty payloads
// report ok = false (a store miss, the job simply runs).
func decodeJobResult(payload []byte) (*Result, bool) {
	var res Result
	if err := json.Unmarshal(payload, &res); err != nil || res.Kind == "" {
		return nil, false
	}
	return &res, true
}

// completeFromStore replays a stored result onto a freshly-minted job: the
// same event sequence a live run appends (started, one cell per completed
// simulation for point/sweep jobs, done), so SSE consumers and pollers see
// a store-served job exactly as they would a fast live one.
func (j *Job) completeFromStore(res *Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(Event{Type: "started"})
	if res.Kind != confluence.KindMixStudy {
		for i := range res.Cells {
			c := &res.Cells[i]
			cell := experiments.ProgressEvent{Mix: c.Mix, Design: c.Design}
			if c.Stats != nil {
				cell.IPC = c.Stats.IPC()
				cell.BTBMPKI = c.Stats.BTBMPKI()
				cell.L1IMPKI = c.Stats.L1IMPKI()
			}
			j.appendEventLocked(Event{Type: "cell", Cell: &cell})
		}
	}
	j.state = StateDone
	j.result = res
	j.appendEventLocked(Event{Type: "done"})
}
