package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestListOffsetPastTotalEchoesRequest is the regression test for the
// pagination cursor bug: an offset past the end used to be silently
// snapped to total and reported back, making an overshot page
// indistinguishable from the legitimate final page. The response must
// echo the requested offset with an empty row set.
func TestListOffsetPastTotalEchoesRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	blockUntil(s, release)
	defer close(release)
	for i := 0; i < 2; i++ {
		submitted(t, ts, tinySpec())
	}

	resp, err := http.Get(ts.URL + "/jobs?offset=100&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	var page listPage
	decodeBody(t, resp, &page)
	if page.Offset != 100 {
		t.Errorf("Offset = %d, want the requested 100", page.Offset)
	}
	if page.Total != 2 || len(page.Jobs) != 0 {
		t.Errorf("past-the-end page: total=%d jobs=%d, want 2 and none", page.Total, len(page.Jobs))
	}

	// A negative offset still clamps to zero (it is not a real cursor).
	resp, err = http.Get(ts.URL + "/jobs?offset=-5")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &page)
	if page.Offset != 0 || len(page.Jobs) != 2 {
		t.Errorf("negative offset: offset=%d jobs=%d, want 0 and 2", page.Offset, len(page.Jobs))
	}
}

// TestResultOffsetPastTotalEchoesRequest: same contract on the result
// pages.
func TestResultOffsetPastTotalEchoesRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	sum := submitted(t, ts, tinySpec())
	waitState(t, s, sum.ID, StateDone)

	resp, err := http.Get(ts.URL + "/jobs/" + sum.ID + "/result?offset=7&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Total  int               `json:"total"`
		Offset int               `json:"offset"`
		Rows   []json.RawMessage `json:"rows"`
	}
	decodeBody(t, resp, &page)
	if page.Offset != 7 {
		t.Errorf("Offset = %d, want the requested 7", page.Offset)
	}
	if page.Total != 1 || len(page.Rows) != 0 {
		t.Errorf("past-the-end result page: total=%d rows=%d, want 1 and none", page.Total, len(page.Rows))
	}
}

// TestEventsSinceCursorEdges pins eventsSince against mid-stream,
// at-the-end, past-the-end, and negative cursors: dense sequence numbers,
// no panics, no duplicated or skipped events.
func TestEventsSinceCursorEdges(t *testing.T) {
	j := newJob("j1", 1, tinySpec()) // appends the "queued" event
	j.emit(Event{Type: "started"})
	j.emit(Event{Type: "cell"})

	evs, terminal := j.eventsSince(1, func() bool { return true })
	if terminal || len(evs) != 2 || evs[0].Seq != 2 || evs[1].Seq != 3 {
		t.Fatalf("mid-stream cursor: terminal=%v evs=%+v", terminal, evs)
	}

	j.mu.Lock()
	j.state = StateDone
	j.appendEventLocked(Event{Type: "done"})
	j.mu.Unlock()

	evs, terminal = j.eventsSince(3, func() bool { return false })
	if !terminal || len(evs) != 1 || evs[0].Seq != 4 {
		t.Fatalf("at-the-end cursor: terminal=%v evs=%+v", terminal, evs)
	}

	// Past the end: a buggy or malicious caller claims more events than
	// exist; the job is terminal so the wait exits — this used to compute
	// a negative slice length and panic.
	evs, terminal = j.eventsSince(10, func() bool { return false })
	if !terminal || len(evs) != 0 {
		t.Fatalf("past-the-end cursor: terminal=%v evs=%+v", terminal, evs)
	}

	evs, terminal = j.eventsSince(-3, func() bool { return false })
	if !terminal || len(evs) != 4 || evs[0].Seq != 1 {
		t.Fatalf("negative cursor: terminal=%v evs=%+v", terminal, evs)
	}
}
