package serve

// BenchmarkServeLatency measures end-to-end job latency through the HTTP
// serving layer — submit over the wire, poll to completion — under 1, 8,
// and 64 concurrent clients, reporting p50/p99 per-job latency in
// milliseconds as custom metrics. The simulated cell is deliberately tiny
// so the numbers isolate serving overhead (queueing, JSON, polling), not
// simulator throughput.
//
// Record a snapshot with the Makefile's bench-serve target (commits as
// BENCH_pr6_serve.json via cmd/benchjson).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

func BenchmarkServeLatency(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServeLatency(b, clients)
		})
	}
}

func benchServeLatency(b *testing.B, clients int) {
	s := New(Config{Workers: 2, QueueDepth: 2*clients + 64})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := tinySpec()
	spec.MeasureInstr = 5_000
	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}

	// oneJob is a full client interaction: submit, poll until terminal.
	oneJob := func() (time.Duration, error) {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		var sum Summary
		err = json.NewDecoder(resp.Body).Decode(&sum)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusAccepted {
			return 0, fmt.Errorf("submit: status %d", resp.StatusCode)
		}
		for {
			resp, err := http.Get(ts.URL + "/jobs/" + sum.ID)
			if err != nil {
				return 0, err
			}
			err = json.NewDecoder(resp.Body).Decode(&sum)
			resp.Body.Close()
			if err != nil {
				return 0, err
			}
			if sum.State.terminal() {
				if sum.State != StateDone {
					return 0, fmt.Errorf("job ended %s", sum.State)
				}
				return time.Since(start), nil
			}
			time.Sleep(time.Millisecond)
		}
	}

	var (
		mu    sync.Mutex
		lats  []float64 // milliseconds
		first error
	)
	jobs := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				lat, err := oneJob()
				mu.Lock()
				if err != nil && first == nil {
					first = err
				}
				lats = append(lats, float64(lat)/float64(time.Millisecond))
				mu.Unlock()
			}
		}()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs <- struct{}{}
	}
	close(jobs)
	wg.Wait()
	b.StopTimer()

	if first != nil {
		b.Fatal(first)
	}
	sort.Float64s(lats)
	quantile := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	b.ReportMetric(quantile(0.50), "p50-ms")
	b.ReportMetric(quantile(0.99), "p99-ms")
	b.ReportMetric(float64(len(lats)), "jobs")
}
