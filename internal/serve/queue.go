package serve

import "container/heap"

// jobQueue is a bounded priority queue of submitted-but-not-started jobs:
// higher Priority first, FIFO (submission sequence) within a priority.
// The bound is enforced by the server at submit time (queue-full is the
// 503 load-shedding signal); cancellation removes jobs eagerly so a
// cancelled queued job frees its slot immediately.
type jobQueue struct {
	jobs []*Job
}

var _ heap.Interface = (*jobQueue)(nil)

func (q *jobQueue) Len() int { return len(q.jobs) }

func (q *jobQueue) Less(i, k int) bool {
	a, b := q.jobs[i], q.jobs[k]
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

func (q *jobQueue) Swap(i, k int) {
	q.jobs[i], q.jobs[k] = q.jobs[k], q.jobs[i]
	q.jobs[i].heapIndex = i
	q.jobs[k].heapIndex = k
}

func (q *jobQueue) Push(x any) {
	j := x.(*Job)
	j.heapIndex = len(q.jobs)
	q.jobs = append(q.jobs, j)
}

func (q *jobQueue) Pop() any {
	n := len(q.jobs)
	j := q.jobs[n-1]
	q.jobs[n-1] = nil
	q.jobs = q.jobs[:n-1]
	j.heapIndex = -1
	return j
}

// push enqueues a job.
func (q *jobQueue) push(j *Job) { heap.Push(q, j) }

// pop removes and returns the highest-priority job, or nil when empty.
func (q *jobQueue) pop() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return heap.Pop(q).(*Job)
}

// remove takes a specific job out of the queue (cancellation); it is a
// no-op for jobs not currently queued.
func (q *jobQueue) remove(j *Job) {
	if j.heapIndex >= 0 {
		heap.Remove(q, j.heapIndex)
	}
}
