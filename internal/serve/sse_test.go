package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"confluence"
	"confluence/internal/experiments"
)

// steppedExecute installs an execute hook that emits `cells` progress
// events, each gated on a receive from step, so tests control exactly
// when the event stream advances.
func steppedExecute(s *Server, cells int) chan<- struct{} {
	step := make(chan struct{})
	s.execute = func(ctx context.Context, spec *confluence.JobSpec, emit func(experiments.ProgressEvent)) (*Result, error) {
		for i := 0; i < cells; i++ {
			select {
			case <-step:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			emit(experiments.ProgressEvent{Mix: fmt.Sprintf("m%d", i), Design: "Base1K"})
		}
		return &Result{Kind: spec.NormKind()}, nil
	}
	return step
}

// readSSE consumes the stream until upToSeq events have been seen (0 =
// until the stream ends), returning the decoded events. It also checks
// every data line is preceded by a matching SSE id line.
func readSSE(t *testing.T, resp *http.Response, upToSeq int) []Event {
	t.Helper()
	defer resp.Body.Close()
	var events []Event
	lastID := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			lastID = strings.TrimPrefix(line, "id: ")
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		if want := fmt.Sprint(e.Seq); lastID != want {
			t.Fatalf("event seq %d carried SSE id %q", e.Seq, lastID)
		}
		events = append(events, e)
		if upToSeq > 0 && e.Seq >= upToSeq {
			return events
		}
		if e.Type == "done" || e.Type == "failed" || e.Type == "cancelled" {
			return events
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestSSEReconnectResume drops an SSE client mid-stream and reconnects
// with ?after=<last seen seq>: the resumed stream must continue exactly
// one past the cursor — no gap, no duplicate — through the terminal
// event.
func TestSSEReconnectResume(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	step := steppedExecute(s, 3)
	sum := submitted(t, ts, tinySpec())

	// First connection: queued, started, then one cell (seq 3), then drop.
	resp, err := http.Get(ts.URL + "/jobs/" + sum.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	step <- struct{}{}
	first := readSSE(t, resp, 3)
	if len(first) != 3 || first[2].Type != "cell" || first[2].Seq != 3 {
		t.Fatalf("first connection saw %+v, want queued/started/cell", first)
	}

	// The job finishes while no client is connected.
	step <- struct{}{}
	step <- struct{}{}
	waitState(t, s, sum.ID, StateDone)

	// Resume from the last seq the dropped client saw.
	resp, err = http.Get(ts.URL + "/jobs/" + sum.ID + "/events?after=3")
	if err != nil {
		t.Fatal(err)
	}
	rest := readSSE(t, resp, 0)
	if len(rest) != 3 {
		t.Fatalf("resumed stream had %d events (%+v), want cell/cell/done", len(rest), rest)
	}
	for i, e := range rest {
		if e.Seq != 4+i {
			t.Fatalf("resumed event %d has seq %d, want %d (gap or duplicate across reconnect)", i, e.Seq, 4+i)
		}
	}
	if rest[0].Type != "cell" || rest[1].Type != "cell" || rest[2].Type != "done" {
		t.Fatalf("resumed stream types: %+v", rest)
	}
	if rest[0].Cell == nil || rest[0].Cell.Mix != "m1" {
		t.Fatalf("resumed first cell = %+v, want m1 (m0 was delivered pre-drop)", rest[0].Cell)
	}
}

// TestSSEReconnectTerminalJob reconnects to an already-finished job: the
// events past the cursor replay and the stream closes; a zero cursor
// replays the whole history.
func TestSSEReconnectTerminalJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	step := steppedExecute(s, 1)
	sum := submitted(t, ts, tinySpec())
	step <- struct{}{}
	waitState(t, s, sum.ID, StateDone)
	// History: queued(1), started(2), cell(3), done(4).

	// Last-Event-ID is honored like ?after.
	req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+sum.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	evs := readSSE(t, resp, 0)
	if len(evs) != 2 || evs[0].Seq != 3 || evs[1].Type != "done" {
		t.Fatalf("terminal reconnect from seq 2: %+v, want cell(3), done(4)", evs)
	}

	// Full replay from scratch.
	resp, err = http.Get(ts.URL + "/jobs/" + sum.ID + "/events?after=0")
	if err != nil {
		t.Fatal(err)
	}
	evs = readSSE(t, resp, 0)
	if len(evs) != 4 || evs[0].Type != "queued" || evs[3].Type != "done" {
		t.Fatalf("full replay: %+v", evs)
	}
	for i, e := range evs {
		if e.Seq != i+1 {
			t.Fatalf("replay seq %d at index %d", e.Seq, i)
		}
	}

	// A cursor past the end of a terminal job yields an empty, closed
	// stream rather than a hang.
	resp, err = http.Get(ts.URL + "/jobs/" + sum.ID + "/events?after=99")
	if err != nil {
		t.Fatal(err)
	}
	if evs = readSSE(t, resp, 0); len(evs) != 0 {
		t.Fatalf("past-the-end cursor replayed %+v", evs)
	}
}

// TestSSEBadCursorRejected: a malformed ?after is a 400, not a silent
// restart from zero (a client that thinks it resumed but got a replay
// would double-count cells).
func TestSSEBadCursorRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	blockUntil(s, release)
	defer close(release)
	sum := submitted(t, ts, tinySpec())
	for _, q := range []string{"?after=-1", "?after=x", "?after=1.5"} {
		resp, err := http.Get(ts.URL + "/jobs/" + sum.ID + "/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET events%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}
