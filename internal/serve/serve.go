// Package serve is the simulation-as-a-service layer: a job daemon in
// front of the confluence engine. Clients submit JobSpecs (a single
// design point, a sweep, or a consolidation study) to a bounded priority
// queue; a fixed pool of workers executes them through the same
// context-first library entry points a direct caller would use, so a job
// run through the server is bit-identical to the same Run invoked
// directly. Progress streams over SSE as the serialized experiments
// progress events, results page through a stable canonical row order,
// and the service degrades predictably under load: queue-full submissions
// shed with 503, per-client token-bucket quotas reject with 429, and
// shutdown drains gracefully.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"confluence"
	"confluence/internal/experiments"
	"confluence/internal/fleet"
	"confluence/internal/store"
)

// Config tunes a Server. The zero value is serviceable: a 64-deep queue,
// 2 workers, quotas disabled.
type Config struct {
	// QueueDepth bounds submitted-but-not-started jobs; a full queue
	// sheds new submissions with 503. Zero means 64.
	QueueDepth int
	// Workers is the number of concurrently executing jobs. Zero means 2.
	Workers int
	// QuotaRPS/QuotaBurst set the per-client token-bucket submission
	// quota (sustained submissions per second, burst depth). QuotaRPS <= 0
	// disables quotas; QuotaBurst < 1 means 1.
	QuotaRPS   float64
	QuotaBurst int
	// MaxBodyBytes bounds a submitted spec's size. Zero means 1 MiB.
	MaxBodyBytes int64
	// StoreDir, when non-empty, backs finished job results with the
	// durable content-addressed store rooted there: a submitted spec whose
	// normalized form is already stored completes instantly with the
	// persisted result (replaying the full event sequence), finished jobs
	// persist their results for future submissions and future daemon
	// processes, and point/sweep cells additionally share the per-cell
	// store with direct library runs on the same directory. Empty keeps
	// results in memory only — the pre-store behavior exactly.
	StoreDir string
	// FleetDir, when non-empty (StoreDir required too), routes point and
	// sweep jobs through a lease-based fleet coordinator rooted there:
	// each job publishes its grid under FleetDir/job-<n> and any
	// `confluence-sim -fleet-worker` processes pointed at that directory
	// work cells alongside the daemon. With no workers attached the
	// coordinator simply executes inline, so FleetDir is safe to set
	// unconditionally. Results are byte-identical either way — the final
	// output is always served from the store in canonical order.
	FleetDir string
	// Now overrides the quota clock (tests).
	Now func() time.Time
}

// Server is the job daemon: queue, workers, and HTTP API. Create with
// New, serve Handler(), stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg    Config
	quotas *quotaTable
	store  *store.Store // nil when Config.StoreDir is empty

	runCtx    context.Context // cancels running jobs on Close
	cancelRun context.CancelFunc
	wg        sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signals workers: queue non-empty or closing
	idle     *sync.Cond // signals drain waiters: queue empty and no job running
	queue    jobQueue
	jobs     map[string]*Job
	order    []*Job // submission order (the pagination order of /jobs)
	nextSeq  int64
	running  int
	draining bool
	closed   bool

	// execute runs one job spec; swapped out by tests that need
	// controllable job durations.
	execute func(ctx context.Context, spec *confluence.JobSpec, emit func(experiments.ProgressEvent)) (*Result, error)
}

// New builds and starts a server (its worker pool runs until Close).
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{
		cfg:     cfg,
		quotas:  newQuotaTable(cfg.QuotaRPS, cfg.QuotaBurst, cfg.Now),
		jobs:    make(map[string]*Job),
		execute: ExecuteSpec,
	}
	if cfg.StoreDir != "" {
		s.store = store.Open(cfg.StoreDir)
		storeDir := cfg.StoreDir
		s.execute = func(ctx context.Context, spec *confluence.JobSpec, emit func(experiments.ProgressEvent)) (*Result, error) {
			return ExecuteSpecStore(ctx, spec, storeDir, emit)
		}
		if cfg.FleetDir != "" {
			// Each job coordinates in its own subdirectory: concurrent jobs
			// must not share a manifest. The sequence number only needs to be
			// unique within this process; a recycled directory from a dead
			// daemon is harmless (the manifest is rewritten, stale leases
			// expire, completion is judged by the store).
			fleetDir := cfg.FleetDir
			var fleetSeq atomic.Int64
			s.execute = func(ctx context.Context, spec *confluence.JobSpec, emit func(experiments.ProgressEvent)) (*Result, error) {
				o := fleet.Options{Dir: filepath.Join(fleetDir, fmt.Sprintf("job-%d", fleetSeq.Add(1)))}
				res, _, err := ExecuteSpecFleet(ctx, spec, storeDir, o, emit)
				return res, err
			}
		}
	}
	s.cond = sync.NewCond(&s.mu)
	s.idle = sync.NewCond(&s.mu)
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker pops queued jobs and executes them until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed && s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		j := s.queue.pop()
		s.running++
		s.mu.Unlock()

		s.runJob(j)

		s.mu.Lock()
		s.running--
		if s.running == 0 && s.queue.Len() == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}
}

// runJob executes one job through the shared executor, translating the
// outcome into the job's terminal state and event.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.runCtx)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued, popped anyway
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.appendEventLocked(Event{Type: "started"})
	j.mu.Unlock()

	res, err := s.execute(ctx, j.Spec, func(e experiments.ProgressEvent) {
		cell := e
		j.emit(Event{Type: "cell", Cell: &cell})
	})

	if err == nil && s.store != nil && j.storeKey != "" {
		if payload, encErr := encodeJobResult(res); encErr == nil {
			s.store.Put(j.storeKey, payload) // best-effort persistence
		}
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.appendEventLocked(Event{Type: "done"})
	case isCancellation(err):
		j.state = StateCancelled
		j.appendEventLocked(Event{Type: "cancelled"})
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.appendEventLocked(Event{Type: "failed", Error: j.errMsg})
	}
}

// Submit queues a validated spec, returning the job or ErrQueueFull /
// ErrDraining. It is the programmatic form of POST /jobs. With a result
// store configured, a spec whose normalized form is already stored
// returns a job that is instantly done — it never occupies a queue slot
// or a worker, so stored re-submissions cannot shed live work.
func (s *Server) Submit(spec *confluence.JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var storeKey string
	var stored *Result
	if s.store != nil {
		if key, ok := jobStoreKey(spec); ok {
			storeKey = key
			// The store read happens outside s.mu: it is filesystem I/O and
			// must not serialize against the queue.
			if payload, hit := s.store.Get(key); hit {
				stored, _ = decodeJobResult(payload)
			}
		}
	}
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if stored == nil && s.queue.Len() >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.nextSeq++
	j := newJob(fmt.Sprintf("j%06d", s.nextSeq), s.nextSeq, spec)
	j.storeKey = storeKey
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	if stored == nil {
		s.queue.push(j)
		s.cond.Signal()
	}
	s.mu.Unlock()
	if stored != nil {
		j.completeFromStore(stored)
	}
	return j, nil
}

// Cancel cancels a job: a queued job leaves the queue immediately
// (freeing its slot), a running job's context is cancelled and the epoch
// engine stops within a few epochs. Cancelling a terminal job is a no-op.
// It reports whether the job exists.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.queue.remove(j)
	if s.running == 0 && s.queue.Len() == 0 {
		s.idle.Broadcast()
	}
	s.mu.Unlock()

	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.appendEventLocked(Event{Type: "cancelled"})
	case StateRunning:
		if j.cancel != nil {
			j.cancel() // runJob emits the terminal event
		}
	}
	j.mu.Unlock()
	return j, true
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Drain stops accepting new submissions (503) and waits until every
// already-accepted job has finished, or ctx expires — the graceful half
// of shutdown. Call Close afterwards to stop the workers (and cancel
// whatever a timed-out drain left running).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for !(s.running == 0 && s.queue.Len() == 0) && !s.closed {
			s.idle.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Unblock the waiter goroutine; the server stays draining.
		s.mu.Lock()
		s.idle.Broadcast()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Close cancels running jobs, stops the workers, and waits for them to
// exit. Queued jobs that never ran are cancelled.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	var orphans []*Job
	for s.queue.Len() > 0 {
		orphans = append(orphans, s.queue.pop())
	}
	s.cancelRun()
	s.cond.Broadcast()
	s.idle.Broadcast()
	s.mu.Unlock()

	for _, j := range orphans {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCancelled
			j.appendEventLocked(Event{Type: "cancelled"})
		}
		j.mu.Unlock()
	}
	s.wg.Wait()
}

// Sentinel submission failures, mapped to 503 by the HTTP layer.
var (
	ErrQueueFull = fmt.Errorf("serve: job queue is full")
	ErrDraining  = fmt.Errorf("serve: server is draining")
)

// Handler returns the HTTP API:
//
//	POST   /jobs                submit a JobSpec (202; 429 over quota; 503 shedding)
//	GET    /jobs                list jobs, ?offset=&limit= paginated
//	GET    /jobs/{id}           one job's status
//	POST   /jobs/{id}/cancel    cancel (idempotent)
//	GET    /jobs/{id}/events    SSE progress stream (replays from the start)
//	GET    /jobs/{id}/result    finished job's rows, ?offset=&limit= paginated
//	GET    /healthz             queue/worker gauges
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// clientKey identifies the quota bucket a request draws from: the
// X-Client-ID header when present (trusted deployments put an API key
// here), else the remote IP.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	key := clientKey(r)
	if !s.quotas.allow(key) {
		w.Header().Set("Retry-After", strconv.Itoa(s.quotas.retryAfter(key)))
		writeError(w, http.StatusTooManyRequests, "client %s is over its submission quota", key)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", s.cfg.MaxBodyBytes)
		return
	}
	spec, err := confluence.ParseJobSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.Submit(spec)
	switch err {
	case nil:
	case ErrQueueFull, ErrDraining:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.summary(true))
}

// listPage is the GET /jobs payload.
type listPage struct {
	Total  int       `json:"total"`
	Offset int       `json:"offset"`
	Limit  int       `json:"limit"`
	Jobs   []Summary `json:"jobs"`
}

// pageBounds clamps offset/limit query parameters onto [0, total). The
// returned offset is the requested (negative-clamped) offset, not the
// row-range start: a page past the end echoes the offset the client asked
// for with an empty row set, so a paginating client that overshoots sees
// its own cursor — offset snapping silently to total used to make such a
// response indistinguishable from the legitimate final page.
func pageBounds(r *http.Request, total, defLimit, maxLimit int) (lo, hi, offset, limit int) {
	offset, _ = strconv.Atoi(r.URL.Query().Get("offset"))
	limit, _ = strconv.Atoi(r.URL.Query().Get("limit"))
	if limit <= 0 {
		limit = defLimit
	}
	if limit > maxLimit {
		limit = maxLimit
	}
	if offset < 0 {
		offset = 0
	}
	lo = offset
	if lo > total {
		lo = total
	}
	hi = lo + limit
	if hi > total {
		hi = total
	}
	return lo, hi, offset, limit
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	order := make([]*Job, len(s.order))
	copy(order, s.order)
	s.mu.Unlock()

	lo, hi, offset, limit := pageBounds(r, len(order), 50, 500)
	page := listPage{Total: len(order), Offset: offset, Limit: limit, Jobs: make([]Summary, 0, hi-lo)}
	for _, j := range order[lo:hi] {
		page.Jobs = append(page.Jobs, j.summary(false))
	}
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.summary(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.summary(false))
}

// resultPage is the GET /jobs/{id}/result payload; Rows is []CellResult
// for point/sweep jobs, []experiments.MixRow for mixstudy jobs.
type resultPage struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Total  int    `json:"total"`
	Offset int    `json:"offset"`
	Limit  int    `json:"limit"`
	Rows   any    `json:"rows"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	state, res := j.state, j.result
	j.mu.Unlock()
	if res == nil {
		writeError(w, http.StatusConflict, "job is %s, result not available", state)
		return
	}
	lo, hi, offset, limit := pageBounds(r, res.rowCount(), 100, 1000)
	writeJSON(w, http.StatusOK, resultPage{
		ID: j.ID, Kind: res.Kind, Total: res.rowCount(),
		Offset: offset, Limit: limit, Rows: res.rows(lo, hi),
	})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	// Reconnect support: a client that saw events through seq N resumes
	// with ?after=N (or the standard Last-Event-ID header; the query wins
	// when both are present). Seq numbers are dense from 1, so seq N is
	// exactly the first N events — the cursor restarts there and the
	// stream continues gaplessly, including for jobs already terminal
	// (the remaining events replay, then the stream closes as usual).
	cursor := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "after must be a non-negative event seq")
			return
		}
		cursor = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			cursor = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Wake the eventsSince wait when the client goes away.
	ctx := r.Context()
	stopWake := context.AfterFunc(ctx, j.wake)
	defer stopWake()

	enc := json.NewEncoder(w)
	for ctx.Err() == nil {
		evs, terminal := j.eventsSince(cursor, func() bool { return ctx.Err() != nil })
		for _, e := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: ", e.Seq, e.Type)
			enc.Encode(e) // Encode appends the newline SSE needs
			fmt.Fprint(w, "\n")
		}
		cursor += len(evs)
		fl.Flush()
		if terminal {
			return
		}
	}
}

// health is the GET /healthz payload.
type health struct {
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	Jobs     int  `json:"jobs"`
	Draining bool `json:"draining"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := health{Queued: s.queue.Len(), Running: s.running, Jobs: len(s.jobs), Draining: s.draining}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}
