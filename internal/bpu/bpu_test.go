package bpu

import (
	"math/rand/v2"
	"testing"

	"confluence/internal/isa"
)

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := isa.Addr(0x1000)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to learn always-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to relearn not-taken")
	}
}

func TestBimodalHysteresis(t *testing.T) {
	b := NewBimodal(64)
	pc := isa.Addr(0x40)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	b.Update(pc, false) // single anomaly must not flip a saturated counter
	if !b.Predict(pc) {
		t.Error("2-bit counter flipped on one anomaly")
	}
}

func TestGShareLearnsAlternatingPattern(t *testing.T) {
	g := NewGShare(4096, 10)
	pc := isa.Addr(0x2000)
	// Alternating T/N is invisible to bimodal but trivial under history.
	outcome := func(i int) bool { return i%2 == 0 }
	for i := 0; i < 2000; i++ {
		g.Update(pc, outcome(i))
	}
	correct := 0
	for i := 2000; i < 3000; i++ {
		if g.Predict(pc) == outcome(i) {
			correct++
		}
		g.Update(pc, outcome(i))
	}
	if correct < 950 {
		t.Errorf("gshare got %d/1000 on an alternating pattern", correct)
	}
}

func TestHybridBeatsBimodalOnPatterns(t *testing.T) {
	h := NewHybrid(4096)
	pc := isa.Addr(0x3000)
	// Period-3 pattern: T T N ...
	outcome := func(i int) bool { return i%3 != 2 }
	var misses uint64
	for i := 0; i < 6000; i++ {
		_, correct := h.PredictAndUpdate(pc, outcome(i))
		if i >= 3000 && !correct {
			misses++
		}
	}
	if misses > 300 { // bimodal alone would miss ~1000
		t.Errorf("hybrid missed %d/3000 on a period-3 pattern", misses)
	}
}

func TestHybridOnBiasedRandom(t *testing.T) {
	h := NewHybrid(16 << 10)
	rng := rand.New(rand.NewPCG(5, 5))
	var misses, n uint64
	for i := 0; i < 40000; i++ {
		pc := isa.Addr(0x4000 + (i%200)*4)
		taken := rng.Float64() < 0.97
		_, correct := h.PredictAndUpdate(pc, taken)
		if i > 10000 {
			n++
			if !correct {
				misses++
			}
		}
	}
	rate := float64(misses) / float64(n)
	if rate > 0.06 {
		t.Errorf("mispredict rate %.1f%% on 97%%-biased branches", 100*rate)
	}
}

func TestHybridStats(t *testing.T) {
	h := NewHybrid(64)
	h.PredictAndUpdate(0x40, true)
	h.PredictAndUpdate(0x40, true)
	s := h.Stats()
	if s.Lookups != 2 {
		t.Errorf("Lookups = %d", s.Lookups)
	}
	if acc := s.Accuracy(); acc < 0 || acc > 1 {
		t.Errorf("Accuracy = %v", acc)
	}
	h.ResetStats()
	if h.Stats().Lookups != 0 {
		t.Error("ResetStats failed")
	}
	if (DirStats{}).Accuracy() != 1 {
		t.Error("empty stats should report perfect accuracy")
	}
}

func TestRASMatchesCallReturn(t *testing.T) {
	r := NewRAS(8)
	addrs := []isa.Addr{0x100, 0x200, 0x300}
	for _, a := range addrs {
		r.Push(a)
	}
	for i := len(addrs) - 1; i >= 0; i-- {
		got, ok := r.Pop()
		if !ok || got != addrs[i] {
			t.Fatalf("Pop = %#x, %v; want %#x", got, ok, addrs[i])
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS returned a value")
	}
}

func TestRASOverflowWrapsLosingOldest(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 6; i++ { // two more than capacity
		r.Push(isa.Addr(i * 0x10))
	}
	if r.Depth() != 4 {
		t.Errorf("Depth = %d", r.Depth())
	}
	// Pops return the newest four; the two oldest are gone.
	want := []isa.Addr{0x60, 0x50, 0x40, 0x30}
	for _, w := range want {
		got, ok := r.Pop()
		if !ok || got != w {
			t.Fatalf("Pop = %#x, want %#x", got, w)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS returned an overwritten frame")
	}
}

func TestITC(t *testing.T) {
	c := NewITC(256)
	pc := isa.Addr(0x5000)
	if _, ok := c.Predict(pc); ok {
		t.Error("cold ITC predicted")
	}
	c.Update(pc, 0x6000)
	got, ok := c.Predict(pc)
	if !ok || got != 0x6000 {
		t.Errorf("Predict = %#x, %v", got, ok)
	}
	c.Update(pc, 0x7000)
	if got, _ := c.Predict(pc); got != 0x7000 {
		t.Error("ITC did not track the latest target")
	}
}

func TestITCConflicts(t *testing.T) {
	c := NewITC(16)
	a := isa.Addr(0x100)
	b := a + 16*4 // same index, different tag
	c.Update(a, 0x1)
	c.Update(b, 0x2)
	if _, ok := c.Predict(a); ok {
		t.Error("direct-mapped conflict should have evicted the first entry")
	}
	if got, ok := c.Predict(b); !ok || got != 0x2 {
		t.Error("second entry lost")
	}
}

func TestSizePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBimodal(100) },
		func() { NewGShare(0, 4) },
		func() { NewHybrid(-4) },
		func() { NewITC(3) },
		func() { NewRAS(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad size did not panic")
				}
			}()
			f()
		}()
	}
}
