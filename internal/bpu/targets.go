package bpu

import "confluence/internal/isa"

// RAS is the return address stack: a fixed-depth circular stack that wraps
// (overwriting the oldest frame) on overflow, as hardware RASes do.
type RAS struct {
	buf   []isa.Addr
	top   int // index of the current top (valid when depth > 0)
	depth int

	Pushes, Pops, Mispredicts uint64
}

// NewRAS creates a return address stack with the given capacity.
func NewRAS(capacity int) *RAS {
	if capacity <= 0 {
		panic("bpu: RAS capacity must be positive")
	}
	return &RAS{buf: make([]isa.Addr, capacity), top: -1}
}

// Push records a return address (on calls).
func (r *RAS) Push(ret isa.Addr) {
	r.top = (r.top + 1) % len(r.buf)
	r.buf[r.top] = ret
	if r.depth < len(r.buf) {
		r.depth++
	}
	r.Pushes++
}

// Pop predicts the return target; ok is false when the stack is empty.
func (r *RAS) Pop() (isa.Addr, bool) {
	r.Pops++
	if r.depth == 0 {
		return 0, false
	}
	a := r.buf[r.top]
	r.top--
	if r.top < 0 {
		r.top = len(r.buf) - 1
	}
	r.depth--
	return a, true
}

// Depth returns the current stack depth.
func (r *RAS) Depth() int { return r.depth }

// ITC is the indirect target cache: a direct-mapped, tagged table mapping a
// branch PC to its last observed target.
type ITC struct {
	tags    []isa.Addr
	targets []isa.Addr
	valid   []bool
	mask    uint64

	Lookups, Hits, Correct uint64
}

// NewITC creates an indirect target cache with entries (power of two).
func NewITC(entries int) *ITC {
	checkPow2("bpu: ITC", entries)
	return &ITC{
		tags:    make([]isa.Addr, entries),
		targets: make([]isa.Addr, entries),
		valid:   make([]bool, entries),
		mask:    uint64(entries - 1),
	}
}

func (c *ITC) index(pc isa.Addr) uint64 { return (uint64(pc) >> 2) & c.mask }

// Predict returns the cached target for the indirect branch at pc.
func (c *ITC) Predict(pc isa.Addr) (isa.Addr, bool) {
	c.Lookups++
	i := c.index(pc)
	if c.valid[i] && c.tags[i] == pc {
		c.Hits++
		return c.targets[i], true
	}
	return 0, false
}

// Update installs the resolved target; call after every indirect branch.
func (c *ITC) Update(pc, target isa.Addr) {
	i := c.index(pc)
	c.tags[i], c.targets[i], c.valid[i] = pc, target, true
}
