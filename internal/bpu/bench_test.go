package bpu

import (
	"math/rand/v2"
	"testing"

	"confluence/internal/isa"
)

// BenchmarkHybridPredictAndUpdate measures the direction-predictor hot path.
func BenchmarkHybridPredictAndUpdate(b *testing.B) {
	h := NewHybrid(16 << 10)
	rng := rand.New(rand.NewPCG(1, 1))
	pcs := make([]isa.Addr, 1024)
	outcomes := make([]bool, 1024)
	for i := range pcs {
		pcs[i] = isa.Addr(0x10000 + i*8)
		outcomes[i] = rng.Float64() < 0.9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PredictAndUpdate(pcs[i&1023], outcomes[i&1023])
	}
}
