package bpu

import (
	"reflect"
	"testing"

	"confluence/internal/isa"
)

func TestHybridStateRoundTrip(t *testing.T) {
	h := NewHybrid(1024)
	for i := 0; i < 5000; i++ {
		pc := isa.Addr(0x4000 + (i%37)*4)
		h.PredictAndUpdate(pc, i%3 != 0)
	}
	st := h.ExportState()

	fresh := NewHybrid(1024)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported state differs from the snapshot")
	}
	// Bit-identical future decisions: the two predictors must agree on
	// every prediction of a shared post-restore stream.
	for i := 0; i < 200; i++ {
		pc := isa.Addr(0x4000 + (i%37)*4)
		p1, c1 := h.PredictAndUpdate(pc, i%2 == 0)
		p2, c2 := fresh.PredictAndUpdate(pc, i%2 == 0)
		if p1 != p2 || c1 != c2 {
			t.Fatalf("prediction diverged at step %d", i)
		}
	}

	if err := NewHybrid(512).RestoreState(st); err == nil {
		t.Error("restore into mismatched table size succeeded")
	}
}

func TestRASStateRoundTrip(t *testing.T) {
	r := NewRAS(16)
	for i := 0; i < 20; i++ { // wraps past capacity
		r.Push(isa.Addr(0x1000 + i*8))
	}
	r.Pop()
	st := r.ExportState()

	fresh := NewRAS(16)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported state differs from the snapshot")
	}
	got, okG := fresh.Pop()
	want, okW := r.Pop()
	if got != want || okG != okW {
		t.Errorf("post-restore Pop = %#x,%v, want %#x,%v", got, okG, want, okW)
	}

	if err := NewRAS(8).RestoreState(st); err == nil {
		t.Error("restore into mismatched capacity succeeded")
	}
}

func TestITCStateRoundTrip(t *testing.T) {
	c := NewITC(256)
	for i := 0; i < 300; i++ {
		pc := isa.Addr(0x2000 + i*4)
		c.Update(pc, pc+0x1000)
	}
	st := c.ExportState()

	fresh := NewITC(256)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported state differs from the snapshot")
	}
	pc := isa.Addr(0x2000 + 299*4)
	got, okG := fresh.Predict(pc)
	want, okW := c.Predict(pc)
	if got != want || okG != okW {
		t.Errorf("post-restore Predict = %#x,%v, want %#x,%v", got, okG, want, okW)
	}

	if err := NewITC(128).RestoreState(st); err == nil {
		t.Error("restore into mismatched size succeeded")
	}
}
