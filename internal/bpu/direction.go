// Package bpu implements the branch prediction unit's direction and target
// predictors: bimodal and gshare tables combined by a meta selector (the
// paper's hybrid predictor), a 64-entry return address stack, and a
// 1K-entry indirect target cache.
package bpu

import "confluence/internal/isa"

// counter2 is a 2-bit saturating counter; >=2 predicts taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// DirStats counts conditional-branch prediction outcomes.
type DirStats struct {
	Lookups     uint64
	Mispredicts uint64
}

// Accuracy returns the fraction of correct predictions.
func (s DirStats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Lookups)
}

// Bimodal is a PC-indexed table of 2-bit counters. It is the standalone
// reference form of the component; Hybrid keeps its bimodal counters packed
// next to the meta selector (bimMeta) so one table touch serves both.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal creates a bimodal predictor with entries (power of two).
func NewBimodal(entries int) *Bimodal {
	checkPow2("bpu: bimodal", entries)
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

func (b *Bimodal) index(pc isa.Addr) uint64 { return (uint64(pc) >> 2) & b.mask }

// Predict returns the predicted direction for the branch at pc.
func (b *Bimodal) Predict(pc isa.Addr) bool { return b.table[b.index(pc)].taken() }

// Update trains the predictor with the resolved direction.
func (b *Bimodal) Update(pc isa.Addr, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// GShare xors global history into the table index.
type GShare struct {
	table    []counter2
	mask     uint64
	hist     uint64
	histBits uint
}

// NewGShare creates a gshare predictor with entries (power of two) and
// histBits of global history.
func NewGShare(entries int, histBits uint) *GShare {
	checkPow2("bpu: gshare", entries)
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 1
	}
	return &GShare{table: t, mask: uint64(entries - 1), histBits: histBits}
}

func (g *GShare) index(pc isa.Addr) uint64 {
	return ((uint64(pc) >> 2) ^ g.hist) & g.mask
}

// Predict returns the predicted direction for the branch at pc under the
// current global history.
func (g *GShare) Predict(pc isa.Addr) bool { return g.table[g.index(pc)].taken() }

// Update trains the table and shifts the outcome into global history.
func (g *GShare) Update(pc isa.Addr, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.hist <<= 1
	if taken {
		g.hist |= 1
	}
	g.hist &= (1 << g.histBits) - 1
}

// PredictUpdate predicts under the current history, then trains the table
// and shifts the outcome in — one index computation and one table touch for
// the hybrid's every-conditional path (identical behavior to
// Predict-then-Update).
func (g *GShare) PredictUpdate(pc isa.Addr, taken bool) (predicted bool) {
	i := g.index(pc)
	e := g.table[i]
	predicted = e.taken()
	g.table[i] = e.update(taken)
	g.hist <<= 1
	if taken {
		g.hist |= 1
	}
	g.hist &= (1 << g.histBits) - 1
	return predicted
}

// bimMeta packs the bimodal and meta-selector counters for one PC index
// into adjacent bytes: both tables are indexed by (pc>>2)&mask, so packing
// them turns two random table touches per conditional branch into one.
type bimMeta struct {
	bim, meta counter2
}

// Hybrid combines bimodal and gshare with a meta selector, the paper's
// "16K-entry gShare, Bimodal, Meta selector" configuration. The bimodal
// and meta counters live packed in one table (bimMeta) rather than as an
// embedded Bimodal — same predictions, half the table touches.
type Hybrid struct {
	bm    []bimMeta // packed bimodal + meta (>=2 selects gshare)
	gsh   *GShare
	mask  uint64
	stats DirStats
}

// NewHybrid creates the hybrid predictor; entries sizes each component.
func NewHybrid(entries int) *Hybrid {
	checkPow2("bpu: hybrid", entries)
	bm := make([]bimMeta, entries)
	for i := range bm {
		bm[i] = bimMeta{bim: 1, meta: 2} // weakly not-taken, weakly prefer gshare
	}
	return &Hybrid{
		bm:   bm,
		gsh:  NewGShare(entries, 14),
		mask: uint64(entries - 1),
	}
}

// Predict returns the selected component's direction prediction.
func (h *Hybrid) Predict(pc isa.Addr) bool {
	e := h.bm[(uint64(pc)>>2)&h.mask]
	if e.meta.taken() {
		return h.gsh.Predict(pc)
	}
	return e.bim.taken()
}

// PredictAndUpdate predicts, trains all tables with the outcome, and
// reports whether the prediction was correct.
func (h *Hybrid) PredictAndUpdate(pc isa.Addr, taken bool) (predicted, correct bool) {
	mi := (uint64(pc) >> 2) & h.mask
	e := &h.bm[mi]
	bp := e.bim.taken()
	gp := h.gsh.PredictUpdate(pc, taken)
	useG := e.meta.taken()
	predicted = bp
	if useG {
		predicted = gp
	}
	correct = predicted == taken
	// Meta trains toward the component that was right when they disagree.
	if bp != gp {
		e.meta = e.meta.update(gp == taken)
	}
	e.bim = e.bim.update(taken)
	h.stats.Lookups++
	if !correct {
		h.stats.Mispredicts++
	}
	return predicted, correct
}

// Stats returns the counters; ResetStats zeroes them.
func (h *Hybrid) Stats() DirStats { return h.stats }
func (h *Hybrid) ResetStats()     { h.stats = DirStats{} }

func checkPow2(what string, n int) {
	if n <= 0 || n&(n-1) != 0 {
		panic(what + ": size must be a positive power of two")
	}
}
