// Package bpu implements the branch prediction unit's direction and target
// predictors: bimodal and gshare tables combined by a meta selector (the
// paper's hybrid predictor), a 64-entry return address stack, and a
// 1K-entry indirect target cache.
package bpu

import "confluence/internal/isa"

// counter2 is a 2-bit saturating counter; >=2 predicts taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// DirStats counts conditional-branch prediction outcomes.
type DirStats struct {
	Lookups     uint64
	Mispredicts uint64
}

// Accuracy returns the fraction of correct predictions.
func (s DirStats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Lookups)
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal creates a bimodal predictor with entries (power of two).
func NewBimodal(entries int) *Bimodal {
	checkPow2("bpu: bimodal", entries)
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

func (b *Bimodal) index(pc isa.Addr) uint64 { return (uint64(pc) >> 2) & b.mask }

// Predict returns the predicted direction for the branch at pc.
func (b *Bimodal) Predict(pc isa.Addr) bool { return b.table[b.index(pc)].taken() }

// Update trains the predictor with the resolved direction.
func (b *Bimodal) Update(pc isa.Addr, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// GShare xors global history into the table index.
type GShare struct {
	table    []counter2
	mask     uint64
	hist     uint64
	histBits uint
}

// NewGShare creates a gshare predictor with entries (power of two) and
// histBits of global history.
func NewGShare(entries int, histBits uint) *GShare {
	checkPow2("bpu: gshare", entries)
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 1
	}
	return &GShare{table: t, mask: uint64(entries - 1), histBits: histBits}
}

func (g *GShare) index(pc isa.Addr) uint64 {
	return ((uint64(pc) >> 2) ^ g.hist) & g.mask
}

// Predict returns the predicted direction for the branch at pc under the
// current global history.
func (g *GShare) Predict(pc isa.Addr) bool { return g.table[g.index(pc)].taken() }

// Update trains the table and shifts the outcome into global history.
func (g *GShare) Update(pc isa.Addr, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.hist <<= 1
	if taken {
		g.hist |= 1
	}
	g.hist &= (1 << g.histBits) - 1
}

// Hybrid combines bimodal and gshare with a meta selector, the paper's
// "16K-entry gShare, Bimodal, Meta selector" configuration.
type Hybrid struct {
	bim   *Bimodal
	gsh   *GShare
	meta  []counter2 // >=2 selects gshare
	mask  uint64
	stats DirStats
}

// NewHybrid creates the hybrid predictor; entries sizes each component.
func NewHybrid(entries int) *Hybrid {
	checkPow2("bpu: hybrid", entries)
	meta := make([]counter2, entries)
	for i := range meta {
		meta[i] = 2 // weakly prefer gshare
	}
	return &Hybrid{
		bim:  NewBimodal(entries),
		gsh:  NewGShare(entries, 14),
		meta: meta,
		mask: uint64(entries - 1),
	}
}

// Predict returns the selected component's direction prediction.
func (h *Hybrid) Predict(pc isa.Addr) bool {
	if h.meta[(uint64(pc)>>2)&h.mask].taken() {
		return h.gsh.Predict(pc)
	}
	return h.bim.Predict(pc)
}

// PredictAndUpdate predicts, trains all tables with the outcome, and
// reports whether the prediction was correct.
func (h *Hybrid) PredictAndUpdate(pc isa.Addr, taken bool) (predicted, correct bool) {
	bp := h.bim.Predict(pc)
	gp := h.gsh.Predict(pc)
	mi := (uint64(pc) >> 2) & h.mask
	useG := h.meta[mi].taken()
	predicted = bp
	if useG {
		predicted = gp
	}
	correct = predicted == taken
	// Meta trains toward the component that was right when they disagree.
	if bp != gp {
		h.meta[mi] = h.meta[mi].update(gp == taken)
	}
	h.bim.Update(pc, taken)
	h.gsh.Update(pc, taken)
	h.stats.Lookups++
	if !correct {
		h.stats.Mispredicts++
	}
	return predicted, correct
}

// Stats returns the counters; ResetStats zeroes them.
func (h *Hybrid) Stats() DirStats { return h.stats }
func (h *Hybrid) ResetStats()     { h.stats = DirStats{} }

func checkPow2(what string, n int) {
	if n <= 0 || n&(n-1) != 0 {
		panic(what + ": size must be a positive power of two")
	}
}
