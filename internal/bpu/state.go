package bpu

import (
	"fmt"

	"confluence/internal/isa"
)

// Warm-up snapshot support. The predictor tables are exported as raw
// counter arrays so a restore is bit-identical to the live state it was
// captured from. Diagnostic counters (DirStats, RAS.Pushes, ITC.Hits...)
// are deliberately excluded: they never influence a prediction, and the
// warm-up boundary resets them anyway.

// HybridState is the serializable state of a Hybrid direction predictor.
type HybridState struct {
	Bim    []uint8 // bimodal counters, one per entry
	Meta   []uint8 // meta-selector counters, parallel to Bim
	GShare []uint8
	Hist   uint64 // gshare global history register
}

// ExportState deep-copies the predictor's tables and history.
func (h *Hybrid) ExportState() HybridState {
	st := HybridState{
		Bim:    make([]uint8, len(h.bm)),
		Meta:   make([]uint8, len(h.bm)),
		GShare: make([]uint8, len(h.gsh.table)),
		Hist:   h.gsh.hist,
	}
	for i, e := range h.bm {
		st.Bim[i], st.Meta[i] = uint8(e.bim), uint8(e.meta)
	}
	for i, c := range h.gsh.table {
		st.GShare[i] = uint8(c)
	}
	return st
}

// RestoreState overwrites the predictor's tables and history from a
// snapshot; table sizes must match.
func (h *Hybrid) RestoreState(st HybridState) error {
	if len(st.Bim) != len(h.bm) || len(st.Meta) != len(h.bm) || len(st.GShare) != len(h.gsh.table) {
		return fmt.Errorf("bpu: hybrid snapshot table sizes do not match predictor")
	}
	for i := range h.bm {
		h.bm[i] = bimMeta{bim: counter2(st.Bim[i]), meta: counter2(st.Meta[i])}
	}
	for i := range h.gsh.table {
		h.gsh.table[i] = counter2(st.GShare[i])
	}
	h.gsh.hist = st.Hist
	return nil
}

// RASState is the serializable state of a return address stack.
type RASState struct {
	Buf   []isa.Addr
	Top   int
	Depth int
}

// ExportState deep-copies the stack.
func (r *RAS) ExportState() RASState {
	return RASState{Buf: append([]isa.Addr(nil), r.buf...), Top: r.top, Depth: r.depth}
}

// RestoreState overwrites the stack from a snapshot; capacity must match.
func (r *RAS) RestoreState(st RASState) error {
	if len(st.Buf) != len(r.buf) {
		return fmt.Errorf("bpu: RAS snapshot capacity %d does not match stack %d", len(st.Buf), len(r.buf))
	}
	copy(r.buf, st.Buf)
	r.top, r.depth = st.Top, st.Depth
	return nil
}

// ITCState is the serializable state of an indirect target cache.
type ITCState struct {
	Tags    []isa.Addr
	Targets []isa.Addr
	Valid   []bool
}

// ExportState deep-copies the cache.
func (c *ITC) ExportState() ITCState {
	return ITCState{
		Tags:    append([]isa.Addr(nil), c.tags...),
		Targets: append([]isa.Addr(nil), c.targets...),
		Valid:   append([]bool(nil), c.valid...),
	}
}

// RestoreState overwrites the cache from a snapshot; sizes must match.
func (c *ITC) RestoreState(st ITCState) error {
	if len(st.Tags) != len(c.tags) || len(st.Targets) != len(c.targets) || len(st.Valid) != len(c.valid) {
		return fmt.Errorf("bpu: ITC snapshot size does not match cache")
	}
	copy(c.tags, st.Tags)
	copy(c.targets, st.Targets)
	copy(c.valid, st.Valid)
	return nil
}
