package store

import (
	"bytes"
	"fmt"
	"testing"
)

// benchPayload approximates a real cell entry: the JSON of an aggregate
// Stats plus a few per-core snapshots lands in the low kilobytes.
var benchPayload = bytes.Repeat([]byte(`{"Instructions":1500000,"Cycles":2345678.9}`), 64)

// BenchmarkStoreHit measures the read path a resumed grid pays per
// already-completed cell: one framed read, checksum, and LRU touch.
func BenchmarkStoreHit(b *testing.B) {
	s := &Store{dir: b.TempDir(), size: -1}
	key := Key([]byte("hot cell"))
	if err := s.Put(key, benchPayload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(key); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStoreMiss measures the lookup cost a cold grid pays per cell
// before simulating: a failed stat on the entry path.
func BenchmarkStoreMiss(b *testing.B) {
	s := &Store{dir: b.TempDir(), size: -1}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = Key([]byte(fmt.Sprintf("cold cell %d", i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(keys[i%len(keys)]); ok {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkStoreWrite measures the write-back path: frame, temp file,
// rename.
func BenchmarkStoreWrite(b *testing.B) {
	s := &Store{dir: b.TempDir(), size: -1}
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := Key([]byte(fmt.Sprintf("cell %d", i&1023)))
		if err := s.Put(key, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}
