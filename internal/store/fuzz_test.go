package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreEntry drives the entry codec from both ends, mirroring the
// trace-codec fuzzing from the replay layer:
//
//  1. Round trip: any payload Put under a fuzzed key-material string must
//     Get back byte-identical.
//  2. Corruption: the same payload's entry file, overwritten with the
//     fuzzer's raw bytes, must read as a hit-with-identical-payload or a
//     clean miss — never a panic, never a mangled payload.
func FuzzStoreEntry(f *testing.F) {
	f.Add([]byte("material"), []byte(`{"ipc": 1.5}`))
	f.Add([]byte(""), []byte(""))
	f.Add([]byte("x"), []byte(magic))                           // payload that looks like a header
	f.Add([]byte("y"), bytes.Repeat([]byte{0}, headerSize+8))   // all-zero frame-sized payload
	f.Add([]byte("z"), []byte("CFLSTE01\x00\x00\x00\x00garbo")) // near-miss framing

	f.Fuzz(func(t *testing.T, material, payload []byte) {
		dir := t.TempDir()
		s := &Store{dir: dir, size: -1}
		key := Key(material)

		if err := s.Put(key, payload); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, ok := s.Get(key)
		if !ok {
			t.Fatal("round trip missed")
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %q -> %q", payload, got)
		}

		// Now treat the fuzz payload as a hostile entry file: whatever the
		// bytes are, Get must return the exact payload of a valid frame or
		// report a miss.
		path := filepath.Join(dir, key+entrySuffix)
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
		if raw, ok := s.Get(key); ok {
			// A hit here means the fuzzer built a validly-framed file by
			// hand; the returned payload must match its framed content.
			want, okWant := readEntry(path)
			if !okWant || !bytes.Equal(raw, want) {
				t.Fatalf("hit on hand-built frame disagrees with readEntry: %q vs %q", raw, want)
			}
		}
	})
}
