package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testStore returns a fresh store on its own directory (bypassing the
// per-dir registry so each test starts with zeroed counters).
func testStore(t *testing.T) *Store {
	t.Helper()
	return &Store{dir: t.TempDir(), size: -1}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t)
	key := Key([]byte("cell|some canonical material"))
	payload := []byte(`{"ipc": 1.25, "blob": "abc"}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit before any Put")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: got %q want %q", got, payload)
	}
	hits, misses, writes := s.Counters()
	if hits != 1 || misses != 1 || writes != 1 {
		t.Errorf("counters = %d/%d/%d, want 1/1/1", hits, misses, writes)
	}
}

func TestEmptyPayload(t *testing.T) {
	s := testStore(t)
	key := Key(nil)
	if err := s.Put(key, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload round trip: ok=%v len=%d", ok, len(got))
	}
}

// TestCorruptEntriesAreMisses is the robustness contract: no matter how
// an entry file is damaged, Get reports a miss — never an error, never a
// mangled payload.
func TestCorruptEntriesAreMisses(t *testing.T) {
	payload := []byte(`{"stats": {"Instructions": 12345, "Cycles": 6789.5}}`)
	corruptions := []struct {
		name    string
		corrupt func(path string, data []byte) []byte
	}{
		{"empty file", func(_ string, _ []byte) []byte { return nil }},
		{"short header", func(_ string, data []byte) []byte { return data[:headerSize-3] }},
		{"wrong magic", func(_ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[0] ^= 0xff
			return out
		}},
		{"truncated payload", func(_ string, data []byte) []byte { return data[:len(data)-5] }},
		{"trailing garbage", func(_ string, data []byte) []byte { return append(append([]byte(nil), data...), 0xde, 0xad) }},
		{"flipped payload bit", func(_ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[headerSize+4] ^= 0x01
			return out
		}},
		{"flipped checksum", func(_ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(magic)+8] ^= 0x01
			return out
		}},
		{"length lies", func(_ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(magic)] ^= 0x02
			return out
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := testStore(t)
			key := Key([]byte(tc.name))
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(s.dir, key+entrySuffix)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(path, data), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry returned a hit (payload %q)", got)
			}
			// The store heals by overwriting: a re-Put makes the key
			// readable again.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("re-Put after corruption: ok=%v got=%q", ok, got)
			}
		})
	}
}

func TestMissingDirIsMiss(t *testing.T) {
	s := &Store{dir: filepath.Join(t.TempDir(), "never-created"), size: -1}
	if _, ok := s.Get(Key([]byte("x"))); ok {
		t.Fatal("hit from a directory that does not exist")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := testStore(t)
	for _, key := range []string{"", "../escape", "UPPER", "has space", "deadbeef/../../etc"} {
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit", key)
		}
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
	}
}

// TestConcurrentSameKeyWriters pins the convergence contract: many
// writers racing on one key leave exactly one entry, and it is some
// writer's complete payload — never an interleaving.
func TestConcurrentSameKeyWriters(t *testing.T) {
	s := testStore(t)
	key := Key([]byte("contended"))
	const writers = 16
	valid := make(map[string]bool, writers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		payload := []byte(fmt.Sprintf(`{"writer": %d, "pad": "%064d"}`, i, i))
		mu.Lock()
		valid[string(payload)] = true
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(key, payload); err != nil {
				t.Errorf("Put: %v", err)
			}
		}()
	}
	wg.Wait()
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after concurrent writes")
	}
	if !valid[string(got)] {
		t.Fatalf("surviving entry is not any single writer's payload: %q", got)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("store holds %d entries, want 1", n)
	}
	// No temp debris left behind by the losing writers.
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if de.Name() != key+entrySuffix {
			t.Errorf("leftover file %s", de.Name())
		}
	}
}

func TestGCEvictsLRU(t *testing.T) {
	s := testStore(t)
	payload := bytes.Repeat([]byte("x"), 1024)
	perEntry := int64(headerSize + len(payload))
	s.SetMaxBytes(4 * perEntry)

	var keys []string
	for i := 0; i < 4; i++ {
		key := Key([]byte(fmt.Sprintf("entry-%d", i)))
		keys = append(keys, key)
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is unambiguous on coarse
		// filesystem timestamps.
		stamp := time.Now().Add(time.Duration(i-10) * time.Hour)
		os.Chtimes(filepath.Join(s.dir, key+entrySuffix), stamp, stamp)
	}
	// Touch entry 0 (a read hit would do the same) so entry 1 is now the
	// least recently used.
	now := time.Now()
	os.Chtimes(filepath.Join(s.dir, keys[0]+entrySuffix), now, now)

	over := Key([]byte("one-too-many"))
	if err := s.Put(over, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Error("LRU entry survived a GC that had to evict")
	}
	for _, key := range []string{keys[0], over} {
		if _, ok := s.Get(key); !ok {
			t.Errorf("recently-used entry %s evicted", key[:8])
		}
	}
	if n := s.Len(); n > 4 {
		t.Errorf("store holds %d entries, cap allows 4", n)
	}
}

func TestGCSweepsStaleTempFiles(t *testing.T) {
	s := testStore(t)
	s.SetMaxBytes(1) // any write triggers GC
	stale := filepath.Join(s.dir, "deadbeef"+tmpSuffix+"12345")
	if err := os.WriteFile(stale, []byte("killed writer debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	os.Chtimes(stale, old, old)
	if err := s.Put(Key([]byte("k")), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if fileExists(stale) {
		t.Error("stale temp file survived GC")
	}
}

func TestOpenSharesHandles(t *testing.T) {
	dir := t.TempDir()
	a := Open(dir)
	b := Open(dir + string(os.PathSeparator))
	if a != b {
		t.Error("Open returned distinct handles for one directory")
	}
	if a.Dir() == "" {
		t.Error("empty Dir()")
	}
}

// TestHasDoesNotCountOrTouch pins the fleet's completion probe: Has sees
// exactly what Get would, but moves no counters and no LRU clock.
func TestHasDoesNotCountOrTouch(t *testing.T) {
	s := testStore(t)
	key := Key([]byte("has-probe"))
	if s.Has(key) {
		t.Fatal("Has hit before any Put")
	}
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key) {
		t.Fatal("Has missed a stored entry")
	}
	if s.Has("not-a-valid-key!") {
		t.Fatal("Has accepted an invalid key")
	}
	// Corrupt the entry: Has must degrade to corruption-as-miss like Get.
	path, _ := s.entryPath(key)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Has(key) {
		t.Fatal("Has hit a corrupt entry")
	}
	hits, misses, _ := s.Counters()
	if hits != 0 || misses != 0 {
		t.Fatalf("Has moved counters: %d hits, %d misses", hits, misses)
	}
}

// TestGCConcurrentDeleter is the two-fleet-processes-GC-the-same-dir
// regression: entries this sweep enumerated can vanish (another process's
// eviction) before it stats or removes them. The sweep must treat ENOENT
// as already-collected — subtract the bytes, keep going — and must leave
// the store under its cap without wedging or panicking.
func TestGCConcurrentDeleter(t *testing.T) {
	s := testStore(t)
	payload := bytes.Repeat([]byte("x"), 512)
	var keys []string
	for i := 0; i < 40; i++ {
		k := Key([]byte(fmt.Sprintf("gc-race-%d", i)))
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	// A "concurrent collector": deletes entries behind this handle's back
	// while Puts keep triggering the size-capped sweep.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i = (i + 1) % len(keys) {
			select {
			case <-stop:
				return
			default:
			}
			path, _ := s.entryPath(keys[i])
			os.Remove(path)
		}
	}()
	s.SetMaxBytes(4 * 1024)
	for i := 0; i < 60; i++ {
		k := Key([]byte(fmt.Sprintf("gc-race-w-%d", i)))
		if err := s.Put(k, payload); err != nil {
			t.Fatalf("Put under concurrent deletion: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	// One more write forces a final sweep against whatever survived; the
	// directory must end under the cap.
	if err := s.Put(Key([]byte("gc-race-final")), payload); err != nil {
		t.Fatal(err)
	}
	var total int64
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	if total > 4*1024 {
		t.Fatalf("store is %d bytes after concurrent-deleter GC, cap is %d", total, 4*1024)
	}
}

// TestGCStaleSizeCacheRecovers pins the stale-cache path of the same
// race: a sibling process evicts entries, leaving this handle's cached
// size an overestimate. The next over-cap write rescans real sizes, so
// the sweep must not evict more than the (already small) directory holds.
func TestGCStaleSizeCacheRecovers(t *testing.T) {
	s := testStore(t)
	payload := bytes.Repeat([]byte("y"), 512)
	for i := 0; i < 20; i++ {
		if err := s.Put(Key([]byte(fmt.Sprintf("stale-%d", i))), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Sibling process evicts everything behind our back.
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		os.Remove(filepath.Join(s.dir, de.Name()))
	}
	s.SetMaxBytes(2 * 1024)
	k := Key([]byte("stale-after"))
	if err := s.Put(k, payload); err != nil {
		t.Fatalf("Put after sibling GC: %v", err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("fresh entry lost after stale-cache GC")
	}
}

// TestInjectedClock pins the injectable-clock seam the wallclock linter
// demands of infra packages: an LRU touch on Get stamps the entry with
// the injected clock's time, and GC's tmp-file aging judges staleness
// against the same clock.
func TestInjectedClock(t *testing.T) {
	s := testStore(t)
	past := time.Date(2020, 6, 1, 12, 0, 0, 0, time.UTC)
	s.now = func() time.Time { return past }

	key := Key([]byte("clock-seam"))
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("Get missed a just-written entry")
	}
	info, err := os.Stat(filepath.Join(s.dir, key+entrySuffix))
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().Equal(past) {
		t.Errorf("LRU touch used mtime %v, want the injected clock's %v", info.ModTime(), past)
	}

	// A *.tmp file "older" than tmpMaxAge relative to the injected clock
	// is killed-writer debris; with the clock wound far forward the GC
	// must sweep it even though its real mtime is fresh.
	tmp := filepath.Join(s.dir, "debris"+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(tmp, past, past); err != nil {
		t.Fatal(err)
	}
	s.now = func() time.Time { return past.Add(365 * 24 * time.Hour) }
	s.SetMaxBytes(1) // force a GC pass on the next write
	if err := s.Put(Key([]byte("another")), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("GC left tmp debris in place under a wound-forward clock (err=%v)", err)
	}
}
