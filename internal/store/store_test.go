package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testStore returns a fresh store on its own directory (bypassing the
// per-dir registry so each test starts with zeroed counters).
func testStore(t *testing.T) *Store {
	t.Helper()
	return &Store{dir: t.TempDir(), size: -1}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t)
	key := Key([]byte("cell|some canonical material"))
	payload := []byte(`{"ipc": 1.25, "blob": "abc"}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit before any Put")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: got %q want %q", got, payload)
	}
	hits, misses, writes := s.Counters()
	if hits != 1 || misses != 1 || writes != 1 {
		t.Errorf("counters = %d/%d/%d, want 1/1/1", hits, misses, writes)
	}
}

func TestEmptyPayload(t *testing.T) {
	s := testStore(t)
	key := Key(nil)
	if err := s.Put(key, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload round trip: ok=%v len=%d", ok, len(got))
	}
}

// TestCorruptEntriesAreMisses is the robustness contract: no matter how
// an entry file is damaged, Get reports a miss — never an error, never a
// mangled payload.
func TestCorruptEntriesAreMisses(t *testing.T) {
	payload := []byte(`{"stats": {"Instructions": 12345, "Cycles": 6789.5}}`)
	corruptions := []struct {
		name    string
		corrupt func(path string, data []byte) []byte
	}{
		{"empty file", func(_ string, _ []byte) []byte { return nil }},
		{"short header", func(_ string, data []byte) []byte { return data[:headerSize-3] }},
		{"wrong magic", func(_ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[0] ^= 0xff
			return out
		}},
		{"truncated payload", func(_ string, data []byte) []byte { return data[:len(data)-5] }},
		{"trailing garbage", func(_ string, data []byte) []byte { return append(append([]byte(nil), data...), 0xde, 0xad) }},
		{"flipped payload bit", func(_ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[headerSize+4] ^= 0x01
			return out
		}},
		{"flipped checksum", func(_ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(magic)+8] ^= 0x01
			return out
		}},
		{"length lies", func(_ string, data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(magic)] ^= 0x02
			return out
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := testStore(t)
			key := Key([]byte(tc.name))
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(s.dir, key+entrySuffix)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(path, data), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry returned a hit (payload %q)", got)
			}
			// The store heals by overwriting: a re-Put makes the key
			// readable again.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("re-Put after corruption: ok=%v got=%q", ok, got)
			}
		})
	}
}

func TestMissingDirIsMiss(t *testing.T) {
	s := &Store{dir: filepath.Join(t.TempDir(), "never-created"), size: -1}
	if _, ok := s.Get(Key([]byte("x"))); ok {
		t.Fatal("hit from a directory that does not exist")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := testStore(t)
	for _, key := range []string{"", "../escape", "UPPER", "has space", "deadbeef/../../etc"} {
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit", key)
		}
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
	}
}

// TestConcurrentSameKeyWriters pins the convergence contract: many
// writers racing on one key leave exactly one entry, and it is some
// writer's complete payload — never an interleaving.
func TestConcurrentSameKeyWriters(t *testing.T) {
	s := testStore(t)
	key := Key([]byte("contended"))
	const writers = 16
	valid := make(map[string]bool, writers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		payload := []byte(fmt.Sprintf(`{"writer": %d, "pad": "%064d"}`, i, i))
		mu.Lock()
		valid[string(payload)] = true
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(key, payload); err != nil {
				t.Errorf("Put: %v", err)
			}
		}()
	}
	wg.Wait()
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after concurrent writes")
	}
	if !valid[string(got)] {
		t.Fatalf("surviving entry is not any single writer's payload: %q", got)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("store holds %d entries, want 1", n)
	}
	// No temp debris left behind by the losing writers.
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if de.Name() != key+entrySuffix {
			t.Errorf("leftover file %s", de.Name())
		}
	}
}

func TestGCEvictsLRU(t *testing.T) {
	s := testStore(t)
	payload := bytes.Repeat([]byte("x"), 1024)
	perEntry := int64(headerSize + len(payload))
	s.SetMaxBytes(4 * perEntry)

	var keys []string
	for i := 0; i < 4; i++ {
		key := Key([]byte(fmt.Sprintf("entry-%d", i)))
		keys = append(keys, key)
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is unambiguous on coarse
		// filesystem timestamps.
		stamp := time.Now().Add(time.Duration(i-10) * time.Hour)
		os.Chtimes(filepath.Join(s.dir, key+entrySuffix), stamp, stamp)
	}
	// Touch entry 0 (a read hit would do the same) so entry 1 is now the
	// least recently used.
	now := time.Now()
	os.Chtimes(filepath.Join(s.dir, keys[0]+entrySuffix), now, now)

	over := Key([]byte("one-too-many"))
	if err := s.Put(over, payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Error("LRU entry survived a GC that had to evict")
	}
	for _, key := range []string{keys[0], over} {
		if _, ok := s.Get(key); !ok {
			t.Errorf("recently-used entry %s evicted", key[:8])
		}
	}
	if n := s.Len(); n > 4 {
		t.Errorf("store holds %d entries, cap allows 4", n)
	}
}

func TestGCSweepsStaleTempFiles(t *testing.T) {
	s := testStore(t)
	s.SetMaxBytes(1) // any write triggers GC
	stale := filepath.Join(s.dir, "deadbeef"+tmpSuffix+"12345")
	if err := os.WriteFile(stale, []byte("killed writer debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	os.Chtimes(stale, old, old)
	if err := s.Put(Key([]byte("k")), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if fileExists(stale) {
		t.Error("stale temp file survived GC")
	}
}

func TestOpenSharesHandles(t *testing.T) {
	dir := t.TempDir()
	a := Open(dir)
	b := Open(dir + string(os.PathSeparator))
	if a != b {
		t.Error("Open returned distinct handles for one directory")
	}
	if a.Dir() == "" {
		t.Error("empty Dir()")
	}
}
