// Package store is a durable, content-addressed result store: the
// persistent half of the experiment engine's memoization. A key is the
// hex SHA-256 of canonical key material (the caller serializes everything
// that determines a result — workload profiles, design point, options,
// instruction counts, code version — see experiments.CellStoreKey); the
// value is an opaque payload the caller encodes (JSON in practice).
//
// The store is built for preemptible fleet capacity: ephemeral compute,
// persistent state. Its guarantees are accordingly conservative:
//
//   - Writes are atomic: the payload is framed (magic, length, CRC-32C),
//     written to a unique temp file in the store directory, then renamed
//     into place. A reader never observes a half-written entry; a process
//     killed mid-write leaves only a *.tmp file the GC sweeps later.
//   - Reads are corruption-detecting, never corruption-propagating: a
//     torn, truncated, or bit-flipped entry is a miss, not an error. The
//     simulation simply re-runs and rewrites the cell.
//   - Concurrent same-key writers are safe: each writes its own temp file
//     and the last rename wins, so the surviving entry is always one
//     writer's complete, checksummed payload.
//   - The store is size-capped (SetMaxBytes, or the
//     CONFLUENCE_STORE_MAX_BYTES environment variable): when a write
//     pushes the directory over the cap, entries are evicted
//     least-recently-used first (read hits bump an entry's mtime).
//
// Open returns one shared handle per directory within a process, so hit,
// miss, and write counters aggregate across every subsystem using the
// same store.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Key derives the store key for canonical key material: the hex SHA-256
// of the bytes. Equal material means equal key; any semantic change to
// the material (a knob, a seed, the code version) changes the key, which
// is what makes the store content-addressed rather than name-addressed.
func Key(material []byte) string {
	sum := sha256.Sum256(material)
	return hex.EncodeToString(sum[:])
}

// Entry file framing. The magic pins the on-disk schema; bump it when the
// framing (not the payload) changes shape.
const (
	magic      = "CFLSTE01"
	headerSize = len(magic) + 8 + 4 // magic, payload length, CRC-32C

	entrySuffix = ".entry"
	tmpSuffix   = ".tmp"

	// tmpMaxAge is how old a *.tmp file must be before GC treats it as
	// the debris of a killed writer and removes it.
	tmpMaxAge = time.Hour
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Store is a handle on one store directory. Obtain it with Open; the
// zero value is not usable.
type Store struct {
	dir string
	now func() time.Time // injectable clock: LRU touches and tmp aging; nil = wall clock

	mu       sync.Mutex
	maxBytes int64
	size     int64 // cached directory size; -1 until first scan
	dirMade  bool

	hits   atomic.Uint64
	misses atomic.Uint64
	writes atomic.Uint64
}

var (
	registryMu sync.Mutex
	registry   = map[string]*Store{}
)

// Open returns the process-wide handle for dir (creating it on first
// use), so counters and the cached size stay coherent across subsystems
// sharing a store. The directory itself is created lazily on the first
// write; a store that is only ever read from never touches the
// filesystem beyond lookups. The size cap defaults to
// CONFLUENCE_STORE_MAX_BYTES (0 or unset = unlimited); SetMaxBytes
// overrides it.
func Open(dir string) *Store {
	canon := dir
	if abs, err := filepath.Abs(dir); err == nil {
		canon = abs
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if s, ok := registry[canon]; ok {
		return s
	}
	s := &Store{dir: canon, size: -1, maxBytes: envMaxBytes()}
	registry[canon] = s
	return s
}

func envMaxBytes() int64 {
	v := os.Getenv("CONFLUENCE_STORE_MAX_BYTES")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SetMaxBytes caps the directory's total entry size; writes that push
// past the cap evict least-recently-used entries. Zero means unlimited.
func (s *Store) SetMaxBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxBytes = n
}

// Counters returns the handle's lifetime hit/miss/write counts.
func (s *Store) Counters() (hits, misses, writes uint64) {
	return s.hits.Load(), s.misses.Load(), s.writes.Load()
}

// entryPath maps a key onto its entry file. Keys are restricted to the
// hex alphabet Key produces so a key can never traverse out of the store
// directory.
func (s *Store) entryPath(key string) (string, bool) {
	if key == "" || len(key) > 128 {
		return "", false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return "", false
		}
	}
	return filepath.Join(s.dir, key+entrySuffix), true
}

// Get returns the payload stored under key. Every failure mode — no such
// entry, unreadable file, torn or truncated write, checksum mismatch —
// is a miss (nil, false), never an error: a corrupt entry costs a
// re-simulation, not a failed run. A hit bumps the entry's mtime, which
// is the LRU clock the GC evicts by.
func (s *Store) Get(key string) ([]byte, bool) {
	path, ok := s.entryPath(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok := readEntry(path)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	now := s.clock()
	os.Chtimes(path, now, now) // best-effort LRU touch
	return payload, true
}

// Has reports whether a valid entry exists under key, without counting a
// hit or touching the entry's LRU mtime. It is the completion probe the
// fleet's work-stealing scan runs every pass: a coordinator polling N
// cells must not inflate hit counters or perturb eviction order.
func (s *Store) Has(key string) bool {
	path, ok := s.entryPath(key)
	if !ok {
		return false
	}
	_, ok = readEntry(path)
	return ok
}

// clock reads the store's injectable clock, defaulting to the wall
// clock so directly-constructed handles behave like Open'd ones. The
// clock times LRU touches and tmp-file aging only — never simulated
// stats.
func (s *Store) clock() time.Time {
	now := s.now
	if now == nil {
		now = time.Now
	}
	return now()
}

// readEntry reads and validates one framed entry file.
func readEntry(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if len(data) < headerSize || string(data[:len(magic)]) != magic {
		return nil, false
	}
	length := binary.LittleEndian.Uint64(data[len(magic):])
	sum := binary.LittleEndian.Uint32(data[len(magic)+8:])
	payload := data[headerSize:]
	if uint64(len(payload)) != length {
		return nil, false // truncated or trailing garbage
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, false // bit rot / torn write
	}
	return payload, true
}

// Put stores payload under key atomically: frame, write to a unique temp
// file, rename into place. Concurrent writers of the same key each
// complete their own rename — the last one wins and the entry is always
// some writer's intact payload. Errors are returned but safe to ignore:
// a failed Put leaves the store no worse than before (persistence is
// best-effort; the in-memory result is already in hand).
func (s *Store) Put(key string, payload []byte) error {
	path, ok := s.entryPath(key)
	if !ok {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if err := s.ensureDir(); err != nil {
		return err
	}

	framed := make([]byte, headerSize+len(payload))
	copy(framed, magic)
	binary.LittleEndian.PutUint64(framed[len(magic):], uint64(len(payload)))
	binary.LittleEndian.PutUint32(framed[len(magic)+8:], crc32.Checksum(payload, crcTable))
	copy(framed[headerSize:], payload)

	tmp, err := os.CreateTemp(s.dir, key+tmpSuffix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	s.accountWrite(int64(len(framed)))
	return nil
}

// ensureDir creates the store directory once.
func (s *Store) ensureDir() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirMade {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.dirMade = true
	return nil
}

// accountWrite folds a completed write into the cached directory size and
// triggers GC past the cap. The cache is approximate under concurrent
// processes (each tracks its own writes between scans); GC rescans before
// evicting, so the cap itself is enforced against real sizes.
func (s *Store) accountWrite(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxBytes <= 0 {
		return
	}
	if s.size >= 0 {
		s.size += n
	}
	if s.size >= 0 && s.size <= s.maxBytes {
		return
	}
	s.gcLocked()
}

// gcLocked rescans the directory and evicts least-recently-used entries
// until total size fits the cap. Stale temp files from killed writers are
// swept too.
//
// The sweep is written for shared directories: in a fleet, several
// processes GC the same store concurrently, so every file this scan saw
// can be gone by the time it acts. ENOENT anywhere — stat after ReadDir,
// or the Remove itself — means another collector (or a corruption-as-miss
// rewrite) got there first: the entry is already collected, its bytes are
// already freed, and the sweep carries on. Only a file that demonstrably
// still exists after a failed Remove keeps its bytes in the total.
func (s *Store) gcLocked() {
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		// Unreadable directory (never created, or racing a teardown):
		// nothing to evict, nothing to account.
		return
	}
	var entries []entry
	var total int64
	now := s.clock()
	for _, de := range dirents {
		name := de.Name()
		info, err := de.Info()
		if err != nil {
			continue // deleted between ReadDir and stat: already collected
		}
		if strings.Contains(name, tmpSuffix) {
			if now.Sub(info.ModTime()) > tmpMaxAge {
				os.Remove(filepath.Join(s.dir, name))
			}
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		entries = append(entries, entry{filepath.Join(s.dir, name), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(entries, func(i, k int) bool { return entries[i].mtime.Before(entries[k].mtime) })
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		err := os.Remove(e.path)
		if err == nil || errors.Is(err, fs.ErrNotExist) || !fileExists(e.path) {
			total -= e.size // evicted by us or by a concurrent collector
		}
	}
	s.size = total
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// Len returns the number of valid-looking entry files currently in the
// store directory (tests and diagnostics; it does not validate framing).
func (s *Store) Len() int {
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range dirents {
		if strings.HasSuffix(de.Name(), entrySuffix) {
			n++
		}
	}
	return n
}
