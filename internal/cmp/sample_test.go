package cmp

import "testing"

func TestSamplingValidate(t *testing.T) {
	cases := []struct {
		name string
		sp   Sampling
		ok   bool
	}{
		{"zero value (exact mode)", Sampling{}, true},
		{"auto-style plan", Sampling{WindowInstr: 100, PeriodInstr: 2000, Windows: 8, WindowWarmupInstr: 100}, true},
		{"no warmup", Sampling{WindowInstr: 500, PeriodInstr: 500, Windows: 1}, true},
		{"zero window", Sampling{PeriodInstr: 1000, Windows: 4}, false},
		{"zero windows", Sampling{WindowInstr: 100, PeriodInstr: 1000}, false},
		{"negative windows", Sampling{WindowInstr: 100, PeriodInstr: 1000, Windows: -1}, false},
		{"window overruns period", Sampling{WindowInstr: 600, PeriodInstr: 1000, Windows: 2, WindowWarmupInstr: 600}, false},
	}
	for _, c := range cases {
		if err := c.sp.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	if (Sampling{}).Enabled() {
		t.Error("zero Sampling reports Enabled")
	}
	if !(Sampling{WindowInstr: 1, PeriodInstr: 1, Windows: 1}).Enabled() {
		t.Error("non-zero Sampling reports disabled")
	}
}

func TestSamplingInstructionAccounting(t *testing.T) {
	sp := Sampling{WindowInstr: 100, PeriodInstr: 2000, Windows: 8, WindowWarmupInstr: 50}
	if got, want := sp.DetailedInstr(), uint64(8*150); got != want {
		t.Errorf("DetailedInstr() = %d, want %d", got, want)
	}
	// Eight full periods: the last window's trailing gap is fast-forwarded
	// too, so coverage spans Windows×PeriodInstr.
	if got, want := sp.TotalInstr(), uint64(8*2000); got != want {
		t.Errorf("TotalInstr() = %d, want %d", got, want)
	}
	if got := (Sampling{}).TotalInstr(); got != 0 {
		t.Errorf("zero Sampling TotalInstr() = %d", got)
	}
}

func TestAutoSamplingPlan(t *testing.T) {
	for _, measure := range []uint64{0, 39, 100, 40_000, 1_500_000, 3_000_000} {
		sp := AutoSampling(measure)
		if err := sp.Validate(); err != nil {
			t.Errorf("AutoSampling(%d) invalid: %v", measure, err)
		}
		if measure == 0 {
			if sp.Enabled() {
				t.Error("AutoSampling(0) enabled")
			}
			continue
		}
		if !sp.Enabled() {
			t.Errorf("AutoSampling(%d) disabled", measure)
		}
		if sp.TotalInstr() > measure {
			t.Errorf("AutoSampling(%d) advances %d instructions past the measure region", measure, sp.TotalInstr())
		}
	}
	// The headline plan: at realistic scales, at most 15% of the measure
	// region runs in detail, so a run whose fast-forwarded warm-up phase
	// spans at least half the measure region sees a ≥10× overall
	// reduction in detailed-simulated instructions.
	for _, measure := range []uint64{800_000, 1_500_000, 3_000_000} {
		sp := AutoSampling(measure)
		if 20*sp.DetailedInstr() > 3*measure {
			t.Errorf("AutoSampling(%d): %d detailed instructions, want ≤ 15%% of the region", measure, sp.DetailedInstr())
		}
		if 10*sp.DetailedInstr() > measure/2+measure {
			t.Errorf("AutoSampling(%d): %d detailed instructions break the ≥10× claim at warmup=measure/2", measure, sp.DetailedInstr())
		}
	}
}
