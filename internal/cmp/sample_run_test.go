package cmp

import (
	"context"
	"math"
	"reflect"
	"testing"

	"confluence/internal/frontend"
)

func TestJitterOffset(t *testing.T) {
	if got := jitterOffset(0, 3, 100); got != 0 {
		t.Errorf("zero seed: offset = %d, want 0", got)
	}
	if got := jitterOffset(7, 3, 0); got != 0 {
		t.Errorf("zero room: offset = %d, want 0", got)
	}
	var distinct bool
	prev := jitterOffset(7, 0, 1000)
	for w := uint64(0); w < 64; w++ {
		off := jitterOffset(7, w, 1000)
		if off > 1000 {
			t.Fatalf("window %d: offset %d outside [0,1000]", w, off)
		}
		if off != jitterOffset(7, w, 1000) {
			t.Fatalf("window %d: offset not deterministic", w)
		}
		if off != prev {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all 64 window offsets identical; placement is not jittered")
	}
}

func TestRunSampledAggregatesWindows(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t, 2)
	if err := sys.FastForward(ctx, 20_000); err != nil {
		t.Fatal(err)
	}
	sp := Sampling{WindowInstr: 2000, PeriodInstr: 10_000, Windows: 5, WindowWarmupInstr: 500, JitterSeed: 3}
	agg, windows, perCore, cov, err := sys.RunSampled(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != sp.Windows {
		t.Fatalf("got %d windows, want %d", len(windows), sp.Windows)
	}
	var sum frontend.Stats
	for i := range windows {
		sum.Add(&windows[i])
	}
	if !reflect.DeepEqual(&sum, agg) {
		t.Error("aggregate is not the in-order sum of the window aggregates")
	}
	var coreInstr uint64
	for _, pc := range perCore {
		coreInstr += pc.Instructions
	}
	if coreInstr != agg.Instructions {
		t.Errorf("per-core instructions sum to %d, aggregate has %d", coreInstr, agg.Instructions)
	}
	// Measured mass ≈ cores × windows × window (each detailed segment
	// over-runs by at most one basic block per core).
	wantMeasured := uint64(2*sp.Windows) * sp.WindowInstr
	if agg.Instructions < wantMeasured || agg.Instructions > wantMeasured+uint64(2*sp.Windows)*64 {
		t.Errorf("measured %d instructions, want ≈ %d", agg.Instructions, wantMeasured)
	}
	// Coverage spans the whole region: cores × windows × period, again
	// modulo per-segment block over-run.
	wantCov := 2 * sp.TotalInstr()
	if cov.Instructions < wantCov || cov.Instructions > wantCov+8*uint64(2*sp.Windows)*64 {
		t.Errorf("coverage spans %d instructions, want ≈ %d", cov.Instructions, wantCov)
	}
	if !cov.Exact {
		t.Error("prefetcherless system did not report exact coverage")
	}
	if cov.L1IMPKI() <= 0 || cov.BTBMPKI() <= 0 {
		t.Error("coverage MPKI ratios are zero")
	}
}

// TestRunSampledCoverageMatchesExact pins the full-coverage contract at
// system level: with no prefetcher wired, the sampled run's combined
// window+gap probe tallies track a fully detailed run of the same region
// (identically warmed) to well under the headline tolerance.
func TestRunSampledCoverageMatchesExact(t *testing.T) {
	ctx := context.Background()
	const warmup, measure = 20_000, 50_000

	sampled := testSystem(t, 2)
	if err := sampled.FastForward(ctx, warmup); err != nil {
		t.Fatal(err)
	}
	sp := Sampling{WindowInstr: 2000, PeriodInstr: 10_000, Windows: 5, WindowWarmupInstr: 500, JitterSeed: 3}
	if sp.TotalInstr() != measure {
		t.Fatalf("plan covers %d instructions, want %d", sp.TotalInstr(), measure)
	}
	_, _, _, cov, err := sampled.RunSampled(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}

	exact := testSystem(t, 2)
	if err := exact.FastForward(ctx, warmup); err != nil {
		t.Fatal(err)
	}
	st, err := exact.RunCtx(ctx, 0, measure)
	if err != nil {
		t.Fatal(err)
	}

	if relErr := math.Abs(cov.L1IMPKI()-st.L1IMPKI()) / st.L1IMPKI(); relErr > 0.02 {
		t.Errorf("L1-I MPKI: coverage %.3f vs exact %.3f (%.2f%% off)", cov.L1IMPKI(), st.L1IMPKI(), relErr*100)
	}
	if relErr := math.Abs(cov.BTBMPKI()-st.BTBMPKI()) / st.BTBMPKI(); relErr > 0.02 {
		t.Errorf("BTB MPKI: coverage %.3f vs exact %.3f (%.2f%% off)", cov.BTBMPKI(), st.BTBMPKI(), relErr*100)
	}
}

func TestRunSampledRejectsBadPlans(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t, 1)
	if _, _, _, _, err := sys.RunSampled(ctx, Sampling{}); err == nil {
		t.Error("zero Sampling accepted")
	}
	bad := Sampling{WindowInstr: 5000, PeriodInstr: 1000, Windows: 2}
	if _, _, _, _, err := sys.RunSampled(ctx, bad); err == nil {
		t.Error("period shorter than window accepted")
	}
}

func TestSkipRecordsRepositionsStreams(t *testing.T) {
	ctx := context.Background()
	warmed := testSystem(t, 2)
	if err := warmed.FastForward(ctx, 5_000); err != nil {
		t.Fatal(err)
	}
	counts := warmed.ConsumedRecords()
	if len(counts) != 2 || counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("consumed counts = %v, want two non-zero entries", counts)
	}

	fresh := testSystem(t, 2)
	if err := fresh.SkipRecords(ctx, counts); err != nil {
		t.Fatal(err)
	}
	if got := fresh.ConsumedRecords(); !reflect.DeepEqual(got, counts) {
		t.Errorf("after skip, consumed = %v, want %v", got, counts)
	}

	if err := fresh.SkipRecords(ctx, []uint64{1}); err == nil {
		t.Error("count/core length mismatch accepted")
	}
}
