package cmp

import (
	"context"
	"fmt"

	"confluence/internal/frontend"
	"confluence/internal/prefetch"
)

// Sampling configures SMARTS-style sampled measurement: Windows detailed
// measurement windows of WindowInstr instructions per core, one per
// PeriodInstr instructions of forward progress, with the gaps covered by
// functional fast-forward (Core.FastStep — architectural and
// history-relevant state evolves, timing does not). WindowWarmupInstr,
// when non-zero, runs that many instructions of detailed simulation
// immediately before each window without measuring them — healing the
// timing-only state fast-forward cannot warm (prefetcher run-ahead,
// in-flight fills) before measurement starts.
//
// The zero value disables sampling (exact mode, the golden anchor).
type Sampling struct {
	WindowInstr       uint64 // detailed instructions measured per window, per core
	PeriodInstr       uint64 // instructions per core between window starts
	Windows           int    // number of measurement windows
	WindowWarmupInstr uint64 // detailed-but-unmeasured instructions before each window

	// JitterSeed, when non-zero, offsets each window pseudo-randomly
	// within its period — a deterministic hash of the seed and the
	// window index, so placement is identical for any worker count —
	// breaking aliasing between the sampling period and periodic
	// structure in the workload. Zero places every window at the start
	// of its period (pure systematic sampling).
	JitterSeed uint64
}

// Enabled reports whether the configuration asks for sampled execution.
func (sp Sampling) Enabled() bool { return sp != Sampling{} }

// autoWindowInstr, autoWarmupInstr, and autoPeriodInstr fix the shape
// of auto-derived plans. The warm-up segment heals a *fixed-length*
// transient — prefetcher run-ahead and in-flight fills that functional
// warming cannot evolve — so it does not scale with the window; the
// window itself carries the measured mass, and the sampling error of
// the aggregate IPC shrinks as 1/sqrt(windows × window), so a large
// window amortizes the warm-up tax instead of paying it more often.
// The period is the empirical sweet spot of the tolerance suite:
// shorter periods buy windows that the warm-up tax eats, and several
// nearby periods (notably 75k) alias with the request structure of the
// synthetic server workloads.
const (
	autoWindowInstr = 6000
	autoWarmupInstr = 3000
	autoPeriodInstr = 60_000
)

// AutoSampling derives a sampling plan for a measure region using
// fixed-shape windows: autoWindowInstr measured instructions behind an
// autoWarmupInstr detailed-but-unmeasured warm-up, one window every
// autoPeriodInstr instructions. Detailed simulation covers 15% of the
// measure region; combined with a fast-forwarded warm-up phase of at
// least half the measure region, the whole run sees a ≥10× reduction
// in detailed-simulated instructions. Window count scales with the
// region so window-to-window variance averages down in the confidence
// intervals. Regions too short for even one shaped window fall back to
// a single window covering everything.
func AutoSampling(measure uint64) Sampling {
	if measure == 0 {
		return Sampling{}
	}
	const perWindow = autoWindowInstr + autoWarmupInstr
	n := measure / autoPeriodInstr
	if n < 1 {
		if measure < perWindow {
			return Sampling{WindowInstr: measure, PeriodInstr: measure, Windows: 1}
		}
		n = 1
	}
	return Sampling{
		WindowInstr:       autoWindowInstr,
		PeriodInstr:       measure / n,
		Windows:           int(n),
		WindowWarmupInstr: autoWarmupInstr,
		JitterSeed:        autoJitterSeed,
	}
}

// autoJitterSeed is the fixed placement seed for auto-derived plans:
// jittered (aliasing-free) yet reproducible run to run.
const autoJitterSeed = 1

// jitterOffset returns the deterministic placement offset for window w
// given room spare instructions in its period (splitmix64 of the seed
// and index, reduced to [0, room]).
func jitterOffset(seed, w, room uint64) uint64 {
	if seed == 0 || room == 0 {
		return 0
	}
	x := seed + (w+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x % (room + 1)
}

// Validate checks an enabled configuration for internal consistency.
func (sp Sampling) Validate() error {
	if !sp.Enabled() {
		return nil
	}
	if sp.WindowInstr == 0 {
		return fmt.Errorf("cmp: sampling window must be at least 1 instruction")
	}
	if sp.Windows < 1 {
		return fmt.Errorf("cmp: sampling needs at least 1 window")
	}
	if sp.PeriodInstr < sp.WindowInstr+sp.WindowWarmupInstr {
		return fmt.Errorf("cmp: sampling period %d shorter than window %d + window warmup %d",
			sp.PeriodInstr, sp.WindowInstr, sp.WindowWarmupInstr)
	}
	return nil
}

// DetailedInstr returns the detailed-simulated instructions per core
// (measured windows plus per-window detailed warm-up).
func (sp Sampling) DetailedInstr() uint64 {
	return uint64(sp.Windows) * (sp.WindowInstr + sp.WindowWarmupInstr)
}

// TotalInstr returns the total instructions advanced per core during
// sampled measurement: every period is covered in full (the last
// window's trailing gap is fast-forwarded too, so the full-coverage
// probe tallies span exactly Windows×PeriodInstr).
func (sp Sampling) TotalInstr() uint64 {
	if sp.Windows < 1 {
		return 0
	}
	return uint64(sp.Windows) * sp.PeriodInstr
}

// FastForward advances every core by approximately n instructions
// through the functional fast-forward path. Shared-state writes apply
// directly in canonical round-robin core order (the exact scheduler),
// so fast-forward is bit-deterministic for any worker count and any K.
func (s *System) FastForward(ctx context.Context, n uint64) error {
	if s.eng == nil {
		s.eng = newEngine(s)
	}
	if n == 0 {
		return nil
	}
	s.eng.setFF(true)
	err := s.eng.phase(ctx, n)
	s.eng.setFF(false)
	return err
}

// setFF flips the engine between detailed and fast-forward stepping.
// Fast-forward always runs under the exact serial weave, so a K>1
// engine's deferral plumbing is rewired for the duration: history
// records go straight to their target and shared-store BTBs apply
// immediately. Logs are empty at every phase boundary (the weave barrier
// drains them), so flipping loses nothing. The bound memory port stays
// installed — FastStep never consults it.
func (e *engine) setFF(on bool) {
	if e.ff == on {
		return
	}
	e.ff = on
	if e.k > 1 {
		for i, c := range e.s.Cores {
			if d := e.recs[i]; d != nil {
				if on {
					c.SetRecorder(d.Target.(frontend.HistoryRecorder))
				} else {
					c.SetRecorder(d)
				}
			}
			if wd := e.weaves[i]; wd != nil {
				wd.SetDeferred(!on)
			}
		}
	}
}

// Coverage is full-region probe accounting for a sampled run: L1-I and
// BTB access/miss tallies summed over every instruction of the measure
// region — detailed segments (window warm-ups and windows, from Stats
// deltas) plus fast-forwarded gaps (from FFCounts deltas). Exact reports
// that no core has a prefetcher wired: the functional path then probes
// the same contents detailed simulation would have evolved (fills come
// only from the demand stream), so the tallies — and the MPKI ratios —
// are exact, not sampled estimates. With a prefetcher, gap probes miss
// where run-ahead would have filled, and the window estimates with their
// confidence intervals are the numbers to trust.
type Coverage struct {
	Instructions    uint64 `json:"instructions"` // summed across cores
	L1IAccesses     uint64 `json:"l1i_accesses"`
	L1IMisses       uint64 `json:"l1i_misses"`
	BTBTakenLookups uint64 `json:"btb_taken_lookups"`
	BTBMisses       uint64 `json:"btb_misses"`
	Exact           bool   `json:"exact"`
}

// L1IMPKI returns full-coverage L1-I misses per kilo-instruction.
func (c *Coverage) L1IMPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.L1IMisses) / float64(c.Instructions) * 1000
}

// BTBMPKI returns full-coverage BTB misses per kilo-instruction.
func (c *Coverage) BTBMPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.BTBMisses) / float64(c.Instructions) * 1000
}

// addStats folds a detailed segment's Stats delta into the coverage.
func (c *Coverage) addStats(d *frontend.Stats) {
	c.Instructions += d.Instructions
	c.L1IAccesses += d.L1IAccesses
	c.L1IMisses += d.L1IMisses
	c.BTBTakenLookups += d.BTBTakenLookups
	c.BTBMisses += d.BTBMisses
}

// addFF folds a fast-forwarded gap's probe delta into the coverage.
func (c *Coverage) addFF(d *frontend.FFCounts) {
	c.Instructions += d.Instructions
	c.L1IAccesses += d.L1IAccesses
	c.L1IMisses += d.L1IMisses
	c.BTBTakenLookups += d.BTBTakenLookups
	c.BTBMisses += d.BTBMisses
}

// prefetcherless reports whether no core has a prefetcher wired (the
// condition under which fast-forward probe tallies are exact). The Null
// prefetcher issues nothing, so it counts as absent.
func (s *System) prefetcherless() bool {
	for _, c := range s.Cores {
		switch c.Prefetcher().(type) {
		case nil, prefetch.Null:
		default:
			return false
		}
	}
	return true
}

// RunSampled performs sampled measurement over an already-warmed system
// (warm the caches first via FastForward, RestoreWarmState, or a
// detailed phase): per window, an optional detailed-but-unmeasured warm
// segment, then a measured detailed window, then fast-forward across the
// rest of the period — including the last window's trailing gap, so the
// coverage tallies span the whole region. Measurement counters reset on
// entry; each window's per-core stat deltas accumulate into the returned
// aggregate, window list, and per-core totals (agg is the in-order sum
// of the window aggregates).
func (s *System) RunSampled(ctx context.Context, sp Sampling) (agg *frontend.Stats, windows []frontend.Stats, perCore []*frontend.Stats, cov *Coverage, err error) {
	if err := sp.Validate(); err != nil {
		return nil, nil, nil, nil, err
	}
	if !sp.Enabled() {
		return nil, nil, nil, nil, fmt.Errorf("cmp: RunSampled with zero Sampling")
	}
	if s.eng == nil {
		s.eng = newEngine(s)
	}
	for _, c := range s.Cores {
		c.ResetStats()
	}
	if s.Hier != nil {
		s.Hier.ResetStats()
	}
	agg = &frontend.Stats{}
	perCore = make([]*frontend.Stats, len(s.Cores))
	for i := range perCore {
		perCore[i] = &frontend.Stats{}
	}
	cov = &Coverage{Exact: s.prefetcherless()}
	ffBase := make([]frontend.FFCounts, len(s.Cores))
	for i, c := range s.Cores {
		ffBase[i] = c.FFCounts()
	}
	windows = make([]frontend.Stats, 0, sp.Windows)
	pre := make([]frontend.Stats, len(s.Cores))
	preWarm := make([]frontend.Stats, len(s.Cores))
	room := sp.PeriodInstr - sp.WindowInstr - sp.WindowWarmupInstr
	for w := 0; w < sp.Windows; w++ {
		off := jitterOffset(sp.JitterSeed, uint64(w), room)
		if off > 0 {
			if err := s.FastForward(ctx, off); err != nil {
				return nil, nil, nil, nil, err
			}
		}
		for i, c := range s.Cores {
			preWarm[i] = *c.Stats()
		}
		if sp.WindowWarmupInstr > 0 {
			if err := s.eng.phase(ctx, sp.WindowWarmupInstr); err != nil {
				return nil, nil, nil, nil, err
			}
		}
		for i, c := range s.Cores {
			pre[i] = *c.Stats()
		}
		if err := s.eng.phase(ctx, sp.WindowInstr); err != nil {
			return nil, nil, nil, nil, err
		}
		var wagg frontend.Stats
		for i, c := range s.Cores {
			d := *c.Stats()
			d.Sub(&pre[i])
			perCore[i].Add(&d)
			wagg.Add(&d)
			// The whole detailed segment — warm-up included — counts toward
			// full coverage, though only the window is measured.
			seg := *c.Stats()
			seg.Sub(&preWarm[i])
			cov.addStats(&seg)
		}
		windows = append(windows, wagg)
		agg.Add(&wagg)
		if rest := room - off; rest > 0 {
			if err := s.FastForward(ctx, rest); err != nil {
				return nil, nil, nil, nil, err
			}
		}
	}
	for i, c := range s.Cores {
		d := c.FFCounts()
		d.Sub(&ffBase[i])
		cov.addFF(&d)
	}
	return agg, windows, perCore, cov, nil
}

// ConsumedRecords returns a copy of the per-core count of stream records
// consumed so far (stepped detailed, stepped fast-forward, or skipped) —
// the stream position a warm-up snapshot captures.
func (s *System) ConsumedRecords() []uint64 {
	if s.eng == nil {
		s.eng = newEngine(s)
	}
	out := make([]uint64, len(s.eng.prog))
	for i := range s.eng.prog {
		out[i] = s.eng.prog[i].recs
	}
	return out
}

// SkipRecords advances each core's record stream past counts[i] records
// by decoding and discarding them — no simulation state moves. Restoring
// a warm-up snapshot uses it to reposition the sources to the consumed
// count the snapshot recorded: the next record each core steps is
// bit-identical to the one a live warm-up run would step next (the
// decode-ahead queues make the skip invisible, exactly as they make
// phase boundaries invisible).
func (s *System) SkipRecords(ctx context.Context, counts []uint64) error {
	if len(counts) != len(s.Cores) {
		return fmt.Errorf("cmp: SkipRecords got %d counts for %d cores", len(counts), len(s.Cores))
	}
	if s.eng == nil {
		s.eng = newEngine(s)
	}
	e := s.eng
	for c := range s.Cores {
		need := counts[c]
		q := &e.q[c]
		for need > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			if q.n == 0 {
				e.refill(c)
				if q.n == 0 {
					return e.dryErr(c)
				}
			}
			drop := uint64(q.n)
			if drop > need {
				drop = need
			}
			q.head += int(drop)
			q.n -= int(drop)
			e.prog[c].recs += drop
			need -= drop
		}
	}
	return nil
}
