package cmp

import (
	"testing"

	"confluence/internal/btb"
	"confluence/internal/frontend"
	"confluence/internal/mem"
	"confluence/internal/prefetch"
	"confluence/internal/synth"
	"confluence/internal/trace"
)

func testSystem(t testing.TB, cores int) *System {
	t.Helper()
	p := synth.OLTPDB2()
	p.Functions = 320
	p.RequestTypes = 4
	p.Concurrency = 4
	p.Seed = 55
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	hier := mem.New(mem.DefaultConfig(), 0)
	var cs []*frontend.Core
	var es []trace.Source
	for i := 0; i < cores; i++ {
		cfg := frontend.DefaultConfig()
		cfg.CoreID = i
		cfg.BTB = btb.NewConventional("t", 256, 4, 64)
		cfg.Prefetcher = prefetch.Null{}
		cfg.Hier = hier
		cfg.Prog = w.Prog
		cs = append(cs, frontend.NewCore(cfg))
		es = append(es, trace.NewExecutor(w, uint64(i+1)))
	}
	sys, err := New(cs, es, hier)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func mustRun(t *testing.T, sys *System, warmup, measure uint64) *frontend.Stats {
	t.Helper()
	st, err := sys.Run(warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRunReachesInstructionTargets(t *testing.T) {
	sys := testSystem(t, 3)
	st := mustRun(t, sys, 20_000, 50_000)
	// Aggregate measured instructions ≈ cores × measure (over-run bounded
	// by one basic block per core).
	if st.Instructions < 3*50_000 || st.Instructions > 3*50_000+3*64 {
		t.Errorf("measured %d instructions, want ≈ %d", st.Instructions, 3*50_000)
	}
	if st.Cycles <= 0 || st.IPC() <= 0 {
		t.Error("no cycles accumulated")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	cold := testSystem(t, 2)
	coldStats := mustRun(t, cold, 0, 60_000)

	warm := testSystem(t, 2)
	warmStats := mustRun(t, warm, 60_000, 60_000)

	// Warmup must strictly reduce measured L1-I misses (cold-start misses
	// fall outside the measurement window).
	if warmStats.L1IMPKI() >= coldStats.L1IMPKI() {
		t.Errorf("warmup did not help: cold %.1f, warm %.1f MPKI",
			coldStats.L1IMPKI(), warmStats.L1IMPKI())
	}
}

func TestPerCoreStats(t *testing.T) {
	sys := testSystem(t, 2)
	mustRun(t, sys, 1000, 10_000)
	per := sys.PerCoreStats()
	if len(per) != 2 {
		t.Fatalf("PerCoreStats returned %d", len(per))
	}
	var sum uint64
	for _, st := range per {
		if st.Instructions < 10_000 {
			t.Errorf("core measured only %d instructions", st.Instructions)
		}
		sum += st.Instructions
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := mustRun(t, testSystem(t, 2), 10_000, 30_000)
	b := mustRun(t, testSystem(t, 2), 10_000, 30_000)
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.BTBMisses != b.BTBMisses {
		t.Errorf("identical systems diverged: %v/%v vs %v/%v",
			a.Cycles, a.BTBMisses, b.Cycles, b.BTBMisses)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	sys := testSystem(t, 2)
	if _, err := New(sys.Cores, sys.Sources[:1], sys.Hier); err == nil {
		t.Error("mismatched cores/executors accepted")
	}
}

func TestZeroPhases(t *testing.T) {
	sys := testSystem(t, 1)
	st := mustRun(t, sys, 0, 0)
	if st.Instructions != 0 {
		t.Errorf("zero-length run measured %d instructions", st.Instructions)
	}
}

// TestRunPropagatesSourceErrors: a finite source exhausting mid-run must
// abort the simulation with an error, not spin or fabricate records.
func TestRunPropagatesSourceErrors(t *testing.T) {
	sys := testSystem(t, 2)
	live := sys.Sources[0]
	short, err := trace.RecordFrom(live, 50)
	if err != nil {
		t.Fatal(err)
	}
	short.Loop = false // exhausts after 50 basic blocks
	if err := short.Reset(); err != nil {
		t.Fatal(err)
	}
	sys.Sources[0] = short
	if _, err := sys.Run(0, 100_000); err == nil {
		t.Fatal("exhausted source did not fail the run")
	}
}

// TestSourcesInterchangeable: replaying a recorded prefix of the executors
// through MemSources yields bit-identical stats to the live run — the
// Source seam does not perturb timing.
func TestSourcesInterchangeable(t *testing.T) {
	live := testSystem(t, 2)
	liveStats := mustRun(t, live, 5_000, 20_000)

	recorded := testSystem(t, 2)
	for i, src := range recorded.Sources {
		m, err := trace.RecordFrom(src, 40_000) // ≥ warmup+measure basic blocks
		if err != nil {
			t.Fatal(err)
		}
		recorded.Sources[i] = m
	}
	recStats := mustRun(t, recorded, 5_000, 20_000)
	if *liveStats != *recStats {
		t.Errorf("recorded replay diverged from live executors:\n live %+v\n rec  %+v", *liveStats, *recStats)
	}
}
