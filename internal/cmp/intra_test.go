package cmp

import (
	"testing"

	"confluence/internal/isa"
	"confluence/internal/trace"
)

// intraSystem builds testSystem-shaped systems with an intra configuration.
func intraSystem(t *testing.T, cores, workers, epoch int) *System {
	t.Helper()
	sys := testSystem(t, cores)
	sys.SetIntra(workers, epoch)
	return sys
}

// TestIntraExactIdentity: at K=1 the engine must be bit-identical to the
// serial simulator for any worker count, at the cmp layer too.
func TestIntraExactIdentity(t *testing.T) {
	serial := mustRun(t, intraSystem(t, 3, 1, 1), 10_000, 30_000)
	for _, workers := range []int{2, 8} {
		got := mustRun(t, intraSystem(t, 3, workers, 1), 10_000, 30_000)
		if *serial != *got {
			t.Errorf("workers=%d diverged from serial:\n serial %+v\n got    %+v", workers, *serial, *got)
		}
	}
}

// TestIntraBoundDeterminism: at K>1 the approximation is bit-deterministic
// across worker counts.
func TestIntraBoundDeterminism(t *testing.T) {
	one := mustRun(t, intraSystem(t, 3, 1, 8), 10_000, 30_000)
	for _, workers := range []int{2, 8} {
		got := mustRun(t, intraSystem(t, 3, workers, 8), 10_000, 30_000)
		if *one != *got {
			t.Errorf("K=8 workers=%d diverged from K=8 workers=1", workers)
		}
	}
}

// TestIntraSourceErrors: a finite source exhausting mid-run must abort the
// run in every engine mode, and decode-ahead must not surface an EOF the
// serial simulator would never have needed.
func TestIntraSourceErrors(t *testing.T) {
	for _, mode := range []struct {
		name           string
		workers, epoch int
		sufficient     bool
	}{
		{"exact-exhausted", 2, 1, false},
		{"bound-exhausted", 2, 8, false},
		// A target inside the finite source's budget must run clean: the
		// EOF that decode-ahead (batch 64) reaches beyond the target stays
		// invisible, exactly as in the serial simulator.
		{"exact-sufficient", 2, 1, true},
		{"bound-sufficient", 2, 8, true},
	} {
		sys := intraSystem(t, 2, mode.workers, mode.epoch)
		live := sys.Sources[0]
		short, err := trace.RecordFrom(live, 50)
		if err != nil {
			t.Fatal(err)
		}
		var budget uint64
		for _, r := range short.Recs {
			budget += uint64(r.N)
		}
		short.Loop = false
		if err := short.Reset(); err != nil {
			t.Fatal(err)
		}
		sys.Sources[0] = short
		instr := budget * 4 // overshoots the finite source
		if mode.sufficient {
			instr = budget / 2
		}
		_, err = sys.Run(0, instr)
		if !mode.sufficient && err == nil {
			t.Errorf("%s: exhausted source did not fail the run", mode.name)
		}
		if mode.sufficient && err != nil {
			t.Errorf("%s: in-bounds run failed: %v", mode.name, err)
		}
	}
}

// makeStragglerRecords builds a looping block stream advancing n
// instructions per record over a fixed 256-block footprint.
func makeStragglerRecords(n int) []trace.Record {
	const blocks = 256
	recs := make([]trace.Record, blocks)
	base := isa.Addr(0x40000)
	for i := range recs {
		start := base + isa.Addr(i)*isa.BlockBytes
		next := base + isa.Addr((i+1)%blocks)*isa.BlockBytes
		recs[i] = trace.Record{Start: start, N: n, Next: next}
	}
	return recs
}

// stragglerSystem builds a CMP where core 0 advances 4 instructions per
// block while every other core advances 32: the fast cores hit the phase
// target early and core 0 straggles for ~8x as many rounds.
func stragglerSystem(b *testing.B, cores int) *System {
	b.Helper()
	sys := testSystem(b, cores)
	for i := range sys.Sources {
		n := 32
		if i == 0 {
			n = 4
		}
		sys.Sources[i] = trace.NewMemSource(makeStragglerRecords(n), true)
	}
	return sys
}

// BenchmarkPhaseStraggler measures the phase loop's straggler overhead: the
// compacted active-core list drops finished cores, so a lone straggler
// costs O(1) per block instead of O(cores) re-checks per turn.
func BenchmarkPhaseStraggler(b *testing.B) {
	sys := stragglerSystem(b, 16)
	if _, err := sys.Run(0, 10_000); err != nil { // prime caches & engine
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(0, 50_000); err != nil {
			b.Fatal(err)
		}
	}
}
