// Package cmp runs a multi-core simulation: N cores executing the same
// server workload (distinct request interleavings), sharing the LLC and any
// virtualized predictor metadata, in the round-robin trace-interleaved
// style of the paper's methodology (§4.1).
//
// The cores' instruction streams come from trace.Sources, so the same
// timing model replays live synthetic executors, captured trace files, or
// recorded in-memory streams interchangeably.
//
// # Bound-weave epochs
//
// Stepping is organized in epochs with two phases, in the style of ZSim's
// bound-weave parallelism. In the bound phase, each core independently
// advances against its private structures — L1-I, BTB, BPU, prefetcher
// window — with every shared-structure operation (LLC lookups/fills, SHIFT
// history records, PhantomBTB group-store traffic) answered from the
// epoch-start snapshot and buffered into a per-core ordered log. At the
// epoch barrier (the weave), the logs are applied in canonical core order,
// so results are deterministic for any worker count by construction.
//
// K (SetIntra's epochBlocks) is the epoch depth in basic blocks per core:
//
//   - K=1 is the exact mode and the default: the weave executes the full
//     steps serially in the canonical round-robin order — exactly the
//     serial interleaving — while the bound phase is reduced to what is
//     provably timing-independent, batched record decode (trace.Source
//     streams take no feedback from the timing model). Results are
//     bit-identical to the serial simulator for any worker count.
//   - K>1 is a documented approximation: cores advance up to K blocks
//     against shared state frozen at the epoch boundary, so cross-core
//     timing feedback (another core's LLC fill, a generator's history
//     records) arrives one epoch late. Within an epoch the apply order is
//     canonical, so the mode is still bit-deterministic across worker
//     counts — just not bit-identical to K=1.
package cmp

import (
	"context"
	"fmt"
	"io"

	"confluence/internal/frontend"
	"confluence/internal/mem"
	"confluence/internal/shift"
	"confluence/internal/trace"
)

// System is an assembled CMP: per-core frontends fed by per-core record
// sources over a shared memory hierarchy.
type System struct {
	Cores   []*frontend.Core
	Sources []trace.Source
	Hier    *mem.Hierarchy

	intraWorkers int
	epochBlocks  int
	eng          *engine // built lazily at first Run; persists across phases
}

// New wires a system; len(cores) must equal len(srcs).
func New(cores []*frontend.Core, srcs []trace.Source, hier *mem.Hierarchy) (*System, error) {
	if len(cores) == 0 || len(cores) != len(srcs) {
		return nil, fmt.Errorf("cmp: %d cores vs %d sources", len(cores), len(srcs))
	}
	return &System{Cores: cores, Sources: srcs, Hier: hier}, nil
}

// SetIntra configures in-run bound-weave parallelism: workers bounds the
// goroutines stepping cores inside this one simulation, epochBlocks is K,
// the per-core epoch depth (see the package comment). Zero values mean 1.
// The defaults (1, 1) are the exact serial simulator. SetIntra must be
// called before the first Run; once the epoch engine exists the
// configuration is frozen and later calls are ignored.
func (s *System) SetIntra(workers, epochBlocks int) {
	if s.eng != nil {
		return
	}
	s.intraWorkers = workers
	s.epochBlocks = epochBlocks
}

// Run simulates warmup+measure instructions per core (round-robin, one
// basic block per core per turn). Warmup populates caches, predictors, and
// shared history with statistics frozen; measurement counters are reset at
// the boundary. It returns the aggregate measured stats. A source failure
// (a corrupt or exhausted finite trace) aborts the run.
func (s *System) Run(warmup, measure uint64) (*frontend.Stats, error) {
	return s.RunCtx(context.Background(), warmup, measure)
}

// RunCtx is Run honoring mid-run cancellation: the epoch engine polls ctx
// at every epoch barrier (a few dozen basic blocks per core at most), so a
// cancelled simulation returns ctx.Err() promptly instead of running to
// its instruction target. The poll reads no simulated state and feeds
// nothing back into the timing model, so a run that completes is
// bit-identical whether or not a context is attached.
func (s *System) RunCtx(ctx context.Context, warmup, measure uint64) (*frontend.Stats, error) {
	if s.eng == nil {
		s.eng = newEngine(s)
	}
	if err := s.phase(ctx, warmup); err != nil {
		return nil, err
	}
	for _, c := range s.Cores {
		c.ResetStats()
	}
	if s.Hier != nil {
		s.Hier.ResetStats()
	}
	if err := s.phase(ctx, measure); err != nil {
		return nil, err
	}

	var agg frontend.Stats
	for _, c := range s.Cores {
		agg.Add(c.Stats())
	}
	return &agg, nil
}

// phase advances every core by approximately n instructions through the
// epoch engine.
func (s *System) phase(ctx context.Context, n uint64) error {
	if n == 0 {
		return nil
	}
	return s.eng.phase(ctx, n)
}

// decodeBatch is the per-core record decode-ahead depth: one NextBatch call
// per decodeBatch basic blocks amortizes the Source interface dispatch (and
// the file reader's per-record bounds checks) even in serial mode. Sources
// take no feedback from the timing model, so decode-ahead is invisible to
// the simulation.
const decodeBatch = 64

// coreQ is one core's decoded-record queue. buf[head:head+n] are the
// records decoded but not yet stepped; they persist across phases (warmup →
// measure), so decode-ahead never perturbs where a phase boundary falls in
// the stream. err is a deferred source error: a finite source's io.EOF (or
// a corruption) is surfaced only if the core still needs records, matching
// the serial semantics where a source failure beyond the phase target is
// never observed.
type coreQ struct {
	buf     []trace.Record
	head, n int
	err     error
}

// coreProg is one core's phase-progress record. instr counts instructions
// advanced across all phases (detailed and fast-forward) since engine
// creation; phase targets are expressed against it, decoupled from
// Stats().Instructions because fast-forward moves no stats counters. recs
// counts stream records consumed (stepped or skipped) — the stream
// position a warm-up snapshot records so a restored run can reposition its
// sources (see SkipRecords).
type coreProg struct {
	instr  uint64
	recs   uint64
	target uint64
}

// weaveDesign is implemented by BTB designs backed by cross-core shared
// state (PhantomBTB's group store): SetDeferred(true) switches them to
// frozen reads plus logged writes for bound phases, ApplyLog replays a
// core's log at the weave barrier.
type weaveDesign interface {
	SetDeferred(bool)
	ApplyLog()
}

// engine is the bound-weave epoch scheduler for one System (see the
// package comment for the model).
type engine struct {
	s       *System
	workers int
	k       int // epoch depth in blocks; 1 = exact mode

	// ff switches phases to the functional fast-forward path: cores
	// advance through Core.FastStep instead of Core.Step, always under
	// the exact (serial-weave) scheduler regardless of K — FastStep's
	// shared-state writes apply directly, in canonical order, so no
	// deferral is needed and results are worker-count independent by the
	// same argument as K=1. See System.FastForward.
	ff bool

	q      []coreQ
	active []int // compacted list of cores still below target

	// prog tracks per-core phase progress. instr and target are kept
	// together with recs in one small struct so the per-record
	// bookkeeping in the step loops is a single indexed access on one
	// cache line, not three.
	prog []coreProg

	// K>1 deferral plumbing, indexed by core (nil entries where unused).
	ports  []*mem.BoundPort
	recs   []*shift.Deferred
	weaves []weaveDesign
}

// newEngine builds the engine and, for K>1, rewires every core's shared
// touch points (memory port, history recorder, shared-store BTB) to their
// probe-and-log forms.
func newEngine(s *System) *engine {
	w, k := s.intraWorkers, s.epochBlocks
	if w < 1 {
		w = 1
	}
	if k < 1 {
		k = 1
	}
	e := &engine{s: s, workers: w, k: k}
	qcap := decodeBatch
	if k > qcap {
		qcap = k
	}
	e.q = make([]coreQ, len(s.Cores))
	for i := range e.q {
		e.q[i].buf = make([]trace.Record, qcap)
	}
	e.active = make([]int, 0, len(s.Cores))
	e.prog = make([]coreProg, len(s.Cores))
	if k > 1 {
		e.ports = make([]*mem.BoundPort, len(s.Cores))
		e.recs = make([]*shift.Deferred, len(s.Cores))
		e.weaves = make([]weaveDesign, len(s.Cores))
		for i, c := range s.Cores {
			if s.Hier != nil {
				e.ports[i] = mem.NewBoundPort(s.Hier)
				c.SetMemPort(e.ports[i])
			}
			if r := c.Recorder(); r != nil {
				d := &shift.Deferred{Target: r}
				c.SetRecorder(d)
				e.recs[i] = d
			}
			if wd, ok := c.BTB().(weaveDesign); ok {
				wd.SetDeferred(true)
				e.weaves[i] = wd
			}
		}
	}
	return e
}

// phase advances every core by approximately n instructions.
func (e *engine) phase(ctx context.Context, n uint64) error {
	e.active = e.active[:0]
	for i := range e.s.Cores {
		e.prog[i].target = e.prog[i].instr + n
		e.active = append(e.active, i)
	}
	if e.k == 1 || e.ff {
		return e.phaseExact(ctx)
	}
	return e.phaseBound(ctx)
}

// refill tops core c's queue up from its source. One NextBatch call
// suffices: the batch only comes back short on an error, which is deferred
// in q.err until (unless) the core actually runs dry.
func (e *engine) refill(c int) {
	q := &e.q[c]
	if q.err != nil || q.n == len(q.buf) {
		return
	}
	if q.head > 0 {
		copy(q.buf, q.buf[q.head:q.head+q.n])
		q.head = 0
	}
	k, err := e.s.Sources[c].NextBatch(q.buf[q.n:])
	q.n += k
	q.err = err
}

// dryErr returns the error to surface for a core that is below target with
// an empty queue.
func (e *engine) dryErr(c int) error {
	err := e.q[c].err
	if err == nil {
		err = io.ErrUnexpectedEOF // cannot happen: refill either fills or errors
	}
	return fmt.Errorf("cmp: core %d source: %w", c, err)
}

// phaseExact is the K=1 engine: the bound phase batch-decodes every active
// core's stream in parallel (the only work with no shared-state
// dependence), and the weave executes the full steps serially in canonical
// round-robin order — bit-identical to the serial simulator by
// construction, for any worker count.
func (e *engine) phaseExact(ctx context.Context) error {
	p := e.startPool(e.refill)
	defer p.stop()
	for len(e.active) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.barrier(p, e.refill)
		// An epoch's round count is the shortest active queue: every round
		// steps each remaining core exactly once, in core order, exactly as
		// the serial loop interleaves them.
		rounds := -1
		for _, c := range e.active {
			if e.q[c].n < rounds || rounds < 0 {
				rounds = e.q[c].n
			}
		}
		if rounds == 0 {
			for _, c := range e.active {
				if e.q[c].n == 0 {
					return e.dryErr(c)
				}
			}
		}
		// Slice headers and the mode flag are loop-invariant, but the
		// compiler cannot prove that across the Step call — hoisting them
		// into locals keeps the detailed inner loop as tight as it was
		// before the fast-forward path and progress bookkeeping existed.
		ff, cores, qs, prog := e.ff, e.s.Cores, e.q, e.prog
		for r := 0; r < rounds && len(e.active) > 0; r++ {
			w := 0
			for _, c := range e.active {
				q := &qs[c]
				rec := &q.buf[q.head]
				if ff {
					cores[c].FastStep(rec)
				} else {
					cores[c].Step(rec)
				}
				q.head++
				q.n--
				pg := &prog[c]
				pg.instr += uint64(rec.N)
				pg.recs++
				if pg.instr < pg.target {
					e.active[w] = c
					w++
				}
			}
			e.active = e.active[:w]
		}
	}
	return nil
}

// phaseBound is the K>1 engine: the bound phase steps each active core up
// to K blocks against frozen shared state (logging shared ops), the weave
// applies the logs in canonical core order and compacts the active list.
func (e *engine) phaseBound(ctx context.Context) error {
	p := e.startPool(e.boundStep)
	defer p.stop()
	for len(e.active) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.barrier(p, e.boundStep)
		var firstDry = -1
		w := 0
		for _, c := range e.active {
			// Apply in canonical order even for cores retiring this epoch:
			// their final ops are part of the epoch's shared-state evolution.
			if p := e.ports[c]; p != nil {
				p.Apply()
			}
			if d := e.recs[c]; d != nil {
				d.Apply()
			}
			if wd := e.weaves[c]; wd != nil {
				wd.ApplyLog()
			}
			if e.prog[c].instr >= e.prog[c].target {
				continue
			}
			if e.q[c].n == 0 && e.q[c].err != nil && firstDry < 0 {
				firstDry = c
			}
			e.active[w] = c
			w++
		}
		e.active = e.active[:w]
		if firstDry >= 0 {
			return e.dryErr(firstDry)
		}
	}
	return nil
}

// boundStep is one core's bound phase: top up the decode queue, then step
// up to K blocks. All shared reads answer from the epoch-start snapshot;
// all shared writes land in this core's logs. Runs concurrently across
// cores — it touches only core-private state, this core's queue/logs, and
// frozen shared structures.
func (e *engine) boundStep(c int) {
	e.refill(c)
	q := &e.q[c]
	core := e.s.Cores[c]
	pg := &e.prog[c]
	for i := 0; i < e.k; i++ {
		if q.n == 0 || pg.instr >= pg.target {
			return
		}
		rec := &q.buf[q.head]
		core.Step(rec)
		pg.instr += uint64(rec.N)
		pg.recs++
		q.head++
		q.n--
	}
}

// pool runs bound-phase jobs on persistent worker goroutines for the
// duration of one phase (workers idle between epoch barriers instead of
// respawning — epochs can be as small as K blocks per core). Each core is
// handed to exactly one worker per epoch, and the barrier orders every job
// before the weave reads its results, so jobs need no locking.
type pool struct {
	jobs chan int
	done chan struct{}
}

// startPool launches min(workers, cores) workers running job, or returns
// nil when the engine is single-threaded (callers then run jobs inline).
func (e *engine) startPool(job func(core int)) *pool {
	n := len(e.s.Cores)
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		return nil
	}
	p := &pool{jobs: make(chan int, n), done: make(chan struct{}, n)}
	for i := 0; i < w; i++ {
		//confluence:allow baregoroutine the epoch engine's bound phase: per-core op logs are applied at the weave barrier in canonical core order, so results are independent of goroutine scheduling
		go func() {
			for c := range p.jobs {
				job(c)
				p.done <- struct{}{}
			}
		}()
	}
	return p
}

// barrier runs one epoch's jobs for the given cores and waits for all of
// them; inline on the calling goroutine when the pool is nil.
func (e *engine) barrier(p *pool, job func(core int)) {
	if p == nil {
		for _, c := range e.active {
			job(c)
		}
		return
	}
	for _, c := range e.active {
		p.jobs <- c
	}
	for range e.active {
		<-p.done
	}
}

// stop terminates the pool's workers; safe on a nil pool.
func (p *pool) stop() {
	if p != nil {
		close(p.jobs)
	}
}

// Close releases sources holding external resources (trace files); the
// synthetic executors' Close-less sources are unaffected.
func (s *System) Close() error {
	var first error
	for _, src := range s.Sources {
		if c, ok := src.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// PerCoreStats returns each core's measured stats (diagnostics). The
// pointers alias the live cores; use PerCoreSnapshot for results that
// outlive the system.
func (s *System) PerCoreStats() []*frontend.Stats {
	out := make([]*frontend.Stats, len(s.Cores))
	for i, c := range s.Cores {
		out[i] = c.Stats()
	}
	return out
}

// PerCoreSnapshot returns a copy of each core's measured stats, detached
// from the live cores (safe to retain after Close). The aggregate Run
// returns is the in-order sum of exactly these snapshots.
func (s *System) PerCoreSnapshot() []*frontend.Stats {
	out := make([]*frontend.Stats, len(s.Cores))
	for i, c := range s.Cores {
		st := *c.Stats()
		out[i] = &st
	}
	return out
}
