// Package cmp runs a multi-core simulation: N cores executing the same
// server workload (distinct request interleavings), sharing the LLC and any
// virtualized predictor metadata, in the round-robin trace-interleaved
// style of the paper's methodology (§4.1).
//
// The cores' instruction streams come from trace.Sources, so the same
// timing model replays live synthetic executors, captured trace files, or
// recorded in-memory streams interchangeably.
package cmp

import (
	"fmt"
	"io"

	"confluence/internal/frontend"
	"confluence/internal/mem"
	"confluence/internal/trace"
)

// System is an assembled CMP: per-core frontends fed by per-core record
// sources over a shared memory hierarchy.
type System struct {
	Cores   []*frontend.Core
	Sources []trace.Source
	Hier    *mem.Hierarchy
}

// New wires a system; len(cores) must equal len(srcs).
func New(cores []*frontend.Core, srcs []trace.Source, hier *mem.Hierarchy) (*System, error) {
	if len(cores) == 0 || len(cores) != len(srcs) {
		return nil, fmt.Errorf("cmp: %d cores vs %d sources", len(cores), len(srcs))
	}
	return &System{Cores: cores, Sources: srcs, Hier: hier}, nil
}

// Run simulates warmup+measure instructions per core (round-robin, one
// basic block per core per turn). Warmup populates caches, predictors, and
// shared history with statistics frozen; measurement counters are reset at
// the boundary. It returns the aggregate measured stats. A source failure
// (a corrupt or exhausted finite trace) aborts the run.
func (s *System) Run(warmup, measure uint64) (*frontend.Stats, error) {
	if err := s.phase(warmup); err != nil {
		return nil, err
	}
	for _, c := range s.Cores {
		c.ResetStats()
	}
	if s.Hier != nil {
		s.Hier.ResetStats()
	}
	if err := s.phase(measure); err != nil {
		return nil, err
	}

	var agg frontend.Stats
	for _, c := range s.Cores {
		agg.Add(c.Stats())
	}
	return &agg, nil
}

// phase advances every core by approximately n instructions.
func (s *System) phase(n uint64) error {
	if n == 0 {
		return nil
	}
	var rec trace.Record
	targets := make([]uint64, len(s.Cores))
	for i, c := range s.Cores {
		targets[i] = c.Stats().Instructions + n
	}
	for {
		done := true
		for i, c := range s.Cores {
			if c.Stats().Instructions >= targets[i] {
				continue
			}
			done = false
			if err := s.Sources[i].Next(&rec); err != nil {
				return fmt.Errorf("cmp: core %d source: %w", i, err)
			}
			c.Step(&rec)
		}
		if done {
			return nil
		}
	}
}

// Close releases sources holding external resources (trace files); the
// synthetic executors' Close-less sources are unaffected.
func (s *System) Close() error {
	var first error
	for _, src := range s.Sources {
		if c, ok := src.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// PerCoreStats returns each core's measured stats (diagnostics). The
// pointers alias the live cores; use PerCoreSnapshot for results that
// outlive the system.
func (s *System) PerCoreStats() []*frontend.Stats {
	out := make([]*frontend.Stats, len(s.Cores))
	for i, c := range s.Cores {
		out[i] = c.Stats()
	}
	return out
}

// PerCoreSnapshot returns a copy of each core's measured stats, detached
// from the live cores (safe to retain after Close). The aggregate Run
// returns is the in-order sum of exactly these snapshots.
func (s *System) PerCoreSnapshot() []*frontend.Stats {
	out := make([]*frontend.Stats, len(s.Cores))
	for i, c := range s.Cores {
		st := *c.Stats()
		out[i] = &st
	}
	return out
}
