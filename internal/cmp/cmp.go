// Package cmp runs a multi-core simulation: N cores executing the same
// server workload (distinct request interleavings), sharing the LLC and any
// virtualized predictor metadata, in the round-robin trace-interleaved
// style of the paper's methodology (§4.1).
package cmp

import (
	"fmt"

	"confluence/internal/frontend"
	"confluence/internal/mem"
	"confluence/internal/trace"
)

// System is an assembled CMP: per-core frontends fed by per-core executors
// over a shared memory hierarchy.
type System struct {
	Cores []*frontend.Core
	Execs []*trace.Executor
	Hier  *mem.Hierarchy
}

// New wires a system; len(cores) must equal len(execs).
func New(cores []*frontend.Core, execs []*trace.Executor, hier *mem.Hierarchy) (*System, error) {
	if len(cores) == 0 || len(cores) != len(execs) {
		return nil, fmt.Errorf("cmp: %d cores vs %d executors", len(cores), len(execs))
	}
	return &System{Cores: cores, Execs: execs, Hier: hier}, nil
}

// Run simulates warmup+measure instructions per core (round-robin, one
// basic block per core per turn). Warmup populates caches, predictors, and
// shared history with statistics frozen; measurement counters are reset at
// the boundary. It returns the aggregate measured stats.
func (s *System) Run(warmup, measure uint64) *frontend.Stats {
	s.phase(warmup)
	for _, c := range s.Cores {
		c.ResetStats()
	}
	if s.Hier != nil {
		s.Hier.ResetStats()
	}
	s.phase(measure)

	var agg frontend.Stats
	for _, c := range s.Cores {
		agg.Add(c.Stats())
	}
	return &agg
}

// phase advances every core by approximately n instructions.
func (s *System) phase(n uint64) {
	if n == 0 {
		return
	}
	var rec trace.Record
	targets := make([]uint64, len(s.Cores))
	for i, c := range s.Cores {
		targets[i] = c.Stats().Instructions + n
	}
	for {
		done := true
		for i, c := range s.Cores {
			if c.Stats().Instructions >= targets[i] {
				continue
			}
			done = false
			s.Execs[i].Next(&rec)
			c.Step(&rec)
		}
		if done {
			return
		}
	}
}

// PerCoreStats returns each core's measured stats (diagnostics).
func (s *System) PerCoreStats() []*frontend.Stats {
	out := make([]*frontend.Stats, len(s.Cores))
	for i, c := range s.Cores {
		out[i] = c.Stats()
	}
	return out
}
