package btb

import (
	"testing"

	"confluence/internal/isa"
	"confluence/internal/trace"
)

func takenBranch(pc isa.Addr, kind isa.BranchKind, target isa.Addr) trace.BranchInfo {
	return trace.BranchInfo{PC: pc, Kind: kind, Taken: true, Target: target}
}

func TestConventionalAllocatesOnTakenOnly(t *testing.T) {
	c := NewConventional("t", 64, 4, 0)
	bb := isa.Addr(0x1000)
	brPC := bb + 8
	// Not-taken resolution must not allocate.
	c.Resolve(0, bb, 3, trace.BranchInfo{PC: brPC, Kind: isa.BrCond, Taken: false, Target: 0x2000})
	if res := c.Lookup(0, bb, brPC); res.Hit {
		t.Error("not-taken branch allocated an entry")
	}
	c.Resolve(0, bb, 3, takenBranch(brPC, isa.BrCond, 0x2000))
	res := c.Lookup(0, bb, brPC)
	if !res.Hit {
		t.Fatal("taken branch did not allocate")
	}
	if res.Entry.Target != 0x2000 || res.Entry.Kind != isa.BrCond || res.Entry.FallN != 3 {
		t.Errorf("entry = %+v", res.Entry)
	}
}

func TestConventionalVictimBuffer(t *testing.T) {
	c := NewConventional("t", 1, 1, 4) // 1-entry main + 4-entry victim
	a, b := isa.Addr(0x1000), isa.Addr(0x2000)
	c.Resolve(0, a, 2, takenBranch(a+4, isa.BrUncond, 0x3000))
	c.Resolve(0, b, 2, takenBranch(b+4, isa.BrUncond, 0x4000))
	// a was evicted to the victim buffer; looking it up promotes it back.
	if res := c.Lookup(0, a, a+4); !res.Hit {
		t.Fatal("victim buffer did not retain the evicted entry")
	}
	// And b is now the victim.
	if res := c.Lookup(0, b, b+4); !res.Hit {
		t.Fatal("promoted entry displaced b out of reach")
	}
}

func TestConventionalNoVictim(t *testing.T) {
	c := NewConventional("t", 1, 1, 0)
	a, b := isa.Addr(0x1000), isa.Addr(0x2000)
	c.Resolve(0, a, 2, takenBranch(a+4, isa.BrUncond, 0x3000))
	c.Resolve(0, b, 2, takenBranch(b+4, isa.BrUncond, 0x4000))
	if res := c.Lookup(0, a, a+4); res.Hit {
		t.Error("entry survived without a victim buffer")
	}
}

func TestConventionalCapacity(t *testing.T) {
	c := NewConventional("t", 256, 4, 64)
	if c.Capacity() != 1024 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
	if c.Name() != "t" {
		t.Error("name lost")
	}
}

func TestEagerInsertsPredecodedBranches(t *testing.T) {
	e := NewEager("eager", 64, 4, 8)
	block := isa.Addr(0x4000)
	branches := []isa.PredecodedBranch{
		{Offset: 2, Kind: isa.BrCond, Target: 0x5000},
		{Offset: 9, Kind: isa.BrCall, Target: 0x6000},
	}
	e.BlockFilled(0, block, branches, true)
	for _, pb := range branches {
		res := e.Lookup(0, 0, pb.PC(block))
		if !res.Hit || res.Entry.Target != pb.Target {
			t.Errorf("eager entry for offset %d missing or wrong: %+v", pb.Offset, res)
		}
	}
}

func TestNonEagerIgnoresBlockFills(t *testing.T) {
	c := NewConventional("t", 64, 4, 0)
	block := isa.Addr(0x4000)
	c.BlockFilled(0, block, []isa.PredecodedBranch{{Offset: 2, Kind: isa.BrCond, Target: 0x5000}}, true)
	if res := c.Lookup(0, 0, block+8); res.Hit {
		t.Error("conventional BTB reacted to a block fill")
	}
}

func TestTwoLevelPromotionAndBubble(t *testing.T) {
	tl := NewTwoLevel("2L", 1, 1, 64, 4, 3)
	a, b := isa.Addr(0x1000), isa.Addr(0x2000)
	tl.Resolve(0, a, 2, takenBranch(a+4, isa.BrUncond, 0x3000))
	tl.Resolve(0, b, 2, takenBranch(b+4, isa.BrUncond, 0x4000)) // evicts a from L1 into L2
	res := tl.Lookup(0, a, a+4)
	if !res.Hit {
		t.Fatal("entry lost from both levels")
	}
	if res.Bubble != 3 {
		t.Errorf("L2 hit bubble = %v, want 3", res.Bubble)
	}
	// The L2 hit promoted a into L1: next lookup is bubble-free.
	if res := tl.Lookup(0, a, a+4); !res.Hit || res.Bubble != 0 {
		t.Errorf("promotion failed: %+v", res)
	}
	if tl.L2Hits != 1 {
		t.Errorf("L2Hits = %d", tl.L2Hits)
	}
}

func TestTwoLevelMissBothLevels(t *testing.T) {
	tl := NewTwoLevel("2L", 4, 2, 64, 4, 3)
	res := tl.Lookup(0, 0x1000, 0x1004)
	if res.Hit || res.Bubble != 0 {
		t.Errorf("cold lookup: %+v", res)
	}
	if tl.L2Misses != 1 {
		t.Errorf("L2Misses = %d", tl.L2Misses)
	}
}

func TestTwoLevelL1HitIsFree(t *testing.T) {
	tl := NewTwoLevel("2L", 4, 2, 64, 4, 3)
	a := isa.Addr(0x1000)
	tl.Resolve(0, a, 2, takenBranch(a+4, isa.BrUncond, 0x3000))
	if res := tl.Lookup(0, a, a+4); !res.Hit || res.Bubble != 0 {
		t.Errorf("L1 hit: %+v", res)
	}
}

func TestEntryFallthroughEncoding(t *testing.T) {
	// Basic blocks are capped at 15 instructions so FallN fits the paper's
	// 4-bit fall-through field.
	c := NewConventional("t", 64, 4, 0)
	bb := isa.Addr(0x1000)
	c.Resolve(0, bb, 15, takenBranch(bb+14*4, isa.BrUncond, 0x2000))
	res := c.Lookup(0, bb, bb+14*4)
	if res.Entry.FallN != 15 || res.Entry.FallN > 15 {
		t.Errorf("FallN = %d", res.Entry.FallN)
	}
}
