package btb

import (
	"reflect"
	"testing"

	"confluence/internal/isa"
)

func trainSeq(d Design, n int) {
	for i := 0; i < n; i++ {
		bb := isa.Addr(0x1000 + i*64)
		d.Resolve(float64(i), bb, 4, takenBranch(bb+12, isa.BrUncond, bb+0x8000))
	}
}

func TestConventionalStateRoundTrip(t *testing.T) {
	c := NewConventional("t", 4, 2, 4)
	trainSeq(c, 64) // overflows main into the victim buffer
	st := c.ExportState()
	if st.Victim == nil {
		t.Fatal("victim buffer state missing")
	}

	fresh := NewConventional("t", 4, 2, 4)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported state differs from the snapshot")
	}
	// Bit-identical future decisions on both copies.
	bb := isa.Addr(0x1000 + 63*64)
	r1, r2 := c.Lookup(100, bb, bb+12), fresh.Lookup(100, bb, bb+12)
	if r1 != r2 {
		t.Errorf("post-restore lookup diverged: %+v vs %+v", r1, r2)
	}
}

func TestConventionalStateNoVictim(t *testing.T) {
	c := NewConventional("t", 4, 2, 0)
	trainSeq(c, 16)
	st := c.ExportState()
	if st.Victim != nil {
		t.Fatal("victimless design exported victim state")
	}
	fresh := NewConventional("t", 4, 2, 0)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported state differs from the snapshot")
	}
}

func TestConventionalStateRejectsGeometryMismatch(t *testing.T) {
	st := NewConventional("t", 4, 2, 0).ExportState()
	if err := NewConventional("t", 8, 2, 0).RestoreState(st); err == nil {
		t.Error("restore into mismatched geometry succeeded")
	}
}

func TestTwoLevelStateRoundTrip(t *testing.T) {
	d := NewTwoLevel("t2", 2, 2, 16, 4, 2)
	trainSeq(d, 48) // spills L1 into L2
	st := d.ExportState()

	fresh := NewTwoLevel("t2", 2, 2, 16, 4, 2)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported state differs from the snapshot")
	}
	bb := isa.Addr(0x1000)
	r1, r2 := d.Lookup(100, bb, bb+12), fresh.Lookup(100, bb, bb+12)
	if r1 != r2 {
		t.Errorf("post-restore lookup diverged: %+v vs %+v", r1, r2)
	}

	if err := NewTwoLevel("t2", 2, 2, 32, 4, 2).RestoreState(st); err == nil {
		t.Error("restore into mismatched L2 geometry succeeded")
	}
}
