// Package btb implements branch target buffer designs: the conventional
// basic-block-oriented BTB (the paper's baseline, with victim buffer), the
// aggressive two-level hierarchy (1K-entry L1 + 16K-entry 4-cycle L2), and
// an "ideal" large single-cycle BTB. PhantomBTB and AirBTB live in their own
// packages; all designs satisfy the frontend's BTB interface.
package btb

import (
	"confluence/internal/cache"
	"confluence/internal/isa"
	"confluence/internal/trace"
)

// Entry is one BTB record, following the paper's basic-block organization:
// tagged by the block's starting address, holding the type and target of the
// branch that ends the block plus the fall-through distance (4 bits suffice
// for 99% of basic blocks; the generator caps blocks at 15 instructions).
type Entry struct {
	Kind   isa.BranchKind
	Target isa.Addr
	FallN  uint8 // basic-block length in instructions
}

// Result is the outcome of a BTB probe.
type Result struct {
	Hit    bool
	Entry  Entry
	Bubble float64 // fetch-bubble cycles exposed by this lookup (L2 access)
}

// Design is the method set the frontend drives. Implementations outside
// this package (PhantomBTB, AirBTB) satisfy it structurally.
type Design interface {
	Name() string
	// Lookup probes for the basic block starting at bb whose terminating
	// branch is at brPC (block-based designs key on brPC's block).
	Lookup(now float64, bb, brPC isa.Addr) Result
	// Resolve is called after every executed basic block so the design can
	// allocate/train; designs allocate on taken branches.
	Resolve(now float64, bb isa.Addr, nInstr int, br trace.BranchInfo)
	// BlockFilled/BlockEvicted mirror L1-I content changes (used by AirBTB
	// and the eager-insertion intermediate design points; others ignore).
	BlockFilled(now float64, block isa.Addr, branches []isa.PredecodedBranch, demand bool)
	BlockEvicted(block isa.Addr)
}

// TagMode selects how Conventional keys its entries.
type TagMode int

const (
	// TagByBB tags entries with the basic-block start address (the paper's
	// conventional organization).
	TagByBB TagMode = iota
	// TagByBranchPC tags entries with the branch instruction address; used
	// by the eager-insertion intermediate design points of Fig 8, where
	// entries are installed from predecode before block boundaries are
	// known.
	TagByBranchPC
)

// Conventional is the set-associative basic-block BTB with an optional
// fully-associative victim buffer.
type Conventional struct {
	name   string
	mode   TagMode
	main   *cache.Assoc[Entry]
	victim *cache.Victim[Entry] // nil when absent
	eager  bool                 // install all predecoded branches on block fill
}

// NewConventional builds a BTB with sets (power of two) × ways entries and
// a victimEntries-deep victim buffer (0 disables it).
func NewConventional(name string, sets, ways, victimEntries int) *Conventional {
	c := &Conventional{
		name: name,
		main: cache.NewAssoc[Entry](sets, ways),
	}
	if victimEntries > 0 {
		c.victim = cache.NewVictim[Entry](victimEntries)
	}
	return c
}

// NewEager builds the Fig 8 intermediate design: conventional organization
// (tagged per branch) that eagerly installs every predecoded branch of a
// filled instruction block.
func NewEager(name string, sets, ways, victimEntries int) *Conventional {
	c := NewConventional(name, sets, ways, victimEntries)
	c.mode = TagByBranchPC
	c.eager = true
	return c
}

// Name implements Design.
func (c *Conventional) Name() string { return c.name }

// Capacity returns the main-structure entry count.
func (c *Conventional) Capacity() int { return c.main.Capacity() }

func (c *Conventional) key(bb, brPC isa.Addr) uint64 {
	if c.mode == TagByBranchPC {
		return uint64(brPC) >> 2
	}
	return uint64(bb) >> 2
}

// Lookup implements Design.
func (c *Conventional) Lookup(now float64, bb, brPC isa.Addr) Result {
	k := c.key(bb, brPC)
	if e, ok := c.main.Lookup(k); ok {
		return Result{Hit: true, Entry: e}
	}
	if c.victim != nil {
		if e, ok := c.victim.Take(k); ok {
			c.insert(k, e) // promote
			return Result{Hit: true, Entry: e}
		}
	}
	return Result{}
}

func (c *Conventional) insert(k uint64, e Entry) {
	evKey, evVal, ev := c.main.Insert(k, e)
	if ev && c.victim != nil {
		c.victim.Put(evKey, evVal)
	}
}

// Resolve implements Design: allocate/update on taken branches.
func (c *Conventional) Resolve(now float64, bb isa.Addr, nInstr int, br trace.BranchInfo) {
	if !br.Kind.IsBranch() || !br.Taken {
		return
	}
	c.insert(c.key(bb, br.PC), Entry{Kind: br.Kind, Target: br.Target, FallN: uint8(nInstr)})
}

// BlockFilled implements Design; only the eager variant reacts.
func (c *Conventional) BlockFilled(now float64, block isa.Addr, branches []isa.PredecodedBranch, demand bool) {
	if !c.eager {
		return
	}
	for _, b := range branches {
		c.insert(uint64(b.PC(block))>>2, Entry{Kind: b.Kind, Target: b.Target})
	}
}

// BlockEvicted implements Design (no-op: conventional BTBs are decoupled
// from L1-I content).
func (c *Conventional) BlockEvicted(block isa.Addr) {}

// TwoLevel is the aggressive hierarchical BTB: a small single-cycle first
// level backed by a large second level whose access latency is exposed as a
// fetch bubble on every L1 miss / L2 hit (the paper's central criticism of
// reactive hierarchies).
type TwoLevel struct {
	name     string
	l1, l2   *cache.Assoc[Entry]
	l2Bubble float64

	L2Hits, L2Misses uint64
}

// NewTwoLevel builds a two-level BTB; l2Bubble is the exposed L2 access
// latency in cycles (the paper's 16K-entry L2 has a 4-cycle latency; 3
// cycles beyond the single-cycle L1).
func NewTwoLevel(name string, l1Sets, l1Ways, l2Sets, l2Ways int, l2Bubble float64) *TwoLevel {
	return &TwoLevel{
		name:     name,
		l1:       cache.NewAssoc[Entry](l1Sets, l1Ways),
		l2:       cache.NewAssoc[Entry](l2Sets, l2Ways),
		l2Bubble: l2Bubble,
	}
}

// Name implements Design.
func (t *TwoLevel) Name() string { return t.name }

// Lookup implements Design: L1 hit is free; an L2 hit exposes the bubble and
// promotes the entry.
func (t *TwoLevel) Lookup(now float64, bb, brPC isa.Addr) Result {
	k := uint64(bb) >> 2
	if e, ok := t.l1.Lookup(k); ok {
		return Result{Hit: true, Entry: e}
	}
	if e, ok := t.l2.Lookup(k); ok {
		t.L2Hits++
		t.promote(k, e)
		return Result{Hit: true, Entry: e, Bubble: t.l2Bubble}
	}
	t.L2Misses++
	return Result{}
}

func (t *TwoLevel) promote(k uint64, e Entry) {
	evKey, evVal, ev := t.l1.Insert(k, e)
	if ev {
		t.l2.Insert(evKey, evVal) // L1 victims spill to L2 (exclusive-ish)
	}
}

// Resolve implements Design.
func (t *TwoLevel) Resolve(now float64, bb isa.Addr, nInstr int, br trace.BranchInfo) {
	if !br.Kind.IsBranch() || !br.Taken {
		return
	}
	e := Entry{Kind: br.Kind, Target: br.Target, FallN: uint8(nInstr)}
	k := uint64(bb) >> 2
	t.promote(k, e)
	t.l2.Insert(k, e)
}

// BlockFilled implements Design (no-op).
func (t *TwoLevel) BlockFilled(now float64, block isa.Addr, branches []isa.PredecodedBranch, demand bool) {
}

// BlockEvicted implements Design (no-op).
func (t *TwoLevel) BlockEvicted(block isa.Addr) {}
