package btb

import "confluence/internal/cache"

// Warm-up snapshot support. Each design exports its tagged stores as raw
// cache state (see cache.ExportState — stamps and probe layout restore
// verbatim, so a restored BTB makes bit-identical future decisions).
// Diagnostic counters (TwoLevel.L2Hits/L2Misses) are excluded; they
// never influence a lookup.

// ConventionalState is the serializable state of a Conventional BTB.
type ConventionalState struct {
	Main     cache.AssocState
	MainVals []Entry
	// Victim is nil when the design has no victim buffer.
	Victim     *cache.VictimState
	VictimVals []Entry
}

// ExportState deep-copies the BTB contents.
func (c *Conventional) ExportState() ConventionalState {
	st, vals := c.main.ExportState()
	out := ConventionalState{Main: st, MainVals: vals}
	if c.victim != nil {
		vs, vv := c.victim.ExportState()
		out.Victim, out.VictimVals = &vs, vv
	}
	return out
}

// RestoreState overwrites the BTB contents from a snapshot; geometry
// (including victim presence) must match.
func (c *Conventional) RestoreState(st ConventionalState) error {
	if err := c.main.RestoreState(st.Main, st.MainVals); err != nil {
		return err
	}
	if c.victim != nil && st.Victim != nil {
		return c.victim.RestoreState(*st.Victim, st.VictimVals)
	}
	return nil
}

// TwoLevelState is the serializable state of a TwoLevel BTB.
type TwoLevelState struct {
	L1     cache.AssocState
	L1Vals []Entry
	L2     cache.AssocState
	L2Vals []Entry
}

// ExportState deep-copies both levels.
func (t *TwoLevel) ExportState() TwoLevelState {
	l1, v1 := t.l1.ExportState()
	l2, v2 := t.l2.ExportState()
	return TwoLevelState{L1: l1, L1Vals: v1, L2: l2, L2Vals: v2}
}

// RestoreState overwrites both levels from a snapshot.
func (t *TwoLevel) RestoreState(st TwoLevelState) error {
	if err := t.l1.RestoreState(st.L1, st.L1Vals); err != nil {
		return err
	}
	return t.l2.RestoreState(st.L2, st.L2Vals)
}
