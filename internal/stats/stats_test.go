package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %v", got)
	}
	if got := Geomean([]float64{3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("Geomean(3) = %v", got)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if Geomean([]float64{1, -2}) != 0 {
		t.Error("non-positive input should yield 0")
	}
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-9 && x < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestStdDevStdErrCI95(t *testing.T) {
	// Known sample: {2,4,4,4,5,5,7,9} has mean 5 and sample stddev
	// sqrt(32/7).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	wantSD := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-wantSD) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, wantSD)
	}
	wantSE := wantSD / math.Sqrt(8)
	if got := StdErr(xs); math.Abs(got-wantSE) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", got, wantSE)
	}
	if got := CI95(xs); math.Abs(got-1.96*wantSE) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", got, 1.96*wantSE)
	}
	// Degenerate inputs: no spread estimate from fewer than two samples.
	for _, xs := range [][]float64{nil, {}, {3}} {
		if StdDev(xs) != 0 || StdErr(xs) != 0 || CI95(xs) != 0 {
			t.Errorf("spread of %v samples must be 0", len(xs))
		}
	}
	// Constant samples have zero spread.
	if StdDev([]float64{4, 4, 4}) != 0 {
		t.Error("constant samples must have zero stddev")
	}
}

func TestEstimate(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	e := NewEstimate(xs)
	if e.Mean != 3 || e.N != 5 {
		t.Errorf("Estimate mean/N = %v/%v", e.Mean, e.N)
	}
	if math.Abs(e.CI95-1.96*e.StdErr) > 1e-12 {
		t.Errorf("CI95 %v inconsistent with StdErr %v", e.CI95, e.StdErr)
	}
	if got := e.String(); !strings.Contains(got, "3.000") || !strings.Contains(got, "±") {
		t.Errorf("Estimate.String = %q", got)
	}
	// CI shrinks as ~1/sqrt(n): doubling the sample at the same spread
	// must not widen the interval.
	wide := NewEstimate([]float64{1, 5})
	narrow := NewEstimate([]float64{1, 5, 1, 5})
	if narrow.CI95 >= wide.CI95 {
		t.Errorf("CI95 must shrink with n: %v vs %v", narrow.CI95, wide.CI95)
	}
}

func TestCoverage(t *testing.T) {
	if got := Coverage(40, 4); math.Abs(got-90) > 1e-9 {
		t.Errorf("Coverage(40,4) = %v", got)
	}
	if got := Coverage(10, 15); got >= 0 {
		t.Errorf("worse-than-baseline must be negative, got %v", got)
	}
	if Coverage(0, 5) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "Name", "Value")
	tab.Row("alpha", 1.5)
	tab.Row("beta-long-name", 22)
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Errorf("table output missing content:\n%s", out)
	}
	if !strings.Contains(out, "1.50") {
		t.Errorf("float not formatted with two decimals:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns aligned: each data line at least as wide as the header.
	if len(lines[3]) < len("beta-long-name") {
		t.Error("column width not expanded to fit data")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("HarmonicMean(2,2,2) = %v", got)
	}
	// HM(1,3) = 2/(1+1/3) = 1.5; below the arithmetic mean of 2.
	if got := HarmonicMean([]float64{1, 3}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("HarmonicMean(1,3) = %v", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Error("empty harmonic mean should be 0")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("non-positive input should yield 0")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	if got := WeightedSpeedup([]float64{1, 2}, []float64{1, 2}); got != 1 {
		t.Errorf("self speedup = %v", got)
	}
	if got := WeightedSpeedup([]float64{1, 1}, []float64{2, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("halved speedup = %v", got)
	}
	if WeightedSpeedup([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("mismatched lengths should yield 0")
	}
	if WeightedSpeedup(nil, nil) != 0 {
		t.Error("empty speedup should be 0")
	}
	if WeightedSpeedup([]float64{1}, []float64{0}) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

// TestTableRowWiderThanHeaders is the regression test for the
// index-out-of-range panic: Row with more cells than headers used to crash
// String (the width pass guarded the bound, the render pass did not). Extra
// columns must render under empty headers.
func TestTableRowWiderThanHeaders(t *testing.T) {
	tab := NewTable("Wide", "A", "B")
	tab.Row("a", "b", "extra-cell")
	tab.Row("c")
	out := tab.String() // must not panic
	if !strings.Contains(out, "extra-cell") {
		t.Errorf("extra cell dropped from output:\n%s", out)
	}
	if !strings.Contains(out, "c") {
		t.Errorf("short row dropped from output:\n%s", out)
	}
	// Degenerate shapes render too (no columns, no rows).
	if out := NewTable("Empty").String(); !strings.Contains(out, "Empty") {
		t.Errorf("zero-column table lost its title:\n%q", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tab := NewTable("", "A")
	tab.Row("x")
	if strings.Contains(tab.String(), "==") {
		t.Error("empty title rendered")
	}
}
