// Package stats provides the small numeric and formatting helpers the
// experiment runners share: geometric means, coverage math, and aligned
// text tables in the style of the paper's figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs (which must be positive).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs (which must be positive) —
// the standard aggregate for per-core IPCs under workload consolidation,
// where a single starved core should dominate the figure of merit.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// WeightedSpeedup returns the arithmetic mean of per-core speedups
// mix[i]/alone[i]: each core's IPC under consolidation relative to the same
// core running its workload alone (homogeneously). 1.0 means consolidation
// cost nothing; both slices are in core order and must have equal length.
func WeightedSpeedup(mix, alone []float64) float64 {
	if len(mix) == 0 || len(mix) != len(alone) {
		return 0
	}
	sum := 0.0
	for i, m := range mix {
		if alone[i] <= 0 {
			return 0
		}
		sum += m / alone[i]
	}
	return sum / float64(len(mix))
}

// StdDev returns the sample standard deviation of xs (Bessel-corrected,
// n-1 denominator). Fewer than two samples have no spread estimate and
// return 0.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// StdErr returns the standard error of the mean of xs: StdDev/sqrt(n).
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// CI95 returns the half-width of the 95% confidence interval on the mean
// of xs, using the normal approximation (1.96 standard errors) the SMARTS
// sampling literature uses. The interval is Mean(xs) ± CI95(xs).
func CI95(xs []float64) float64 {
	return 1.96 * StdErr(xs)
}

// Estimate summarizes a set of per-window samples as mean ± 95% CI — the
// unit the sampled-simulation report carries per metric.
type Estimate struct {
	Mean   float64 // arithmetic mean of the samples
	StdErr float64 // standard error of the mean
	CI95   float64 // half-width of the 95% confidence interval
	N      int     // number of samples
}

// NewEstimate computes the Estimate for xs.
func NewEstimate(xs []float64) Estimate {
	return Estimate{Mean: Mean(xs), StdErr: StdErr(xs), CI95: CI95(xs), N: len(xs)}
}

// String renders the estimate as "mean ±ci" with three decimals.
func (e Estimate) String() string {
	return fmt.Sprintf("%.3f ±%.3f", e.Mean, e.CI95)
}

// Coverage returns the percentage of baseline events eliminated by a
// design: 100 * (1 - design/baseline). Negative values mean the design is
// worse than baseline (AirBTB without an overflow buffer exhibits this in
// Fig 10).
func Coverage(baseline, design float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (1 - design/baseline)
}

// Table renders aligned fixed-width text tables.
type Table struct {
	Title string
	cols  []string
	rows  [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, cols: cols}
}

// Row appends a row; values are formatted with %v, floats with two
// decimals.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table. Rows may carry more cells than there are
// headers (the extra columns render under empty headers) or fewer (the row
// simply ends early); neither is an error.
func (t *Table) String() string {
	ncols := len(t.cols)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	width := make([]int, ncols)
	for i, c := range t.cols {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.cols)
	total := 0
	if len(width) > 0 {
		total = len(width) - 1
	}
	for _, w := range width {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
