package cache

// InFlight tracks outstanding fills (prefetches and demand misses) with
// their completion times, the mechanism by which the simulator models
// prefetch timeliness: a demand access to an in-flight block stalls only for
// the residual latency.
type InFlight struct {
	m map[uint64]float64
}

// NewInFlight returns an empty in-flight table.
func NewInFlight() *InFlight {
	return &InFlight{m: make(map[uint64]float64)}
}

// Add registers a fill completing at ready. If the block is already in
// flight, the earlier completion time wins.
func (f *InFlight) Add(key uint64, ready float64) {
	if cur, ok := f.m[key]; !ok || ready < cur {
		f.m[key] = ready
	}
}

// Ready returns the completion time for key and whether it is in flight.
func (f *InFlight) Ready(key uint64) (float64, bool) {
	r, ok := f.m[key]
	return r, ok
}

// Remove drops key (its fill materialized or was cancelled).
func (f *InFlight) Remove(key uint64) { delete(f.m, key) }

// Len returns the number of outstanding fills.
func (f *InFlight) Len() int { return len(f.m) }

// Expire drops all fills with ready time <= now that satisfy keep==false,
// invoking fn for each; used to materialize completed prefetches lazily.
func (f *InFlight) Expire(now float64, fn func(key uint64)) {
	for k, r := range f.m {
		if r <= now {
			delete(f.m, k)
			if fn != nil {
				fn(k)
			}
		}
	}
}
