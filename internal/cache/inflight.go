package cache

import "confluence/internal/flatmap"

// InFlight tracks outstanding fills (prefetches and demand misses) with
// their completion times, the mechanism by which the simulator models
// prefetch timeliness: a demand access to an in-flight block stalls only for
// the residual latency.
//
// It is a thin wrapper over flatmap.Map — the open-addressed, linear-probe,
// backward-shift-deleting table whose deletion algorithm is validated
// against a reference model — adding the fill-table verbs: min-wins Add,
// fused Take/TakeIfReady single conceptual probes (the second probe of a
// take hits the map's last-slot cache), and a deterministic ascending-slot
// Expire sweep. Nothing on the per-instruction path allocates.
type InFlight struct {
	m       *flatmap.Map[float64]
	scratch []uint64 // reused by Expire's collect phase
}

// NewInFlight returns an empty in-flight table (64 slots, the steady-state
// population of a SHIFT lookahead plus demand misses, growing if exceeded).
func NewInFlight() *InFlight {
	return &InFlight{m: flatmap.New[float64](48)} // next pow2 ≥ 4/3·48 = 64 slots
}

// Add registers a fill completing at ready. If the block is already in
// flight, the earlier completion time wins.
func (f *InFlight) Add(key uint64, ready float64) {
	p, existed := f.m.Upsert(key)
	if !existed || ready < *p {
		*p = ready
	}
}

// Ready returns the completion time for key and whether it is in flight.
func (f *InFlight) Ready(key uint64) (float64, bool) {
	if f.m.Len() == 0 {
		return 0, false
	}
	p := f.m.Ptr(key)
	if p == nil {
		return 0, false
	}
	return *p, true
}

// Take removes key, returning its completion time and whether it was in
// flight — a fused Ready+Remove for the demand-access path.
func (f *InFlight) Take(key uint64) (float64, bool) {
	r, ok := f.Ready(key)
	if ok {
		f.m.Delete(key)
	}
	return r, ok
}

// TakeIfReady removes key iff its fill has completed by now, reporting
// whether it did — the fill-materialization fast path at the top of every
// frontend step.
func (f *InFlight) TakeIfReady(key uint64, now float64) bool {
	if f.m.Len() == 0 {
		return false
	}
	p := f.m.Ptr(key)
	if p == nil || *p > now {
		return false
	}
	f.m.Delete(key)
	return true
}

// Remove drops key (its fill materialized or was cancelled).
func (f *InFlight) Remove(key uint64) { f.m.Delete(key) }

// Len returns the number of outstanding fills.
func (f *InFlight) Len() int { return f.m.Len() }

// Clear drops every outstanding fill (warm-state restore: a snapshot is
// captured with the table empty, so restoring starts it empty too).
func (f *InFlight) Clear() { f.m.Clear() }

// Expire drops all fills with ready time <= now, invoking fn (when non-nil)
// for each in ascending-slot order, and returns how many were dropped. The
// sweep collects keys first and deletes second, so backward-shift compaction
// cannot move an entry past the scan.
func (f *InFlight) Expire(now float64, fn func(key uint64)) int {
	f.scratch = f.scratch[:0]
	for i := 0; i < f.m.Slots(); i++ {
		if k, v, ok := f.m.Slot(i); ok && *v <= now {
			f.scratch = append(f.scratch, k)
		}
	}
	for _, k := range f.scratch {
		f.m.Delete(k)
		if fn != nil {
			fn(k)
		}
	}
	return len(f.scratch)
}
