package cache

import "fmt"

// Assoc is a set-associative, true-LRU key/value store. It backs every
// tagged predictor structure in the simulator (BTB levels, PhantomBTB's
// virtualized group store) the way Cache backs plain presence tracking.
//
// Like Cache, the valid ways of a set are a contiguous prefix tracked by a
// per-set counter, and recency is a strictly increasing use-stamp: the LRU
// victim is the minimum stamp, identical in policy to an ordered list but
// with no key/value shifting on a touch — which matters here, where values
// (BTB entries, Phantom temporal groups) can be tens of bytes each.
type Assoc[V any] struct {
	sets, ways int
	keys       []uint64
	vals       []V
	stamp      []uint64
	occ        []uint16 // valid ways per set (prefix [0, occ))
	clock      uint64
	n          int

	// mru/mruOK cache the most recent hit's key and way (see Cache.mru):
	// while valid, that key holds the cache-wide maximum stamp, so a
	// repeated lookup reads the value back without a scan or a re-stamp.
	mru    uint64
	mruWay int
	mruOK  bool

	stats Stats
}

// NewAssoc creates a store with sets (power of two) and ways.
func NewAssoc[V any](sets, ways int) *Assoc[V] {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: assoc sets must be a positive power of two, got %d", sets))
	}
	if ways <= 0 || ways > 1<<16-1 {
		panic("cache: assoc ways out of range")
	}
	return &Assoc[V]{
		sets:  sets,
		ways:  ways,
		keys:  make([]uint64, sets*ways),
		vals:  make([]V, sets*ways),
		stamp: make([]uint64, sets*ways),
		occ:   make([]uint16, sets),
	}
}

// Capacity returns sets*ways; Sets and Ways the geometry.
func (a *Assoc[V]) Capacity() int { return a.sets * a.ways }
func (a *Assoc[V]) Sets() int     { return a.sets }
func (a *Assoc[V]) Ways() int     { return a.ways }

// Stats returns access counters; ResetStats zeroes them.
func (a *Assoc[V]) Stats() Stats { return a.stats }
func (a *Assoc[V]) ResetStats()  { a.stats.Reset() }

func (a *Assoc[V]) set(key uint64) int { return int(key) & (a.sets - 1) }

func (a *Assoc[V]) tick() uint64 {
	a.clock++
	return a.clock
}

// Lookup probes for key, refreshing LRU on hit.
func (a *Assoc[V]) Lookup(key uint64) (V, bool) {
	if a.mruOK && key == a.mru {
		a.stats.Hits++
		return a.vals[a.mruWay], true
	}
	s := a.set(key)
	base := s * a.ways
	n := int(a.occ[s])
	for i := 0; i < n; i++ {
		if a.keys[base+i] == key {
			a.stamp[base+i] = a.tick()
			a.mru, a.mruWay, a.mruOK = key, base+i, true
			a.stats.Hits++
			return a.vals[base+i], true
		}
	}
	var zero V
	a.stats.Misses++
	return zero, false
}

// Peek returns key's value without LRU or counter updates — the read-only
// probe used when the store is frozen during a bound phase (concurrent
// Peeks are safe as long as no mutation runs).
func (a *Assoc[V]) Peek(key uint64) (V, bool) {
	s := a.set(key)
	base := s * a.ways
	n := int(a.occ[s])
	for i := 0; i < n; i++ {
		if a.keys[base+i] == key {
			return a.vals[base+i], true
		}
	}
	var zero V
	return zero, false
}

// Contains probes without LRU or counter updates.
func (a *Assoc[V]) Contains(key uint64) bool {
	s := a.set(key)
	base := s * a.ways
	n := int(a.occ[s])
	for i := 0; i < n; i++ {
		if a.keys[base+i] == key {
			return true
		}
	}
	return false
}

// Insert puts (key, val) at MRU, overwriting a present key in place, and
// returns any displaced entry. Presence and the LRU victim are resolved in
// one scan over the set's valid prefix.
func (a *Assoc[V]) Insert(key uint64, val V) (evKey uint64, evVal V, evicted bool) {
	s := a.set(key)
	base := s * a.ways
	n := int(a.occ[s])
	victim, oldest := 0, ^uint64(0)
	for i := 0; i < n; i++ {
		if a.keys[base+i] == key {
			a.vals[base+i] = val
			a.stamp[base+i] = a.tick()
			a.mru, a.mruWay, a.mruOK = key, base+i, true
			return 0, evVal, false
		}
		if a.stamp[base+i] < oldest {
			oldest, victim = a.stamp[base+i], i
		}
	}
	a.stats.Insertions++
	a.mruOK = false
	if n < a.ways {
		victim = n
		a.occ[s]++
		a.n++
	} else {
		evKey, evVal, evicted = a.keys[base+victim], a.vals[base+victim], true
		a.stats.Evictions++
	}
	a.keys[base+victim], a.vals[base+victim] = key, val
	a.stamp[base+victim] = a.tick()
	return evKey, evVal, evicted
}

// Invalidate removes key, reporting whether it was present; the last valid
// way swaps into the hole, keeping the prefix contiguous.
func (a *Assoc[V]) Invalidate(key uint64) bool {
	s := a.set(key)
	base := s * a.ways
	n := int(a.occ[s])
	for i := 0; i < n; i++ {
		if a.keys[base+i] == key {
			a.keys[base+i] = a.keys[base+n-1]
			a.vals[base+i] = a.vals[base+n-1]
			a.stamp[base+i] = a.stamp[base+n-1]
			var zero V
			a.vals[base+n-1] = zero // drop references held by the stale copy
			a.occ[s]--
			a.n--
			a.mruOK = false
			return true
		}
	}
	return false
}

// Len returns the number of valid entries.
func (a *Assoc[V]) Len() int { return a.n }
