package cache

import "fmt"

// Assoc is a set-associative, true-LRU key/value store. It backs every
// tagged predictor structure in the simulator (BTB levels, PhantomBTB's
// virtualized group store) the way Cache backs plain presence tracking.
type Assoc[V any] struct {
	sets, ways int
	keys       []uint64
	vals       []V
	valid      []bool
	stats      Stats
}

// NewAssoc creates a store with sets (power of two) and ways.
func NewAssoc[V any](sets, ways int) *Assoc[V] {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: assoc sets must be a positive power of two, got %d", sets))
	}
	if ways <= 0 {
		panic("cache: assoc ways must be positive")
	}
	return &Assoc[V]{
		sets:  sets,
		ways:  ways,
		keys:  make([]uint64, sets*ways),
		vals:  make([]V, sets*ways),
		valid: make([]bool, sets*ways),
	}
}

// Capacity returns sets*ways; Sets and Ways the geometry.
func (a *Assoc[V]) Capacity() int { return a.sets * a.ways }
func (a *Assoc[V]) Sets() int     { return a.sets }
func (a *Assoc[V]) Ways() int     { return a.ways }

// Stats returns access counters; ResetStats zeroes them.
func (a *Assoc[V]) Stats() Stats { return a.stats }
func (a *Assoc[V]) ResetStats()  { a.stats.Reset() }

func (a *Assoc[V]) set(key uint64) int { return int(key) & (a.sets - 1) }

// Lookup probes for key, refreshing LRU on hit.
func (a *Assoc[V]) Lookup(key uint64) (V, bool) {
	base := a.set(key) * a.ways
	for i := 0; i < a.ways; i++ {
		if a.valid[base+i] && a.keys[base+i] == key {
			v := a.vals[base+i]
			a.touch(base, i)
			a.stats.Hits++
			return v, true
		}
	}
	var zero V
	a.stats.Misses++
	return zero, false
}

// Contains probes without LRU or counter updates.
func (a *Assoc[V]) Contains(key uint64) bool {
	base := a.set(key) * a.ways
	for i := 0; i < a.ways; i++ {
		if a.valid[base+i] && a.keys[base+i] == key {
			return true
		}
	}
	return false
}

func (a *Assoc[V]) touch(base, i int) {
	if i == 0 {
		return
	}
	k, v := a.keys[base+i], a.vals[base+i]
	copy(a.keys[base+1:base+i+1], a.keys[base:base+i])
	copy(a.vals[base+1:base+i+1], a.vals[base:base+i])
	a.keys[base], a.vals[base] = k, v
}

// Insert puts (key, val) at MRU, overwriting a present key in place, and
// returns any displaced entry.
func (a *Assoc[V]) Insert(key uint64, val V) (evKey uint64, evVal V, evicted bool) {
	base := a.set(key) * a.ways
	for i := 0; i < a.ways; i++ {
		if a.valid[base+i] && a.keys[base+i] == key {
			a.vals[base+i] = val
			a.touch(base, i)
			return 0, evVal, false
		}
	}
	a.stats.Insertions++
	victim := -1
	for i := 0; i < a.ways; i++ {
		if !a.valid[base+i] {
			victim = i
			break
		}
	}
	if victim == -1 {
		victim = a.ways - 1
		evKey, evVal, evicted = a.keys[base+victim], a.vals[base+victim], true
		a.stats.Evictions++
	}
	copy(a.keys[base+1:base+victim+1], a.keys[base:base+victim])
	copy(a.vals[base+1:base+victim+1], a.vals[base:base+victim])
	copy(a.valid[base+1:base+victim+1], a.valid[base:base+victim])
	a.keys[base], a.vals[base], a.valid[base] = key, val, true
	return evKey, evVal, evicted
}

// Invalidate removes key, reporting whether it was present.
func (a *Assoc[V]) Invalidate(key uint64) bool {
	base := a.set(key) * a.ways
	for i := 0; i < a.ways; i++ {
		if a.valid[base+i] && a.keys[base+i] == key {
			copy(a.keys[base+i:base+a.ways-1], a.keys[base+i+1:base+a.ways])
			copy(a.vals[base+i:base+a.ways-1], a.vals[base+i+1:base+a.ways])
			copy(a.valid[base+i:base+a.ways-1], a.valid[base+i+1:base+a.ways])
			a.valid[base+a.ways-1] = false
			return true
		}
	}
	return false
}

// Len returns the number of valid entries.
func (a *Assoc[V]) Len() int {
	n := 0
	for _, v := range a.valid {
		if v {
			n++
		}
	}
	return n
}
