package cache

import (
	"reflect"
	"testing"
)

func TestCacheStateRoundTrip(t *testing.T) {
	c := New(16, 4)
	for k := uint64(0); k < 100; k++ {
		c.Insert(k)
	}
	// Touch a few entries so the stamp ordering is non-trivial.
	for k := uint64(40); k < 60; k += 3 {
		c.Lookup(k)
	}
	st := c.ExportState()

	fresh := New(16, 4)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported state differs from the snapshot")
	}
	// Bit-identical future decisions: the same insert must pick the same
	// LRU victim on both the live cache and the restored one.
	ev1, was1 := c.Insert(1000)
	ev2, was2 := fresh.Insert(1000)
	if ev1 != ev2 || was1 != was2 {
		t.Errorf("post-restore eviction diverged: (%d,%v) vs (%d,%v)", ev1, was1, ev2, was2)
	}
}

func TestCacheStateRejectsGeometryMismatch(t *testing.T) {
	st := New(16, 4).ExportState()
	if err := New(8, 4).RestoreState(st); err == nil {
		t.Error("restore into mismatched geometry succeeded")
	}
	st.Keys = st.Keys[:1]
	if err := New(16, 4).RestoreState(st); err == nil {
		t.Error("restore with malformed arrays succeeded")
	}
}

func TestAssocStateRoundTrip(t *testing.T) {
	a := NewAssoc[uint64](16, 4)
	for k := uint64(0); k < 100; k++ {
		a.Insert(k, k*10)
	}
	st, vals := a.ExportState()

	fresh := NewAssoc[uint64](16, 4)
	if err := fresh.RestoreState(st, vals); err != nil {
		t.Fatal(err)
	}
	st2, vals2 := fresh.ExportState()
	if !reflect.DeepEqual(st, st2) || !reflect.DeepEqual(vals, vals2) {
		t.Error("re-exported state differs from the snapshot")
	}
	if v, ok := fresh.Peek(99); !ok || v != 990 {
		t.Errorf("Peek(99) = %d,%v after restore, want 990", v, ok)
	}

	if err := NewAssoc[uint64](8, 4).RestoreState(st, vals); err == nil {
		t.Error("restore into mismatched geometry succeeded")
	}
	if err := NewAssoc[uint64](16, 4).RestoreState(st, vals[:3]); err == nil {
		t.Error("restore with a short values slice succeeded")
	}
}

func TestVictimStateRoundTrip(t *testing.T) {
	v := NewVictim[uint64](4)
	for k := uint64(0); k < 7; k++ { // overflows capacity, evicting LRU
		v.Put(k, k*10)
	}
	st, vals := v.ExportState()

	fresh := NewVictim[uint64](4)
	if err := fresh.RestoreState(st, vals); err != nil {
		t.Fatal(err)
	}
	st2, vals2 := fresh.ExportState()
	if !reflect.DeepEqual(st, st2) || !reflect.DeepEqual(vals, vals2) {
		t.Error("re-exported state differs from the snapshot")
	}
	if got, ok := fresh.Peek(6); !ok || got != 60 {
		t.Errorf("Peek(6) = %d,%v after restore, want 60", got, ok)
	}

	if err := NewVictim[uint64](2).RestoreState(st, vals); err == nil {
		t.Error("restore into smaller buffer succeeded")
	}
	if err := NewVictim[uint64](4).RestoreState(st, vals[:1]); err == nil {
		t.Error("restore with a short values slice succeeded")
	}
}
