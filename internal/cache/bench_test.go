package cache

import (
	"math/rand/v2"
	"testing"
)

// BenchmarkCacheLookupHit measures the L1-I hot path.
func BenchmarkCacheLookupHit(b *testing.B) {
	c := New(128, 4) // L1-I geometry
	keys := make([]uint64, 512)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range keys {
		keys[i] = rng.Uint64() >> 16
		c.Insert(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i&511])
	}
}

// BenchmarkCacheInsertEvict measures steady-state replacement.
func BenchmarkCacheInsertEvict(b *testing.B) {
	c := New(128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i))
	}
}

// BenchmarkAssocLookup measures the BTB hot path.
func BenchmarkAssocLookup(b *testing.B) {
	a := NewAssoc[uint64](256, 4)
	for i := uint64(0); i < 1024; i++ {
		a.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Lookup(uint64(i) & 1023)
	}
}

// BenchmarkCacheLookupInsert measures the combined demand-access pattern of
// the L1-I: a lookup followed, on miss, by a fill — the single-pass
// presence+victim scan this PR introduced.
func BenchmarkCacheLookupInsert(b *testing.B) {
	c := New(128, 4) // L1-I geometry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint64(i) % 2048 // 4x the capacity: a steady mix of hits and fills
		if !c.Lookup(key) {
			c.Insert(key)
		}
	}
}

// BenchmarkInFlight_AddReadyRemove measures the in-flight fill table's
// per-prefetch lifecycle: register a fill, probe it (the demand-access
// check), and retire it.
func BenchmarkInFlight_AddReadyRemove(b *testing.B) {
	f := NewInFlight()
	// Keep a realistic standing population (a SHIFT lookahead's worth).
	for i := uint64(0); i < 20; i++ {
		f.Add(i, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint64(i) + 100
		f.Add(key, float64(i))
		if _, ok := f.Ready(key); !ok {
			b.Fatal("lost in-flight fill")
		}
		f.Remove(key)
	}
}
