package cache

import (
	"math/rand/v2"
	"testing"
)

// BenchmarkCacheLookupHit measures the L1-I hot path.
func BenchmarkCacheLookupHit(b *testing.B) {
	c := New(128, 4) // L1-I geometry
	keys := make([]uint64, 512)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range keys {
		keys[i] = rng.Uint64() >> 16
		c.Insert(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i&511])
	}
}

// BenchmarkCacheInsertEvict measures steady-state replacement.
func BenchmarkCacheInsertEvict(b *testing.B) {
	c := New(128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i))
	}
}

// BenchmarkAssocLookup measures the BTB hot path.
func BenchmarkAssocLookup(b *testing.B) {
	a := NewAssoc[uint64](256, 4)
	for i := uint64(0); i < 1024; i++ {
		a.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Lookup(uint64(i) & 1023)
	}
}
