// Package cache provides the set-associative cache model used for the L1-I
// and the LLC, plus the small fully-associative victim buffer used by the
// baseline BTB and an in-flight fill table for prefetch timeliness tracking.
//
// Caches here track only presence (tags), not data: the simulator reads
// instruction bytes straight from the program image, so content correctness
// is never at stake — only hit/miss behaviour and replacement.
package cache

import "fmt"

// Stats counts accesses. Misses includes cold misses.
type Stats struct {
	Hits, Misses uint64
	Insertions   uint64
	Evictions    uint64
}

// Accesses returns total lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// Reset zeroes the counters (used at the warmup/measure boundary).
func (s *Stats) Reset() { *s = Stats{} }

// Cache is a set-associative tag store with true-LRU replacement, keyed by
// opaque uint64 keys (block addresses or BTB tags).
type Cache struct {
	sets  int
	ways  int
	keys  []uint64 // sets*ways, LRU-ordered within a set: index 0 = MRU
	valid []bool
	stats Stats
}

// New creates a cache with the given number of sets (power of two) and ways.
func New(sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets must be a positive power of two, got %d", sets))
	}
	if ways <= 0 {
		panic("cache: ways must be positive")
	}
	return &Cache{
		sets:  sets,
		ways:  ways,
		keys:  make([]uint64, sets*ways),
		valid: make([]bool, sets*ways),
	}
}

// NewBytes creates a cache sized in bytes for a given block size.
func NewBytes(totalBytes, ways, blockBytes int) *Cache {
	blocks := totalBytes / blockBytes
	return New(blocks/ways, ways)
}

// Sets and Ways report geometry; Capacity the total entry count.
func (c *Cache) Sets() int     { return c.sets }
func (c *Cache) Ways() int     { return c.ways }
func (c *Cache) Capacity() int { return c.sets * c.ways }

// Stats returns a copy of the counters; ResetStats zeroes them.
func (c *Cache) Stats() Stats { return c.stats }
func (c *Cache) ResetStats()  { c.stats.Reset() }

func (c *Cache) set(key uint64) int { return int(key) & (c.sets - 1) }

// Lookup probes for key, updating LRU and counters on the access.
func (c *Cache) Lookup(key uint64) bool {
	base := c.set(key) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.valid[base+i] && c.keys[base+i] == key {
			c.touch(base, i)
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes without updating LRU or counters.
func (c *Cache) Contains(key uint64) bool {
	base := c.set(key) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.valid[base+i] && c.keys[base+i] == key {
			return true
		}
	}
	return false
}

// touch moves way i of the set at base to MRU position.
func (c *Cache) touch(base, i int) {
	if i == 0 {
		return
	}
	k := c.keys[base+i]
	copy(c.keys[base+1:base+i+1], c.keys[base:base+i])
	c.keys[base] = k
	// valid[0..i] are all true when touching a hit way.
}

// Insert places key at MRU, returning the evicted key if a valid entry was
// displaced. Inserting a present key refreshes its LRU position.
func (c *Cache) Insert(key uint64) (evicted uint64, wasEvicted bool) {
	base := c.set(key) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.valid[base+i] && c.keys[base+i] == key {
			c.touch(base, i)
			return 0, false
		}
	}
	c.stats.Insertions++
	// Use an invalid way if any.
	victimIdx := -1
	for i := 0; i < c.ways; i++ {
		if !c.valid[base+i] {
			victimIdx = i
			break
		}
	}
	if victimIdx == -1 {
		victimIdx = c.ways - 1
		evicted = c.keys[base+victimIdx]
		wasEvicted = true
		c.stats.Evictions++
	}
	// Shift down to make room at MRU.
	copy(c.keys[base+1:base+victimIdx+1], c.keys[base:base+victimIdx])
	copy(c.valid[base+1:base+victimIdx+1], c.valid[base:base+victimIdx])
	c.keys[base] = key
	c.valid[base] = true
	return evicted, wasEvicted
}

// Invalidate removes key if present, returning whether it was.
func (c *Cache) Invalidate(key uint64) bool {
	base := c.set(key) * c.ways
	for i := 0; i < c.ways; i++ {
		if c.valid[base+i] && c.keys[base+i] == key {
			copy(c.keys[base+i:base+c.ways-1], c.keys[base+i+1:base+c.ways])
			copy(c.valid[base+i:base+c.ways-1], c.valid[base+i+1:base+c.ways])
			c.valid[base+c.ways-1] = false
			return true
		}
	}
	return false
}

// Keys appends all resident keys to dst (unspecified order) and returns it.
func (c *Cache) Keys(dst []uint64) []uint64 {
	for i, v := range c.valid {
		if v {
			dst = append(dst, c.keys[i])
		}
	}
	return dst
}

// Len returns the number of valid entries.
func (c *Cache) Len() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
