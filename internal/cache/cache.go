// Package cache provides the set-associative cache model used for the L1-I
// and the LLC, plus the small fully-associative victim buffer used by the
// baseline BTB and an in-flight fill table for prefetch timeliness tracking.
//
// Caches here track only presence (tags), not data: the simulator reads
// instruction bytes straight from the program image, so content correctness
// is never at stake — only hit/miss behaviour and replacement.
package cache

import "fmt"

// Stats counts accesses. Misses includes cold misses.
type Stats struct {
	Hits, Misses uint64
	Insertions   uint64
	Evictions    uint64
}

// Accesses returns total lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// Reset zeroes the counters (used at the warmup/measure boundary).
func (s *Stats) Reset() { *s = Stats{} }

// Cache is a set-associative tag store with true-LRU replacement, keyed by
// opaque uint64 keys (block addresses or BTB tags).
//
// Layout: the valid ways of a set are a contiguous prefix [0, occ) — new
// keys are appended and evictions replace in place — and recency is a
// strictly increasing per-cache use-stamp. The victim of a full set is the
// minimum stamp, which is exactly the least-recently-used way (stamps are
// unique), so the policy is identical to an ordered-LRU list while a touch
// is a single store instead of shifting the set. Presence and the victim
// way are resolved in one scan on Insert.
type Cache struct {
	sets  int
	ways  int
	keys  []uint64 // sets*ways; valid ways are the prefix [0, occ) of a set
	stamp []uint64 // use-stamps, parallel to keys
	occ   []uint16 // valid ways per set
	clock uint64
	n     int // total valid entries

	// mru/mruOK cache the key of the most recent Lookup hit. While mruOK
	// holds, that key carries the cache-wide maximum stamp (no other hit or
	// insert has happened since), so a repeated Lookup can skip both the
	// scan and the re-stamp — re-stamping the freshest entry is a no-op for
	// the LRU order. Inserts and invalidations clear it; hits on other
	// keys retarget it.
	mru   uint64
	mruOK bool

	stats Stats
}

// New creates a cache with the given number of sets (power of two) and ways.
func New(sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets must be a positive power of two, got %d", sets))
	}
	if ways <= 0 || ways > 1<<16-1 {
		panic("cache: ways out of range")
	}
	return &Cache{
		sets:  sets,
		ways:  ways,
		keys:  make([]uint64, sets*ways),
		stamp: make([]uint64, sets*ways),
		occ:   make([]uint16, sets),
	}
}

// NewBytes creates a cache sized in bytes for a given block size.
func NewBytes(totalBytes, ways, blockBytes int) *Cache {
	blocks := totalBytes / blockBytes
	return New(blocks/ways, ways)
}

// Sets and Ways report geometry; Capacity the total entry count.
func (c *Cache) Sets() int     { return c.sets }
func (c *Cache) Ways() int     { return c.ways }
func (c *Cache) Capacity() int { return c.sets * c.ways }

// Stats returns a copy of the counters; ResetStats zeroes them.
func (c *Cache) Stats() Stats { return c.stats }
func (c *Cache) ResetStats()  { c.stats.Reset() }

func (c *Cache) set(key uint64) int { return int(key) & (c.sets - 1) }

func (c *Cache) tick() uint64 {
	c.clock++
	return c.clock
}

// Lookup probes for key, updating LRU and counters on the access.
func (c *Cache) Lookup(key uint64) bool {
	if c.mruOK && key == c.mru {
		c.stats.Hits++
		return true
	}
	s := c.set(key)
	base := s * c.ways
	n := int(c.occ[s])
	for i := 0; i < n; i++ {
		if c.keys[base+i] == key {
			c.stamp[base+i] = c.tick()
			c.mru, c.mruOK = key, true
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes without updating LRU or counters.
func (c *Cache) Contains(key uint64) bool {
	s := c.set(key)
	base := s * c.ways
	n := int(c.occ[s])
	for i := 0; i < n; i++ {
		if c.keys[base+i] == key {
			return true
		}
	}
	return false
}

// Insert places key at MRU, returning the evicted key if a valid entry was
// displaced. Inserting a present key refreshes its LRU position. Presence
// and the LRU victim are resolved in one scan over the set's valid prefix.
func (c *Cache) Insert(key uint64) (evicted uint64, wasEvicted bool) {
	s := c.set(key)
	base := s * c.ways
	n := int(c.occ[s])
	victim, oldest := 0, ^uint64(0)
	for i := 0; i < n; i++ {
		if c.keys[base+i] == key {
			c.stamp[base+i] = c.tick()
			c.mru, c.mruOK = key, true
			return 0, false
		}
		if c.stamp[base+i] < oldest {
			oldest, victim = c.stamp[base+i], i
		}
	}
	c.stats.Insertions++
	c.mruOK = false
	if n < c.ways {
		victim = n
		c.occ[s]++
		c.n++
	} else {
		evicted = c.keys[base+victim]
		wasEvicted = true
		c.stats.Evictions++
	}
	c.keys[base+victim] = key
	c.stamp[base+victim] = c.tick()
	return evicted, wasEvicted
}

// Invalidate removes key if present, returning whether it was. The last
// valid way swaps into the hole, keeping the valid prefix contiguous.
func (c *Cache) Invalidate(key uint64) bool {
	s := c.set(key)
	base := s * c.ways
	n := int(c.occ[s])
	for i := 0; i < n; i++ {
		if c.keys[base+i] == key {
			c.keys[base+i] = c.keys[base+n-1]
			c.stamp[base+i] = c.stamp[base+n-1]
			c.occ[s]--
			c.n--
			c.mruOK = false
			return true
		}
	}
	return false
}

// Keys appends all resident keys to dst (unspecified order) and returns it.
func (c *Cache) Keys(dst []uint64) []uint64 {
	for s := 0; s < c.sets; s++ {
		base := s * c.ways
		dst = append(dst, c.keys[base:base+int(c.occ[s])]...)
	}
	return dst
}

// Len returns the number of valid entries.
func (c *Cache) Len() int { return c.n }
