package cache

import "testing"

func TestVictimPutTake(t *testing.T) {
	v := NewVictim[string](2)
	v.Put(1, "a")
	v.Put(2, "b")
	got, ok := v.Take(1)
	if !ok || got != "a" {
		t.Fatalf("Take(1) = %v, %v", got, ok)
	}
	if _, ok := v.Take(1); ok {
		t.Error("Take must remove the entry")
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestVictimLRUEviction(t *testing.T) {
	v := NewVictim[string](2)
	v.Put(1, "a")
	v.Put(2, "b")
	v.Put(3, "c") // evicts 1 (LRU)
	if _, ok := v.Peek(1); ok {
		t.Error("LRU entry survived")
	}
	if _, ok := v.Peek(2); !ok {
		t.Error("entry 2 lost")
	}
}

func TestVictimPeekRefreshes(t *testing.T) {
	v := NewVictim[string](2)
	v.Put(1, "a")
	v.Put(2, "b")
	v.Peek(1) // 1 becomes MRU
	v.Put(3, "c")
	if _, ok := v.Peek(1); !ok {
		t.Error("peeked entry evicted despite MRU refresh")
	}
	if _, ok := v.Peek(2); ok {
		t.Error("entry 2 should have been evicted")
	}
}

func TestVictimPutOverwrites(t *testing.T) {
	v := NewVictim[string](2)
	v.Put(1, "a")
	v.Put(1, "b")
	if v.Len() != 1 {
		t.Errorf("duplicate Put grew buffer: %d", v.Len())
	}
	if got, _ := v.Peek(1); got != "b" {
		t.Errorf("overwrite failed: %v", got)
	}
}

func TestVictimRemove(t *testing.T) {
	v := NewVictim[string](4)
	v.Put(1, "a")
	if !v.Remove(1) || v.Remove(1) {
		t.Error("Remove semantics wrong")
	}
}

func TestVictimCapacityOne(t *testing.T) {
	v := NewVictim[string](1)
	v.Put(1, "a")
	v.Put(2, "b")
	if v.Len() != 1 {
		t.Errorf("Len = %d", v.Len())
	}
	if _, ok := v.Peek(2); !ok {
		t.Error("newest entry missing")
	}
}

func TestInFlight(t *testing.T) {
	f := NewInFlight()
	f.Add(1, 100)
	f.Add(2, 50)
	f.Add(1, 200) // later time must not override earlier
	if r, ok := f.Ready(1); !ok || r != 100 {
		t.Errorf("Ready(1) = %v, %v", r, ok)
	}
	f.Add(2, 25) // earlier time wins
	if r, _ := f.Ready(2); r != 25 {
		t.Errorf("Ready(2) = %v, want 25", r)
	}
	f.Remove(1)
	if _, ok := f.Ready(1); ok {
		t.Error("removed key still in flight")
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestInFlightExpire(t *testing.T) {
	f := NewInFlight()
	f.Add(1, 10)
	f.Add(2, 20)
	f.Add(3, 30)
	var expired []uint64
	f.Expire(20, func(k uint64) { expired = append(expired, k) })
	if len(expired) != 2 {
		t.Errorf("expired %v, want keys 1 and 2", expired)
	}
	if _, ok := f.Ready(3); !ok {
		t.Error("unexpired key removed")
	}
}
