package cache

import "fmt"

// Warm-up snapshot support: the raw-array state of each structure is
// exported and restored verbatim — keys, use-stamps, per-set occupancy,
// and the stamp clock — so a restored structure replays bit-identically
// to the live one it was captured from. Rebuilding by re-insertion would
// lose the stamp ordering inside a set (and hence future LRU victims);
// copying the arrays loses nothing.
//
// The mru fast-path caches are deliberately NOT captured: they are pure
// lookup accelerators whose invalidation (mruOK=false) never changes an
// LRU decision — re-stamping the freshest entry is an order no-op — so a
// restored structure with a cold mru cache behaves identically.
//
// Value-bearing structures (Assoc, Victim) split state from values: the
// fixed-shape arrays travel in the exported *State struct while the
// []V values slice is returned alongside, letting owners of unexported
// value types convert them to serializable forms.

// CacheState is the serializable state of a Cache (tags + LRU order).
// Stats are not part of the state: warm-up counters are reset at the
// measurement boundary anyway.
type CacheState struct {
	Sets, Ways int
	Keys       []uint64
	Stamp      []uint64
	Occ        []uint16
	Clock      uint64
	N          int
}

// ExportState deep-copies the cache's replacement state.
func (c *Cache) ExportState() CacheState {
	return CacheState{
		Sets:  c.sets,
		Ways:  c.ways,
		Keys:  append([]uint64(nil), c.keys...),
		Stamp: append([]uint64(nil), c.stamp...),
		Occ:   append([]uint16(nil), c.occ...),
		Clock: c.clock,
		N:     c.n,
	}
}

// RestoreState overwrites the cache's contents from a snapshot. The
// snapshot's geometry must match the cache it is restored into — state
// is keyed by the design knobs that fix geometry, so a mismatch means a
// keying bug, not a recoverable condition.
func (c *Cache) RestoreState(st CacheState) error {
	if st.Sets != c.sets || st.Ways != c.ways {
		return fmt.Errorf("cache: snapshot geometry %dx%d does not match cache %dx%d", st.Sets, st.Ways, c.sets, c.ways)
	}
	if len(st.Keys) != len(c.keys) || len(st.Stamp) != len(c.stamp) || len(st.Occ) != len(c.occ) {
		return fmt.Errorf("cache: snapshot arrays malformed")
	}
	copy(c.keys, st.Keys)
	copy(c.stamp, st.Stamp)
	copy(c.occ, st.Occ)
	c.clock = st.Clock
	c.n = st.N
	c.mruOK = false
	return nil
}

// AssocState is the serializable fixed-shape state of an Assoc; the
// parallel values slice travels separately (see ExportState).
type AssocState struct {
	Sets, Ways int
	Keys       []uint64
	Stamp      []uint64
	Occ        []uint16
	Clock      uint64
	N          int
}

// ExportState deep-copies the store's state. The returned values slice
// is parallel to State.Keys (sets*ways entries, valid ways per the
// prefix counters in Occ); the caller owns the copy.
func (a *Assoc[V]) ExportState() (AssocState, []V) {
	return AssocState{
		Sets:  a.sets,
		Ways:  a.ways,
		Keys:  append([]uint64(nil), a.keys...),
		Stamp: append([]uint64(nil), a.stamp...),
		Occ:   append([]uint16(nil), a.occ...),
		Clock: a.clock,
		N:     a.n,
	}, append([]V(nil), a.vals...)
}

// RestoreState overwrites the store's contents from a snapshot.
func (a *Assoc[V]) RestoreState(st AssocState, vals []V) error {
	if st.Sets != a.sets || st.Ways != a.ways {
		return fmt.Errorf("cache: assoc snapshot geometry %dx%d does not match store %dx%d", st.Sets, st.Ways, a.sets, a.ways)
	}
	if len(st.Keys) != len(a.keys) || len(vals) != len(a.vals) || len(st.Stamp) != len(a.stamp) || len(st.Occ) != len(a.occ) {
		return fmt.Errorf("cache: assoc snapshot arrays malformed")
	}
	copy(a.keys, st.Keys)
	copy(a.vals, vals)
	copy(a.stamp, st.Stamp)
	copy(a.occ, st.Occ)
	a.clock = st.Clock
	a.n = st.N
	a.mruOK = false
	return nil
}

// VictimState is the serializable fixed-shape state of a Victim buffer;
// the parallel values slice travels separately.
type VictimState struct {
	Cap   int
	Keys  []uint64
	Stamp []uint64
	Clock uint64
}

// ExportState deep-copies the buffer's state; the returned values slice
// is parallel to State.Keys.
func (v *Victim[V]) ExportState() (VictimState, []V) {
	return VictimState{
		Cap:   v.cap,
		Keys:  append([]uint64(nil), v.keys...),
		Stamp: append([]uint64(nil), v.stamp...),
		Clock: v.clock,
	}, append([]V(nil), v.vals...)
}

// RestoreState overwrites the buffer's contents from a snapshot.
func (v *Victim[V]) RestoreState(st VictimState, vals []V) error {
	if st.Cap != v.cap {
		return fmt.Errorf("cache: victim snapshot capacity %d does not match buffer %d", st.Cap, v.cap)
	}
	if len(st.Keys) > st.Cap || len(vals) != len(st.Keys) || len(st.Stamp) != len(st.Keys) {
		return fmt.Errorf("cache: victim snapshot arrays malformed")
	}
	v.keys = append(v.keys[:0], st.Keys...)
	v.vals = append(v.vals[:0], vals...)
	v.stamp = append(v.stamp[:0], st.Stamp...)
	v.clock = st.Clock
	return nil
}
