package cache

// Victim is a small fully-associative LRU buffer, used as the 64-entry
// victim buffer backing the baseline conventional BTB and as PhantomBTB's
// prefetch buffer.
type Victim struct {
	cap  int
	keys []uint64 // MRU first
	vals []any
}

// NewVictim creates a victim buffer holding up to capacity entries.
func NewVictim(capacity int) *Victim {
	if capacity <= 0 {
		panic("cache: victim capacity must be positive")
	}
	return &Victim{cap: capacity}
}

// Capacity returns the configured capacity; Len the current occupancy.
func (v *Victim) Capacity() int { return v.cap }
func (v *Victim) Len() int      { return len(v.keys) }

// Lookup returns the value for key and removes it (entries migrate back to
// the main structure on hit, the usual victim-buffer contract).
func (v *Victim) Take(key uint64) (any, bool) {
	for i, k := range v.keys {
		if k == key {
			val := v.vals[i]
			v.keys = append(v.keys[:i], v.keys[i+1:]...)
			v.vals = append(v.vals[:i], v.vals[i+1:]...)
			return val, true
		}
	}
	return nil, false
}

// Peek returns the value for key without removing it, refreshing recency.
func (v *Victim) Peek(key uint64) (any, bool) {
	for i, k := range v.keys {
		if k == key {
			val := v.vals[i]
			copy(v.keys[1:i+1], v.keys[:i])
			copy(v.vals[1:i+1], v.vals[:i])
			v.keys[0], v.vals[0] = key, val
			return val, true
		}
	}
	return nil, false
}

// Put inserts (key, val) at MRU, evicting the LRU entry when full. A present
// key is refreshed/overwritten.
func (v *Victim) Put(key uint64, val any) {
	for i, k := range v.keys {
		if k == key {
			v.keys = append(v.keys[:i], v.keys[i+1:]...)
			v.vals = append(v.vals[:i], v.vals[i+1:]...)
			break
		}
	}
	if len(v.keys) < v.cap {
		v.keys = append(v.keys, 0)
		v.vals = append(v.vals, nil)
	}
	copy(v.keys[1:], v.keys)
	copy(v.vals[1:], v.vals)
	v.keys[0], v.vals[0] = key, val
}

// Remove drops key if present.
func (v *Victim) Remove(key uint64) bool {
	for i, k := range v.keys {
		if k == key {
			v.keys = append(v.keys[:i], v.keys[i+1:]...)
			v.vals = append(v.vals[:i], v.vals[i+1:]...)
			return true
		}
	}
	return false
}
