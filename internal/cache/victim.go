package cache

// Victim is a small fully-associative LRU buffer, used as the 64-entry
// victim buffer backing the baseline conventional BTB and as PhantomBTB's
// prefetch buffer. It is generic over the stored value so entries live
// inline — putting a value never boxes it into an interface, which kept an
// allocation on the BTB-eviction path when values were `any`.
//
// Entries are unordered: recency is a strictly increasing use-stamp and the
// eviction victim is the minimum stamp. That is the same true-LRU policy as
// an ordered list (stamps are unique, so the minimum is the unique
// least-recently-used entry) without shifting the whole buffer on every
// insert — Put on the BTB-eviction path was one large memmove per call in
// the ordered layout.
type Victim[V any] struct {
	cap   int
	keys  []uint64
	vals  []V
	stamp []uint64
	clock uint64
}

// NewVictim creates a victim buffer holding up to capacity entries.
func NewVictim[V any](capacity int) *Victim[V] {
	if capacity <= 0 {
		panic("cache: victim capacity must be positive")
	}
	return &Victim[V]{
		cap:   capacity,
		keys:  make([]uint64, 0, capacity),
		vals:  make([]V, 0, capacity),
		stamp: make([]uint64, 0, capacity),
	}
}

// Capacity returns the configured capacity; Len the current occupancy.
func (v *Victim[V]) Capacity() int { return v.cap }
func (v *Victim[V]) Len() int      { return len(v.keys) }

func (v *Victim[V]) tick() uint64 {
	v.clock++
	return v.clock
}

// removeAt drops the entry at index i (order is not meaningful).
func (v *Victim[V]) removeAt(i int) {
	last := len(v.keys) - 1
	v.keys[i], v.vals[i], v.stamp[i] = v.keys[last], v.vals[last], v.stamp[last]
	var zero V
	v.vals[last] = zero
	v.keys = v.keys[:last]
	v.vals = v.vals[:last]
	v.stamp = v.stamp[:last]
}

// Take returns the value for key and removes it (entries migrate back to
// the main structure on hit, the usual victim-buffer contract).
func (v *Victim[V]) Take(key uint64) (V, bool) {
	for i, k := range v.keys {
		if k == key {
			val := v.vals[i]
			v.removeAt(i)
			return val, true
		}
	}
	var zero V
	return zero, false
}

// Peek returns the value for key without removing it, refreshing recency.
func (v *Victim[V]) Peek(key uint64) (V, bool) {
	for i, k := range v.keys {
		if k == key {
			v.stamp[i] = v.tick()
			return v.vals[i], true
		}
	}
	var zero V
	return zero, false
}

// Put inserts (key, val) at MRU, evicting the LRU entry when full. A present
// key is refreshed/overwritten.
func (v *Victim[V]) Put(key uint64, val V) {
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i, k := range v.keys {
		if k == key {
			v.vals[i] = val
			v.stamp[i] = v.tick()
			return
		}
		if v.stamp[i] < oldest {
			oldest, victim = v.stamp[i], i
		}
	}
	if len(v.keys) < v.cap {
		v.keys = append(v.keys, key)
		v.vals = append(v.vals, val)
		v.stamp = append(v.stamp, v.tick())
		return
	}
	v.keys[victim], v.vals[victim], v.stamp[victim] = key, val, v.tick()
}

// Remove drops key if present.
func (v *Victim[V]) Remove(key uint64) bool {
	for i, k := range v.keys {
		if k == key {
			v.removeAt(i)
			return true
		}
	}
	return false
}
