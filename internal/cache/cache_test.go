package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := New(4, 2)
	if c.Lookup(1) {
		t.Error("cold lookup hit")
	}
	c.Insert(1)
	if !c.Lookup(1) {
		t.Error("inserted key missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Insertions != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(1, 2) // single set, 2 ways
	c.Insert(0)
	c.Insert(1)
	c.Lookup(0) // 0 becomes MRU
	ev, was := c.Insert(2)
	if !was || ev != 1 {
		t.Errorf("evicted %d (was=%v), want 1", ev, was)
	}
	if !c.Contains(0) || !c.Contains(2) || c.Contains(1) {
		t.Error("wrong residents after eviction")
	}
}

func TestCacheInsertRefreshesExisting(t *testing.T) {
	c := New(1, 2)
	c.Insert(0)
	c.Insert(1)
	c.Insert(0) // refresh, no eviction
	ev, was := c.Insert(2)
	if !was || ev != 1 {
		t.Errorf("evicted %d, want 1 (0 was refreshed)", ev)
	}
}

func TestCacheSetIndexing(t *testing.T) {
	c := New(4, 1)
	// Keys mapping to different sets must not evict each other.
	c.Insert(0)
	c.Insert(1)
	c.Insert(2)
	c.Insert(3)
	for k := uint64(0); k < 4; k++ {
		if !c.Contains(k) {
			t.Errorf("key %d evicted despite distinct sets", k)
		}
	}
	// Same set (stride = sets) conflicts.
	ev, was := c.Insert(4)
	if !was || ev != 0 {
		t.Errorf("evicted %d (was=%v), want 0", ev, was)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := New(2, 2)
	c.Insert(2)
	c.Insert(4)
	if !c.Invalidate(2) {
		t.Error("Invalidate existing returned false")
	}
	if c.Contains(2) {
		t.Error("invalidated key still present")
	}
	if c.Invalidate(2) {
		t.Error("Invalidate missing returned true")
	}
	if !c.Contains(4) {
		t.Error("unrelated key lost")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCacheContainsDoesNotTouch(t *testing.T) {
	c := New(1, 2)
	c.Insert(0)
	c.Insert(1) // LRU: 0
	c.Contains(0)
	ev, _ := c.Insert(2)
	if ev != 0 {
		t.Errorf("Contains changed LRU: evicted %d, want 0", ev)
	}
	if got := c.Stats().Accesses(); got != 0 {
		t.Errorf("Contains counted as access: %d", got)
	}
}

func TestCacheKeys(t *testing.T) {
	c := New(2, 2)
	for k := uint64(0); k < 4; k++ {
		c.Insert(k)
	}
	keys := c.Keys(nil)
	if len(keys) != 4 {
		t.Errorf("Keys returned %d entries", len(keys))
	}
}

func TestNewBytes(t *testing.T) {
	c := NewBytes(32<<10, 4, 64) // the L1-I geometry
	if c.Sets() != 128 || c.Ways() != 4 {
		t.Errorf("32KB/4w/64B => %dx%d", c.Sets(), c.Ways())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { New(3, 2) },
		func() { New(0, 2) },
		func() { New(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

// TestCacheInvariants drives random operations and checks structural
// invariants: occupancy bounds and that contents are a subset of inserted
// keys.
func TestCacheInvariants(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		c := New(8, 4)
		rng := rand.New(rand.NewPCG(seed, 1))
		inserted := map[uint64]bool{}
		for _, op := range ops {
			key := uint64(rng.IntN(64))
			switch op % 3 {
			case 0:
				c.Insert(key)
				inserted[key] = true
			case 1:
				c.Lookup(key)
			case 2:
				c.Invalidate(key)
			}
		}
		if c.Len() > c.Capacity() {
			return false
		}
		for _, k := range c.Keys(nil) {
			if !inserted[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssocLookupValue(t *testing.T) {
	a := NewAssoc[string](2, 2)
	a.Insert(2, "two")
	a.Insert(4, "four")
	if v, ok := a.Lookup(2); !ok || v != "two" {
		t.Errorf("Lookup(2) = %q, %v", v, ok)
	}
	if _, ok := a.Lookup(6); ok {
		t.Error("missing key found")
	}
}

func TestAssocInsertOverwrites(t *testing.T) {
	a := NewAssoc[int](1, 2)
	a.Insert(0, 10)
	a.Insert(0, 20)
	if v, _ := a.Lookup(0); v != 20 {
		t.Errorf("overwrite failed: %d", v)
	}
	if a.Len() != 1 {
		t.Errorf("Len = %d after overwrite", a.Len())
	}
}

func TestAssocEvictionReturnsPayload(t *testing.T) {
	a := NewAssoc[int](1, 2)
	a.Insert(0, 10)
	a.Insert(1, 11)
	k, v, ev := a.Insert(2, 12)
	if !ev || k != 0 || v != 10 {
		t.Errorf("evicted (%d,%d,%v), want (0,10,true)", k, v, ev)
	}
}

func TestAssocInvalidate(t *testing.T) {
	a := NewAssoc[int](1, 4)
	for k := uint64(0); k < 4; k++ {
		a.Insert(k, int(k))
	}
	if !a.Invalidate(2) || a.Contains(2) {
		t.Error("invalidate failed")
	}
	// Remaining entries intact.
	for _, k := range []uint64{0, 1, 3} {
		if v, ok := a.Lookup(k); !ok || v != int(k) {
			t.Errorf("key %d damaged by invalidate", k)
		}
	}
}

func TestAssocLRUOrder(t *testing.T) {
	a := NewAssoc[int](1, 3)
	a.Insert(0, 0)
	a.Insert(1, 1)
	a.Insert(2, 2)
	a.Lookup(0)
	a.Lookup(1)
	k, _, ev := a.Insert(3, 3)
	if !ev || k != 2 {
		t.Errorf("evicted %d, want 2 (LRU)", k)
	}
}
