// Package noc models the on-chip interconnect of the tiled CMP: a 2D mesh
// with one core + one LLC slice per tile, dimension-order routed, with a
// fixed per-hop latency. It supplies the round-trip network component of
// every LLC access — the latency SHIFT and Confluence hide and reactive BTB
// hierarchies expose.
package noc

import "fmt"

// Mesh is a Width x Height 2D mesh. Tile i sits at (i%Width, i/Width).
type Mesh struct {
	Width, Height int
	CyclesPerHop  int

	// rt caches RoundTrip(a, b) for every tile pair (tiles² ints — 2KB for
	// the paper's 4x4 mesh), replacing the per-access div/mod coordinate
	// arithmetic on the LLC latency path with one table load. Built by New;
	// a zero-value Mesh falls back to computing on the fly.
	rt []int
}

// New creates a mesh; the paper's configuration is 4x4 with 3 cycles/hop.
func New(width, height, cyclesPerHop int) *Mesh {
	if width <= 0 || height <= 0 || cyclesPerHop < 0 {
		panic(fmt.Sprintf("noc: bad mesh %dx%d @%d", width, height, cyclesPerHop))
	}
	m := &Mesh{Width: width, Height: height, CyclesPerHop: cyclesPerHop}
	tiles := m.Tiles()
	m.rt = make([]int, tiles*tiles)
	for a := 0; a < tiles; a++ {
		for b := 0; b < tiles; b++ {
			m.rt[a*tiles+b] = 2 * m.Hops(a, b) * m.CyclesPerHop
		}
	}
	return m
}

// Tiles returns the tile count.
func (m *Mesh) Tiles() int { return m.Width * m.Height }

// Coord returns the (x, y) position of tile t.
func (m *Mesh) Coord(t int) (x, y int) { return t % m.Width, t / m.Width }

// Hops returns the Manhattan hop count between two tiles.
func (m *Mesh) Hops(a, b int) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// RoundTrip returns the request+response network latency in cycles between
// two tiles.
func (m *Mesh) RoundTrip(a, b int) int {
	if m.rt != nil {
		return m.rt[a*m.Width*m.Height+b]
	}
	return 2 * m.Hops(a, b) * m.CyclesPerHop
}

// AvgRoundTrip returns the mean round-trip latency from tile a to all tiles
// (address-interleaved LLC banks make this the expected network cost).
func (m *Mesh) AvgRoundTrip(a int) float64 {
	total := 0
	for t := 0; t < m.Tiles(); t++ {
		total += m.RoundTrip(a, t)
	}
	return float64(total) / float64(m.Tiles())
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
