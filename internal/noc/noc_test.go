package noc

import "testing"

func TestCoord(t *testing.T) {
	m := New(4, 4, 3)
	cases := []struct{ tile, x, y int }{
		{0, 0, 0}, {3, 3, 0}, {4, 0, 1}, {15, 3, 3},
	}
	for _, c := range cases {
		x, y := m.Coord(c.tile)
		if x != c.x || y != c.y {
			t.Errorf("Coord(%d) = (%d,%d), want (%d,%d)", c.tile, x, y, c.x, c.y)
		}
	}
	if m.Tiles() != 16 {
		t.Errorf("Tiles = %d", m.Tiles())
	}
}

func TestHops(t *testing.T) {
	m := New(4, 4, 3)
	cases := []struct{ a, b, hops int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},
		{0, 5, 2},
		{0, 15, 6}, // corner to corner: 3+3
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.hops)
		}
		if m.Hops(c.a, c.b) != m.Hops(c.b, c.a) {
			t.Error("hops not symmetric")
		}
	}
}

func TestRoundTrip(t *testing.T) {
	m := New(4, 4, 3)
	if got := m.RoundTrip(0, 15); got != 36 { // 6 hops * 3 cyc * 2 ways
		t.Errorf("RoundTrip corner-to-corner = %d, want 36", got)
	}
	if got := m.RoundTrip(5, 5); got != 0 {
		t.Errorf("local round trip = %d", got)
	}
}

func TestAvgRoundTripBounds(t *testing.T) {
	m := New(4, 4, 3)
	center := m.AvgRoundTrip(5) // near-center tile
	corner := m.AvgRoundTrip(0) // corner tile
	if center >= corner {
		t.Errorf("center avg (%v) should beat corner avg (%v)", center, corner)
	}
	if corner > 36 || center <= 0 {
		t.Errorf("averages out of range: center=%v corner=%v", center, corner)
	}
}

func TestNewPanicsOnBadMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad mesh did not panic")
		}
	}()
	New(0, 4, 3)
}
