package airbtb

import (
	"fmt"

	"confluence/internal/flatmap"
	"confluence/internal/isa"
)

// State is the serializable state of an AirBTB, captured for warm-up
// snapshots: the bundle table's raw slots (probe layout restores
// verbatim — see flatmap.ExportState) and the overflow buffer with its
// recency stamps. Diagnostic counters (Fills, Evictions...) are
// excluded; they never influence a lookup or a fill decision.
type State struct {
	Bundles    flatmap.MapState
	BundleVals []Bundle

	OverflowPCs   []isa.Addr
	OverflowEnts  []Entry
	OverflowStamp []uint64
	OverflowClock uint64
}

// ExportState deep-copies the structure's contents.
func (a *AirBTB) ExportState() State {
	st, vals := a.bundles.ExportState()
	return State{
		Bundles:       st,
		BundleVals:    vals,
		OverflowPCs:   append([]isa.Addr(nil), a.overflow.pcs...),
		OverflowEnts:  append([]Entry(nil), a.overflow.ents...),
		OverflowStamp: append([]uint64(nil), a.overflow.stamp...),
		OverflowClock: a.overflow.clock,
	}
}

// RestoreState overwrites the structure's contents from a snapshot;
// geometry (bundle table slots, overflow capacity) must match.
func (a *AirBTB) RestoreState(st State) error {
	if err := a.bundles.RestoreState(st.Bundles, st.BundleVals); err != nil {
		return err
	}
	o := a.overflow
	if len(st.OverflowPCs) > o.cap || len(st.OverflowEnts) != len(st.OverflowPCs) || len(st.OverflowStamp) != len(st.OverflowPCs) {
		return fmt.Errorf("airbtb: overflow snapshot malformed for capacity %d", o.cap)
	}
	o.pcs = append(o.pcs[:0], st.OverflowPCs...)
	o.ents = append(o.ents[:0], st.OverflowEnts...)
	o.stamp = append(o.stamp[:0], st.OverflowStamp...)
	o.clock = st.OverflowClock
	return nil
}
