package airbtb

import (
	"testing"

	"confluence/internal/isa"
	"confluence/internal/trace"
)

func fillBlock(a *AirBTB, block isa.Addr, branches ...isa.PredecodedBranch) {
	a.BlockFilled(0, block, branches, false)
}

func TestLookupHitInBundle(t *testing.T) {
	a := New(DefaultConfig())
	block := isa.Addr(0x4000)
	fillBlock(a, block,
		isa.PredecodedBranch{Offset: 3, Kind: isa.BrCond, Target: 0x5000},
		isa.PredecodedBranch{Offset: 7, Kind: isa.BrCall, Target: 0x6000},
	)
	res := a.Lookup(0, block, block+3*4)
	if !res.Hit || res.Entry.Target != 0x5000 || res.Entry.Kind != isa.BrCond {
		t.Fatalf("lookup = %+v", res)
	}
	res = a.Lookup(0, block, block+7*4)
	if !res.Hit || res.Entry.Target != 0x6000 {
		t.Fatalf("second branch: %+v", res)
	}
}

func TestLookupMissWithoutBundle(t *testing.T) {
	a := New(DefaultConfig())
	if res := a.Lookup(0, 0x4000, 0x4008); res.Hit {
		t.Error("hit without any fill")
	}
}

func TestOverflowSpillAndLookup(t *testing.T) {
	cfg := Config{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 8}
	a := New(cfg)
	block := isa.Addr(0x4000)
	var branches []isa.PredecodedBranch
	for i := 0; i < 5; i++ { // two more than the bundle holds
		branches = append(branches, isa.PredecodedBranch{
			Offset: uint8(i * 2), Kind: isa.BrCond, Target: isa.Addr(0x5000 + i*16),
		})
	}
	fillBlock(a, block, branches...)
	if a.OverflowInserts != 2 {
		t.Errorf("OverflowInserts = %d, want 2", a.OverflowInserts)
	}
	// All five branches are reachable: three via bundle, two via overflow.
	for _, pb := range branches {
		if res := a.Lookup(0, block, pb.PC(block)); !res.Hit {
			t.Errorf("branch at offset %d unreachable", pb.Offset)
		}
	}
}

func TestOverflowDisabled(t *testing.T) {
	cfg := Config{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 0}
	a := New(cfg)
	block := isa.Addr(0x4000)
	var branches []isa.PredecodedBranch
	for i := 0; i < 4; i++ {
		branches = append(branches, isa.PredecodedBranch{
			Offset: uint8(i), Kind: isa.BrCond, Target: isa.Addr(0x5000 + i*16),
		})
	}
	fillBlock(a, block, branches...)
	// The fourth branch has nowhere to live (B:3, OB:0) — the Figure 10
	// configuration that can be worse than a conventional BTB.
	if res := a.Lookup(0, block, block+3*4); res.Hit {
		t.Error("overflowed branch reachable without an overflow buffer")
	}
	if res := a.Lookup(0, block, block); !res.Hit {
		t.Error("bundled branch lost")
	}
}

func TestEvictionRemovesBundleAndOverflow(t *testing.T) {
	cfg := Config{Bundles: 512, EntriesPerBundle: 2, OverflowEntries: 8}
	a := New(cfg)
	block := isa.Addr(0x4000)
	fillBlock(a, block,
		isa.PredecodedBranch{Offset: 0, Kind: isa.BrCond, Target: 0x5000},
		isa.PredecodedBranch{Offset: 1, Kind: isa.BrCond, Target: 0x5010},
		isa.PredecodedBranch{Offset: 2, Kind: isa.BrCond, Target: 0x5020}, // overflows
	)
	other := isa.Addr(0x8000)
	fillBlock(a, other, isa.PredecodedBranch{Offset: 0, Kind: isa.BrRet})

	a.BlockEvicted(block)
	if a.HasBundle(block) {
		t.Error("bundle survived eviction")
	}
	if res := a.Lookup(0, block, block+2*4); res.Hit {
		t.Error("overflowed entry survived its block's eviction")
	}
	if !a.HasBundle(other) {
		t.Error("unrelated bundle evicted")
	}
	if a.Evictions != 1 {
		t.Errorf("Evictions = %d", a.Evictions)
	}
}

func TestResolveRefillsLostOverflowEntry(t *testing.T) {
	cfg := Config{Bundles: 512, EntriesPerBundle: 1, OverflowEntries: 1}
	a := New(cfg)
	blockA, blockB := isa.Addr(0x4000), isa.Addr(0x8000)
	fillBlock(a, blockA,
		isa.PredecodedBranch{Offset: 0, Kind: isa.BrCond, Target: 0x5000},
		isa.PredecodedBranch{Offset: 5, Kind: isa.BrUncond, Target: 0x5040}, // -> overflow
	)
	fillBlock(a, blockB,
		isa.PredecodedBranch{Offset: 0, Kind: isa.BrCond, Target: 0x9000},
		isa.PredecodedBranch{Offset: 3, Kind: isa.BrUncond, Target: 0x9040}, // evicts A's overflow entry
	)
	brPC := blockA + 5*4
	if res := a.Lookup(0, blockA, brPC); res.Hit {
		t.Fatal("expected overflow-lost miss")
	}
	// Executing the branch re-installs it in the overflow buffer.
	a.Resolve(0, blockA, 3, trace.BranchInfo{PC: brPC, Kind: isa.BrUncond, Taken: true, Target: 0x5040})
	if res := a.Lookup(0, blockA, brPC); !res.Hit {
		t.Error("resolve did not refill the overflow buffer")
	}
}

func TestResolveUpdatesIndirectTarget(t *testing.T) {
	a := New(DefaultConfig())
	block := isa.Addr(0x4000)
	fillBlock(a, block, isa.PredecodedBranch{Offset: 2, Kind: isa.BrIndirect})
	brPC := block + 2*4
	a.Resolve(0, block, 3, trace.BranchInfo{PC: brPC, Kind: isa.BrIndirect, Taken: true, Target: 0x7777C0})
	res := a.Lookup(0, block, brPC)
	if !res.Hit || res.Entry.Target != 0x7777C0 {
		t.Errorf("indirect target not refreshed: %+v", res)
	}
}

func TestResolveIgnoresUnknownBlocks(t *testing.T) {
	a := New(DefaultConfig())
	// Must not panic or allocate bundles.
	a.Resolve(0, 0x4000, 3, trace.BranchInfo{PC: 0x4008, Kind: isa.BrUncond, Taken: true, Target: 0x5000})
	if a.Resident() != 0 {
		t.Error("Resolve allocated a bundle")
	}
}

// TestFigure5WorkedExample reproduces the paper's Figure 5 scenario: block Q
// holds branches at offsets 1 (uncond to X+5), 3 (cond to Q+2's region) and
// 6 (cond); block P holds branches at offsets 3 and 7. The prediction
// sequence of the example must be reproducible from the bundles.
func TestFigure5WorkedExample(t *testing.T) {
	a := New(Config{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 32})
	P := isa.Addr(0x1000) // "block P"
	Q := isa.Addr(0x2000) // "block Q"

	// Block P: fetch region [P, P+3]; the branch at P+3 is conditional with
	// target Q+2.
	fillBlock(a, P,
		isa.PredecodedBranch{Offset: 3, Kind: isa.BrCond, Target: Q + 2*4},
		isa.PredecodedBranch{Offset: 7, Kind: isa.BrCond, Target: 0x3000},
	)
	// Block Q: branches at offsets 1, 4, 7 (as in the figure's bitmap
	// 01001001 pattern).
	fillBlock(a, Q,
		isa.PredecodedBranch{Offset: 1, Kind: isa.BrUncond, Target: 0x5000},
		isa.PredecodedBranch{Offset: 4, Kind: isa.BrCond, Target: 0x6000},
		isa.PredecodedBranch{Offset: 7, Kind: isa.BrCond, Target: 0x7000},
	)

	// Step 1: lookup for the bb starting at P, ending with the branch P+3.
	res := a.Lookup(0, P, P+3*4)
	if !res.Hit || res.Entry.Target != Q+2*4 {
		t.Fatalf("step 1: %+v", res)
	}
	// Step 2: the taken conditional redirects to Q+2; the next branch in
	// block Q at/after offset 2 is at offset 4 (bb [Q+2, Q+4]).
	res = a.Lookup(0, Q+2*4, Q+4*4)
	if !res.Hit || res.Entry.Kind != isa.BrCond || res.Entry.Target != 0x6000 {
		t.Fatalf("step 2: %+v", res)
	}
	// Step 3: Q+4 not taken; the next bb [Q+5, Q+7] ends at offset 7.
	res = a.Lookup(0, Q+5*4, Q+7*4)
	if !res.Hit || res.Entry.Target != 0x7000 {
		t.Fatalf("step 3: %+v", res)
	}
	// Bundle bitmap for Q marks offsets 1, 4, 7.
	// (Internal check: the bitmap drives the fetch-region scan.)
	if bm := a.bundles.Ptr(uint64(Q)).Bitmap; bm != (1<<1 | 1<<4 | 1<<7) {
		t.Errorf("Q bitmap = %016b", bm)
	}
}

func TestRefillReplacesBundle(t *testing.T) {
	a := New(DefaultConfig())
	block := isa.Addr(0x4000)
	fillBlock(a, block, isa.PredecodedBranch{Offset: 1, Kind: isa.BrCond, Target: 0x5000})
	fillBlock(a, block, isa.PredecodedBranch{Offset: 2, Kind: isa.BrCall, Target: 0x6000})
	if res := a.Lookup(0, block, block+1*4); res.Hit {
		t.Error("stale bundle content after refill")
	}
	if res := a.Lookup(0, block, block+2*4); !res.Hit {
		t.Error("refilled bundle missing")
	}
	if a.Resident() != 1 {
		t.Errorf("Resident = %d", a.Resident())
	}
}

func TestStorageBits(t *testing.T) {
	// The paper's final design is ~10.2KB.
	bits := DefaultConfig().StorageBits()
	kb := float64(bits) / 8 / 1024
	if kb < 9 || kb > 11.5 {
		t.Errorf("AirBTB storage = %.1f KB, paper says ~10.2", kb)
	}
	// A 4-entry-bundle configuration costs roughly 2KB more (paper §5.3).
	big := Config{Bundles: 512, EntriesPerBundle: 4, OverflowEntries: 32}
	delta := float64(big.StorageBits()-DefaultConfig().StorageBits()) / 8 / 1024
	if delta < 1.5 || delta > 3 {
		t.Errorf("B:4 costs %.1f KB more, paper says ~2", delta)
	}
}

func TestNewPanicsOnBadBundleSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for oversized bundle entries")
		}
	}()
	New(Config{Bundles: 512, EntriesPerBundle: 9, OverflowEntries: 0})
}
