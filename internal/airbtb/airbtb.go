// Package airbtb implements AirBTB, the paper's block-based BTB whose
// contents mirror the L1-I (§3.1–3.3).
//
// AirBTB keeps one bundle per L1-I-resident instruction block. A bundle is
// tagged by the block address (amortizing the tag over all branches in the
// block), carries a 16-bit branch bitmap marking which instruction slots
// hold branches, and stores a fixed number of branch entries (offset, type,
// target). Branches that do not fit overflow into a small fully-associative
// overflow buffer. Insertions and evictions are driven by L1-I fills and
// evictions — Confluence's synchronization — so the bundle store never
// conflicts between two L1-I-resident blocks.
package airbtb

import (
	"confluence/internal/btb"
	"confluence/internal/flatmap"
	"confluence/internal/isa"
	"confluence/internal/trace"
)

// Entry is one branch record inside a bundle.
type Entry struct {
	Target isa.Addr
	Offset uint8 // instruction slot within the block
	Kind   isa.BranchKind
}

// Bundle holds the BTB state of one instruction block.
type Bundle struct {
	Bitmap  uint16 // branch positions in the block (all branches, incl. overflowed)
	N       uint8  // entries used
	Entries [4]Entry
}

// Config sizes AirBTB. The paper's final design: 512 bundles (as many as
// L1-I blocks), 3 entries per bundle, a 32-entry overflow buffer.
type Config struct {
	Bundles          int // must equal the L1-I block count for strict sync
	EntriesPerBundle int // 3 or 4
	OverflowEntries  int // 0 disables the overflow buffer
}

// DefaultConfig returns the paper's final configuration (B:3, OB:32).
func DefaultConfig() Config {
	return Config{Bundles: 512, EntriesPerBundle: 3, OverflowEntries: 32}
}

// StorageBits returns the SRAM cost of the configuration, following the
// paper's accounting: per bundle a block-address tag (42 bits for 48-bit VA,
// 64B blocks), a 16-bit bitmap, and per entry 4-bit offset + 2-bit type +
// 30-bit target; overflow entries carry a full 46-bit PC tag plus type and
// target.
func (c Config) StorageBits() int {
	perEntry := 4 + 2 + 30
	perBundle := 42 + 16 + c.EntriesPerBundle*perEntry
	perOverflow := 46 + 2 + 30
	return c.Bundles*perBundle + c.OverflowEntries*perOverflow
}

// AirBTB is one core's instance. Its content is maintained exclusively via
// BlockFilled/BlockEvicted, which Confluence drives from L1-I fills.
//
// Bundles live inline in an open-addressed table keyed by block address,
// sized once to the configured bundle count (L1-I synchronization bounds
// residency at cfg.Bundles): fills store a bundle by value and evictions
// use backward-shift deletion, so no per-fill allocation and no Go-map
// hashing on the lookup path.
type AirBTB struct {
	cfg      Config
	bundles  *flatmap.Map[Bundle]
	overflow *overflowBuffer

	// Stats.
	Fills, Evictions    uint64
	OverflowInserts     uint64
	OverflowMissedSlots uint64 // branch marked in bitmap but entry lost
}

// New creates an AirBTB.
func New(cfg Config) *AirBTB {
	if cfg.EntriesPerBundle < 1 || cfg.EntriesPerBundle > len(Bundle{}.Entries) {
		panic("airbtb: entries per bundle out of range")
	}
	return &AirBTB{
		cfg:      cfg,
		bundles:  flatmap.New[Bundle](cfg.Bundles),
		overflow: newOverflowBuffer(cfg.OverflowEntries),
	}
}

// Name implements the frontend BTB interface.
func (a *AirBTB) Name() string { return "AirBTB" }

// Config returns the instance configuration.
func (a *AirBTB) Config() Config { return a.cfg }

// Resident returns the number of bundles currently installed.
func (a *AirBTB) Resident() int { return a.bundles.Len() }

// HasBundle reports whether a bundle exists for the given block address
// (used by the L1-I/AirBTB synchronization invariant checks).
func (a *AirBTB) HasBundle(block isa.Addr) bool {
	return a.bundles.Contains(uint64(block))
}

// Lookup implements the frontend BTB interface: the prediction for the
// basic block starting at bb succeeds when the bundle for the branch's
// block is present and the branch's entry is reachable (bundle or overflow
// buffer). A missing bundle or a lost overflowed entry is a miss, in which
// case the BPU falls back to a speculative sequential fetch region (§3.3).
func (a *AirBTB) Lookup(now float64, bb, brPC isa.Addr) btb.Result {
	block := isa.BlockOf(brPC)
	b := a.bundles.Ptr(uint64(block))
	if b == nil {
		return btb.Result{}
	}
	off := uint8(isa.BlockIndex(brPC))
	if b.Bitmap&(1<<off) == 0 {
		// Bitmap says "no branch here": sync guarantees bitmaps reflect the
		// block's true static branches, so this cannot happen for executed
		// branches; treat defensively as a miss.
		return btb.Result{}
	}
	for i := uint8(0); i < b.N; i++ {
		if b.Entries[i].Offset == off {
			e := b.Entries[i]
			return btb.Result{Hit: true, Entry: btb.Entry{Kind: e.Kind, Target: e.Target}}
		}
	}
	if e, ok := a.overflow.lookup(brPC); ok {
		return btb.Result{Hit: true, Entry: btb.Entry{Kind: e.Kind, Target: e.Target}}
	}
	a.OverflowMissedSlots++
	return btb.Result{}
}

// Resolve implements the frontend BTB interface. AirBTB allocates bundles
// only in sync with L1-I fills, but resolved branches keep the structure
// warm in two ways: indirect targets refresh the stored target field, and a
// taken branch whose entry was lost from the overflow buffer (bitmap bit
// set, no entry reachable) is re-installed there — the overflow buffer
// caches the *executed* overflow set rather than the fill-order one.
func (a *AirBTB) Resolve(now float64, bb isa.Addr, nInstr int, br trace.BranchInfo) {
	if !br.Taken || !br.Kind.IsBranch() {
		return
	}
	block := isa.BlockOf(br.PC)
	b := a.bundles.Ptr(uint64(block))
	if b == nil {
		return
	}
	off := uint8(isa.BlockIndex(br.PC))
	for i := uint8(0); i < b.N; i++ {
		if b.Entries[i].Offset == off {
			if !br.Kind.IsDirect() {
				b.Entries[i].Target = br.Target
			}
			return
		}
	}
	if b.Bitmap&(1<<off) == 0 {
		return
	}
	// The entry belongs to the overflow buffer; insert or refresh it.
	a.overflow.insert(br.PC, Entry{Offset: off, Kind: br.Kind, Target: br.Target})
}

// BlockFilled implements the frontend BTB interface: predecoded branches of
// the newly L1-I-resident block are installed eagerly — the first
// EntriesPerBundle into the bundle, the rest into the overflow buffer
// (§3.2).
func (a *AirBTB) BlockFilled(now float64, block isa.Addr, branches []isa.PredecodedBranch, demand bool) {
	if old := a.bundles.Ptr(uint64(block)); old != nil {
		// Refill of a resident block (shouldn't happen under strict sync);
		// drop the old state first.
		a.dropOverflowed(block, old)
	}
	var b Bundle
	for _, pb := range branches {
		b.Bitmap |= 1 << pb.Offset
		e := Entry{Offset: pb.Offset, Kind: pb.Kind, Target: pb.Target}
		if int(b.N) < a.cfg.EntriesPerBundle {
			b.Entries[b.N] = e
			b.N++
		} else {
			a.overflow.insert(pb.PC(block), e)
			a.OverflowInserts++
		}
	}
	a.bundles.Put(uint64(block), b)
	a.Fills++
}

// BlockEvicted implements the frontend BTB interface: the bundle leaves
// with its block, taking its overflowed entries along.
func (a *AirBTB) BlockEvicted(block isa.Addr) {
	b := a.bundles.Ptr(uint64(block))
	if b == nil {
		return
	}
	a.dropOverflowed(block, b)
	a.bundles.Delete(uint64(block))
	a.Evictions++
}

func (a *AirBTB) dropOverflowed(block isa.Addr, b *Bundle) {
	// Entries beyond the bundle's capacity live in the overflow buffer;
	// drop the bitmap slots not present in the bundle in one buffer sweep
	// (one scan for the whole block instead of one per overflowed branch).
	inBundle := uint16(0)
	for i := uint8(0); i < b.N; i++ {
		inBundle |= 1 << b.Entries[i].Offset
	}
	if over := b.Bitmap &^ inBundle; over != 0 {
		a.overflow.removeBlock(block, over)
	}
}

// overflowBuffer is the small fully-associative LRU buffer backing bundles.
// Entries are unordered; recency is a strictly increasing use-stamp and the
// victim is the minimum stamp — identical LRU semantics to an ordered list,
// with no memmove on the per-fill insert path (the ordered variant shifted
// the whole buffer on every insert, which profiling showed as the hottest
// AirBTB cost). The policy deliberately mirrors cache.Victim's stamp LRU;
// it stays a private copy because its extra verbs (removeBlock's
// block/bitmap sweep, updateTarget) are ISA-aware and don't belong on the
// generic buffer — keep the two recency schemes in lockstep.
type overflowBuffer struct {
	cap   int
	pcs   []isa.Addr
	ents  []Entry
	stamp []uint64
	clock uint64
}

func newOverflowBuffer(capacity int) *overflowBuffer {
	return &overflowBuffer{
		cap:   capacity,
		pcs:   make([]isa.Addr, 0, capacity),
		ents:  make([]Entry, 0, capacity),
		stamp: make([]uint64, 0, capacity),
	}
}

func (o *overflowBuffer) tick() uint64 {
	o.clock++
	return o.clock
}

func (o *overflowBuffer) lookup(pc isa.Addr) (Entry, bool) {
	for i, p := range o.pcs {
		if p == pc {
			o.stamp[i] = o.tick() // refresh recency
			return o.ents[i], true
		}
	}
	return Entry{}, false
}

func (o *overflowBuffer) insert(pc isa.Addr, e Entry) {
	if o.cap == 0 {
		return
	}
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i, p := range o.pcs {
		if p == pc { // present: overwrite and refresh
			o.ents[i] = e
			o.stamp[i] = o.tick()
			return
		}
		if o.stamp[i] < oldest {
			oldest, victim = o.stamp[i], i
		}
	}
	if len(o.pcs) < o.cap {
		o.pcs = append(o.pcs, pc)
		o.ents = append(o.ents, e)
		o.stamp = append(o.stamp, o.tick())
		return
	}
	o.pcs[victim], o.ents[victim], o.stamp[victim] = pc, e, o.tick()
}

func (o *overflowBuffer) updateTarget(pc isa.Addr, target isa.Addr) {
	for i, p := range o.pcs {
		if p == pc {
			o.ents[i].Target = target
			return
		}
	}
}

func (o *overflowBuffer) remove(pc isa.Addr) {
	for i, p := range o.pcs {
		if p == pc {
			o.removeAt(i)
			return
		}
	}
}

// removeBlock drops every entry whose PC lies in the given 64B block at an
// instruction slot marked in over — the per-block form of remove used by
// bundle eviction (one scan instead of one per overflowed branch).
func (o *overflowBuffer) removeBlock(block isa.Addr, over uint16) {
	for i := 0; i < len(o.pcs); {
		pc := o.pcs[i]
		if isa.BlockOf(pc) == block && over&(1<<isa.BlockIndex(pc)) != 0 {
			o.removeAt(i)
			continue // the swapped-in entry occupies slot i now
		}
		i++
	}
}

func (o *overflowBuffer) removeAt(i int) {
	last := len(o.pcs) - 1
	o.pcs[i], o.ents[i], o.stamp[i] = o.pcs[last], o.ents[last], o.stamp[last]
	o.pcs = o.pcs[:last]
	o.ents = o.ents[:last]
	o.stamp = o.stamp[:last]
}

func (o *overflowBuffer) len() int { return len(o.pcs) }
