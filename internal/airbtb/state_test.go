package airbtb

import (
	"reflect"
	"testing"

	"confluence/internal/isa"
)

func TestStateRoundTrip(t *testing.T) {
	a := New(DefaultConfig())
	base := isa.Addr(0x4000)
	for i := 0; i < 32; i++ {
		block := base + isa.Addr(i)*isa.BlockBytes
		// Overfill the bundle so entries spill into the overflow buffer.
		var brs []isa.PredecodedBranch
		for o := uint8(0); o < 6; o++ {
			brs = append(brs, isa.PredecodedBranch{Offset: o, Kind: isa.BrCond, Target: block + 0x1000})
		}
		fillBlock(a, block, brs...)
	}
	st := a.ExportState()
	if len(st.OverflowPCs) == 0 {
		t.Fatal("training produced no overflow entries")
	}

	fresh := New(DefaultConfig())
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported state differs from the snapshot")
	}
	// Bit-identical future decisions on both copies.
	r1 := a.Lookup(100, base, base+3*4)
	r2 := fresh.Lookup(100, base, base+3*4)
	if r1 != r2 {
		t.Errorf("post-restore lookup diverged: %+v vs %+v", r1, r2)
	}
}

func TestStateRestoreRejectsMalformedOverflow(t *testing.T) {
	a := New(DefaultConfig())
	fillBlock(a, 0x4000, isa.PredecodedBranch{Offset: 1, Kind: isa.BrCond, Target: 0x5000})
	st := a.ExportState()
	st.OverflowEnts = append(st.OverflowEnts, Entry{})
	if err := New(DefaultConfig()).RestoreState(st); err == nil {
		t.Error("restore with mismatched overflow arrays succeeded")
	}
}
