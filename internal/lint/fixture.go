package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CheckDir type-checks every non-test .go file in dir as one package of
// the given class and runs the analyzer suite over it. It is the
// analysistest-style entry point for fixture packages under testdata
// (which `go list ./...` deliberately cannot see), and for seeding
// synthetic violations into temp dirs: the determinism contract's own
// tests are written against it.
//
// Fixture packages may import the standard library only; imports are
// resolved from export data the go tool is asked to produce on demand.
func CheckDir(dir string, class Class) ([]Diagnostic, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	exports, err := stdlibExports()
	if err != nil {
		return nil, err
	}
	pkg, err := typeCheck(fset, exportImporter(fset, exports), "fixture", dir, files)
	if err != nil {
		return nil, err
	}
	pkg.Class = class
	return checkPackage(pkg), nil
}

var stdlibExportsOnce struct {
	sync.Once
	exports map[string]string
	err     error
}

// stdlibExports produces (once per process) export data for the whole
// standard library, the import universe fixture packages draw from.
// Listing "std" is a build-cache no-op when the library is already
// compiled, which `go build ./...` guarantees in this repo.
func stdlibExports() (map[string]string, error) {
	o := &stdlibExportsOnce
	o.Do(func() {
		root, err := ModuleRoot(".")
		if err != nil {
			// Outside a module (unlikely): stdlib patterns still list.
			root = "."
		}
		listed, err := goList(root, []string{"std"})
		if err != nil {
			o.err = err
			return
		}
		o.exports = make(map[string]string, len(listed))
		for _, p := range listed {
			if p.Export != "" {
				o.exports[p.ImportPath] = p.Export
			}
		}
	})
	return o.exports, o.err
}

// WriteFixture materializes file contents into dir, for tests that
// seed synthetic violations next to copied fixture sources.
func WriteFixture(dir string, files map[string]string) error {
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			return err
		}
	}
	return nil
}
