// Package lint enforces the repository's determinism contract at build
// time: four static analyzers (maprange, wallclock, seededrand,
// baregoroutine) keyed off a single explicit classification of every
// package as either "simulation" (its code can influence simulated
// stats, so nondeterminism sources are banned outright) or
// "infrastructure" (serving, storage, fleet coordination — wall-clock
// reads must flow through an injectable seam, randomness must be
// seeded, but timers and goroutines are its business).
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) so it can be swapped onto the
// real multichecker/unitchecker when the build environment allows the
// dependency; this repository builds hermetically from the standard
// library alone, so loading is done with `go list -export` plus
// go/types instead of go/packages.
package lint

import (
	"slices"
	"strings"
)

// Class is the determinism classification of a package.
type Class int

const (
	// Unclassified marks a package the tables do not know; the driver
	// reports it as an error, so adding a new internal package forces an
	// explicit classification decision.
	Unclassified Class = iota
	// Sim packages compute (or sit on the data path of) simulated
	// stats. The contract: no map-iteration order, wall-clock time,
	// unseeded randomness, or bare goroutines may reach results.
	Sim
	// Infra packages surround the simulator (serving, storage, fleet,
	// CLIs). Wall-clock reads must be injectable; randomness must still
	// be seeded; scheduling primitives are allowed.
	Infra
)

func (c Class) String() string {
	switch c {
	case Sim:
		return "sim"
	case Infra:
		return "infra"
	default:
		return "unclassified"
	}
}

// SimPackages lists every internal package whose code can reach
// simulated stats. The zero tolerance bans of the analyzers apply here.
var SimPackages = []string{
	"airbtb",
	"bpu",
	"btb",
	"cache",
	"cmp",
	"core",
	"experiments",
	"fdp",
	"flatmap",
	"frontend",
	"isa",
	"mem",
	"noc",
	"phantom",
	"prefetch",
	"shift",
	"stats",
	"synth",
	"trace",
}

// InfraPackages lists every internal package that surrounds the
// simulator without computing stats: the relaxed (injectable-clock)
// analyzer rules apply here.
var InfraPackages = []string{
	"area",
	"backoff",
	"cliutil",
	"fleet",
	"lint",
	"parallel",
	"program",
	"serve",
	"store",
}

// ModulePath is the import-path prefix of the repository's module.
const ModulePath = "confluence"

// classifyInternal resolves the class of "internal/<name>" packages.
func classifyInternal(name string) Class {
	if slices.Contains(SimPackages, name) {
		return Sim
	}
	if slices.Contains(InfraPackages, name) {
		return Infra
	}
	return Unclassified
}

// Classify maps an import path to its determinism class. The root
// package (the public Run/Config API, which assembles systems and
// renders results) counts as simulation; commands and examples are
// infrastructure; internal packages come from the two tables. A package
// under internal/ missing from both tables is Unclassified, which the
// driver turns into a hard lint error: new packages must be classified
// before they pass `make lint`.
func Classify(importPath string) Class {
	switch {
	case importPath == ModulePath:
		return Sim
	case strings.HasPrefix(importPath, ModulePath+"/cmd/"),
		strings.HasPrefix(importPath, ModulePath+"/examples/"):
		return Infra
	case strings.HasPrefix(importPath, ModulePath+"/internal/"):
		name := strings.TrimPrefix(importPath, ModulePath+"/internal/")
		// Nested packages inherit their top-level internal package's
		// class (internal/foo/bar classifies as internal/foo).
		name, _, _ = strings.Cut(name, "/")
		return classifyInternal(name)
	default:
		return Unclassified
	}
}
