package lint

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		path string
		want Class
	}{
		{"confluence", Sim},
		{"confluence/internal/cache", Sim},
		{"confluence/internal/trace", Sim},
		{"confluence/internal/serve", Infra},
		{"confluence/internal/lint", Infra},
		{"confluence/internal/cache/sub", Sim}, // nested inherits
		{"confluence/cmd/confluence-sim", Infra},
		{"confluence/examples/quickstart", Infra},
		{"confluence/internal/brandnew", Unclassified},
		{"github.com/other/module", Unclassified},
	}
	for _, c := range cases {
		if got := Classify(c.path); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestClassificationComplete walks internal/ on disk: every package
// there must appear in exactly one of the sim/infra tables, and every
// table entry must still exist. A newly added internal package without
// a classification therefore fails `go test ./...`, not just `make
// lint` — the contract's front door cannot be skipped by skipping the
// linter.
func TestClassificationComplete(t *testing.T) {
	internalDir := ".." // this package lives at internal/lint
	entries, err := os.ReadDir(internalDir)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		hasGo := false
		sub, err := os.ReadDir(filepath.Join(internalDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range sub {
			if strings.HasSuffix(f.Name(), ".go") && !strings.HasSuffix(f.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if hasGo {
			onDisk = append(onDisk, e.Name())
		}
	}
	if len(onDisk) == 0 {
		t.Fatal("found no internal packages; is the test running from internal/lint?")
	}

	for _, name := range onDisk {
		inSim := slices.Contains(SimPackages, name)
		inInfra := slices.Contains(InfraPackages, name)
		switch {
		case inSim && inInfra:
			t.Errorf("internal/%s is classified as BOTH sim and infra", name)
		case !inSim && !inInfra:
			t.Errorf("internal/%s is unclassified: add it to SimPackages or InfraPackages in internal/lint/classify.go", name)
		}
	}
	for _, name := range SimPackages {
		if !slices.Contains(onDisk, name) {
			t.Errorf("SimPackages lists internal/%s, which no longer exists", name)
		}
	}
	for _, name := range InfraPackages {
		if !slices.Contains(onDisk, name) {
			t.Errorf("InfraPackages lists internal/%s, which no longer exists", name)
		}
	}
	if !slices.IsSorted(SimPackages) || !slices.IsSorted(InfraPackages) {
		t.Error("keep SimPackages and InfraPackages sorted; the tables are documentation")
	}
}
