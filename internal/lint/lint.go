package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one determinism check. The shape deliberately matches
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate onto
// the real multichecker without rewriting the checks.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Class     Class

	pkgPath string
	allows  allowIndex
	report  func(Diagnostic)
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf emits a finding at pos unless a //confluence:allow directive
// for this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.covers(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Analyzers is the full determinism suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, SeededRand, BareGoroutine}
}

// analyzerNames is the set of names a directive may suppress.
func analyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// AllowPrefix introduces a suppression directive comment:
//
//	//confluence:allow <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory: a directive without one is itself a lint error,
// so every suppression in the tree documents why the contract holds
// anyway.
const AllowPrefix = "//confluence:allow"

// allowDirective is one parsed //confluence:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
}

// allowIndex maps file -> line -> analyzers allowed on that line.
type allowIndex map[string]map[int]map[string]bool

// covers reports whether the directive index suppresses analyzer
// findings at position. A directive covers its own line (trailing
// comment) and the line below it (preceding-line comment).
func (ai allowIndex) covers(analyzer string, pos token.Position) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

// parseAllows scans every comment in files for //confluence:allow
// directives. Malformed directives — a missing analyzer, an analyzer
// name the suite does not know, or an empty reason — are reported as
// findings of the synthetic "directive" analyzer rather than silently
// failing open or closed.
func parseAllows(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) allowIndex {
	known := analyzerNames()
	idx := make(allowIndex)
	bad := func(pos token.Position, format string, args ...any) {
		report(Diagnostic{Pos: pos, Analyzer: "directive", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, AllowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //confluence:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(pos, "confluence:allow needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					bad(pos, "confluence:allow names unknown analyzer %q (have %s)", name, strings.Join(sortedNames(known), ", "))
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					bad(pos, "confluence:allow %s is missing its reason; an empty reason is a lint error", name)
					continue
				}
				file := pos.Filename
				if idx[file] == nil {
					idx[file] = make(map[int]map[string]bool)
				}
				if idx[file][pos.Line] == nil {
					idx[file][pos.Line] = make(map[string]bool)
				}
				idx[file][pos.Line][name] = true
			}
		}
	}
	return idx
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkPackage runs the whole suite over one type-checked package and
// returns its findings sorted by position. An Unclassified package
// yields a single classification error instead of analyzer findings:
// classification is the contract's front door, so an unclassified
// package must not half-pass.
func checkPackage(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	if pkg.Class == Unclassified {
		pos := token.Position{Filename: pkg.Dir}
		if len(pkg.Files) > 0 {
			pos = pkg.Fset.Position(pkg.Files[0].Package)
		}
		report(Diagnostic{Pos: pos, Analyzer: "classify", Message: fmt.Sprintf(
			"package %s is not classified as sim or infra; add it to SimPackages or InfraPackages in internal/lint/classify.go", pkg.ImportPath)})
		return diags
	}
	allows := parseAllows(pkg.Fset, pkg.Files, report)
	for _, a := range Analyzers() {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Class:     pkg.Class,
			pkgPath:   pkg.ImportPath,
			allows:    allows,
			report:    report,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Check runs the suite over every package and returns all findings.
func Check(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, checkPackage(pkg)...)
	}
	return diags
}
