package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package of the module under lint.
type Package struct {
	ImportPath string
	Dir        string
	Class      Class
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list -export -deps -json` in dir and decodes the
// package stream. -export makes the go tool write export data for every
// listed package into the build cache, which is what lets the loader
// type-check each target package against its dependencies without
// re-checking dependency function bodies (and without network access or
// golang.org/x/tools).
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` reported, via the standard library's gc importer.
func exportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// Load lists patterns (e.g. "./...") relative to dir, parses and
// type-checks every non-dependency package of this module, and returns
// them classified and ready for Check. Packages that fail to
// type-check abort the load: lint runs on compiling trees.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: package %s uses cgo, which the loader does not support", p.ImportPath)
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Class = Classify(p.ImportPath)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses files and type-checks them as one package.
func typeCheck(fset *token.FileSet, imp types.ImporterFrom, importPath, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// ModuleRoot walks upward from dir to the enclosing go.mod, so tests
// and tools can lint the whole module regardless of working directory.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}
