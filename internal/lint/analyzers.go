package lint

import (
	"go/ast"
	"go/types"
)

// MapRange bans ranging over a map in simulation packages: map
// iteration order is randomized per run, so any map range on the stats
// data path is a determinism leak waiting for a reordering to expose
// it. The one recognized idiom is sorted-key extraction — a loop whose
// body does nothing but append the key/value into a slice (which the
// caller then sorts); anything else needs an explicit
// //confluence:allow maprange directive with a reason.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "forbid range over maps in simulation packages",
	Run: func(pass *Pass) {
		if pass.Class != Sim {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if isKeyExtraction(rs) {
					return true
				}
				pass.Reportf(rs.For, "range over %s in a simulation package: iteration order is nondeterministic; extract keys with an append-only loop and sort, or add %s maprange <reason>", tv.Type, AllowPrefix)
				return true
			})
		}
	},
}

// isKeyExtraction recognizes the sorted-key extraction idiom: every
// statement in the loop body is `x = append(x, ...)`. The appends
// populate a slice whose ordering the caller is expected to fix with a
// sort; the loop itself cannot leak iteration order anywhere else.
func isKeyExtraction(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
	}
	return true
}

// wallClockFuncs are the time-package references the wallclock analyzer
// polices. Readers turn the wall clock into data (the determinism
// hazard); waiters merely schedule, which infrastructure is allowed to
// do directly.
var wallClockReaders = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}
var wallClockWaiters = map[string]bool{
	"Sleep": true, "After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// WallClock keeps wall-clock time out of simulated stats. In sim
// packages every reader and waiter of package time is banned outright —
// simulated time is the only clock there. In infra packages, waiting is
// fine but reading must flow through an injectable seam (the
// internal/serve quota table's `now func() time.Time` field is the
// house pattern): a *call* to time.Now is flagged, while referencing
// time.Now as a value — wiring it in as a seam's default — is exactly
// how the seam is built and stays legal.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock reads outside injectable clock seams",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			// Selectors that are the callee of some call expression:
			// those report through the call branch, so the bare-
			// reference branch must skip them or every call would be
			// flagged twice.
			called := make(map[ast.Expr]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					called[ast.Unparen(call.Fun)] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if name, ok := pass.timeFunc(call.Fun); ok {
						switch {
						case pass.Class == Sim && (wallClockReaders[name] || wallClockWaiters[name]):
							pass.Reportf(call.Pos(), "time.%s in a simulation package: the determinism contract forbids wall-clock time on the stats path", name)
						case pass.Class == Infra && wallClockReaders[name]:
							pass.Reportf(call.Pos(), "direct time.%s call in an infra package: read the clock through an injectable `now func() time.Time` seam (see internal/serve/quota.go), or add %s wallclock <reason>", name, AllowPrefix)
						}
					}
					return true
				}
				// A bare (non-called) reference: the legal injection
				// seam default in infra, still banned in sim.
				if pass.Class != Sim {
					return true
				}
				if sel, ok := n.(*ast.SelectorExpr); ok && !called[sel] {
					if name, ok := pass.timeFunc(sel); ok && (wallClockReaders[name] || wallClockWaiters[name]) {
						pass.Reportf(sel.Pos(), "time.%s referenced in a simulation package: the determinism contract forbids wall-clock time on the stats path", name)
						return false
					}
				}
				return true
			})
		}
	},
}

// timeFunc reports whether expr is a reference to a package-level
// function of package time, returning its name.
func (p *Pass) timeFunc(expr ast.Expr) (string, bool) {
	return p.pkgFunc(expr, "time")
}

// pkgFunc resolves expr to a package-level object of pkgPath via the
// type checker (so aliased imports and shadowed identifiers resolve
// correctly), returning the object's name.
func (p *Pass) pkgFunc(expr ast.Expr, pkgPath string) (string, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := p.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	// Only package-level selections (pkg.Func), not method calls on
	// values that happen to come from the package.
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if _, isPkg := p.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			return obj.Name(), true
		}
	}
	return "", false
}

// seededRandConstructors are the math/rand and math/rand/v2 identifiers
// that do NOT touch the package-global generator: explicit sources and
// generators built from them, plus the involved types. Everything else
// at package level (Intn, Float64, Shuffle, Perm, Seed, N, ...) draws
// from the process-global source, whose seed the repo does not control.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
	"Rand":    true, "Source": true, "Source64": true, "PCG": true,
	"ChaCha8": true, "Zipf": true,
}

// SeededRand bans unseeded and time-seeded randomness everywhere: no
// global math/rand (v1 or v2) top-level functions in any package, no
// time.Now-derived seeds, and in simulation packages no math/rand v1 at
// all — sim randomness threads an explicit *rand.Rand seeded from
// profile seeds, with rand/v2's PCG as the house generator.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid global or time-seeded randomness",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				for _, path := range []string{"math/rand", "math/rand/v2"} {
					name, ok := pass.pkgFunc(sel, path)
					if !ok {
						continue
					}
					switch {
					case !seededRandConstructors[name]:
						pass.Reportf(sel.Pos(), "rand.%s uses the process-global generator: thread a seeded *rand.Rand (rand/v2 PCG preferred) instead, or add %s seededrand <reason>", name, AllowPrefix)
					case pass.Class == Sim && path == "math/rand":
						pass.Reportf(sel.Pos(), "math/rand (v1) in a simulation package: use math/rand/v2 with rand.NewPCG and explicit profile seeds")
					}
					return false
				}
				return true
			})
			// Time-seeded sources: a constructor whose argument subtree
			// reads the wall clock defeats the explicit-seed rule even
			// though both halves look individually plausible.
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pass.pkgFunc(call.Fun, "math/rand")
				if !ok {
					name, ok = pass.pkgFunc(call.Fun, "math/rand/v2")
				}
				if !ok || !seededRandConstructors[name] {
					return true
				}
				seeded := false
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						if seeded {
							return false
						}
						if tn, ok := pass.timeFunc(asExpr(m)); ok && wallClockReaders[tn] {
							pass.Reportf(call.Pos(), "time-seeded rand.%s: derive RNG seeds from profile/config seeds, never the wall clock", name)
							seeded = true
							return false
						}
						return true
					})
				}
				// A reported constructor's nested constructors would
				// re-report the same wall-clock seed; one finding per
				// outermost construction is enough.
				return !seeded
			})
		}
	},
}

// asExpr narrows an ast.Node to ast.Expr (nil when it is not one).
func asExpr(n ast.Node) ast.Expr {
	e, _ := n.(ast.Expr)
	return e
}

// BareGoroutine bans `go` statements in simulation packages:
// simulation-side concurrency must go through internal/parallel's
// deterministic fan-out or the cmp epoch engine (whose worker pool
// carries an explicit //confluence:allow with the weave-barrier
// argument). Infra packages schedule goroutines freely.
var BareGoroutine = &Analyzer{
	Name: "baregoroutine",
	Doc:  "forbid bare go statements in simulation packages",
	Run: func(pass *Pass) {
		if pass.Class != Sim {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "bare go statement in a simulation package: use internal/parallel (or justify with %s baregoroutine <reason>)", AllowPrefix)
				}
				return true
			})
		}
	},
}
