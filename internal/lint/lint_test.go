package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the expectation list from a `// want "re" ["re"...]`
// trailing comment, analysistest-style.
var wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants scans dir's fixture sources for want comments, returning
// file-base-name:line -> expectation regexps.
func parseWants(t *testing.T, dir string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), line)
			for _, q := range quotedRe.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
				}
				wants[key] = append(wants[key], regexp.MustCompile(pat))
			}
		}
		f.Close()
	}
	return wants
}

// checkFixture runs the suite over a fixture dir and matches findings
// against its want comments: every finding must be expected on its
// line, and every expectation must be matched by a finding.
func checkFixture(t *testing.T, dir string, class Class) {
	t.Helper()
	diags, err := CheckDir(dir, class)
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", dir, err)
	}
	wants := parseWants(t, dir)
	matched := make(map[string][]bool)
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		text := d.Analyzer + ": " + d.Message
		ok := false
		for i, re := range wants[key] {
			if re.MatchString(text) {
				matched[key][i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected finding: %s", key, text)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("%s: expected finding matching %q, got none", key, re)
			}
		}
	}
}

func TestMapRangeFixture(t *testing.T)      { checkFixture(t, "testdata/maprange", Sim) }
func TestWallClockSimFixture(t *testing.T)  { checkFixture(t, "testdata/wallclock_sim", Sim) }
func TestWallClockInfra(t *testing.T)       { checkFixture(t, "testdata/wallclock_infra", Infra) }
func TestSeededRandFixture(t *testing.T)    { checkFixture(t, "testdata/seededrand", Infra) }
func TestSeededRandSimFixture(t *testing.T) { checkFixture(t, "testdata/seededrand_sim", Sim) }
func TestBareGoroutineSim(t *testing.T)     { checkFixture(t, "testdata/baregoroutine_sim", Sim) }
func TestBareGoroutineInfra(t *testing.T)   { checkFixture(t, "testdata/baregoroutine_infra", Infra) }

// TestMapRangeClassGate pins that the maprange ban is keyed off the
// classification: the same sources are clean when classified infra.
func TestMapRangeClassGate(t *testing.T) {
	diags, err := CheckDir("testdata/maprange", Infra)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("maprange fixture under infra class: want clean, got %v", diags)
	}
}

// TestDirectiveFixture exercises the directive parser's failure modes.
// Expectations are asserted in code because a directive is itself a
// full-line comment, so a trailing want marker would change its text.
func TestDirectiveFixture(t *testing.T) {
	diags, err := CheckDir("testdata/directive", Sim)
	if err != nil {
		t.Fatal(err)
	}
	var directive, wallclock []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive = append(directive, d)
		case "wallclock":
			wallclock = append(wallclock, d)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	if len(directive) != 2 {
		t.Fatalf("want 2 directive errors (empty reason, unknown analyzer), got %d: %v", len(directive), directive)
	}
	if !strings.Contains(directive[0].Message, "missing its reason") {
		t.Errorf("first directive error = %q, want missing-reason", directive[0].Message)
	}
	if !strings.Contains(directive[1].Message, `unknown analyzer "wallcheck"`) {
		t.Errorf("second directive error = %q, want unknown-analyzer", directive[1].Message)
	}
	// missingReason, unknownAnalyzer, outOfRange, and wrongAnalyzer all
	// still report their violation (malformed or misplaced directives
	// fail closed); only covered() is suppressed.
	if len(wallclock) != 4 {
		t.Errorf("want 4 unsuppressed wallclock findings, got %d: %v", len(wallclock), wallclock)
	}
}

// TestSeededViolation is the contract's own regression test: injecting
// a map range into a (copy of a) clean sim fixture package must fail
// lint.
func TestSeededViolation(t *testing.T) {
	dir := t.TempDir()
	clean := `package fixture

import "sort"

func extraction(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`
	if err := WriteFixture(dir, map[string]string{"clean.go": clean}); err != nil {
		t.Fatal(err)
	}
	diags, err := CheckDir(dir, Sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("clean fixture: want no findings, got %v", diags)
	}

	violation := `package fixture

func leak(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v*len(m) - v
	}
	return sum
}
`
	if err := WriteFixture(dir, map[string]string{"leak.go": violation}); err != nil {
		t.Fatal(err)
	}
	diags, err = CheckDir(dir, Sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "maprange" {
		t.Fatalf("seeded map range: want exactly one maprange finding, got %v", diags)
	}
	if base := filepath.Base(diags[0].Pos.Filename); base != "leak.go" || diags[0].Pos.Line != 5 {
		t.Errorf("finding at %s:%d, want leak.go:5", base, diags[0].Pos.Line)
	}
}

// TestUnclassifiedPackage pins the classification-completeness error
// path: an unclassifiable package yields the classify diagnostic and no
// analyzer findings.
func TestUnclassifiedPackage(t *testing.T) {
	dir := t.TempDir()
	src := `package mystery

import "time"

func Leak() time.Time { return time.Now() }
`
	if err := WriteFixture(dir, map[string]string{"mystery.go": src}); err != nil {
		t.Fatal(err)
	}
	diags, err := CheckDir(dir, Unclassified)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "classify" {
		t.Fatalf("want exactly the classify error (and no analyzer findings), got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "SimPackages or InfraPackages") {
		t.Errorf("classify message %q should point at the classification tables", diags[0].Message)
	}
}

// TestRepoLintClean runs the full suite over the real module: the tree
// as committed must be clean, which makes the determinism contract a
// `go test ./...` invariant, not just a `make lint` one.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, d := range Check(pkgs) {
		t.Errorf("lint: %s", d)
	}
}
