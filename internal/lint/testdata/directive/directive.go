// Package fixture exercises the //confluence:allow directive parser:
// an empty reason and an unknown analyzer are lint errors in their own
// right, a directive only covers its own line and the next, and a
// well-formed directive suppresses exactly its named analyzer.
package fixture

import "time"

var when time.Time

//confluence:allow wallclock
func missingReason() {
	when = time.Now()
}

//confluence:allow wallcheck a typo must fail closed, loudly
func unknownAnalyzer() {
	when = time.Now()
}

//confluence:allow wallclock fixture: two lines above the violation, so it does not cover it

func outOfRange() {
	when = time.Now()
}

func covered() {
	//confluence:allow wallclock fixture: a proper directive suppresses its analyzer
	when = time.Now()
}

func wrongAnalyzer() {
	//confluence:allow baregoroutine fixture: names a different analyzer, so wallclock still fires
	when = time.Now()
}
