// Package fixture exercises the baregoroutine analyzer under the infra
// class, where goroutines are ordinary scheduling and never flagged.
package fixture

func unflagged(ch chan int) {
	go func() { ch <- 1 }()
}
