// Package fixture exercises the maprange analyzer under the sim class:
// one flagged range, the allowed sorted-key extraction idiom, and a
// directive-suppressed range.
package fixture

import "sort"

var sink int

func flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want "maprange: range over map\\[string\\]int"
		total += v
	}
	return total
}

func flaggedNamedType(m counters) {
	for k := range m { // want "maprange: range over"
		sink += len(k)
	}
}

type counters map[string]int

// extraction is the allowed idiom: the loop body only appends, and the
// caller fixes the order with a sort before anything observable.
func extraction(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func allowed(m map[string]int) {
	//confluence:allow maprange fixture: order-insensitive accumulation into a commutative sum
	for _, v := range m {
		sink += v
	}
}

// slices and channels range freely; only maps are order-hostile.
func notAMap(s []int, ch chan int) {
	for _, v := range s {
		sink += v
	}
	for v := range ch {
		sink += v
	}
}
