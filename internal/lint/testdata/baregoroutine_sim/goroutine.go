// Package fixture exercises the baregoroutine analyzer under the sim
// class: bare go statements are banned; a justified directive admits
// the exceptional engine.
package fixture

func flagged(ch chan int) {
	go func() { ch <- 1 }() // want "baregoroutine: bare go statement in a simulation package"
}

func allowed(ch chan int) {
	//confluence:allow baregoroutine fixture: results drained in deterministic caller order
	go func() { ch <- 2 }()
}
