// Package fixture exercises the seededrand analyzer's sim-only rule:
// math/rand v1 is banned outright in simulation packages (the house
// generator is rand/v2's PCG with explicit profile seeds).
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func flaggedV1(seed int64) *rand.Rand { // want "seededrand: math/rand \\(v1\\) in a simulation package"
	return rand.New(rand.NewSource(seed)) // want "seededrand: math/rand \\(v1\\) in a simulation package"
}

func seeded(seed uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(seed, 0x5eed))
}
