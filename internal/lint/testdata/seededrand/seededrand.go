// Package fixture exercises the seededrand analyzer under the infra
// class: process-global generators and time-derived seeds are banned
// everywhere; explicitly seeded generators are fine.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func flaggedGlobalV2() int {
	return randv2.IntN(10) // want "seededrand: rand.IntN uses the process-global generator"
}

func flaggedGlobalV1() float64 {
	return rand.Float64() // want "seededrand: rand.Float64 uses the process-global generator"
}

func flaggedSeed() {
	rand.Seed(42) // want "seededrand: rand.Seed uses the process-global generator"
}

func flaggedTimeSeeded() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want "seededrand: time-seeded rand.NewSource" "wallclock: direct time.Now call"
}

// Explicit seeds through explicit generators are the contract.
func seeded(seed uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(seed, 0x5eed))
}

func seededV1(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func allowed() int {
	//confluence:allow seededrand fixture: jitter for a log sampling decision, stats-invisible
	return randv2.IntN(3)
}
