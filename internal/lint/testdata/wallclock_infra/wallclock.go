// Package fixture exercises the wallclock analyzer under the infra
// class: waiting is legal, reading must flow through an injectable
// seam, and wiring time.Now in as the seam's default is the sanctioned
// way to build one.
package fixture

import "time"

type table struct {
	now func() time.Time
}

// newTable builds the house injectable-clock seam: the bare time.Now
// reference (a value, not a call) is legal.
func newTable(now func() time.Time) *table {
	if now == nil {
		now = time.Now
	}
	return &table{now: now}
}

func (t *table) stamp() time.Time { return t.now() }

func flagged() time.Time {
	return time.Now() // want "wallclock: direct time.Now call in an infra package"
}

func flaggedSince(start time.Time) time.Duration {
	return time.Since(start) // want "wallclock: direct time.Since call in an infra package"
}

// Waiters are scheduling, not data: legal in infra.
func waiting() {
	time.Sleep(time.Millisecond)
	t := time.NewTimer(time.Millisecond)
	t.Stop()
}

func allowed() time.Time {
	//confluence:allow wallclock fixture: best-effort log timestamp, never persisted
	return time.Now()
}
