// Package fixture exercises the wallclock analyzer under the sim class,
// where readers and waiters are both banned and even a bare reference
// to time.Now is a contract breach.
package fixture

import "time"

var when time.Time

func flaggedReads() {
	when = time.Now()                // want "wallclock: time.Now in a simulation package"
	_ = time.Since(when)             // want "wallclock: time.Since in a simulation package"
	time.Sleep(time.Millisecond)     // want "wallclock: time.Sleep in a simulation package"
	_ = time.After(time.Millisecond) // want "wallclock: time.After in a simulation package"
}

var clock = time.Now // want "wallclock: time.Now referenced in a simulation package"

func allowed() {
	//confluence:allow wallclock fixture: simulated-time epoch boundary logging only
	when = time.Now()
}

// Duration arithmetic and formatting are not clock reads.
func fine(d time.Duration) string {
	return (d * 2).String()
}
