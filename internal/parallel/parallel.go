// Package parallel provides the bounded fan-out primitive shared by the
// experiment grid scheduler, the multi-cell public API, and the CLIs.
// Simulation cells are self-contained and individually seeded, so they can
// run on any goroutine; determinism is preserved by indexing results by
// input position, never by completion order.
package parallel

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n if positive, otherwise the
// REPRO_WORKERS environment variable, otherwise GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv("REPRO_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (see Workers for how non-positive values resolve). The first
// error cancels the context seen by in-flight and not-yet-started calls and
// is returned; otherwise ForEach returns the parent context's error, if
// any. With one worker the calls run sequentially on the calling goroutine
// in index order, so a single-worker pool behaves exactly like a plain
// loop.
func ForEach(parent context.Context, workers, n int, fn func(context.Context, int) error) error {
	if n <= 0 {
		return parent.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := parent.Err(); err != nil {
				return err
			}
			if err := fn(parent, i); err != nil {
				return err
			}
		}
		return parent.Err()
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}
