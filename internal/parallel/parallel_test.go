package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 37
			var hits [n]atomic.Int32
			err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	err := ForEach(context.Background(), 1, 5, func(_ context.Context, i int) error {
		order = append(order, i) // safe: one worker runs on the caller
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestForEachErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	err := ForEach(context.Background(), 2, 1000, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); n == 1000 {
		t.Error("error did not stop the sweep early")
	}
}

func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEach(ctx, 1, 10, func(context.Context, int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("work ran under a cancelled context")
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
	t.Setenv("REPRO_WORKERS", "3")
	if got := Workers(0); got != 3 {
		t.Errorf("Workers(0) with REPRO_WORKERS=3 = %d", got)
	}
	t.Setenv("REPRO_WORKERS", "bogus")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) fallback = %d, want GOMAXPROCS", got)
	}
}
