package mem

import (
	"testing"

	"confluence/internal/isa"
)

func TestAccessLatencyLLCMissThenHit(t *testing.T) {
	h := New(DefaultConfig(), 0)
	block := isa.Addr(0x40_0000)
	lat1, hit1 := h.AccessLatency(0, block)
	if hit1 {
		t.Error("cold access hit the LLC")
	}
	lat2, hit2 := h.AccessLatency(0, block)
	if !hit2 {
		t.Error("second access missed the LLC")
	}
	if lat1 != lat2+h.Config().MemCycles {
		t.Errorf("miss latency %d, hit latency %d, memory %d", lat1, lat2, h.Config().MemCycles)
	}
	if h.LLCHits != 1 || h.LLCMisses != 1 {
		t.Errorf("counters hits=%d misses=%d", h.LLCHits, h.LLCMisses)
	}
}

func TestAccessLatencyDependsOnDistance(t *testing.T) {
	h := New(DefaultConfig(), 0)
	// Warm a block whose bank is tile 0.
	block := isa.Addr(0) // bank = (0>>6)%16 = 0
	h.AccessLatency(0, block)
	latNear, _ := h.AccessLatency(0, block) // core 0 -> bank 0: local
	latFar, _ := h.AccessLatency(15, block) // core 15 -> bank 0: 6 hops
	if latNear != h.Config().LLCHitCycles {
		t.Errorf("local hit latency %d, want %d", latNear, h.Config().LLCHitCycles)
	}
	if latFar <= latNear {
		t.Errorf("far access (%d) not slower than local (%d)", latFar, latNear)
	}
}

func TestConsecutiveBlocksUseDistinctSets(t *testing.T) {
	// Regression: block addresses have six zero low bits; the tag store
	// must index sets by block number, not raw address, or 64 consecutive
	// blocks collide in one set.
	h := New(DefaultConfig(), 0)
	base := isa.Addr(0x40_0000)
	n := h.Config().LLCWays * 4
	for i := 0; i < n; i++ {
		h.AccessLatency(0, base+isa.Addr(i*isa.BlockBytes))
	}
	for i := 0; i < n; i++ {
		if !h.LLC().Contains(uint64(base)>>isa.BlockShift + uint64(i)) {
			t.Fatalf("block %d evicted: consecutive blocks are colliding in one set", i)
		}
	}
}

func TestReservationReducesCapacity(t *testing.T) {
	cfg := DefaultConfig()
	full := New(cfg, 0)
	reserved := New(cfg, 1<<20) // 1MB of metadata
	if reserved.LLC().Capacity() >= full.LLC().Capacity() {
		t.Errorf("reservation did not shrink LLC: %d vs %d",
			reserved.LLC().Capacity(), full.LLC().Capacity())
	}
	if reserved.ReservedBlocks() != (1<<20)/isa.BlockBytes {
		t.Errorf("ReservedBlocks = %d", reserved.ReservedBlocks())
	}
}

func TestMetadataLatency(t *testing.T) {
	h := New(DefaultConfig(), 256<<10)
	lat := h.MetadataLatency(0, 0)
	if lat < h.Config().LLCHitCycles {
		t.Errorf("metadata latency %d below bank access time", lat)
	}
	// Metadata reads never pay the memory penalty.
	if lat >= h.Config().MemCycles {
		t.Errorf("metadata latency %d looks like a memory access", lat)
	}
}

func TestAvgLLCLatency(t *testing.T) {
	h := New(DefaultConfig(), 0)
	avg := h.AvgLLCLatency(0)
	min := float64(h.Config().LLCHitCycles)
	if avg <= min || avg > min+36 {
		t.Errorf("avg LLC latency %v out of range", avg)
	}
}

func TestResetStats(t *testing.T) {
	h := New(DefaultConfig(), 0)
	h.AccessLatency(0, 0x1000)
	h.ResetStats()
	if h.LLCHits != 0 || h.LLCMisses != 0 {
		t.Error("ResetStats left counters")
	}
	// Content survives reset (warmup semantics).
	if _, hit := h.AccessLatency(0, 0x1000); !hit {
		t.Error("ResetStats dropped LLC content")
	}
}
