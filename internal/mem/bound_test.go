package mem

import (
	"testing"

	"confluence/internal/isa"
)

// TestProbeMatchesAccessLatency: Probe must answer exactly what
// AccessLatency would, without mutating anything.
func TestProbeMatchesAccessLatency(t *testing.T) {
	h := New(DefaultConfig(), 0)
	blocks := []isa.Addr{0x0, 0x1000, 0x2000, 0x1000, 0x40 * 999}
	for i, b := range blocks {
		probeLat, probeHit := h.Probe(3, b)
		hits, misses := h.LLCHits, h.LLCMisses
		if h.LLCHits != hits || h.LLCMisses != misses {
			t.Fatalf("access %d: Probe moved counters", i)
		}
		lat, hit := h.AccessLatency(3, b)
		if probeLat != lat || probeHit != hit {
			t.Errorf("access %d (block %#x): Probe said (%d, %v), AccessLatency said (%d, %v)",
				i, b, probeLat, probeHit, lat, hit)
		}
	}
}

// TestProbeDoesNotDisturbLRU: a long sequence of probes between accesses
// must leave replacement decisions untouched — two hierarchies given the
// same access stream, one with interleaved probes, end bit-identical.
func TestProbeDoesNotDisturbLRU(t *testing.T) {
	cfg := DefaultConfig()
	a := New(cfg, 0)
	b := New(cfg, 0)
	for i := 0; i < 50_000; i++ {
		blk := isa.Addr(i%4096) * 64
		a.AccessLatency(0, blk)
		b.Probe(0, blk^0x7fc0) // unrelated probes
		b.AccessLatency(0, blk)
	}
	if a.LLCHits != b.LLCHits || a.LLCMisses != b.LLCMisses {
		t.Errorf("probes disturbed the hierarchy: %d/%d vs %d/%d",
			a.LLCHits, a.LLCMisses, b.LLCHits, b.LLCMisses)
	}
}

// TestBoundPortLogsAndApplies: the port answers from frozen state, defers
// every mutation, and Apply replays them so the hierarchy ends exactly as
// if the accesses had been direct.
func TestBoundPortLogsAndApplies(t *testing.T) {
	direct := New(DefaultConfig(), 0)
	deferred := New(DefaultConfig(), 0)
	port := NewBoundPort(deferred)

	blocks := []isa.Addr{0x0, 0x1000, 0x0, 0x2000, 0x1000}
	for _, b := range blocks {
		direct.AccessLatency(2, b)
		lat, hit := port.AccessLatency(2, b)
		// Frozen semantics: every probe sees the empty epoch-start LLC.
		if hit {
			t.Errorf("block %#x: hit against a frozen empty LLC", b)
		}
		if wantLat, _ := deferred.Probe(2, b); lat != wantLat {
			t.Errorf("block %#x: port latency %d, probe latency %d", b, lat, wantLat)
		}
	}
	if port.Pending() != len(blocks) {
		t.Fatalf("logged %d ops, want %d", port.Pending(), len(blocks))
	}
	if deferred.LLCMisses != 0 {
		t.Fatal("bound phase mutated the hierarchy before Apply")
	}
	port.Apply()
	if port.Pending() != 0 {
		t.Fatal("Apply did not clear the log")
	}
	if direct.LLCHits != deferred.LLCHits || direct.LLCMisses != deferred.LLCMisses {
		t.Errorf("applied hierarchy diverged from direct: %d/%d vs %d/%d",
			deferred.LLCHits, deferred.LLCMisses, direct.LLCHits, direct.LLCMisses)
	}
	if direct.LLC().Len() != deferred.LLC().Len() {
		t.Errorf("LLC contents diverged: %d vs %d blocks", deferred.LLC().Len(), direct.LLC().Len())
	}
}
