// Package mem assembles the shared memory hierarchy below the L1-I: a
// banked NUCA LLC reached over the mesh, backed by main memory, with support
// for reserving LLC capacity for virtualized predictor metadata (predictor
// virtualization is how both SHIFT and PhantomBTB store their history
// without dedicated SRAM).
package mem

import (
	"confluence/internal/cache"
	"confluence/internal/isa"
	"confluence/internal/noc"
)

// Config sizes the hierarchy. Defaults mirror the paper's Table 1.
type Config struct {
	Banks           int // LLC slices (= tiles)
	LLCBytesPerBank int
	LLCWays         int
	LLCHitCycles    int // bank access latency
	MemCycles       int // main-memory access latency (45ns @ 3GHz)
	Mesh            *noc.Mesh
}

// DefaultConfig returns the paper's 16-tile configuration: 512KB/bank,
// 16-way, 6-cycle banks, 4x4 mesh at 3 cycles/hop, 135-cycle memory.
func DefaultConfig() Config {
	return Config{
		Banks:           16,
		LLCBytesPerBank: 512 << 10,
		LLCWays:         16,
		LLCHitCycles:    6,
		MemCycles:       135,
		Mesh:            noc.New(4, 4, 3),
	}
}

// Hierarchy is the shared LLC + memory. It is shared by all cores of the
// CMP; per-core L1-Is live in the frontend model.
type Hierarchy struct {
	cfg  Config
	llc  *cache.Cache
	rsvd int // blocks reserved for virtualized metadata

	// bankMask is Banks-1 when Banks is a power of two (the common CMP
	// geometries), turning the per-access bank modulo — an integer divide
	// on the LLC latency path — into a mask; -1 otherwise.
	bankMask int

	// Stats.
	LLCHits, LLCMisses uint64
}

// New builds the hierarchy. reservedMetadataBytes is the LLC capacity
// claimed by virtualized predictor state (SHIFT history, PhantomBTB groups);
// it reduces the capacity available for instruction blocks.
func New(cfg Config, reservedMetadataBytes int) *Hierarchy {
	totalBlocks := cfg.Banks * cfg.LLCBytesPerBank / isa.BlockBytes
	rsvd := (reservedMetadataBytes + isa.BlockBytes - 1) / isa.BlockBytes
	avail := totalBlocks - rsvd
	if avail < cfg.LLCWays {
		avail = cfg.LLCWays
	}
	// Round sets down to a power of two.
	sets := 1
	for sets*2*cfg.LLCWays <= avail {
		sets *= 2
	}
	bankMask := -1
	if cfg.Banks > 0 && cfg.Banks&(cfg.Banks-1) == 0 {
		bankMask = cfg.Banks - 1
	}
	return &Hierarchy{
		cfg:      cfg,
		llc:      cache.New(sets, cfg.LLCWays),
		rsvd:     rsvd,
		bankMask: bankMask,
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// ReservedBlocks returns the LLC blocks claimed by virtualized metadata.
func (h *Hierarchy) ReservedBlocks() int { return h.rsvd }

// LLC exposes the underlying tag store (tests, capacity checks).
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// bank maps a block address to its LLC slice (address interleaved).
func (h *Hierarchy) bank(block isa.Addr) int {
	if h.bankMask >= 0 {
		return int(block>>isa.BlockShift) & h.bankMask
	}
	return int(block>>isa.BlockShift) % h.cfg.Banks
}

// key converts a block address to a tag-store key; the low zero bits of an
// aligned address must not reach the set index.
func key(block isa.Addr) uint64 { return uint64(block) >> isa.BlockShift }

// AccessLatency returns the latency, in cycles, for tile `core` to obtain
// `block` from the LLC (filling from memory on an LLC miss, which also
// installs the block in the LLC). The block address must be 64B-aligned.
func (h *Hierarchy) AccessLatency(core int, block isa.Addr) (cycles int, llcHit bool) {
	b := h.bank(block)
	lat := h.cfg.Mesh.RoundTrip(core, b) + h.cfg.LLCHitCycles
	if h.llc.Lookup(key(block)) {
		h.LLCHits++
		return lat, true
	}
	h.LLCMisses++
	h.llc.Insert(key(block))
	return lat + h.cfg.MemCycles, false
}

// Probe returns exactly what AccessLatency would return right now — the
// latency for tile `core` to obtain `block`, and whether the LLC holds it —
// without mutating the LLC contents, the replacement state, or the
// counters. It is the read-only view the bound phase of the epoch engine
// steps against: concurrent Probes are safe as long as no mutation runs.
func (h *Hierarchy) Probe(core int, block isa.Addr) (cycles int, llcHit bool) {
	b := h.bank(block)
	lat := h.cfg.Mesh.RoundTrip(core, b) + h.cfg.LLCHitCycles
	if h.llc.Contains(key(block)) {
		return lat, true
	}
	return lat + h.cfg.MemCycles, false
}

// BoundOp is one logged LLC access: the shared-structure half of a demand
// miss or prefetch issue deferred from a bound phase to the weave barrier.
type BoundOp struct {
	Block isa.Addr
	Core  int32
}

// BoundPort is a core's deferred window onto the Hierarchy during a bound
// phase: AccessLatency answers from the frozen LLC contents via Probe and
// logs the access; Apply replays the log against the live hierarchy — LRU
// updates, insertions, evictions, and hit/miss counters — in call order at
// the weave barrier. One port serves one core, so ports log concurrently
// without coordination while Apply runs serially in canonical core order.
type BoundPort struct {
	h   *Hierarchy
	ops []BoundOp
}

// NewBoundPort creates an empty port over h.
func NewBoundPort(h *Hierarchy) *BoundPort { return &BoundPort{h: h} }

// AccessLatency implements the frontend's memory port with probe-and-log
// semantics (see BoundPort).
func (p *BoundPort) AccessLatency(core int, block isa.Addr) (cycles int, llcHit bool) {
	p.ops = append(p.ops, BoundOp{Block: block, Core: int32(core)})
	return p.h.Probe(core, block)
}

// Apply replays the logged accesses against the hierarchy and clears the
// log. The latencies the replay produces are discarded — timing was charged
// from the bound-phase probes; what Apply establishes is the canonical
// post-epoch LLC state every core's next epoch reads.
func (p *BoundPort) Apply() {
	for _, op := range p.ops {
		p.h.AccessLatency(int(op.Core), op.Block)
	}
	p.ops = p.ops[:0]
}

// Pending returns the number of unapplied logged accesses (tests).
func (p *BoundPort) Pending() int { return len(p.ops) }

// Warm touches the LLC with a demand for block without charging latency
// or counters — the functional fast-forward path's view of the
// hierarchy. Contents and replacement state evolve exactly as under
// AccessLatency (lookup refreshes LRU, a miss installs the block); only
// the timing and the hit/miss statistics are skipped.
func (h *Hierarchy) Warm(block isa.Addr) {
	if !h.llc.Lookup(key(block)) {
		h.llc.Insert(key(block))
	}
}

// ExportLLCState captures the LLC tag store for a warm-up snapshot.
func (h *Hierarchy) ExportLLCState() cache.CacheState { return h.llc.ExportState() }

// RestoreLLCState overwrites the LLC contents from a snapshot.
func (h *Hierarchy) RestoreLLCState(st cache.CacheState) error { return h.llc.RestoreState(st) }

// MetadataLatency returns the cost of reading virtualized predictor
// metadata homed in the LLC from tile `core`: a mesh round trip to the bank
// holding the metadata line plus the bank access. Metadata reads never miss
// (the reserved region is pinned).
func (h *Hierarchy) MetadataLatency(core int, line isa.Addr) int {
	return h.cfg.Mesh.RoundTrip(core, h.bank(line)) + h.cfg.LLCHitCycles
}

// AvgLLCLatency returns the expected LLC-hit latency from a tile, used by
// components that need a representative latency rather than a per-access
// one (e.g. prefetch scheduling).
func (h *Hierarchy) AvgLLCLatency(core int) float64 {
	return h.cfg.Mesh.AvgRoundTrip(core) + float64(h.cfg.LLCHitCycles)
}

// ResetStats zeroes hit/miss counters (warmup boundary).
func (h *Hierarchy) ResetStats() {
	h.LLCHits, h.LLCMisses = 0, 0
	h.llc.ResetStats()
}
