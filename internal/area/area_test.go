package area

import (
	"math"
	"testing"
)

func TestCalibrationPoints(t *testing.T) {
	// The model must reproduce the paper's published CACTI numbers at its
	// calibration points.
	if got := SRAM(10138); math.Abs(got-0.08) > 0.005 {
		t.Errorf("9.9KB -> %.4f mm², paper says 0.08", got)
	}
	if got := SRAM(140 << 10); math.Abs(got-0.60) > 0.01 {
		t.Errorf("140KB -> %.4f mm², paper says 0.60", got)
	}
}

func TestAirBTBAreaMatchesPaper(t *testing.T) {
	// AirBTB's 10.2KB should land at ~0.08 mm² (paper §4.2.2).
	got := SRAM(10445)
	if math.Abs(got-0.08) > 0.01 {
		t.Errorf("10.2KB -> %.4f mm², paper says ~0.08", got)
	}
}

func TestMonotonicity(t *testing.T) {
	prev := 0.0
	for _, kb := range []int{1, 4, 16, 64, 256, 1024} {
		got := SRAM(kb << 10)
		if got <= prev {
			t.Fatalf("area not increasing at %d KB", kb)
		}
		prev = got
	}
	if SRAM(0) != 0 || SRAM(-5) != 0 {
		t.Error("non-positive sizes must cost nothing")
	}
}

func TestSRAMBits(t *testing.T) {
	if SRAMBits(8*1024) != SRAM(1024) {
		t.Error("SRAMBits conversion wrong")
	}
}

func TestConventionalBTBBits(t *testing.T) {
	// 1K entries, 4-way: tag = 46-8 = 38 bits; payload 37 -> 75 bits/entry.
	bits := ConventionalBTBBits(1024, 4)
	if bits != 1024*75 {
		t.Errorf("1K-entry BTB = %d bits, want %d", bits, 1024*75)
	}
	// Bigger structures have smaller tags.
	perEntry16K := ConventionalBTBBits(16<<10, 8) / (16 << 10)
	if perEntry16K >= 75 {
		t.Errorf("16K-entry per-entry bits = %d, want < 75", perEntry16K)
	}
	if ConventionalBTBBits(0, 4) != 0 {
		t.Error("zero entries must cost nothing")
	}
}

func TestBaselineBTBNearPaperSize(t *testing.T) {
	// 1K-entry BTB + 64-entry victim buffer ≈ 9.9KB (paper §4.2.2).
	bits := ConventionalBTBBits(1024, 4) + VictimBufferBits(64)
	kb := float64(bits) / 8 / 1024
	if kb < 9 || kb > 11 {
		t.Errorf("baseline BTB = %.2f KB, paper says 9.9", kb)
	}
}

func TestTwoLevelBTBNearPaperSize(t *testing.T) {
	// 16K-entry second level ≈ 140KB (paper §2.3).
	kb := float64(ConventionalBTBBits(16<<10, 8)) / 8 / 1024
	if kb < 125 || kb > 150 {
		t.Errorf("16K-entry BTB = %.1f KB, paper says ~140", kb)
	}
}

func TestRelative(t *testing.T) {
	if Relative(0) != 1.0 {
		t.Error("zero overhead must be relative area 1.0")
	}
	if got := Relative(CoreMM2); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("Relative(core) = %v", got)
	}
}

func TestShiftPerCore(t *testing.T) {
	// 0.96 mm² across 16 cores (paper §4.2.1).
	if math.Abs(ShiftPerCoreMM2*16-0.96) > 1e-9 {
		t.Errorf("SHIFT chip-wide = %v", ShiftPerCoreMM2*16)
	}
}
