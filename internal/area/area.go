// Package area estimates silicon area for the frontend structures, standing
// in for the paper's CACTI 6.5 runs (40nm, 48-bit VA). The model is a
// power-law fit through the paper's published design points:
//
//	9.9KB  (1K-entry conventional BTB + 64-entry victim buffer) -> 0.08 mm²
//	140KB  (16K-entry second-level BTB)                         -> 0.60 mm²
//
// and reproduces the paper's other numbers at its design points (AirBTB's
// 10.2KB -> 0.08 mm²; SHIFT's LLC tag-array extension -> 0.06 mm² per
// core). Figures 2 and 6 need only relative area per core, for which the
// fit is exact at the calibration points by construction.
package area

import "math"

// Calibration constants (fit through the two published points above).
var (
	expo  = math.Log(0.60/0.08) / math.Log(140.0/9.9)
	coeff = 0.08 / math.Pow(9.9, expo)
)

// CoreMM2 is the per-core area of the modeled ARM Cortex-A72-like core at
// 40nm (paper §2.3).
const CoreMM2 = 7.2

// SRAM returns the estimated area in mm² of an SRAM structure of the given
// size in bytes.
func SRAM(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	kb := float64(bytes) / 1024
	return coeff * math.Pow(kb, expo)
}

// SRAMBits is SRAM for a size given in bits.
func SRAMBits(bits int) float64 { return SRAM((bits + 7) / 8) }

// ShiftPerCoreMM2 is SHIFT's per-core overhead: the LLC tag-array extension
// for index pointers, 0.96 mm² chip-wide over 16 cores (paper §4.2.1). The
// history buffer itself occupies existing LLC data blocks and costs no
// silicon.
const ShiftPerCoreMM2 = 0.96 / 16

// ConventionalBTBBits returns the storage bits of a conventional
// basic-block BTB: per entry a tag (48-bit VA, word-aligned, minus set
// index), a 30-bit target displacement, 2-bit type, 4-bit fall-through and
// a valid bit.
func ConventionalBTBBits(entries, ways int) int {
	if entries <= 0 {
		return 0
	}
	sets := entries / ways
	idx := 0
	for 1<<idx < sets {
		idx++
	}
	tag := 46 - idx
	return entries * (tag + 30 + 2 + 4 + 1)
}

// VictimBufferBits returns the bits of a fully-associative victim buffer
// with full 46-bit tags.
func VictimBufferBits(entries int) int {
	return entries * (46 + 30 + 2 + 4 + 1)
}

// Relative converts a per-core overhead in mm² into the relative core area
// used on the x-axis of the paper's Figures 2 and 6.
func Relative(overheadMM2 float64) float64 { return (CoreMM2 + overheadMM2) / CoreMM2 }
