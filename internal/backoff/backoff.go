// Package backoff is the shared retry pacing helper: exponential delays
// with full jitter, deterministic under a seeded source so tests that
// exercise retry loops (lease renewal, fleet claim scans) stay
// reproducible. The zero Policy is unusable; start from Default and
// override fields.
package backoff

import (
	"math/rand/v2"
	"time"
)

// Policy shapes a retry schedule: Base doubles (times Factor) per attempt
// up to Max, and each delay is jittered uniformly in [delay*(1-Jitter),
// delay]. Jitter spreads concurrent retriers (two workers whose claim
// scans collide must not collide forever); the deterministic source keeps
// the spread reproducible.
type Policy struct {
	Base   time.Duration // first delay (attempt 0)
	Max    time.Duration // ceiling on the un-jittered delay
	Factor float64       // growth per attempt; <= 1 means constant
	Jitter float64       // fraction of the delay randomized away, in [0, 1]
}

// Default is the fleet's retry shape: fast first retry, capped at a
// second, half-jittered.
var Default = Policy{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}

// Delay returns the pause before retry number attempt (0-based), drawing
// jitter from rng. A nil rng skips jitter entirely, which callers use for
// exact-schedule tests.
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.Base)
	if d <= 0 {
		d = float64(Default.Base)
	}
	f := p.Factor
	if f < 1 {
		f = 1
	}
	for i := 0; i < attempt; i++ {
		d *= f
		if p.Max > 0 && d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if rng != nil && p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		d *= 1 - j*rng.Float64()
	}
	return time.Duration(d)
}

// Sleep pauses for Delay(attempt, rng) or until cancel is closed,
// reporting false when the wait was cancelled. It is the loop body shared
// by the fleet's claim scan and lease renewal retries.
func (p Policy) Sleep(attempt int, rng *rand.Rand, cancel <-chan struct{}) bool {
	t := time.NewTimer(p.Delay(attempt, rng))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}
