package backoff

import (
	"math/rand/v2"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	a := rand.New(rand.NewPCG(42, 0))
	b := rand.New(rand.NewPCG(42, 0))
	for attempt := 0; attempt < 8; attempt++ {
		got := p.Delay(attempt, a)
		unjittered := p.Delay(attempt, nil)
		if got > unjittered || got < unjittered/2 {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", attempt, got, unjittered/2, unjittered)
		}
		if again := p.Delay(attempt, b); again != got {
			t.Errorf("Delay(%d): same seed gave %v then %v", attempt, got, again)
		}
	}
}

func TestDelayDegenerateFieldsFallBack(t *testing.T) {
	var p Policy // zero Base/Factor must not produce a zero busy-loop delay
	if got := p.Delay(0, nil); got != Default.Base {
		t.Errorf("zero policy Delay(0) = %v, want Default.Base %v", got, Default.Base)
	}
	if got := p.Delay(5, nil); got != Default.Base {
		t.Errorf("zero policy (Factor<1) Delay(5) = %v, want constant %v", got, Default.Base)
	}
	over := Policy{Base: time.Millisecond, Factor: 2, Jitter: 3}
	if got := over.Delay(0, rand.New(rand.NewPCG(1, 0))); got < 0 || got > time.Millisecond {
		t.Errorf("Jitter>1 Delay = %v outside [0, base]", got)
	}
}

func TestSleepCancel(t *testing.T) {
	p := Policy{Base: time.Hour, Factor: 1}
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	if p.Sleep(0, nil, cancel) {
		t.Error("Sleep with closed cancel returned true")
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled Sleep actually slept")
	}
	fast := Policy{Base: time.Microsecond, Factor: 1}
	if !fast.Sleep(0, nil, make(chan struct{})) {
		t.Error("uncancelled Sleep returned false")
	}
}
