package phantom

import (
	"reflect"
	"testing"

	"confluence/internal/isa"
)

func TestStateRoundTrip(t *testing.T) {
	store := NewStore(1024)
	p := New("pb", 64, 4, 16, store, 20)
	// Form several groups and leave one fill in flight plus a partially
	// formed current group, so every State field is non-trivial.
	for g := 0; g < 4; g++ {
		base := isa.Addr(0x8000 + g*0x1000)
		for i := 0; i < GroupEntries; i++ {
			missAndResolve(p, float64(g*10+i), base+isa.Addr(i*8))
		}
	}
	p.Lookup(100, 0x8000, 0x8004) // group hit queues a pending fill
	missAndResolve(p, 101, 0x20000)

	st := p.ExportState()
	if !st.CurValid && len(st.Pending) == 0 {
		t.Fatal("training left no in-flight state to snapshot")
	}
	freshStore := NewStore(1024)
	fresh := New("pb", 64, 4, 16, freshStore, 20)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported per-core state differs from the snapshot")
	}

	sst := store.ExportState()
	if err := freshStore.RestoreState(sst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(freshStore.ExportState(), sst) {
		t.Error("re-exported store state differs from the snapshot")
	}

	// Bit-identical future decisions once both halves are restored.
	r1 := p.Lookup(200, 0x9000, 0x9004)
	r2 := fresh.Lookup(200, 0x9000, 0x9004)
	if r1 != r2 {
		t.Errorf("post-restore lookup diverged: %+v vs %+v", r1, r2)
	}
}

func TestStateRestoreRejectsGeometryMismatch(t *testing.T) {
	store := NewStore(1024)
	p := New("pb", 64, 4, 16, store, 20)
	missAndResolve(p, 0, 0x8000)
	st := p.ExportState()
	if err := New("pb", 32, 4, 16, NewStore(1024), 20).RestoreState(st); err == nil {
		t.Error("restore into mismatched L1 geometry succeeded")
	}

	sst := store.ExportState()
	if err := NewStore(512).RestoreState(sst); err == nil {
		t.Error("store restore into mismatched capacity succeeded")
	}
}
