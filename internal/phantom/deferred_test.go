package phantom

import (
	"testing"

	"confluence/internal/isa"
)

// TestDeferredLogsStoreOps: in deferred mode the shared store is untouched
// during lookups and group completions; ApplyLog replays the ops so the
// store (contents and counters) ends exactly as a direct run of the same
// per-core sequence.
func TestDeferredLogsStoreOps(t *testing.T) {
	directStore := NewStore(1024)
	direct := New("pb", 64, 4, 16, directStore, 20)
	deferStore := NewStore(1024)
	deferred := New("pb", 64, 4, 16, deferStore, 20)
	deferred.SetDeferred(true)

	base := isa.Addr(0x8000)
	for i := 0; i < GroupEntries; i++ {
		bb := base + isa.Addr(i*8)
		missAndResolve(direct, float64(i), bb)
		missAndResolve(deferred, float64(i), bb)
	}
	if directStore.groups.Len() != 1 {
		t.Fatalf("direct store holds %d groups, want 1", directStore.groups.Len())
	}
	if deferStore.groups.Len() != 0 {
		t.Fatal("deferred mode mutated the shared store before ApplyLog")
	}
	// GroupEntries probe touches + 1 completed-group insert.
	if want := GroupEntries + 1; deferred.PendingLog() != want {
		t.Fatalf("logged %d ops, want %d", deferred.PendingLog(), want)
	}
	deferred.ApplyLog()
	if deferred.PendingLog() != 0 {
		t.Fatal("ApplyLog did not clear the log")
	}
	if deferStore.groups.Len() != 1 {
		t.Fatalf("applied store holds %d groups, want 1", deferStore.groups.Len())
	}
	ds, as := directStore.groups.Stats(), deferStore.groups.Stats()
	if ds != as {
		t.Errorf("store counters diverged: direct %+v vs applied %+v", ds, as)
	}
}

// TestDeferredReadsFrozenStore: a group another core inserted before the
// epoch is visible to a deferred lookup (Peek), and the fill still arrives.
func TestDeferredReadsFrozenStore(t *testing.T) {
	store := NewStore(1024)
	writer := New("w", 64, 4, 16, store, 20)
	base := isa.Addr(0x8000)
	for i := 0; i < GroupEntries; i++ {
		missAndResolve(writer, float64(i), base+isa.Addr(i*8))
	}

	reader := New("r", 64, 4, 16, store, 20)
	reader.SetDeferred(true)
	reader.Lookup(100, base, base+4)
	if reader.GroupFills != 1 {
		t.Fatalf("deferred lookup missed the frozen group (fills=%d)", reader.GroupFills)
	}
	// After the metadata latency the group drains into the prefetch buffer
	// and the next lookup hits.
	res := reader.Lookup(125, base, base+4)
	if !res.Hit {
		t.Fatal("group fill did not arrive through the deferred path")
	}
	if reader.GroupHits != 1 {
		t.Fatalf("GroupHits = %d, want 1", reader.GroupHits)
	}
}
