// Package phantom implements PhantomBTB (Burcea & Moshovos, ASPLOS'09) as
// configured by the paper: a 1K-entry conventional first-level BTB with a
// 64-entry prefetch buffer, backed by temporal groups of BTB entries
// virtualized into LLC lines — six entries per 64B line, 4K lines, tagged by
// a 32-instruction code region — shared across cores (the paper's
// SHIFT-inspired variant). A first-level miss triggers a group prefetch from
// the LLC; the group arrives after an LLC round trip, so its usefulness
// depends on the miss recurring soon (temporal correlation).
package phantom

import (
	"confluence/internal/btb"
	"confluence/internal/cache"
	"confluence/internal/isa"
	"confluence/internal/trace"
)

// GroupEntries is how many BTB entries fit in one virtualized LLC line
// (the paper packs six).
const GroupEntries = 6

// regionShift tags temporal groups with a 32-instruction (128-byte) region.
const regionShift = 7

type taggedEntry struct {
	key uint64 // BTB key (bb start >> 2)
	e   btb.Entry
}

type group struct {
	n       int
	entries [GroupEntries]taggedEntry
}

// Store is the shared virtualized temporal-group table living in LLC data
// blocks: 4K lines by default, LRU over regions. One Store is shared by all
// cores running the workload. Groups are stored by value — one LLC line's
// worth of entries inline in the tag store — so group insertion does not
// allocate.
type Store struct {
	groups *cache.Assoc[group]
}

// NewStore creates a store with the given number of LLC lines (power of
// two; the paper dedicates 4K lines = 256KB).
func NewStore(lines int) *Store {
	return &Store{groups: cache.NewAssoc[group](lines/4, 4)}
}

// Bytes returns the LLC footprint of the store.
func (s *Store) Bytes() int { return s.groups.Capacity() * isa.BlockBytes }

// PhantomBTB is the per-core view: private first level + prefetch buffer,
// shared virtualized second level.
type PhantomBTB struct {
	name  string
	l1    *cache.Assoc[btb.Entry]
	pfbuf *cache.Victim[btb.Entry]
	store *Store

	// Group formation: consecutive L1-BTB misses accumulate into cur,
	// tagged by the region of the first miss.
	cur       group
	curRegion uint64
	curValid  bool
	missPend  bool // last lookup missed; Resolve appends to the group

	// Pending group fills (LLC latency) awaiting arrival.
	pending []pendingFill

	// metaLatency is the representative LLC metadata round-trip for this
	// core's tile.
	metaLatency float64

	// asBase tags region keys in the shared store with this core's
	// address space (workload consolidation): cores running different
	// workloads compete for store capacity without aliasing regions. Zero —
	// every homogeneous run — is the identity.
	asBase isa.Addr

	// deferred switches the shared store to bound-phase semantics: reads
	// answer from the frozen contents (Peek, no LRU/counter update) and
	// every store operation is logged instead of applied; ApplyLog replays
	// the log at the weave barrier. Private state (L1, prefetch buffer,
	// group formation, pending fills) always updates immediately.
	deferred bool
	log      []storeOp

	GroupFills, GroupHits uint64
}

// storeOp is one logged shared-store operation: a group-table probe (the
// LRU touch and hit/miss accounting of a Lookup) or a completed-group
// insertion.
type storeOp struct {
	region uint64
	g      group
	insert bool
}

type pendingFill struct {
	ready float64
	g     group
}

// New creates a per-core PhantomBTB over a shared store. l1Sets×l1Ways is
// the first level (the paper's is 1K entries, 4-way); pfEntries the
// prefetch buffer (64); metaLatency the LLC round-trip cycles for group
// fetches.
func New(name string, l1Sets, l1Ways, pfEntries int, store *Store, metaLatency float64) *PhantomBTB {
	return NewASID(name, l1Sets, l1Ways, pfEntries, store, metaLatency, 0)
}

// NewASID is New with an address-space tag (isa.ASIDBase of the core's mix
// slot) applied to the shared store's region keys.
func NewASID(name string, l1Sets, l1Ways, pfEntries int, store *Store, metaLatency float64, asBase isa.Addr) *PhantomBTB {
	return &PhantomBTB{
		name:        name,
		l1:          cache.NewAssoc[btb.Entry](l1Sets, l1Ways),
		pfbuf:       cache.NewVictim[btb.Entry](pfEntries),
		store:       store,
		metaLatency: metaLatency,
		asBase:      asBase,
	}
}

// Name implements the frontend BTB interface.
func (p *PhantomBTB) Name() string { return p.name }

func region(pc isa.Addr) uint64 { return uint64(pc) >> regionShift }

// drain moves arrived group fills into the prefetch buffer.
func (p *PhantomBTB) drain(now float64) {
	kept := p.pending[:0]
	for _, f := range p.pending {
		if f.ready <= now {
			for i := 0; i < f.g.n; i++ {
				te := f.g.entries[i]
				p.pfbuf.Put(te.key, te.e)
			}
		} else {
			kept = append(kept, f)
		}
	}
	p.pending = kept
}

// Lookup implements the frontend BTB interface.
func (p *PhantomBTB) Lookup(now float64, bb, brPC isa.Addr) btb.Result {
	p.drain(now)
	k := uint64(bb) >> 2
	if e, ok := p.l1.Lookup(k); ok {
		p.missPend = false
		return btb.Result{Hit: true, Entry: e}
	}
	if e, ok := p.pfbuf.Take(k); ok {
		p.insertL1(k, e)
		p.missPend = false
		p.GroupHits++
		return btb.Result{Hit: true, Entry: e}
	}
	// First-level miss: trigger a group prefetch for this region and let
	// Resolve append the missing entry to the forming group.
	p.missPend = true
	r := region(bb | p.asBase)
	if p.deferred {
		p.log = append(p.log, storeOp{region: r})
		if g, ok := p.store.groups.Peek(r); ok {
			p.pending = append(p.pending, pendingFill{ready: now + p.metaLatency, g: g})
			p.GroupFills++
		}
	} else if g, ok := p.store.groups.Lookup(r); ok {
		p.pending = append(p.pending, pendingFill{ready: now + p.metaLatency, g: g})
		p.GroupFills++
	}
	return btb.Result{}
}

// SetDeferred switches the shared group store between immediate and
// bound-phase (probe-and-log) semantics; see the deferred field. Turning
// deferral off does not discard a pending log — ApplyLog drains it.
func (p *PhantomBTB) SetDeferred(on bool) { p.deferred = on }

// ApplyLog replays the logged store operations — probe touches and group
// insertions, in call order — against the shared store and clears the log.
// The weave barrier calls this per core in canonical order, so the store's
// contents, replacement state, and counters evolve identically for any
// bound-phase worker count.
func (p *PhantomBTB) ApplyLog() {
	for i := range p.log {
		op := &p.log[i]
		if op.insert {
			p.store.groups.Insert(op.region, op.g)
		} else {
			p.store.groups.Lookup(op.region)
		}
	}
	p.log = p.log[:0]
}

// PendingLog returns the number of unapplied logged store operations
// (tests).
func (p *PhantomBTB) PendingLog() int { return len(p.log) }

func (p *PhantomBTB) insertL1(k uint64, e btb.Entry) {
	p.l1.Insert(k, e)
}

// Resolve implements the frontend BTB interface: install the resolved entry
// in the first level and, when the lookup missed, append it to the current
// temporal group (consecutive misses pack together).
func (p *PhantomBTB) Resolve(now float64, bb isa.Addr, nInstr int, br trace.BranchInfo) {
	if !br.Kind.IsBranch() || !br.Taken {
		p.missPend = false
		return
	}
	k := uint64(bb) >> 2
	e := btb.Entry{Kind: br.Kind, Target: br.Target, FallN: uint8(nInstr)}
	p.insertL1(k, e)
	if !p.missPend {
		return
	}
	p.missPend = false
	if !p.curValid {
		p.curValid = true
		p.curRegion = region(bb | p.asBase)
		p.cur = group{}
	}
	p.cur.entries[p.cur.n] = taggedEntry{key: k, e: e}
	p.cur.n++
	if p.cur.n == GroupEntries {
		if p.deferred {
			p.log = append(p.log, storeOp{region: p.curRegion, g: p.cur, insert: true})
		} else {
			p.store.groups.Insert(p.curRegion, p.cur)
		}
		p.curValid = false
	}
}

// BlockFilled implements the frontend BTB interface (no-op: PhantomBTB is
// decoupled from L1-I content).
func (p *PhantomBTB) BlockFilled(now float64, block isa.Addr, branches []isa.PredecodedBranch, demand bool) {
}

// BlockEvicted implements the frontend BTB interface (no-op).
func (p *PhantomBTB) BlockEvicted(block isa.Addr) {}
