package phantom

import (
	"fmt"

	"confluence/internal/btb"
	"confluence/internal/cache"
)

// Warm-up snapshot support. The internal group/taggedEntry types are
// unexported (values never leave the package in live operation), so the
// snapshot forms below mirror them field-for-field in exported shape —
// gob cannot serialize unexported fields. Conversions are lossless.
//
// Snapshots are captured at phase boundaries, where the bound-phase
// deferred log is empty by construction (ApplyLog runs at every weave
// barrier), so the log is not part of the state.

// GroupState is the exported form of one temporal group.
type GroupState struct {
	N       int
	Keys    [GroupEntries]uint64
	Entries [GroupEntries]btb.Entry
}

func exportGroup(g group) GroupState {
	out := GroupState{N: g.n}
	for i, te := range g.entries {
		out.Keys[i], out.Entries[i] = te.key, te.e
	}
	return out
}

func importGroup(st GroupState) group {
	g := group{n: st.N}
	for i := range g.entries {
		g.entries[i] = taggedEntry{key: st.Keys[i], e: st.Entries[i]}
	}
	return g
}

// StoreState is the serializable state of the shared group Store.
type StoreState struct {
	Groups cache.AssocState
	Vals   []GroupState
}

// ExportState deep-copies the store contents.
func (s *Store) ExportState() StoreState {
	st, vals := s.groups.ExportState()
	out := StoreState{Groups: st, Vals: make([]GroupState, len(vals))}
	for i, g := range vals {
		out.Vals[i] = exportGroup(g)
	}
	return out
}

// RestoreState overwrites the store contents from a snapshot; geometry
// must match.
func (s *Store) RestoreState(st StoreState) error {
	vals := make([]group, len(st.Vals))
	for i, g := range st.Vals {
		vals[i] = importGroup(g)
	}
	return s.groups.RestoreState(st.Groups, vals)
}

// PendingFillState is the exported form of one in-flight group fill.
type PendingFillState struct {
	Ready float64
	G     GroupState
}

// State is the serializable per-core PhantomBTB state: first level,
// prefetch buffer, group formation, and in-flight fills. The shared
// Store snapshots separately (one per system, not per core). Diagnostic
// counters (GroupFills, GroupHits) are excluded.
type State struct {
	L1     cache.AssocState
	L1Vals []btb.Entry
	PF     cache.VictimState
	PFVals []btb.Entry

	Cur       GroupState
	CurRegion uint64
	CurValid  bool
	MissPend  bool

	Pending []PendingFillState
}

// ExportState deep-copies the per-core state.
func (p *PhantomBTB) ExportState() State {
	l1, l1v := p.l1.ExportState()
	pf, pfv := p.pfbuf.ExportState()
	st := State{
		L1: l1, L1Vals: l1v,
		PF: pf, PFVals: pfv,
		Cur:       exportGroup(p.cur),
		CurRegion: p.curRegion,
		CurValid:  p.curValid,
		MissPend:  p.missPend,
	}
	for _, f := range p.pending {
		st.Pending = append(st.Pending, PendingFillState{Ready: f.ready, G: exportGroup(f.g)})
	}
	return st
}

// RestoreState overwrites the per-core state from a snapshot; geometry
// must match. A restore with a non-empty deferred log would lose logged
// operations, so it is rejected.
func (p *PhantomBTB) RestoreState(st State) error {
	if len(p.log) != 0 {
		return fmt.Errorf("phantom: restore with %d unapplied logged store ops", len(p.log))
	}
	if err := p.l1.RestoreState(st.L1, st.L1Vals); err != nil {
		return err
	}
	if err := p.pfbuf.RestoreState(st.PF, st.PFVals); err != nil {
		return err
	}
	p.cur = importGroup(st.Cur)
	p.curRegion = st.CurRegion
	p.curValid = st.CurValid
	p.missPend = st.MissPend
	p.pending = p.pending[:0]
	for _, f := range st.Pending {
		p.pending = append(p.pending, pendingFill{ready: f.Ready, g: importGroup(f.G)})
	}
	return nil
}
