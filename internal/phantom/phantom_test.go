package phantom

import (
	"testing"

	"confluence/internal/isa"
	"confluence/internal/trace"
)

func taken(pc isa.Addr, target isa.Addr) trace.BranchInfo {
	return trace.BranchInfo{PC: pc, Kind: isa.BrUncond, Taken: true, Target: target}
}

// missAndResolve drives one L1-BTB miss + resolution for bb.
func missAndResolve(p *PhantomBTB, now float64, bb isa.Addr) {
	p.Lookup(now, bb, bb+4)
	p.Resolve(now, bb, 2, taken(bb+4, bb+0x1000))
}

func TestGroupFormationPacksSixMisses(t *testing.T) {
	store := NewStore(1024)
	p := New("pb", 64, 4, 16, store, 20)
	// Six consecutive misses within one region (128B) form a group.
	base := isa.Addr(0x8000)
	for i := 0; i < GroupEntries; i++ {
		missAndResolve(p, float64(i), base+isa.Addr(i*8))
	}
	if _, ok := store.groups.Lookup(region(base)); !ok {
		t.Fatal("temporal group not stored after six misses")
	}
}

func TestGroupTaggedByFirstMissRegion(t *testing.T) {
	store := NewStore(1024)
	p := New("pb", 64, 4, 16, store, 20)
	first := isa.Addr(0x8000)
	// Misses spanning two regions still tag with the first miss's region.
	for i := 0; i < GroupEntries; i++ {
		missAndResolve(p, float64(i), first+isa.Addr(i*64))
	}
	if _, ok := store.groups.Lookup(region(first)); !ok {
		t.Fatal("group not tagged by first miss")
	}
}

func TestPrefetchFillArrivesAfterLatency(t *testing.T) {
	store := NewStore(1024)
	const lat = 20
	p := New("pb", 4, 1, 16, store, lat)
	base := isa.Addr(0x8000)
	// Build a stored group.
	for i := 0; i < GroupEntries; i++ {
		missAndResolve(p, float64(i), base+isa.Addr(i*8))
	}
	// Fresh PhantomBTB sharing the store: a miss in the region triggers the
	// group fetch.
	q := New("pb2", 4, 1, 16, store, lat)
	now := 100.0
	if res := q.Lookup(now, base, base+4); res.Hit {
		t.Fatal("unexpected hit")
	}
	// Before the fill lands, another entry from the group still misses.
	if res := q.Lookup(now+1, base+8, base+12); res.Hit {
		t.Error("group arrived instantly; latency not modeled")
	}
	// After the latency, group entries hit via the prefetch buffer.
	if res := q.Lookup(now+lat+1, base+16, base+20); !res.Hit {
		t.Error("group entry not available after fill latency")
	}
	if q.GroupHits == 0 {
		t.Error("GroupHits not counted")
	}
}

func TestResolveWithoutMissDoesNotGroup(t *testing.T) {
	store := NewStore(1024)
	p := New("pb", 64, 4, 16, store, 20)
	bb := isa.Addr(0x9000)
	p.Resolve(0, bb, 2, taken(bb+4, 0xA000)) // hit-path resolve (no preceding miss)
	if p.curValid {
		t.Error("group formation started without an L1 miss")
	}
	// The entry still landed in L1.
	if res := p.Lookup(1, bb, bb+4); !res.Hit {
		t.Error("resolved entry not in first level")
	}
}

func TestNotTakenClearsPendingMiss(t *testing.T) {
	store := NewStore(1024)
	p := New("pb", 64, 4, 16, store, 20)
	bb := isa.Addr(0x9000)
	p.Lookup(0, bb, bb+4) // miss
	p.Resolve(0, bb, 2, trace.BranchInfo{PC: bb + 4, Kind: isa.BrCond, Taken: false})
	if p.curValid {
		t.Error("not-taken resolve joined a temporal group")
	}
}

func TestStoreBytes(t *testing.T) {
	s := NewStore(4096)
	if s.Bytes() != 4096*isa.BlockBytes {
		t.Errorf("Bytes = %d", s.Bytes())
	}
}

func TestSharedStoreAcrossCores(t *testing.T) {
	store := NewStore(1024)
	gen := New("gen", 64, 4, 16, store, 10)
	use := New("use", 64, 4, 16, store, 10)
	base := isa.Addr(0xA000)
	for i := 0; i < GroupEntries; i++ {
		missAndResolve(gen, float64(i), base+isa.Addr(i*8))
	}
	// The second core benefits from the first core's groups.
	use.Lookup(50, base, base+4)
	if res := use.Lookup(100, base+8, base+12); !res.Hit {
		t.Error("shared store did not serve the second core")
	}
}
