// Package core implements Confluence, the paper's contribution: a frontend
// whose single stream-based prefetcher (SHIFT) proactively fills both the
// L1-I and the BTB from one set of block-grain control-flow metadata shared
// across cores and virtualized in the LLC.
//
// The unification is the wiring: SHIFT's stream engine predicts instruction
// blocks; every block filled into the L1-I (by prefetch or on demand) is
// predecoded and its branch targets are eagerly inserted into AirBTB, whose
// bundles are evicted exactly when their blocks leave the L1-I. The package
// also assembles every competing design point evaluated by the paper
// (conventional/two-level/Phantom BTBs with FDP or SHIFT) so experiments
// compare like with like.
package core

import (
	"fmt"
	"io"

	"confluence/internal/airbtb"
	"confluence/internal/area"
	"confluence/internal/btb"
	"confluence/internal/cmp"
	"confluence/internal/fdp"
	"confluence/internal/frontend"
	"confluence/internal/isa"
	"confluence/internal/mem"
	"confluence/internal/phantom"
	"confluence/internal/prefetch"
	"confluence/internal/shift"
	"confluence/internal/synth"
	"confluence/internal/trace"
)

// DesignPoint identifies one frontend configuration from the paper's
// evaluation.
type DesignPoint int

const (
	// Base1K: 1K-entry conventional BTB + 64-entry victim buffer, no
	// instruction prefetching. The normalization baseline of Figs 2/6/7.
	Base1K DesignPoint = iota
	// FDP1K: Base1K plus fetch-directed prefetching.
	FDP1K
	// PhantomFDP: PhantomBTB (1K L1 + LLC-virtualized temporal groups) + FDP.
	PhantomFDP
	// TwoLevelFDP: 1K L1-BTB + 16K 4-cycle L2-BTB + FDP.
	TwoLevelFDP
	// TwoLevelSHIFT: the strongest conventional point: two-level BTB + SHIFT.
	TwoLevelSHIFT
	// Base1KSHIFT: 1K BTB + SHIFT (Fig 7's normalization baseline).
	Base1KSHIFT
	// PhantomSHIFT: PhantomBTB + SHIFT (Fig 7).
	PhantomSHIFT
	// Confluence: AirBTB + SHIFT with synchronized L1-I/BTB content.
	Confluence
	// IdealBTBSHIFT: 16K-entry single-cycle BTB + SHIFT (Fig 7).
	IdealBTBSHIFT
	// Ideal: perfect L1-I and perfect single-cycle BTB (Figs 2/6).
	Ideal

	// Fig 8 intermediate design points (cumulative AirBTB mechanisms).
	AirCapacity // conventional org at AirBTB-equivalent capacity
	AirSpatial  // + eager whole-block insertion on demand fills
	AirPrefetch // + SHIFT-driven fills feed the BTB too

	// SweepBTB: conventional BTB with Options.SweepBTBEntries entries, no
	// prefetching (Fig 1).
	SweepBTB
)

var designNames = map[DesignPoint]string{
	Base1K:        "Base1K",
	FDP1K:         "FDP",
	PhantomFDP:    "PhantomBTB+FDP",
	TwoLevelFDP:   "2LevelBTB+FDP",
	TwoLevelSHIFT: "2LevelBTB+SHIFT",
	Base1KSHIFT:   "Base1K+SHIFT",
	PhantomSHIFT:  "PhantomBTB+SHIFT",
	Confluence:    "Confluence",
	IdealBTBSHIFT: "IdealBTB+SHIFT",
	Ideal:         "Ideal",
	AirCapacity:   "AirBTB-Capacity",
	AirSpatial:    "AirBTB-Spatial",
	AirPrefetch:   "AirBTB-Prefetch",
	SweepBTB:      "SweepBTB",
}

func (d DesignPoint) String() string {
	if n, ok := designNames[d]; ok {
		return n
	}
	return fmt.Sprintf("DesignPoint(%d)", int(d))
}

// DesignByName resolves a design point from its String form (the names
// used in tables, golden files, and serialized job specs).
func DesignByName(name string) (DesignPoint, bool) {
	for d := Base1K; ; d++ {
		n, ok := designNames[d]
		if !ok {
			return 0, false
		}
		if n == name {
			return d, true
		}
	}
}

// DesignNames lists every design point's name in design-point order — the
// canonical vocabulary for serialized job specs.
func DesignNames() []string {
	names := make([]string, 0, len(designNames))
	for d := Base1K; ; d++ {
		n, ok := designNames[d]
		if !ok {
			return names
		}
		names = append(names, n)
	}
}

// UsesSHIFT reports whether the design point employs the shared stream
// prefetcher.
func (d DesignPoint) UsesSHIFT() bool {
	switch d {
	case TwoLevelSHIFT, Base1KSHIFT, PhantomSHIFT, Confluence, IdealBTBSHIFT, AirPrefetch:
		return true
	}
	return false
}

// UsesFDP reports whether the design point uses fetch-directed prefetching.
func (d DesignPoint) UsesFDP() bool {
	switch d {
	case FDP1K, PhantomFDP, TwoLevelFDP:
		return true
	}
	return false
}

// SourceProvider supplies core coreID's instruction stream. Providers must
// be deterministic in coreID so repeated system assembly replays the same
// simulation.
type SourceProvider func(coreID int) (trace.Source, error)

// Options tunes system assembly. Zero-valued fields default to the paper's
// configuration field by field, so a partially-specified Options (say, only
// Shift.Lookahead set) keeps its explicit values and inherits the rest. The
// one zero that is meaningful rather than a sentinel: Air.OverflowEntries
// disables the overflow buffer (Fig 10's ablation) whenever any other Air
// field is set; only an entirely-zero Air selects the full paper default.
type Options struct {
	Cores           int           // CMP size (paper: 16)
	Air             airbtb.Config // AirBTB geometry (Fig 10 sensitivity)
	Shift           shift.Config
	FDP             fdp.Config
	SweepBTBEntries int // only for SweepBTB
	// HistoryPerCore gives every core a private SHIFT history instead of
	// the shared one (ablation; the paper shares).
	HistoryPerCore bool
	// IntraWorkers bounds the worker goroutines stepping cores inside this
	// one simulation (bound-weave epochs; see internal/cmp). Zero or one is
	// the serial engine. At EpochBlocks=1 any worker count is bit-identical
	// to serial.
	IntraWorkers int
	// EpochBlocks is K, the basic blocks each core advances per bound
	// epoch. Zero or one (the default) is the exact mode; K>1 trades
	// one-epoch-stale cross-core timing feedback for parallel stepping and
	// is deterministic per K, but not bit-identical to K=1.
	EpochBlocks int
	// Sources overrides where cores' instruction streams come from. Nil
	// selects the workload's own supply: live synthetic executors, or — for
	// a workload carrying a TraceDir — file replay of its capture.
	Sources SourceProvider
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Cores: 16,
		Air:   airbtb.DefaultConfig(),
		Shift: shift.DefaultConfig(),
		FDP:   fdp.DefaultConfig(),
	}
}

// Normalized returns o with every zero-valued sentinel replaced by its
// paper default, exactly as NewMixSystem interprets it. Two Options
// values that Normalized maps to the same result assemble the same
// system, which makes the normalized form the canonical one for
// memoization and store keys. Cores is left alone (NewMixSystem rejects
// Cores <= 0 rather than defaulting it), and the meaningful zero
// survives: Air.OverflowEntries stays 0 whenever any other Air field is
// set — only an entirely-zero Air selects the full paper default.
func (o Options) Normalized() Options {
	if defAir := airbtb.DefaultConfig(); o.Air == (airbtb.Config{}) {
		o.Air = defAir
	} else {
		if o.Air.Bundles == 0 {
			o.Air.Bundles = defAir.Bundles
		}
		if o.Air.EntriesPerBundle == 0 {
			o.Air.EntriesPerBundle = defAir.EntriesPerBundle
		}
	}
	defShift := shift.DefaultConfig()
	if o.Shift.HistoryEntries == 0 {
		o.Shift.HistoryEntries = defShift.HistoryEntries
	}
	if o.Shift.Lookahead == 0 {
		o.Shift.Lookahead = defShift.Lookahead
	}
	defFDP := fdp.DefaultConfig()
	if o.FDP.QueueDepth == 0 {
		o.FDP.QueueDepth = defFDP.QueueDepth
	}
	if o.FDP.CyclesPerBB == 0 {
		o.FDP.CyclesPerBB = defFDP.CyclesPerBB
	}
	return o
}

// System is an assembled CMP plus design metadata.
type System struct {
	*cmp.System
	Design DesignPoint
	// Workload is the first mix slot's workload (the whole workload of a
	// homogeneous system); Workloads lists every mix slot.
	Workload  *synth.Workload
	Workloads []*synth.Workload
	// OverheadMM2 is the per-core silicon added relative to the Base1K
	// frontend; RelativeArea the Figs 2/6 x-axis value.
	OverheadMM2  float64
	RelativeArea float64

	// Shared structures (nil when unused), exposed for tests/ablations.
	History      *shift.History
	PhantomStore *phantom.Store
	AirBTBs      []*airbtb.AirBTB

	// HistoryPerCore records the ablation wiring (each core a private
	// SHIFT history): warm-up snapshots only capture the shared history,
	// so snapshotting is unsupported under it.
	HistoryPerCore bool
}

// NewSystem assembles a CMP running workload w on every core under design
// point dp.
func NewSystem(w *synth.Workload, dp DesignPoint, opt Options) (*System, error) {
	return NewMixSystem([]*synth.Workload{w}, dp, opt)
}

// NewMixSystem assembles a consolidated CMP: core i runs mix[i mod
// len(mix)], with its own program image, predecode metadata, timing
// calibration, and instruction source. Each mix slot occupies a distinct
// tagged address space (isa.ASIDBase), so structures shared across cores —
// the LLC, SHIFT's history, PhantomBTB's group store — are stressed by the
// mix's combined footprint without false aliasing between programs.
// Entries that are the same generated program (equal Profile and TraceDir
// — repeated references or independent rebuilds alike) share a slot, so a
// mix of N copies of one workload is bit-identical to the homogeneous
// system NewSystem builds.
//
// Under a shared SHIFT history, each distinct workload's first core is a
// history generator, so every workload's control flow is represented in
// the shared buffer; the paper's single-generator configuration is the
// single-workload special case.
func NewMixSystem(mix []*synth.Workload, dp DesignPoint, opt Options) (*System, error) {
	if opt.Cores <= 0 {
		return nil, fmt.Errorf("core: need at least one core")
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("core: empty workload mix")
	}
	if len(mix) > opt.Cores {
		// With fewer cores than mix slots some workloads would silently
		// never run — reject instead of reporting a misleading consolidation.
		return nil, fmt.Errorf("core: %d-workload mix cannot consolidate onto %d cores", len(mix), opt.Cores)
	}
	for _, w := range mix {
		if w == nil {
			return nil, fmt.Errorf("core: nil workload in mix")
		}
		if opt.Sources == nil && w.TraceDir == "" && w.Prog == nil {
			return nil, fmt.Errorf("core: workload %q has no program and no trace to replay", w.Prof.Name)
		}
	}
	opt = opt.Normalized()

	sources := opt.Sources
	if sources == nil {
		sources = func(i int) (trace.Source, error) {
			w := mix[i%len(mix)]
			if w.TraceDir != "" {
				return trace.OpenDirSource(w.TraceDir, i)
			}
			return trace.NewExecutor(w, trace.CoreSeed(w.Prof.Seed, i)), nil
		}
	}

	// slotOf[i] is mix entry i's address-space slot: distinct workloads get
	// distinct slots in first-appearance order, while entries that are the
	// same generated program share a slot — so a mix of N copies of one
	// workload (same pointer or independently rebuilt from the same
	// profile; generation is deterministic) collapses to one address space,
	// one history generator, and all-zero tags, exactly the homogeneous
	// system.
	type workloadIdentity struct {
		prof synth.Profile
		dir  string
	}
	slotOf := make([]int, len(mix))
	seen := make(map[workloadIdentity]int, len(mix))
	for i, w := range mix {
		id := workloadIdentity{prof: w.Prof, dir: w.TraceDir}
		s, ok := seen[id]
		if !ok {
			s = len(seen)
			seen[id] = s
		}
		slotOf[i] = s
	}

	sys := &System{Design: dp, Workload: mix[0], Workloads: mix, HistoryPerCore: opt.HistoryPerCore}

	// Memory hierarchy: reserve LLC capacity for virtualized metadata.
	reserved := 0
	if dp.UsesSHIFT() {
		reserved += opt.Shift.HistoryBytes()
	}
	var store *phantom.Store
	if dp == PhantomFDP || dp == PhantomSHIFT {
		store = phantom.NewStore(4 << 10)
		reserved += store.Bytes()
		sys.PhantomStore = store
	}
	memCfg := mem.DefaultConfig()
	if opt.Cores != memCfg.Banks {
		memCfg.Banks = opt.Cores
	}
	hier := mem.New(memCfg, reserved)

	var history *shift.History
	if dp.UsesSHIFT() && !opt.HistoryPerCore {
		history = shift.NewHistory(opt.Shift.HistoryEntries)
		sys.History = history
	}

	cores := make([]*frontend.Core, opt.Cores)
	srcs := make([]trace.Source, opt.Cores)
	generated := make([]bool, len(seen)) // slots with a history generator
	// Every early return below this point must release the file-backed
	// sources already opened for earlier cores (closeAll); the leak-check
	// test TestAssemblyErrorClosesSources audits exactly these paths.
	fail := func(i int, err error) (*System, error) {
		closeAll(srcs[:i])
		return nil, err
	}
	for i := 0; i < opt.Cores; i++ {
		slot := slotOf[i%len(mix)]
		w := mix[i%len(mix)]
		prof := w.Prof
		cfg := frontend.DefaultConfig()
		cfg.CoreID = i
		cfg.ASID = slot
		cfg.BackendCPI = prof.BackendCPI
		cfg.Exposure = prof.Exposure
		cfg.Hier = hier
		cfg.Prog = w.Prog

		metaLat := hier.AvgLLCLatency(i)

		// BTB design.
		switch dp {
		case Base1K, FDP1K, Base1KSHIFT:
			cfg.BTB = btb.NewConventional("Conv1K", 256, 4, 64)
		case PhantomFDP, PhantomSHIFT:
			cfg.BTB = phantom.NewASID("PhantomBTB", 256, 4, 64, store, metaLat, isa.ASIDBase(slot))
		case TwoLevelFDP, TwoLevelSHIFT:
			cfg.BTB = btb.NewTwoLevel("2LevelBTB", 256, 4, 2048, 8, 3)
		case IdealBTBSHIFT:
			cfg.BTB = btb.NewConventional("IdealBTB16K", 2048, 8, 0)
		case Confluence:
			air := airbtb.New(opt.Air)
			sys.AirBTBs = append(sys.AirBTBs, air)
			cfg.BTB = air
			cfg.PredecodePenalty = 2
		case Ideal:
			cfg.PerfectBTB = true
			cfg.PerfectL1I = true
		case AirCapacity, AirSpatial:
			cfg.BTB = airEquivalentConventional(opt.Air, dp == AirSpatial)
		case AirPrefetch:
			cfg.BTB = airEquivalentConventional(opt.Air, true)
		case SweepBTB:
			e := opt.SweepBTBEntries
			if e <= 0 {
				return fail(i, fmt.Errorf("core: SweepBTB requires SweepBTBEntries"))
			}
			cfg.BTB = btb.NewConventional(fmt.Sprintf("Conv%d", e), e/4, 4, 0)
		default:
			return fail(i, fmt.Errorf("core: unknown design point %v", dp))
		}

		// Instruction prefetcher.
		switch {
		case dp.UsesSHIFT():
			h := history
			if opt.HistoryPerCore {
				h = shift.NewHistory(opt.Shift.HistoryEntries)
				if i == 0 {
					sys.History = h
				}
			}
			cfg.Prefetcher = shift.NewEngineASID(opt.Shift, h, metaLat, isa.ASIDBase(slot))
			// One generator per distinct workload (its first core); with
			// private histories every core records its own.
			if !generated[slot] || opt.HistoryPerCore {
				generated[slot] = true
				cfg.Recorder = h
			}
		case dp.UsesFDP():
			cfg.Prefetcher = fdp.New(opt.FDP)
		default:
			cfg.Prefetcher = prefetch.Null{}
		}

		cores[i] = frontend.NewCore(cfg)
		src, err := sources(i)
		if err != nil {
			return fail(i, fmt.Errorf("core: source for core %d: %w", i, err))
		}
		srcs[i] = src
	}

	inner, err := cmp.New(cores, srcs, hier)
	if err != nil {
		closeAll(srcs)
		return nil, err
	}
	inner.SetIntra(opt.IntraWorkers, opt.EpochBlocks)
	sys.System = inner
	sys.OverheadMM2 = overheadMM2(dp, opt)
	sys.RelativeArea = area.Relative(sys.OverheadMM2)
	return sys, nil
}

// closeAll releases already-opened sources after a failed assembly.
func closeAll(srcs []trace.Source) {
	for _, s := range srcs {
		if c, ok := s.(io.Closer); ok {
			c.Close()
		}
	}
}

// airEquivalentConventional builds the Fig 8 intermediate BTB: conventional
// organization with as many entries as AirBTB holds (bundles × entries +
// overflow); eager selects predecode-driven whole-block insertion.
func airEquivalentConventional(air airbtb.Config, eager bool) btb.Design {
	entries := air.Bundles*air.EntriesPerBundle + air.OverflowEntries
	ways := 6
	sets := 1
	for sets*2*ways <= entries {
		sets *= 2
	}
	if eager {
		return btb.NewEager("AirEquivEager", sets, ways, 32)
	}
	return btb.NewConventional("AirEquivCapacity", sets, ways, 32)
}

// overheadMM2 computes the per-core silicon overhead of a design point
// relative to the Base1K frontend (1K-entry BTB + victim buffer), using the
// paper's CACTI-calibrated area model.
func overheadMM2(dp DesignPoint, opt Options) float64 {
	baseBTB := area.SRAMBits(area.ConventionalBTBBits(1024, 4) + area.VictimBufferBits(64))
	switch dp {
	case Base1K, FDP1K:
		return 0
	case PhantomFDP:
		// First level matches the baseline's cost; the virtualized second
		// level lives in existing LLC blocks (paper §4.2.2).
		return 0
	case TwoLevelFDP:
		return area.SRAMBits(area.ConventionalBTBBits(16<<10, 8))
	case TwoLevelSHIFT:
		return area.SRAMBits(area.ConventionalBTBBits(16<<10, 8)) + area.ShiftPerCoreMM2
	case Base1KSHIFT, PhantomSHIFT:
		return area.ShiftPerCoreMM2
	case Confluence, AirPrefetch:
		airMM2 := area.SRAMBits(opt.Air.StorageBits())
		return airMM2 - baseBTB + area.ShiftPerCoreMM2
	case IdealBTBSHIFT:
		return area.SRAMBits(area.ConventionalBTBBits(16<<10, 8)) - baseBTB + area.ShiftPerCoreMM2
	case Ideal:
		return 0 // plotted at relative area 1.0 (paper Figs 2/6)
	case AirCapacity, AirSpatial:
		return area.SRAMBits(opt.Air.StorageBits()) - baseBTB
	case SweepBTB:
		return area.SRAMBits(area.ConventionalBTBBits(opt.SweepBTBEntries, 4)) - baseBTB
	}
	return 0
}
