package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"confluence/internal/airbtb"
	"confluence/internal/btb"
	"confluence/internal/cache"
	"confluence/internal/cmp"
	"confluence/internal/frontend"
	"confluence/internal/phantom"
	"confluence/internal/shift"
)

// Sampling re-exports the engine's SMARTS-style sampling plan so layers
// above core (experiments, the public API) need not import internal/cmp.
type Sampling = cmp.Sampling

// Coverage re-exports the engine's full-region probe accounting.
type Coverage = cmp.Coverage

// AutoSampling re-exports cmp.AutoSampling.
func AutoSampling(measure uint64) Sampling { return cmp.AutoSampling(measure) }

// Warm-up snapshots: the full history-relevant state of a system at a
// phase boundary (typically the end of functional fast-forward warm-up),
// gob-encoded for the durable store. A restored system steps forward
// bit-identically to one that ran the warm-up live: per-core state
// restores verbatim (frontend.CoreWarmState plus the design's BTB),
// shared structures (LLC contents, SHIFT history, phantom group store)
// restore verbatim, and SkipRecords repositions every instruction stream
// to the consumed count the snapshot recorded.
//
// Snapshots are taken at phase boundaries only, where in-flight fill
// tables and K>1 deferred logs are empty by construction, so neither is
// part of the state.

// warmSnapshotVersion invalidates stored snapshots when the encoded
// layout or the set of captured state changes.
const warmSnapshotVersion = 1

func init() {
	// Concrete types carried in CoreWarmState.BTB (declared `any`).
	gob.Register(btb.ConventionalState{})
	gob.Register(btb.TwoLevelState{})
	gob.Register(airbtb.State{})
	gob.Register(phantom.State{})
}

type warmSnapshot struct {
	Version  int
	Consumed []uint64 // per-core stream records consumed at capture
	Cores    []frontend.CoreWarmState
	LLC      cache.CacheState
	History  *shift.HistoryState // nil unless the design shares a SHIFT history
	Phantom  *phantom.StoreState // nil unless the design shares a phantom store
}

// SnapshotSupported reports whether this system's warm state can be
// captured. Per-core private SHIFT histories (the HistoryPerCore
// ablation) are not reachable from the system, so that wiring falls back
// to live warm-up.
func (s *System) SnapshotSupported() bool { return !s.HistoryPerCore }

// WarmSnapshot serializes the system's warm-up state. Capture it at a
// phase boundary before any measurement (the caller keys it by workload,
// warm-up length, and warm-relevant design knobs; see
// experiments.SnapshotStoreKey).
func (s *System) WarmSnapshot() ([]byte, error) {
	if !s.SnapshotSupported() {
		return nil, fmt.Errorf("core: warm snapshots unsupported with per-core histories")
	}
	snap := warmSnapshot{
		Version:  warmSnapshotVersion,
		Consumed: s.ConsumedRecords(),
		LLC:      s.Hier.ExportLLCState(),
	}
	for _, c := range s.Cores {
		st := c.ExportWarmState()
		switch d := c.BTB().(type) {
		case nil: // PerfectBTB
		case *btb.Conventional:
			st.BTB = d.ExportState()
		case *btb.TwoLevel:
			st.BTB = d.ExportState()
		case *airbtb.AirBTB:
			st.BTB = d.ExportState()
		case *phantom.PhantomBTB:
			st.BTB = d.ExportState()
		default:
			return nil, fmt.Errorf("core: design %s BTB %T has no snapshot form", s.Design, d)
		}
		snap.Cores = append(snap.Cores, st)
	}
	if s.History != nil {
		h := s.History.ExportState()
		snap.History = &h
	}
	if s.PhantomStore != nil {
		p := s.PhantomStore.ExportState()
		snap.Phantom = &p
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("core: encoding warm snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreWarmSnapshot overwrites the system's warm state from a
// WarmSnapshot payload and repositions every core's instruction stream
// to the snapshot's consumed count. Call it on a freshly assembled
// system, before any simulation. The system must match the snapshot's
// configuration (snapshot store keys pin workload and warm-relevant
// knobs; geometry checks below catch mixups).
func (s *System) RestoreWarmSnapshot(ctx context.Context, data []byte) error {
	if !s.SnapshotSupported() {
		return fmt.Errorf("core: warm snapshots unsupported with per-core histories")
	}
	var snap warmSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("core: decoding warm snapshot: %w", err)
	}
	if snap.Version != warmSnapshotVersion {
		return fmt.Errorf("core: warm snapshot version %d, want %d", snap.Version, warmSnapshotVersion)
	}
	if len(snap.Cores) != len(s.Cores) {
		return fmt.Errorf("core: warm snapshot has %d cores, system has %d", len(snap.Cores), len(s.Cores))
	}
	for i, c := range s.Cores {
		st := snap.Cores[i]
		if err := c.RestoreWarmState(st); err != nil {
			return fmt.Errorf("core %d: %w", i, err)
		}
		if err := restoreBTB(c.BTB(), st.BTB); err != nil {
			return fmt.Errorf("core %d: %w", i, err)
		}
	}
	if err := s.Hier.RestoreLLCState(snap.LLC); err != nil {
		return fmt.Errorf("core: restoring LLC: %w", err)
	}
	if (s.History != nil) != (snap.History != nil) {
		return fmt.Errorf("core: warm snapshot history presence does not match design")
	}
	if s.History != nil {
		if err := s.History.RestoreState(*snap.History); err != nil {
			return fmt.Errorf("core: restoring history: %w", err)
		}
	}
	if (s.PhantomStore != nil) != (snap.Phantom != nil) {
		return fmt.Errorf("core: warm snapshot phantom store presence does not match design")
	}
	if s.PhantomStore != nil {
		if err := s.PhantomStore.RestoreState(*snap.Phantom); err != nil {
			return fmt.Errorf("core: restoring phantom store: %w", err)
		}
	}
	return s.SkipRecords(ctx, snap.Consumed)
}

func restoreBTB(design btb.Design, st any) error {
	switch d := design.(type) {
	case nil:
		if st != nil {
			return fmt.Errorf("core: snapshot carries BTB state for a perfect-BTB core")
		}
		return nil
	case *btb.Conventional:
		bs, ok := st.(btb.ConventionalState)
		if !ok {
			return fmt.Errorf("core: snapshot BTB state %T, core wants conventional", st)
		}
		return d.RestoreState(bs)
	case *btb.TwoLevel:
		bs, ok := st.(btb.TwoLevelState)
		if !ok {
			return fmt.Errorf("core: snapshot BTB state %T, core wants two-level", st)
		}
		return d.RestoreState(bs)
	case *airbtb.AirBTB:
		bs, ok := st.(airbtb.State)
		if !ok {
			return fmt.Errorf("core: snapshot BTB state %T, core wants AirBTB", st)
		}
		return d.RestoreState(bs)
	case *phantom.PhantomBTB:
		bs, ok := st.(phantom.State)
		if !ok {
			return fmt.Errorf("core: snapshot BTB state %T, core wants phantom", st)
		}
		return d.RestoreState(bs)
	default:
		return fmt.Errorf("core: BTB %T has no snapshot form", d)
	}
}

// WarmClass names the design-dependent portion of warm-up evolution: two
// design points with the same class, workload, warm-up length, and
// history knobs produce bit-identical warm snapshots, so they share
// store entries. The class captures exactly what functional fast-forward
// touches — BTB structure and geometry, LLC metadata reservation, and
// whether a shared history records — and deliberately omits pure timing
// knobs (prefetcher lookahead, predecode penalty, FDP configuration)
// that fast-forward never consults. Base1K and FDP1K, for example,
// differ only in an FDP engine that is idle during fast-forward, so they
// share the class "conv1k".
func (d DesignPoint) WarmClass(opt Options) string {
	opt = opt.Normalized()
	air := func() string {
		return fmt.Sprintf("%d.%d.%d", opt.Air.Bundles, opt.Air.EntriesPerBundle, opt.Air.OverflowEntries)
	}
	cls := ""
	switch d {
	case Base1K, FDP1K, Base1KSHIFT:
		cls = "conv1k"
	case TwoLevelFDP, TwoLevelSHIFT:
		cls = "2level"
	case PhantomFDP, PhantomSHIFT:
		cls = "phantom"
	case IdealBTBSHIFT:
		cls = "conv16k"
	case Confluence:
		cls = "air/" + air()
	case AirCapacity:
		cls = "aireq-lazy/" + air()
	case AirSpatial, AirPrefetch:
		cls = "aireq-eager/" + air()
	case SweepBTB:
		cls = fmt.Sprintf("conv-sweep/%d", opt.SweepBTBEntries)
	case Ideal:
		cls = "ideal"
	default:
		cls = "design/" + d.String()
	}
	// A recording shared history and its LLC reservation are part of the
	// warm state; designs differing only in SHIFT presence must not share.
	if d.UsesSHIFT() {
		cls += "+shift"
	}
	return cls
}
