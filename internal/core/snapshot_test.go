package core

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

// snapshotDesigns covers every BTB snapshot form: conventional, two-level
// (plus a shared SHIFT history), phantom (plus the shared group store),
// AirBTB, and the perfect-BTB/perfect-L1I ideal core.
var snapshotDesigns = []DesignPoint{Base1K, TwoLevelSHIFT, PhantomFDP, Confluence, Ideal}

// TestWarmSnapshotResumeBitIdentical is the contract the durable snapshot
// store leans on: a system restored from a warm snapshot must measure
// bit-identically to the system that ran the warm-up live.
func TestWarmSnapshotResumeBitIdentical(t *testing.T) {
	w := testWorkload(t)
	const warm, measure = 60_000, 40_000
	ctx := context.Background()
	for _, dp := range snapshotDesigns {
		t.Run(dp.String(), func(t *testing.T) {
			live, err := NewSystem(w, dp, smallOpts())
			if err != nil {
				t.Fatal(err)
			}
			if err := live.FastForward(ctx, warm); err != nil {
				t.Fatal(err)
			}
			snap, err := live.WarmSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			want, err := live.RunCtx(ctx, 0, measure)
			if err != nil {
				t.Fatal(err)
			}

			restored, err := NewSystem(w, dp, smallOpts())
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.RestoreWarmSnapshot(ctx, snap); err != nil {
				t.Fatal(err)
			}
			got, err := restored.RunCtx(ctx, 0, measure)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("restored run diverged: live IPC=%v, restored IPC=%v", want.IPC(), got.IPC())
			}
		})
	}
}

// TestWarmSnapshotSharesAcrossTimingKnobs pins the WarmClass equivalence:
// Base1K and FDP1K differ only in timing machinery that functional
// fast-forward never touches, so their warm snapshots are byte-identical
// and they share one store entry.
func TestWarmSnapshotSharesAcrossTimingKnobs(t *testing.T) {
	w := testWorkload(t)
	ctx := context.Background()
	var blobs [][]byte
	for _, dp := range []DesignPoint{Base1K, FDP1K} {
		sys, err := NewSystem(w, dp, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.FastForward(ctx, 50_000); err != nil {
			t.Fatal(err)
		}
		b, err := sys.WarmSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Error("Base1K and FDP1K warm snapshots differ; they must share a store entry")
	}
	if a, b := Base1K.WarmClass(smallOpts()), FDP1K.WarmClass(smallOpts()); a != b {
		t.Errorf("WarmClass(Base1K)=%q != WarmClass(FDP1K)=%q", a, b)
	}
}

func TestWarmClassDistinctions(t *testing.T) {
	opt := smallOpts()
	// A recording SHIFT history (and its LLC reservation) changes the warm
	// state, so the SHIFT variant of a BTB must not share.
	if Base1K.WarmClass(opt) == Base1KSHIFT.WarmClass(opt) {
		t.Error("Base1K and Base1KSHIFT share a warm class")
	}
	if !strings.HasSuffix(Confluence.WarmClass(opt), "+shift") {
		t.Errorf("Confluence warm class %q lacks +shift", Confluence.WarmClass(opt))
	}
	// Air geometry is warm state; different geometries must not share.
	big := opt
	big.Air.Bundles = 2 * opt.Normalized().Air.Bundles
	if Confluence.WarmClass(opt) == Confluence.WarmClass(big) {
		t.Error("Confluence warm class ignores Air geometry")
	}
	// Sweep entry count is warm state.
	a, b := opt, opt
	a.SweepBTBEntries, b.SweepBTBEntries = 1024, 2048
	if SweepBTB.WarmClass(a) == SweepBTB.WarmClass(b) {
		t.Error("SweepBTB warm class ignores entry count")
	}
}

// TestWarmSnapshotUnsupportedPerCoreHistory: the HistoryPerCore ablation
// wires private histories the system cannot reach, so snapshotting is
// refused rather than silently capturing partial state.
func TestWarmSnapshotUnsupportedPerCoreHistory(t *testing.T) {
	w := testWorkload(t)
	opt := smallOpts()
	opt.HistoryPerCore = true
	sys, err := NewSystem(w, Confluence, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sys.SnapshotSupported() {
		t.Error("SnapshotSupported() = true with per-core histories")
	}
	if _, err := sys.WarmSnapshot(); err == nil {
		t.Error("WarmSnapshot succeeded with per-core histories")
	}
	if err := sys.RestoreWarmSnapshot(context.Background(), nil); err == nil {
		t.Error("RestoreWarmSnapshot succeeded with per-core histories")
	}
}

// TestWarmSnapshotRestoreMismatch: geometry and wiring mixups must fail
// loudly — restore mutates in place, so a partial restore cannot fall
// back to live warm-up.
func TestWarmSnapshotRestoreMismatch(t *testing.T) {
	w := testWorkload(t)
	ctx := context.Background()
	sys, err := NewSystem(w, Base1K, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FastForward(ctx, 20_000); err != nil {
		t.Fatal(err)
	}
	snap, err := sys.WarmSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Wrong core count.
	opt4 := smallOpts()
	opt4.Cores = 4
	wide, err := NewSystem(w, Base1K, opt4)
	if err != nil {
		t.Fatal(err)
	}
	if err := wide.RestoreWarmSnapshot(ctx, snap); err == nil {
		t.Error("restore accepted a snapshot with a different core count")
	}

	// Wrong design wiring (Confluence has a shared history and an AirBTB).
	other, err := NewSystem(w, Confluence, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreWarmSnapshot(ctx, snap); err == nil {
		t.Error("restore accepted a snapshot from a different design family")
	}

	// Garbage payload.
	if err := sys.RestoreWarmSnapshot(ctx, []byte("not a snapshot")); err == nil {
		t.Error("restore accepted a corrupt payload")
	}
}

func TestAutoSamplingReExport(t *testing.T) {
	sp := AutoSampling(6_000_000)
	if !sp.Enabled() || sp.Windows < 1 {
		t.Fatalf("AutoSampling(6M) = %+v, want an enabled plan", sp)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if 20*sp.DetailedInstr() > 3*uint64(6_000_000) {
		t.Errorf("detailed budget %d exceeds 15%% of the region", sp.DetailedInstr())
	}
	if AutoSampling(0).Enabled() {
		t.Error("AutoSampling(0) returned an enabled plan")
	}
}
