package core

import (
	"math"
	"sync"
	"testing"

	"confluence/internal/frontend"
	"confluence/internal/isa"
	"confluence/internal/synth"
)

var (
	sharedTestWorkload     *synth.Workload
	sharedTestWorkloadErr  error
	sharedTestWorkloadOnce sync.Once
)

// testWorkload returns a shared workload big enough to pressure a 32KB
// L1-I and a 1K-entry BTB — the regime where the design points separate.
func testWorkload(t *testing.T) *synth.Workload {
	t.Helper()
	sharedTestWorkloadOnce.Do(func() {
		p := synth.OLTPDB2()
		p.Functions = 1100
		p.RequestTypes = 8
		p.Concurrency = 8
		p.Seed = 31
		sharedTestWorkload, sharedTestWorkloadErr = synth.Build(p)
	})
	if sharedTestWorkloadErr != nil {
		t.Fatal(sharedTestWorkloadErr)
	}
	return sharedTestWorkload
}

func mustRun(t *testing.T, sys *System, warmup, measure uint64) *frontend.Stats {
	t.Helper()
	st, err := sys.Run(warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func smallOpts() Options {
	opt := DefaultOptions()
	opt.Cores = 2
	return opt
}

// allDesigns lists every constructible design point (SweepBTB needs an
// entry count and is exercised separately).
var allDesigns = []DesignPoint{
	Base1K, FDP1K, PhantomFDP, TwoLevelFDP, TwoLevelSHIFT,
	Base1KSHIFT, PhantomSHIFT, Confluence, IdealBTBSHIFT, Ideal,
	AirCapacity, AirSpatial, AirPrefetch,
}

func TestNewSystemAllDesignPoints(t *testing.T) {
	w := testWorkload(t)
	for _, dp := range allDesigns {
		sys, err := NewSystem(w, dp, smallOpts())
		if err != nil {
			t.Fatalf("%v: %v", dp, err)
		}
		st := mustRun(t, sys, 5_000, 20_000)
		if st.Instructions < 2*20_000 {
			t.Errorf("%v: measured %d instructions", dp, st.Instructions)
		}
		if st.IPC() <= 0 || st.IPC() > 3 {
			t.Errorf("%v: IPC = %v", dp, st.IPC())
		}
	}
}

func TestSweepBTBRequiresEntries(t *testing.T) {
	w := testWorkload(t)
	if _, err := NewSystem(w, SweepBTB, smallOpts()); err == nil {
		t.Error("SweepBTB without entries accepted")
	}
	opt := smallOpts()
	opt.SweepBTBEntries = 2048
	if _, err := NewSystem(w, SweepBTB, opt); err != nil {
		t.Errorf("SweepBTB with entries: %v", err)
	}
}

func TestDesignPredicatesAndNames(t *testing.T) {
	if !Confluence.UsesSHIFT() || !TwoLevelSHIFT.UsesSHIFT() || Base1K.UsesSHIFT() {
		t.Error("UsesSHIFT wrong")
	}
	if !FDP1K.UsesFDP() || Confluence.UsesFDP() {
		t.Error("UsesFDP wrong")
	}
	if Confluence.String() != "Confluence" || Base1K.String() != "Base1K" {
		t.Error("names wrong")
	}
	if DesignPoint(99).String() == "" {
		t.Error("unknown design point has empty name")
	}
}

func TestAreaOverheadsMatchPaper(t *testing.T) {
	w := testWorkload(t)
	area := func(dp DesignPoint) float64 {
		sys, err := NewSystem(w, dp, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		return sys.RelativeArea
	}
	// Confluence: ~1% per-core overhead (paper's headline).
	if got := area(Confluence); got < 1.004 || got > 1.02 {
		t.Errorf("Confluence relative area = %.4f, paper says ~1.01", got)
	}
	// 2LevelBTB+SHIFT: ~8% (paper Fig 6).
	if got := area(TwoLevelSHIFT); got < 1.06 || got > 1.10 {
		t.Errorf("2LevelBTB+SHIFT relative area = %.4f, paper says ~1.08", got)
	}
	// The no-extra-hardware points sit at 1.0.
	for _, dp := range []DesignPoint{Base1K, FDP1K, PhantomFDP, Ideal} {
		if got := area(dp); math.Abs(got-1) > 1e-9 {
			t.Errorf("%v relative area = %v, want 1.0", dp, got)
		}
	}
	// Ordering: Confluence adds less silicon than the two-level designs.
	if area(Confluence) >= area(TwoLevelFDP) {
		t.Error("Confluence should be cheaper than a 16K-entry L2 BTB")
	}
}

func TestSHIFTReservesLLCCapacity(t *testing.T) {
	w := testWorkload(t)
	with, err := NewSystem(w, Confluence, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewSystem(w, Base1K, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if with.Hier.ReservedBlocks() == 0 {
		t.Error("SHIFT history reserved no LLC blocks")
	}
	if without.Hier.ReservedBlocks() != 0 {
		t.Error("baseline reserved LLC blocks")
	}
}

func TestPhantomReservesMore(t *testing.T) {
	w := testWorkload(t)
	ph, _ := NewSystem(w, PhantomSHIFT, smallOpts())
	sh, _ := NewSystem(w, Base1KSHIFT, smallOpts())
	if ph.Hier.ReservedBlocks() <= sh.Hier.ReservedBlocks() {
		t.Error("PhantomBTB's virtualized groups reserve no extra LLC space")
	}
	if ph.PhantomStore == nil {
		t.Error("phantom store not exposed")
	}
}

// TestAirBTBSyncInvariant is the core synchronization property (paper
// §3.2): after any amount of execution, every core's AirBTB holds a bundle
// exactly for the blocks resident in its L1-I.
func TestAirBTBSyncInvariant(t *testing.T) {
	w := testWorkload(t)
	sys, err := NewSystem(w, Confluence, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, sys, 10_000, 100_000)
	for i, c := range sys.Cores {
		air := sys.AirBTBs[i]
		l1Blocks := c.L1I().Keys(nil)
		if len(l1Blocks) != air.Resident() {
			t.Fatalf("core %d: %d L1-I blocks vs %d bundles", i, len(l1Blocks), air.Resident())
		}
		for _, key := range l1Blocks {
			if !air.HasBundle(isa.Addr(key) << isa.BlockShift) {
				t.Fatalf("core %d: L1-I block %#x has no bundle", i, key<<isa.BlockShift)
			}
		}
	}
}

func TestSharedHistoryIsShared(t *testing.T) {
	w := testWorkload(t)
	sys, err := NewSystem(w, Confluence, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, sys, 0, 50_000)
	if sys.History == nil || sys.History.Records == 0 {
		t.Fatal("shared history not recording")
	}
}

func TestPrivateHistoryOption(t *testing.T) {
	w := testWorkload(t)
	opt := smallOpts()
	opt.HistoryPerCore = true
	sys, err := NewSystem(w, Confluence, opt)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, sys, 0, 30_000)
	if sys.History == nil || sys.History.Records == 0 {
		t.Error("private history (core 0) not recording")
	}
}

func TestConfluenceBeatsBaseline(t *testing.T) {
	w := testWorkload(t)
	opt := smallOpts()
	base, _ := NewSystem(w, Base1K, opt)
	conf, _ := NewSystem(w, Confluence, opt)
	bs := mustRun(t, base, 100_000, 200_000)
	cs := mustRun(t, conf, 100_000, 200_000)
	if cs.IPC() <= bs.IPC() {
		t.Errorf("Confluence (%.3f) did not beat baseline (%.3f)", cs.IPC(), bs.IPC())
	}
	if cs.BTBMPKI() >= bs.BTBMPKI() {
		t.Errorf("Confluence BTB MPKI %.1f not below baseline %.1f", cs.BTBMPKI(), bs.BTBMPKI())
	}
}

func TestIdealIsBest(t *testing.T) {
	w := testWorkload(t)
	opt := smallOpts()
	ideal, _ := NewSystem(w, Ideal, opt)
	is := mustRun(t, ideal, 50_000, 100_000)
	for _, dp := range []DesignPoint{Base1K, TwoLevelSHIFT, Confluence} {
		sys, _ := NewSystem(w, dp, opt)
		st := mustRun(t, sys, 50_000, 100_000)
		if st.IPC() > is.IPC()*1.001 {
			t.Errorf("%v (%.3f) beat Ideal (%.3f)", dp, st.IPC(), is.IPC())
		}
	}
}

func TestZeroCoresRejected(t *testing.T) {
	w := testWorkload(t)
	if _, err := NewSystem(w, Base1K, Options{}); err == nil {
		t.Error("zero cores accepted")
	}
}

// testWorkloadB builds a second, distinct program for mix tests.
func testWorkloadB(t *testing.T) *synth.Workload {
	t.Helper()
	p := synth.WebFrontend()
	p.Functions = 900
	p.RequestTypes = 6
	p.Concurrency = 8
	p.Seed = 77
	w, err := synth.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestNewMixSystem covers consolidated assembly: per-core workload
// identity (calibration, program image, sources) and the validation
// contract.
func TestNewMixSystem(t *testing.T) {
	a, b := testWorkload(t), testWorkloadB(t)
	opt := DefaultOptions()
	opt.Cores = 4
	sys, err := NewMixSystem([]*synth.Workload{a, b}, Confluence, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Workload != a || len(sys.Workloads) != 2 {
		t.Errorf("workload bookkeeping: first=%v n=%d", sys.Workload.Prof.Name, len(sys.Workloads))
	}
	st := mustRun(t, sys, 50_000, 100_000)
	if st.Instructions == 0 {
		t.Fatal("mixed system executed nothing")
	}
	per := sys.PerCoreSnapshot()
	if len(per) != 4 {
		t.Fatalf("%d per-core stats", len(per))
	}
	// Cores 0 and 2 ran workload a, cores 1 and 3 ran b: the profiles
	// differ (branch mix, backend CPI), so slot stats must differ while
	// same-slot cores stay plausibly close.
	if per[0].CondBranches == per[1].CondBranches {
		t.Error("distinct workloads produced identical branch populations")
	}
	var sum frontend.Stats
	for _, p := range per {
		sum.Add(p)
	}
	if sum != *st {
		t.Error("per-core snapshots do not sum to the aggregate")
	}

	// Validation.
	if _, err := NewMixSystem(nil, Confluence, opt); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := NewMixSystem([]*synth.Workload{a, nil}, Confluence, opt); err == nil {
		t.Error("nil mix entry accepted")
	}
}

// TestMixSharedHistoryHasGeneratorPerWorkload pins the generator policy:
// consolidating two workloads under a shared history must record both
// control-flow streams (each distinct workload's first core generates),
// while N references to one workload keep the paper's single generator.
func TestMixSharedHistoryHasGeneratorPerWorkload(t *testing.T) {
	a, b := testWorkload(t), testWorkloadB(t)
	opt := DefaultOptions()
	opt.Cores = 4

	het, err := NewMixSystem([]*synth.Workload{a, b}, Confluence, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer het.Close()
	mustRun(t, het, 20_000, 20_000)
	// Both tags must appear in the shared history buffer.
	tags := map[uint64]bool{}
	for pos := 0; pos < het.History.Len(); pos++ {
		blk, _, ok := het.History.Next(pos - 1)
		if !ok {
			break
		}
		tags[blk>>(isa.ASIDShift-isa.BlockShift)] = true
	}
	if !tags[0] || !tags[1] {
		t.Errorf("shared history holds tags %v, want both slot 0 and slot 1", tags)
	}

	homog, err := NewMixSystem([]*synth.Workload{a, a}, Confluence, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer homog.Close()
	mustRun(t, homog, 20_000, 20_000)
	for pos := 0; pos < homog.History.Len(); pos++ {
		blk, _, ok := homog.History.Next(pos - 1)
		if !ok {
			break
		}
		if blk>>(isa.ASIDShift-isa.BlockShift) != 0 {
			t.Fatalf("repeated-reference mix recorded a tagged block %#x", blk)
		}
	}
}
