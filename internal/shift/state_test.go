package shift

import (
	"reflect"
	"testing"
)

func TestHistoryStateRoundTrip(t *testing.T) {
	h := NewHistory(256)
	for i := 0; i < 600; i++ { // wraps the circular buffer
		h.Record(uint64(0x4000 + (i%300)*64))
	}
	st := h.ExportState()

	fresh := NewHistory(256)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.ExportState(), st) {
		t.Error("re-exported state differs from the snapshot")
	}
	// A restored history must replay identically: record the same block
	// into both and re-compare (index and recency filter included).
	h.Record(0x9000)
	fresh.Record(0x9000)
	if !reflect.DeepEqual(fresh.ExportState(), h.ExportState()) {
		t.Error("restored history diverged on the next Record")
	}
}

func TestHistoryStateRejectsSizeMismatch(t *testing.T) {
	st := NewHistory(256).ExportState()
	if err := NewHistory(128).RestoreState(st); err == nil {
		t.Error("restore into mismatched buffer size succeeded")
	}
}
