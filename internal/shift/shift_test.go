package shift

import (
	"testing"

	"confluence/internal/isa"
)

func TestHistoryRecordAndFind(t *testing.T) {
	h := NewHistory(64)
	for b := uint64(1); b <= 5; b++ {
		h.Record(b)
	}
	for b := uint64(1); b <= 5; b++ {
		if _, ok := h.Find(b); !ok {
			t.Errorf("block %d not found", b)
		}
	}
	if _, ok := h.Find(99); ok {
		t.Error("unknown block found")
	}
	if h.Len() != 5 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestHistoryRecentFilter(t *testing.T) {
	h := NewHistory(64)
	h.Record(1)
	h.Record(2)
	h.Record(1) // within the recent window: filtered
	if h.Records != 2 {
		t.Errorf("Records = %d, want 2 (alternation filtered)", h.Records)
	}
	if h.Filtered != 1 {
		t.Errorf("Filtered = %d", h.Filtered)
	}
	// After enough distinct blocks, the same block records again.
	for b := uint64(10); b < 10+recentDepth; b++ {
		h.Record(b)
	}
	before := h.Records
	h.Record(1)
	if h.Records != before+1 {
		t.Error("block outside the recent window was filtered")
	}
}

func TestHistoryReplaySequence(t *testing.T) {
	h := NewHistory(128)
	seq := []uint64{10, 20, 30, 40, 50}
	for _, b := range seq {
		h.Record(b)
	}
	pos, ok := h.Find(10)
	if !ok {
		t.Fatal("head of stream not indexed")
	}
	for _, want := range seq[1:] {
		blk, np, ok := h.Next(pos)
		if !ok || blk != want {
			t.Fatalf("Next = %d, %v; want %d", blk, ok, want)
		}
		pos = np
	}
	// The stream stops at the write frontier.
	if _, _, ok := h.Next(pos); ok {
		t.Error("read past the write frontier")
	}
}

func TestHistoryWrapInvalidatesStaleIndex(t *testing.T) {
	h := NewHistory(4)
	for b := uint64(1); b <= 6; b++ { // wraps, overwriting blocks 1 and 2
		h.Record(b)
	}
	if _, ok := h.Find(1); ok {
		t.Error("stale index entry served after overwrite")
	}
	if _, ok := h.Find(5); !ok {
		t.Error("recent entry lost")
	}
	if h.Len() != 4 {
		t.Errorf("Len = %d after wrap", h.Len())
	}
}

func TestEngineReplaysStream(t *testing.T) {
	h := NewHistory(256)
	// Generator observed blocks 100..120.
	for b := uint64(100); b <= 120; b++ {
		h.Record(b)
	}
	e := NewEngine(Config{HistoryEntries: 256, Lookahead: 4}, h, 10)
	// A miss on block 100 restarts the stream there.
	reqs := e.OnAccess(0, isa.Addr(100)<<isa.BlockShift, true, nil)
	if len(reqs) != 4 {
		t.Fatalf("issued %d prefetches, want lookahead=4", len(reqs))
	}
	for i, r := range reqs {
		if uint64(r.Block)>>isa.BlockShift != uint64(101+i) {
			t.Errorf("prefetch %d = block %d, want %d", i, r.Block>>isa.BlockShift, 101+i)
		}
		if r.ExtraDelay < 20 { // 2 * metaLatency restart cost
			t.Errorf("restart prefetch %d has delay %v, want >= 20", i, r.ExtraDelay)
		}
	}
	if e.StreamRestarts != 1 {
		t.Errorf("StreamRestarts = %d", e.StreamRestarts)
	}
	// Confirming the first prediction advances the window by one.
	more := e.OnAccess(1, isa.Addr(101)<<isa.BlockShift, false, nil)
	if len(more) != 1 || uint64(more[0].Block)>>isa.BlockShift != 105 {
		t.Fatalf("confirmation advance: %+v", more)
	}
	if more[0].ExtraDelay >= 20 {
		t.Error("steady-state prefetch should not pay the restart delay")
	}
	if e.Confirms != 1 {
		t.Errorf("Confirms = %d", e.Confirms)
	}
}

func TestEngineIndexMiss(t *testing.T) {
	h := NewHistory(64)
	e := NewEngine(Config{HistoryEntries: 64, Lookahead: 4}, h, 10)
	if reqs := e.OnAccess(0, 0x4000, true, nil); reqs != nil {
		t.Errorf("prefetches without history: %v", reqs)
	}
	if e.IndexMisses != 1 {
		t.Errorf("IndexMisses = %d", e.IndexMisses)
	}
}

func TestEngineHitWithoutWindowDoesNothing(t *testing.T) {
	h := NewHistory(64)
	h.Record(5)
	e := NewEngine(Config{HistoryEntries: 64, Lookahead: 4}, h, 10)
	if reqs := e.OnAccess(0, isa.Addr(5)<<isa.BlockShift, false, nil); reqs != nil {
		t.Error("an L1-I hit must not restart the stream")
	}
}

func TestEngineRestartClearsWindow(t *testing.T) {
	h := NewHistory(256)
	for b := uint64(100); b <= 140; b++ {
		h.Record(b)
	}
	e := NewEngine(Config{HistoryEntries: 256, Lookahead: 4}, h, 10)
	e.OnAccess(0, isa.Addr(100)<<isa.BlockShift, true, nil)
	if e.WindowSize() != 4 {
		t.Fatalf("window = %d", e.WindowSize())
	}
	// Divergence: a miss on an unpredicted block restarts elsewhere.
	e.OnAccess(1, isa.Addr(130)<<isa.BlockShift, true, nil)
	if e.WindowSize() != 4 {
		t.Errorf("window = %d after restart", e.WindowSize())
	}
	// The old window must be gone: confirming 101 now does nothing.
	if reqs := e.OnAccess(2, isa.Addr(101)<<isa.BlockShift, false, nil); reqs != nil {
		t.Error("stale window entry confirmed after restart")
	}
}

func TestEngineRedirectIsIgnored(t *testing.T) {
	h := NewHistory(256)
	for b := uint64(100); b <= 120; b++ {
		h.Record(b)
	}
	e := NewEngine(Config{HistoryEntries: 256, Lookahead: 4}, h, 10)
	e.OnAccess(0, isa.Addr(100)<<isa.BlockShift, true, nil)
	w := e.WindowSize()
	e.Redirect(5) // SHIFT is autonomous: core redirects must not disturb it
	if e.WindowSize() != w {
		t.Error("Redirect disturbed the stream engine")
	}
}

func TestConfigBytes(t *testing.T) {
	c := DefaultConfig()
	kb := c.HistoryBytes() >> 10
	if kb < 190 || kb > 215 {
		t.Errorf("history = %d KB, paper says ~204", kb)
	}
	if c.IndexBytes() != 240<<10 {
		t.Errorf("index = %d", c.IndexBytes())
	}
}

func TestNewHistoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty history")
		}
	}()
	NewHistory(0)
}

// TestEngineASIDIsolation covers the consolidation contract: two engines
// with different address-space tags share one history buffer without
// cross-predicting — each follows only its own workload's records, skipping
// foreign stream segments, and emits untagged block addresses.
func TestEngineASIDIsolation(t *testing.T) {
	h := NewHistory(256)
	tagA := isa.ASIDBase(0)
	tagB := isa.ASIDBase(1)
	// Two interleaved generator streams: workload A records blocks 100..107,
	// workload B records 100..107 of its own address space (the same raw
	// block numbers — the aliasing case consolidation must not confuse).
	for b := uint64(100); b <= 107; b++ {
		h.Record(b | blockTag(tagA))
		h.Record(b | blockTag(tagB))
	}

	eA := NewEngineASID(Config{HistoryEntries: 256, Lookahead: 4}, h, 10, tagA)
	eB := NewEngineASID(Config{HistoryEntries: 256, Lookahead: 4}, h, 10, tagB)

	reqsA := eA.OnAccess(0, isa.Addr(100)<<isa.BlockShift, true, nil)
	if len(reqsA) != 4 {
		t.Fatalf("engine A issued %d prefetches, want 4", len(reqsA))
	}
	for i, r := range reqsA {
		want := isa.Addr(101+i) << isa.BlockShift
		if r.Block != want {
			t.Errorf("engine A prefetch %d = %#x, want untagged %#x", i, uint64(r.Block), uint64(want))
		}
	}
	// Engine B restarts at its own occurrence of "block 100" and must see
	// only B-tagged successors, emitted untagged.
	reqsB := eB.OnAccess(0, isa.Addr(100)<<isa.BlockShift, true, nil)
	if len(reqsB) != 4 {
		t.Fatalf("engine B issued %d prefetches, want 4", len(reqsB))
	}
	for i, r := range reqsB {
		want := isa.Addr(101+i) << isa.BlockShift
		if r.Block != want {
			t.Errorf("engine B prefetch %d = %#x, want untagged %#x", i, uint64(r.Block), uint64(want))
		}
	}
	if eA.IndexMisses != 0 || eB.IndexMisses != 0 {
		t.Errorf("index misses: A=%d B=%d, want 0", eA.IndexMisses, eB.IndexMisses)
	}

	// An untagged third engine probing the same raw block must miss the
	// index entirely: its keys carry tag 0... which is tagA here. Probe a
	// block recorded by neither tag instead.
	if reqs := eA.OnAccess(1, isa.Addr(500)<<isa.BlockShift, true, nil); len(reqs) != 0 {
		t.Errorf("unrecorded block produced prefetches: %v", reqs)
	}
	if eA.IndexMisses != 1 {
		t.Errorf("IndexMisses = %d, want 1", eA.IndexMisses)
	}
}

// TestDeferredRecorder: Deferred buffers Record calls without touching the
// target and replays them in order on Apply, leaving the history exactly as
// direct recording would.
func TestDeferredRecorder(t *testing.T) {
	direct := NewHistory(64)
	target := NewHistory(64)
	d := &Deferred{Target: target}
	keys := []uint64{1, 2, 3, 2, 9, 1, 1, 4}
	for _, k := range keys {
		direct.Record(k)
		d.Record(k)
	}
	if target.Len() != 0 || target.Records != 0 {
		t.Fatal("Deferred mutated its target before Apply")
	}
	if d.Pending() != len(keys) {
		t.Fatalf("Pending = %d, want %d", d.Pending(), len(keys))
	}
	d.Apply()
	if d.Pending() != 0 {
		t.Fatal("Apply did not clear the log")
	}
	if target.Len() != direct.Len() || target.Records != direct.Records || target.Filtered != direct.Filtered {
		t.Errorf("applied history diverged: len %d/%d records %d/%d filtered %d/%d",
			target.Len(), direct.Len(), target.Records, direct.Records, target.Filtered, direct.Filtered)
	}
	for pos := 0; pos < direct.Len(); pos++ {
		if direct.buf[pos] != target.buf[pos] {
			t.Fatalf("buffer slot %d diverged: %d vs %d", pos, target.buf[pos], direct.buf[pos])
		}
	}
}
