package shift

import (
	"testing"

	"confluence/internal/isa"
	"confluence/internal/prefetch"
)

// BenchmarkHistoryRecord measures the generator core's logging path.
func BenchmarkHistoryRecord(b *testing.B) {
	h := NewHistory(32 << 10)
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) % 5000)
	}
}

// BenchmarkEngineSteadyState measures the per-access replay path with a
// warm stream.
func BenchmarkEngineSteadyState(b *testing.B) {
	h := NewHistory(32 << 10)
	const streamLen = 8192
	for i := uint64(0); i < streamLen; i++ {
		h.Record(i)
	}
	e := NewEngine(Config{HistoryEntries: 32 << 10, Lookahead: 20}, h, 20)
	e.OnAccess(0, 0, true, nil) // prime the stream
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := isa.Addr(uint64(i)%streamLen) << isa.BlockShift
		e.OnAccess(float64(i), blk, false, nil)
	}
}

// BenchmarkShiftOnAccess_HitAndRestart interleaves the engine's two costly
// paths the way a real miss stream does: confirming hits that advance the
// window, and unpredicted misses that restart the stream through the
// history index. The request buffer is reused across calls, mirroring the
// frontend's scratch threading — the loop must not allocate.
func BenchmarkShiftOnAccess_HitAndRestart(b *testing.B) {
	h := NewHistory(32 << 10)
	const streamLen = 8192
	for i := uint64(0); i < streamLen; i++ {
		h.Record(i)
	}
	e := NewEngine(Config{HistoryEntries: 32 << 10, Lookahead: 20}, h, 20)
	var reqs []prefetch.Request
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			// Unpredicted miss far from the current stream: index lookup +
			// stream restart + a full lookahead of issues.
			blk := isa.Addr(uint64(i)*257%streamLen) << isa.BlockShift
			reqs = e.OnAccess(float64(i), blk, true, reqs[:0])
		} else {
			// In-stream access: window confirm + top-up.
			blk := isa.Addr(uint64(i)%streamLen) << isa.BlockShift
			reqs = e.OnAccess(float64(i), blk, false, reqs[:0])
		}
	}
}
