package shift

import (
	"testing"

	"confluence/internal/isa"
)

// BenchmarkHistoryRecord measures the generator core's logging path.
func BenchmarkHistoryRecord(b *testing.B) {
	h := NewHistory(32 << 10)
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) % 5000)
	}
}

// BenchmarkEngineSteadyState measures the per-access replay path with a
// warm stream.
func BenchmarkEngineSteadyState(b *testing.B) {
	h := NewHistory(32 << 10)
	const streamLen = 8192
	for i := uint64(0); i < streamLen; i++ {
		h.Record(i)
	}
	e := NewEngine(Config{HistoryEntries: 32 << 10, Lookahead: 20}, h, 20)
	e.OnAccess(0, 0, true) // prime the stream
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := isa.Addr(uint64(i)%streamLen) << isa.BlockShift
		e.OnAccess(float64(i), blk, false)
	}
}
