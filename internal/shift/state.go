package shift

import "fmt"

// HistoryState is the serializable state of the shared History buffer,
// captured for warm-up snapshots: the circular stream buffer, the
// keyless index (raw slots — probe layout depends on insertion order, so
// the array restores verbatim), and the record-side recency filter.
// Diagnostic counters (Records, Filtered) are excluded: they never
// influence a recorded or replayed stream.
type HistoryState struct {
	Buf    []uint64
	Head   int
	Filled bool
	Idx    []int32
	IdxN   int
	Recent [recentDepth]uint64
	RHead  int
	Any    bool
}

// ExportState deep-copies the history's state.
func (h *History) ExportState() HistoryState {
	return HistoryState{
		Buf:    append([]uint64(nil), h.buf...),
		Head:   h.head,
		Filled: h.filled,
		Idx:    append([]int32(nil), h.idx...),
		IdxN:   h.idxN,
		Recent: h.recent,
		RHead:  h.rhead,
		Any:    h.any,
	}
}

// RestoreState overwrites the history from a snapshot; buffer and index
// sizes must match (both are fixed by Config.HistoryEntries, which the
// snapshot key pins).
func (h *History) RestoreState(st HistoryState) error {
	if len(st.Buf) != len(h.buf) || len(st.Idx) != len(h.idx) {
		return fmt.Errorf("shift: history snapshot sized %d/%d does not match buffer %d/%d",
			len(st.Buf), len(st.Idx), len(h.buf), len(h.idx))
	}
	copy(h.buf, st.Buf)
	h.head = st.Head
	h.filled = st.Filled
	copy(h.idx, st.Idx)
	h.idxN = st.IdxN
	h.recent = st.Recent
	h.rhead = st.RHead
	h.any = st.Any
	return nil
}
