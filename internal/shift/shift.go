// Package shift implements SHIFT (Kaynak, Grot, Falsafi, MICRO'13), the
// shared-history stream-based instruction prefetcher Confluence builds on.
//
// One core — the history generator — logs its L1-I access stream at block
// granularity (consecutive duplicates collapsed) into a circular history
// buffer; an index table maps a block address to its most recent position.
// Both structures are virtualized into the LLC: the history buffer occupies
// reserved LLC blocks and the index extends the LLC tag array, so the only
// dedicated silicon is the tag extension (the area model accounts for
// exactly that).
//
// Every core replays the shared history: an L1-I miss looks up the index
// and, on a hit, streams the blocks that followed the previous occurrence,
// keeping a lookahead window of in-flight predictions that advances as the
// core's demand stream confirms them.
package shift

import (
	"confluence/internal/isa"
	"confluence/internal/prefetch"
)

// Config sizes SHIFT.
type Config struct {
	HistoryEntries int // circular history buffer entries (the paper: 32K)
	Lookahead      int // prediction window depth in blocks
}

// DefaultConfig returns the paper's tuned configuration.
func DefaultConfig() Config {
	return Config{HistoryEntries: 32 << 10, Lookahead: 20}
}

// HistoryBytes returns the LLC capacity claimed by the virtualized history
// buffer (the paper: 32K entries ≈ 204KB, ~51 bits per entry).
func (c Config) HistoryBytes() int { return c.HistoryEntries * 51 / 8 }

// IndexBytes returns the LLC tag-array extension for the index pointers
// (the paper: ~240KB across the LLC).
func (c Config) IndexBytes() int { return 240 << 10 }

// recentDepth is the depth of the record-side filter: a block already among
// the last recentDepth recorded blocks is not re-recorded. Tight loops
// alternating between a couple of blocks would otherwise flood the circular
// buffer and shrink its temporal reach to a sliver of the workload (this is
// the compaction role PIF-style filtering plays in the paper's lineage).
const recentDepth = 16

// History is the shared instruction-stream history: written by the
// generator core, read by every core's Engine.
type History struct {
	buf    []uint64 // block numbers
	head   int      // next write position
	filled bool
	index  map[uint64]int32

	recent [recentDepth]uint64
	rhead  int
	any    bool

	Records, Filtered uint64
}

// NewHistory creates an empty history buffer.
func NewHistory(entries int) *History {
	if entries <= 0 {
		panic("shift: history entries must be positive")
	}
	return &History{
		buf:   make([]uint64, entries),
		index: make(map[uint64]int32, entries),
	}
}

// Record appends a block access (block number) to the history, skipping
// blocks recorded in the recent past, and updates the index to the newest
// occurrence.
func (h *History) Record(block uint64) {
	if h.any {
		for _, r := range h.recent {
			if r == block {
				h.Filtered++
				return
			}
		}
	}
	h.any = true
	h.recent[h.rhead] = block
	h.rhead = (h.rhead + 1) % recentDepth
	h.buf[h.head] = block
	h.index[block] = int32(h.head)
	h.head++
	if h.head == len(h.buf) {
		h.head = 0
		h.filled = true
	}
	h.Records++
}

// Find returns the position of the most recent occurrence of block. Stale
// index entries (overwritten by the circular buffer) are detected by
// re-checking the buffer contents.
func (h *History) Find(block uint64) (int, bool) {
	p, ok := h.index[block]
	if !ok {
		return 0, false
	}
	if h.buf[p] != block {
		delete(h.index, block) // stale pointer
		return 0, false
	}
	return int(p), true
}

// Next returns the entry after pos, stopping at the write frontier.
func (h *History) Next(pos int) (block uint64, next int, ok bool) {
	np := pos + 1
	if np == len(h.buf) {
		np = 0
	}
	if np == h.head {
		return 0, pos, false
	}
	if !h.filled && np > h.head {
		return 0, pos, false
	}
	return h.buf[np], np, true
}

// Len returns the number of valid history entries.
func (h *History) Len() int {
	if h.filled {
		return len(h.buf)
	}
	return h.head
}

// Engine is one core's stream-replay engine over a shared History.
type Engine struct {
	cfg Config
	h   *History

	valid  bool
	pos    int
	window map[uint64]struct{}

	// restartDelay models the serialized LLC metadata accesses on a stream
	// restart: index read followed by a history-buffer read.
	restartDelay float64

	StreamRestarts, IndexMisses uint64
	Issued, Confirms            uint64
}

// NewEngine creates a replay engine; metaLatency is the LLC metadata access
// latency from this core's tile (two dependent reads on restart).
func NewEngine(cfg Config, h *History, metaLatency float64) *Engine {
	return &Engine{
		cfg:          cfg,
		h:            h,
		window:       make(map[uint64]struct{}, cfg.Lookahead*2),
		restartDelay: 2 * metaLatency,
	}
}

// Name implements prefetch.Prefetcher.
func (e *Engine) Name() string { return "SHIFT" }

// OnAccess implements prefetch.Prefetcher: confirm predicted blocks and top
// up the window; restart the stream on unpredicted misses.
func (e *Engine) OnAccess(now float64, block isa.Addr, miss bool) []prefetch.Request {
	b := uint64(block) >> isa.BlockShift
	if _, ok := e.window[b]; ok {
		delete(e.window, b)
		e.Confirms++
		return e.advance(0)
	}
	if !miss {
		return nil
	}
	// Unpredicted miss: restart the stream at this block's last occurrence.
	e.StreamRestarts++
	p, ok := e.h.Find(b)
	if !ok {
		e.IndexMisses++
		e.valid = false
		return nil
	}
	e.valid = true
	e.pos = p
	clear(e.window)
	return e.advance(e.restartDelay)
}

// OnRegion implements prefetch.Prefetcher (SHIFT is access-driven).
func (e *Engine) OnRegion(float64, isa.Addr, int) []prefetch.Request { return nil }

// Redirect implements prefetch.Prefetcher. SHIFT's run-ahead is autonomous
// — it follows its own history stream, not the BPU — so core redirects do
// not disturb it (the paper's key timeliness argument).
func (e *Engine) Redirect(float64) {}

// advance issues stream blocks until the window holds Lookahead
// predictions.
func (e *Engine) advance(extra float64) []prefetch.Request {
	if !e.valid {
		return nil
	}
	var out []prefetch.Request
	for len(e.window) < e.cfg.Lookahead {
		blk, np, ok := e.h.Next(e.pos)
		if !ok {
			break
		}
		e.pos = np
		if _, dup := e.window[blk]; dup {
			continue
		}
		e.window[blk] = struct{}{}
		out = append(out, prefetch.Request{
			Block:      isa.Addr(blk) << isa.BlockShift,
			ExtraDelay: extra + float64(len(out)), // serialized issue
		})
		e.Issued++
	}
	return out
}

// WindowSize returns the current prediction window occupancy (tests).
func (e *Engine) WindowSize() int { return len(e.window) }
