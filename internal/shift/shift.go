// Package shift implements SHIFT (Kaynak, Grot, Falsafi, MICRO'13), the
// shared-history stream-based instruction prefetcher Confluence builds on.
//
// One core — the history generator — logs its L1-I access stream at block
// granularity (consecutive duplicates collapsed) into a circular history
// buffer; an index table maps a block address to its most recent position.
// Both structures are virtualized into the LLC: the history buffer occupies
// reserved LLC blocks and the index extends the LLC tag array, so the only
// dedicated silicon is the tag extension (the area model accounts for
// exactly that).
//
// Every core replays the shared history: an L1-I miss looks up the index
// and, on a hit, streams the blocks that followed the previous occurrence,
// keeping a lookahead window of in-flight predictions that advances as the
// core's demand stream confirms them.
//
// Both bookkeeping structures are flat: the index is an open-addressed
// table sized once to the history buffer (entries are purged eagerly when
// the circular buffer overwrites their slot, which bounds the index at one
// entry per buffer slot), and each engine's prediction window is a fixed
// array of at most Lookahead blocks scanned linearly. Neither the record
// path nor the replay path allocates in steady state.
package shift

import (
	"confluence/internal/flatmap"
	"confluence/internal/isa"
	"confluence/internal/prefetch"
)

// Config sizes SHIFT.
type Config struct {
	HistoryEntries int // circular history buffer entries (the paper: 32K)
	Lookahead      int // prediction window depth in blocks
}

// DefaultConfig returns the paper's tuned configuration.
func DefaultConfig() Config {
	return Config{HistoryEntries: 32 << 10, Lookahead: 20}
}

// HistoryBytes returns the LLC capacity claimed by the virtualized history
// buffer (the paper: 32K entries ≈ 204KB, ~51 bits per entry).
func (c Config) HistoryBytes() int { return c.HistoryEntries * 51 / 8 }

// IndexBytes returns the LLC tag-array extension for the index pointers
// (the paper: ~240KB across the LLC).
func (c Config) IndexBytes() int { return 240 << 10 }

// recentDepth is the depth of the record-side filter: a block already among
// the last recentDepth recorded blocks is not re-recorded. Tight loops
// alternating between a couple of blocks would otherwise flood the circular
// buffer and shrink its temporal reach to a sliver of the workload (this is
// the compaction role PIF-style filtering plays in the paper's lineage).
const recentDepth = 16

// History is the shared instruction-stream history: written by the
// generator core, read by every core's Engine.
//
// The index is a keyless open-addressed table: a slot stores only a buffer
// position, and the key of a live slot is read back from the buffer itself
// (buf[idx[slot]]) — the exact trick of SHIFT's hardware virtualization,
// where the index extends the LLC tag array with history pointers rather
// than duplicating block addresses. At 4 bytes per slot the whole 32K-entry
// index is a quarter the footprint of a keyed table.
type History struct {
	buf    []uint64 // block numbers
	head   int      // next write position
	filled bool

	idx     []int32 // history positions; -1 = empty slot
	idxMask uint64
	idxN    int

	recent [recentDepth]uint64
	rhead  int
	any    bool

	Records, Filtered uint64
}

// NewHistory creates an empty history buffer.
func NewHistory(entries int) *History {
	if entries <= 0 {
		panic("shift: history entries must be positive")
	}
	// Power-of-two slots with load factor <= 3/4 at full occupancy (the
	// eager purge in Record bounds live index entries at one per buffer
	// slot, so the table is sized once and never grows).
	slots := 16
	for 3*slots < 4*entries {
		slots *= 2
	}
	idx := make([]int32, slots)
	for i := range idx {
		idx[i] = -1
	}
	return &History{
		buf:     make([]uint64, entries),
		idx:     idx,
		idxMask: uint64(slots - 1),
	}
}

// idxFind returns the slot and position of block's index entry.
func (h *History) idxFind(block uint64) (slot uint64, pos int32, ok bool) {
	i := flatmap.Hash(block) & h.idxMask
	for h.idx[i] >= 0 {
		if p := h.idx[i]; h.buf[p] == block {
			return i, p, true
		}
		i = (i + 1) & h.idxMask
	}
	return i, 0, false
}

// idxPut points block's index entry at pos, inserting if absent.
func (h *History) idxPut(block uint64, pos int32) {
	i, _, ok := h.idxFind(block)
	if !ok {
		h.idxN++
	}
	h.idx[i] = pos
}

// idxDelete removes block's entry with backward-shift compaction (slot
// homes are recomputed from the buffer, since slots store no keys).
func (h *History) idxDelete(slot uint64) {
	h.idxN--
	i := slot
	for {
		h.idx[i] = -1
		j := i
		for {
			j = (j + 1) & h.idxMask
			p := h.idx[j]
			if p < 0 {
				return
			}
			home := flatmap.Hash(h.buf[p]) & h.idxMask
			if (j-home)&h.idxMask >= (j-i)&h.idxMask {
				break
			}
		}
		h.idx[i] = h.idx[j]
		i = j
	}
}

// Record appends a block access (block number) to the history, skipping
// blocks recorded in the recent past, and updates the index to the newest
// occurrence.
func (h *History) Record(block uint64) {
	if h.any {
		for _, r := range h.recent {
			if r == block {
				h.Filtered++
				return
			}
		}
	}
	h.any = true
	h.recent[h.rhead] = block
	h.rhead = (h.rhead + 1) % recentDepth
	if h.filled {
		// The circular buffer is overwriting an old entry: purge its index
		// pointer if it still names this slot. Eager purging keeps every
		// index entry pointer-accurate (buf[idx[slot]] is always the
		// entry's key) and bounds the index at one live entry per buffer
		// slot, which is what lets it be an open-addressed table sized once
		// at construction.
		old := h.buf[h.head]
		if slot, p, ok := h.idxFind(old); ok && int(p) == h.head {
			h.idxDelete(slot)
		}
	}
	h.buf[h.head] = block
	h.idxPut(block, int32(h.head))
	h.head++
	if h.head == len(h.buf) {
		h.head = 0
		h.filled = true
	}
	h.Records++
}

// Find returns the position of the most recent occurrence of block. The
// eager purge in Record means an entry's buffer slot always holds its key,
// so the probe itself validates against the buffer — stale pointers cannot
// exist.
func (h *History) Find(block uint64) (int, bool) {
	_, p, ok := h.idxFind(block)
	if !ok {
		return 0, false
	}
	return int(p), true
}

// Next returns the entry after pos, stopping at the write frontier.
func (h *History) Next(pos int) (block uint64, next int, ok bool) {
	np := pos + 1
	if np == len(h.buf) {
		np = 0
	}
	if np == h.head {
		return 0, pos, false
	}
	if !h.filled && np > h.head {
		return 0, pos, false
	}
	return h.buf[np], np, true
}

// Len returns the number of valid history entries.
func (h *History) Len() int {
	if h.filled {
		return len(h.buf)
	}
	return h.head
}

// IndexLen returns the number of live index entries (tests).
func (h *History) IndexLen() int { return h.idxN }

// Deferred buffers Record calls during a bound phase and replays them into
// the real recorder at the weave barrier. The generator core logs into its
// own Deferred concurrently with every other core reading the frozen
// History (Find/Next are read-only), so the bound phase never mutates the
// shared buffer; Apply runs serially in canonical core order, making the
// history's evolution identical for any worker count.
type Deferred struct {
	// Target is the recorder the log replays into — the shared (or
	// per-core) History, or any other Record sink.
	Target interface{ Record(uint64) }
	keys   []uint64
}

// Record implements the frontend's HistoryRecorder by logging the key.
func (d *Deferred) Record(blockNumber uint64) { d.keys = append(d.keys, blockNumber) }

// Apply replays the logged keys into Target in call order and clears the
// log.
func (d *Deferred) Apply() {
	for _, k := range d.keys {
		d.Target.Record(k)
	}
	d.keys = d.keys[:0]
}

// Pending returns the number of unapplied logged keys (tests).
func (d *Deferred) Pending() int { return len(d.keys) }

// blockTag converts an address-space base into block-number space: history
// entries are block numbers, so the tag rides ASIDShift-BlockShift bits up.
func blockTag(base isa.Addr) uint64 { return uint64(base) >> isa.BlockShift }

// blockTagMask covers the tag bits of a block number.
const blockTagMask = ^uint64(1<<(isa.ASIDShift-isa.BlockShift) - 1)

// Engine is one core's stream-replay engine over a shared History.
type Engine struct {
	cfg Config
	h   *History

	// tag is the block-number form of the engine's address-space tag: under
	// workload consolidation every history key this engine records or looks
	// up carries it, so competing workloads share the buffer's capacity
	// without aliasing. Zero (mix slot 0, and every homogeneous run) is the
	// identity: untagged keys, bit-identical to the single-workload engine.
	tag uint64

	valid bool
	pos   int
	// window holds the in-flight predictions (at most Lookahead block
	// numbers, order irrelevant) in a fixed array scanned linearly — at the
	// paper's depth of 20 a scan beats any hashed structure and allocates
	// nothing. sig is a one-word Bloom signature of the window's contents
	// (bit b&63 per member): most L1-I accesses are not window members, and
	// the signature turns that common negative membership test into a
	// single mask check. False positives just fall through to the scan.
	window []uint64
	sig    uint64

	// restartDelay models the serialized LLC metadata accesses on a stream
	// restart: index read followed by a history-buffer read.
	restartDelay float64

	StreamRestarts, IndexMisses uint64
	Issued, Confirms            uint64
}

// NewEngine creates a replay engine; metaLatency is the LLC metadata access
// latency from this core's tile (two dependent reads on restart).
func NewEngine(cfg Config, h *History, metaLatency float64) *Engine {
	return NewEngineASID(cfg, h, metaLatency, 0)
}

// NewEngineASID creates a replay engine whose history keys are tagged with
// the given address-space base (isa.ASIDBase of the core's mix slot). The
// engine follows only its own workload's records through the shared buffer,
// skipping entries written under other tags — foreign streams cost buffer
// capacity, never false predictions.
func NewEngineASID(cfg Config, h *History, metaLatency float64, base isa.Addr) *Engine {
	return &Engine{
		cfg:          cfg,
		h:            h,
		tag:          blockTag(base),
		window:       make([]uint64, 0, cfg.Lookahead),
		restartDelay: 2 * metaLatency,
	}
}

// Name implements prefetch.Prefetcher.
func (e *Engine) Name() string { return "SHIFT" }

func sigBit(b uint64) uint64 { return 1 << (b & 63) }

// inWindow returns the position of b in the window, or -1. The signature
// short-circuits the (common) negative case.
func (e *Engine) inWindow(b uint64) int {
	if e.sig&sigBit(b) == 0 {
		return -1
	}
	for i, w := range e.window {
		if w == b {
			return i
		}
	}
	return -1
}

// rebuildSig recomputes the Bloom signature after a removal (a set bit may
// have been shared with the removed member).
func (e *Engine) rebuildSig() {
	s := uint64(0)
	for _, w := range e.window {
		s |= sigBit(w)
	}
	e.sig = s
}

// OnAccess implements prefetch.Prefetcher: confirm predicted blocks and top
// up the window; restart the stream on unpredicted misses.
func (e *Engine) OnAccess(now float64, block isa.Addr, miss bool, dst []prefetch.Request) []prefetch.Request {
	b := uint64(block)>>isa.BlockShift | e.tag
	if i := e.inWindow(b); i >= 0 {
		// Unordered removal: the window is a membership set, so swapping
		// the last element in is equivalent to shifting.
		last := len(e.window) - 1
		e.window[i] = e.window[last]
		e.window = e.window[:last]
		e.rebuildSig()
		e.Confirms++
		return e.advance(0, dst)
	}
	if !miss {
		return dst
	}
	// Unpredicted miss: restart the stream at this block's last occurrence.
	e.StreamRestarts++
	p, ok := e.h.Find(b)
	if !ok {
		e.IndexMisses++
		e.valid = false
		return dst
	}
	e.valid = true
	e.pos = p
	e.window = e.window[:0]
	e.sig = 0
	return e.advance(e.restartDelay, dst)
}

// OnRegion implements prefetch.Prefetcher (SHIFT is access-driven).
func (e *Engine) OnRegion(now float64, start isa.Addr, nInstr int, dst []prefetch.Request) []prefetch.Request {
	return dst
}

// Redirect implements prefetch.Prefetcher. SHIFT's run-ahead is autonomous
// — it follows its own history stream, not the BPU — so core redirects do
// not disturb it (the paper's key timeliness argument).
func (e *Engine) Redirect(float64) {}

// advance issues stream blocks until the window holds Lookahead
// predictions, appending the requests to dst.
func (e *Engine) advance(extra float64, dst []prefetch.Request) []prefetch.Request {
	if !e.valid {
		return dst
	}
	base := len(dst)
	for len(e.window) < e.cfg.Lookahead {
		blk, np, ok := e.h.Next(e.pos)
		if !ok {
			break
		}
		e.pos = np
		if blk&blockTagMask != e.tag {
			// Another workload's stream segment: its records consume shared
			// buffer capacity but are not predictions for this core.
			continue
		}
		if e.inWindow(blk) >= 0 {
			continue
		}
		e.window = append(e.window, blk)
		e.sig |= sigBit(blk)
		dst = append(dst, prefetch.Request{
			Block:      isa.Addr(blk&^blockTagMask) << isa.BlockShift,
			ExtraDelay: extra + float64(len(dst)-base), // serialized issue
		})
		e.Issued++
	}
	return dst
}

// WindowSize returns the current prediction window occupancy (tests).
func (e *Engine) WindowSize() int { return len(e.window) }
