// Command tracegen generates synthetic workloads and traces for offline
// inspection: it can dump workload statistics, write binary basic-block
// traces, and summarize existing trace files.
//
// Usage:
//
//	tracegen -workload OLTP-DB2 -stats
//	tracegen -workload OLTP-DB2 -n 1000000 -o db2.trace
//	tracegen -summarize db2.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"confluence/internal/isa"
	"confluence/internal/synth"
	"confluence/internal/trace"
)

func main() {
	workload := flag.String("workload", "OLTP-DB2", "workload profile name")
	n := flag.Uint64("n", 1_000_000, "instructions to trace")
	out := flag.String("o", "", "output trace file (binary)")
	seed := flag.Uint64("seed", 1, "executor seed (differentiates cores)")
	showStats := flag.Bool("stats", false, "print workload statistics and exit")
	summarize := flag.String("summarize", "", "summarize an existing trace file and exit")
	flag.Parse()

	if *summarize != "" {
		if err := summarizeFile(*summarize); err != nil {
			fatal(err)
		}
		return
	}

	prof, ok := synth.ProfileByName(*workload)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	w, err := synth.Build(prof)
	if err != nil {
		fatal(err)
	}

	if *showStats {
		ss := w.Prog.StaticStats()
		fmt.Printf("workload:          %s\n", prof.Name)
		fmt.Printf("functions:         %d\n", len(w.Prog.Funcs))
		fmt.Printf("basic blocks:      %d\n", len(w.Prog.Blocks()))
		fmt.Printf("footprint:         %d KB\n", w.Prog.FootprintBytes()>>10)
		fmt.Printf("64B code blocks:   %d\n", w.Prog.NumCacheBlocks())
		fmt.Printf("static br/block:   %.2f\n", ss.PerBlock)
		fmt.Printf("conditional frac:  %.2f\n", ss.CondFrac)
		fmt.Printf("request types:     %d\n", w.NumRequestTypes())
		return
	}

	if *out == "" {
		fatal(fmt.Errorf("need -o FILE (or -stats / -summarize)"))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	exec := trace.NewExecutor(w, *seed)
	var rec trace.Record
	for exec.Instructions < *n {
		exec.Next(&rec)
		if err := tw.Write(&rec); err != nil {
			fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d records (%d instructions, %d requests) to %s\n",
		tw.Count(), exec.Instructions, exec.Requests, *out)
}

func summarizeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var rec trace.Record
	var records, instr, branches, taken, requests uint64
	kinds := make(map[isa.BranchKind]uint64)
	blocks := make(map[isa.Addr]bool)
	for {
		if err := tr.Read(&rec); err != nil {
			break
		}
		records++
		instr += uint64(rec.N)
		if rec.ReqBoundary {
			requests++
		}
		if rec.Br.Kind.IsBranch() {
			branches++
			kinds[rec.Br.Kind]++
			if rec.Br.Taken {
				taken++
			}
		}
		blocks[isa.BlockOf(rec.Start)] = true
	}
	fmt.Printf("records:      %d\n", records)
	fmt.Printf("instructions: %d\n", instr)
	fmt.Printf("requests:     %d\n", requests)
	fmt.Printf("branches:     %d (taken %.1f%%)\n", branches, 100*float64(taken)/float64(max(branches, 1)))
	fmt.Printf("code touched: %d KB\n", len(blocks)*isa.BlockBytes>>10)
	for k, n := range kinds {
		fmt.Printf("  %-9s %d\n", k, n)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
