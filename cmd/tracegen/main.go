// Command tracegen generates synthetic workloads and traces for offline
// inspection and replay: it can dump workload statistics, write binary
// basic-block traces (single-file or per-core capture directories that
// `confluence-sim -trace` and `frontend-probe -trace` replay), summarize
// existing trace files, and self-check the codec end to end.
//
// Usage:
//
//	tracegen -workload OLTP-DB2 -stats
//	tracegen -workload OLTP-DB2 -n 1000000 -o db2.trace
//	tracegen -workload OLTP-DB2 -n 1000000 -cores 8 -o db2-capture/
//	tracegen -summarize db2.trace
//	tracegen -workload OLTP-DB2 -roundtrip
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"confluence"
	"confluence/internal/isa"
	"confluence/internal/synth"
	"confluence/internal/trace"
)

func main() {
	workload := flag.String("workload", "OLTP-DB2", "workload profile name")
	n := flag.Uint64("n", 1_000_000, "instructions to trace (per core with -cores)")
	out := flag.String("o", "", "output trace file (binary); a directory with -cores > 1")
	cores := flag.Int("cores", 1, "write a capture directory with one trace file per core, seeded like a live run")
	seed := flag.Uint64("seed", 1, "executor seed for single-file traces (differentiates cores)")
	showStats := flag.Bool("stats", false, "print workload statistics and exit")
	summarize := flag.String("summarize", "", "summarize an existing trace file and exit")
	roundtrip := flag.Bool("roundtrip", false, "self-check: write -n instructions through the codec and verify the records replay bit-identically")
	flag.Parse()

	if *summarize != "" {
		if err := summarizeFile(*summarize); err != nil {
			fatal(err)
		}
		return
	}

	prof, ok := synth.ProfileByName(*workload)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	w, err := synth.Build(prof)
	if err != nil {
		fatal(err)
	}

	if *showStats {
		ss := w.Prog.StaticStats()
		fmt.Printf("workload:          %s\n", prof.Name)
		fmt.Printf("functions:         %d\n", len(w.Prog.Funcs))
		fmt.Printf("basic blocks:      %d\n", len(w.Prog.Blocks()))
		fmt.Printf("footprint:         %d KB\n", w.Prog.FootprintBytes()>>10)
		fmt.Printf("64B code blocks:   %d\n", w.Prog.NumCacheBlocks())
		fmt.Printf("static br/block:   %.2f\n", ss.PerBlock)
		fmt.Printf("conditional frac:  %.2f\n", ss.CondFrac)
		fmt.Printf("request types:     %d\n", w.NumRequestTypes())
		return
	}

	if *roundtrip {
		if err := selfCheck(w, *seed, *n); err != nil {
			fatal(err)
		}
		return
	}

	if *out == "" {
		fatal(fmt.Errorf("need -o FILE (or -stats / -summarize / -roundtrip)"))
	}

	if *cores > 1 {
		if err := confluence.CaptureTrace(w, *out, *cores, *n); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d-core capture (%d instructions per core) to %s\n", *cores, *n, *out)
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	exec := trace.NewExecutor(w, *seed)
	records, instructions, err := trace.Capture(f, exec, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d records (%d instructions, %d requests) to %s\n",
		records, instructions, exec.Requests, *out)
}

// selfCheck streams n instructions through Writer and Reader and verifies
// the decoded records match the executor's, field for field — a fast
// end-to-end proof that a capture written on this build replays exactly.
func selfCheck(w *synth.Workload, seed, n uint64) error {
	exec := trace.NewExecutor(w, seed)
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		return err
	}
	var want []trace.Record
	var rec trace.Record
	for exec.Instructions < n {
		if err := exec.Next(&rec); err != nil {
			return err
		}
		want = append(want, rec)
		if err := tw.Write(&rec); err != nil {
			return fmt.Errorf("roundtrip: encoding record %d: %w", len(want)-1, err)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	size := buf.Len()
	tr, err := trace.NewReader(&buf)
	if err != nil {
		return err
	}
	var got trace.Record
	for i := range want {
		if err := tr.Read(&got); err != nil {
			return fmt.Errorf("roundtrip: decoding record %d: %w", i, err)
		}
		if got != want[i] {
			return fmt.Errorf("roundtrip: record %d diverged:\n  wrote %+v\n  read  %+v", i, want[i], got)
		}
	}
	fmt.Printf("roundtrip OK: %d records (%d instructions, %d bytes) replay bit-identically\n",
		len(want), exec.Instructions, size)
	return nil
}

func summarizeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var rec trace.Record
	var records, instr, branches, taken, requests uint64
	kinds := make(map[isa.BranchKind]uint64)
	blocks := make(map[isa.Addr]bool)
	for {
		if err := tr.Read(&rec); err != nil {
			break
		}
		records++
		instr += uint64(rec.N)
		if rec.ReqBoundary {
			requests++
		}
		if rec.Br.Kind.IsBranch() {
			branches++
			kinds[rec.Br.Kind]++
			if rec.Br.Taken {
				taken++
			}
		}
		blocks[isa.BlockOf(rec.Start)] = true
	}
	fmt.Printf("records:      %d\n", records)
	fmt.Printf("instructions: %d\n", instr)
	fmt.Printf("requests:     %d\n", requests)
	fmt.Printf("branches:     %d (taken %.1f%%)\n", branches, 100*float64(taken)/float64(max(branches, 1)))
	fmt.Printf("code touched: %d KB\n", len(blocks)*isa.BlockBytes>>10)
	for k, n := range kinds {
		fmt.Printf("  %-9s %d\n", k, n)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
