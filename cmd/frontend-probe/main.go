// Command frontend-probe runs a handful of design points on one workload
// and prints per-design IPC and miss rates plus the cycle decomposition —
// the quickest way to see where a workload's cycles go.
//
// Usage:
//
//	frontend-probe -workload DSS-Qrys [-cores 8] [-instr 1500000] [-workers N] [-intra-workers N] [-intra-epoch K] [-store DIR]
//	frontend-probe -trace CAPTURE_DIR [-workload NAME] [-cores 8] [-instr N]
//
// With -trace, cores replay the capture directory (written by `tracegen
// -cores`) instead of executing the workload live; -workload then names the
// capture's source workload to restore its program image and calibration
// (omit it for external captures).
package main

import (
	"flag"
	"fmt"
	"os"

	"confluence"
	"confluence/internal/cliutil"
	"confluence/internal/core"
	"confluence/internal/experiments"
	"confluence/internal/store"
	"confluence/internal/synth"
	"confluence/internal/trace"
)

// isFlagSet reports whether the named flag was given on the command line
// (as opposed to holding its default).
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	workload := flag.String("workload", "OLTP-DB2", "workload profile name")
	cores := flag.Int("cores", 8, "CMP width")
	instr := flag.Uint64("instr", 1_500_000, "per-core instructions (warmup = measure)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = REPRO_WORKERS or GOMAXPROCS)")
	intraWorkers := flag.Int("intra-workers", 0, "bound-weave workers inside each simulation (0/1 = serial)")
	intraEpoch := flag.Int("intra-epoch", 0, "bound-weave epoch depth K in blocks per core (0/1 = exact)")
	traceDir := flag.String("trace", "", "replay a capture directory instead of executing the workload live")
	storeDir := flag.String("store", "", "durable result store directory: repeat probes of the same cell are served from disk")
	sample := flag.Bool("sample", false, "SMARTS-style sampled simulation: fast-forward warm-up + periodic detailed windows (~10x fewer detailed instructions)")
	flag.Parse()

	var w *synth.Workload
	if *traceDir != "" && !isFlagSet("workload") {
		// External capture: no program image, default calibration.
		tw, err := confluence.WorkloadFromTrace(*traceDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frontend-probe:", err)
			os.Exit(1)
		}
		w = tw
	} else {
		prof, ok := synth.ProfileByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "frontend-probe: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		var err error
		w, err = synth.Build(prof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frontend-probe:", err)
			os.Exit(1)
		}
		w.TraceDir = *traceDir // empty for live execution
	}

	if w.Prog != nil {
		ss := w.Prog.StaticStats()
		fmt.Printf("%s: %d funcs, %dKB, %.2f branches/block\n",
			w.Prof.Name, len(w.Prog.Funcs), w.Prog.FootprintBytes()>>10, ss.PerBlock)
	} else {
		fmt.Printf("%s: replaying %s (no program image)\n", w.Prof.Name, *traceDir)
	}

	// Where do the instructions go? Histogram by call-graph layer, plus the
	// dynamic working-set rate (distinct new 64B blocks per kilo-instr over
	// a sliding window) — the quantity that determines L1-I pressure. The
	// stream is the capture when replaying, the live walk otherwise.
	if w.Prog != nil {
		var src trace.Source
		if w.TraceDir != "" {
			fs, err := trace.OpenDirSource(w.TraceDir, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, "frontend-probe:", err)
				os.Exit(1)
			}
			defer fs.Close()
			src = fs
		} else {
			src = trace.NewExecutor(w, 0xd1a9)
		}
		var rec trace.Record
		layerInstr := map[int]uint64{}
		seen := map[uint64]uint64{} // block -> last instruction count seen
		var reuseFar, total uint64
		for total < 2_000_000 {
			if err := src.Next(&rec); err != nil {
				fmt.Fprintln(os.Stderr, "frontend-probe:", err)
				os.Exit(1)
			}
			total += uint64(rec.N)
			if bb := w.Prog.BlockAt(rec.Start); bb != nil {
				layerInstr[bb.Func.Layer] += uint64(rec.N)
			}
			blk := uint64(rec.Start) >> 6
			if last, ok := seen[blk]; !ok || total-last > 100_000 {
				reuseFar++ // first touch or long-reuse-distance touch
			}
			seen[blk] = total
		}
		fmt.Printf("instr by layer: ")
		for l := 0; l < w.Prof.Layers; l++ {
			fmt.Printf("L%d=%.0f%% ", l, 100*float64(layerInstr[l])/float64(total))
		}
		fmt.Printf("\nfar-reuse blocks/kilo-instr: %.1f (L1-I pressure proxy)\n\n",
			float64(reuseFar)/float64(total)*1000)
	}

	designs := []core.DesignPoint{
		core.Base1K, core.FDP1K, core.PhantomFDP, core.TwoLevelFDP,
		core.TwoLevelSHIFT, core.Confluence, core.Ideal,
	}
	fmt.Printf("%-18s %7s %8s %8s | per kilo-instruction: %7s %7s %7s %7s\n",
		"design", "IPC", "btbMPKI", "l1iMPKI", "L1Istall", "misfet", "bubble", "resolve")

	// Fan the design points out across the grid scheduler, then print in
	// the fixed design order above.
	ctx, stop := cliutil.InterruptContext()
	defer stop()
	sc := experiments.Scale{Name: "probe", Cores: *cores, Warmup: *instr, Measure: *instr}
	r := experiments.NewRunnerFor(sc, []*synth.Workload{w})
	r.Workers = *workers
	r.IntraWorkers = *intraWorkers
	r.EpochBlocks = *intraEpoch
	if *storeDir != "" {
		r.Store = store.Open(*storeDir)
	}
	if *sample {
		r.Sampling = core.AutoSampling(*instr)
	}
	if err := r.Grid(designs).Execute(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "frontend-probe:", err)
		os.Exit(1)
	}
	for _, dp := range designs {
		st, err := r.RunDefault(w, dp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frontend-probe:", err)
			os.Exit(1)
		}
		k := float64(st.Instructions) / 1000
		fmt.Printf("%-18s %7.3f %8.1f %8.1f | %29.1f %7.1f %7.1f %7.1f\n",
			dp, st.IPC(), st.BTBMPKI(), st.L1IMPKI(),
			st.L1IStallCycles/k, st.MisfetchCycles/k, st.BubbleCycles/k, st.ResolveCycles/k)
	}
}
