package main

// TestStoreSmoke is the end-to-end resume check the Makefile's
// store-smoke target runs (gated behind STORE_SMOKE=1 because it builds
// and kills the real binary): run a small sweep with -store, SIGKILL the
// process after its first completed cell, re-run the same command to
// completion, and require (a) the re-run hit the store for the cells the
// killed run finished and (b) its stdout is byte-identical to a
// from-scratch run with an empty store — the durable-resume determinism
// contract across process boundaries.

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestStoreSmoke(t *testing.T) {
	if os.Getenv("STORE_SMOKE") != "1" {
		t.Skip("set STORE_SMOKE=1 to run the store smoke test")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "confluence-sim")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building confluence-sim: %v", err)
	}

	// A four-cell sweep: enough cells that a kill after the first leaves
	// real work for the resume, small enough to stay CI-friendly.
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
		"kind": "sweep",
		"workloads": ["DSS-Qrys", "Web-Frontend"],
		"designs": ["Base1K", "Confluence"],
		"cores": 2, "no_warmup": true, "measure_instr": 40000
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(dir, "store")
	run := func(sd string) *exec.Cmd { return exec.Command(bin, "-job", spec, "-store", sd, "-v") }

	// Run 1: kill the process the moment the first cell's progress line
	// appears. Cells persist before their progress line is emitted, so an
	// observed line means that cell is durable.
	kill := run(storeDir)
	stderr, err := kill.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := kill.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	seen := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "IPC") { // a cell progress line
			seen = true
			break
		}
	}
	if !seen {
		t.Fatalf("no cell progress line before exit: %v", sc.Err())
	}
	if err := kill.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	kill.Wait()

	// Run 2: same command, warm store — must finish and report store hits.
	complete := func(sd string) (stdout string, stderr string) {
		t.Helper()
		cmd := run(sd)
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		start := time.Now()
		if err := cmd.Run(); err != nil {
			t.Fatalf("resumed run failed after %.1fs: %v\n%s", time.Since(start).Seconds(), err, errb.String())
		}
		return out.String(), errb.String()
	}
	warmOut, warmErr := complete(storeDir)
	sum := storeSummary(t, warmErr)
	// "store <dir>: N hits, ..." — take the field after the last ": " so
	// the directory path's own characters can't confuse the parse.
	counts := strings.Fields(sum[strings.LastIndex(sum, ": ")+2:])
	hits, err := strconv.Atoi(counts[0])
	if err != nil || hits < 1 {
		t.Fatalf("resumed run reports no store hits: %q", sum)
	}

	// Run 3: empty store, from scratch — stdout must match run 2 exactly.
	freshOut, _ := complete(filepath.Join(dir, "fresh"))
	if freshOut != warmOut {
		t.Errorf("resumed stdout differs from a from-scratch run:\nresumed:\n%s\nscratch:\n%s", warmOut, freshOut)
	}
}

// storeSummary extracts the "store <dir>: N hits, ..." line reportStore
// prints on exit.
func storeSummary(t *testing.T, stderr string) string {
	t.Helper()
	for _, line := range strings.Split(stderr, "\n") {
		if strings.HasPrefix(line, "store ") {
			return line
		}
	}
	t.Fatalf("no store summary on stderr:\n%s", stderr)
	return ""
}
