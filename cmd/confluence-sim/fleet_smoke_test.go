package main

// TestFleetSmoke is the end-to-end preemption-robustness check the
// Makefile's fleet-smoke target runs (gated behind FLEET_SMOKE=1 because
// it builds a race-enabled binary and SIGKILLs real worker processes):
//
//  1. Serial baseline: the sweep via plain -job, stdout captured.
//  2. Fleet run: a coordinator plus three workers on the same fleet
//     directory, two of them carrying CONFLUENCE_FLEET_CHAOS
//     kill-after-claims directives so they SIGKILL themselves mid-cell
//     while holding live leases. The coordinator must reclaim their
//     cells after the lease TTL and finish the grid, and its stdout must
//     be byte-identical to the serial baseline.
//  3. Poison cell: a coordinator whose chaos fails one cell on every
//     attempt must quarantine it after the retry budget, complete the
//     rest of the grid, and exit non-zero naming the cell.

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestFleetSmoke(t *testing.T) {
	if os.Getenv("FLEET_SMOKE") != "1" {
		t.Skip("set FLEET_SMOKE=1 to run the fleet smoke test")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "confluence-sim")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building confluence-sim: %v", err)
	}

	// A six-cell sweep: enough cells that two kamikaze workers die with
	// real work outstanding, small enough to stay CI-friendly under -race.
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
		"kind": "sweep",
		"workloads": ["DSS-Qrys", "Web-Frontend", "KeyValue"],
		"designs": ["Base1K", "Confluence"],
		"cores": 2, "no_warmup": true, "measure_instr": 40000
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Serial baseline.
	var serialOut, serialErr bytes.Buffer
	serial := exec.Command(bin, "-job", spec, "-store", filepath.Join(dir, "store-serial"))
	serial.Stdout, serial.Stderr = &serialOut, &serialErr
	if err := serial.Run(); err != nil {
		t.Fatalf("serial baseline failed: %v\n%s", err, serialErr.String())
	}

	// Fleet run: coordinator + 3 workers, 2 of them kamikaze. A short
	// lease TTL keeps the reclaim of the dead workers' cells fast.
	fleetDir := filepath.Join(dir, "fleet")
	storeDir := filepath.Join(dir, "store-fleet")
	coord := exec.Command(bin,
		"-fleet-coordinator", fleetDir, "-job", spec,
		"-store", storeDir, "-fleet-lease-ttl", "2s", "-v")
	var coordOut, coordErr bytes.Buffer
	coord.Stdout, coord.Stderr = &coordOut, &coordErr

	worker := func(chaos string) *exec.Cmd {
		w := exec.Command(bin, "-fleet-worker", fleetDir, "-v")
		w.Env = append(os.Environ(), "CONFLUENCE_FLEET_CHAOS="+chaos)
		w.Stderr = new(bytes.Buffer)
		return w
	}
	// Both kamikazes die on their very first claim: at manifest
	// publication the grid has six free cells and four scanners, so each
	// kamikaze is guaranteed to win a claim (and die holding it) before
	// the survivors drain the grid. A later-claim kill would race grid
	// completion and flake.
	kamikaze1 := worker("kill-after-claims=1")
	kamikaze2 := worker("kill-after-claims=1")
	steady := worker("")

	// Workers first: they block on the manifest, then claim the moment the
	// coordinator publishes it — guaranteeing the kamikazes die holding
	// live leases on unfinished cells.
	for _, w := range []*exec.Cmd{kamikaze1, kamikaze2, steady} {
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}

	sigkilled := func(err error) bool {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			return false
		}
		ws, ok := ee.Sys().(syscall.WaitStatus)
		return ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL
	}
	for name, w := range map[string]*exec.Cmd{"kamikaze1": kamikaze1, "kamikaze2": kamikaze2} {
		if err := w.Wait(); !sigkilled(err) {
			t.Errorf("%s exited %v, want SIGKILL mid-cell\nstderr:\n%s", name, err, w.Stderr.(*bytes.Buffer).String())
		}
	}
	if err := steady.Wait(); err != nil {
		t.Errorf("steady worker failed: %v\nstderr:\n%s", err, steady.Stderr.(*bytes.Buffer).String())
	}
	start := time.Now()
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator failed after %.1fs: %v\nstderr:\n%s", time.Since(start).Seconds(), err, coordErr.String())
	}

	// The whole point: preemption left no trace in the output.
	if coordOut.String() != serialOut.String() {
		t.Errorf("fleet stdout differs from serial run:\nserial:\n%s\nfleet:\n%s", serialOut.String(), coordOut.String())
	}
	if !strings.Contains(coordErr.String(), "quarantined") {
		t.Errorf("coordinator stderr missing the fleet summary:\n%s", coordErr.String())
	}

	// Poison cell: every attempt at c002 fails; the grid must complete
	// degraded — five cells stored, c002 quarantined, exit non-zero.
	poison := exec.Command(bin,
		"-fleet-coordinator", filepath.Join(dir, "fleet-poison"), "-job", spec,
		"-store", filepath.Join(dir, "store-poison"))
	poison.Env = append(os.Environ(), "CONFLUENCE_FLEET_CHAOS=fail-cell=c002")
	var poisonErr bytes.Buffer
	poison.Stderr = &poisonErr
	err := poison.Run()
	if err == nil {
		t.Fatal("poisoned grid exited zero")
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("poisoned coordinator: %v, want exit 1\nstderr:\n%s", err, poisonErr.String())
	}
	stderr := poisonErr.String()
	if !strings.Contains(stderr, "5 completed") || !strings.Contains(stderr, "1 quarantined") {
		t.Errorf("poison summary missing (want 5 completed, 1 quarantined):\n%s", stderr)
	}
	if !strings.Contains(stderr, "c002") || !strings.Contains(stderr, "chaos-injected crash") {
		t.Errorf("quarantine report does not name c002 with its last error:\n%s", stderr)
	}
}
