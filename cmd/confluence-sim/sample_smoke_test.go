package main

// TestSampleSmoke is the end-to-end acceptance check the Makefile's
// sample-smoke target runs (gated behind SAMPLE_SMOKE=1 because it
// builds the real binary and runs a full figure sweep twice): Figure 1 —
// the BTB capacity sweep, a full figure of prefetcherless cells — must
// come out of sampled mode within 1% of exact on every cell while
// detailing at least 10× fewer instructions. Sweep BTBs have no
// prefetcher, so the sampled cells' full-coverage MPKI is event-exact;
// anything off by ≥1% here means the functional fast-forward path and
// the detailed path disagreed on the miss stream.

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestSampleSmoke(t *testing.T) {
	if os.Getenv("SAMPLE_SMOKE") != "1" {
		t.Skip("set SAMPLE_SMOKE=1 to run the sample smoke test")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "confluence-sim")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building confluence-sim: %v", err)
	}

	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, append([]string{"-scale", "small", "-run", "fig1"}, args...)...)
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Run(); err != nil {
			t.Fatalf("confluence-sim %v: %v\n%s", args, err, errb.String())
		}
		return out.String()
	}

	exact := run()
	sampled := run("-sample")

	// The banner pins the plan; recompute the detail reduction from it.
	// At small scale: warmup 800k + measure 800k per core, all of it
	// detailed in exact mode.
	win, period, n, warm := parseSampleBanner(t, sampled)
	detailed := n * (win + warm)
	const region = 800_000 + 800_000
	if red := float64(region) / float64(detailed); red < 10 {
		t.Errorf("sampled plan details %d of %d instructions (%.1fx reduction), want >=10x", detailed, region, red)
	}
	_ = period

	exactRows := parseFig1(t, exact)
	sampledRows := parseFig1(t, sampled)
	if len(exactRows) == 0 {
		t.Fatalf("no Figure 1 rows parsed from exact output:\n%s", exact)
	}
	for name, ecells := range exactRows {
		scells, ok := sampledRows[name]
		if !ok {
			t.Errorf("sampled Figure 1 missing row %q", name)
			continue
		}
		for i, e := range ecells {
			s := scells[i]
			if e == 0 && s == 0 {
				continue
			}
			if err := math.Abs(s-e) / math.Max(math.Abs(e), 1e-9) * 100; err >= 1.0 {
				t.Errorf("%s col %d: sampled MPKI %.3f vs exact %.3f (%.2f%% error), want <1%%", name, i, s, e, err)
			}
		}
	}
}

// parseSampleBanner extracts the plan from the "sampled mode: N windows
// of W instr per P instr (+U detailed warm-up each)" banner.
func parseSampleBanner(t *testing.T, out string) (win, period, n, warm uint64) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "sampled mode: ") {
			continue
		}
		if _, err := fmt.Sscanf(line, "sampled mode: %d windows of %d instr per %d instr (+%d detailed warm-up each)",
			&n, &win, &period, &warm); err != nil {
			t.Fatalf("unparseable sampled-mode banner %q: %v", line, err)
		}
		return win, period, n, warm
	}
	t.Fatalf("no sampled-mode banner in output:\n%s", out)
	return
}

// parseFig1 pulls each Figure 1 table row (workload name → MPKI columns)
// out of the CLI's stdout.
func parseFig1(t *testing.T, out string) map[string][]float64 {
	t.Helper()
	rows := make(map[string][]float64)
	inTable := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Figure 1:") {
			inTable = true
			continue
		}
		if !inTable {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			if len(rows) > 0 {
				break // table finished
			}
			continue
		}
		// A data row is a name followed by float columns.
		var cells []float64
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				cells = nil
				break
			}
			cells = append(cells, v)
		}
		if len(cells) > 0 {
			rows[fields[0]] = cells
		}
	}
	return rows
}
