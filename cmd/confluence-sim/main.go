// Command confluence-sim regenerates the paper's evaluation: every table
// and figure, printed as text tables in the paper's row/series layout.
//
// Usage:
//
//	confluence-sim [-scale small|default|paper] [-workers N] [-intra-workers N] [-intra-epoch K] [-run fig1,table2,fig6,...] [-store DIR] [-v]
//	confluence-sim -trace CAPTURE_DIR [-trace-workload NAME] [-scale ...]
//	confluence-sim -mix OLTP-DB2,Web-Frontend [-scale ...]
//	confluence-sim -job job.json [-v]
//
// The default runs everything at the "default" scale (8 cores, 3M
// instructions per core), fanning independent simulation cells out across
// all CPUs. REPRO_SCALE overrides the default scale; REPRO_WORKERS (or
// -workers) bounds the worker pool. -intra-workers additionally parallelizes
// inside each simulation with bound-weave epochs (the -workers budget is
// split between the two levels); at the default epoch depth (-intra-epoch 1)
// results are bit-identical to serial, while K>1 is a documented
// approximation with one-epoch-stale cross-core timing feedback. Results
// are bit-identical for any worker count at fixed K. Ctrl-C cancels cleanly
// between cells.
//
// With -trace, the binary replays a capture directory (written by
// `tracegen -cores`) through the timing model instead of the synthetic
// suite, running the paper's headline design points on it. Naming the
// capture's source workload with -trace-workload restores its program
// image and timing calibration, making the replay bit-identical to the
// live run that produced the capture.
//
// With -mix, the binary consolidates the named workloads onto one CMP
// (core i runs workload i mod N) and runs the consolidation study on that
// single mix: the history-sharing design points, each with the
// shared-vs-private SHIFT history ablation, reported as harmonic-mean IPC
// and weighted speedup against each workload running alone. The full 2-,
// 4-, and 5-workload sweep runs as the `mixstudy` experiment.
//
// With -job, the binary executes a serialized JobSpec (the same JSON
// schema the confluence-serve daemon accepts) through the daemon's
// executor, so a spec can be debugged locally before being submitted to a
// server — the results are identical by construction.
//
// With -store, completed simulation cells persist to a content-addressed
// on-disk result store, and cells whose inputs are already stored are
// served from it without simulating: a run killed mid-grid resumes from
// its completed cells on the next invocation, with byte-identical output.
// The flag composes with every mode; a summary of store traffic prints to
// stderr on exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"confluence"
	"confluence/internal/cliutil"
	"confluence/internal/experiments"
	"confluence/internal/serve"
	"confluence/internal/store"
)

func main() {
	scaleFlag := flag.String("scale", "", "simulation scale: small, default, or paper")
	runFlag := flag.String("run", "all", "comma-separated experiments: fig1,table2,fig2,fig6,fig7,fig8,fig9,fig10,ablations,mixstudy,all")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = REPRO_WORKERS or GOMAXPROCS)")
	intraWorkers := flag.Int("intra-workers", 0, "bound-weave workers inside each simulation (0/1 = serial; the -workers budget is split between levels)")
	intraEpoch := flag.Int("intra-epoch", 0, "bound-weave epoch depth K in blocks per core (0/1 = exact mode; K>1 is a documented approximation)")
	verbose := flag.Bool("v", false, "print per-run progress")
	traceDir := flag.String("trace", "", "replay a capture directory through the timing model instead of the synthetic suite")
	traceWorkload := flag.String("trace-workload", "", "workload the capture was taken from (restores program image + calibration)")
	mixFlag := flag.String("mix", "", "comma-separated workload names: run the consolidation study on this mix (core i runs workload i mod N)")
	jobFlag := flag.String("job", "", "execute a JobSpec JSON file (the confluence-serve schema) and print its result rows")
	storeDir := flag.String("store", "", "durable result store directory: completed cells persist and repeat runs resume from them")
	flag.Parse()
	defer reportStore(*storeDir)

	sc := experiments.ScaleFromEnv()
	if *scaleFlag != "" {
		var ok bool
		if sc, ok = experiments.ScaleByName(*scaleFlag); !ok {
			fmt.Fprintf(os.Stderr, "confluence-sim: unknown scale %q\n", *scaleFlag)
			os.Exit(2)
		}
	}

	ctx, stop := cliutil.InterruptContext()
	defer stop()

	if *jobFlag != "" {
		if err := runJobFile(ctx, *jobFlag, *storeDir, *verbose); err != nil {
			fatal(err)
		}
		return
	}
	if *traceDir != "" {
		if err := replayTrace(ctx, sc, *traceDir, *traceWorkload, *storeDir, *workers, *intraWorkers, *intraEpoch); err != nil {
			fatal(err)
		}
		return
	}
	if *mixFlag != "" {
		if err := runMix(ctx, sc, *mixFlag, *storeDir, *workers, *intraWorkers, *intraEpoch, *verbose); err != nil {
			fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	pick := func(name string) bool { return all || want[name] }

	start := time.Now()
	fmt.Printf("confluence-sim: scale=%s cores=%d warmup=%d measure=%d (per core)\n\n",
		sc.Name, sc.Cores, sc.Warmup, sc.Measure)

	r, err := experiments.NewRunner(sc, *workers)
	if err != nil {
		fatal(err)
	}
	r.IntraWorkers = *intraWorkers
	r.EpochBlocks = *intraEpoch
	if *storeDir != "" {
		r.Store = store.Open(*storeDir)
	}
	if *verbose {
		r.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}

	if pick("table2") {
		rows, err := r.Table2(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Table2Table(rows))
	}
	if pick("fig1") {
		rows, err := r.Figure1(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure1Table(rows))
	}
	if pick("fig2") {
		points, err := r.Figure2(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.PerfAreaTable("Figure 2: conventional instruction-supply mechanisms", points))
	}
	if pick("fig6") {
		points, err := r.Figure6(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.PerfAreaTable("Figure 6: Confluence vs conventional mechanisms", points))
	}
	if pick("fig7") {
		rows, err := r.Figure7(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure7Table(rows))
	}
	if pick("fig8") {
		rows, err := r.Figure8(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure8Table(rows))
	}
	if pick("fig9") {
		rows, err := r.Figure9(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure9Table(rows))
	}
	if pick("fig10") {
		rows, err := r.Figure10(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Figure10Table(rows))
	}
	if pick("mixstudy") {
		rows, err := r.MixStudy(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.MixStudyTable(rows))
	}
	if pick("ablations") {
		rows, err := r.LookaheadSweep(ctx, []int{4, 8, 20, 32})
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.AblationTable("Ablation: SHIFT lookahead depth (Confluence)", rows))
		rows, err = r.SharedVsPrivateHistory(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.AblationTable("Ablation: shared vs private SHIFT history (Confluence)", rows))
	}

	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
}

// replayTrace runs the paper's headline design points over a capture
// directory, one replayed simulation per design.
func replayTrace(ctx context.Context, sc experiments.Scale, dir, workloadName, storeDir string, workers, intraWorkers, intraEpoch int) error {
	// Split the goroutine budget between replay-level and in-run
	// parallelism, exactly as the experiment runners do.
	workers = experiments.SplitWorkers(workers, intraWorkers)
	var w *confluence.Workload
	var err error
	if workloadName != "" {
		w, err = confluence.BuildWorkload(workloadName)
	} else {
		w, err = confluence.WorkloadFromTrace(dir)
	}
	if err != nil {
		return err
	}

	designs := []confluence.DesignPoint{
		confluence.Base1K, confluence.FDP1K, confluence.TwoLevelFDP,
		confluence.TwoLevelSHIFT, confluence.Confluence, confluence.Ideal,
	}
	cfgs := make([]confluence.Config, len(designs))
	for i, dp := range designs {
		cfgs[i] = confluence.Config{
			Workload: w, Design: dp, TraceDir: dir, Cores: sc.Cores,
			WarmupInstr: sc.Warmup, MeasureInstr: sc.Measure,
			Parallelism:      workers,
			IntraParallelism: intraWorkers,
			EpochBlocks:      intraEpoch,
			StoreDir:         storeDir,
		}
	}
	res, err := confluence.RunMany(ctx, workers, cfgs)
	if err != nil {
		return err
	}

	fmt.Printf("replaying %s (%s calibration), %d cores, warmup=%d measure=%d per core\n\n",
		dir, w.Prof.Name, sc.Cores, sc.Warmup, sc.Measure)
	fmt.Printf("%-18s %7s %8s %8s %9s\n", "design", "IPC", "btbMPKI", "l1iMPKI", "speedup")
	base := res[0].Stats.IPC()
	for i, dp := range designs {
		st := res[i].Stats
		fmt.Printf("%-18s %7.3f %8.1f %8.1f %8.2fx\n",
			dp, st.IPC(), st.BTBMPKI(), st.L1IMPKI(), st.IPC()/base)
	}
	return nil
}

// runMix runs the consolidation study on one explicit workload mix.
func runMix(ctx context.Context, sc experiments.Scale, spec, storeDir string, workers, intraWorkers, intraEpoch int, verbose bool) error {
	var mix []*confluence.Workload
	for _, name := range strings.Split(spec, ",") {
		w, err := confluence.BuildWorkload(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		mix = append(mix, w)
	}
	r := experiments.NewRunnerFor(sc, nil)
	r.Workers = workers
	r.IntraWorkers = intraWorkers
	r.EpochBlocks = intraEpoch
	if storeDir != "" {
		r.Store = store.Open(storeDir)
	}
	if verbose {
		r.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}
	fmt.Printf("consolidating %s onto %d cores (core i runs workload i mod %d), warmup=%d measure=%d per core\n\n",
		experiments.MixName(mix), sc.Cores, len(mix), sc.Warmup, sc.Measure)
	rows, err := r.MixStudyFor(ctx, [][]*confluence.Workload{mix}, experiments.MixStudyDesigns())
	if err != nil {
		return err
	}
	fmt.Println(experiments.MixStudyTable(rows))
	return nil
}

// runJobFile executes a JobSpec file through the serving executor — the
// exact path a confluence-serve worker takes — and prints the result.
func runJobFile(ctx context.Context, path, storeDir string, verbose bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := confluence.ParseJobSpec(data)
	if err != nil {
		return err
	}
	var emit func(experiments.ProgressEvent)
	if verbose {
		emit = func(e experiments.ProgressEvent) { fmt.Fprintln(os.Stderr, "  "+e.String()) }
	}
	res, err := serve.ExecuteSpecStore(ctx, spec, storeDir, emit)
	if err != nil {
		return err
	}
	if res.Kind == confluence.KindMixStudy {
		fmt.Println(experiments.MixStudyTable(res.MixRows))
		return nil
	}
	fmt.Printf("%-20s %-18s %7s %8s %8s %9s\n", "mix", "design", "IPC", "btbMPKI", "l1iMPKI", "area mm2")
	for _, c := range res.Cells {
		fmt.Printf("%-20s %-18s %7.3f %8.1f %8.1f %9.3f\n",
			c.Mix, c.Design, c.Stats.IPC(), c.Stats.BTBMPKI(), c.Stats.L1IMPKI(), c.OverheadMM2)
	}
	return nil
}

// reportStore prints the run's store traffic to stderr. The store
// registry hands back the same handle every path used, so the counters
// cover the whole process.
func reportStore(dir string) {
	if dir == "" {
		return
	}
	s := store.Open(dir)
	hits, misses, writes := s.Counters()
	fmt.Fprintf(os.Stderr, "store %s: %d hits, %d misses, %d writes (%d entries)\n",
		s.Dir(), hits, misses, writes, s.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confluence-sim:", err)
	os.Exit(1)
}
